#!/usr/bin/env bash
# Repo verification: tier-1 build + tests, then a determinism smoke of the
# parallel experiment runner (quick-scale repro on 1 vs. 4 workers must
# produce byte-identical stdout).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier 1: cargo build --release =="
cargo build --release

echo "== tier 1: cargo test -q =="
cargo test -q

echo "== exploration smoke: bounded schedule search with the oracle =="
# A capped budget keeps this under ~30 s while still covering every
# exploration test (serializability, shrinking, victimization, preemption).
t_exp0=$(date +%s%N)
LTSE_EXPLORE_SCHEDULES=300 cargo test -q --release --test integration_explore
t_exp1=$(date +%s%N)
echo "ok: exploration smoke in $(( (t_exp1 - t_exp0) / 1000000 )) ms"

echo "== policy smoke: every contention policy under the oracle =="
# Serializability + seeded-fault detection under all five contention
# policies (including Adaptive), pinned-Adaptive byte-identity, and the
# serial-escalation path. A reduced schedule budget keeps this quick.
t_pol0=$(date +%s%N)
LTSE_EXPLORE_SCHEDULES=150 cargo test -q --release --test integration_policy
t_pol1=$(date +%s%N)
echo "ok: policy smoke in $(( (t_pol1 - t_pol0) / 1000000 )) ms"

echo "== scale smoke: 64-256-context runs with serializability checks =="
# The scaled_cmp configurations (64/128/256 cores, square mesh, one bank per
# core) run Mp3d end to end under the differential serializability oracle.
t_sc0=$(date +%s%N)
cargo test -q --release --test integration_scale
t_sc1=$(date +%s%N)
echo "ok: scale smoke in $(( (t_sc1 - t_sc0) / 1000000 )) ms"

echo "== stm smoke: differential STM-vs-oracle run =="
# A reduced case budget keeps this under ~30 s while still running real
# multi-threaded STM transactions through the serializability oracle.
t_stm0=$(date +%s%N)
LTSE_STM_CASES=60 cargo test -q --release --test integration_stm
t_stm1=$(date +%s%N)
echo "ok: stm differential smoke in $(( (t_stm1 - t_stm0) / 1000000 )) ms"

echo "== bench smoke: hotpath + pipeline + obs + stm + scale + oltp + policy suites in quick mode =="
# Asserts both suites run and emit valid JSON with the expected shape; no
# timing thresholds — CI machines are too noisy for that.
bench_dir=$(mktemp -d)
trap 'rm -rf "$bench_dir"' EXIT
LTSE_BENCH_QUICK=1 LTSE_BENCH_DIR="$bench_dir" scripts/bench.sh 2>&1 | tail -5
python3 - "$bench_dir" <<'EOF'
import json, os, sys
d = sys.argv[1]
expected_speedups = {
    "hotpath": {"sig_membership_bitselect", "sig_membership_bloom", "event_queue_churn"},
    "pipeline": {"cache_warm_vs_cold", "explore_parallel"},
    "obs": {"obs_off_vs_on"},
    "stm": {"stm_vs_sim_berkeleydb", "stm_vs_sim_raytrace", "stm_vs_sim_mp3d"},
    "scale": {"per_event_64_vs_128", "per_event_64_vs_256", "queue_banked_vs_unbanked"},
}
min_cases = {"hotpath": 7, "pipeline": 4, "obs": 4, "stm": 6, "scale": 6}
for bench, speedups in expected_speedups.items():
    with open(os.path.join(d, f"BENCH_{bench}.json")) as f:
        doc = json.load(f)
    assert doc["bench"] == bench, doc
    assert doc["quick"] is True, "smoke must run in quick mode"
    n = len(doc["cases"])
    assert n >= min_cases[bench], f"{bench}: expected >={min_cases[bench]} cases, got {n}"
    for c in doc["cases"]:
        assert c["best_ms"] > 0 and c["mean_ms"] >= c["best_ms"], c
    assert set(doc["speedups"]) == speedups, doc["speedups"]
    print(f"ok: BENCH_{bench} json well-formed, {n} cases")

# BENCH_scale.json additionally records the simulated-run facts: the sweep
# must cover 64/128/256 cores and include the serializability-checked
# 256-context run.
with open(os.path.join(d, "BENCH_scale.json")) as f:
    doc = json.load(f)
assert doc["cpus"] >= 1, doc
runs = doc["runs"]
sweep_cores = {r["n_cores"] for r in runs if not r["checked"]}
assert sweep_cores == {64, 128, 256}, sweep_cores
checked = [r for r in runs if r["checked"]]
assert checked and all(r["n_ctxs"] == 256 for r in checked), runs
for r in runs:
    assert r["commits"] > 0 and r["events"] > 0 and r["cycles"] > 0, r
print(f"ok: BENCH_scale runs cover {sorted(sweep_cores)} cores + checked 256-ctx run")

# BENCH_oltp.json has its own shape: skew/mix point rows on both backends
# with the latency SLOs, plus the streaming million-transaction section
# (reduced to 20k transactions in quick mode, same structure).
with open(os.path.join(d, "BENCH_oltp.json")) as f:
    doc = json.load(f)
assert doc["bench"] == "oltp" and doc["quick"] is True, doc
points = doc["points"]
assert len(points) >= 6, f"expected >=3 points x 2 backends, got {len(points)}"
backends = {p["backend"] for p in points}
assert backends == {"sim", "stm"}, backends
for p in points:
    assert p["committed"] == p["txs"] > 0, p
    assert p["p50"] <= p["p99"] <= p["p999"], p
    assert p["latency_unit"] in ("cycles", "ns"), p
by_point = {}
for p in points:
    by_point.setdefault(p["point"], set()).add(p["kv_fingerprint"])
for name, fps in by_point.items():
    assert len(fps) == 1, f"{name}: backends disagree on final KV state: {fps}"
mtx = doc["mtx"]
assert mtx["sim"]["committed"] == mtx["stm"]["committed"] == mtx["txs_total"], mtx
assert mtx["kv_match"] is True, mtx
growth = mtx["sim"]["rss_growth_kb"]
assert growth is None or growth < 64 * 1024, f"mtx RSS growth {growth} KiB"
print(f"ok: BENCH_oltp {len(points)} point rows + mtx section "
      f"({mtx['txs_total']} txs, rss growth {growth} KiB, kv states match)")

# BENCH_policy.json: every contention policy on every contended point on
# both backends, with the per-point winner analysis. Structure only here —
# the ratio gates are full-scale and live in scripts/bench.sh.
with open(os.path.join(d, "BENCH_policy.json")) as f:
    doc = json.load(f)
assert doc["bench"] == "policy" and doc["quick"] is True, doc
rows = doc["rows"]
all_policies = {"requester_stalls", "requester_aborts", "size_matters", "karma", "adaptive"}
# 5 policies x (1 mp3d sim point + 2 oltp points x 2 backends).
assert len(rows) == 5 * 5, f"expected 25 rows, got {len(rows)}"
assert {r["policy"] for r in rows} == all_policies
assert {r["backend"] for r in rows} == {"sim", "stm"}
for r in rows:
    assert r["score"] >= 0 and r["committed"] > 0 and r["completed"] is True, r
pts = doc["points"]
assert len(pts) == 5, f"expected 5 (point, backend) summaries, got {len(pts)}"
for p in pts:
    assert p["best_static_policy"] in all_policies - {"adaptive"}, p
    assert p["adaptive_vs_best"] >= 0.0, p
summ = doc["summary"]
assert summ["static_winners"] and summ["distinct_static_winners"] >= 1, summ
assert isinstance(summ["adaptive_ok"], bool), summ
print(f"ok: BENCH_policy {len(rows)} rows, {len(pts)} point summaries, "
      f"winners: {', '.join(summ['static_winners'])}")
EOF

echo "== determinism smoke: repro --quick, 1 vs. 4 workers =="
repro=target/release/repro
out1=$(mktemp) out4=$(mktemp)
trap 'rm -f "$out1" "$out4"; rm -rf "$bench_dir"' EXIT

t_start=$(date +%s%N)
"$repro" --quick --jobs 1 all >"$out1" 2>/dev/null
t_mid=$(date +%s%N)
"$repro" --quick --jobs 4 all >"$out4" 2>/dev/null
t_end=$(date +%s%N)

if ! cmp -s "$out1" "$out4"; then
    echo "FAIL: quick repro stdout differs between --jobs 1 and --jobs 4" >&2
    diff "$out1" "$out4" | head -40 >&2
    exit 1
fi
echo "ok: stdout byte-identical across worker counts ($(wc -c <"$out1") bytes)"

# LTSE_JOBS env-var path: must also match.
LTSE_JOBS=4 "$repro" --quick all >"$out4" 2>/dev/null
if ! cmp -s "$out1" "$out4"; then
    echo "FAIL: LTSE_JOBS=4 stdout differs from --jobs 1" >&2
    exit 1
fi
echo "ok: LTSE_JOBS env path matches"

ms1=$(( (t_mid - t_start) / 1000000 ))
ms4=$(( (t_end - t_mid) / 1000000 ))
echo "wall: ${ms1} ms on 1 worker, ${ms4} ms on 4 workers"
cores=$(nproc 2>/dev/null || echo 1)
if [ "$cores" -ge 4 ]; then
    # Expect real parallel speedup when the hardware can provide it.
    if [ "$ms4" -gt $(( ms1 * 3 / 4 )) ]; then
        echo "WARN: <1.33x speedup on $cores cores (${ms1} -> ${ms4} ms)" >&2
    fi
else
    echo "note: only $cores core(s) available; skipping speedup check"
fi

echo "== stm backend smoke: repro --quick --backend stm table2 =="
"$repro" --quick --backend stm table2 >"$out4" 2>/dev/null
if ! grep -q "^STM backend:" "$out4"; then
    echo "FAIL: --backend stm did not print the comparison table" >&2
    head -5 "$out4" >&2
    exit 1
fi
stm_rows=$(wc -l <"$out4")
if [ "$stm_rows" -ne 7 ]; then
    echo "FAIL: expected 7 lines (title + header + 5 benchmarks), got $stm_rows" >&2
    exit 1
fi
echo "ok: stm backend ran all 5 Table-2 workloads against the simulator"

echo "== oltp smoke: repro --quick oltp on both backends =="
# Sim rows are cycle-denominated and must be byte-deterministic run to run;
# the stm comparison additionally cross-checks the final KV state between
# backends (a mismatch fails the run).
oltp1=$(mktemp) oltp2=$(mktemp)
trap 'rm -f "$out1" "$out4" "$oltp1" "$oltp2"; rm -rf "$bench_dir"' EXIT
"$repro" --quick oltp >"$oltp1" 2>/dev/null
"$repro" --quick --jobs 4 oltp >"$oltp2" 2>/dev/null
if ! cmp -s "$oltp1" "$oltp2"; then
    echo "FAIL: repro oltp stdout differs run to run" >&2
    diff "$oltp1" "$oltp2" | head -20 >&2
    exit 1
fi
if ! grep -q "^OLTP open-loop driver:" "$oltp1" || ! grep -q "p999" "$oltp1"; then
    echo "FAIL: repro oltp did not print the SLO table" >&2
    head -5 "$oltp1" >&2
    exit 1
fi
"$repro" --quick --backend stm oltp >"$oltp2" 2>/dev/null
oltp_stm_rows=$(grep -c " stm " "$oltp2" || true)
if [ "$oltp_stm_rows" -ne 3 ]; then
    echo "FAIL: expected 3 stm rows in the oltp comparison, got $oltp_stm_rows" >&2
    cat "$oltp2" >&2
    exit 1
fi
echo "ok: oltp deterministic on sim, 3 skew/mix points cross-checked on stm"

echo "== policy sweep smoke: repro --quick policy =="
# Every contention policy on every contended point, both backends in one
# table (25 rows). The stm rows are wall-clock, so no byte-identity check —
# shape and completeness only.
"$repro" --quick policy >"$oltp1" 2>/dev/null
if ! grep -q "^Policy sweep:" "$oltp1"; then
    echo "FAIL: repro policy did not print the sweep table" >&2
    head -5 "$oltp1" >&2
    exit 1
fi
policy_rows=$(grep -c "adaptive\|karma\|requester_\|size_matters" "$oltp1" || true)
if [ "$policy_rows" -ne 25 ]; then
    echo "FAIL: expected 25 policy rows (5 policies x 5 points), got $policy_rows" >&2
    cat "$oltp1" >&2
    exit 1
fi
if grep -q " NO " "$oltp1"; then
    echo "FAIL: some policy runs did not complete their fixed work" >&2
    grep " NO " "$oltp1" >&2
    exit 1
fi
echo "ok: policy sweep ran 5 policies x 5 (point, backend) combinations"

echo "== cache smoke: repro --quick twice into a fresh cache dir =="
cache_dir=$(mktemp -d)
err2=$(mktemp)
trap 'rm -f "$out1" "$out4" "$err2" "$oltp1" "$oltp2"; rm -rf "$bench_dir" "$cache_dir"' EXIT

t_cold0=$(date +%s%N)
"$repro" --quick --jobs 4 --cache-dir "$cache_dir" all >"$out4" 2>/dev/null
t_cold1=$(date +%s%N)
if ! cmp -s "$out1" "$out4"; then
    echo "FAIL: cold cached stdout differs from uncached stdout" >&2
    exit 1
fi
"$repro" --quick --jobs 4 --cache-dir "$cache_dir" all >"$out4" 2>"$err2"
t_warm1=$(date +%s%N)
if ! cmp -s "$out1" "$out4"; then
    echo "FAIL: warm cached stdout differs from uncached stdout" >&2
    diff "$out1" "$out4" | head -40 >&2
    exit 1
fi
if ! grep -q "cache: .* hit" "$err2"; then
    echo "FAIL: warm run reported no cache hits on stderr" >&2
    head -20 "$err2" >&2
    exit 1
fi
if grep -qE "cache: .* [1-9][0-9]* miss" "$err2"; then
    echo "FAIL: warm run still recomputed some runs" >&2
    grep "cache:" "$err2" | head -20 >&2
    exit 1
fi
ms_cold=$(( (t_cold1 - t_cold0) / 1000000 ))
ms_warm=$(( (t_warm1 - t_cold1) / 1000000 ))
echo "ok: warm cache hit everything, stdout byte-identical (cold ${ms_cold} ms, warm ${ms_warm} ms)"

echo "== stats-json smoke: emit, validate schema, cross-jobs/cache byte-identity =="
stats_dir=$(mktemp -d)
trap 'rm -f "$out1" "$out4" "$err2" "$oltp1" "$oltp2"; rm -rf "$bench_dir" "$cache_dir" "$stats_dir"' EXIT

# The export must not disturb stdout, and its bytes must not depend on the
# worker count or the cache configuration.
"$repro" --quick --jobs 1 --stats-json "$stats_dir/stats_j1.json" table1 >"$out4" 2>/dev/null
"$repro" --quick table1 >"$out1" 2>/dev/null
if ! cmp -s "$out1" "$out4"; then
    echo "FAIL: --stats-json changed stdout" >&2
    exit 1
fi
"$repro" --quick --jobs 4 --stats-json "$stats_dir/stats_j4.json" table1 >/dev/null 2>&1
"$repro" --quick --jobs 4 --cache-dir "$cache_dir" --stats-json "$stats_dir/stats_cache.json" table1 >/dev/null 2>&1
if ! cmp -s "$stats_dir/stats_j1.json" "$stats_dir/stats_j4.json"; then
    echo "FAIL: stats-json differs between --jobs 1 and --jobs 4" >&2
    exit 1
fi
if ! cmp -s "$stats_dir/stats_j1.json" "$stats_dir/stats_cache.json"; then
    echo "FAIL: stats-json differs cache-on vs cache-off" >&2
    exit 1
fi
python3 - "$stats_dir/stats_j1.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["schema"] == "ltse.stats.v1", doc.get("schema")
rows = doc["experiments"]
assert len(rows) == 13, f"expected 13 experiment rows, got {len(rows)}"
for row in rows:
    obs, tm = row["obs"], row["tm"]
    assert all(row["reconciled"].values()), (row["experiment"], row["reconciled"])
    assert sum(obs["stalls"].values()) == tm["stalls"], row["experiment"]
    assert sum(obs["aborts"].values()) == tm["aborts"], row["experiment"]
    assert obs["spans"]["committed"] == tm["commits"], row["experiment"]
slo = doc["oltp_slo"]
assert len(slo) == 3, f"expected 3 oltp_slo rows, got {len(slo)}"
for row in slo:
    lat = row["latency_cycles"]
    assert lat["p50"] <= lat["p99"] <= lat["p999"], row
    assert row["committed"] > 0 and row["goodput_tx_per_mcycle"] > 0, row
print(f"ok: stats-json schema-tagged, {len(rows)} rows + {len(slo)} SLO rows, "
      "all attributions reconcile")
EOF
echo "ok: stats-json deterministic across jobs and cache configurations"

echo "== stm stats-json smoke: per-cause abort counters reconcile =="
"$repro" --quick --backend stm --stats-json "$stats_dir/stats_stm.json" oltp >/dev/null 2>&1
python3 - "$stats_dir/stats_stm.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["schema"] == "ltse.stats.v1" and doc["backend"] == "stm", doc
rows = doc["experiments"]
assert len(rows) == 3, f"expected 3 stm rows, got {len(rows)}"
for row in rows:
    stm = row["stm"]
    assert all(row["reconciled"].values()), (row["benchmark"], row["reconciled"])
    assert stm["aborts_locked"] + stm["aborts_stale"] == stm["aborts"], row
print(f"ok: stm stats-json {len(rows)} rows, per-cause aborts reconcile")
EOF

echo "== verify OK =="
