#!/usr/bin/env bash
# Repo verification: tier-1 build + tests, then a determinism smoke of the
# parallel experiment runner (quick-scale repro on 1 vs. 4 workers must
# produce byte-identical stdout).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier 1: cargo build --release =="
cargo build --release

echo "== tier 1: cargo test -q =="
cargo test -q

echo "== exploration smoke: bounded schedule search with the oracle =="
# A capped budget keeps this under ~30 s while still covering every
# exploration test (serializability, shrinking, victimization, preemption).
t_exp0=$(date +%s%N)
LTSE_EXPLORE_SCHEDULES=300 cargo test -q --release --test integration_explore
t_exp1=$(date +%s%N)
echo "ok: exploration smoke in $(( (t_exp1 - t_exp0) / 1000000 )) ms"

echo "== bench smoke: hotpath suite in quick mode =="
# Asserts the suite runs and emits valid JSON with the expected shape; no
# timing thresholds — CI machines are too noisy for that.
bench_json=$(mktemp)
trap 'rm -f "$bench_json"' EXIT
LTSE_BENCH_QUICK=1 LTSE_BENCH_JSON="$bench_json" scripts/bench.sh 2>&1 | tail -5
python3 - "$bench_json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["bench"] == "hotpath", doc
assert doc["quick"] is True, "smoke must run in quick mode"
assert len(doc["cases"]) >= 7, f"expected >=7 cases, got {len(doc['cases'])}"
for c in doc["cases"]:
    assert c["best_ms"] > 0 and c["mean_ms"] >= c["best_ms"], c
assert set(doc["speedups"]) == {
    "sig_membership_bitselect", "sig_membership_bloom", "event_queue_churn",
}, doc["speedups"]
print("ok: BENCH json well-formed,", len(doc["cases"]), "cases")
EOF

echo "== determinism smoke: repro --quick, 1 vs. 4 workers =="
repro=target/release/repro
out1=$(mktemp) out4=$(mktemp)
trap 'rm -f "$out1" "$out4" "$bench_json"' EXIT

t_start=$(date +%s%N)
"$repro" --quick --jobs 1 all >"$out1" 2>/dev/null
t_mid=$(date +%s%N)
"$repro" --quick --jobs 4 all >"$out4" 2>/dev/null
t_end=$(date +%s%N)

if ! cmp -s "$out1" "$out4"; then
    echo "FAIL: quick repro stdout differs between --jobs 1 and --jobs 4" >&2
    diff "$out1" "$out4" | head -40 >&2
    exit 1
fi
echo "ok: stdout byte-identical across worker counts ($(wc -c <"$out1") bytes)"

# LTSE_JOBS env-var path: must also match.
LTSE_JOBS=4 "$repro" --quick all >"$out4" 2>/dev/null
if ! cmp -s "$out1" "$out4"; then
    echo "FAIL: LTSE_JOBS=4 stdout differs from --jobs 1" >&2
    exit 1
fi
echo "ok: LTSE_JOBS env path matches"

ms1=$(( (t_mid - t_start) / 1000000 ))
ms4=$(( (t_end - t_mid) / 1000000 ))
echo "wall: ${ms1} ms on 1 worker, ${ms4} ms on 4 workers"
cores=$(nproc 2>/dev/null || echo 1)
if [ "$cores" -ge 4 ]; then
    # Expect real parallel speedup when the hardware can provide it.
    if [ "$ms4" -gt $(( ms1 * 3 / 4 )) ]; then
        echo "WARN: <1.33x speedup on $cores cores (${ms1} -> ${ms4} ms)" >&2
    fi
else
    echo "note: only $cores core(s) available; skipping speedup check"
fi

echo "== verify OK =="
