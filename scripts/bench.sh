#!/usr/bin/env bash
# Run the benchmark suites and serialize the results to JSON files at the
# repo root:
#
#   BENCH_hotpath.json   — data-structure micro-benchmarks (signatures,
#                          event queue, end-to-end counter)
#   BENCH_pipeline.json  — pipeline-level benchmarks (run cache cold vs
#                          warm, sequential vs parallel exploration)
#   BENCH_obs.json       — observability-layer overhead (obs-off vs obs-on
#                          end to end, plus metric/span primitive costs)
#   BENCH_stm.json       — sim-vs-STM wall-clock comparison on Table-2
#                          workloads (real threads; host-speed numbers)
#   BENCH_scale.json     — 64/128/256-core scale sweep (per-event cost,
#                          256-context serializability-checked run, banked
#                          vs unbanked calendar-queue ratio)
#   BENCH_oltp.json      — open-loop OLTP driver: p50/p99/p999 commit
#                          latency + goodput per skew/mix point on both
#                          backends, and the million-transaction streaming
#                          run with its RSS bound
#   BENCH_policy.json    — adaptive contention management: every policy on
#                          contended workload points (Mp3d + two OLTP
#                          skew/mix points) on both backends, with the
#                          per-point best-static winner and Adaptive's gap
#
# Usage:
#   scripts/bench.sh                      # full run (~2-3 min), overwrites both files
#   LTSE_BENCH_QUICK=1 scripts/bench.sh   # CI smoke: tiny workloads, same JSON shape
#   LTSE_BENCH_DIR=out scripts/bench.sh   # write the JSON files elsewhere
#
# Each JSON carries baseline AND optimized timings for each path plus the
# derived speedups, so numbers are comparable across PRs: commit the files
# after a full run on a quiet machine and diff the "speedups" objects.
# Note: the explore_parallel speedup needs a multicore host — on one CPU it
# only measures pool overhead (the JSON records "cpus" for this reason).
set -euo pipefail
cd "$(dirname "$0")/.."

outdir="${LTSE_BENCH_DIR:-$PWD}"
# cargo runs benches with the package directory as cwd; anchor relative
# paths to the repo root.
case "$outdir" in /*) ;; *) outdir="$PWD/$outdir" ;; esac

for bench in hotpath pipeline obs stm scale oltp policy; do
    out="$outdir/BENCH_$bench.json"
    LTSE_BENCH_JSON="$out" cargo bench --bench "$bench"
    echo "bench results written to $out"
done

# Gate the explore_parallel speedup, but only where the hardware can deliver
# one: on a single-CPU host the parallel explorer measures pure pool
# overhead, so a ratio below 1.0 is expected and meaningless. nproc (not the
# JSON "cpus" field) decides the gate — it respects affinity masks, i.e. the
# parallelism the worker pool could actually use.
cpus=$(nproc 2>/dev/null || echo 1)
if [ "$cpus" -ge 2 ]; then
    python3 - "$outdir/BENCH_pipeline.json" <<'PYEOF'
import json, sys
doc = json.load(open(sys.argv[1]))
s = doc["speedups"]["explore_parallel"]
assert s is not None and s >= 1.0, (
    f"explore_parallel speedup {s} < 1.0 on a {doc['cpus']}-CPU host: "
    "the persistent worker pool should beat sequential exploration here")
print(f"ok: explore_parallel {s:.2f}x on {doc['cpus']} CPUs")
PYEOF
else
    echo "note: $cpus CPU detected — skipping the explore_parallel >= 1.0 gate"          "(single-core hosts measure pool overhead only)"
fi

# Gate per-event cost at scale: the banked calendar queue and the event-path
# work must keep 256-core per-event cost within 5% of the 64-core baseline.
# Timing ratios need a quiet multicore host to be meaningful; on one CPU the
# sweep still runs (the JSON is produced above) but the gate is skipped with
# a note, mirroring the explore_parallel policy.
if [ "$cpus" -ge 2 ]; then
    python3 - "$outdir/BENCH_scale.json" <<'PYEOF'
import json, sys
doc = json.load(open(sys.argv[1]))
s = doc["speedups"]["per_event_64_vs_256"]
assert s is not None and s >= 0.95, (
    f"per_event_64_vs_256 {s} < 0.95: per-event cost regressed at 256 cores")
q = doc["speedups"].get("queue_banked_vs_unbanked")
print(f"ok: per_event_64_vs_256 {s:.2f}x (gate >= 0.95), "
      f"queue banked/unbanked {q if q is None else f'{q:.2f}x'}")
PYEOF
else
    echo "note: $cpus CPU detected — skipping the per_event_64_vs_256 >= 0.95 gate"          "(single-core timing ratios are noise-bound; BENCH_scale.json still records them)"
fi

# Gate the adaptive contention manager: on every *simulated* point (cycle-
# denominated, deterministic on any host) Adaptive must stay within 5% of
# the best static policy. The wall-clock STM points get the same gate only
# on a multicore host — single-CPU STM goodput is scheduler noise, so there
# the JSON records the ratios but the gate is skipped with a note.
python3 - "$outdir/BENCH_policy.json" <<'PYEOF'
import json, sys
doc = json.load(open(sys.argv[1]))
if doc["quick"]:
    print("note: quick mode — policy gates are full-scale only "
          "(BENCH_policy.json still records the ratios)")
    sys.exit(0)
sim = [p for p in doc["points"] if p["backend"] == "sim"]
assert sim, "policy bench produced no sim points"
for p in sim:
    assert p["adaptive_vs_best"] >= 0.95, (
        f"{p['point']}/sim: adaptive at {p['adaptive_vs_best']:.3f} of the "
        f"best policy ({p['best_static_policy']}) — gate is >= 0.95")
winners = doc["summary"]["static_winners"]
assert len(winners) >= 2, f"policy sweep found only one static winner: {winners}"
print(f"ok: adaptive within 5% of best on all {len(sim)} sim points; "
      f"static winners: {', '.join(winners)}")
PYEOF
if [ "$cpus" -ge 2 ]; then
    python3 - "$outdir/BENCH_policy.json" <<'PYEOF'
import json, sys
doc = json.load(open(sys.argv[1]))
if doc["quick"]:
    sys.exit(0)
stm = [p for p in doc["points"] if p["backend"] == "stm"]
for p in stm:
    assert p["adaptive_vs_best"] >= 0.95, (
        f"{p['point']}/stm: adaptive goodput at {p['adaptive_vs_best']:.3f} of "
        f"the best static policy ({p['best_static_policy']}) — gate is >= 0.95")
print(f"ok: adaptive within 5% of best static goodput on {len(stm)} stm points")
PYEOF
else
    echo "note: $cpus CPU detected — skipping the stm adaptive >= 0.95 goodput gate"          "(single-CPU wall-clock goodput is noise-bound; BENCH_policy.json still records it)"
fi
