#!/usr/bin/env bash
# Run the hot-path micro-benchmark suite and serialize the results to
# BENCH_hotpath.json at the repo root.
#
# Usage:
#   scripts/bench.sh                 # full run (~1-2 min), overwrites BENCH_hotpath.json
#   LTSE_BENCH_QUICK=1 scripts/bench.sh   # CI smoke: tiny workloads, same JSON shape
#   LTSE_BENCH_JSON=out.json scripts/bench.sh   # write elsewhere
#
# The JSON carries baseline AND optimized timings for each hot path plus the
# derived speedups, so numbers are comparable across PRs: commit the file
# after a full run on a quiet machine and diff the "speedups" object.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${LTSE_BENCH_JSON:-BENCH_hotpath.json}"
# cargo runs benches with the package directory as cwd; anchor relative
# paths to the repo root.
case "$out" in /*) ;; *) out="$PWD/$out" ;; esac

LTSE_BENCH_JSON="$out" cargo bench --bench hotpath

echo "bench results written to $out"
