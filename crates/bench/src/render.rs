//! Aligned-text rendering of experiment results (what `repro` prints).

use crate::experiments::{
    Fig4Row, LogFilterRow, MultiCmpRow, NestingRow, OltpRow, PolicyRow, PolicySweepRow, SmtRow,
    SnoopRow, StickyRow, StmRow, SweepRow, Table2Row, Table3Row, VictimRow, VirtRow,
};
use ltse_workloads::BackendKind;

/// Renders the STM-vs-simulator backend comparison. The simulator columns
/// are deterministic; the `StmWall`/`Stm u/ms` columns are real wall clock
/// from real threads and vary run to run (which is why `repro` only prints
/// this table when `--backend stm` is asked for explicitly).
pub fn render_stm(rows: &[StmRow]) -> String {
    let mut out = String::new();
    out.push_str("STM backend: TL2 software TM vs. cycle-level simulator, same workloads\n");
    out.push_str(&format!(
        "{:<12} {:>7} {:>6} {:>12} {:>8} {:>8} {:>9} {:>10} {:>8} {:>8} {:>9}\n",
        "Benchmark",
        "Threads",
        "Units",
        "SimCycles",
        "SimTxns",
        "SimAbrt",
        "Sim u/kc",
        "StmWallMs",
        "StmTxns",
        "StmAbrt",
        "Stm u/ms"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<12} {:>7} {:>6} {:>12} {:>8} {:>8} {:>9.3} {:>10.3} {:>8} {:>8} {:>9.1}\n",
            r.benchmark.name(),
            r.threads,
            r.units,
            r.sim_cycles,
            r.sim_commits,
            r.sim_aborts,
            r.sim_units_per_kcycle,
            r.stm_wall_ms,
            r.stm_commits,
            r.stm_aborts,
            r.stm_units_per_ms
        ));
    }
    out
}

/// Renders the open-loop OLTP skew/mix points: commit-latency SLOs
/// (p50/p99/p999) and goodput per point. Sim rows are cycle-denominated
/// and byte-deterministic; stm rows are wall-clock nanoseconds and vary
/// run to run (they only appear under `--backend stm`).
pub fn render_oltp(rows: &[OltpRow]) -> String {
    let mut out = String::new();
    out.push_str("OLTP open-loop driver: commit-latency SLOs by skew/mix point\n");
    out.push_str(&format!(
        "{:<16} {:>7} {:>6} {:>5} {:>9} {:>8} {:>10} {:>10} {:>10} {:>6} {:>11} {:>16}\n",
        "Point",
        "Backend",
        "Zipf",
        "Rd%",
        "Committed",
        "Aborts",
        "p50",
        "p99",
        "p999",
        "Unit",
        "Goodput",
        "KvFingerprint"
    ));
    for r in rows {
        // Goodput is committed tx per simulated megacycle (deterministic)
        // on sim, committed tx per wall-clock second on stm.
        let (unit, goodput) = match r.backend {
            BackendKind::Sim => {
                let cycles = r.sim_cycles.unwrap_or(0);
                let g = if cycles > 0 {
                    r.committed as f64 * 1e6 / cycles as f64
                } else {
                    0.0
                };
                ("cyc", format!("{g:>8.3}/Mc"))
            }
            BackendKind::Stm => {
                let secs = r.wall_ms / 1e3;
                let g = if secs > 0.0 {
                    r.committed as f64 / secs
                } else {
                    0.0
                };
                ("ns", format!("{g:>9.0}/s"))
            }
        };
        out.push_str(&format!(
            "{:<16} {:>7} {:>6} {:>5} {:>9} {:>8} {:>10} {:>10} {:>10} {:>6} {:>11} {:>16}\n",
            r.point,
            r.backend.name(),
            format!("0.{:03}", r.theta_permille),
            r.read_pct,
            r.committed,
            r.aborts,
            r.p50,
            r.p99,
            r.p999,
            unit,
            goodput,
            format!("{:016x}", r.kv_fingerprint)
        ));
    }
    out
}

/// Renders the adaptive contention-management policy sweep: every policy on
/// every contended point, grouped per (workload, backend) with the winner
/// starred and Adaptive's gap to the per-point best. Sim scores are
/// committed work per simulated megacycle (deterministic); stm scores are
/// committed transactions per wall-clock second (noisy, run to run).
pub fn render_policy_sweep(rows: &[PolicySweepRow]) -> String {
    let mut out = String::new();
    out.push_str("Policy sweep: contention managers on contended workloads, both backends\n");
    out.push_str(&format!(
        "{:<20} {:>7} {:<17} {:>12} {:>9} {:>9} {:>7} {:>5} {:>9}\n",
        "Point", "Backend", "Policy", "Score", "Committed", "Aborts", "SerEsc", "Done", "vs.best"
    ));
    // Preserve row order but group per (workload, backend) point.
    let mut points: Vec<(&str, BackendKind)> = Vec::new();
    for r in rows {
        if !points.contains(&(r.workload, r.backend)) {
            points.push((r.workload, r.backend));
        }
    }
    for (workload, backend) in points {
        let group: Vec<&PolicySweepRow> = rows
            .iter()
            .filter(|r| r.workload == workload && r.backend == backend)
            .collect();
        let best = group.iter().map(|r| r.score).fold(0.0_f64, f64::max);
        for r in &group {
            let is_best = r.score == best && best > 0.0;
            let rel = if best > 0.0 { r.score / best } else { 0.0 };
            out.push_str(&format!(
                "{:<20} {:>7} {:<17} {:>12.3} {:>9} {:>9} {:>7} {:>5} {:>8.1}%{}\n",
                r.workload,
                r.backend.name(),
                r.policy.name(),
                r.score,
                r.committed,
                r.aborts,
                r.serial_escalations,
                if r.completed { "yes" } else { "NO" },
                rel * 100.0,
                if is_best { " *" } else { "" },
            ));
        }
    }
    out
}

/// Renders Figure 4 as a table of speedups (mean ± 95 % CI half-width).
pub fn render_figure4(rows: &[Fig4Row]) -> String {
    let mut out = String::new();
    out.push_str("Figure 4: speedup normalized to locks (mean ± 95% CI)\n");
    out.push_str(&format!("{:<12}", "Benchmark"));
    if let Some(first) = rows.first() {
        for bar in &first.bars {
            out.push_str(&format!(" {:>14}", bar.label));
        }
    }
    out.push('\n');
    for row in rows {
        out.push_str(&format!("{:<12}", row.benchmark.name()));
        for bar in &row.bars {
            match bar.ci95 {
                Some(ci) => out.push_str(&format!(" {:>7.2} ±{:>4.2}", bar.speedup, ci)),
                // One seed: the interval is undefined, not ±0.00.
                None => out.push_str(&format!(" {:>7.2} ± n/a", bar.speedup)),
            }
        }
        out.push('\n');
    }
    out
}

/// Renders Table 2.
pub fn render_table2(rows: &[Table2Row]) -> String {
    let mut out = String::new();
    out.push_str("Table 2: benchmarks and measured transaction footprints\n");
    out.push_str(&format!(
        "{:<12} {:<22} {:<28} {:>7} {:>8} {:>8} {:>8} {:>8} {:>9} {:>9}\n",
        "Benchmark", "Input", "Unit of Work", "Units", "Txns", "ReadAvg", "ReadP95", "ReadMax",
        "WriteAvg", "WriteMax"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<12} {:<22} {:<28} {:>7} {:>8} {:>8.1} {:>8} {:>8} {:>9.1} {:>9}\n",
            r.benchmark.name(),
            r.input,
            r.unit,
            r.units,
            r.transactions,
            r.read_avg,
            r.read_p95,
            r.read_max,
            r.write_avg,
            r.write_max
        ));
    }
    out
}

/// Renders Table 3.
pub fn render_table3(rows: &[Table3Row]) -> String {
    let mut out = String::new();
    out.push_str("Table 3: impact of signature configuration on conflict detection\n");
    out.push_str(&format!(
        "{:<12} {:<10} {:>8} {:>8} {:>8} {:>8}\n",
        "Benchmark", "Signature", "Txns", "Aborts", "Stalls", "FalseP%"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<12} {:<10} {:>8} {:>8} {:>8} {:>8}\n",
            r.benchmark.name(),
            r.signature.label(),
            r.transactions,
            r.aborts,
            r.stalls,
            r.false_positive_pct
                .map(|p| format!("{p:.1}"))
                .unwrap_or_else(|| "-".into()),
        ));
    }
    out
}

/// Renders the Result 4 victimization summary.
pub fn render_victimization(rows: &[VictimRow]) -> String {
    let mut out = String::new();
    out.push_str("Result 4: victimization of transactional blocks (L1+L2, exact)\n");
    out.push_str(&format!(
        "{:<12} {:>10} {:>15} {:>12}\n",
        "Benchmark", "Txns", "Victimizations", "Broadcasts"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<12} {:>10} {:>15} {:>12}\n",
            r.benchmark.name(),
            r.transactions,
            r.victimizations,
            r.broadcasts
        ));
    }
    out
}

/// Renders the signature-size sweep (ablation A1).
pub fn render_sweep(rows: &[SweepRow]) -> String {
    let mut out = String::new();
    out.push_str("Ablation A1: signature size sweep (speedup vs locks; FP%)\n");
    out.push_str(&format!(
        "{:<12} {:<10} {:>8} {:>8} {:>8}\n",
        "Benchmark", "Signature", "Speedup", "FalseP%", "Aborts"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<12} {:<10} {:>8.2} {:>8} {:>8}\n",
            r.benchmark.name(),
            r.signature.label(),
            r.speedup,
            r.false_positive_pct
                .map(|p| format!("{p:.1}"))
                .unwrap_or_else(|| "-".into()),
            r.aborts
        ));
    }
    out
}

/// Renders the sticky-state ablation (A2).
pub fn render_sticky(rows: &[StickyRow]) -> String {
    let mut out = String::new();
    out.push_str("Ablation A2: sticky states on/off\n");
    out.push_str(&format!(
        "{:<14} {:<7} {:>12} {:>8} {:>15} {:>10}\n",
        "Workload", "Sticky", "Cycles", "Aborts", "Victimizations", "Finished"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<14} {:<7} {:>12} {:>8} {:>15} {:>10}\n",
            r.workload,
            r.sticky,
            r.cycles.as_u64(),
            r.aborts,
            r.victimizations,
            if r.completed { "yes" } else { "LIVELOCK" }
        ));
    }
    out
}

/// Renders the log-filter ablation (A3).
pub fn render_log_filter(rows: &[LogFilterRow]) -> String {
    let mut out = String::new();
    out.push_str("Ablation A3: log-filter size (repeated-writer micro)\n");
    out.push_str(&format!(
        "{:>8} {:>10} {:>11} {:>12}\n",
        "Entries", "LogWrites", "Suppressed", "Cycles"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>8} {:>10} {:>11} {:>12}\n",
            r.entries,
            r.log_writes,
            r.suppressed,
            r.cycles.as_u64()
        ));
    }
    out
}

/// Renders the virtualization-overhead ablation (A4).
pub fn render_virt(rows: &[VirtRow]) -> String {
    let mut out = String::new();
    out.push_str("Ablation A4: context-switch virtualization overhead (BerkeleyDB, 1.5× oversubscribed)\n");
    out.push_str(&format!(
        "{:>10} {:>7} {:>12} {:>8} {:>10} {:>14} {:>16} {:>8}\n",
        "Quantum", "Defer", "Cycles", "Units", "Cyc/Unit", "TxDeschedules", "SummaryInstalls", "Aborts"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>10} {:>7} {:>12} {:>8} {:>10.0} {:>14} {:>16} {:>8}\n",
            r.quantum
                .map(|q| q.as_u64().to_string())
                .unwrap_or_else(|| "-".into()),
            r.defer_in_tx,
            r.cycles.as_u64(),
            r.units,
            r.cycles.as_u64() as f64 / r.units.max(1) as f64,
            r.tx_deschedules,
            r.summary_installs,
            r.aborts
        ));
    }
    out
}

/// Renders the SMT comparison.
pub fn render_smt(rows: &[SmtRow]) -> String {
    let mut out = String::new();
    out.push_str("SMT: 32 threads on 16×2 SMT vs. 32×1 cores\n");
    out.push_str(&format!(
        "{:<12} {:<10} {:>12} {:>14} {:>10}\n",
        "Benchmark", "Machine", "Cycles", "SiblingStalls", "Stalls"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<12} {:<10} {:>12} {:>14} {:>10}\n",
            r.benchmark.name(),
            r.machine,
            r.cycles.as_u64(),
            r.sibling_stalls,
            r.stalls
        ));
    }
    out
}

/// Renders the nesting ablation.
pub fn render_nesting(rows: &[NestingRow]) -> String {
    let mut out = String::new();
    out.push_str("Nesting ablation: flat vs. closed-nested contended phase (§3.2)\n");
    out.push_str(&format!(
        "{:<8} {:>12} {:>8} {:>14} {:>12}\n",
        "Shape", "Cycles", "Aborts", "PartialAborts", "WastedCyc"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<8} {:>12} {:>8} {:>14} {:>12}\n",
            r.shape,
            r.cycles.as_u64(),
            r.aborts,
            r.partial_aborts,
            r.wasted_cycles
        ));
    }
    out
}

/// Renders the §7 multiple-CMP comparison.
pub fn render_multi_cmp(rows: &[MultiCmpRow]) -> String {
    let mut out = String::new();
    out.push_str("§7: multiple CMPs — partitioning 16 cores over chips\n");
    out.push_str(&format!(
        "{:<12} {:>6} {:>12} {:>12} {:>12}\n",
        "Benchmark", "Chips", "Cycles", "Interchip", "Messages"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<12} {:>6} {:>12} {:>12} {:>12}\n",
            r.benchmark.name(),
            r.chips,
            r.cycles.as_u64(),
            r.interchip_messages,
            r.messages
        ));
    }
    out
}

/// Renders the contention-manager comparison.
pub fn render_policies(rows: &[PolicyRow]) -> String {
    let mut out = String::new();
    out.push_str("Contention managers on NACKs (future-work hook of §2)\n");
    out.push_str(&format!(
        "{:<12} {:<16} {:>12} {:>8} {:>10} {:>12} {:>10}\n",
        "Benchmark", "Policy", "Cycles", "Aborts", "Stalls", "WastedCyc", "Finished"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<12} {:<16} {:>12} {:>8} {:>10} {:>12} {:>10}\n",
            r.benchmark.name(),
            format!("{:?}", r.policy),
            r.cycles.as_u64(),
            r.aborts,
            r.stalls,
            r.wasted_cycles,
            if r.completed { "yes" } else { "LIVELOCK" }
        ));
    }
    out
}

/// Renders the §7 directory-vs-snooping comparison.
pub fn render_snooping(rows: &[SnoopRow]) -> String {
    let mut out = String::new();
    out.push_str("§7: directory vs. snooping coherence (TM mode)\n");
    out.push_str(&format!(
        "{:<12} {:<10} {:<10} {:>12} {:>12} {:>8} {:>8}\n",
        "Benchmark", "Coherence", "Signature", "Cycles", "Messages", "Stalls", "FalseP%"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<12} {:<10} {:<10} {:>12} {:>12} {:>8} {:>8}\n",
            r.benchmark.name(),
            r.coherence.to_string(),
            r.signature.label(),
            r.cycles.as_u64(),
            r.messages,
            r.stalls,
            r.false_positive_pct
                .map(|p| format!("{p:.1}"))
                .unwrap_or_else(|| "-".into()),
        ));
    }
    out
}

/// CSV form of Figure 4 (one row per benchmark × bar) for plotting.
pub fn csv_figure4(rows: &[Fig4Row]) -> String {
    let mut out = String::from("benchmark,config,speedup,ci95
");
    for row in rows {
        for bar in &row.bars {
            out.push_str(&format!(
                "{},{},{:.4},{}
",
                row.benchmark.name(),
                bar.label,
                bar.speedup,
                bar.ci95.map(|c| format!("{c:.4}")).unwrap_or_default()
            ));
        }
    }
    out
}

/// CSV form of Table 2.
pub fn csv_table2(rows: &[Table2Row]) -> String {
    let mut out =
        String::from("benchmark,units,transactions,read_avg,read_p95,read_max,write_avg,write_max
");
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{:.2},{},{},{:.2},{}
",
            r.benchmark.name(),
            r.units,
            r.transactions,
            r.read_avg,
            r.read_p95,
            r.read_max,
            r.write_avg,
            r.write_max
        ));
    }
    out
}

/// CSV form of Table 3.
pub fn csv_table3(rows: &[Table3Row]) -> String {
    let mut out = String::from("benchmark,signature,transactions,aborts,stalls,false_positive_pct
");
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{},{},{}
",
            r.benchmark.name(),
            r.signature.label(),
            r.transactions,
            r.aborts,
            r.stalls,
            r.false_positive_pct
                .map(|p| format!("{p:.2}"))
                .unwrap_or_default(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::ExperimentScale;

    #[test]
    fn renders_are_nonempty_and_headed() {
        let tiny = ExperimentScale {
            threads: 4,
            units_per_thread: 2,
            seeds: 2,
            base_seed: 3,
            warmup_units: 0,
        };
        let f4 = render_figure4(&crate::figure4(&tiny).expect("sweep"));
        assert!(f4.contains("Figure 4"));
        assert!(f4.contains("BerkeleyDB"));
        assert!(f4.contains("BS_64"));

        let t2 = render_table2(&crate::table2(&tiny).expect("sweep"));
        assert!(t2.contains("Table 2"));
        assert!(t2.contains("tk14.O"));
    }

    #[test]
    fn stm_render_lists_every_column_once_per_row() {
        let row = StmRow {
            benchmark: ltse_workloads::Benchmark::Mp3d,
            threads: 4,
            units: 8,
            sim_cycles: 120_000,
            sim_commits: 40,
            sim_aborts: 2,
            sim_units_per_kcycle: 0.066,
            stm_wall_ms: 1.25,
            stm_commits: 44,
            stm_aborts: 3,
            stm_units_per_ms: 6.4,
        };
        let text = render_stm(&[row]);
        assert!(text.starts_with("STM backend:"));
        assert_eq!(text.lines().count(), 3, "title + header + one row");
        assert!(text.contains("Mp3d"));
        assert!(text.contains("120000"));
    }

    #[test]
    fn csv_emitters_are_machine_readable() {
        let tiny = ExperimentScale {
            threads: 4,
            units_per_thread: 2,
            seeds: 2,
            base_seed: 3,
            warmup_units: 0,
        };
        let f4 = csv_figure4(&crate::figure4(&tiny).expect("sweep"));
        let lines: Vec<&str> = f4.lines().collect();
        assert_eq!(lines[0], "benchmark,config,speedup,ci95");
        assert_eq!(lines.len(), 1 + 5 * 6, "5 benchmarks × 6 bars");
        for line in &lines[1..] {
            assert_eq!(line.split(',').count(), 4);
        }
        let t2 = csv_table2(&crate::table2(&tiny).expect("sweep"));
        assert!(t2.starts_with("benchmark,units,transactions"));
        assert_eq!(t2.lines().count(), 6);
        let t3 = csv_table3(&crate::table3(&tiny).expect("sweep"));
        assert!(t3.lines().count() > 10);
    }
}
