//! Experiment harness: every table and figure of the paper's evaluation,
//! regenerated as structured data plus aligned-text rendering.
//!
//! The `repro` binary is the command-line front end; the `benches/` timing
//! targets reuse the same experiment functions at reduced scale. See
//! DESIGN.md's experiment index for the mapping from paper artifact to
//! function. All sweeps fan out through [`runner`], a deterministic
//! parallel pool with per-run panic isolation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod experiments;
pub mod harness;
pub mod render;
pub mod runner;
pub mod stats_json;

pub use experiments::{
    contention_policies, figure4, log_filter_ablation, multi_cmp_comparison, nesting_ablation,
    oltp_compare, oltp_config, oltp_experiment, policy_oltp_config, policy_sweep, signature_sweep,
    smt_comparison, snooping_comparison, sticky_ablation, stm_compare, table2, table3,
    victimization, virtualization_overhead, ExperimentScale, Fig4Bar, Fig4Row, LogFilterRow,
    MultiCmpRow, NestingRow, OltpRow, PolicyRow, PolicySweepRow, SmtRow, SnoopRow, StickyRow,
    StmRow, SweepRow, Table2Row, Table3Row, VictimRow, VirtRow, OLTP_POINTS, POLICY_OLTP_POINTS,
};
