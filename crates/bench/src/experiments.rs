//! The experiment implementations.
//!
//! Every experiment builds its full list of independent simulation runs as
//! labelled [`RunSpec`]s and fans them out through [`crate::runner`] — the
//! parallel, deterministic, panic-isolated pool. Results come back in
//! submission order, so every table below is byte-identical regardless of
//! worker count; a diverging configuration surfaces as a labelled entry in
//! the returned [`SweepError`] instead of killing the sweep.

use logtm_se::{ContentionPolicy, CoherenceKind, Cycle, SignatureKind, SystemBuilder};
use ltse_sim::config::seed_sequence;
use ltse_sim::parallel::RunSpec;
use ltse_sim::stats::SampleSet;
use ltse_workloads::{
    run_benchmark, run_oltp, run_oltp_with, run_on_backend, BackendKind, Benchmark, OltpConfig,
    PolicyTune, RunParams, SyncMode,
};

use crate::cache::{fp_params, run_fp};
use crate::runner::{sweep, sweep_ok, FailedRun, SweepError};

/// How big each experiment runs: the trade-off between statistical quality
/// and wall-clock time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentScale {
    /// Worker threads (the paper's machine has 32 contexts).
    pub threads: u32,
    /// Units of work per thread.
    pub units_per_thread: u64,
    /// Seeds per datapoint (95 % CIs need several; the paper perturbs each
    /// simulation pseudo-randomly, §6.1).
    pub seeds: usize,
    /// Base seed for the seed sequence.
    pub base_seed: u64,
    /// Total units of work run (and discarded) before measurement starts —
    /// the paper's warmed "representative execution samples" (§6.2).
    pub warmup_units: u64,
}

impl ExperimentScale {
    /// Full scale for the `repro` binary (minutes of wall clock).
    pub fn full() -> Self {
        ExperimentScale {
            threads: 32,
            units_per_thread: 24,
            seeds: 5,
            base_seed: 0xC0FFEE,
            warmup_units: 96,
        }
    }

    /// Reduced scale for timing benches and smoke tests (seconds).
    pub fn quick() -> Self {
        ExperimentScale {
            threads: 8,
            units_per_thread: 6,
            seeds: 3,
            base_seed: 0xC0FFEE,
            warmup_units: 8,
        }
    }
}

fn params(
    scale: &ExperimentScale,
    benchmark: Benchmark,
    mode: SyncMode,
    signature: SignatureKind,
    seed: u64,
) -> RunParams {
    RunParams {
        benchmark,
        mode,
        signature,
        threads: scale.threads,
        units_per_thread: scale.units_per_thread,
        seed,
        small_machine: false,
        sticky: true,
        log_filter_entries: 16,
        coherence: CoherenceKind::DirectoryMesi,
        warmup_units: 0,
    }
}

// ---------------------------------------------------------------------
// Contention-manager comparison (the paper's future-work hook)
// ---------------------------------------------------------------------

/// One datapoint of the contention-policy comparison.
#[derive(Debug, Clone)]
pub struct PolicyRow {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// The policy.
    pub policy: logtm_se::ContentionPolicy,
    /// Cycles to complete the fixed work.
    pub cycles: Cycle,
    /// Aborts.
    pub aborts: u64,
    /// Stalls.
    pub stalls: u64,
    /// Cycles inside transactions that ultimately aborted.
    pub wasted_cycles: u64,
    /// Whether the run finished its fixed work (the naive
    /// requester-aborts manager can livelock under heavy contention —
    /// exactly why LogTM's default stalls).
    pub completed: bool,
}

/// Compares the three contention managers on the two most contended
/// benchmarks. Hitting the cycle watchdog is a *result* here (the
/// livelock-prone manager demonstrably livelocking), not a failure, so
/// these runs handle the simulator error internally.
pub fn contention_policies(scale: &ExperimentScale) -> Result<Vec<PolicyRow>, SweepError> {
    use logtm_se::ContentionPolicy;
    let scale = *scale;
    let seed = seed_sequence(scale.base_seed, 1)[0];
    let mut specs = Vec::new();
    for benchmark in [Benchmark::BerkeleyDb, Benchmark::Raytrace] {
        for policy in [
            ContentionPolicy::RequesterStalls,
            ContentionPolicy::RequesterAborts,
            ContentionPolicy::SizeMatters,
        ] {
            let fp = run_fp("contention_policies")
                .feed(&benchmark)
                .feed(&policy)
                .feed(&seed)
                .feed(&scale.threads)
                .feed(&scale.units_per_thread)
                .finish();
            specs.push(RunSpec::new(
                format!("contention/{benchmark}/{policy:?}"),
                move || {
                    let mut system = SystemBuilder::paper_default()
                        .signature(SignatureKind::paper_bs_2kb())
                        .contention(policy)
                        .seed(seed)
                        .limits(ltse_sim::config::SimLimits {
                            max_cycles: Cycle(10_000_000),
                            max_events: 1_000_000_000,
                        })
                        .build();
                    for program in
                        benchmark.programs(SyncMode::Tm, scale.threads, scale.units_per_thread)
                    {
                        system.add_thread(program);
                    }
                    let completed = system.run().is_ok();
                    let r = system.report();
                    PolicyRow {
                        benchmark,
                        policy,
                        cycles: r.cycles,
                        aborts: r.tm.aborts,
                        stalls: r.tm.stalls,
                        wasted_cycles: r.tm.wasted_cycles,
                        completed,
                    }
                },
            ).keyed(fp));
        }
    }
    sweep_ok("contention_policies", specs)
}

// ---------------------------------------------------------------------
// SMT: 32 contexts as 16×2 SMT vs. 32×1 single-threaded cores
// ---------------------------------------------------------------------

/// One datapoint of the SMT comparison.
#[derive(Debug, Clone)]
pub struct SmtRow {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// `"16x2 SMT"` or `"32x1"`.
    pub machine: &'static str,
    /// Cycles to complete the fixed work.
    pub cycles: Cycle,
    /// Stalls caused by the SMT sibling sharing the L1 (zero without SMT).
    pub sibling_stalls: u64,
    /// All stalls.
    pub stalls: u64,
}

/// Compares 32 threads on the paper's 16-core × 2-SMT machine against the
/// same threads on 32 single-threaded cores. LogTM-SE's pitch is that SMT
/// costs only replicated signatures (cheap); the residual difference is L1
/// sharing and same-core conflict checks — both measured here.
pub fn smt_comparison(scale: &ExperimentScale) -> Result<Vec<SmtRow>, SweepError> {
    let scale = *scale;
    let seed = seed_sequence(scale.base_seed, 1)[0];
    let mut specs = Vec::new();
    for benchmark in [Benchmark::Mp3d, Benchmark::BerkeleyDb] {
        for (machine, n_cores, smt, grid) in
            [("16x2 SMT", 16u16, 2u8, (4usize, 4usize)), ("32x1", 32, 1, (6, 6))]
        {
            let fp = run_fp("smt_comparison")
                .feed(&benchmark)
                .feed(&n_cores)
                .feed(&smt)
                .feed(&grid.0)
                .feed(&grid.1)
                .feed(&seed)
                .feed(&scale.units_per_thread)
                .finish();
            specs.push(RunSpec::new(format!("smt/{benchmark}/{machine}"), move || {
                let mut mem = logtm_se::MemConfig::paper_cmp();
                mem.n_cores = n_cores;
                mem.smt_per_core = smt;
                mem.grid_width = grid.0;
                mem.grid_height = grid.1;
                let mut system = SystemBuilder::paper_default()
                    .mem_config(mem)
                    .signature(SignatureKind::paper_bs_2kb())
                    .seed(seed)
                    .build();
                for program in benchmark.programs(SyncMode::Tm, 32, scale.units_per_thread) {
                    system.add_thread(program);
                }
                let r = system.run()?;
                Ok::<_, logtm_se::RunError>(SmtRow {
                    benchmark,
                    machine,
                    cycles: r.cycles,
                    sibling_stalls: r.tm.sibling_stalls,
                    stalls: r.tm.stalls,
                })
            }).keyed(fp));
        }
    }
    sweep("smt_comparison", specs)
}

// ---------------------------------------------------------------------
// Nesting ablation: what partial aborts buy (§3.2)
// ---------------------------------------------------------------------

/// One datapoint of the nesting ablation.
#[derive(Debug, Clone)]
pub struct NestingRow {
    /// `"flat"` or `"nested"`.
    pub shape: &'static str,
    /// Cycles to complete the fixed work.
    pub cycles: Cycle,
    /// Outermost aborts.
    pub aborts: u64,
    /// Partial (inner-frame) aborts.
    pub partial_aborts: u64,
    /// Cycles invested in transactions that ultimately aborted.
    pub wasted_cycles: u64,
}

/// A synthetic producer whose expensive private phase precedes a contended
/// shared phase. Flat transactions lose the private work on every conflict;
/// closed nesting confines aborts to the cheap inner frame (§3.2's
/// motivation for partial aborts).
pub fn nesting_ablation(scale: &ExperimentScale) -> Result<Vec<NestingRow>, SweepError> {
    use logtm_se::{Op, ProgCtx, ThreadProgram, WordAddr};

    struct Producer {
        nested: bool,
        me: u64,
        remaining: u64,
        step: u8,
    }
    impl ThreadProgram for Producer {
        fn next_op(&mut self, _t: &mut ProgCtx) -> Op {
            let hot = |i: u64| WordAddr((i % 2) * 8);
            match self.step {
                0 => {
                    if self.remaining == 0 {
                        return Op::Done;
                    }
                    self.step = 1;
                    Op::TxBegin
                }
                // Expensive private phase: read + write a private slab.
                1 => {
                    self.step = 2;
                    Op::FetchAdd(WordAddr(4096 + self.me * 64), 1)
                }
                2 => {
                    self.step = 3;
                    Op::Work(2_500)
                }
                3 => {
                    self.step = 4;
                    if self.nested {
                        Op::TxBegin // inner frame around the contended phase
                    } else {
                        Op::Work(1)
                    }
                }
                // Contended phase: opposite-order hot pair ⇒ deadlocks.
                4 => {
                    self.step = 5;
                    Op::FetchAdd(hot(self.me), 1)
                }
                5 => {
                    self.step = 6;
                    Op::Work(80)
                }
                6 => {
                    self.step = 7;
                    Op::FetchAdd(hot(self.me + 1), 1)
                }
                7 => {
                    self.step = 8;
                    if self.nested {
                        Op::TxCommit // inner
                    } else {
                        Op::Work(1)
                    }
                }
                8 => {
                    self.step = 9;
                    Op::TxCommit // outer
                }
                _ => {
                    self.step = 0;
                    self.remaining -= 1;
                    Op::WorkUnitDone
                }
            }
        }
        fn on_tx_abort(&mut self, _t: &mut ProgCtx) {
            self.step = 0;
        }
        fn on_partial_abort(&mut self, _t: &mut ProgCtx, remaining_depth: usize) -> bool {
            debug_assert_eq!(remaining_depth, 1);
            self.step = 3; // retry from the inner begin; private work kept
            true
        }
    }

    let scale = *scale;
    let seed = seed_sequence(scale.base_seed, 1)[0];
    let specs = [("flat", false), ("nested", true)]
        .into_iter()
        .map(|(shape, nested)| {
            let fp = run_fp("nesting_ablation")
                .feed(&nested)
                .feed(&seed)
                .feed(&scale.threads.min(16))
                .feed(&scale.units_per_thread)
                .finish();
            RunSpec::new(format!("nesting/{shape}"), move || {
                let mut system = SystemBuilder::paper_default()
                    .signature(SignatureKind::paper_bs_2kb())
                    .seed(seed)
                    .build();
                for t in 0..scale.threads.min(16) as u64 {
                    system.add_thread(Box::new(Producer {
                        nested,
                        me: t,
                        remaining: scale.units_per_thread,
                        step: 0,
                    }));
                }
                let r = system.run()?;
                Ok::<_, logtm_se::RunError>(NestingRow {
                    shape,
                    cycles: r.cycles,
                    aborts: r.tm.aborts,
                    partial_aborts: r.tm.partial_aborts,
                    wasted_cycles: r.tm.wasted_cycles,
                })
            })
            .keyed(fp)
        })
        .collect();
    sweep("nesting_ablation", specs)
}

// ---------------------------------------------------------------------
// §7: the multiple-CMP system
// ---------------------------------------------------------------------

/// One datapoint of the §7 multiple-CMP comparison.
#[derive(Debug, Clone)]
pub struct MultiCmpRow {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Chips the 16 cores are partitioned over.
    pub chips: u8,
    /// Cycles to complete the fixed work.
    pub cycles: Cycle,
    /// Messages that crossed a chip boundary.
    pub interchip_messages: u64,
    /// Total protocol messages.
    pub messages: u64,
}

/// Compares the single-CMP baseline against 2- and 4-chip partitions of
/// the same 16-core machine (paper §7 "Multiple CMPs": inter-chip directory
/// coherence over point-to-point links).
pub fn multi_cmp_comparison(scale: &ExperimentScale) -> Result<Vec<MultiCmpRow>, SweepError> {
    let scale = *scale;
    let seed = seed_sequence(scale.base_seed, 1)[0];
    let mut specs = Vec::new();
    for benchmark in [Benchmark::Mp3d, Benchmark::BerkeleyDb] {
        for chips in [1u8, 2, 4] {
            let fp = run_fp("multi_cmp_comparison")
                .feed(&benchmark)
                .feed(&chips)
                .feed(&seed)
                .feed(&scale.threads)
                .feed(&scale.units_per_thread)
                .finish();
            specs.push(RunSpec::new(
                format!("multi_cmp/{benchmark}/chips={chips}"),
                move || {
                    let mut system = SystemBuilder::paper_default()
                        .signature(SignatureKind::paper_bs_2kb())
                        .chips(chips)
                        .seed(seed)
                        .build();
                    for program in
                        benchmark.programs(SyncMode::Tm, scale.threads, scale.units_per_thread)
                    {
                        system.add_thread(program);
                    }
                    let r = system.run()?;
                    Ok::<_, logtm_se::RunError>(MultiCmpRow {
                        benchmark,
                        chips,
                        cycles: r.cycles,
                        interchip_messages: r.mem.interchip_messages.get(),
                        messages: r.mem.messages.get(),
                    })
                },
            ).keyed(fp));
        }
    }
    sweep("multi_cmp_comparison", specs)
}

// ---------------------------------------------------------------------
// §7: the snooping-CMP variant
// ---------------------------------------------------------------------

/// One datapoint of the §7 directory-vs-snooping comparison.
#[derive(Debug, Clone)]
pub struct SnoopRow {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Which coherence substrate.
    pub coherence: CoherenceKind,
    /// Signature configuration.
    pub signature: SignatureKind,
    /// Cycles to complete the fixed work.
    pub cycles: Cycle,
    /// Interconnect messages (the bandwidth proxy; the paper picks the
    /// directory for "less bandwidth demand").
    pub messages: u64,
    /// False-positive percentage — the paper conjectures snooping "may
    /// need larger signatures to achieve comparable false positive rates"
    /// because every broadcast consults every signature.
    pub false_positive_pct: Option<f64>,
    /// Stalls (NACKed requests).
    pub stalls: u64,
}

/// Compares the paper's §5 directory CMP with its §7 snooping CMP on two
/// benchmarks, at a large and a small signature.
pub fn snooping_comparison(scale: &ExperimentScale) -> Result<Vec<SnoopRow>, SweepError> {
    let scale = *scale;
    let seed = seed_sequence(scale.base_seed, 1)[0];
    let mut specs = Vec::new();
    for benchmark in [Benchmark::Mp3d, Benchmark::Raytrace] {
        for coherence in [CoherenceKind::DirectoryMesi, CoherenceKind::SnoopingMesi] {
            for signature in [SignatureKind::paper_bs_2kb(), SignatureKind::paper_bs_64()] {
                let mut p = params(&scale, benchmark, SyncMode::Tm, signature, seed);
                p.coherence = coherence;
                let fp = fp_params("snooping_comparison", &p);
                specs.push(RunSpec::new(
                    format!("snooping/{benchmark}/{coherence}/{}", signature.label()),
                    move || {
                        let r = run_benchmark(&p)?;
                        Ok::<_, logtm_se::RunError>(SnoopRow {
                            benchmark,
                            coherence,
                            signature,
                            cycles: r.cycles,
                            messages: r.mem.messages.get(),
                            false_positive_pct: r.tm.false_positive_pct(),
                            stalls: r.tm.stalls,
                        })
                    },
                ).keyed(fp));
            }
        }
    }
    sweep("snooping_comparison", specs)
}

// ---------------------------------------------------------------------
// Figure 4: speedup over locks
// ---------------------------------------------------------------------

/// One bar of Figure 4.
#[derive(Debug, Clone)]
pub struct Fig4Bar {
    /// Bar label ("Lock", "P", "BS", "CBS", "DBS", "BS_64").
    pub label: String,
    /// Mean speedup normalized to the lock baseline.
    pub speedup: f64,
    /// Half-width of the 95 % confidence interval, or `None` when only one
    /// seed ran (the t-interval is undefined for a single sample).
    pub ci95: Option<f64>,
}

/// One benchmark's bars.
#[derive(Debug, Clone)]
pub struct Fig4Row {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Bars in the paper's order.
    pub bars: Vec<Fig4Bar>,
}

/// Regenerates Figure 4: execution-time speedups of LogTM-SE (perfect and
/// realistic signatures) relative to the lock-based versions.
///
/// Every (benchmark, configuration, seed) cell is one pool job returning
/// its throughput; normalization happens after the sweep so the math sees
/// results in submission order.
pub fn figure4(scale: &ExperimentScale) -> Result<Vec<Fig4Row>, SweepError> {
    let scale = *scale;
    let seeds = seed_sequence(scale.base_seed, scale.seeds);
    let mut specs = Vec::new();
    for benchmark in Benchmark::all() {
        for &s in &seeds {
            let p = params(&scale, benchmark, SyncMode::Lock, SignatureKind::Perfect, s);
            specs.push(RunSpec::new(
                format!("figure4/{benchmark}/lock/seed={s}"),
                move || run_benchmark(&p).map(|r| r.throughput_per_kcycle()),
            ).keyed(fp_params("figure4", &p)));
        }
        for kind in SignatureKind::figure4_set() {
            for &s in &seeds {
                let p = params(&scale, benchmark, SyncMode::Tm, kind, s);
                specs.push(RunSpec::new(
                    format!("figure4/{benchmark}/tm/{}/seed={s}", kind.label()),
                    move || run_benchmark(&p).map(|r| r.throughput_per_kcycle()),
                ).keyed(fp_params("figure4", &p)));
            }
        }
    }
    let throughputs = sweep("figure4", specs)?;

    let mut it = throughputs.into_iter();
    let rows = Benchmark::all()
        .into_iter()
        .map(|benchmark| {
            // Paired per-seed throughputs: lock baseline first.
            let lock_thr: Vec<f64> = it.by_ref().take(seeds.len()).collect();
            let lock_mean = lock_thr.iter().sum::<f64>() / lock_thr.len() as f64;

            let mut bars = vec![{
                let ratios: SampleSet = lock_thr.iter().map(|t| t / lock_mean).collect();
                let (speedup, ci95) = ratios.mean_ci95().expect("one run per seed");
                Fig4Bar {
                    label: "Lock".into(),
                    speedup,
                    ci95,
                }
            }];

            for kind in SignatureKind::figure4_set() {
                let ratios: SampleSet =
                    it.by_ref().take(seeds.len()).map(|t| t / lock_mean).collect();
                let (speedup, ci95) = ratios.mean_ci95().expect("one run per seed");
                let label = match kind {
                    SignatureKind::Perfect => "P".to_string(),
                    SignatureKind::BitSelect { bits: 2048 } => "BS".to_string(),
                    SignatureKind::CoarseBitSelect { bits: 2048, .. } => "CBS".to_string(),
                    SignatureKind::DoubleBitSelect { bits: 2048 } => "DBS".to_string(),
                    SignatureKind::BitSelect { bits: 64 } => "BS_64".to_string(),
                    other => other.label(),
                };
                bars.push(Fig4Bar {
                    label,
                    speedup,
                    ci95,
                });
            }
            Fig4Row { benchmark, bars }
        })
        .collect();
    Ok(rows)
}

// ---------------------------------------------------------------------
// Table 2: benchmarks, units, set sizes
// ---------------------------------------------------------------------

/// One row of Table 2.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Input label.
    pub input: &'static str,
    /// Unit-of-work label.
    pub unit: &'static str,
    /// Units completed.
    pub units: u64,
    /// Transactions measured (commits).
    pub transactions: u64,
    /// Read-set blocks: average.
    pub read_avg: f64,
    /// Read-set blocks: maximum.
    pub read_max: u64,
    /// Read-set blocks: 95th percentile (tail analysis beyond the paper).
    pub read_p95: u64,
    /// Write-set blocks: average.
    pub write_avg: f64,
    /// Write-set blocks: maximum.
    pub write_max: u64,
}

/// Regenerates Table 2 from perfect-signature TM runs.
pub fn table2(scale: &ExperimentScale) -> Result<Vec<Table2Row>, SweepError> {
    let scale = *scale;
    let seed = seed_sequence(scale.base_seed, 1)[0];
    let specs = Benchmark::all()
        .into_iter()
        .map(|benchmark| {
            let p = params(&scale, benchmark, SyncMode::Tm, SignatureKind::Perfect, seed);
            RunSpec::new(format!("table2/{benchmark}"), move || {
                let r = run_benchmark(&p)?;
                Ok::<_, logtm_se::RunError>(Table2Row {
                    benchmark,
                    input: benchmark.input_label(),
                    unit: benchmark.unit_label(),
                    units: r.tm.work_units,
                    transactions: r.tm.commits,
                    read_avg: r.tm.read_set.mean().unwrap_or(0.0),
                    read_max: r.tm.read_set.max().unwrap_or(0),
                    read_p95: r.tm.read_set_hist.percentile(95).unwrap_or(0),
                    write_avg: r.tm.write_set.mean().unwrap_or(0.0),
                    write_max: r.tm.write_set.max().unwrap_or(0),
                })
            })
            .keyed(fp_params("table2", &p))
        })
        .collect();
    sweep("table2", specs)
}

// ---------------------------------------------------------------------
// Table 3: impact of signature size on conflict detection
// ---------------------------------------------------------------------

/// One configuration row of Table 3.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// The benchmark (the paper shows Raytrace and BerkeleyDB).
    pub benchmark: Benchmark,
    /// Signature configuration.
    pub signature: SignatureKind,
    /// Committed transactions.
    pub transactions: u64,
    /// Aborts.
    pub aborts: u64,
    /// Stalls (NACKed requests).
    pub stalls: u64,
    /// False positives as a percentage of all conflicts signalled
    /// (`None` when no conflicts were signalled).
    pub false_positive_pct: Option<f64>,
}

/// Signature set of Table 3: perfect, the three 2 Kb schemes, and the same
/// schemes at 64 bits.
pub fn table3_signatures() -> Vec<SignatureKind> {
    vec![
        SignatureKind::Perfect,
        SignatureKind::BitSelect { bits: 2048 },
        SignatureKind::CoarseBitSelect {
            bits: 2048,
            blocks_per_macroblock: 16,
        },
        SignatureKind::DoubleBitSelect { bits: 2048 },
        SignatureKind::BitSelect { bits: 64 },
        SignatureKind::CoarseBitSelect {
            bits: 64,
            blocks_per_macroblock: 16,
        },
        SignatureKind::DoubleBitSelect { bits: 64 },
    ]
}

/// Regenerates Table 3 for the paper's two focus benchmarks.
pub fn table3(scale: &ExperimentScale) -> Result<Vec<Table3Row>, SweepError> {
    let scale = *scale;
    let seed = seed_sequence(scale.base_seed, 1)[0];
    let mut specs = Vec::new();
    for benchmark in [Benchmark::Raytrace, Benchmark::BerkeleyDb] {
        for signature in table3_signatures() {
            let p = params(&scale, benchmark, SyncMode::Tm, signature, seed);
            specs.push(RunSpec::new(
                format!("table3/{benchmark}/{}", signature.label()),
                move || {
                    let r = run_benchmark(&p)?;
                    Ok::<_, logtm_se::RunError>(Table3Row {
                        benchmark,
                        signature,
                        transactions: r.tm.commits,
                        aborts: r.tm.aborts,
                        stalls: r.tm.stalls,
                        false_positive_pct: r.tm.false_positive_pct(),
                    })
                },
            ).keyed(fp_params("table3", &p)));
        }
    }
    sweep("table3", specs)
}

// ---------------------------------------------------------------------
// Result 4: victimization
// ---------------------------------------------------------------------

/// One row of the victimization summary (§6.3 Result 4).
#[derive(Debug, Clone)]
pub struct VictimRow {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Committed transactions.
    pub transactions: u64,
    /// Exact transactional blocks victimized from L1 or L2.
    pub victimizations: u64,
    /// Broadcast rebuilds after L2 directory loss.
    pub broadcasts: u64,
}

/// Regenerates Result 4: how often transactional data is victimized.
/// Raytrace gets extra units so its rare huge transactions appear.
pub fn victimization(scale: &ExperimentScale) -> Result<Vec<VictimRow>, SweepError> {
    let scale = *scale;
    let seed = seed_sequence(scale.base_seed, 1)[0];
    let specs = Benchmark::all()
        .into_iter()
        .map(|benchmark| {
            let mut p = params(&scale, benchmark, SyncMode::Tm, SignatureKind::Perfect, seed);
            if benchmark == Benchmark::Raytrace {
                p.units_per_thread = scale.units_per_thread * 4;
            }
            RunSpec::new(format!("victimization/{benchmark}"), move || {
                let r = run_benchmark(&p)?;
                Ok::<_, logtm_se::RunError>(VictimRow {
                    benchmark,
                    transactions: r.tm.commits,
                    victimizations: r.mem.tx_victimizations_exact(),
                    broadcasts: r.mem.lost_dir_broadcasts.get(),
                })
            })
            .keyed(fp_params("victimization", &p))
        })
        .collect();
    sweep("victimization", specs)
}

// ---------------------------------------------------------------------
// Ablation A1: signature size sweep
// ---------------------------------------------------------------------

/// One datapoint of the signature-size sweep.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Signature configuration.
    pub signature: SignatureKind,
    /// Speedup vs. the lock baseline (single seed).
    pub speedup: f64,
    /// False-positive percentage.
    pub false_positive_pct: Option<f64>,
    /// Aborts.
    pub aborts: u64,
}

fn sweep_signatures(bits: usize) -> [SignatureKind; 3] {
    [
        SignatureKind::BitSelect { bits },
        SignatureKind::DoubleBitSelect { bits },
        SignatureKind::CoarseBitSelect {
            bits,
            blocks_per_macroblock: 16,
        },
    ]
}

/// Sweeps BS/DBS/CBS sizes from 64 b to 4 Kb on Raytrace and BerkeleyDB —
/// the extension of Figure 4 / Table 3 the paper's sizing discussion
/// implies. The lock baseline and every TM cell run as independent pool
/// jobs; speedups are computed after the sweep.
pub fn signature_sweep(scale: &ExperimentScale) -> Result<Vec<SweepRow>, SweepError> {
    let scale = *scale;
    let seed = seed_sequence(scale.base_seed, 1)[0];
    let mut specs = Vec::new();
    for benchmark in [Benchmark::Raytrace, Benchmark::BerkeleyDb] {
        let p = params(&scale, benchmark, SyncMode::Lock, SignatureKind::Perfect, seed);
        specs.push(RunSpec::new(format!("sig_sweep/{benchmark}/lock"), move || {
            run_benchmark(&p).map(|r| (r.throughput_per_kcycle(), None, 0))
        }).keyed(fp_params("signature_sweep", &p)));
        for bits in [64usize, 128, 256, 512, 1024, 2048, 4096] {
            for signature in sweep_signatures(bits) {
                let p = params(&scale, benchmark, SyncMode::Tm, signature, seed);
                specs.push(RunSpec::new(
                    format!("sig_sweep/{benchmark}/{}", signature.label()),
                    move || {
                        run_benchmark(&p).map(|r| {
                            (r.throughput_per_kcycle(), r.tm.false_positive_pct(), r.tm.aborts)
                        })
                    },
                ).keyed(fp_params("signature_sweep", &p)));
            }
        }
    }
    let stats = sweep("signature_sweep", specs)?;

    let mut it = stats.into_iter();
    let mut rows = Vec::new();
    for benchmark in [Benchmark::Raytrace, Benchmark::BerkeleyDb] {
        let (lock, _, _) = it.next().expect("lock baseline present");
        for bits in [64usize, 128, 256, 512, 1024, 2048, 4096] {
            for signature in sweep_signatures(bits) {
                let (thr, false_positive_pct, aborts) = it.next().expect("tm cell present");
                rows.push(SweepRow {
                    benchmark,
                    signature,
                    speedup: thr / lock,
                    false_positive_pct,
                    aborts,
                });
            }
        }
    }
    Ok(rows)
}

// ---------------------------------------------------------------------
// Ablation A2: sticky states on/off
// ---------------------------------------------------------------------

/// One sticky-ablation datapoint.
#[derive(Debug, Clone)]
pub struct StickyRow {
    /// Workload label.
    pub workload: String,
    /// Whether sticky states were enabled.
    pub sticky: bool,
    /// Cycles to complete the fixed work (or the watchdog bound if the run
    /// livelocked).
    pub cycles: Cycle,
    /// Aborts (victimization without sticky forces conservative aborts).
    pub aborts: u64,
    /// Exact transactional victimizations.
    pub victimizations: u64,
    /// Whether the run finished its fixed work. Without sticky states a
    /// transaction whose footprint exceeds L1 capacity must overflow,
    /// every overflow must abort, and the workload livelocks — the
    /// paper's §3.1 claim, demonstrated.
    pub completed: bool,
}

/// Ablation A2: what sticky states buy. Without them, every victimization
/// of transactional data conservatively aborts the transaction, as
/// cache-resident HTMs must on overflow.
///
/// Note the asymmetry this ablation deliberately skirts: a transaction
/// whose footprint *exceeds* L1 capacity (Raytrace's 550-block tail)
/// cannot ever commit without sticky states — it livelocks, which is
/// precisely the paper's motivation. The overflow microbenchmark here uses
/// near-capacity (not over-capacity) read sets, so evictions are caused by
/// SMT-sibling cache pressure and retries can succeed.
pub fn sticky_ablation(scale: &ExperimentScale) -> Result<Vec<StickyRow>, SweepError> {
    let scale = *scale;
    let seed = seed_sequence(scale.base_seed, 1)[0];
    let mut specs: Vec<RunSpec<Result<StickyRow, logtm_se::RunError>>> = Vec::new();

    // Overflow microbenchmark: 200-block transactional read sets on cores
    // whose two SMT contexts share a 512-block L1. With sticky states this
    // victimizes freely and completes; without them it livelocks (bounded
    // here by a 5M-cycle watchdog) — hitting the watchdog is the result,
    // not a failure.
    for sticky in [true, false] {
        let fp = run_fp("sticky_ablation/overflow-micro")
            .feed(&sticky)
            .feed(&seed)
            .feed(&scale.units_per_thread.max(4))
            .finish();
        specs.push(RunSpec::new(
            format!("sticky/overflow-micro/sticky={sticky}"),
            move || {
                let mut system = SystemBuilder::paper_default()
                    .signature(SignatureKind::Perfect)
                    .sticky(sticky)
                    .seed(seed)
                    .limits(ltse_sim::config::SimLimits {
                        max_cycles: Cycle(5_000_000),
                        max_events: 500_000_000,
                    })
                    .build();
                for t in 0..16u64 {
                    system.add_thread(Box::new(ltse_workloads::CsProgram::new(
                        ltse_workloads::HotColdArray::new(
                            logtm_se::WordAddr(8 * ((1 << 20) + t * 64)), // private hot block
                            logtm_se::WordAddr(8 * ((2 << 20) + t * 4096)),
                            256,
                            200,
                            logtm_se::WordAddr(8 * (3 << 20)),
                            scale.units_per_thread.max(4),
                        ),
                        SyncMode::Tm,
                        t << 32,
                    )));
                }
                let completed = system.run().is_ok();
                let r = system.report();
                Ok(StickyRow {
                    workload: "overflow-micro".into(),
                    sticky,
                    cycles: r.cycles,
                    aborts: r.tm.aborts,
                    victimizations: r.mem.tx_victimizations_exact(),
                    completed,
                })
            },
        ).keyed(fp));
    }

    // Mp3d: tiny footprints — sticky should cost/buy nothing.
    for sticky in [true, false] {
        let mut p = params(&scale, Benchmark::Mp3d, SyncMode::Tm, SignatureKind::Perfect, seed);
        p.sticky = sticky;
        let fp = fp_params("sticky_ablation", &p);
        specs.push(RunSpec::new(format!("sticky/mp3d/sticky={sticky}"), move || {
            let r = run_benchmark(&p)?;
            Ok(StickyRow {
                workload: Benchmark::Mp3d.name().into(),
                sticky,
                cycles: r.cycles,
                aborts: r.tm.aborts,
                victimizations: r.mem.tx_victimizations_exact(),
                completed: true,
            })
        }).keyed(fp));
    }
    sweep("sticky_ablation", specs)
}

// ---------------------------------------------------------------------
// Ablation A3: log-filter size
// ---------------------------------------------------------------------

/// One log-filter datapoint.
#[derive(Debug, Clone)]
pub struct LogFilterRow {
    /// Filter entries (0 = disabled).
    pub entries: usize,
    /// Undo records actually written.
    pub log_writes: u64,
    /// Redundant writes suppressed by the filter.
    pub suppressed: u64,
    /// Cycles to complete the fixed work.
    pub cycles: Cycle,
}

/// Ablation A3: the log filter's effect on redundant logging. The driver
/// is a repeated-writer microbenchmark (each transaction stores 24 times
/// over 6 blocks — the re-write pattern the filter exists for).
pub fn log_filter_ablation(scale: &ExperimentScale) -> Result<Vec<LogFilterRow>, SweepError> {
    let scale = *scale;
    let seed = seed_sequence(scale.base_seed, 1)[0];
    let specs = [0usize, 1, 2, 4, 8, 16, 32, 64]
        .into_iter()
        .map(|entries| {
            let fp = run_fp("log_filter_ablation")
                .feed(&entries)
                .feed(&seed)
                .feed(&scale.threads)
                .feed(&scale.units_per_thread)
                .finish();
            RunSpec::new(format!("log_filter/entries={entries}"), move || {
                let mut system = SystemBuilder::paper_default()
                    .signature(SignatureKind::Perfect)
                    .log_filter_entries(entries)
                    .seed(seed)
                    .build();
                for t in 0..scale.threads as u64 {
                    system.add_thread(Box::new(ltse_workloads::CsProgram::new(
                        ltse_workloads::RepeatedWriter::new(
                            logtm_se::WordAddr(8 * ((4 << 20) + t * 64)),
                            6,
                            24,
                            logtm_se::WordAddr(8 * (5 << 20)),
                            scale.units_per_thread,
                        ),
                        SyncMode::Tm,
                        t << 32,
                    )));
                }
                let r = system.run()?;
                Ok::<_, logtm_se::RunError>(LogFilterRow {
                    entries,
                    log_writes: r.tm.log_writes,
                    suppressed: r.tm.log_writes_suppressed,
                    cycles: r.cycles,
                })
            })
            .keyed(fp)
        })
        .collect();
    sweep("log_filter_ablation", specs)
}

// ---------------------------------------------------------------------
// Ablation A4: virtualization overhead (context switching)
// ---------------------------------------------------------------------

/// One virtualization-overhead datapoint.
#[derive(Debug, Clone)]
pub struct VirtRow {
    /// Preemption quantum, or `None` for the no-preemption baseline.
    pub quantum: Option<Cycle>,
    /// Whether in-transaction victims were deferred (paper §4.1, citation \[29\]).
    pub defer_in_tx: bool,
    /// Cycles to complete the fixed work.
    pub cycles: Cycle,
    /// Units of work completed (differs between baseline and
    /// oversubscribed runs — compare cycles **per unit**).
    pub units: u64,
    /// Context switches that interrupted a transaction.
    pub tx_deschedules: u64,
    /// Summary signatures pushed to contexts.
    pub summary_installs: u64,
    /// Aborts.
    pub aborts: u64,
}

/// Ablation A4: cost of context switching under LogTM-SE's summary
/// signatures, with and without preemption deferral. BerkeleyDB with more
/// threads than contexts forces the OS to multiplex mid-transaction (Mp3d
/// would conflate the story with its per-step barrier, whose interaction
/// with oversubscription is a scheduling pathology of its own).
pub fn virtualization_overhead(scale: &ExperimentScale) -> Result<Vec<VirtRow>, SweepError> {
    let scale = *scale;
    let seed = seed_sequence(scale.base_seed, 1)[0];
    let n_ctxs = 32u32; // the paper machine's thread contexts
    let threads = n_ctxs * 3 / 2; // oversubscribe 1.5× the CONTEXTS

    let run_with = move |threads: u32,
                         preemption: Option<(Cycle, bool)>|
          -> Result<logtm_se::RunReport, logtm_se::RunError> {
        let mut builder = SystemBuilder::paper_default()
            .signature(SignatureKind::paper_bs_2kb())
            .seed(seed);
        if let Some((q, defer)) = preemption {
            builder = builder.preemption(q, defer);
        }
        let mut system = builder.build();
        for program in
            Benchmark::BerkeleyDb.programs(SyncMode::Tm, threads, scale.units_per_thread)
        {
            system.add_thread(program);
        }
        system.run()
    };

    let row_from = |r: logtm_se::RunReport, quantum: Option<Cycle>, defer: bool| VirtRow {
        quantum,
        defer_in_tx: defer,
        cycles: r.cycles,
        units: r.tm.work_units,
        tx_deschedules: r.os.tx_deschedules,
        summary_installs: r.os.summary_installs,
        aborts: r.tm.aborts,
    };

    // Baseline: exactly as many threads as contexts, no preemption; same
    // total units as the oversubscribed runs do per thread.
    let fp_virt = move |threads: u32, preemption: Option<(Cycle, bool)>| {
        let mut h = run_fp("virtualization_overhead");
        h.write_u64(threads as u64);
        match preemption {
            None => h.write_u64(0),
            Some((q, defer)) => {
                h.write_u64(1);
                h.write_u64(q.as_u64());
                h.write_u64(defer as u64);
            }
        }
        h.feed(&seed).feed(&scale.units_per_thread).finish()
    };

    let mut specs = vec![RunSpec::new("virtualization/baseline", move || {
        run_with(n_ctxs, None).map(|r| row_from(r, None, false))
    })
    .keyed(fp_virt(n_ctxs, None))];
    for quantum in [Cycle(20_000), Cycle(5_000)] {
        for defer in [true, false] {
            specs.push(RunSpec::new(
                format!("virtualization/q={}/defer={defer}", quantum.as_u64()),
                move || run_with(threads, Some((quantum, defer))).map(|r| row_from(r, Some(quantum), defer)),
            ).keyed(fp_virt(threads, Some((quantum, defer)))));
        }
    }
    sweep("virtualization_overhead", specs)
}

// ---------------------------------------------------------------------
// STM backend: real-concurrency TL2 vs. the cycle-level simulator
// ---------------------------------------------------------------------

/// One Table-2 workload run on both TM backends.
///
/// The simulator columns are deterministic (simulated cycles); the STM
/// columns are real wall clock from real OS threads and therefore vary run
/// to run. The two throughput numbers live in incomparable units — the
/// point of the row is that *the same program stream* completes the same
/// units of work and commits on both engines, not that the numbers race.
#[derive(Debug, Clone)]
pub struct StmRow {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Worker threads on both backends.
    pub threads: u32,
    /// Units of work completed (identical on both backends by construction).
    pub units: u64,
    /// Simulator: total simulated cycles.
    pub sim_cycles: u64,
    /// Simulator: committed transactions.
    pub sim_commits: u64,
    /// Simulator: aborts.
    pub sim_aborts: u64,
    /// Simulator throughput: units per 1000 simulated cycles.
    pub sim_units_per_kcycle: f64,
    /// STM: wall-clock milliseconds (nondeterministic).
    pub stm_wall_ms: f64,
    /// STM: committed top-level transactions.
    pub stm_commits: u64,
    /// STM: aborted attempts (each one retried).
    pub stm_aborts: u64,
    /// STM throughput: units per wall-clock millisecond (nondeterministic).
    pub stm_units_per_ms: f64,
}

/// Runs every Table-2 workload in TM mode on the cycle-level simulator and
/// on the TL2 STM backend, side by side.
///
/// Unlike the sweep experiments this runs sequentially and bypasses both
/// the worker pool and the persistent cache: the STM side measures real
/// wall clock on real threads, so sharing cores with sibling runs (or
/// serving a stale cached time) would corrupt the one number the
/// experiment exists to report.
pub fn stm_compare(scale: &ExperimentScale) -> Result<Vec<StmRow>, SweepError> {
    let seed = seed_sequence(scale.base_seed, 1)[0];
    let mut rows = Vec::new();
    let mut failures = Vec::new();
    let mut runs = 0usize;
    for benchmark in Benchmark::all() {
        let p = params(scale, benchmark, SyncMode::Tm, SignatureKind::Perfect, seed);
        runs += 2;
        let run = |kind: BackendKind| {
            run_on_backend(kind, &p).map_err(|reason| FailedRun {
                label: format!("stm_compare/{benchmark}/{kind}"),
                reason,
            })
        };
        let (sim, stm) = match (run(BackendKind::Sim), run(BackendKind::Stm)) {
            (Ok(sim), Ok(stm)) => (sim, stm),
            (sim, stm) => {
                failures.extend(sim.err());
                failures.extend(stm.err());
                continue;
            }
        };
        if sim.work_units != stm.work_units {
            failures.push(FailedRun {
                label: format!("stm_compare/{benchmark}"),
                reason: format!(
                    "work-unit mismatch: sim completed {} units, stm {}",
                    sim.work_units, stm.work_units
                ),
            });
            continue;
        }
        let sim_cycles = sim.sim_cycles.unwrap_or(0);
        let stm_wall_ms = stm.wall.as_secs_f64() * 1e3;
        rows.push(StmRow {
            benchmark,
            threads: p.threads,
            units: sim.work_units,
            sim_cycles,
            sim_commits: sim.commits,
            sim_aborts: sim.aborts,
            sim_units_per_kcycle: if sim_cycles > 0 {
                sim.work_units as f64 * 1e3 / sim_cycles as f64
            } else {
                0.0
            },
            stm_wall_ms,
            stm_commits: stm.commits,
            stm_aborts: stm.aborts,
            stm_units_per_ms: if stm_wall_ms > 0.0 {
                stm.work_units as f64 / stm_wall_ms
            } else {
                0.0
            },
        });
    }
    if failures.is_empty() {
        Ok(rows)
    } else {
        Err(SweepError {
            experiment: "stm_compare",
            runs,
            failures,
        })
    }
}

/// One row of the `oltp` experiment: a skew/mix point run on one backend.
#[derive(Debug, Clone)]
pub struct OltpRow {
    /// Point name (`uniform_read95`, …).
    pub point: &'static str,
    /// Which engine produced the row.
    pub backend: BackendKind,
    /// Zipfian theta × 1000 (integers keep the rendering deterministic).
    pub theta_permille: u32,
    /// Read percentage of the op mix.
    pub read_pct: u8,
    /// Committed transactions (equals the configured total on success).
    pub committed: u64,
    /// Aborts-then-retries observed along the way.
    pub aborts: u64,
    /// Simulated cycles (sim rows only).
    pub sim_cycles: Option<u64>,
    /// Wall-clock milliseconds of the run (only meaningful on stm rows).
    pub wall_ms: f64,
    /// p50 commit latency: cycles on sim, nanoseconds on stm.
    pub p50: u64,
    /// p99 commit latency.
    pub p99: u64,
    /// p999 commit latency.
    pub p999: u64,
    /// Order-independent digest of the final KV state.
    pub kv_fingerprint: u64,
}

/// The skew/mix points every OLTP artifact reports:
/// `(name, theta_permille, read_pct)`.
pub const OLTP_POINTS: [(&str, u32, u8); 3] = [
    ("uniform_read95", 0, 95),
    ("zipf80_read80", 800, 80),
    ("zipf99_read50", 990, 50),
];

/// The open-loop OLTP configuration for one skew/mix point at experiment
/// scale.
pub fn oltp_config(scale: &ExperimentScale, theta_permille: u32, read_pct: u8) -> OltpConfig {
    OltpConfig {
        threads: scale.threads,
        txs_per_thread: scale.units_per_thread * 25,
        keys: 4096,
        theta: theta_permille as f64 / 1000.0,
        read_pct,
        ops_min: 2,
        ops_max: 8,
        mean_gap: 200,
        seed: scale.base_seed,
    }
}

fn oltp_row(
    point: &'static str,
    kind: BackendKind,
    theta_permille: u32,
    read_pct: u8,
    cfg: &OltpConfig,
) -> Result<OltpRow, FailedRun> {
    let out = run_oltp(kind, cfg, false).map_err(|reason| FailedRun {
        label: format!("oltp/{point}/{kind}"),
        reason,
    })?;
    Ok(OltpRow {
        point,
        backend: kind,
        theta_permille,
        read_pct,
        committed: out.committed_txs,
        aborts: out.report.aborts,
        sim_cycles: out.report.sim_cycles,
        wall_ms: out.report.wall.as_secs_f64() * 1e3,
        p50: out.latency_permille(500).unwrap_or(0),
        p99: out.latency_permille(990).unwrap_or(0),
        p999: out.latency_permille(999).unwrap_or(0),
        kv_fingerprint: out.kv_fingerprint,
    })
}

/// `repro oltp`: the open-loop OLTP skew/mix points on one backend.
///
/// Runs sequentially (open-loop latency distributions shouldn't share the
/// host with sibling runs, and on stm they're wall-clock) and bypasses the
/// cache. Sim rows are fully deterministic — cycles in, cycles out.
pub fn oltp_experiment(
    scale: &ExperimentScale,
    kind: BackendKind,
) -> Result<Vec<OltpRow>, SweepError> {
    let mut rows = Vec::new();
    let mut failures = Vec::new();
    for (point, theta_permille, read_pct) in OLTP_POINTS {
        let cfg = oltp_config(scale, theta_permille, read_pct);
        match oltp_row(point, kind, theta_permille, read_pct, &cfg) {
            Ok(row) => rows.push(row),
            Err(f) => failures.push(f),
        }
    }
    if failures.is_empty() {
        Ok(rows)
    } else {
        Err(SweepError {
            experiment: "oltp",
            runs: OLTP_POINTS.len(),
            failures,
        })
    }
}

/// `repro --backend stm oltp`: every skew/mix point on both engines, with
/// the final-KV-state cross-check (commutative writes must converge to one
/// state regardless of interleaving — a backend pair that disagrees has a
/// lost update).
pub fn oltp_compare(scale: &ExperimentScale) -> Result<Vec<OltpRow>, SweepError> {
    let mut rows = Vec::new();
    let mut failures = Vec::new();
    let mut runs = 0usize;
    for (point, theta_permille, read_pct) in OLTP_POINTS {
        let cfg = oltp_config(scale, theta_permille, read_pct);
        runs += 2;
        let sim = oltp_row(point, BackendKind::Sim, theta_permille, read_pct, &cfg);
        let stm = oltp_row(point, BackendKind::Stm, theta_permille, read_pct, &cfg);
        let (sim, stm) = match (sim, stm) {
            (Ok(sim), Ok(stm)) => (sim, stm),
            (sim, stm) => {
                failures.extend(sim.err());
                failures.extend(stm.err());
                continue;
            }
        };
        if sim.kv_fingerprint != stm.kv_fingerprint {
            failures.push(FailedRun {
                label: format!("oltp/{point}"),
                reason: format!(
                    "final KV state diverged: sim {:016x}, stm {:016x}",
                    sim.kv_fingerprint, stm.kv_fingerprint
                ),
            });
            continue;
        }
        rows.push(sim);
        rows.push(stm);
    }
    if failures.is_empty() {
        Ok(rows)
    } else {
        Err(SweepError {
            experiment: "oltp",
            runs,
            failures,
        })
    }
}

// ---------------------------------------------------------------------
// Adaptive contention management: the policy sweep
// ---------------------------------------------------------------------

/// One datapoint of the `policy_sweep` experiment: one contended workload
/// point, on one backend, under one contention policy.
#[derive(Debug, Clone)]
pub struct PolicySweepRow {
    /// Workload point name (`mp3d_tm`, `oltp_zipf99_read50`, …).
    pub workload: &'static str,
    /// Which engine ran the point.
    pub backend: BackendKind,
    /// The contention policy under test.
    pub policy: ContentionPolicy,
    /// Goodput, higher is better: committed units per simulated megacycle
    /// on `sim` (deterministic), committed transactions per wall-clock
    /// second on `stm`.
    pub score: f64,
    /// Committed outermost transactions.
    pub committed: u64,
    /// Aborts along the way.
    pub aborts: u64,
    /// Serial-token escalations (`sim` rows; the STM reports fallbacks in
    /// its own stats and 0 here).
    pub serial_escalations: u64,
    /// Whether the run finished its fixed work inside the watchdogs
    /// (completed-as-data: a policy that livelocks is a result).
    pub completed: bool,
}

/// The OLTP skew/mix points of the policy sweep:
/// `(name, theta_permille, read_pct)`. One uncontended point (where doing
/// nothing clever should win) and one hot-key point (where it cannot).
pub const POLICY_OLTP_POINTS: [(&str, u32, u8); 2] = [
    ("oltp_uniform_read95", 0, 95),
    ("oltp_zipf99_read50", 990, 50),
];

/// Consecutive-abort threshold for serial escalation used throughout the
/// sweep (`TmConfig::escalate_after` on sim, `max_retries` on stm), so both
/// serial fallbacks are exercised under every policy.
pub const POLICY_ESCALATE_AFTER: u32 = 12;

/// The open-loop OLTP configuration for one policy-sweep point: a smaller,
/// hotter key space and tighter arrival gap than the `oltp` experiment, so
/// the policies actually differentiate.
pub fn policy_oltp_config(
    scale: &ExperimentScale,
    theta_permille: u32,
    read_pct: u8,
) -> OltpConfig {
    OltpConfig {
        threads: scale.threads,
        txs_per_thread: scale.units_per_thread * 25,
        keys: 512,
        theta: theta_permille as f64 / 1000.0,
        read_pct,
        ops_min: 2,
        ops_max: 8,
        mean_gap: 100,
        seed: scale.base_seed,
    }
}

fn policy_tune(policy: ContentionPolicy) -> PolicyTune {
    PolicyTune {
        contention: Some(policy),
        escalate_after: Some(POLICY_ESCALATE_AFTER),
        ..PolicyTune::default()
    }
}

/// `repro policy`: every [`ContentionPolicy`] on contended workloads, on
/// both backends — where does each static policy win, and is `Adaptive`
/// ever far from the per-point best?
///
/// Sim rows (the Mp3d point and the OLTP points on `sim`) are deterministic
/// and fan out through the cached parallel runner. STM rows run real
/// threads sequentially (wall-clock goodput shouldn't share the host) and
/// bypass the cache, like the `oltp` experiment.
pub fn policy_sweep(scale: &ExperimentScale) -> Result<Vec<PolicySweepRow>, SweepError> {
    let scale = *scale;
    let seed = seed_sequence(scale.base_seed, 1)[0];

    // Mp3d at fixed work: the paper's most contended Table 2 benchmark.
    let mut specs = Vec::new();
    for policy in ContentionPolicy::ALL {
        let fp = run_fp("policy_sweep")
            .feed(&policy)
            .feed(&seed)
            .feed(&scale.threads)
            .feed(&scale.units_per_thread)
            .finish();
        specs.push(
            RunSpec::new(format!("policy/mp3d/{}", policy.name()), move || {
                let mut system = SystemBuilder::paper_default()
                    .signature(SignatureKind::paper_bs_2kb())
                    .contention(policy)
                    .escalate_after(Some(POLICY_ESCALATE_AFTER))
                    .seed(seed)
                    .limits(ltse_sim::config::SimLimits {
                        max_cycles: Cycle(10_000_000),
                        max_events: 1_000_000_000,
                    })
                    .build();
                for program in
                    Benchmark::Mp3d.programs(SyncMode::Tm, scale.threads, scale.units_per_thread)
                {
                    system.add_thread(program);
                }
                let completed = system.run().is_ok();
                let r = system.report();
                let cycles = r.cycles.as_u64().max(1);
                PolicySweepRow {
                    workload: "mp3d_tm",
                    backend: BackendKind::Sim,
                    policy,
                    score: r.tm.work_units as f64 * 1e6 / cycles as f64,
                    committed: r.tm.commits,
                    aborts: r.tm.aborts,
                    serial_escalations: r.tm.serial_escalations,
                    completed,
                }
            })
            .keyed(fp),
        );
    }
    let mut rows = sweep_ok("policy_sweep", specs)?;

    // The OLTP points, sim then stm, every policy.
    let mut failures = Vec::new();
    let mut runs = ContentionPolicy::ALL.len();
    for (point, theta_permille, read_pct) in POLICY_OLTP_POINTS {
        let cfg = policy_oltp_config(&scale, theta_permille, read_pct);
        for kind in [BackendKind::Sim, BackendKind::Stm] {
            for policy in ContentionPolicy::ALL {
                runs += 1;
                let out = match run_oltp_with(kind, &cfg, false, &policy_tune(policy)) {
                    Ok(out) => out,
                    Err(reason) => {
                        failures.push(FailedRun {
                            label: format!("policy/{point}/{kind}/{}", policy.name()),
                            reason,
                        });
                        continue;
                    }
                };
                let score = match kind {
                    BackendKind::Sim => {
                        let cycles = out.report.sim_cycles.unwrap_or(0).max(1);
                        out.committed_txs as f64 * 1e6 / cycles as f64
                    }
                    BackendKind::Stm => out.goodput_tx_per_sec(),
                };
                rows.push(PolicySweepRow {
                    workload: point,
                    backend: kind,
                    policy,
                    score,
                    committed: out.committed_txs,
                    aborts: out.report.aborts,
                    serial_escalations: 0,
                    completed: out.committed_txs == cfg.total_txs(),
                });
            }
        }
    }
    if failures.is_empty() {
        Ok(rows)
    } else {
        Err(SweepError {
            experiment: "policy_sweep",
            runs,
            failures,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentScale {
        ExperimentScale {
            threads: 4,
            units_per_thread: 2,
            seeds: 2,
            base_seed: 7,
            warmup_units: 0,
        }
    }

    #[test]
    fn figure4_produces_six_bars_per_benchmark() {
        let rows = figure4(&tiny()).expect("sweep");
        assert_eq!(rows.len(), 5);
        for row in &rows {
            assert_eq!(row.bars.len(), 6);
            assert_eq!(row.bars[0].label, "Lock");
            assert!((row.bars[0].speedup - 1.0).abs() < 0.5, "lock ≈ 1.0");
            for bar in &row.bars {
                assert!(bar.speedup > 0.0, "{} {}", row.benchmark, bar.label);
            }
        }
    }

    #[test]
    fn table2_rows_have_footprints() {
        let rows = table2(&tiny()).expect("sweep");
        assert_eq!(rows.len(), 5);
        for row in &rows {
            assert!(row.transactions > 0, "{}", row.benchmark);
            assert!(row.read_avg > 0.0);
            assert!(row.read_max as f64 >= row.read_avg);
        }
    }

    #[test]
    fn table3_has_rows_for_both_benchmarks() {
        let rows = table3(&tiny()).expect("sweep");
        assert_eq!(rows.len(), 2 * table3_signatures().len());
        // Perfect signatures can never produce false positives.
        for row in rows.iter().filter(|r| r.signature == SignatureKind::Perfect) {
            assert!(matches!(row.false_positive_pct, None | Some(0.0)));
        }
    }

    #[test]
    fn stm_compare_completes_the_same_units_on_both_backends() {
        let scale = tiny();
        let rows = stm_compare(&scale).expect("both backends run clean");
        assert_eq!(rows.len(), 5);
        for row in &rows {
            assert_eq!(
                row.units,
                scale.threads as u64 * scale.units_per_thread,
                "{}",
                row.benchmark
            );
            assert!(row.sim_cycles > 0, "{}", row.benchmark);
            assert!(row.sim_commits > 0 && row.stm_commits > 0, "{}", row.benchmark);
            assert!(row.stm_wall_ms >= 0.0 && row.stm_units_per_ms >= 0.0);
        }
    }

    #[test]
    fn policy_sweep_covers_every_point_policy_and_backend() {
        let scale = ExperimentScale {
            threads: 4,
            units_per_thread: 1,
            seeds: 1,
            base_seed: 7,
            warmup_units: 0,
        };
        let rows = policy_sweep(&scale).expect("sweep");
        // One Mp3d sim point plus two OLTP points on two backends, each
        // under all five policies.
        assert_eq!(rows.len(), ContentionPolicy::ALL.len() * (1 + 2 * 2));
        for row in &rows {
            assert!(row.score >= 0.0);
            assert!(
                row.completed,
                "{}/{}/{}",
                row.workload,
                row.backend.name(),
                row.policy.name()
            );
        }
        // Sim rows are deterministic: re-running the sweep reproduces the
        // exact score bits (stm rows are wall-clock and exempt).
        let again = policy_sweep(&scale).expect("sweep");
        assert_eq!(rows.len(), again.len());
        for (a, b) in rows.iter().zip(&again) {
            if a.backend == BackendKind::Sim {
                assert_eq!(
                    a.score.to_bits(),
                    b.score.to_bits(),
                    "{}/{}",
                    a.workload,
                    a.policy.name()
                );
                assert_eq!(a.committed, b.committed);
                assert_eq!(a.aborts, b.aborts);
            }
        }
    }

    #[test]
    fn log_filter_zero_suppresses_nothing() {
        let rows = log_filter_ablation(&tiny()).expect("sweep");
        let zero = rows.iter().find(|r| r.entries == 0).unwrap();
        let sixteen = rows.iter().find(|r| r.entries == 16).unwrap();
        assert_eq!(zero.suppressed, 0, "disabled filter suppresses nothing");
        assert!(zero.log_writes >= sixteen.log_writes);
    }
}
