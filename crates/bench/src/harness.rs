//! Minimal timing harness backing the `[[bench]]` targets.
//!
//! The sandbox this repo builds in has no network access, so the bench
//! targets cannot pull in an external framework. Each target is instead a
//! plain `fn main()` (`harness = false`) that times closures with
//! [`std::time::Instant`] and prints one line per case:
//!
//! ```text
//! figure4/berkeleydb/lock        mean 12.481 ms   best 12.102 ms   (10 iters)
//! ```
//!
//! Iteration counts default per target and can be overridden with the
//! `LTSE_BENCH_ITERS` environment variable. `cargo bench <filter>` substring
//! filters work the same way cargo's built-in harness treats them.

use std::hint::black_box;
use std::time::Instant;

/// Resolve the per-case iteration count: `LTSE_BENCH_ITERS` if set and
/// positive, otherwise the target's default.
pub fn iters(default: usize) -> usize {
    std::env::var("LTSE_BENCH_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

/// Substring filters passed on the command line (`cargo bench fig` forwards
/// `fig` to the target). Flags such as `--bench` that cargo injects are
/// ignored.
pub fn cli_filters() -> Vec<String> {
    std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with('-'))
        .collect()
}

/// A named group of timed cases, mirroring the old `benchmark_group` layout.
pub struct BenchGroup {
    group: String,
    filters: Vec<String>,
    iters: usize,
}

impl BenchGroup {
    /// Start a group. `default_iters` applies to every case unless
    /// `LTSE_BENCH_ITERS` overrides it.
    pub fn new(group: &str, default_iters: usize) -> Self {
        BenchGroup {
            group: group.to_string(),
            filters: cli_filters(),
            iters: iters(default_iters),
        }
    }

    /// Time `f` (after one untimed warmup call) and print mean/best. Skipped
    /// when CLI filters are present and none matches `group/name`.
    pub fn case<T>(&self, name: &str, mut f: impl FnMut() -> T) {
        let full = format!("{}/{}", self.group, name);
        if !self.filters.is_empty() && !self.filters.iter().any(|p| full.contains(p.as_str())) {
            return;
        }
        black_box(f());
        let mut best = f64::INFINITY;
        let mut total = 0.0;
        for _ in 0..self.iters {
            let t0 = Instant::now();
            black_box(f());
            let dt = t0.elapsed().as_secs_f64();
            total += dt;
            best = best.min(dt);
        }
        println!(
            "{full:<44} mean {:>9} ms   best {:>9} ms   ({} iters)",
            format_ms(total / self.iters as f64),
            format_ms(best),
            self.iters
        );
    }
}

fn format_ms(secs: f64) -> String {
    format!("{:.3}", secs * 1e3)
}

/// Detected CPU count for bench metadata (`"cpus"` in the JSON documents).
///
/// `std::thread::available_parallelism` respects affinity masks and cgroup
/// quotas, which is right for sizing worker pools but under-reports the
/// machine when a runner pins the bench process — `BENCH_pipeline.json` was
/// recording `"cpus": 1` on multi-core hosts. For *metadata* we want the
/// larger of that and the `/proc/cpuinfo` processor count, with an
/// `LTSE_BENCH_CPUS` override for platforms without procfs.
pub fn detected_cpus() -> usize {
    if let Some(n) = std::env::var("LTSE_BENCH_CPUS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    let avail = std::thread::available_parallelism().map_or(1, |n| n.get());
    let cpuinfo = std::fs::read_to_string("/proc/cpuinfo")
        .map(|s| {
            s.lines()
                .filter(|l| l.starts_with("processor"))
                .count()
        })
        .unwrap_or(0);
    avail.max(cpuinfo).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iters_env_fallback_uses_default() {
        // The variable is not set under `cargo test`, so the default wins.
        if std::env::var("LTSE_BENCH_ITERS").is_err() {
            assert_eq!(iters(7), 7);
        }
    }

    #[test]
    fn format_is_milliseconds() {
        assert_eq!(format_ms(0.012345), "12.345");
    }

    #[test]
    fn detected_cpus_is_at_least_available_parallelism() {
        if std::env::var("LTSE_BENCH_CPUS").is_err() {
            let avail = std::thread::available_parallelism().map_or(1, |n| n.get());
            assert!(detected_cpus() >= avail);
        }
        assert!(detected_cpus() >= 1);
    }
}
