//! Experiment-side front end over [`ltse_sim::parallel`].
//!
//! Every experiment function builds a list of labelled
//! [`RunSpec`](ltse_sim::parallel::RunSpec)s and hands it to [`sweep`] (runs
//! that return `Result`) or [`sweep_ok`] (runs that handle simulator errors
//! themselves). The pool executes them on [`jobs`] workers, results come
//! back in submission order — so rendered tables are byte-identical
//! regardless of worker count — and any run that panics or errors surfaces
//! as one entry of a [`SweepError`] instead of killing the sweep.
//!
//! Each sweep also records an [`ExpTiming`] (wall clock, runs/sec, mean
//! per-run time) into a process-wide registry the `repro` binary drains via
//! [`take_timings`] to print per-experiment throughput lines.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use ltse_sim::cache::{CacheCounts, CacheValue};
use ltse_sim::parallel::{effective_jobs, run_pool_cached, PoolOutput, RunSpec};

use crate::cache::active_cache;

/// The process-wide worker-count override. 0 means "unset": fall back to
/// `LTSE_JOBS`, then [`std::thread::available_parallelism`].
static JOBS: AtomicUsize = AtomicUsize::new(0);

/// The timing registry, appended to by every sweep and drained by `repro`.
static TIMINGS: Mutex<Vec<ExpTiming>> = Mutex::new(Vec::new());

/// Sets the worker count every subsequent sweep uses (`None` returns to the
/// `LTSE_JOBS`/`available_parallelism` default). The `repro --jobs N` flag
/// lands here.
pub fn set_jobs(jobs: Option<usize>) {
    JOBS.store(jobs.unwrap_or(0), Ordering::Relaxed);
}

/// The worker count sweeps currently resolve to.
pub fn jobs() -> usize {
    match JOBS.load(Ordering::Relaxed) {
        0 => effective_jobs(None),
        n => effective_jobs(Some(n)),
    }
}

/// Wall-clock accounting for one experiment's sweep.
#[derive(Debug, Clone)]
pub struct ExpTiming {
    /// Experiment name, e.g. `"figure4"`.
    pub experiment: &'static str,
    /// Wall-clock time of the whole sweep.
    pub wall: Duration,
    /// Number of simulation runs in the sweep.
    pub runs: usize,
    /// Runs that failed (panicked or returned an error).
    pub failed: usize,
    /// Workers used.
    pub jobs: usize,
    /// Completed runs per wall-clock second.
    pub runs_per_sec: f64,
    /// Mean per-run wall-clock time in milliseconds.
    pub mean_run_ms: f64,
    /// Run-cache traffic (all zero when caching is disabled, in which case
    /// the rendered timing line is byte-identical to the uncached pipeline).
    pub cache: CacheCounts,
}

impl std::fmt::Display for ExpTiming {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} runs in {:.2}s on {} worker{} ({:.1} runs/sec, {:.1} ms/run mean)",
            self.experiment,
            self.runs,
            self.wall.as_secs_f64(),
            self.jobs,
            if self.jobs == 1 { "" } else { "s" },
            self.runs_per_sec,
            self.mean_run_ms,
        )?;
        if self.cache.total() > 0 {
            write!(
                f,
                " — cache: {} hit{}, {} miss{}, {} stale",
                self.cache.hits,
                if self.cache.hits == 1 { "" } else { "s" },
                self.cache.misses,
                if self.cache.misses == 1 { "" } else { "es" },
                self.cache.stale,
            )?;
        }
        if self.failed > 0 {
            write!(f, " — {} FAILED", self.failed)?;
        }
        Ok(())
    }
}

/// Drains every timing recorded since the last call, in sweep order.
pub fn take_timings() -> Vec<ExpTiming> {
    std::mem::take(&mut TIMINGS.lock().expect("timing registry lock"))
}

/// One failed run inside a sweep.
#[derive(Debug, Clone)]
pub struct FailedRun {
    /// The run's label, e.g. `"figure4/mp3d/BS_2kb/seed=2"`.
    pub label: String,
    /// What went wrong: the panic message or the simulator error.
    pub reason: String,
}

/// An experiment whose sweep had at least one failing run. Successful runs
/// are discarded — a partially-failed table would silently mis-summarize,
/// so the caller reports the failures instead.
#[derive(Debug)]
pub struct SweepError {
    /// Experiment name.
    pub experiment: &'static str,
    /// Total runs attempted.
    pub runs: usize,
    /// Every failing run, in submission order.
    pub failures: Vec<FailedRun>,
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{}: {}/{} runs failed:",
            self.experiment,
            self.failures.len(),
            self.runs
        )?;
        for failure in &self.failures {
            writeln!(f, "  [{}] {}", failure.label, failure.reason)?;
        }
        Ok(())
    }
}

impl std::error::Error for SweepError {}

fn record_timing<T>(experiment: &'static str, out: &PoolOutput<T>, failed: usize) {
    let timing = ExpTiming {
        experiment,
        wall: out.wall,
        runs: out.results.len(),
        failed,
        jobs: out.jobs,
        runs_per_sec: out.runs_per_sec(),
        mean_run_ms: out.per_run_nanos.mean().unwrap_or(0.0) / 1e6,
        cache: out.cache,
    };
    TIMINGS.lock().expect("timing registry lock").push(timing);
}

/// Runs a sweep whose jobs return `Result<R, E>`: both panics and `Err`s
/// count as failures. Returns the `R`s in submission order, or a
/// [`SweepError`] naming every failed run.
///
/// Specs carrying a fingerprint ([`RunSpec::keyed`]) are served from the
/// [active cache](crate::cache::active_cache) when possible — `Err` results
/// included, since deterministic simulator errors are results too.
pub fn sweep<R, E>(
    experiment: &'static str,
    specs: Vec<RunSpec<Result<R, E>>>,
) -> Result<Vec<R>, SweepError>
where
    R: Send + CacheValue,
    E: std::fmt::Display + Send + CacheValue,
{
    let labels: Vec<String> = specs.iter().map(|s| s.label.clone()).collect();
    let cache = active_cache();
    let out = run_pool_cached(specs, jobs(), cache.as_deref());
    let mut rows = Vec::with_capacity(out.results.len());
    let mut failures = Vec::new();
    let runs = out.results.len();
    for (result, label) in out.results.iter().zip(&labels) {
        match result {
            Ok(Ok(_)) => {}
            Ok(Err(e)) => failures.push(FailedRun {
                label: label.clone(),
                reason: e.to_string(),
            }),
            Err(panic) => failures.push(FailedRun {
                label: label.clone(),
                reason: format!("panicked: {}", panic.message),
            }),
        }
    }
    record_timing(experiment, &out, failures.len());
    if !failures.is_empty() {
        return Err(SweepError {
            experiment,
            runs,
            failures,
        });
    }
    for result in out.results {
        match result {
            Ok(Ok(r)) => rows.push(r),
            _ => unreachable!("failures were collected above"),
        }
    }
    Ok(rows)
}

/// Runs a sweep whose jobs handle simulator errors internally (e.g. the
/// log-overflow configurations that legitimately hit the cycle limit): only
/// a panic counts as a failure.
pub fn sweep_ok<R: Send + CacheValue>(
    experiment: &'static str,
    specs: Vec<RunSpec<R>>,
) -> Result<Vec<R>, SweepError> {
    let labels: Vec<String> = specs.iter().map(|s| s.label.clone()).collect();
    let cache = active_cache();
    let out = run_pool_cached(specs, jobs(), cache.as_deref());
    let runs = out.results.len();
    let failures: Vec<FailedRun> = out
        .results
        .iter()
        .zip(&labels)
        .filter_map(|(result, label)| {
            result.as_ref().err().map(|panic| FailedRun {
                label: label.clone(),
                reason: format!("panicked: {}", panic.message),
            })
        })
        .collect();
    record_timing(experiment, &out, failures.len());
    if !failures.is_empty() {
        return Err(SweepError {
            experiment,
            runs,
            failures,
        });
    }
    Ok(out.results.into_iter().map(|r| r.unwrap()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The timing registry is process-global, so tests that record or drain
    /// it must not interleave.
    static REGISTRY_GUARD: Mutex<()> = Mutex::new(());

    #[test]
    fn sweep_collects_rows_in_order() {
        let _guard = REGISTRY_GUARD.lock().unwrap();
        let specs = (0..8u64)
            .map(|i| RunSpec::new(format!("ok/{i}"), move || Ok::<u64, String>(i * 10)))
            .collect();
        let rows = sweep("test_order", specs).expect("all ok");
        assert_eq!(rows, (0..8).map(|i| i * 10).collect::<Vec<_>>());
        let timings = take_timings();
        let t = timings.iter().find(|t| t.experiment == "test_order").unwrap();
        assert_eq!(t.runs, 8);
        assert_eq!(t.failed, 0);
    }

    #[test]
    fn sweep_surfaces_errs_and_panics_with_labels() {
        let _guard = REGISTRY_GUARD.lock().unwrap();
        let mut specs: Vec<RunSpec<Result<u64, String>>> = vec![
            RunSpec::new("good", || Ok(1)),
            RunSpec::new("soft-fail", || Err("cycle limit".to_string())),
        ];
        specs.push(RunSpec::new("hard-fail", || panic!("boom")));
        let err = sweep("test_failures", specs).unwrap_err();
        assert_eq!(err.runs, 3);
        assert_eq!(err.failures.len(), 2);
        assert_eq!(err.failures[0].label, "soft-fail");
        assert!(err.failures[0].reason.contains("cycle limit"));
        assert_eq!(err.failures[1].label, "hard-fail");
        assert!(err.failures[1].reason.contains("boom"));
        let shown = err.to_string();
        assert!(shown.contains("2/3 runs failed"), "{shown}");
        take_timings();
    }

    #[test]
    fn sweep_ok_only_fails_on_panics() {
        let _guard = REGISTRY_GUARD.lock().unwrap();
        let specs: Vec<RunSpec<Result<u64, String>>> = vec![
            RunSpec::new("a", || Ok(1)),
            RunSpec::new("b", || Err("handled internally".to_string())),
        ];
        let rows = sweep_ok("test_sweep_ok", specs).expect("errors are data here");
        assert_eq!(rows, vec![Ok(1), Err("handled internally".to_string())]);
        take_timings();
    }

    #[test]
    fn set_jobs_round_trips() {
        set_jobs(Some(2));
        assert_eq!(jobs(), 2);
        set_jobs(None);
        assert!(jobs() >= 1);
    }
}
