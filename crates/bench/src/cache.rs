//! Experiment-side wiring for the content-addressed run cache.
//!
//! Every experiment run is a pure function of its fingerprinted inputs
//! (workload spec, machine knobs, seed), so its result row can be stored
//! under that fingerprint in an [`ltse_sim::cache::RunCache`] and served
//! back on the next invocation instead of re-simulating. This module owns:
//!
//! * the process-wide cache handle ([`set_cache_dir`] / [`disable_cache`] /
//!   [`active_cache`]), resolved from `repro --cache-dir`, the `LTSE_CACHE`
//!   environment variable, or `--no-cache` — with **disabled** as the
//!   default so uncached behaviour (including stdout and stderr) is exactly
//!   the pre-cache pipeline;
//! * the fingerprint helpers ([`run_fp`], [`fp_params`]) that fold in
//!   [`CACHE_SCHEMA`] so any experiment-code change can invalidate every
//!   entry with one constant bump;
//! * [`CacheValue`] codecs for each experiment's row type.
//!
//! Correctness stance: a cache hit must be byte-identical to what the run
//! would have computed. Anything less than a perfect decode — unknown
//! labels, truncated payloads, schema drift — returns `None` and the run is
//! recomputed; the cache can serve wrong *performance*, never wrong
//! *results*.

use std::io;
use std::path::Path;
use std::sync::{Arc, Mutex};

use logtm_se::Cycle;
use ltse_sim::cache::{ByteReader, CacheValue, FpHash, FpHasher, Fingerprint, RunCache};
use ltse_workloads::RunParams;

use ltse_workloads::BackendKind;

use crate::experiments::{
    ExperimentScale, LogFilterRow, MultiCmpRow, NestingRow, PolicyRow, PolicySweepRow, SmtRow,
    SnoopRow, StickyRow, Table2Row, Table3Row, VictimRow, VirtRow, POLICY_OLTP_POINTS,
};

/// Experiment-schema tag folded into every fingerprint. Bump whenever
/// experiment code changes in a way that alters results without changing
/// any fingerprinted input (new statistics, tweaked synthetic programs,
/// simulator behaviour changes): every prior cache entry then misses and is
/// recomputed.
pub const CACHE_SCHEMA: u32 = 2;

enum State {
    /// No explicit choice yet; first use consults `LTSE_CACHE`.
    Unresolved,
    Disabled,
    Enabled(Arc<RunCache>),
}

static STATE: Mutex<State> = Mutex::new(State::Unresolved);

/// Enables caching into `dir` (creating it if needed) for every subsequent
/// sweep. The `repro --cache-dir DIR` flag lands here.
pub fn set_cache_dir(dir: impl AsRef<Path>) -> io::Result<()> {
    let cache = RunCache::open(dir.as_ref())?;
    *STATE.lock().expect("cache state lock") = State::Enabled(Arc::new(cache));
    Ok(())
}

/// Disables caching for every subsequent sweep, overriding `LTSE_CACHE`.
/// The `repro --no-cache` flag lands here.
pub fn disable_cache() {
    *STATE.lock().expect("cache state lock") = State::Disabled;
}

/// The cache sweeps currently write through, if any. On first use with no
/// explicit choice, a non-empty `LTSE_CACHE` environment variable enables
/// caching into that directory; otherwise caching stays off (the pre-cache
/// pipeline, byte-identical output included). An unopenable directory
/// disables caching with a warning rather than failing the run.
pub fn active_cache() -> Option<Arc<RunCache>> {
    let mut state = STATE.lock().expect("cache state lock");
    if let State::Unresolved = *state {
        *state = match std::env::var("LTSE_CACHE") {
            Ok(dir) if !dir.trim().is_empty() => match RunCache::open(dir.trim()) {
                Ok(cache) => State::Enabled(Arc::new(cache)),
                Err(e) => {
                    eprintln!("warning: LTSE_CACHE={dir} unusable ({e}); caching disabled");
                    State::Disabled
                }
            },
            _ => State::Disabled,
        };
    }
    match &*state {
        State::Enabled(cache) => Some(Arc::clone(cache)),
        _ => None,
    }
}

/// A fingerprint builder pre-seeded with the cache domain, [`CACHE_SCHEMA`],
/// and the experiment name. Experiments feed their remaining inputs and
/// [`FpHasher::finish`].
pub fn run_fp(experiment: &str) -> FpHasher {
    let mut h = FpHasher::new("ltse-run");
    h.write_u64(CACHE_SCHEMA as u64);
    h.write_str(experiment);
    h
}

/// The fingerprint of a [`run_benchmark`](ltse_workloads::run_benchmark)
/// invocation: every [`RunParams`] field participates.
pub fn fp_params(experiment: &str, p: &RunParams) -> Fingerprint {
    run_fp(experiment).feed(p).finish()
}

impl FpHash for ExperimentScale {
    fn fp_feed(&self, h: &mut FpHasher) {
        h.write_u64(self.threads as u64);
        h.write_u64(self.units_per_thread);
        h.write_u64(self.seeds as u64);
        h.write_u64(self.base_seed);
        h.write_u64(self.warmup_units);
    }
}

/// Decodes a string that must be one of the known `&'static str` labels a
/// row type stores. An unknown label (e.g. after a rename without a schema
/// bump) fails the decode, forcing a recompute.
fn decode_static(r: &mut ByteReader<'_>, known: &[&'static str]) -> Option<&'static str> {
    let s = String::decode(r)?;
    known.iter().copied().find(|k| *k == s)
}

impl CacheValue for PolicyRow {
    fn encode(&self, out: &mut Vec<u8>) {
        self.benchmark.encode(out);
        self.policy.encode(out);
        self.cycles.encode(out);
        self.aborts.encode(out);
        self.stalls.encode(out);
        self.wasted_cycles.encode(out);
        self.completed.encode(out);
    }

    fn decode(r: &mut ByteReader<'_>) -> Option<Self> {
        Some(PolicyRow {
            benchmark: CacheValue::decode(r)?,
            policy: CacheValue::decode(r)?,
            cycles: Cycle::decode(r)?,
            aborts: u64::decode(r)?,
            stalls: u64::decode(r)?,
            wasted_cycles: u64::decode(r)?,
            completed: bool::decode(r)?,
        })
    }
}

impl CacheValue for PolicySweepRow {
    fn encode(&self, out: &mut Vec<u8>) {
        self.workload.to_string().encode(out);
        self.backend.name().to_string().encode(out);
        self.policy.encode(out);
        self.score.encode(out);
        self.committed.encode(out);
        self.aborts.encode(out);
        self.serial_escalations.encode(out);
        self.completed.encode(out);
    }

    fn decode(r: &mut ByteReader<'_>) -> Option<Self> {
        let known: Vec<&'static str> = std::iter::once("mp3d_tm")
            .chain(POLICY_OLTP_POINTS.iter().map(|(name, _, _)| *name))
            .collect();
        let workload = decode_static(r, &known)?;
        let backend = match decode_static(r, &["sim", "stm"])? {
            "sim" => BackendKind::Sim,
            _ => BackendKind::Stm,
        };
        Some(PolicySweepRow {
            workload,
            backend,
            policy: CacheValue::decode(r)?,
            score: f64::decode(r)?,
            committed: u64::decode(r)?,
            aborts: u64::decode(r)?,
            serial_escalations: u64::decode(r)?,
            completed: bool::decode(r)?,
        })
    }
}

impl CacheValue for SmtRow {
    fn encode(&self, out: &mut Vec<u8>) {
        self.benchmark.encode(out);
        self.machine.to_string().encode(out);
        self.cycles.encode(out);
        self.sibling_stalls.encode(out);
        self.stalls.encode(out);
    }

    fn decode(r: &mut ByteReader<'_>) -> Option<Self> {
        Some(SmtRow {
            benchmark: CacheValue::decode(r)?,
            machine: decode_static(r, &["16x2 SMT", "32x1"])?,
            cycles: Cycle::decode(r)?,
            sibling_stalls: u64::decode(r)?,
            stalls: u64::decode(r)?,
        })
    }
}

impl CacheValue for NestingRow {
    fn encode(&self, out: &mut Vec<u8>) {
        self.shape.to_string().encode(out);
        self.cycles.encode(out);
        self.aborts.encode(out);
        self.partial_aborts.encode(out);
        self.wasted_cycles.encode(out);
    }

    fn decode(r: &mut ByteReader<'_>) -> Option<Self> {
        Some(NestingRow {
            shape: decode_static(r, &["flat", "nested"])?,
            cycles: Cycle::decode(r)?,
            aborts: u64::decode(r)?,
            partial_aborts: u64::decode(r)?,
            wasted_cycles: u64::decode(r)?,
        })
    }
}

impl CacheValue for MultiCmpRow {
    fn encode(&self, out: &mut Vec<u8>) {
        self.benchmark.encode(out);
        self.chips.encode(out);
        self.cycles.encode(out);
        self.interchip_messages.encode(out);
        self.messages.encode(out);
    }

    fn decode(r: &mut ByteReader<'_>) -> Option<Self> {
        Some(MultiCmpRow {
            benchmark: CacheValue::decode(r)?,
            chips: u8::decode(r)?,
            cycles: Cycle::decode(r)?,
            interchip_messages: u64::decode(r)?,
            messages: u64::decode(r)?,
        })
    }
}

impl CacheValue for SnoopRow {
    fn encode(&self, out: &mut Vec<u8>) {
        self.benchmark.encode(out);
        self.coherence.encode(out);
        self.signature.encode(out);
        self.cycles.encode(out);
        self.messages.encode(out);
        self.false_positive_pct.encode(out);
        self.stalls.encode(out);
    }

    fn decode(r: &mut ByteReader<'_>) -> Option<Self> {
        Some(SnoopRow {
            benchmark: CacheValue::decode(r)?,
            coherence: CacheValue::decode(r)?,
            signature: CacheValue::decode(r)?,
            cycles: Cycle::decode(r)?,
            messages: u64::decode(r)?,
            false_positive_pct: CacheValue::decode(r)?,
            stalls: u64::decode(r)?,
        })
    }
}

impl CacheValue for Table2Row {
    fn encode(&self, out: &mut Vec<u8>) {
        self.benchmark.encode(out);
        self.input.to_string().encode(out);
        self.unit.to_string().encode(out);
        self.units.encode(out);
        self.transactions.encode(out);
        self.read_avg.encode(out);
        self.read_max.encode(out);
        self.read_p95.encode(out);
        self.write_avg.encode(out);
        self.write_max.encode(out);
    }

    fn decode(r: &mut ByteReader<'_>) -> Option<Self> {
        let benchmark: ltse_workloads::Benchmark = CacheValue::decode(r)?;
        // `input`/`unit` are derived labels; the stored strings must match
        // what the current code derives, or the entry predates a label
        // change and must be recomputed.
        let input = decode_static(r, &[benchmark.input_label()])?;
        let unit = decode_static(r, &[benchmark.unit_label()])?;
        Some(Table2Row {
            benchmark,
            input,
            unit,
            units: u64::decode(r)?,
            transactions: u64::decode(r)?,
            read_avg: f64::decode(r)?,
            read_max: u64::decode(r)?,
            read_p95: u64::decode(r)?,
            write_avg: f64::decode(r)?,
            write_max: u64::decode(r)?,
        })
    }
}

impl CacheValue for Table3Row {
    fn encode(&self, out: &mut Vec<u8>) {
        self.benchmark.encode(out);
        self.signature.encode(out);
        self.transactions.encode(out);
        self.aborts.encode(out);
        self.stalls.encode(out);
        self.false_positive_pct.encode(out);
    }

    fn decode(r: &mut ByteReader<'_>) -> Option<Self> {
        Some(Table3Row {
            benchmark: CacheValue::decode(r)?,
            signature: CacheValue::decode(r)?,
            transactions: u64::decode(r)?,
            aborts: u64::decode(r)?,
            stalls: u64::decode(r)?,
            false_positive_pct: CacheValue::decode(r)?,
        })
    }
}

impl CacheValue for VictimRow {
    fn encode(&self, out: &mut Vec<u8>) {
        self.benchmark.encode(out);
        self.transactions.encode(out);
        self.victimizations.encode(out);
        self.broadcasts.encode(out);
    }

    fn decode(r: &mut ByteReader<'_>) -> Option<Self> {
        Some(VictimRow {
            benchmark: CacheValue::decode(r)?,
            transactions: u64::decode(r)?,
            victimizations: u64::decode(r)?,
            broadcasts: u64::decode(r)?,
        })
    }
}

impl CacheValue for StickyRow {
    fn encode(&self, out: &mut Vec<u8>) {
        self.workload.encode(out);
        self.sticky.encode(out);
        self.cycles.encode(out);
        self.aborts.encode(out);
        self.victimizations.encode(out);
        self.completed.encode(out);
    }

    fn decode(r: &mut ByteReader<'_>) -> Option<Self> {
        Some(StickyRow {
            workload: String::decode(r)?,
            sticky: bool::decode(r)?,
            cycles: Cycle::decode(r)?,
            aborts: u64::decode(r)?,
            victimizations: u64::decode(r)?,
            completed: bool::decode(r)?,
        })
    }
}

impl CacheValue for LogFilterRow {
    fn encode(&self, out: &mut Vec<u8>) {
        self.entries.encode(out);
        self.log_writes.encode(out);
        self.suppressed.encode(out);
        self.cycles.encode(out);
    }

    fn decode(r: &mut ByteReader<'_>) -> Option<Self> {
        Some(LogFilterRow {
            entries: usize::decode(r)?,
            log_writes: u64::decode(r)?,
            suppressed: u64::decode(r)?,
            cycles: Cycle::decode(r)?,
        })
    }
}

impl CacheValue for VirtRow {
    fn encode(&self, out: &mut Vec<u8>) {
        self.quantum.encode(out);
        self.defer_in_tx.encode(out);
        self.cycles.encode(out);
        self.units.encode(out);
        self.tx_deschedules.encode(out);
        self.summary_installs.encode(out);
        self.aborts.encode(out);
    }

    fn decode(r: &mut ByteReader<'_>) -> Option<Self> {
        Some(VirtRow {
            quantum: CacheValue::decode(r)?,
            defer_in_tx: bool::decode(r)?,
            cycles: Cycle::decode(r)?,
            units: u64::decode(r)?,
            tx_deschedules: u64::decode(r)?,
            summary_installs: u64::decode(r)?,
            aborts: u64::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logtm_se::{CoherenceKind, ContentionPolicy, SignatureKind};
    use ltse_workloads::{Benchmark, SyncMode};

    fn round_trip<T: CacheValue + std::fmt::Debug>(v: &T) -> T {
        T::from_cache_bytes(&v.to_cache_bytes()).expect("round trip")
    }

    #[test]
    fn every_row_type_round_trips() {
        let p = round_trip(&PolicyRow {
            benchmark: Benchmark::Raytrace,
            policy: ContentionPolicy::SizeMatters,
            cycles: Cycle(123_456),
            aborts: 7,
            stalls: 8,
            wasted_cycles: 9,
            completed: false,
        });
        assert_eq!(p.benchmark, Benchmark::Raytrace);
        assert_eq!(p.policy, ContentionPolicy::SizeMatters);
        assert!(!p.completed);

        let ps = round_trip(&PolicySweepRow {
            workload: "oltp_zipf99_read50",
            backend: ltse_workloads::BackendKind::Stm,
            policy: ContentionPolicy::Adaptive,
            score: 1234.5,
            committed: 6,
            aborts: 7,
            serial_escalations: 8,
            completed: true,
        });
        assert_eq!(ps.workload, "oltp_zipf99_read50");
        assert_eq!(ps.backend, ltse_workloads::BackendKind::Stm);
        assert_eq!(ps.policy, ContentionPolicy::Adaptive);
        assert_eq!(ps.score, 1234.5);
        assert_eq!(ps.serial_escalations, 8);

        let s = round_trip(&SmtRow {
            benchmark: Benchmark::Mp3d,
            machine: "16x2 SMT",
            cycles: Cycle(42),
            sibling_stalls: 1,
            stalls: 2,
        });
        assert_eq!(s.machine, "16x2 SMT");

        let n = round_trip(&NestingRow {
            shape: "nested",
            cycles: Cycle(1),
            aborts: 2,
            partial_aborts: 3,
            wasted_cycles: 4,
        });
        assert_eq!(n.shape, "nested");

        let m = round_trip(&MultiCmpRow {
            benchmark: Benchmark::BerkeleyDb,
            chips: 4,
            cycles: Cycle(5),
            interchip_messages: 6,
            messages: 7,
        });
        assert_eq!(m.chips, 4);

        let sn = round_trip(&SnoopRow {
            benchmark: Benchmark::Raytrace,
            coherence: CoherenceKind::SnoopingMesi,
            signature: SignatureKind::paper_bs_64(),
            cycles: Cycle(9),
            messages: 10,
            false_positive_pct: Some(1.25),
            stalls: 11,
        });
        assert_eq!(sn.coherence, CoherenceKind::SnoopingMesi);
        assert_eq!(sn.false_positive_pct, Some(1.25));

        let t2 = round_trip(&Table2Row {
            benchmark: Benchmark::Cholesky,
            input: Benchmark::Cholesky.input_label(),
            unit: Benchmark::Cholesky.unit_label(),
            units: 1,
            transactions: 2,
            read_avg: 3.5,
            read_max: 4,
            read_p95: 5,
            write_avg: 6.5,
            write_max: 7,
        });
        assert_eq!(t2.input, "tk14.O");

        let t3 = round_trip(&Table3Row {
            benchmark: Benchmark::BerkeleyDb,
            signature: SignatureKind::paper_cbs_2kb(),
            transactions: 1,
            aborts: 2,
            stalls: 3,
            false_positive_pct: None,
        });
        assert_eq!(t3.signature, SignatureKind::paper_cbs_2kb());

        round_trip(&VictimRow {
            benchmark: Benchmark::Radiosity,
            transactions: 1,
            victimizations: 2,
            broadcasts: 3,
        });

        let st = round_trip(&StickyRow {
            workload: "overflow-micro".into(),
            sticky: true,
            cycles: Cycle(8),
            aborts: 9,
            victimizations: 10,
            completed: true,
        });
        assert_eq!(st.workload, "overflow-micro");

        round_trip(&LogFilterRow {
            entries: 16,
            log_writes: 1,
            suppressed: 2,
            cycles: Cycle(3),
        });

        let v = round_trip(&VirtRow {
            quantum: Some(Cycle(20_000)),
            defer_in_tx: true,
            cycles: Cycle(1),
            units: 2,
            tx_deschedules: 3,
            summary_installs: 4,
            aborts: 5,
        });
        assert_eq!(v.quantum, Some(Cycle(20_000)));
        let v2 = round_trip(&VirtRow {
            quantum: None,
            defer_in_tx: false,
            cycles: Cycle(1),
            units: 2,
            tx_deschedules: 3,
            summary_installs: 4,
            aborts: 5,
        });
        assert_eq!(v2.quantum, None);
    }

    #[test]
    fn unknown_static_label_fails_the_decode() {
        let mut bytes = Vec::new();
        SmtRow {
            benchmark: Benchmark::Mp3d,
            machine: "16x2 SMT",
            cycles: Cycle(1),
            sibling_stalls: 0,
            stalls: 0,
        }
        .encode(&mut bytes);
        // Corrupt the label: "16x2 SMT" -> "16x2 SMX".
        let pos = bytes
            .windows(3)
            .position(|w| w == b"SMT")
            .expect("label present");
        bytes[pos + 2] = b'X';
        assert!(SmtRow::from_cache_bytes(&bytes).is_none());
    }

    #[test]
    fn fingerprints_cover_schema_experiment_and_params() {
        let p = RunParams::paper(
            Benchmark::Mp3d,
            SyncMode::Tm,
            SignatureKind::paper_bs_2kb(),
        );
        let base = fp_params("figure4", &p);
        assert_eq!(base, fp_params("figure4", &p), "stable");
        assert_ne!(base, fp_params("table3", &p), "experiment name matters");
        let mut p2 = p;
        p2.seed ^= 1;
        assert_ne!(base, fp_params("figure4", &p2), "seed matters");
        let mut p3 = p;
        p3.sticky = false;
        assert_ne!(base, fp_params("figure4", &p3), "config fields matter");
    }

    #[test]
    fn scale_feeds_every_field() {
        let a = ExperimentScale::quick();
        let mut b = a;
        b.warmup_units += 1;
        let fp = |s: &ExperimentScale| run_fp("x").feed(s).finish();
        assert_ne!(fp(&a), fp(&b));
    }
}
