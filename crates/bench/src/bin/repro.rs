//! `repro` — regenerates every table and figure of the LogTM-SE paper.
//!
//! Usage:
//!
//! ```text
//! repro [--quick] [--csv] [--jobs N] [--cache-dir DIR] [--no-cache]
//!       [--stats-json PATH] [--backend sim|stm] <subcommand>
//!
//! Subcommands:
//!   table1         System model parameters (paper Table 1)
//!   table2         Benchmarks and transaction footprints (Table 2)
//!   figure4        Speedup over locks, all signatures (Figure 4)
//!   table3         Signature size vs. conflict detection (Table 3)
//!   victimization  Transactional victimization counts (Result 4)
//!   table4         Virtualization-technique comparison (Table 4)
//!   sweep          Ablation A1: signature size sweep
//!   sticky         Ablation A2: sticky states on/off
//!   logfilter      Ablation A3: log-filter size
//!   virt           Ablation A4: context-switch overhead
//!   snooping       §7: directory vs. snooping coherence
//!   policies       Contention managers (future-work hook)
//!   multicmp       §7: multiple-CMP partitioning
//!   nesting        Partial aborts: flat vs. nested (§3.2)
//!   smt            16×2 SMT vs. 32×1 cores, sibling-conflict cost
//!   oltp           Open-loop OLTP driver: latency SLOs by skew/mix point
//!   policy         Adaptive contention management: every policy on
//!                  contended workloads, both backends
//!   all            Everything above except oltp and policy, in order
//! ```
//!
//! `--quick` runs at reduced scale (for smoke tests); `--csv` emits
//! machine-readable CSV for `table2`, `figure4`, and `table3`.
//!
//! Every experiment fans its independent simulation runs out over a worker
//! pool. `--jobs N` (or the `LTSE_JOBS` environment variable) sets the
//! worker count; the default is one worker per available core. Results are
//! collected in submission order, so **stdout is byte-identical regardless
//! of worker count**. Wall-clock/throughput lines (inherently
//! nondeterministic) go to stderr; a run that panics or errors is reported
//! per label on stderr and flips the exit code to 1 without killing the
//! other runs of the sweep.
//!
//! `--stats-json PATH` additionally writes the machine-readable telemetry
//! document (`ltse.stats.v1`): one observability-enabled run per sweep
//! experiment with cause-attributed stall/abort/NACK breakdowns that
//! provably reconcile with the aggregate counters. The document is produced
//! sequentially outside the pool and the cache, so its bytes are identical
//! across `--jobs` values and cache configurations, and stdout is unchanged.
//!
//! `--backend stm` targets the real-concurrency TL2 STM backend instead of
//! the cycle-level simulator: it runs every Table-2 workload on both
//! engines and prints a side-by-side comparison (simulated cycles vs. real
//! wall clock), and `oltp` runs every skew/mix point on both engines with
//! a final-KV-state cross-check. Because the STM numbers are wall-clock
//! from real OS threads, those tables are *not* byte-deterministic and the
//! runs bypass the worker pool and the cache; only the `table2`, `oltp`,
//! and `all` subcommands are meaningful there. `--stats-json` on the STM
//! branch writes the STM telemetry document: per-cause abort counters
//! (locked/stale/serial-fallback) mapped onto the obs layer with a
//! `reconciled` block. The default (`--backend sim`, or no flag) leaves
//! every other invocation byte-for-byte unchanged.
//!
//! `oltp` (simulator by default) reports open-loop commit-latency SLOs
//! (p50/p99/p999, simulated cycles) and goodput for three Zipfian
//! skew/read-mix points. It is deliberately *not* part of `all`, keeping
//! that stdout byte-identical with earlier releases; its sim output is
//! itself fully deterministic.
//!
//! `policy` runs the adaptive contention-management sweep: every
//! contention policy (including `Adaptive`) over contended workload
//! points — Mp3d plus two OLTP skew/mix points — on **both** backends in
//! one table. Its STM rows are wall-clock and therefore not
//! byte-deterministic, so like `oltp` it stays out of `all`.
//!
//! `--cache-dir DIR` (or the `LTSE_CACHE` environment variable) enables the
//! persistent run cache: repeated sweeps with identical inputs are served
//! from disk instead of re-simulated, and `[timing]` lines report
//! hit/miss/stale traffic. `--no-cache` disables caching even when
//! `LTSE_CACHE` is set. Caching never changes stdout — only how fast it is
//! produced.

use logtm_se::{MemConfig, SystemBuilder};
use ltse_bench::experiments::ExperimentScale;
use ltse_bench::runner::{self, SweepError};
use ltse_bench::render;
use ltse_bench::*;

fn table1_text() -> String {
    let b = SystemBuilder::paper_default();
    let m: MemConfig = *b.mem_config_view();
    let lat = m.latency;
    format!(
        "Table 1: system model parameters\n\
         Processor cores       {} cores, {}-way SMT ({} thread contexts)\n\
         L1 cache              {} sets x {} ways, 64-byte blocks, {} cycle hit\n\
         L2 cache              {} banks x {} sets x {} ways, 64-byte blocks, {} cycle access\n\
         Memory                {} cycle latency\n\
         L2 directory          full bit-vector sharer list + exclusive pointer, {} cycle latency\n\
         Interconnect          {}x{} grid, {}-cycle links\n\
         Sticky states         {}\n",
        m.n_cores,
        m.smt_per_core,
        m.n_ctxs(),
        m.l1.sets,
        m.l1.ways,
        lat.l1_hit.as_u64(),
        m.n_banks,
        m.l2_bank.sets,
        m.l2_bank.ways,
        lat.l2_access.as_u64(),
        lat.dram.as_u64(),
        lat.directory.as_u64(),
        m.grid_width,
        m.grid_height,
        lat.link.as_u64(),
        m.sticky_enabled,
    )
}

/// Prints a rendered table to stdout, or the sweep's per-run failures to
/// stderr. Returns whether the experiment succeeded.
fn emit<T>(result: Result<Vec<T>, SweepError>, render: impl FnOnce(&[T]) -> String) -> bool {
    match result {
        Ok(rows) => {
            print!("{}", render(&rows));
            true
        }
        Err(e) => {
            eprint!("{e}");
            false
        }
    }
}

/// Drains the runner's timing registry to stderr (timings are wall-clock
/// and therefore excluded from the deterministic stdout).
fn report_timings() {
    for timing in runner::take_timings() {
        eprintln!("[timing] {timing}");
    }
}

/// Accepts `--cache-dir DIR` and `--cache-dir=DIR`. Returns the directory,
/// if the flag was given.
fn parse_cache_dir(args: &[String]) -> Option<String> {
    let bad = || -> ! {
        eprintln!("error: --cache-dir requires a directory path");
        std::process::exit(2);
    };
    for (i, a) in args.iter().enumerate() {
        if let Some(v) = a.strip_prefix("--cache-dir=") {
            return Some(v.to_string());
        }
        if a == "--cache-dir" {
            return Some(args.get(i + 1).cloned().unwrap_or_else(|| bad()));
        }
    }
    None
}

/// Accepts `--stats-json PATH` and `--stats-json=PATH`. Returns the output
/// path, if the flag was given.
fn parse_stats_json(args: &[String]) -> Option<String> {
    let bad = || -> ! {
        eprintln!("error: --stats-json requires an output file path");
        std::process::exit(2);
    };
    for (i, a) in args.iter().enumerate() {
        if let Some(v) = a.strip_prefix("--stats-json=") {
            return Some(v.to_string());
        }
        if a == "--stats-json" {
            return Some(args.get(i + 1).cloned().unwrap_or_else(|| bad()));
        }
    }
    None
}

/// Accepts `--backend KIND` and `--backend=KIND`; defaults to the
/// simulator, keeping flag-less stdout untouched.
fn parse_backend(args: &[String]) -> ltse_workloads::BackendKind {
    let bad = |v: &str| -> ! {
        eprintln!("error: --backend: {v}");
        std::process::exit(2);
    };
    for (i, a) in args.iter().enumerate() {
        let value = if let Some(v) = a.strip_prefix("--backend=") {
            Some(v.to_string())
        } else if a == "--backend" {
            Some(
                args.get(i + 1)
                    .cloned()
                    .unwrap_or_else(|| bad("requires a value (sim|stm)")),
            )
        } else {
            None
        };
        if let Some(v) = value {
            return v.parse().unwrap_or_else(|e: String| bad(&e));
        }
    }
    ltse_workloads::BackendKind::Sim
}

fn parse_jobs(args: &[String]) -> Option<usize> {
    // Accept `--jobs N` and `--jobs=N`. A missing or non-numeric value is a
    // usage error, not something to silently ignore.
    let bad = |v: &str| -> ! {
        eprintln!("error: --jobs requires a positive integer, got `{v}`");
        std::process::exit(2);
    };
    for (i, a) in args.iter().enumerate() {
        if let Some(v) = a.strip_prefix("--jobs=") {
            return Some(v.parse().unwrap_or_else(|_| bad(v)));
        }
        if a == "--jobs" {
            let v = args.get(i + 1).unwrap_or_else(|| bad("nothing"));
            return Some(v.parse().unwrap_or_else(|_| bad(v)));
        }
    }
    None
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let csv = args.iter().any(|a| a == "--csv");
    let jobs = parse_jobs(&args);
    runner::set_jobs(jobs);
    if args.iter().any(|a| a == "--no-cache") {
        ltse_bench::cache::disable_cache();
    } else if let Some(dir) = parse_cache_dir(&args) {
        if let Err(e) = ltse_bench::cache::set_cache_dir(&dir) {
            eprintln!("error: cannot open cache dir `{dir}`: {e}");
            std::process::exit(2);
        }
    }
    let scale = if quick {
        ExperimentScale::quick()
    } else {
        ExperimentScale::full()
    };
    let mut skip_next = false;
    let cmd = args
        .iter()
        .find(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if *a == "--jobs" || *a == "--cache-dir" || *a == "--stats-json" || *a == "--backend"
            {
                skip_next = true;
            }
            !a.starts_with("--") && !skip_next
        })
        .map(String::as_str)
        .unwrap_or("all");

    // The STM backend has exactly one table: the sim-vs-stm differential
    // comparison over the Table-2 workloads. It runs sequentially (real
    // wall clock — no pool, no cache) and exits here so the simulator-only
    // machinery below (stats-json, cache gc) never engages.
    if parse_backend(&args) == ltse_workloads::BackendKind::Stm {
        let mut ok = match cmd {
            "table2" | "all" => emit(stm_compare(&scale), |r| render::render_stm(r)),
            "oltp" => emit(oltp_compare(&scale), |r| render::render_oltp(r)),
            other => {
                eprintln!("subcommand `{other}` is simulator-only; --backend stm supports: table2 oltp all");
                std::process::exit(2);
            }
        };
        if let Some(path) = parse_stats_json(&args) {
            match ltse_bench::stats_json::stats_json_stm(&scale) {
                Ok(doc) => {
                    if let Err(e) = std::fs::write(&path, &doc) {
                        eprintln!("error: cannot write stats-json to `{path}`: {e}");
                        ok = false;
                    } else {
                        eprintln!("[stats-json] wrote {} bytes to {path}", doc.len());
                    }
                }
                Err(e) => {
                    eprintln!("error: stm stats-json run failed: {e}");
                    ok = false;
                }
            }
        }
        report_timings();
        std::process::exit(if ok { 0 } else { 1 });
    }

    let run_one = |name: &str| -> bool {
        let ok = match name {
            "table1" => {
                print!("{}", table1_text());
                true
            }
            "table2" if csv => emit(table2(&scale), |r| render::csv_table2(r)),
            "table2" => emit(table2(&scale), |r| render::render_table2(r)),
            "figure4" if csv => emit(figure4(&scale), |r| render::csv_figure4(r)),
            "figure4" => emit(figure4(&scale), |r| render::render_figure4(r)),
            "table3" if csv => emit(table3(&scale), |r| render::csv_table3(r)),
            "table3" => emit(table3(&scale), |r| render::render_table3(r)),
            "victimization" => {
                emit(victimization(&scale), |r| render::render_victimization(r))
            }
            "table4" => {
                print!("{}", logtm_se::substrates::tm::virt_compare::render_table4());
                true
            }
            "sweep" => emit(signature_sweep(&scale), |r| render::render_sweep(r)),
            "sticky" => emit(sticky_ablation(&scale), |r| render::render_sticky(r)),
            "logfilter" => {
                emit(log_filter_ablation(&scale), |r| render::render_log_filter(r))
            }
            "virt" => emit(virtualization_overhead(&scale), |r| render::render_virt(r)),
            "snooping" => emit(snooping_comparison(&scale), |r| render::render_snooping(r)),
            "policies" => emit(contention_policies(&scale), |r| render::render_policies(r)),
            "multicmp" => emit(multi_cmp_comparison(&scale), |r| render::render_multi_cmp(r)),
            "nesting" => emit(nesting_ablation(&scale), |r| render::render_nesting(r)),
            "smt" => emit(smt_comparison(&scale), |r| render::render_smt(r)),
            "oltp" => emit(
                oltp_experiment(&scale, ltse_workloads::BackendKind::Sim),
                |r| render::render_oltp(r),
            ),
            "policy" => emit(policy_sweep(&scale), |r| render::render_policy_sweep(r)),
            other => {
                eprintln!("unknown subcommand: {other}");
                eprintln!("known: table1 table2 figure4 table3 victimization table4 sweep sticky logfilter virt snooping policies multicmp nesting smt oltp policy all");
                std::process::exit(2);
            }
        };
        report_timings();
        ok
    };

    let mut all_ok = true;
    if cmd == "all" {
        for name in [
            "table1",
            "table2",
            "figure4",
            "table3",
            "victimization",
            "table4",
            "sweep",
            "sticky",
            "logfilter",
            "virt",
            "snooping",
            "policies",
            "multicmp",
            "nesting",
            "smt",
        ] {
            all_ok &= run_one(name);
            println!();
        }
    } else {
        all_ok = run_one(cmd);
    }
    // Telemetry export: one observability-enabled run per experiment,
    // executed sequentially outside the pool and the cache, so the emitted
    // bytes are identical whatever `--jobs` or the cache configuration
    // says. Written to the given file; stdout stays byte-identical to a
    // flag-less invocation.
    if let Some(path) = parse_stats_json(&args) {
        match ltse_bench::stats_json::stats_json(&scale) {
            Ok(doc) => {
                if let Err(e) = std::fs::write(&path, &doc) {
                    eprintln!("error: cannot write stats-json to `{path}`: {e}");
                    all_ok = false;
                } else {
                    eprintln!("[stats-json] wrote {} bytes to {path}", doc.len());
                }
            }
            Err(e) => {
                eprintln!("error: stats-json run failed: {e}");
                all_ok = false;
            }
        }
    }
    if let Some(cache) = ltse_bench::cache::active_cache() {
        let gc = cache.gc();
        if gc.evicted > 0 {
            eprintln!(
                "[cache] gc: evicted {} of {} entries ({} bytes freed)",
                gc.evicted, gc.entries, gc.bytes_evicted
            );
        }
    }
    if !all_ok {
        std::process::exit(1);
    }
}
