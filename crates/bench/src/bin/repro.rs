//! `repro` — regenerates every table and figure of the LogTM-SE paper.
//!
//! Usage:
//!
//! ```text
//! repro [--quick] <subcommand>
//!
//! Subcommands:
//!   table1         System model parameters (paper Table 1)
//!   table2         Benchmarks and transaction footprints (Table 2)
//!   figure4        Speedup over locks, all signatures (Figure 4)
//!   table3         Signature size vs. conflict detection (Table 3)
//!   victimization  Transactional victimization counts (Result 4)
//!   table4         Virtualization-technique comparison (Table 4)
//!   sweep          Ablation A1: signature size sweep
//!   sticky         Ablation A2: sticky states on/off
//!   logfilter      Ablation A3: log-filter size
//!   virt           Ablation A4: context-switch overhead
//!   snooping       §7: directory vs. snooping coherence
//!   policies       Contention managers (future-work hook)
//!   multicmp       §7: multiple-CMP partitioning
//!   nesting        Partial aborts: flat vs. nested (§3.2)
//!   smt            16×2 SMT vs. 32×1 cores, sibling-conflict cost
//!   all            Everything above, in order
//! ```
//!
//! `--quick` runs at reduced scale (for smoke tests); `--csv` emits
//! machine-readable CSV for `table2`, `figure4`, and `table3`.

use logtm_se::{MemConfig, SystemBuilder};
use ltse_bench::experiments::ExperimentScale;
use ltse_bench::render;
use ltse_bench::*;

fn table1_text() -> String {
    let b = SystemBuilder::paper_default();
    let m: MemConfig = *b.mem_config_view();
    let lat = m.latency;
    format!(
        "Table 1: system model parameters\n\
         Processor cores       {} cores, {}-way SMT ({} thread contexts)\n\
         L1 cache              {} sets x {} ways, 64-byte blocks, {} cycle hit\n\
         L2 cache              {} banks x {} sets x {} ways, 64-byte blocks, {} cycle access\n\
         Memory                {} cycle latency\n\
         L2 directory          full bit-vector sharer list + exclusive pointer, {} cycle latency\n\
         Interconnect          {}x{} grid, {}-cycle links\n\
         Sticky states         {}\n",
        m.n_cores,
        m.smt_per_core,
        m.n_ctxs(),
        m.l1.sets,
        m.l1.ways,
        lat.l1_hit.as_u64(),
        m.n_banks,
        m.l2_bank.sets,
        m.l2_bank.ways,
        lat.l2_access.as_u64(),
        lat.dram.as_u64(),
        lat.directory.as_u64(),
        m.grid_width,
        m.grid_height,
        lat.link.as_u64(),
        m.sticky_enabled,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let csv = args.iter().any(|a| a == "--csv");
    let scale = if quick {
        ExperimentScale::quick()
    } else {
        ExperimentScale::full()
    };
    let cmd = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("all");

    let run_one = |name: &str| match name {
        "table1" => print!("{}", table1_text()),
        "table2" if csv => print!("{}", render::csv_table2(&table2(&scale))),
        "table2" => print!("{}", render::render_table2(&table2(&scale))),
        "figure4" if csv => print!("{}", render::csv_figure4(&figure4(&scale))),
        "figure4" => print!("{}", render::render_figure4(&figure4(&scale))),
        "table3" if csv => print!("{}", render::csv_table3(&table3(&scale))),
        "table3" => print!("{}", render::render_table3(&table3(&scale))),
        "victimization" => print!("{}", render::render_victimization(&victimization(&scale))),
        "table4" => print!("{}", logtm_se::substrates::tm::virt_compare::render_table4()),
        "sweep" => print!("{}", render::render_sweep(&signature_sweep(&scale))),
        "sticky" => print!("{}", render::render_sticky(&sticky_ablation(&scale))),
        "logfilter" => print!("{}", render::render_log_filter(&log_filter_ablation(&scale))),
        "virt" => print!("{}", render::render_virt(&virtualization_overhead(&scale))),
        "snooping" => print!("{}", render::render_snooping(&snooping_comparison(&scale))),
        "policies" => print!("{}", render::render_policies(&contention_policies(&scale))),
        "multicmp" => print!("{}", render::render_multi_cmp(&multi_cmp_comparison(&scale))),
        "nesting" => print!("{}", render::render_nesting(&nesting_ablation(&scale))),
        "smt" => print!("{}", render::render_smt(&smt_comparison(&scale))),
        other => {
            eprintln!("unknown subcommand: {other}");
            eprintln!("known: table1 table2 figure4 table3 victimization table4 sweep sticky logfilter virt snooping policies multicmp nesting smt all");
            std::process::exit(2);
        }
    };

    if cmd == "all" {
        for name in [
            "table1",
            "table2",
            "figure4",
            "table3",
            "victimization",
            "table4",
            "sweep",
            "sticky",
            "logfilter",
            "virt",
            "snooping",
            "policies",
            "multicmp",
            "nesting",
            "smt",
        ] {
            run_one(name);
            println!();
        }
    } else {
        run_one(cmd);
    }
}
