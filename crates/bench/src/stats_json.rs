//! `repro --stats-json` — machine-readable telemetry export.
//!
//! One observability-enabled run per experiment of the paper's evaluation,
//! serialized as a versioned JSON document ([`STATS_SCHEMA`], schema-tagged
//! like the run cache). Each row carries the aggregate `TmStats` counters
//! *and* the obs layer's cause-attributed breakdowns side by side, plus a
//! `reconciled` block asserting that the per-cause counts sum back to the
//! aggregates — the contract downstream tooling can rely on.
//!
//! Determinism is load-bearing: the runs here execute sequentially, bypass
//! the run cache entirely, and every map in the document iterates in sorted
//! order, so the emitted bytes are identical whatever `--jobs` says and
//! whether or not a cache directory is configured.

use logtm_se::{
    ContentionPolicy, CoherenceKind, Cycle, ObsReport, RunReport, SignatureKind, SystemBuilder,
    TmBackend,
};
use ltse_sim::config::seed_sequence;
use ltse_stm::StmBuilder;
use ltse_workloads::{run_oltp, BackendKind, Benchmark, OltpOutcome, SyncMode};

use crate::experiments::{oltp_config, ExperimentScale, OLTP_POINTS};

/// Schema tag of the emitted document; bump on any breaking shape change.
pub const STATS_SCHEMA: &str = "ltse.stats.v1";

/// One representative observability run per experiment: the experiment
/// name, the benchmark it runs, and the builder knobs that distinguish it.
struct ObsCase {
    experiment: &'static str,
    benchmark: Benchmark,
    signature: SignatureKind,
    configure: fn(SystemBuilder) -> SystemBuilder,
}

fn ident(b: SystemBuilder) -> SystemBuilder {
    b
}

/// The 13 sweep experiments of the `repro` binary (everything except the
/// static `table1`/`table4` texts), each reduced to one representative
/// configuration. Kept in `repro all` output order.
fn cases() -> Vec<ObsCase> {
    vec![
        ObsCase {
            experiment: "table2",
            benchmark: Benchmark::BerkeleyDb,
            signature: SignatureKind::Perfect,
            configure: ident,
        },
        ObsCase {
            experiment: "figure4",
            benchmark: Benchmark::Cholesky,
            signature: SignatureKind::paper_bs_2kb(),
            configure: ident,
        },
        ObsCase {
            experiment: "table3",
            benchmark: Benchmark::Radiosity,
            signature: SignatureKind::paper_bs_64(),
            configure: ident,
        },
        ObsCase {
            experiment: "victimization",
            benchmark: Benchmark::Raytrace,
            signature: SignatureKind::paper_bs_2kb(),
            configure: ident,
        },
        ObsCase {
            experiment: "sweep",
            benchmark: Benchmark::Mp3d,
            signature: SignatureKind::paper_bs_64(),
            configure: ident,
        },
        ObsCase {
            experiment: "sticky",
            benchmark: Benchmark::BerkeleyDb,
            signature: SignatureKind::paper_bs_2kb(),
            configure: |b| b.sticky(false),
        },
        ObsCase {
            experiment: "logfilter",
            benchmark: Benchmark::Cholesky,
            signature: SignatureKind::paper_bs_2kb(),
            configure: |b| b.log_filter_entries(0),
        },
        ObsCase {
            experiment: "virt",
            benchmark: Benchmark::Radiosity,
            signature: SignatureKind::paper_bs_2kb(),
            configure: |b| b.preemption(Cycle(5_000), false),
        },
        ObsCase {
            experiment: "snooping",
            benchmark: Benchmark::Raytrace,
            signature: SignatureKind::paper_bs_2kb(),
            configure: |b| b.coherence(CoherenceKind::SnoopingMesi),
        },
        ObsCase {
            experiment: "policies",
            benchmark: Benchmark::Mp3d,
            signature: SignatureKind::paper_bs_2kb(),
            configure: |b| b.contention(ContentionPolicy::SizeMatters),
        },
        ObsCase {
            experiment: "multicmp",
            benchmark: Benchmark::BerkeleyDb,
            signature: SignatureKind::paper_bs_2kb(),
            configure: |b| b.chips(2),
        },
        ObsCase {
            experiment: "nesting",
            benchmark: Benchmark::Cholesky,
            signature: SignatureKind::paper_bs_2kb(),
            configure: ident,
        },
        ObsCase {
            experiment: "smt",
            benchmark: Benchmark::Radiosity,
            signature: SignatureKind::paper_bs_2kb(),
            configure: ident,
        },
    ]
}

fn run_case(case: &ObsCase, scale: &ExperimentScale, seed: u64) -> Result<RunReport, String> {
    let builder = SystemBuilder::paper_default()
        .signature(case.signature)
        .seed(seed)
        .warmup_units(scale.warmup_units)
        .observe(true);
    let mut system = (case.configure)(builder).build();
    for program in case
        .benchmark
        .programs(SyncMode::Tm, scale.threads, scale.units_per_thread)
    {
        system.add_thread(program);
    }
    system
        .run()
        .map_err(|e| format!("{}/{}: {e:?}", case.experiment, case.benchmark))
}

// ---------------------------------------------------------------------
// Hand-rolled JSON (the workspace deliberately has no serde dependency).
// All keys and enum-derived strings are quote-free ASCII, so plain
// formatting is safe.
// ---------------------------------------------------------------------

fn push_kv(out: &mut String, key: &str, value: u64, trailing: bool) {
    out.push_str(&format!("\"{key}\":{value}"));
    if trailing {
        out.push(',');
    }
}

fn obs_json(o: &ObsReport) -> String {
    let mut s = String::new();
    s.push('{');
    s.push_str("\"stalls\":{");
    push_kv(&mut s, "coherence_nack", o.stalls_coherence, true);
    push_kv(&mut s, "sibling_nack", o.stalls_sibling, true);
    push_kv(&mut s, "summary_conflict", o.stalls_summary, false);
    s.push_str("},\"aborts\":{");
    push_kv(&mut s, "conflict_resolution", o.aborts_conflict, true);
    push_kv(&mut s, "summary_stall_limit", o.aborts_summary_limit, true);
    push_kv(&mut s, "sticky_overflow", o.aborts_sticky_overflow, true);
    push_kv(&mut s, "parked_by_summary_handler", o.aborts_parked, false);
    s.push_str("},\"nacks\":{");
    push_kv(&mut s, "in_cache", o.nacks_in_cache, true);
    push_kv(&mut s, "sticky", o.nacks_sticky, true);
    push_kv(&mut s, "judged_true", o.nacks_judged_true, true);
    push_kv(&mut s, "judged_false", o.nacks_judged_false, true);
    push_kv(&mut s, "unjudged", o.metrics.get("nacks_unjudged"), false);
    s.push_str("},\"cycles\":{");
    let c = o.cycles_total();
    push_kv(&mut s, "useful", c.useful, true);
    push_kv(&mut s, "stalled", c.stalled, true);
    push_kv(&mut s, "aborted", c.aborted, true);
    push_kv(&mut s, "log_walk", c.log_walk, false);
    s.push_str("},\"spans\":{");
    push_kv(&mut s, "committed", o.spans_committed, true);
    push_kv(&mut s, "aborted", o.spans_aborted, true);
    push_kv(&mut s, "dropped", o.spans_dropped, true);
    push_kv(&mut s, "retained", o.spans.len() as u64, false);
    s.push_str("},\"metrics\":{");
    let mut first = true;
    for (name, value) in o.metrics.iter() {
        if !first {
            s.push(',');
        }
        first = false;
        s.push_str(&format!("\"{name}\":{value}"));
    }
    s.push_str("},\"nack_pairs\":[");
    for (i, &(nacker, requester, count)) in o.nack_pairs.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("[{nacker},{requester},{count}]"));
    }
    s.push_str("]}");
    s
}

fn row_json(case: &ObsCase, seed: u64, r: &RunReport) -> String {
    let o = r.obs.as_ref().expect("stats-json runs enable observe");
    let mut s = String::new();
    s.push_str(&format!(
        "{{\"experiment\":\"{}\",\"benchmark\":\"{}\",\"signature\":\"{}\",\"seed\":{seed},",
        case.experiment, case.benchmark, case.signature
    ));
    s.push_str(&format!(
        "\"cycles\":{},\"measured_cycles\":{},",
        r.cycles.as_u64(),
        r.measured_cycles.as_u64()
    ));
    s.push_str("\"tm\":{");
    push_kv(&mut s, "commits", r.tm.commits, true);
    push_kv(&mut s, "aborts", r.tm.aborts, true);
    push_kv(&mut s, "partial_aborts", r.tm.partial_aborts, true);
    push_kv(&mut s, "stalls", r.tm.stalls, true);
    push_kv(&mut s, "sibling_stalls", r.tm.sibling_stalls, true);
    push_kv(&mut s, "wasted_cycles", r.tm.wasted_cycles, true);
    push_kv(&mut s, "work_units", r.tm.work_units, false);
    s.push_str("},\"obs\":");
    s.push_str(&obs_json(o));
    let recon = [
        ("stalls", o.stall_total() == r.tm.stalls),
        ("sibling_stalls", o.stalls_sibling == r.tm.sibling_stalls),
        ("aborts", o.abort_total() == r.tm.aborts),
        (
            "partial_aborts",
            o.metrics.get("partial_aborts") == r.tm.partial_aborts,
        ),
        ("spans", o.spans_committed == r.tm.commits),
    ];
    s.push_str(",\"reconciled\":{");
    for (i, (name, ok)) in recon.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("\"{name}\":{ok}"));
    }
    s.push_str("}}");
    s
}

/// One `oltp_slo` row: commit-latency percentiles and goodput for a
/// skew/mix point on the simulator. Every value is cycle-denominated or an
/// integer count, so the section is byte-deterministic like the rest of
/// the document.
fn oltp_slo_row_json(
    point: &str,
    theta_permille: u32,
    read_pct: u8,
    out: &OltpOutcome,
) -> String {
    let cycles = out.report.sim_cycles.unwrap_or(0);
    let goodput = if cycles > 0 {
        out.committed_txs as f64 * 1e6 / cycles as f64
    } else {
        0.0
    };
    let mut s = String::new();
    s.push_str(&format!(
        "{{\"point\":\"{point}\",\"backend\":\"sim\",\"theta_permille\":{theta_permille},\"read_pct\":{read_pct},"
    ));
    push_kv(&mut s, "committed", out.committed_txs, true);
    push_kv(&mut s, "aborts", out.report.aborts, true);
    push_kv(&mut s, "cycles", cycles, true);
    s.push_str("\"latency_cycles\":{");
    push_kv(&mut s, "p50", out.latency_permille(500).unwrap_or(0), true);
    push_kv(&mut s, "p99", out.latency_permille(990).unwrap_or(0), true);
    push_kv(&mut s, "p999", out.latency_permille(999).unwrap_or(0), false);
    s.push_str(&format!(
        "}},\"goodput_tx_per_mcycle\":{goodput:.3},\"kv_fingerprint\":\"{:016x}\"}}",
        out.kv_fingerprint
    ));
    s
}

/// Runs one observability-enabled simulation per experiment and renders the
/// full document, including the `oltp_slo` latency/goodput rows. Errors
/// name the failing case.
pub fn stats_json(scale: &ExperimentScale) -> Result<String, String> {
    let seed = seed_sequence(scale.base_seed, 1)[0];
    let mut out = String::new();
    out.push_str(&format!(
        "{{\n\"schema\":\"{STATS_SCHEMA}\",\n\"threads\":{},\n\"units_per_thread\":{},\n\"warmup_units\":{},\n\"experiments\":[\n",
        scale.threads, scale.units_per_thread, scale.warmup_units
    ));
    let cases = cases();
    for (i, case) in cases.iter().enumerate() {
        let report = run_case(case, scale, seed)?;
        out.push_str(&row_json(case, seed, &report));
        if i + 1 < cases.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("],\n\"oltp_slo\":[\n");
    for (i, (point, theta_permille, read_pct)) in OLTP_POINTS.into_iter().enumerate() {
        let cfg = oltp_config(scale, theta_permille, read_pct);
        let o = run_oltp(BackendKind::Sim, &cfg, false).map_err(|e| format!("oltp/{point}: {e}"))?;
        out.push_str(&oltp_slo_row_json(point, theta_permille, read_pct, &o));
        if i + 1 < OLTP_POINTS.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n}\n");
    Ok(out)
}

/// The `--backend stm --stats-json` document: per-cause STM abort counters
/// mapped onto the obs layer, with a `reconciled` block proving the causes
/// sum back to the aggregates. Wall-clock execution on real threads means
/// the *counter values* vary run to run; the reconciliation invariants must
/// hold on every run.
pub fn stats_json_stm(scale: &ExperimentScale) -> Result<String, String> {
    let seed = seed_sequence(scale.base_seed, 1)[0];
    let mut out = String::new();
    out.push_str(&format!(
        "{{\n\"schema\":\"{STATS_SCHEMA}\",\n\"backend\":\"stm\",\n\"threads\":{},\n\"units_per_thread\":{},\n\"experiments\":[\n",
        scale.threads, scale.units_per_thread
    ));
    let benchmarks = [Benchmark::BerkeleyDb, Benchmark::Raytrace, Benchmark::Mp3d];
    for (i, benchmark) in benchmarks.into_iter().enumerate() {
        let mut system = StmBuilder::new().seed(seed).build();
        for program in benchmark.programs(SyncMode::Tm, scale.threads, scale.units_per_thread) {
            system.add_thread(program);
        }
        TmBackend::run_backend(&mut system).map_err(|e| format!("stm/{benchmark}: {e}"))?;
        let r = *system.report().expect("finished run has a report");
        let obs = system.obs_report().expect("finished run has an obs view");
        let mut s = String::new();
        s.push_str(&format!("{{\"benchmark\":\"{benchmark}\",\"stm\":{{"));
        push_kv(&mut s, "commits", r.commits, true);
        push_kv(&mut s, "aborts", r.aborts, true);
        push_kv(&mut s, "aborts_locked", r.aborts_locked, true);
        push_kv(&mut s, "aborts_stale", r.aborts_stale, true);
        push_kv(&mut s, "serial_commits", r.serial_commits, true);
        push_kv(&mut s, "serial_fallbacks", r.serial_fallbacks, true);
        push_kv(&mut s, "mini_commits", r.mini_commits, true);
        push_kv(&mut s, "mini_aborts", r.mini_aborts, true);
        push_kv(&mut s, "work_units", r.work_units, false);
        s.push_str("},\"obs\":");
        s.push_str(&obs_json(&obs));
        let recon = [
            ("aborts", obs.abort_total() == r.aborts),
            ("abort_causes", r.aborts_locked + r.aborts_stale == r.aborts),
            ("spans", obs.spans_committed == r.commits),
            (
                "cause_metrics",
                obs.metrics.get("stm_aborts_locked") == r.aborts_locked
                    && obs.metrics.get("stm_aborts_stale") == r.aborts_stale
                    && obs.metrics.get("stm_serial_fallbacks") == r.serial_fallbacks,
            ),
        ];
        s.push_str(",\"reconciled\":{");
        for (j, (name, ok)) in recon.iter().enumerate() {
            if j > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{name}\":{ok}"));
        }
        s.push_str("}}");
        out.push_str(&s);
        if i + 1 < benchmarks.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n}\n");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scale() -> ExperimentScale {
        ExperimentScale {
            threads: 4,
            units_per_thread: 2,
            seeds: 1,
            base_seed: 0xC0FFEE,
            warmup_units: 2,
        }
    }

    #[test]
    fn document_is_schema_tagged_and_reconciled() {
        let doc = stats_json(&tiny_scale()).expect("all cases run");
        assert!(doc.contains(&format!("\"schema\":\"{STATS_SCHEMA}\"")));
        for case in cases() {
            assert!(
                doc.contains(&format!("\"experiment\":\"{}\"", case.experiment)),
                "{} row missing",
                case.experiment
            );
        }
        assert!(
            !doc.contains("false}") && !doc.contains("false,"),
            "some reconciliation check failed:\n{doc}"
        );
    }

    #[test]
    fn document_is_deterministic() {
        let scale = tiny_scale();
        assert_eq!(stats_json(&scale), stats_json(&scale));
    }

    #[test]
    fn covers_all_13_sweep_experiments() {
        assert_eq!(cases().len(), 13);
    }

    #[test]
    fn document_has_oltp_slo_rows() {
        let doc = stats_json(&tiny_scale()).expect("all cases run");
        assert!(doc.contains("\"oltp_slo\":["));
        for (point, _, _) in OLTP_POINTS {
            assert!(
                doc.contains(&format!("\"point\":\"{point}\"")),
                "{point} SLO row missing"
            );
        }
        assert!(doc.contains("\"p999\":"), "p999 column missing");
        assert!(doc.contains("\"goodput_tx_per_mcycle\":"));
    }

    #[test]
    fn stm_document_reconciles_per_cause_aborts() {
        let doc = stats_json_stm(&tiny_scale()).expect("stm cases run");
        assert!(doc.contains(&format!("\"schema\":\"{STATS_SCHEMA}\"")));
        assert!(doc.contains("\"backend\":\"stm\""));
        assert!(doc.contains("\"aborts_locked\":"));
        assert!(doc.contains("\"stm_serial_fallbacks\":"));
        assert!(
            !doc.contains("false}") && !doc.contains("false,"),
            "an stm reconciliation check failed:\n{doc}"
        );
    }
}
