//! End-to-end tests of the persistent run cache: warm sweeps are served
//! from disk and render byte-identically, any input change invalidates the
//! fingerprint, and damaged cache entries silently fall back to recompute.
//!
//! The cache (and the timing registry it reports through) is process-global
//! state, so every test that enables it serializes on [`GUARD`] and
//! disables the cache before releasing it.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use ltse_bench::cache::{disable_cache, fp_params, run_fp, set_cache_dir};
use ltse_bench::experiments::ExperimentScale;
use ltse_bench::render;
use ltse_bench::runner::{self, sweep_ok};
use ltse_bench::table2;
use ltse_sim::cache::Fingerprint;
use ltse_sim::parallel::RunSpec;
use ltse_sig::SignatureKind;
use ltse_workloads::{Benchmark, RunParams, SyncMode};

static GUARD: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    let g = GUARD.lock().unwrap_or_else(|e| e.into_inner());
    runner::take_timings(); // the registry is global too: start clean
    g
}

fn tmp_cache(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ltse-cache-itest-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Counts how many cache-traffic events the most recent sweeps recorded.
fn drain_counts() -> (u64, u64, u64) {
    let mut hits = 0;
    let mut misses = 0;
    let mut stale = 0;
    for t in runner::take_timings() {
        hits += t.cache.hits;
        misses += t.cache.misses;
        stale += t.cache.stale;
    }
    (hits, misses, stale)
}

/// A keyed sweep whose jobs bump `ran` on every real execution, so tests
/// can tell a recompute from a cache hit regardless of timing.
fn counting_sweep(keys: &[Fingerprint], ran: &'static AtomicUsize) -> Vec<u64> {
    let specs = keys
        .iter()
        .enumerate()
        .map(|(i, &fp)| {
            RunSpec::new(format!("count/{i}"), move || {
                ran.fetch_add(1, Ordering::Relaxed);
                (i as u64) * 31 + 7
            })
            .keyed(fp)
        })
        .collect();
    sweep_ok("cache_itest", specs).expect("no panics")
}

#[test]
fn warm_sweep_is_served_from_cache_and_renders_identically() {
    let _g = lock();
    let dir = tmp_cache("warm");
    set_cache_dir(&dir).expect("open cache dir");
    let scale = ExperimentScale::quick();

    let cold = table2(&scale).expect("cold table2");
    let (hits, misses, _) = drain_counts();
    assert_eq!(hits, 0, "a fresh cache directory cannot hit");
    assert_eq!(misses as usize, cold.len());

    let warm = table2(&scale).expect("warm table2");
    let (hits, misses, stale) = drain_counts();
    assert_eq!((misses, stale), (0, 0), "warm run must not recompute");
    assert_eq!(hits as usize, warm.len());
    assert_eq!(
        render::render_table2(&cold),
        render::render_table2(&warm),
        "cached rows must render byte-identically"
    );

    disable_cache();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn any_input_change_forces_a_recompute() {
    let _g = lock();
    static RAN: AtomicUsize = AtomicUsize::new(0);
    let dir = tmp_cache("invalidate");
    set_cache_dir(&dir).expect("open cache dir");

    let params = |seed: u64, small: bool| {
        let mut p = RunParams::paper(
            Benchmark::Mp3d,
            SyncMode::Tm,
            SignatureKind::paper_bs_2kb(),
        );
        p.seed = seed;
        p.small_machine = small;
        p
    };
    let keys = |seed, small| vec![fp_params("itest", &params(seed, small))];

    let base = counting_sweep(&keys(1, false), &RAN);
    assert_eq!(RAN.load(Ordering::Relaxed), 1);
    // Same inputs: a hit, and the identical value back.
    assert_eq!(counting_sweep(&keys(1, false), &RAN), base);
    assert_eq!(RAN.load(Ordering::Relaxed), 1, "unchanged inputs must hit");
    // A different seed, a different config field, a different experiment
    // name: each changes the fingerprint and forces a real run.
    counting_sweep(&keys(2, false), &RAN);
    assert_eq!(RAN.load(Ordering::Relaxed), 2, "seed must invalidate");
    counting_sweep(&keys(1, true), &RAN);
    assert_eq!(RAN.load(Ordering::Relaxed), 3, "config field must invalidate");
    counting_sweep(&[fp_params("itest-b", &params(1, false))], &RAN);
    assert_eq!(RAN.load(Ordering::Relaxed), 4, "experiment name must invalidate");
    drain_counts();

    disable_cache();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn damaged_cache_entries_recompute_without_error() {
    let _g = lock();
    static RAN: AtomicUsize = AtomicUsize::new(0);
    let dir = tmp_cache("damage");
    set_cache_dir(&dir).expect("open cache dir");

    let keys: Vec<Fingerprint> = (0..3u64)
        .map(|i| run_fp("itest-damage").feed(&i).finish())
        .collect();
    let base = counting_sweep(&keys, &RAN);
    assert_eq!(RAN.load(Ordering::Relaxed), 3);
    drain_counts();

    // Damage all three stored entries, each differently: truncate one,
    // overwrite one with garbage, and flip the container version of the
    // third (a simulated on-disk schema bump).
    let mut files: Vec<PathBuf> = walk_runs(&dir);
    files.sort();
    assert_eq!(files.len(), 3, "every run must have been stored");
    let bytes = std::fs::read(&files[0]).unwrap();
    std::fs::write(&files[0], &bytes[..bytes.len() / 2]).unwrap();
    std::fs::write(&files[1], b"not a cache entry at all").unwrap();
    let mut bytes = std::fs::read(&files[2]).unwrap();
    bytes[8] ^= 0xFF; // the format-version word follows the 8-byte magic
    std::fs::write(&files[2], bytes).unwrap();

    let again = counting_sweep(&keys, &RAN);
    assert_eq!(again, base, "recomputed values must match the originals");
    assert_eq!(RAN.load(Ordering::Relaxed), 6, "every damaged entry must recompute");
    let (hits, _, stale) = drain_counts();
    assert_eq!(hits, 0);
    assert_eq!(stale, 3, "damage must be reported as stale, not as an error");

    // The recompute repaired the store: a third sweep is all hits.
    assert_eq!(counting_sweep(&keys, &RAN), base);
    assert_eq!(RAN.load(Ordering::Relaxed), 6);

    disable_cache();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Fingerprint separation needs no cache directory at all — it is a pure
/// function of schema tag, experiment name, and every `RunParams` field.
#[test]
fn fingerprints_separate_seeds_fields_and_experiments() {
    let base = RunParams::paper(
        Benchmark::Raytrace,
        SyncMode::Tm,
        SignatureKind::paper_bs_2kb(),
    );
    let fp = |p: &RunParams| fp_params("sep", p);
    let mut seen = vec![fp(&base)];
    let mut check = |p: RunParams, what: &str| {
        let f = fp(&p);
        assert!(!seen.contains(&f), "{what} did not change the fingerprint");
        seen.push(f);
    };
    check(RunParams { seed: base.seed + 1, ..base }, "seed");
    check(RunParams { threads: base.threads + 1, ..base }, "threads");
    check(RunParams { sticky: !base.sticky, ..base }, "sticky");
    check(RunParams { mode: SyncMode::Lock, ..base }, "sync mode");
    check(
        RunParams { signature: SignatureKind::Perfect, ..base },
        "signature kind",
    );
    assert_ne!(fp_params("sep", &base), fp_params("sep2", &base), "experiment name");
}

/// GC regression: with identical mtimes on every entry the eviction order
/// must still be deterministic (filename is the secondary sort key), so
/// repeated GC passes over equal stores always keep the same survivors.
#[test]
fn gc_tie_break_on_equal_mtimes_is_deterministic() {
    use ltse_sim::cache::{FpHasher, Lookup, RunCache};
    let _g = lock();
    let payload = vec![0xABu8; 64];
    let fps: Vec<Fingerprint> = (0..8u64)
        .map(|i| FpHasher::new("gc-tie").feed(&i).finish())
        .collect();

    let survivors = |tag: &str| -> Vec<usize> {
        let dir = tmp_cache(tag);
        let cache = RunCache::open(&dir).expect("open").with_max_bytes(400);
        for &fp in &fps {
            cache.store(fp, &payload);
        }
        // Force every entry onto the same mtime: the tie-break must decide.
        let stamp = std::time::SystemTime::UNIX_EPOCH + std::time::Duration::from_secs(1_000_000);
        for f in walk_runs(&dir) {
            std::fs::File::options()
                .write(true)
                .open(&f)
                .unwrap()
                .set_modified(stamp)
                .unwrap();
        }
        let stats = cache.gc();
        assert!(stats.evicted > 0, "8×104 bytes over a 400-byte bound must evict");
        let live: Vec<usize> = (0..fps.len())
            .filter(|&i| matches!(cache.load(fps[i]), Lookup::Hit(_)))
            .collect();
        let _ = std::fs::remove_dir_all(&dir);
        live
    };

    let a = survivors("tie-a");
    let b = survivors("tie-b");
    assert!(!a.is_empty(), "the bound fits at least one entry");
    assert_eq!(a, b, "equal-mtime eviction must be deterministic");
}

/// GC regression: zero-length (damaged or mid-write) entries must count
/// toward the size bound and be evictable — before the fix they subtracted
/// nothing from the live total, so GC could loop over them forever without
/// ever fitting the bound.
#[test]
fn gc_charges_and_evicts_zero_length_entries() {
    use ltse_sim::cache::{FpHasher, RunCache};
    let _g = lock();
    let dir = tmp_cache("gc-zero");
    let cache = RunCache::open(&dir).expect("open").with_max_bytes(100);
    for i in 0..8u64 {
        cache.store(FpHasher::new("gc-zero").feed(&i).finish(), &[0u8; 8]);
    }
    // Truncate every entry to zero bytes: naive accounting would report the
    // store as empty and never evict anything.
    for f in walk_runs(&dir) {
        std::fs::write(&f, b"").unwrap();
    }
    let stats = cache.gc();
    assert_eq!(stats.entries, 8);
    assert!(
        stats.bytes_before >= 8 * 40,
        "each zero-length entry must be charged at least its header size, got {}",
        stats.bytes_before
    );
    assert!(stats.evicted > 0, "zero-length entries must be evictable");
    let remaining = walk_runs(&dir).len() as u64;
    assert!(
        remaining * 40 <= 100,
        "GC must actually reach the size bound ({remaining} entries left)"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// `[timing]` cache-traffic invariant: every keyed run resolves to exactly
/// one of hit/miss/stale, so per-sweep `hit + miss + stale == runs` — on a
/// cold sweep, a warm re-entered sweep, and a sweep over damaged entries
/// alike. A double-counted hit (or a miss counted alongside a stale
/// recompute) breaks this immediately.
#[test]
fn cache_traffic_counts_sum_to_total_runs() {
    let _g = lock();
    static RAN: AtomicUsize = AtomicUsize::new(0);
    let dir = tmp_cache("traffic");
    set_cache_dir(&dir).expect("open cache dir");

    let keys: Vec<Fingerprint> = (0..5u64)
        .map(|i| run_fp("itest-traffic").feed(&i).finish())
        .collect();
    let assert_balanced = |phase: &str| {
        let timings = runner::take_timings();
        assert!(!timings.is_empty(), "{phase}: sweep must record a timing");
        for t in &timings {
            assert_eq!(
                t.cache.hits + t.cache.misses + t.cache.stale,
                t.runs as u64,
                "{phase}: hit+miss+stale must equal total runs, got {:?} for {} runs",
                t.cache,
                t.runs
            );
        }
    };

    counting_sweep(&keys, &RAN); // cold: all misses
    assert_balanced("cold");
    counting_sweep(&keys, &RAN); // warm: all hits
    assert_balanced("warm");
    // Re-entered sweep with one damaged entry: 4 hits + 1 stale.
    let mut files = walk_runs(&dir);
    files.sort();
    std::fs::write(&files[0], b"damaged").unwrap();
    counting_sweep(&keys, &RAN);
    assert_balanced("damaged");

    disable_cache();
    let _ = std::fs::remove_dir_all(&dir);
}

fn walk_runs(dir: &std::path::Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    for sub in std::fs::read_dir(dir).unwrap().flatten() {
        if !sub.path().is_dir() {
            continue;
        }
        for f in std::fs::read_dir(sub.path()).unwrap().flatten() {
            if f.path().extension().is_some_and(|e| e == "run") {
                out.push(f.path());
            }
        }
    }
    out
}
