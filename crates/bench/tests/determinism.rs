//! The tentpole guarantees, tested end to end at the experiment level:
//!
//! 1. **Determinism**: an experiment's rendered output is byte-identical
//!    whether its sweep ran on 1 worker or 4.
//! 2. **Panic isolation**: one diverging run surfaces as a labelled
//!    failure; every other run of the sweep still completes.

use std::sync::Mutex;

use ltse_bench::experiments::ExperimentScale;
use ltse_bench::runner::{self, sweep, sweep_ok};
use ltse_bench::{figure4, render, table3};
use ltse_sim::parallel::RunSpec;

/// `runner::set_jobs` is process-global, so tests that change it must not
/// interleave.
static JOBS_GUARD: Mutex<()> = Mutex::new(());

fn tiny() -> ExperimentScale {
    ExperimentScale {
        threads: 4,
        units_per_thread: 2,
        seeds: 2,
        base_seed: 11,
        warmup_units: 0,
    }
}

#[test]
fn figure4_is_byte_identical_across_worker_counts() {
    let _guard = JOBS_GUARD.lock().unwrap();
    let scale = tiny();

    runner::set_jobs(Some(1));
    let serial = render::render_figure4(&figure4(&scale).expect("1-worker sweep"));

    runner::set_jobs(Some(4));
    let parallel = render::render_figure4(&figure4(&scale).expect("4-worker sweep"));

    runner::set_jobs(None);
    assert!(!serial.is_empty());
    assert_eq!(serial, parallel, "worker count leaked into the results");
}

#[test]
fn table3_rows_are_identical_across_worker_counts() {
    let _guard = JOBS_GUARD.lock().unwrap();
    let scale = tiny();

    runner::set_jobs(Some(1));
    let one = table3(&scale).expect("1-worker sweep");
    runner::set_jobs(Some(3));
    let three = table3(&scale).expect("3-worker sweep");
    runner::set_jobs(None);

    assert_eq!(one.len(), three.len());
    for (a, b) in one.iter().zip(&three) {
        assert_eq!(a.benchmark, b.benchmark);
        assert_eq!(a.signature, b.signature);
        assert_eq!(a.transactions, b.transactions);
        assert_eq!(a.aborts, b.aborts);
        assert_eq!(a.stalls, b.stalls);
        assert_eq!(a.false_positive_pct, b.false_positive_pct);
    }
}

#[test]
fn a_panicking_run_fails_its_sweep_without_killing_the_others() {
    let _guard = JOBS_GUARD.lock().unwrap();
    runner::set_jobs(Some(4));

    let mut specs: Vec<RunSpec<Result<u64, logtm_se::RunError>>> = (0..6u64)
        .map(|i| RunSpec::new(format!("stable/{i}"), move || Ok(i)))
        .collect();
    specs.insert(
        2,
        RunSpec::new("diverging-config", || {
            panic!("simulated livelock at cycle 5000000")
        }),
    );
    let err = sweep("panic_isolation_test", specs).unwrap_err();
    runner::set_jobs(None);

    // Exactly the diverging run failed, by name, with its panic message.
    assert_eq!(err.runs, 7);
    assert_eq!(err.failures.len(), 1);
    assert_eq!(err.failures[0].label, "diverging-config");
    assert!(err.failures[0].reason.contains("simulated livelock"));
    runner::take_timings();
}

#[test]
fn sweep_ok_returns_surviving_rows_alongside_a_panic() {
    let _guard = JOBS_GUARD.lock().unwrap();
    runner::set_jobs(Some(2));

    // sweep_ok only fails on panics; the non-panicking rows all complete
    // even while a sibling run dies.
    let mut specs: Vec<RunSpec<u64>> =
        (0..5u64).map(|i| RunSpec::new(format!("ok/{i}"), move || i * i)).collect();
    specs.push(RunSpec::new("boom", || panic!("kaboom")));
    let err = sweep_ok("panic_isolation_ok_test", specs).unwrap_err();
    runner::set_jobs(None);

    assert_eq!(err.failures.len(), 1);
    assert_eq!(err.failures[0].label, "boom");
    runner::take_timings();
}
