//! Criterion bench: one sample per Figure 4 cell (benchmark × sync/signature
//! configuration). Criterion's timings measure the *simulator*; the
//! simulated speedups are what `repro figure4` prints — this bench keeps
//! every cell exercised and regression-tracked.

use criterion::{criterion_group, criterion_main, Criterion};
use logtm_se::{CoherenceKind, SignatureKind};
use ltse_workloads::{run_benchmark, Benchmark, RunParams, SyncMode};

fn bench_figure4(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure4");
    group.sample_size(10);
    for benchmark in Benchmark::all() {
        // Lock baseline bar.
        group.bench_function(format!("{benchmark}/lock"), |b| {
            b.iter(|| {
                run_benchmark(&RunParams {
                    benchmark,
                    mode: SyncMode::Lock,
                    signature: SignatureKind::Perfect,
                    threads: 8,
                    units_per_thread: 4,
                    seed: 1,
                    small_machine: false,
                    sticky: true,
                    log_filter_entries: 16,
                    coherence: CoherenceKind::DirectoryMesi,
                    warmup_units: 0,
                })
                .expect("run")
            })
        });
        for kind in SignatureKind::figure4_set() {
            group.bench_function(format!("{benchmark}/tm/{}", kind.label()), |b| {
                b.iter(|| {
                    run_benchmark(&RunParams {
                        benchmark,
                        mode: SyncMode::Tm,
                        signature: kind,
                        threads: 8,
                        units_per_thread: 4,
                        seed: 1,
                        small_machine: false,
                        sticky: true,
                        log_filter_entries: 16,
                        coherence: CoherenceKind::DirectoryMesi,
                        warmup_units: 0,
                    })
                    .expect("run")
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_figure4);
criterion_main!(benches);
