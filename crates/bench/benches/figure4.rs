//! Timing bench: one case per Figure 4 cell (benchmark × sync/signature
//! configuration). The wall-clock timings measure the *simulator*; the
//! simulated speedups are what `repro figure4` prints — this bench keeps
//! every cell exercised and regression-tracked.

use logtm_se::{CoherenceKind, SignatureKind};
use ltse_bench::harness::BenchGroup;
use ltse_workloads::{run_benchmark, Benchmark, RunParams, SyncMode};

fn cell_params(benchmark: Benchmark, mode: SyncMode, signature: SignatureKind) -> RunParams {
    RunParams {
        benchmark,
        mode,
        signature,
        threads: 8,
        units_per_thread: 4,
        seed: 1,
        small_machine: false,
        sticky: true,
        log_filter_entries: 16,
        coherence: CoherenceKind::DirectoryMesi,
        warmup_units: 0,
    }
}

fn main() {
    let group = BenchGroup::new("figure4", 10);
    for benchmark in Benchmark::all() {
        // Lock baseline bar.
        let p = cell_params(benchmark, SyncMode::Lock, SignatureKind::Perfect);
        group.case(&format!("{benchmark}/lock"), || {
            run_benchmark(&p).expect("run")
        });
        for kind in SignatureKind::figure4_set() {
            let p = cell_params(benchmark, SyncMode::Tm, kind);
            group.case(&format!("{benchmark}/tm/{}", kind.label()), || {
                run_benchmark(&p).expect("run")
            });
        }
    }
}
