//! Open-loop OLTP throughput/latency bench, with machine-readable output.
//!
//! Two sections:
//!
//! 1. **points** — the three canonical skew/mix points ([`OLTP_POINTS`])
//!    run on both backends, reporting p50/p99/p999 commit latency and
//!    goodput per row, with the final-KV-state fingerprint cross-checked
//!    between engines per point (commutative writes must converge).
//! 2. **mtx** — the million-transaction acceptance run: one sim run
//!    committing 1,000,000 transactions (64 threads × 15,625) with an RSS
//!    bound asserting memory does not grow with transaction count (the
//!    driver streams transactions from per-tx seeds; nothing is
//!    materialized), then the *same workload* on the STM backend with the
//!    fingerprint equality check.
//!
//! Output matches the other bench targets: human lines on stderr, one JSON
//! document on stdout or to `LTSE_BENCH_JSON` (what `scripts/bench.sh`
//! stores as `BENCH_oltp.json`).
//!
//! Environment: `LTSE_BENCH_QUICK=1` (small runs: 20k transactions in the
//! mtx section, structure unchanged).

use ltse_bench::experiments::OLTP_POINTS;
use ltse_workloads::{run_oltp, BackendKind, OltpConfig, OltpOutcome};

fn quick() -> bool {
    std::env::var("LTSE_BENCH_QUICK").is_ok_and(|v| v == "1")
}

/// Resident-set size of this process in KiB, from `/proc/self/status`
/// (Linux-only; `None` elsewhere, which downgrades the bound to a note).
fn rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

fn point_cfg(theta_permille: u32, read_pct: u8, quick: bool) -> OltpConfig {
    OltpConfig {
        threads: if quick { 8 } else { 16 },
        txs_per_thread: if quick { 200 } else { 1000 },
        keys: 4096,
        theta: theta_permille as f64 / 1000.0,
        read_pct,
        ops_min: 2,
        ops_max: 8,
        mean_gap: 200,
        seed: 0xC0FFEE,
    }
}

fn mtx_cfg(quick: bool) -> OltpConfig {
    OltpConfig {
        // Full scale: 64 × 15,625 = exactly 1,000,000 transactions.
        threads: if quick { 8 } else { 64 },
        txs_per_thread: if quick { 2_500 } else { 15_625 },
        keys: if quick { 8_192 } else { 65_536 },
        theta: 0.8,
        read_pct: 80,
        ops_min: 2,
        ops_max: 8,
        mean_gap: 50,
        seed: 0xC0FFEE,
    }
}

struct PointRow {
    point: &'static str,
    backend: BackendKind,
    theta_permille: u32,
    read_pct: u8,
    out: OltpOutcome,
}

fn json_point(r: &PointRow, cfg: &OltpConfig) -> String {
    let (unit, per_mcycle) = match r.backend {
        BackendKind::Sim => {
            let cycles = r.out.report.sim_cycles.unwrap_or(0);
            let g = if cycles > 0 {
                format!(
                    "{:.3}",
                    r.out.committed_txs as f64 * 1e6 / cycles as f64
                )
            } else {
                "null".to_string()
            };
            ("cycles", g)
        }
        BackendKind::Stm => ("ns", "null".to_string()),
    };
    format!(
        "    {{\"point\": \"{}\", \"backend\": \"{}\", \"theta_permille\": {}, \"read_pct\": {}, \
         \"threads\": {}, \"txs\": {}, \"committed\": {}, \"aborts\": {}, \
         \"latency_unit\": \"{unit}\", \"p50\": {}, \"p99\": {}, \"p999\": {}, \
         \"goodput_tx_per_sec\": {:.1}, \"goodput_tx_per_mcycle\": {per_mcycle}, \
         \"wall_ms\": {:.3}, \"kv_fingerprint\": \"{:016x}\"}}",
        r.point,
        r.backend.name(),
        r.theta_permille,
        r.read_pct,
        cfg.threads,
        cfg.total_txs(),
        r.out.committed_txs,
        r.out.report.aborts,
        r.out.latency_permille(500).unwrap_or(0),
        r.out.latency_permille(990).unwrap_or(0),
        r.out.latency_permille(999).unwrap_or(0),
        r.out.goodput_tx_per_sec(),
        r.out.report.wall.as_secs_f64() * 1e3,
        r.out.kv_fingerprint,
    )
}

fn main() {
    let quick = quick();
    let mut rows: Vec<(PointRow, OltpConfig)> = Vec::new();

    // ---- skew/mix points on both backends -------------------------------
    for (point, theta_permille, read_pct) in OLTP_POINTS {
        let cfg = point_cfg(theta_permille, read_pct, quick);
        let mut fingerprints = Vec::new();
        for kind in [BackendKind::Sim, BackendKind::Stm] {
            let out = run_oltp(kind, &cfg, false)
                .unwrap_or_else(|e| panic!("oltp {point} on {kind}: {e}"));
            assert_eq!(
                out.committed_txs,
                cfg.total_txs(),
                "{point}/{kind}: committed shortfall"
            );
            eprintln!(
                "{:<28} committed {:>8}  aborts {:>7}  p50 {:>9}  p99 {:>9}  p999 {:>9}  {:>10.0} tx/s",
                format!("points/{point}/{kind}"),
                out.committed_txs,
                out.report.aborts,
                out.latency_permille(500).unwrap_or(0),
                out.latency_permille(990).unwrap_or(0),
                out.latency_permille(999).unwrap_or(0),
                out.goodput_tx_per_sec(),
            );
            fingerprints.push(out.kv_fingerprint);
            rows.push((
                PointRow {
                    point,
                    backend: kind,
                    theta_permille,
                    read_pct,
                    out,
                },
                cfg,
            ));
        }
        assert_eq!(
            fingerprints[0], fingerprints[1],
            "{point}: sim and stm disagree on the final KV state"
        );
    }

    // ---- the million-transaction streaming run --------------------------
    let mcfg = mtx_cfg(quick);
    // Warm up with an identically-shaped tiny run so the RSS delta of the
    // big run isolates per-transaction growth from one-time allocations
    // (system construction, cache arrays, allocator arenas).
    let warm = OltpConfig {
        txs_per_thread: 32,
        ..mcfg
    };
    run_oltp(BackendKind::Sim, &warm, false).expect("mtx warmup run");
    let rss_before = rss_kb();
    let sim = run_oltp(BackendKind::Sim, &mcfg, false).expect("mtx sim run");
    let rss_after = rss_kb();
    assert_eq!(sim.committed_txs, mcfg.total_txs(), "mtx sim shortfall");
    let growth_kb = match (rss_before, rss_after) {
        (Some(b), Some(a)) => Some(a.saturating_sub(b)),
        _ => None,
    };
    if let Some(g) = growth_kb {
        // Materializing the op stream up front would cost hundreds of MB at
        // 1M transactions; streaming keeps the delta to touched-block and
        // histogram state, far under this bound.
        assert!(
            g < 64 * 1024,
            "mtx run grew RSS by {g} KiB — streaming bound (65536 KiB) violated"
        );
    }
    eprintln!(
        "mtx/sim: committed {} in {} cycles, wall {:.1} ms, rss growth {} KiB",
        sim.committed_txs,
        sim.report.sim_cycles.unwrap_or(0),
        sim.report.wall.as_secs_f64() * 1e3,
        growth_kb.map_or("n/a".to_string(), |g| g.to_string()),
    );
    let stm = run_oltp(BackendKind::Stm, &mcfg, false).expect("mtx stm run");
    assert_eq!(stm.committed_txs, mcfg.total_txs(), "mtx stm shortfall");
    assert_eq!(
        sim.kv_fingerprint, stm.kv_fingerprint,
        "mtx: sim and stm disagree on the final KV state"
    );
    eprintln!(
        "mtx/stm: committed {} in wall {:.1} ms ({:.0} tx/s), KV state matches sim",
        stm.committed_txs,
        stm.report.wall.as_secs_f64() * 1e3,
        stm.goodput_tx_per_sec(),
    );

    // ---- JSON ----------------------------------------------------------
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"oltp\",\n");
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str("  \"points\": [\n");
    for (i, (r, cfg)) in rows.iter().enumerate() {
        json.push_str(&json_point(r, cfg));
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n  \"mtx\": {\n");
    json.push_str(&format!(
        "    \"threads\": {}, \"txs_total\": {},\n",
        mcfg.threads,
        mcfg.total_txs()
    ));
    json.push_str(&format!(
        "    \"sim\": {{\"committed\": {}, \"cycles\": {}, \"wall_ms\": {:.3}, \"p50\": {}, \"p99\": {}, \"p999\": {}, \
         \"rss_before_kb\": {}, \"rss_after_kb\": {}, \"rss_growth_kb\": {}}},\n",
        sim.committed_txs,
        sim.report.sim_cycles.unwrap_or(0),
        sim.report.wall.as_secs_f64() * 1e3,
        sim.latency_permille(500).unwrap_or(0),
        sim.latency_permille(990).unwrap_or(0),
        sim.latency_permille(999).unwrap_or(0),
        rss_before.map_or("null".to_string(), |v| v.to_string()),
        rss_after.map_or("null".to_string(), |v| v.to_string()),
        growth_kb.map_or("null".to_string(), |v| v.to_string()),
    ));
    json.push_str(&format!(
        "    \"stm\": {{\"committed\": {}, \"wall_ms\": {:.3}, \"p50\": {}, \"p99\": {}, \"p999\": {}}},\n",
        stm.committed_txs,
        stm.report.wall.as_secs_f64() * 1e3,
        stm.latency_permille(500).unwrap_or(0),
        stm.latency_permille(990).unwrap_or(0),
        stm.latency_permille(999).unwrap_or(0),
    ));
    json.push_str(&format!(
        "    \"kv_match\": {}\n  }}\n}}\n",
        sim.kv_fingerprint == stm.kv_fingerprint
    ));

    match std::env::var("LTSE_BENCH_JSON") {
        Ok(path) if !path.is_empty() => {
            std::fs::write(&path, &json).expect("write LTSE_BENCH_JSON file");
            eprintln!("wrote {path}");
        }
        _ => print!("{json}"),
    }
}
