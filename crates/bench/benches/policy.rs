//! Adaptive contention-management policy bench, with machine-readable
//! output.
//!
//! Runs the `policy_sweep` experiment — every [`ContentionPolicy`]
//! (including `Adaptive`) over contended workload points (Mp3d plus two
//! OLTP skew/mix points) on both backends — then answers the two questions
//! the adaptive manager exists to answer:
//!
//! 1. **Do the static policies trade places?** Per (point, backend) the
//!    best *static* policy is recorded; the sweep is interesting exactly
//!    when at least two distinct static policies each win somewhere.
//! 2. **Is `Adaptive` ever far from the best?** Per point, `Adaptive`'s
//!    score relative to the per-point best over all policies; the summary
//!    reports the minimum of those ratios and an `adaptive_ok` flag
//!    (min ≥ 0.95, i.e. within 5 % of the best everywhere).
//!
//! Sim rows are cycle-denominated and deterministic. STM rows are
//! wall-clock goodput from real OS threads and noisy on small hosts, so
//! they are re-run a few times and the best run is kept (best-of-N damps
//! scheduler noise without hiding systematic policy differences).
//!
//! Output matches the other bench targets: human lines on stderr, one JSON
//! document on stdout or to `LTSE_BENCH_JSON` (what `scripts/bench.sh`
//! stores as `BENCH_policy.json`).
//!
//! Environment: `LTSE_BENCH_QUICK=1` (smaller runs, structure unchanged).

use logtm_se::ContentionPolicy;
use ltse_bench::experiments::{
    policy_oltp_config, policy_sweep, ExperimentScale, PolicySweepRow, POLICY_ESCALATE_AFTER,
    POLICY_OLTP_POINTS,
};
use ltse_workloads::{run_oltp_with, BackendKind, PolicyTune};

fn quick() -> bool {
    std::env::var("LTSE_BENCH_QUICK").is_ok_and(|v| v == "1")
}

fn tune(policy: ContentionPolicy) -> PolicyTune {
    PolicyTune {
        contention: Some(policy),
        escalate_after: Some(POLICY_ESCALATE_AFTER),
        ..PolicyTune::default()
    }
}

/// Re-runs the STM leg of one OLTP row `extra` more times and keeps the
/// best wall-clock goodput (sim rows are deterministic and never re-run).
fn stm_best_of(row: &mut PolicySweepRow, scale: &ExperimentScale, extra: usize) {
    let Some((_, theta_permille, read_pct)) = POLICY_OLTP_POINTS
        .iter()
        .find(|(name, _, _)| *name == row.workload)
    else {
        return; // the Mp3d point has no STM leg
    };
    let cfg = policy_oltp_config(scale, *theta_permille, *read_pct);
    for _ in 0..extra {
        match run_oltp_with(BackendKind::Stm, &cfg, false, &tune(row.policy)) {
            Ok(out) => {
                let score = out.goodput_tx_per_sec();
                if score > row.score {
                    row.score = score;
                    row.committed = out.committed_txs;
                    row.aborts = out.report.aborts;
                    row.completed = out.committed_txs == cfg.total_txs();
                }
            }
            Err(e) => panic!("policy/{}/stm/{}: {e}", row.workload, row.policy.name()),
        }
    }
}

fn json_row(r: &PolicySweepRow) -> String {
    format!(
        "    {{\"point\": \"{}\", \"backend\": \"{}\", \"policy\": \"{}\", \"score\": {:.4}, \
         \"committed\": {}, \"aborts\": {}, \"serial_escalations\": {}, \"completed\": {}}}",
        r.workload,
        r.backend.name(),
        r.policy.name(),
        r.score,
        r.committed,
        r.aborts,
        r.serial_escalations,
        r.completed,
    )
}

fn main() {
    let quick = quick();
    let scale = if quick {
        ExperimentScale::quick()
    } else {
        ExperimentScale {
            threads: 16,
            units_per_thread: 12,
            seeds: 1,
            base_seed: 0xC0FFEE,
            warmup_units: 0,
        }
    };
    let mut rows = policy_sweep(&scale).unwrap_or_else(|e| panic!("policy sweep failed:\n{e}"));

    // Best-of-N on the wall-clock STM rows only.
    let extra = if quick { 1 } else { 2 };
    for row in rows.iter_mut().filter(|r| r.backend == BackendKind::Stm) {
        stm_best_of(row, &scale, extra);
    }

    for r in &rows {
        eprintln!(
            "{:<44} score {:>12.3}  committed {:>7}  aborts {:>7}  esc {:>5}  {}",
            format!("{}/{}/{}", r.workload, r.backend.name(), r.policy.name()),
            r.score,
            r.committed,
            r.aborts,
            r.serial_escalations,
            if r.completed { "done" } else { "INCOMPLETE" },
        );
    }

    // ---- per-point analysis --------------------------------------------
    let mut points: Vec<(&str, BackendKind)> = Vec::new();
    for r in &rows {
        if !points.contains(&(r.workload, r.backend)) {
            points.push((r.workload, r.backend));
        }
    }
    let mut point_summaries = Vec::new();
    let mut static_winners: Vec<&'static str> = Vec::new();
    let mut adaptive_min_rel = f64::INFINITY;
    for (workload, backend) in &points {
        let group: Vec<&PolicySweepRow> = rows
            .iter()
            .filter(|r| r.workload == *workload && r.backend == *backend)
            .collect();
        let best = group.iter().map(|r| r.score).fold(0.0_f64, f64::max);
        let best_static = group
            .iter()
            .filter(|r| r.policy != ContentionPolicy::Adaptive)
            .max_by(|a, b| a.score.total_cmp(&b.score))
            .expect("static rows");
        let adaptive = group
            .iter()
            .find(|r| r.policy == ContentionPolicy::Adaptive)
            .expect("adaptive row");
        let rel = if best > 0.0 { adaptive.score / best } else { 0.0 };
        adaptive_min_rel = adaptive_min_rel.min(rel);
        if !static_winners.contains(&best_static.policy.name()) {
            static_winners.push(best_static.policy.name());
        }
        eprintln!(
            "point {:<28} best_static {:<16} ({:.3})  adaptive {:.3} = {:.1}% of best",
            format!("{workload}/{}", backend.name()),
            best_static.policy.name(),
            best_static.score,
            adaptive.score,
            rel * 100.0,
        );
        point_summaries.push(format!(
            "    {{\"point\": \"{workload}\", \"backend\": \"{}\", \
             \"best_static_policy\": \"{}\", \"best_static_score\": {:.4}, \
             \"adaptive_score\": {:.4}, \"adaptive_vs_best\": {:.4}}}",
            backend.name(),
            best_static.policy.name(),
            best_static.score,
            adaptive.score,
            rel,
        ));
    }
    let adaptive_ok = adaptive_min_rel >= 0.95;
    eprintln!(
        "summary: {} distinct static winners ({}), adaptive min {:.1}% of best → adaptive_ok={}",
        static_winners.len(),
        static_winners.join(", "),
        adaptive_min_rel * 100.0,
        adaptive_ok,
    );

    // ---- JSON ----------------------------------------------------------
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"policy\",\n");
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!(
        "  \"threads\": {}, \"escalate_after\": {},\n",
        scale.threads, POLICY_ESCALATE_AFTER
    ));
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&json_row(r));
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n  \"points\": [\n");
    for (i, p) in point_summaries.iter().enumerate() {
        json.push_str(p);
        json.push_str(if i + 1 < point_summaries.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n  \"summary\": {\n");
    json.push_str(&format!(
        "    \"static_winners\": [{}],\n",
        static_winners
            .iter()
            .map(|w| format!("\"{w}\""))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    json.push_str(&format!(
        "    \"distinct_static_winners\": {},\n    \"adaptive_min_rel\": {:.4},\n    \
         \"adaptive_ok\": {}\n  }}\n}}\n",
        static_winners.len(),
        adaptive_min_rel,
        adaptive_ok,
    ));

    match std::env::var("LTSE_BENCH_JSON") {
        Ok(path) if !path.is_empty() => {
            std::fs::write(&path, &json).expect("write LTSE_BENCH_JSON file");
            eprintln!("wrote {path}");
        }
        _ => print!("{json}"),
    }
}
