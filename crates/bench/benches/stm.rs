//! Sim-vs-STM throughput bench, with machine-readable output.
//!
//! Runs the same Table-2 workloads (BerkeleyDB, Raytrace, Mp3d) through the
//! cycle-level simulator and through the real-concurrency TL2 STM backend,
//! timing the *wall clock* of each complete run. The emitted
//! `stm_vs_sim_<benchmark>` ratios read "how much faster does the STM
//! execute this program stream than the simulator simulates it" — a
//! host-speed comparison, not a claim about the modeled hardware (the
//! simulator's own currency is simulated cycles, which `repro --backend
//! stm` reports alongside).
//!
//! Output:
//!
//! * human-readable lines on **stderr**;
//! * a single JSON document on **stdout**, or to the file named by
//!   `LTSE_BENCH_JSON` if set (what `scripts/bench.sh` uses to produce
//!   `BENCH_stm.json`).
//!
//! Environment:
//!
//! * `LTSE_BENCH_QUICK=1` — CI smoke mode: tiny workloads, 2 iterations,
//!   still full JSON structure (no timing thresholds are asserted anywhere).
//! * `LTSE_BENCH_ITERS=N` — override the per-case iteration count.

use std::hint::black_box;
use std::time::Instant;

use logtm_se::{CoherenceKind, SignatureKind};
use ltse_bench::harness;
use ltse_workloads::{run_on_backend, BackendKind, Benchmark, RunParams, SyncMode};

struct CaseResult {
    group: &'static str,
    name: &'static str,
    mean_ms: f64,
    best_ms: f64,
    iters: usize,
}

fn time_case<T>(
    out: &mut Vec<CaseResult>,
    group: &'static str,
    name: &'static str,
    iters: usize,
    mut f: impl FnMut() -> T,
) {
    black_box(f()); // warmup
    let mut best = f64::INFINITY;
    let mut total = 0.0;
    for _ in 0..iters {
        let t0 = Instant::now();
        black_box(f());
        let dt = t0.elapsed().as_secs_f64();
        total += dt;
        best = best.min(dt);
    }
    let mean_ms = total / iters as f64 * 1e3;
    let best_ms = best * 1e3;
    eprintln!(
        "{:<44} mean {mean_ms:>9.3} ms   best {best_ms:>9.3} ms   ({iters} iters)",
        format!("{group}/{name}")
    );
    out.push(CaseResult {
        group,
        name,
        mean_ms,
        best_ms,
        iters,
    });
}

fn find<'a>(out: &'a [CaseResult], group: &str, name: &str) -> Option<&'a CaseResult> {
    out.iter().find(|c| c.group == group && c.name == name)
}

/// best-time ratio `baseline / optimized` (higher = optimized is faster).
fn speedup(out: &[CaseResult], group: &str, baseline: &str, optimized: &str) -> Option<f64> {
    let b = find(out, group, baseline)?;
    let o = find(out, group, optimized)?;
    (o.best_ms > 0.0).then(|| b.best_ms / o.best_ms)
}

fn bench_params(benchmark: Benchmark, quick: bool) -> RunParams {
    RunParams {
        benchmark,
        mode: SyncMode::Tm,
        signature: SignatureKind::Perfect,
        threads: 4,
        units_per_thread: if quick { 2 } else { 8 },
        seed: 0xC0FFEE,
        small_machine: false,
        sticky: true,
        log_filter_entries: 16,
        coherence: CoherenceKind::DirectoryMesi,
        warmup_units: 0,
    }
}

fn main() {
    let quick = std::env::var("LTSE_BENCH_QUICK").is_ok_and(|v| v == "1");
    let iters = harness::iters(if quick { 2 } else { 6 });
    let mut out: Vec<CaseResult> = Vec::new();

    // Three of the paper's Table-2 workloads, spanning the footprint range:
    // BerkeleyDB (large hot read/write sets), Raytrace (hot counter plus a
    // rare huge read-set), Mp3d (small scattered updates).
    let workloads = [Benchmark::BerkeleyDb, Benchmark::Raytrace, Benchmark::Mp3d];
    for benchmark in workloads {
        let p = bench_params(benchmark, quick);
        let group = benchmark.name();
        time_case(&mut out, group, "sim", iters, || {
            run_on_backend(BackendKind::Sim, &p).expect("sim run")
        });
        time_case(&mut out, group, "stm", iters, || {
            run_on_backend(BackendKind::Stm, &p).expect("stm run")
        });
    }

    // ---- JSON ----------------------------------------------------------
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"stm\",\n");
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str("  \"cases\": [\n");
    for (i, c) in out.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"group\": \"{}\", \"name\": \"{}\", \"mean_ms\": {:.6}, \"best_ms\": {:.6}, \"iters\": {}}}{}\n",
            c.group,
            c.name,
            c.mean_ms,
            c.best_ms,
            c.iters,
            if i + 1 < out.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n  \"speedups\": {\n");
    let pairs: Vec<(String, Option<f64>)> = workloads
        .iter()
        .map(|b| {
            (
                format!("stm_vs_sim_{}", b.name().to_lowercase()),
                speedup(&out, b.name(), "sim", "stm"),
            )
        })
        .collect();
    for (i, (name, s)) in pairs.iter().enumerate() {
        json.push_str(&format!(
            "    \"{name}\": {}{}\n",
            s.map_or("null".to_string(), |v| format!("{v:.3}")),
            if i + 1 < pairs.len() { "," } else { "" }
        ));
    }
    json.push_str("  }\n}\n");

    for (name, s) in &pairs {
        if let Some(s) = s {
            eprintln!("speedup {name:<32} {s:.2}x");
        }
    }

    match std::env::var("LTSE_BENCH_JSON") {
        Ok(path) if !path.is_empty() => {
            std::fs::write(&path, &json).expect("write LTSE_BENCH_JSON file");
            eprintln!("wrote {path}");
        }
        _ => print!("{json}"),
    }
}
