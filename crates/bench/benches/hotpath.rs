//! Hot-path micro-benchmarks for the PR 3 performance work, with machine-
//! readable output.
//!
//! Unlike the paper-figure benches, every optimized path here is timed
//! **against its baseline in the same run** — the boxed `dyn Signature`
//! membership test vs the enum-dispatched `SigRepr`, and a plain
//! `BinaryHeap` event queue vs the bucketed calendar `EventQueue` — so the
//! emitted JSON carries both numbers and the speedup is comparable across
//! machines and PRs.
//!
//! Output:
//!
//! * human-readable lines on **stderr**;
//! * a single JSON document on **stdout**, or to the file named by
//!   `LTSE_BENCH_JSON` if set (what `scripts/bench.sh` uses to produce
//!   `BENCH_hotpath.json`).
//!
//! Environment:
//!
//! * `LTSE_BENCH_QUICK=1` — CI smoke mode: tiny workloads, 2 iterations,
//!   still full JSON structure (no timing thresholds are asserted anywhere).
//! * `LTSE_BENCH_ITERS=N` — override the per-case iteration count.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::hint::black_box;
use std::time::Instant;

use logtm_se::{SignatureKind, SystemBuilder, WordAddr};
use ltse_bench::harness;
use ltse_sig::{Signature, SigRepr};
use ltse_sim::rng::mix64;
use ltse_sim::{Cycle, EventQueue};
use ltse_workloads::{CsProgram, SharedCounter, SyncMode};

struct CaseResult {
    group: &'static str,
    name: &'static str,
    mean_ms: f64,
    best_ms: f64,
    iters: usize,
}

fn time_case<T>(
    out: &mut Vec<CaseResult>,
    group: &'static str,
    name: &'static str,
    iters: usize,
    mut f: impl FnMut() -> T,
) {
    black_box(f()); // warmup
    let mut best = f64::INFINITY;
    let mut total = 0.0;
    for _ in 0..iters {
        let t0 = Instant::now();
        black_box(f());
        let dt = t0.elapsed().as_secs_f64();
        total += dt;
        best = best.min(dt);
    }
    let mean_ms = total / iters as f64 * 1e3;
    let best_ms = best * 1e3;
    eprintln!(
        "{:<44} mean {mean_ms:>9.3} ms   best {best_ms:>9.3} ms   ({iters} iters)",
        format!("{group}/{name}")
    );
    out.push(CaseResult {
        group,
        name,
        mean_ms,
        best_ms,
        iters,
    });
}

fn mean_of<'a>(out: &'a [CaseResult], group: &str, name: &str) -> Option<&'a CaseResult> {
    out.iter().find(|c| c.group == group && c.name == name)
}

/// best-time ratio `baseline / optimized` (higher = optimized is faster).
fn speedup(out: &[CaseResult], group: &str, baseline: &str, optimized: &str) -> Option<f64> {
    let b = mean_of(out, group, baseline)?;
    let o = mean_of(out, group, optimized)?;
    (o.best_ms > 0.0).then(|| b.best_ms / o.best_ms)
}

fn main() {
    let quick = std::env::var("LTSE_BENCH_QUICK").is_ok_and(|v| v == "1");
    let iters = harness::iters(if quick { 2 } else { 30 });
    let mut out: Vec<CaseResult> = Vec::new();

    // ---- signature membership: boxed trait objects vs SigRepr -----------
    // The simulator's hot path is `check_cores_except`: one incoming
    // coherence request is checked against *every* remote context's read and
    // write signature. Mirror that shape — each probe sweeps 16 contexts'
    // pairs — so the per-check dispatch cost is what dominates, exactly as
    // it does in the real conflict-check loop.
    const CTXS: usize = 16;
    let probes: Vec<u64> = {
        let n = if quick { 4_096 } else { 65_536 };
        (0..n).map(|i| mix64(i as u64) >> 20).collect()
    };

    for (tag_boxed, tag_repr, kind) in [
        (
            "membership_boxed_bitselect",
            "membership_repr_bitselect",
            SignatureKind::paper_bs_2kb(),
        ),
        (
            "membership_boxed_bloom",
            "membership_repr_bloom",
            SignatureKind::Bloom { bits: 2048, k: 4 },
        ),
    ] {
        // Launder the kind so LLVM cannot constant-fold the variant and
        // devirtualize the boxed calls — in the simulator the kind is
        // runtime configuration, and that is the case being measured.
        let kind = black_box(kind);
        let mut boxed: Vec<(Box<dyn Signature>, Box<dyn Signature>)> = (0..CTXS)
            .map(|_| (kind.build(), kind.build()))
            .collect();
        let mut repr: Vec<(SigRepr, SigRepr)> = (0..CTXS)
            .map(|_| (SigRepr::new(&kind), SigRepr::new(&kind)))
            .collect();
        for c in 0..CTXS {
            for i in 0..64u64 {
                let a = mix64(i ^ (c as u64) << 32) >> 20;
                boxed[c].0.insert(a);
                repr[c].0.insert_block(a);
                let w = mix64(a) >> 20;
                boxed[c].1.insert(w);
                repr[c].1.insert_block(w);
            }
        }
        // An incoming GETM conflicts if the address may be in a remote
        // read- OR write-set (paper §2) — two membership tests per context.
        time_case(&mut out, "sig", tag_boxed, iters, || {
            let mut hits = 0u64;
            for &a in &probes {
                for (read, write) in &boxed {
                    hits += (read.maybe_contains(a) || write.maybe_contains(a)) as u64;
                }
            }
            hits
        });
        // The optimized sweep: resolve each context's packed filter once
        // (signatures are fixed for the duration of a check), then per
        // address hash once (`probe`) and test raw words per context.
        let pairs: Vec<(&ltse_sig::SigBits, &ltse_sig::SigBits)> = repr
            .iter()
            .map(|(r, w)| (r.filter_bits().unwrap(), w.filter_bits().unwrap()))
            .collect();
        time_case(&mut out, "sig", tag_repr, iters, || {
            let mut hits = 0u64;
            for &a in &probes {
                let p = repr[0].0.probe(a);
                for &(read, write) in &pairs {
                    hits += (p.test_bits(read) || p.test_bits(write)) as u64;
                }
            }
            hits
        });
    }

    // ---- event queue churn: reference BinaryHeap vs calendar queue ------
    // Classic hold model: keep ~1k events pending, pop one / push one with
    // mostly-small deltas (the simulator's actual scheduling profile).
    let churn_ops = if quick { 20_000 } else { 1_000_000 };
    let deltas: Vec<u64> = (0..1024)
        .map(|i| match mix64(i) % 10 {
            0..=5 => mix64(i ^ 7) % 8,        // cache-hit scale
            6..=8 => mix64(i ^ 9) % 200,      // network/memory scale
            _ => 1_000 + mix64(i ^ 11) % 4_000, // retry/backoff scale
        })
        .collect();

    time_case(&mut out, "event_queue", "churn_heap_ref", iters, || {
        let mut heap: BinaryHeap<Reverse<(u64, u64, u32)>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut now;
        for i in 0..1_000u64 {
            heap.push(Reverse((deltas[i as usize % 1024], seq, i as u32)));
            seq += 1;
        }
        let mut acc = 0u64;
        for i in 0..churn_ops {
            let Reverse((t, _, p)) = heap.pop().expect("pending");
            now = t;
            acc ^= p as u64;
            heap.push(Reverse((now + deltas[(i % 1024) as usize], seq, p)));
            seq += 1;
        }
        acc
    });
    time_case(&mut out, "event_queue", "churn_calendar", iters, || {
        let mut q: EventQueue<u32> = EventQueue::new();
        for i in 0..1_000u64 {
            q.push(Cycle(deltas[i as usize % 1024]), i as u32);
        }
        let mut acc = 0u64;
        for i in 0..churn_ops {
            let (_, p) = q.pop().expect("pending");
            acc ^= p as u64;
            q.push(Cycle(q.now().0 + deltas[(i % 1024) as usize]), p);
        }
        acc
    });

    // ---- end to end: contended-counter transactions ---------------------
    let cs_rounds = if quick { 10 } else { 60 };
    time_case(&mut out, "end_to_end", "contended_counter", iters.min(10), || {
        let mut sys = SystemBuilder::paper_default()
            .signature(SignatureKind::paper_bs_2kb())
            .seed(5)
            .build();
        for t in 0..4u64 {
            sys.add_thread(Box::new(CsProgram::new(
                SharedCounter::new(WordAddr(t * 512), WordAddr(1 << 16), cs_rounds, 30),
                SyncMode::Tm,
                t,
            )));
        }
        sys.run().expect("run")
    });

    // ---- JSON ----------------------------------------------------------
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"hotpath\",\n");
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str("  \"cases\": [\n");
    for (i, c) in out.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"group\": \"{}\", \"name\": \"{}\", \"mean_ms\": {:.6}, \"best_ms\": {:.6}, \"iters\": {}}}{}\n",
            c.group,
            c.name,
            c.mean_ms,
            c.best_ms,
            c.iters,
            if i + 1 < out.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n  \"speedups\": {\n");
    let pairs = [
        (
            "sig_membership_bitselect",
            speedup(&out, "sig", "membership_boxed_bitselect", "membership_repr_bitselect"),
        ),
        (
            "sig_membership_bloom",
            speedup(&out, "sig", "membership_boxed_bloom", "membership_repr_bloom"),
        ),
        (
            "event_queue_churn",
            speedup(&out, "event_queue", "churn_heap_ref", "churn_calendar"),
        ),
    ];
    for (i, (name, s)) in pairs.iter().enumerate() {
        json.push_str(&format!(
            "    \"{name}\": {}{}\n",
            s.map_or("null".to_string(), |v| format!("{v:.3}")),
            if i + 1 < pairs.len() { "," } else { "" }
        ));
    }
    json.push_str("  }\n}\n");

    for (name, s) in pairs {
        if let Some(s) = s {
            eprintln!("speedup {name:<32} {s:.2}x");
        }
    }

    match std::env::var("LTSE_BENCH_JSON") {
        Ok(path) if !path.is_empty() => {
            std::fs::write(&path, &json).expect("write LTSE_BENCH_JSON file");
            eprintln!("wrote {path}");
        }
        _ => print!("{json}"),
    }
}
