//! Scale-out sweep for the PR 8 work: 64/128/256-core simulations on the
//! `MemConfig::scaled_cmp` configurations (one L2 bank per core, square
//! mesh, calendar window sized from the context count).
//!
//! Each `sweep/cores_N` case times one full Mp3d run (system construction
//! included — it is part of what a user pays per configuration). The
//! `checked/cores_256_serializability` case runs the 256-context system
//! with the differential serializability oracle enabled and asserts the
//! checks pass before any timing is reported — this is the acceptance
//! criterion that the 64-context ceiling is actually gone, not merely that
//! the config validates.
//!
//! The headline metric is **ns per dispatched event**: wall time grows with
//! core count because bigger systems dispatch more events, so per-event
//! cost is the number that exposes super-linear hot paths (O(cores) scans,
//! allocation storms). The `speedups` map reports the 64-core baseline
//! divided by each larger config — ≈1.0 means flat per-event cost.
//!
//! Output matches the other bench targets: human lines on stderr, one JSON
//! document on stdout or to `LTSE_BENCH_JSON` (what `scripts/bench.sh`
//! stores as `BENCH_scale.json`).
//!
//! Environment: `LTSE_BENCH_QUICK=1` (tiny workloads, 2 iters),
//! `LTSE_BENCH_ITERS=N`.

use std::hint::black_box;
use std::time::Instant;

use logtm_se::{Cycle, MemConfig, RunReport, System, SystemBuilder};
use ltse_bench::harness;
use ltse_sim::EventQueue;
use ltse_workloads::{Benchmark, SyncMode};

struct CaseResult {
    group: &'static str,
    name: &'static str,
    mean_ms: f64,
    best_ms: f64,
    iters: usize,
}

fn time_case<T>(
    out: &mut Vec<CaseResult>,
    group: &'static str,
    name: &'static str,
    iters: usize,
    mut f: impl FnMut() -> T,
) {
    black_box(f()); // warmup
    let mut best = f64::INFINITY;
    let mut total = 0.0;
    for _ in 0..iters {
        let t0 = Instant::now();
        black_box(f());
        let dt = t0.elapsed().as_secs_f64();
        total += dt;
        best = best.min(dt);
    }
    let mean_ms = total / iters as f64 * 1e3;
    let best_ms = best * 1e3;
    eprintln!(
        "{:<44} mean {mean_ms:>9.3} ms   best {best_ms:>9.3} ms   ({iters} iters)",
        format!("{group}/{name}")
    );
    out.push(CaseResult {
        group,
        name,
        mean_ms,
        best_ms,
        iters,
    });
}

/// One row of the sweep: simulated-run facts recorded next to the timings.
struct SweepRow {
    n_cores: u16,
    n_ctxs: u32,
    cycles: u64,
    events: u64,
    commits: u64,
    aborts: u64,
    checked: bool,
}

const SWEEP_CORES: [u16; 3] = [64, 128, 256];
const SEED: u64 = 42;

fn build_system(n_cores: u16, checked: bool) -> System {
    let mem = MemConfig::scaled_cmp(n_cores, 1);
    let n_ctxs = mem.n_ctxs();
    let mut s = SystemBuilder::paper_default()
        .mem_config(mem)
        .seed(SEED)
        .check_serializability(checked)
        .build();
    for p in Benchmark::Mp3d.programs(SyncMode::Tm, n_ctxs, units_per_thread()) {
        s.add_thread(p);
    }
    s
}

fn units_per_thread() -> u64 {
    if quick() { 1 } else { 4 }
}

fn quick() -> bool {
    std::env::var("LTSE_BENCH_QUICK").is_ok_and(|v| v == "1")
}

/// Synthetic calendar-queue churn isolating the two-level occupancy bitmap:
/// ~64 events in flight over a 4096-bucket window (the 256-context shape),
/// mostly short hops plus occasional long jumps, so the scan-for-next-bucket
/// path dominates exactly as it does in sparse simulation phases.
fn queue_churn(banked: bool, ops: u64) -> u64 {
    let n_buckets = 4096;
    let mut q: EventQueue<u64> = if banked {
        EventQueue::with_buckets(n_buckets)
    } else {
        EventQueue::with_buckets_unbanked(n_buckets)
    };
    let mut x = 0x9E37_79B9_7F4A_7C15u64;
    let mut acc = 0u64;
    for i in 0..64 {
        q.push_after(Cycle(i % 7 + 1), i);
    }
    for _ in 0..ops {
        let (t, v) = q.pop().expect("queue never drains");
        acc = acc.wrapping_add(t.as_u64() ^ v);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let delay = if x % 97 == 0 { 1 + x % 60_000 } else { 1 + x % 64 };
        q.push_after(Cycle(delay), v);
    }
    acc
}

fn run_once(n_cores: u16, checked: bool) -> RunReport {
    let mut s = build_system(n_cores, checked);
    let report = s.run().expect("scaled run");
    if checked {
        let errs = s.finish_checks();
        assert!(
            errs.is_empty(),
            "serializability violations at {n_cores} cores: {}",
            errs.join("; ")
        );
    }
    report
}

fn main() {
    let quick = quick();
    let iters = harness::iters(if quick { 2 } else { 5 });
    let cpus = harness::detected_cpus();
    let mut out: Vec<CaseResult> = Vec::new();
    let mut rows: Vec<SweepRow> = Vec::new();

    // ---- the 64/128/256-core sweep --------------------------------------
    for (n_cores, name) in SWEEP_CORES
        .into_iter()
        .zip(["cores_64", "cores_128", "cores_256"])
    {
        let r = run_once(n_cores, false);
        assert!(r.tm.commits > 0, "{n_cores}-core run committed nothing");
        rows.push(SweepRow {
            n_cores,
            n_ctxs: n_cores as u32,
            cycles: r.cycles.as_u64(),
            events: r.events_dispatched,
            commits: r.tm.commits,
            aborts: r.tm.aborts,
            checked: false,
        });
        time_case(&mut out, "sweep", name, iters, || run_once(n_cores, false));
    }

    // ---- 256 contexts under the serializability oracle ------------------
    // `run_once(_, true)` panics on any violation, so a finished timing run
    // doubles as the correctness gate.
    let r = run_once(256, true);
    rows.push(SweepRow {
        n_cores: 256,
        n_ctxs: 256,
        cycles: r.cycles.as_u64(),
        events: r.events_dispatched,
        commits: r.tm.commits,
        aborts: r.tm.aborts,
        checked: true,
    });
    time_case(&mut out, "checked", "cores_256_serializability", iters, || {
        run_once(256, true)
    });

    // ---- banked vs unbanked queue ---------------------------------------
    // Same churn, only the occupancy-scan strategy differs; the ratio lands
    // in `speedups.queue_banked_vs_unbanked` (>1 = banking pays off).
    let qops: u64 = if quick { 200_000 } else { 2_000_000 };
    time_case(&mut out, "queue", "banked", iters, || queue_churn(true, qops));
    time_case(&mut out, "queue", "unbanked", iters, || {
        queue_churn(false, qops)
    });
    let queue_ratio = {
        let b = out.iter().find(|c| c.group == "queue" && c.name == "banked");
        let u = out
            .iter()
            .find(|c| c.group == "queue" && c.name == "unbanked");
        b.zip(u)
            .filter(|(b, _)| b.best_ms > 0.0)
            .map(|(b, u)| u.best_ms / b.best_ms)
    };

    // ---- per-event scaling ----------------------------------------------
    // best_ms over events from the recorded (deterministic) run: the event
    // count is a pure function of (config, seed), so pairing it with the
    // best timing of the same config is sound.
    let ns_per_event = |name: &str, n_cores: u16| -> Option<f64> {
        let c = out.iter().find(|c| c.group == "sweep" && c.name == name)?;
        let row = rows.iter().find(|r| r.n_cores == n_cores && !r.checked)?;
        (row.events > 0).then(|| c.best_ms * 1e6 / row.events as f64)
    };
    let base = ns_per_event("cores_64", 64);
    let pairs = [
        (
            "per_event_64_vs_128",
            base.zip(ns_per_event("cores_128", 128)).map(|(b, o)| b / o),
        ),
        (
            "per_event_64_vs_256",
            base.zip(ns_per_event("cores_256", 256)).map(|(b, o)| b / o),
        ),
        ("queue_banked_vs_unbanked", queue_ratio),
    ];
    for (pname, s) in pairs {
        if let Some(s) = s {
            eprintln!("scaling {pname:<32} {s:.2}x (1.0 = flat per-event cost)");
        }
    }

    // ---- JSON ----------------------------------------------------------
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"scale\",\n");
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!("  \"cpus\": {cpus},\n"));
    json.push_str(&format!("  \"units_per_thread\": {},\n", units_per_thread()));
    json.push_str("  \"runs\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"n_cores\": {}, \"n_ctxs\": {}, \"cycles\": {}, \"events\": {}, \
             \"commits\": {}, \"aborts\": {}, \"checked\": {}}}{}\n",
            r.n_cores,
            r.n_ctxs,
            r.cycles,
            r.events,
            r.commits,
            r.aborts,
            r.checked,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n  \"cases\": [\n");
    for (i, c) in out.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"group\": \"{}\", \"name\": \"{}\", \"mean_ms\": {:.6}, \"best_ms\": {:.6}, \"iters\": {}}}{}\n",
            c.group,
            c.name,
            c.mean_ms,
            c.best_ms,
            c.iters,
            if i + 1 < out.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n  \"speedups\": {\n");
    for (i, (pname, s)) in pairs.iter().enumerate() {
        json.push_str(&format!(
            "    \"{pname}\": {}{}\n",
            s.map_or("null".to_string(), |v| format!("{v:.3}")),
            if i + 1 < pairs.len() { "," } else { "" }
        ));
    }
    json.push_str("  }\n}\n");

    match std::env::var("LTSE_BENCH_JSON") {
        Ok(path) if !path.is_empty() => {
            std::fs::write(&path, &json).expect("write LTSE_BENCH_JSON file");
            eprintln!("wrote {path}");
        }
        _ => print!("{json}"),
    }
}
