//! Criterion bench: the ablation configurations (sticky on/off, log-filter
//! sizes, virtualization pressure), each as one tracked run.

use criterion::{criterion_group, criterion_main, Criterion};
use logtm_se::{CoherenceKind, Cycle, SignatureKind, SystemBuilder};
use ltse_workloads::{run_benchmark, Benchmark, RunParams, SyncMode};

fn base_params(benchmark: Benchmark) -> RunParams {
    RunParams {
        benchmark,
        mode: SyncMode::Tm,
        signature: SignatureKind::Perfect,
        threads: 8,
        units_per_thread: 4,
        seed: 3,
        small_machine: false,
        sticky: true,
        log_filter_entries: 16,
        coherence: CoherenceKind::DirectoryMesi,
        warmup_units: 0,
    }
}

fn bench_sticky(c: &mut Criterion) {
    let mut group = c.benchmark_group("sticky_ablation");
    group.sample_size(10);
    for sticky in [true, false] {
        group.bench_function(format!("raytrace/sticky={sticky}"), |b| {
            b.iter(|| {
                let mut p = base_params(Benchmark::Raytrace);
                p.sticky = sticky;
                p.units_per_thread = 8;
                run_benchmark(&p).expect("run")
            })
        });
    }
    group.finish();
}

fn bench_log_filter(c: &mut Criterion) {
    let mut group = c.benchmark_group("log_filter");
    group.sample_size(10);
    for entries in [0usize, 4, 16, 64] {
        group.bench_function(format!("berkeleydb/entries={entries}"), |b| {
            b.iter(|| {
                let mut p = base_params(Benchmark::BerkeleyDb);
                p.log_filter_entries = entries;
                run_benchmark(&p).expect("run")
            })
        });
    }
    group.finish();
}

fn bench_virtualization(c: &mut Criterion) {
    let mut group = c.benchmark_group("virtualization");
    group.sample_size(10);
    for (label, quantum, defer) in [
        ("defer", Cycle(10_000), true),
        ("no_defer", Cycle(10_000), false),
    ] {
        group.bench_function(format!("mp3d_oversubscribed/{label}"), |b| {
            b.iter(|| {
                let mut system = SystemBuilder::paper_default()
                    .signature(SignatureKind::paper_bs_2kb())
                    .seed(4)
                    .preemption(quantum, defer)
                    .build();
                for p in Benchmark::Mp3d.programs(SyncMode::Tm, 12, 3) {
                    system.add_thread(p);
                }
                system.run().expect("run")
            })
        });
    }
    group.finish();
}

fn bench_coherence_substrates(c: &mut Criterion) {
    let mut group = c.benchmark_group("coherence");
    group.sample_size(10);
    for coherence in [CoherenceKind::DirectoryMesi, CoherenceKind::SnoopingMesi] {
        group.bench_function(format!("mp3d/{coherence}"), |b| {
            b.iter(|| {
                let mut p = base_params(Benchmark::Mp3d);
                p.coherence = coherence;
                run_benchmark(&p).expect("run")
            })
        });
    }
    group.finish();
}

fn bench_multi_cmp(c: &mut Criterion) {
    let mut group = c.benchmark_group("multi_cmp");
    group.sample_size(10);
    for chips in [1u8, 4] {
        group.bench_function(format!("mp3d/chips={chips}"), |b| {
            b.iter(|| {
                let mut system = SystemBuilder::paper_default()
                    .signature(SignatureKind::paper_bs_2kb())
                    .chips(chips)
                    .seed(6)
                    .build();
                for p in Benchmark::Mp3d.programs(SyncMode::Tm, 8, 4) {
                    system.add_thread(p);
                }
                system.run().expect("run")
            })
        });
    }
    group.finish();
}

fn bench_contention_policies(c: &mut Criterion) {
    use logtm_se::ContentionPolicy;
    let mut group = c.benchmark_group("contention");
    group.sample_size(10);
    for policy in [
        ContentionPolicy::RequesterStalls,
        ContentionPolicy::SizeMatters,
    ] {
        group.bench_function(format!("berkeleydb/{policy:?}"), |b| {
            b.iter(|| {
                let mut system = SystemBuilder::paper_default()
                    .signature(SignatureKind::paper_bs_2kb())
                    .contention(policy)
                    .seed(7)
                    .build();
                for p in Benchmark::BerkeleyDb.programs(SyncMode::Tm, 8, 4) {
                    system.add_thread(p);
                }
                system.run().expect("run")
            })
        });
    }
    group.finish();
}

fn bench_nesting(c: &mut Criterion) {
    use ltse_bench::experiments::{nesting_ablation, ExperimentScale};
    let mut group = c.benchmark_group("nesting");
    group.sample_size(10);
    group.bench_function("flat_vs_nested", |b| {
        b.iter(|| nesting_ablation(&ExperimentScale::quick()))
    });
    group.finish();
}

fn bench_smt(c: &mut Criterion) {
    use ltse_bench::experiments::{smt_comparison, ExperimentScale};
    let mut group = c.benchmark_group("smt");
    group.sample_size(10);
    group.bench_function("16x2_vs_32x1", |b| {
        b.iter(|| smt_comparison(&ExperimentScale::quick()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sticky,
    bench_log_filter,
    bench_virtualization,
    bench_coherence_substrates,
    bench_multi_cmp,
    bench_contention_policies,
    bench_nesting,
    bench_smt
);
criterion_main!(benches);
