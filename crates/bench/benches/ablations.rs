//! Timing bench: the ablation configurations (sticky on/off, log-filter
//! sizes, virtualization pressure), each as one tracked run.

use logtm_se::{CoherenceKind, ContentionPolicy, Cycle, SignatureKind, SystemBuilder};
use ltse_bench::experiments::{nesting_ablation, smt_comparison, ExperimentScale};
use ltse_bench::harness::BenchGroup;
use ltse_workloads::{run_benchmark, Benchmark, RunParams, SyncMode};

fn base_params(benchmark: Benchmark) -> RunParams {
    RunParams {
        benchmark,
        mode: SyncMode::Tm,
        signature: SignatureKind::Perfect,
        threads: 8,
        units_per_thread: 4,
        seed: 3,
        small_machine: false,
        sticky: true,
        log_filter_entries: 16,
        coherence: CoherenceKind::DirectoryMesi,
        warmup_units: 0,
    }
}

fn main() {
    let sticky = BenchGroup::new("sticky_ablation", 10);
    for on in [true, false] {
        sticky.case(&format!("raytrace/sticky={on}"), || {
            let mut p = base_params(Benchmark::Raytrace);
            p.sticky = on;
            p.units_per_thread = 8;
            run_benchmark(&p).expect("run")
        });
    }

    let log_filter = BenchGroup::new("log_filter", 10);
    for entries in [0usize, 4, 16, 64] {
        log_filter.case(&format!("berkeleydb/entries={entries}"), || {
            let mut p = base_params(Benchmark::BerkeleyDb);
            p.log_filter_entries = entries;
            run_benchmark(&p).expect("run")
        });
    }

    let virt = BenchGroup::new("virtualization", 10);
    for (label, quantum, defer) in [
        ("defer", Cycle(10_000), true),
        ("no_defer", Cycle(10_000), false),
    ] {
        virt.case(&format!("mp3d_oversubscribed/{label}"), || {
            let mut system = SystemBuilder::paper_default()
                .signature(SignatureKind::paper_bs_2kb())
                .seed(4)
                .preemption(quantum, defer)
                .build();
            for p in Benchmark::Mp3d.programs(SyncMode::Tm, 12, 3) {
                system.add_thread(p);
            }
            system.run().expect("run")
        });
    }

    let coherence = BenchGroup::new("coherence", 10);
    for kind in [CoherenceKind::DirectoryMesi, CoherenceKind::SnoopingMesi] {
        coherence.case(&format!("mp3d/{kind}"), || {
            let mut p = base_params(Benchmark::Mp3d);
            p.coherence = kind;
            run_benchmark(&p).expect("run")
        });
    }

    let multi_cmp = BenchGroup::new("multi_cmp", 10);
    for chips in [1u8, 4] {
        multi_cmp.case(&format!("mp3d/chips={chips}"), || {
            let mut system = SystemBuilder::paper_default()
                .signature(SignatureKind::paper_bs_2kb())
                .chips(chips)
                .seed(6)
                .build();
            for p in Benchmark::Mp3d.programs(SyncMode::Tm, 8, 4) {
                system.add_thread(p);
            }
            system.run().expect("run")
        });
    }

    let contention = BenchGroup::new("contention", 10);
    for policy in [
        ContentionPolicy::RequesterStalls,
        ContentionPolicy::SizeMatters,
    ] {
        contention.case(&format!("berkeleydb/{policy:?}"), || {
            let mut system = SystemBuilder::paper_default()
                .signature(SignatureKind::paper_bs_2kb())
                .contention(policy)
                .seed(7)
                .build();
            for p in Benchmark::BerkeleyDb.programs(SyncMode::Tm, 8, 4) {
                system.add_thread(p);
            }
            system.run().expect("run")
        });
    }

    let nesting = BenchGroup::new("nesting", 10);
    nesting.case("flat_vs_nested", || {
        nesting_ablation(&ExperimentScale::quick()).expect("sweep")
    });

    let smt = BenchGroup::new("smt", 10);
    smt.case("16x2_vs_32x1", || {
        smt_comparison(&ExperimentScale::quick()).expect("sweep")
    });
}
