//! Timing bench: the Table 3 configurations (Raytrace and BerkeleyDB
//! under each signature scheme/size), exercising the false-positive
//! accounting path end to end.

use logtm_se::{CoherenceKind, SignatureKind};
use ltse_bench::harness::BenchGroup;
use ltse_workloads::{run_benchmark, Benchmark, RunParams, SyncMode};

fn main() {
    let group = BenchGroup::new("table3", 10);
    let signatures = [
        SignatureKind::Perfect,
        SignatureKind::BitSelect { bits: 2048 },
        SignatureKind::CoarseBitSelect {
            bits: 2048,
            blocks_per_macroblock: 16,
        },
        SignatureKind::DoubleBitSelect { bits: 2048 },
        SignatureKind::BitSelect { bits: 64 },
    ];
    for benchmark in [Benchmark::Raytrace, Benchmark::BerkeleyDb] {
        for kind in signatures {
            let p = RunParams {
                benchmark,
                mode: SyncMode::Tm,
                signature: kind,
                threads: 8,
                units_per_thread: 4,
                seed: 2,
                small_machine: false,
                sticky: true,
                log_filter_entries: 16,
                coherence: CoherenceKind::DirectoryMesi,
                warmup_units: 0,
            };
            group.case(&format!("{benchmark}/{}", kind.label()), || {
                run_benchmark(&p).expect("run")
            });
        }
    }
}
