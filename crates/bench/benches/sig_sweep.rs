//! Criterion bench: raw signature operation throughput (insert + lookup)
//! across implementations and sizes — the hardware-cost side of the
//! signature design space (paper §5, "Signature Design").

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ltse_sig::SignatureKind;

fn bench_signature_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("sig_ops");
    let kinds = [
        SignatureKind::Perfect,
        SignatureKind::BitSelect { bits: 64 },
        SignatureKind::BitSelect { bits: 2048 },
        SignatureKind::DoubleBitSelect { bits: 2048 },
        SignatureKind::CoarseBitSelect {
            bits: 2048,
            blocks_per_macroblock: 16,
        },
        SignatureKind::Bloom { bits: 2048, k: 4 },
    ];
    for kind in kinds {
        group.bench_function(format!("insert_lookup/{}", kind.label()), |b| {
            b.iter_batched(
                || kind.build(),
                |mut sig| {
                    for a in 0..256u64 {
                        sig.insert(a * 97);
                    }
                    let mut hits = 0u32;
                    for a in 0..256u64 {
                        if sig.maybe_contains(a * 89) {
                            hits += 1;
                        }
                    }
                    hits
                },
                BatchSize::SmallInput,
            )
        });
        group.bench_function(format!("save_restore/{}", kind.label()), |b| {
            b.iter_batched(
                || {
                    let mut sig = kind.build();
                    for a in 0..64u64 {
                        sig.insert(a * 131);
                    }
                    sig
                },
                |sig| {
                    let saved = sig.save();
                    let mut fresh = kind.build();
                    fresh.restore(&saved);
                    fresh.saturation()
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_signature_ops);
criterion_main!(benches);
