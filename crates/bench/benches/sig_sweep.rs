//! Timing bench: raw signature operation throughput (insert + lookup)
//! across implementations and sizes — the hardware-cost side of the
//! signature design space (paper §5, "Signature Design").

use ltse_bench::harness::BenchGroup;
use ltse_sig::SignatureKind;

fn main() {
    let group = BenchGroup::new("sig_ops", 200);
    let kinds = [
        SignatureKind::Perfect,
        SignatureKind::BitSelect { bits: 64 },
        SignatureKind::BitSelect { bits: 2048 },
        SignatureKind::DoubleBitSelect { bits: 2048 },
        SignatureKind::CoarseBitSelect {
            bits: 2048,
            blocks_per_macroblock: 16,
        },
        SignatureKind::Bloom { bits: 2048, k: 4 },
    ];
    for kind in kinds {
        group.case(&format!("insert_lookup/{}", kind.label()), || {
            let mut sig = kind.build();
            for a in 0..256u64 {
                sig.insert(a * 97);
            }
            let mut hits = 0u32;
            for a in 0..256u64 {
                if sig.maybe_contains(a * 89) {
                    hits += 1;
                }
            }
            hits
        });
        group.case(&format!("save_restore/{}", kind.label()), || {
            let mut sig = kind.build();
            for a in 0..64u64 {
                sig.insert(a * 131);
            }
            let saved = sig.save();
            let mut fresh = kind.build();
            fresh.restore(&saved);
            fresh.saturation()
        });
    }
}
