//! Observability-layer overhead bench, with machine-readable output.
//!
//! The `ltse_sim::obs` layer claims to be zero-cost-when-off: every hook
//! site in the simulator is one `Option` null check. This bench proves it
//! on the same end-to-end contended-counter workload as `benches/hotpath.rs`
//! — obs-off is timed against obs-on in the same run, so the emitted
//! `obs_off_vs_on` ratio directly bounds the off-path overhead (a ratio of
//! ~1.0 means the disabled layer costs nothing; the acceptance bar is
//! off-path cost below 2%, i.e. ratio > 0.98). Micro-cases for the two obs
//! primitives (metric bumps and span-ring pushes) are timed alongside so a
//! future regression is attributable.
//!
//! Output:
//!
//! * human-readable lines on **stderr**;
//! * a single JSON document on **stdout**, or to the file named by
//!   `LTSE_BENCH_JSON` if set (what `scripts/bench.sh` uses to produce
//!   `BENCH_obs.json`).
//!
//! Environment:
//!
//! * `LTSE_BENCH_QUICK=1` — CI smoke mode: tiny workloads, 2 iterations,
//!   still full JSON structure (no timing thresholds are asserted anywhere).
//! * `LTSE_BENCH_ITERS=N` — override the per-case iteration count.

use std::hint::black_box;
use std::time::Instant;

use logtm_se::{SignatureKind, SystemBuilder, WordAddr};
use ltse_bench::harness;
use ltse_sim::obs::{ObsCore, StallCause};
use ltse_sim::rng::mix64;
use ltse_sim::Cycle;
use ltse_workloads::{CsProgram, SharedCounter, SyncMode};

struct CaseResult {
    group: &'static str,
    name: &'static str,
    mean_ms: f64,
    best_ms: f64,
    iters: usize,
}

fn time_case<T>(
    out: &mut Vec<CaseResult>,
    group: &'static str,
    name: &'static str,
    iters: usize,
    mut f: impl FnMut() -> T,
) {
    black_box(f()); // warmup
    let mut best = f64::INFINITY;
    let mut total = 0.0;
    for _ in 0..iters {
        let t0 = Instant::now();
        black_box(f());
        let dt = t0.elapsed().as_secs_f64();
        total += dt;
        best = best.min(dt);
    }
    let mean_ms = total / iters as f64 * 1e3;
    let best_ms = best * 1e3;
    eprintln!(
        "{:<44} mean {mean_ms:>9.3} ms   best {best_ms:>9.3} ms   ({iters} iters)",
        format!("{group}/{name}")
    );
    out.push(CaseResult {
        group,
        name,
        mean_ms,
        best_ms,
        iters,
    });
}

fn mean_of<'a>(out: &'a [CaseResult], group: &str, name: &str) -> Option<&'a CaseResult> {
    out.iter().find(|c| c.group == group && c.name == name)
}

/// best-time ratio `baseline / optimized` (higher = optimized is faster).
fn speedup(out: &[CaseResult], group: &str, baseline: &str, optimized: &str) -> Option<f64> {
    let b = mean_of(out, group, baseline)?;
    let o = mean_of(out, group, optimized)?;
    (o.best_ms > 0.0).then(|| b.best_ms / o.best_ms)
}

/// The hotpath bench's end-to-end workload, with the obs layer toggled.
fn run_contended(observe: bool, cs_rounds: u64) -> logtm_se::RunReport {
    let mut sys = SystemBuilder::paper_default()
        .signature(SignatureKind::paper_bs_2kb())
        .seed(5)
        .observe(observe)
        .build();
    for t in 0..4u64 {
        sys.add_thread(Box::new(CsProgram::new(
            SharedCounter::new(WordAddr(t * 512), WordAddr(1 << 16), cs_rounds, 30),
            SyncMode::Tm,
            t,
        )));
    }
    sys.run().expect("run")
}

fn main() {
    let quick = std::env::var("LTSE_BENCH_QUICK").is_ok_and(|v| v == "1");
    let iters = harness::iters(if quick { 2 } else { 30 });
    let mut out: Vec<CaseResult> = Vec::new();

    // ---- end to end: the off-path overhead bound ------------------------
    // `run_obs_on` is the baseline and `run_obs_off` the "optimized" side,
    // so the emitted ratio reads "how much faster is obs-off than obs-on";
    // the companion `obs_off_vs_on` inverts the roles to bound the cost of
    // merely *compiling in* the disabled layer against full attribution.
    // Larger than hotpath's 60 rounds: the off-vs-on delta is a few percent
    // at most, so the per-run time must dwarf timer and scheduler noise.
    let cs_rounds = if quick { 10 } else { 800 };
    let e2e_iters = iters.min(12).max(if quick { 2 } else { 8 });
    time_case(&mut out, "end_to_end", "run_obs_off", e2e_iters, || {
        run_contended(false, cs_rounds)
    });
    time_case(&mut out, "end_to_end", "run_obs_on", e2e_iters, || {
        run_contended(true, cs_rounds)
    });

    // ---- obs primitives -------------------------------------------------
    let bumps = if quick { 50_000u64 } else { 2_000_000 };
    time_case(&mut out, "primitives", "registry_bump", iters, || {
        let mut o = ObsCore::new(0);
        for i in 0..bumps {
            // Rotate over a few static names like real hook sites do.
            match i % 3 {
                0 => o.bump("nacks_unjudged"),
                1 => o.bump("preemptions"),
                _ => o.add("partial_aborts", 1),
            }
        }
        o.report().metrics.get("preemptions")
    });
    let spans = if quick { 20_000u64 } else { 500_000 };
    time_case(&mut out, "primitives", "span_ring_push", iters, || {
        let mut o = ObsCore::new(4096);
        for i in 0..spans {
            let tid = (i % 32) as u32;
            o.on_tx_begin(tid, Cycle(i));
            o.on_stall(tid, StallCause::CoherenceNack, Cycle(mix64(i) % 64));
            o.on_commit(tid, Cycle(i + 40));
        }
        o.report().spans_committed
    });

    // ---- JSON ----------------------------------------------------------
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"obs\",\n");
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str("  \"cases\": [\n");
    for (i, c) in out.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"group\": \"{}\", \"name\": \"{}\", \"mean_ms\": {:.6}, \"best_ms\": {:.6}, \"iters\": {}}}{}\n",
            c.group,
            c.name,
            c.mean_ms,
            c.best_ms,
            c.iters,
            if i + 1 < out.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n  \"speedups\": {\n");
    let pairs = [(
        "obs_off_vs_on",
        speedup(&out, "end_to_end", "run_obs_on", "run_obs_off"),
    )];
    for (i, (name, s)) in pairs.iter().enumerate() {
        json.push_str(&format!(
            "    \"{name}\": {}{}\n",
            s.map_or("null".to_string(), |v| format!("{v:.3}")),
            if i + 1 < pairs.len() { "," } else { "" }
        ));
    }
    json.push_str("  }\n}\n");

    for (name, s) in pairs {
        if let Some(s) = s {
            eprintln!("speedup {name:<32} {s:.2}x");
            // The headline number: how much the *disabled* layer costs
            // relative to full attribution being on.
            eprintln!(
                "obs-off overhead vs obs-on               {:+.2}%",
                (1.0 / s - 1.0) * 100.0
            );
        }
    }

    match std::env::var("LTSE_BENCH_JSON") {
        Ok(path) if !path.is_empty() => {
            std::fs::write(&path, &json).expect("write LTSE_BENCH_JSON file");
            eprintln!("wrote {path}");
        }
        _ => print!("{json}"),
    }
}
