//! Criterion bench: simulator micro-costs — memory-system access paths and
//! the TM fast paths (begin/commit, logging), the operations LogTM-SE
//! claims are cheap.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use logtm_se::{SignatureKind, SystemBuilder, WordAddr};
use ltse_mem::{AccessKind, BlockAddr, MemConfig, MemorySystem, NullOracle};
use ltse_workloads::{CsProgram, SharedCounter, SyncMode};

fn bench_mem_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("mem_paths");
    group.bench_function("l1_hit_loop", |b| {
        let mut m = MemorySystem::new(MemConfig::paper_cmp());
        let ctx = m.config().ctx(0, 0);
        m.access(ctx, AccessKind::Load, BlockAddr(1), &NullOracle);
        b.iter(|| m.access(ctx, AccessKind::Load, BlockAddr(1), &NullOracle));
    });
    group.bench_function("cold_miss_stream", |b| {
        b.iter_batched(
            || MemorySystem::new(MemConfig::paper_cmp()),
            |mut m| {
                let ctx = m.config().ctx(0, 0);
                for i in 0..256u64 {
                    m.access(ctx, AccessKind::Load, BlockAddr(i * 3), &NullOracle);
                }
                m.stats().dram_accesses.get()
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_tm_fast_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("tm_fast_paths");
    group.sample_size(20);
    group.bench_function("counter_tx_throughput", |b| {
        b.iter(|| {
            let mut sys = SystemBuilder::paper_default()
                .signature(SignatureKind::paper_bs_2kb())
                .seed(5)
                .build();
            for t in 0..4u64 {
                sys.add_thread(Box::new(CsProgram::new(
                    SharedCounter::new(WordAddr(t * 512), WordAddr(1 << 16), 50, 30),
                    SyncMode::Tm,
                    t,
                )));
            }
            sys.run().expect("run")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_mem_paths, bench_tm_fast_paths);
criterion_main!(benches);
