//! Timing bench: simulator micro-costs — memory-system access paths and
//! the TM fast paths (begin/commit, logging), the operations LogTM-SE
//! claims are cheap.

use logtm_se::{SignatureKind, SystemBuilder, WordAddr};
use ltse_bench::harness::BenchGroup;
use ltse_mem::{AccessKind, BlockAddr, MemConfig, MemorySystem, NullOracle};
use ltse_workloads::{CsProgram, SharedCounter, SyncMode};

fn main() {
    let mem = BenchGroup::new("mem_paths", 50);
    mem.case("l1_hit_loop", || {
        let mut m = MemorySystem::new(MemConfig::paper_cmp());
        let ctx = m.config().ctx(0, 0);
        m.access(ctx, AccessKind::Load, BlockAddr(1), &NullOracle);
        for _ in 0..4096 {
            m.access(ctx, AccessKind::Load, BlockAddr(1), &NullOracle);
        }
        m.stats().dram_accesses.get()
    });
    mem.case("cold_miss_stream", || {
        let mut m = MemorySystem::new(MemConfig::paper_cmp());
        let ctx = m.config().ctx(0, 0);
        for i in 0..256u64 {
            m.access(ctx, AccessKind::Load, BlockAddr(i * 3), &NullOracle);
        }
        m.stats().dram_accesses.get()
    });

    let tm = BenchGroup::new("tm_fast_paths", 20);
    tm.case("counter_tx_throughput", || {
        let mut sys = SystemBuilder::paper_default()
            .signature(SignatureKind::paper_bs_2kb())
            .seed(5)
            .build();
        for t in 0..4u64 {
            sys.add_thread(Box::new(CsProgram::new(
                SharedCounter::new(WordAddr(t * 512), WordAddr(1 << 16), 50, 30),
                SyncMode::Tm,
                t,
            )));
        }
        sys.run().expect("run")
    });
}
