//! Pipeline-level benchmarks for the PR 4 performance work: the persistent
//! run cache and parallel schedule exploration.
//!
//! Unlike `hotpath` (micro-benchmarks of individual data structures), every
//! case here times a whole pipeline stage — a full experiment sweep or a
//! full exploration — and each optimized path is measured **against its
//! baseline in the same run**:
//!
//! * `cache/sweep_cold` vs `cache/sweep_warm` — the figure-4 sweep with an
//!   emptied cache directory (every run recomputed and stored) vs the same
//!   sweep served entirely from the populated cache;
//! * `explore/jobs_1` vs `explore/jobs_N` — schedule exploration of a
//!   contended-counter system sequentially vs fanned out over the worker
//!   pool, with the reports asserted identical before any timing is
//!   reported.
//!
//! Output:
//!
//! * human-readable lines on **stderr**;
//! * a single JSON document on **stdout**, or to the file named by
//!   `LTSE_BENCH_JSON` if set (what `scripts/bench.sh` uses to produce
//!   `BENCH_pipeline.json`).
//!
//! Environment:
//!
//! * `LTSE_BENCH_QUICK=1` — CI smoke mode: tiny workloads, 2 iterations,
//!   still full JSON structure (no timing thresholds are asserted anywhere).
//! * `LTSE_BENCH_ITERS=N` — override the per-case iteration count.

use std::hint::black_box;
use std::time::Instant;

use logtm_se::{
    explore, explore_jobs, Cycle, ExploreConfig, ExploreReport, ScheduleChooser, System,
    SystemBuilder, TxScript, WordAddr,
};
use ltse_bench::experiments::ExperimentScale;
use ltse_bench::{cache, figure4, harness, runner};
use ltse_sim::parallel::effective_jobs;

struct CaseResult {
    group: &'static str,
    name: &'static str,
    mean_ms: f64,
    best_ms: f64,
    iters: usize,
}

fn time_case<T>(
    out: &mut Vec<CaseResult>,
    group: &'static str,
    name: &'static str,
    iters: usize,
    mut f: impl FnMut() -> T,
) {
    black_box(f()); // warmup
    let mut best = f64::INFINITY;
    let mut total = 0.0;
    for _ in 0..iters {
        let t0 = Instant::now();
        black_box(f());
        let dt = t0.elapsed().as_secs_f64();
        total += dt;
        best = best.min(dt);
    }
    let mean_ms = total / iters as f64 * 1e3;
    let best_ms = best * 1e3;
    eprintln!(
        "{:<44} mean {mean_ms:>9.3} ms   best {best_ms:>9.3} ms   ({iters} iters)",
        format!("{group}/{name}")
    );
    out.push(CaseResult {
        group,
        name,
        mean_ms,
        best_ms,
        iters,
    });
}

/// best-time ratio `baseline / optimized` (higher = optimized is faster).
fn speedup(out: &[CaseResult], group: &str, baseline: &str, optimized: &str) -> Option<f64> {
    let b = out.iter().find(|c| c.group == group && c.name == baseline)?;
    let o = out.iter().find(|c| c.group == group && c.name == optimized)?;
    (o.best_ms > 0.0).then(|| b.best_ms / o.best_ms)
}

// ------------------------------------------------------------ explore model

/// Candidate window / reorder horizon, as in the explore integration tests.
const WINDOW: usize = 4;
const HORIZON: Cycle = Cycle(8);

fn contended_counters() -> System {
    let mut s = SystemBuilder::small_for_tests()
        .seed(7)
        .check_serializability(true)
        .build();
    s.poke_word(WordAddr(0), 5);
    for _ in 0..4 {
        s.add_thread(Box::new(TxScript::counter(WordAddr(0), 3)));
    }
    s
}

fn check_one(chooser: &mut ScheduleChooser) -> Result<(), String> {
    let mut s = contended_counters();
    s.run_explored(chooser, WINDOW, HORIZON)
        .map_err(|e| format!("run error: {e}"))?;
    let errs = s.finish_checks();
    if errs.is_empty() {
        Ok(())
    } else {
        Err(errs.join("; "))
    }
}

fn report_key(r: &ExploreReport) -> (usize, usize, u64, bool) {
    (
        r.schedules_run,
        r.distinct_schedules,
        r.fingerprint,
        r.failure.is_some(),
    )
}

fn main() {
    let quick = std::env::var("LTSE_BENCH_QUICK").is_ok_and(|v| v == "1");
    let iters = harness::iters(if quick { 2 } else { 10 });
    let mut out: Vec<CaseResult> = Vec::new();

    // ---- run cache: cold sweep vs warm sweep ----------------------------
    // The figure-4 sweep at quick scale (90 simulation runs). Cold empties
    // the cache directory first, so every run is simulated and stored; warm
    // reuses the directory the warmup populated, so every run is a hit.
    // Clearing the directory is part of the cold closure — it is orders of
    // magnitude cheaper than the simulations it forces.
    let scale = ExperimentScale::quick();
    let dir = std::env::temp_dir().join(format!("ltse-bench-pipeline-{}", std::process::id()));
    time_case(&mut out, "cache", "sweep_cold", iters, || {
        let _ = std::fs::remove_dir_all(&dir);
        cache::set_cache_dir(&dir).expect("open bench cache dir");
        figure4(&scale).expect("figure4 sweep")
    });
    time_case(&mut out, "cache", "sweep_warm", iters, || {
        cache::set_cache_dir(&dir).expect("open bench cache dir");
        figure4(&scale).expect("figure4 sweep")
    });
    cache::disable_cache();
    let _ = std::fs::remove_dir_all(&dir);
    runner::take_timings(); // the sweeps above filled the timing registry

    // ---- schedule exploration: sequential vs worker pool ----------------
    let budget = if quick { 96 } else { 512 };
    let cfg = ExploreConfig {
        seed: 0xA11CE,
        ..ExploreConfig::with_budget(budget)
    };
    let cpus = harness::detected_cpus();
    let jobs = effective_jobs(None).clamp(2, 8);
    if cpus < 2 {
        eprintln!(
            "note: {cpus} CPU available — explore/jobs_{jobs} cannot beat jobs_1 here \
             (it measures pure pool overhead); run on a multicore host for the speedup"
        );
    }
    // Correctness gate before timing anything: the parallel explorer must
    // produce the identical report.
    let seq = explore(&cfg, |c| check_one(c));
    let par = explore_jobs(&cfg, jobs, check_one);
    assert_eq!(
        report_key(&seq),
        report_key(&par),
        "explore_jobs({jobs}) diverged from sequential explore"
    );
    time_case(&mut out, "explore", "jobs_1", iters, || {
        explore_jobs(&cfg, 1, check_one)
    });
    let name: &'static str = Box::leak(format!("jobs_{jobs}").into_boxed_str());
    time_case(&mut out, "explore", name, iters, || {
        explore_jobs(&cfg, jobs, check_one)
    });

    // ---- JSON ----------------------------------------------------------
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"pipeline\",\n");
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!("  \"cpus\": {cpus},\n"));
    json.push_str(&format!("  \"explore_jobs\": {jobs},\n"));
    json.push_str("  \"cases\": [\n");
    for (i, c) in out.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"group\": \"{}\", \"name\": \"{}\", \"mean_ms\": {:.6}, \"best_ms\": {:.6}, \"iters\": {}}}{}\n",
            c.group,
            c.name,
            c.mean_ms,
            c.best_ms,
            c.iters,
            if i + 1 < out.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n  \"speedups\": {\n");
    let pairs = [
        (
            "cache_warm_vs_cold",
            speedup(&out, "cache", "sweep_cold", "sweep_warm"),
        ),
        ("explore_parallel", speedup(&out, "explore", "jobs_1", name)),
    ];
    for (i, (pname, s)) in pairs.iter().enumerate() {
        json.push_str(&format!(
            "    \"{pname}\": {}{}\n",
            s.map_or("null".to_string(), |v| format!("{v:.3}")),
            if i + 1 < pairs.len() { "," } else { "" }
        ));
    }
    json.push_str("  }\n}\n");

    for (pname, s) in pairs {
        if let Some(s) = s {
            eprintln!("speedup {pname:<32} {s:.2}x");
        }
    }

    match std::env::var("LTSE_BENCH_JSON") {
        Ok(path) if !path.is_empty() => {
            std::fs::write(&path, &json).expect("write LTSE_BENCH_JSON file");
            eprintln!("wrote {path}");
        }
        _ => print!("{json}"),
    }
}
