//! The workload-facing programming model.
//!
//! A workload is a set of [`ThreadProgram`]s, one per simulated thread. The
//! system repeatedly asks each program for its next [`Op`]; the op executes
//! against the simulated memory system with full coherence/TM semantics and
//! its result is delivered through [`ProgCtx::last_value`] at the next
//! `next_op` call. This mirrors how the paper drives GEMS from Simics: the
//! memory model sees a reference stream with explicit transaction markers
//! ("magic" instructions).

use ltse_mem::WordAddr;
use ltse_sim::rng::Xoshiro256StarStar;
use ltse_sim::Cycle;

/// One operation a thread asks the system to perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Load a word; its value arrives in [`ProgCtx::last_value`].
    Read(WordAddr),
    /// Store a word (transactional when inside a transaction: the old value
    /// is logged first, eager version management).
    Write(WordAddr, u64),
    /// Atomic compare-and-swap; `last_value` receives the *old* value (the
    /// CAS succeeded iff `last_value == expected`). Used by the lock
    /// baseline.
    Cas {
        /// Word to update.
        addr: WordAddr,
        /// Expected old value.
        expected: u64,
        /// Value to install on match.
        new: u64,
    },
    /// Atomic fetch-and-add; `last_value` receives the old value.
    FetchAdd(WordAddr, u64),
    /// Compute for the given number of cycles without touching memory.
    Work(u64),
    /// Begin a (closed-nested when already in a transaction) transaction.
    TxBegin,
    /// Begin an open-nested transaction (must already be in a transaction).
    TxBeginOpen,
    /// Commit the innermost transaction.
    TxCommit,
    /// Enter an escape action: subsequent accesses are non-transactional
    /// (no signature insertion, no logging) until [`Op::EscapeEnd`].
    EscapeBegin,
    /// Leave an escape action.
    EscapeEnd,
    /// Mark one unit of work complete (the paper's Table 2 throughput
    /// metric). Free.
    WorkUnitDone,
    /// This thread has finished.
    Done,
}

/// Per-thread context handed to [`ThreadProgram::next_op`].
#[derive(Debug)]
pub struct ProgCtx<'a> {
    /// This thread's id.
    pub thread_id: u32,
    /// Result of the most recent *value-producing* op (a load's value, a
    /// CAS/fetch-add's old value). Ops without results — `Work`, `TxBegin`,
    /// `TxCommit`, escapes, `WorkUnitDone` — leave it unchanged, so a value
    /// read before computing survives until it is used.
    pub last_value: u64,
    /// Current simulated time.
    pub now: Cycle,
    /// This thread's deterministic RNG stream.
    pub rng: &'a mut Xoshiro256StarStar,
}

/// A resumable thread program.
///
/// Programs are state machines: each `next_op` call returns the next
/// operation, and the program advances its internal state. When the
/// enclosing transaction aborts, the system calls
/// [`ThreadProgram::on_tx_abort`]; the program must rewind its state so the
/// *next* `next_op` call re-issues the `TxBegin` of the aborted transaction
/// (the register-checkpoint restore of real hardware).
///
/// Programs must be [`Send`]: a whole configured [`crate::System`] (threads
/// included) crosses OS-thread boundaries when experiment sweeps fan out
/// over the parallel runner (`ltse_sim::parallel`).
pub trait ThreadProgram: Send {
    /// Produce the next operation.
    fn next_op(&mut self, t: &mut ProgCtx) -> Op;

    /// The current transaction aborted (after its log was unrolled). Rewind
    /// to re-issue `TxBegin`.
    fn on_tx_abort(&mut self, t: &mut ProgCtx);

    /// A *partial* abort (paper §3.2): only the innermost nested frame was
    /// unrolled; `remaining_depth` frames are still live. Return `true` if
    /// the program can rewind to re-issue the aborted inner `TxBegin`;
    /// returning `false` (the default) makes the system abort the remaining
    /// frames too and call [`ThreadProgram::on_tx_abort`].
    fn on_partial_abort(&mut self, t: &mut ProgCtx, remaining_depth: usize) -> bool {
        let _ = (t, remaining_depth);
        false
    }
}

/// A program built from a closure, for tests and simple scripts.
///
/// The closure receives `(ctx, abort_flag)` where `abort_flag` is `true`
/// on the first call after an abort.
///
/// ```
/// use logtm_se::{Op, FnProgram, WordAddr};
///
/// let mut hits = 0;
/// let _p = FnProgram::new(move |_t, _aborted| {
///     hits += 1;
///     if hits > 3 { Op::Done } else { Op::Read(WordAddr(0)) }
/// });
/// ```
pub struct FnProgram<F> {
    f: F,
    aborted: bool,
}

impl<F: FnMut(&mut ProgCtx, bool) -> Op + Send> FnProgram<F> {
    /// Wraps a closure as a program.
    pub fn new(f: F) -> Self {
        FnProgram { f, aborted: false }
    }
}

impl<F: FnMut(&mut ProgCtx, bool) -> Op + Send> ThreadProgram for FnProgram<F> {
    fn next_op(&mut self, t: &mut ProgCtx) -> Op {
        let aborted = std::mem::take(&mut self.aborted);
        (self.f)(t, aborted)
    }

    fn on_tx_abort(&mut self, _t: &mut ProgCtx) {
        self.aborted = true;
    }
}

/// One step of a [`TxScript`] transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScriptOp {
    /// Load a word.
    Read(WordAddr),
    /// Store a literal value.
    Write(WordAddr, u64),
    /// Load the word, then store `loaded + delta` as two separate ops — an
    /// increment that is atomic only thanks to the enclosing transaction,
    /// the canonical racy unit for the schedule explorer.
    AddTo(WordAddr, u64),
    /// Atomic fetch-and-add of `delta`.
    FetchAdd(WordAddr, u64),
    /// Compute for the given cycles without touching memory.
    Work(u64),
}

/// A declarative transactional program: a list of transactions, each a
/// sequence of [`ScriptOp`]s. Every transaction is automatically wrapped in
/// `TxBegin`/`TxCommit`, followed by a `WorkUnitDone`; an abort rewinds to
/// the failed transaction's `TxBegin`. Purpose-built for the schedule
/// explorer's differential tests, where workloads must be tiny, restartable,
/// and oblivious to the interleaving.
///
/// ```
/// use logtm_se::{SystemBuilder, TxScript, WordAddr};
///
/// let mut system = SystemBuilder::small_for_tests().seed(1).build();
/// system.add_thread(Box::new(TxScript::counter(WordAddr(0), 5)));
/// system.add_thread(Box::new(TxScript::counter(WordAddr(0), 5)));
/// system.run().expect("run completes");
/// assert_eq!(system.read_word(WordAddr(0)), 10);
/// ```
pub struct TxScript {
    txs: Vec<Vec<ScriptOp>>,
    tx_ix: usize,
    /// 0 = begin; `1..=W` the expanded micro-ops; `W+1` = commit;
    /// `W+2` = work-unit marker (`W` counts `AddTo` twice).
    micro: usize,
}

impl TxScript {
    /// A program running the given transactions in order.
    pub fn new(txs: Vec<Vec<ScriptOp>>) -> Self {
        TxScript {
            txs,
            tx_ix: 0,
            micro: 0,
        }
    }

    /// `iters` transactions, each incrementing `addr` by a read-then-write
    /// pair.
    pub fn counter(addr: WordAddr, iters: usize) -> Self {
        TxScript::new(vec![vec![ScriptOp::AddTo(addr, 1)]; iters])
    }

    fn width(op: ScriptOp) -> usize {
        if matches!(op, ScriptOp::AddTo(..)) {
            2
        } else {
            1
        }
    }
}

impl ThreadProgram for TxScript {
    fn next_op(&mut self, t: &mut ProgCtx) -> Op {
        let Some(ops) = self.txs.get(self.tx_ix) else {
            return Op::Done;
        };
        let total: usize = ops.iter().map(|&o| TxScript::width(o)).sum();
        let step = self.micro;
        self.micro += 1;
        if step == 0 {
            return Op::TxBegin;
        }
        if step == total + 1 {
            return Op::TxCommit;
        }
        if step >= total + 2 {
            self.tx_ix += 1;
            self.micro = 0;
            return Op::WorkUnitDone;
        }
        let mut at = step - 1;
        for &op in ops {
            let w = TxScript::width(op);
            if at < w {
                return match (op, at) {
                    (ScriptOp::Read(a), _) => Op::Read(a),
                    (ScriptOp::Write(a, v), _) => Op::Write(a, v),
                    (ScriptOp::AddTo(a, _), 0) => Op::Read(a),
                    (ScriptOp::AddTo(a, d), _) => Op::Write(a, t.last_value.wrapping_add(d)),
                    (ScriptOp::FetchAdd(a, d), _) => Op::FetchAdd(a, d),
                    (ScriptOp::Work(c), _) => Op::Work(c),
                };
            }
            at -= w;
        }
        unreachable!("micro-step {step} within width {total}")
    }

    fn on_tx_abort(&mut self, _t: &mut ProgCtx) {
        self.micro = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(p: &mut dyn ThreadProgram, last_value: u64) -> Op {
        let mut rng = Xoshiro256StarStar::new(0);
        let mut ctx = ProgCtx {
            thread_id: 0,
            last_value,
            now: Cycle(0),
            rng: &mut rng,
        };
        p.next_op(&mut ctx)
    }

    #[test]
    fn tx_script_counter_emits_the_canonical_sequence() {
        let a = WordAddr(7);
        let mut p = TxScript::counter(a, 2);
        for round in 0..2 {
            assert_eq!(drive(&mut p, 0), Op::TxBegin, "round {round}");
            assert_eq!(drive(&mut p, 0), Op::Read(a));
            assert_eq!(drive(&mut p, 41), Op::Write(a, 42), "uses last_value");
            assert_eq!(drive(&mut p, 0), Op::TxCommit);
            assert_eq!(drive(&mut p, 0), Op::WorkUnitDone);
        }
        assert_eq!(drive(&mut p, 0), Op::Done);
    }

    #[test]
    fn tx_script_abort_rewinds_to_the_same_begin() {
        let a = WordAddr(7);
        let mut p = TxScript::counter(a, 1);
        assert_eq!(drive(&mut p, 0), Op::TxBegin);
        assert_eq!(drive(&mut p, 0), Op::Read(a));
        p.on_tx_abort(&mut ProgCtx {
            thread_id: 0,
            last_value: 0,
            now: Cycle(0),
            rng: &mut Xoshiro256StarStar::new(0),
        });
        assert_eq!(drive(&mut p, 0), Op::TxBegin, "retry from the top");
    }

    #[test]
    fn tx_script_mixed_ops_expand_in_order() {
        let mut p = TxScript::new(vec![vec![
            ScriptOp::Write(WordAddr(1), 5),
            ScriptOp::Work(9),
            ScriptOp::FetchAdd(WordAddr(2), 3),
        ]]);
        assert_eq!(drive(&mut p, 0), Op::TxBegin);
        assert_eq!(drive(&mut p, 0), Op::Write(WordAddr(1), 5));
        assert_eq!(drive(&mut p, 0), Op::Work(9));
        assert_eq!(drive(&mut p, 0), Op::FetchAdd(WordAddr(2), 3));
        assert_eq!(drive(&mut p, 0), Op::TxCommit);
        assert_eq!(drive(&mut p, 0), Op::WorkUnitDone);
        assert_eq!(drive(&mut p, 0), Op::Done);
    }

    #[test]
    fn fn_program_signals_abort_once() {
        let mut p = FnProgram::new(|_t, aborted| if aborted { Op::Done } else { Op::Work(1) });
        let mut rng = Xoshiro256StarStar::new(0);
        let mut ctx = ProgCtx {
            thread_id: 0,
            last_value: 0,
            now: Cycle(0),
            rng: &mut rng,
        };
        assert_eq!(p.next_op(&mut ctx), Op::Work(1));
        p.on_tx_abort(&mut ctx);
        assert_eq!(p.next_op(&mut ctx), Op::Done);
        assert_eq!(p.next_op(&mut ctx), Op::Work(1), "flag consumed");
    }
}
