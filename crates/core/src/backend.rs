//! A common driving surface for transactional-memory backends.
//!
//! The workspace has two independently implemented TMs that execute the
//! same [`ThreadProgram`] workloads: the cycle-level LogTM-SE simulator
//! ([`System`], eager versioning, signatures, deterministic) and the
//! real-concurrency TL2 STM in `ltse-stm` (lazy versioning, lock stripes,
//! OS threads). [`TmBackend`] is the narrow waist both implement, so
//! experiment drivers, differential tests, and benches can configure a
//! workload once and point it at either engine.
//!
//! The trait deliberately covers only the *driving* motions — seed memory,
//! add programs, run, inspect words, collect oracle verdicts — and reports
//! through the least common denominator [`BackendReport`]. Backend-specific
//! riches (the simulator's protocol statistics, the STM's retry counters)
//! stay on the concrete types.

use std::time::Duration;

use ltse_mem::WordAddr;

use crate::{System, ThreadProgram};

/// Backend-agnostic run results: the counters every TM implementation can
/// produce, plus the one timing measure each side natively has.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BackendReport {
    /// Wall-clock duration of the run. For the simulator this is real time
    /// spent simulating (not meaningful as a throughput basis); for real
    /// backends it is the actual execution time.
    pub wall: Duration,
    /// Simulated cycles, when the backend models time (`None` for real
    /// backends, where wall time is the only clock).
    pub sim_cycles: Option<u64>,
    /// Outermost transactional commits.
    pub commits: u64,
    /// Transactional aborts.
    pub aborts: u64,
    /// Work units completed (the paper's Table 2 throughput metric).
    pub work_units: u64,
    /// Threads that ran to completion.
    pub threads_completed: usize,
}

/// A transactional-memory engine that can execute [`ThreadProgram`]s.
///
/// Implementations: [`System`] (the LogTM-SE simulator, backend name
/// `"sim"`) and `ltse_stm::StmSystem` (the TL2 STM, backend name `"stm"`).
///
/// The expected lifecycle is `poke_word`* → `add_thread`* → `run_backend`
/// → (`read_word` | `finish_checks`)*.
pub trait TmBackend {
    /// Short stable identifier (`"sim"`, `"stm"`) for CLI flags and JSON.
    fn backend_name(&self) -> &'static str;

    /// Adds a program; returns its thread id.
    fn add_thread(&mut self, program: Box<dyn ThreadProgram>) -> u32;

    /// Seeds a memory word before the run.
    fn poke_word(&mut self, addr: WordAddr, value: u64);

    /// Reads a memory word (post-run inspection).
    fn read_word(&self, addr: WordAddr) -> u64;

    /// Runs every added program to completion. Errors are rendered to
    /// strings: the two backends fail in structurally different ways, and
    /// callers at this level only route failures upward.
    fn run_backend(&mut self) -> Result<BackendReport, String>;

    /// Oracle verdicts for the finished run (empty when clean or when the
    /// backend was built without checking).
    fn finish_checks(&mut self) -> Vec<String>;
}

impl TmBackend for System {
    fn backend_name(&self) -> &'static str {
        "sim"
    }

    fn add_thread(&mut self, program: Box<dyn ThreadProgram>) -> u32 {
        System::add_thread(self, program)
    }

    fn poke_word(&mut self, addr: WordAddr, value: u64) {
        System::poke_word(self, addr, value);
    }

    fn read_word(&self, addr: WordAddr) -> u64 {
        System::read_word(self, addr)
    }

    fn run_backend(&mut self) -> Result<BackendReport, String> {
        let start = std::time::Instant::now();
        let r = System::run(self).map_err(|e| e.to_string())?;
        Ok(BackendReport {
            wall: start.elapsed(),
            sim_cycles: Some(r.cycles.as_u64()),
            commits: r.tm.commits,
            aborts: r.tm.aborts,
            work_units: r.tm.work_units,
            threads_completed: r.threads_completed,
        })
    }

    fn finish_checks(&mut self) -> Vec<String> {
        System::finish_checks(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SystemBuilder, TxScript};

    #[test]
    fn simulator_drives_through_the_backend_trait() {
        let mut sys = SystemBuilder::small_for_tests()
            .seed(4)
            .check_serializability(true)
            .build();
        let backend: &mut dyn TmBackend = &mut sys;
        assert_eq!(backend.backend_name(), "sim");
        backend.poke_word(WordAddr(0), 3);
        for _ in 0..2 {
            backend.add_thread(Box::new(TxScript::counter(WordAddr(0), 4)));
        }
        let r = backend.run_backend().expect("run completes");
        assert_eq!(r.commits, 8);
        assert_eq!(r.work_units, 8);
        assert_eq!(r.threads_completed, 2);
        assert!(r.sim_cycles.unwrap() > 0);
        assert_eq!(backend.read_word(WordAddr(0)), 11);
        assert!(backend.finish_checks().is_empty());
    }

    #[test]
    fn run_errors_render_to_strings() {
        let mut sys = SystemBuilder::small_for_tests().build();
        let backend: &mut dyn TmBackend = &mut sys;
        let err = backend.run_backend().unwrap_err();
        assert!(!err.is_empty(), "no-thread run must explain itself");
    }
}
