//! # LogTM-SE: Decoupling Hardware Transactional Memory from Caches
//!
//! A from-scratch Rust reproduction of the HPCA-13 (2007) paper by Yen,
//! Bobba, Marty, Moore, Volos, Hill, Swift, and Wood.
//!
//! LogTM-SE is a hardware transactional memory (HTM) whose principal state
//! lives in two software-visible structures — **signatures** for eager
//! conflict detection and a **per-thread undo log** for eager version
//! management — leaving L1 cache arrays untouched and making transactions
//! virtualizable (cache victimization, unbounded open/closed nesting,
//! context switching/migration, paging).
//!
//! This crate composes the workspace's substrates into a runnable simulated
//! CMP (the paper's Table 1 machine by default):
//!
//! * [`SystemBuilder`] / [`System`] — configure and run a simulation.
//! * [`ThreadProgram`] / [`Op`] — how workloads express their memory
//!   accesses, transactions, locks, and computation.
//! * [`RunReport`] — cycles, commits/aborts/stalls, false-positive rates,
//!   victimizations, set sizes: everything the paper's tables chart.
//!
//! Re-exported building blocks: `ltse_sig` (signatures), `ltse_mem` (the
//! memory system), `ltse_tm` (the TM core), `ltse_sim` (kernel).
//!
//! # Quickstart
//!
//! Two threads atomically increment a shared counter 100 times each:
//!
//! ```
//! use logtm_se::{Op, ProgCtx, SystemBuilder, ThreadProgram, WordAddr};
//!
//! struct Incr {
//!     remaining: u32,
//!     step: u8,
//! }
//!
//! impl ThreadProgram for Incr {
//!     fn next_op(&mut self, t: &mut ProgCtx) -> Op {
//!         const COUNTER: WordAddr = WordAddr(0);
//!         match self.step {
//!             0 => {
//!                 if self.remaining == 0 {
//!                     return Op::Done;
//!                 }
//!                 self.step = 1;
//!                 Op::TxBegin
//!             }
//!             1 => {
//!                 self.step = 2;
//!                 Op::Read(COUNTER)
//!             }
//!             2 => {
//!                 self.step = 3;
//!                 Op::Write(COUNTER, t.last_value + 1)
//!             }
//!             _ => {
//!                 self.step = 0;
//!                 self.remaining -= 1;
//!                 Op::TxCommit
//!             }
//!         }
//!     }
//!
//!     fn on_tx_abort(&mut self, _t: &mut ProgCtx) {
//!         self.step = 0; // rewind to re-issue TxBegin
//!     }
//! }
//!
//! let mut system = SystemBuilder::small_for_tests()
//!     .seed(1)
//!     .build();
//! system.add_thread(Box::new(Incr { remaining: 100, step: 0 }));
//! system.add_thread(Box::new(Incr { remaining: 100, step: 0 }));
//! let report = system.run().expect("run completes");
//!
//! assert_eq!(system.read_word(WordAddr(0)), 200, "atomicity held");
//! assert_eq!(report.tm.commits, 200, "every attempt eventually commits");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod builder;
mod program;
mod report;
mod system;

pub use backend::{BackendReport, TmBackend};
pub use builder::SystemBuilder;
pub use program::{FnProgram, Op, ProgCtx, ScriptOp, ThreadProgram, TxScript};
pub use report::RunReport;
pub use system::{RunError, System};

// Re-export the vocabulary types users need.
pub use ltse_mem::{
    AccessKind, Asid, BlockAddr, CacheConfig, CoherenceKind, CoreId, CtxId, LatencyConfig,
    MemConfig, PageId, WordAddr, MAX_CORES,
};
pub use ltse_mem::SerializabilityOracle;
pub use ltse_sig::SignatureKind;
pub use ltse_sim::explore::{
    explore, explore_jobs, ExploreConfig, ExploreReport, Schedule, ScheduleChooser,
};
pub use ltse_sim::obs::{
    AbortCause, CycleBreakdown, DetectPath, ObsReport, StallCause, TxSpan,
};
pub use ltse_sim::{config::SimLimits, Cycle, EventChooser};
pub use ltse_tm::conflict::ContentionPolicy;
pub use ltse_tm::{BackoffKind, ConflictHistory, NestKind, TmConfig};

/// The supporting crates, re-exported for advanced use.
pub mod substrates {
    pub use ltse_mem as mem;
    pub use ltse_sig as sig;
    pub use ltse_sim as sim;
    pub use ltse_tm as tm;
}
