//! Run results.

use ltse_mem::MemStats;
use ltse_sim::obs::ObsReport;
use ltse_sim::Cycle;
use ltse_tm::{OsStats, TmStats};

/// Everything a finished run reports — the raw material for the paper's
/// Figure 4, Tables 2–3, and Result 4.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Total simulated time.
    pub cycles: Cycle,
    /// Simulated time inside the measurement window (equal to `cycles`
    /// unless a warm-up boundary was configured).
    pub measured_cycles: Cycle,
    /// Aggregated transactional statistics (commits, aborts, stalls,
    /// false-positive classification, set sizes, work units).
    pub tm: TmStats,
    /// Memory-system statistics (hits/misses, NACKs, victimizations).
    pub mem: MemStats,
    /// OS statistics (context switches, summary installs, pages moved).
    pub os: OsStats,
    /// Threads that ran to completion.
    pub threads_completed: usize,
    /// Total simulator events dispatched — the denominator for per-event
    /// cost in the scale sweeps (`BENCH_scale.json`).
    pub events_dispatched: u64,
    /// Structured attribution data (stall/abort causes, NACK pairs,
    /// detection paths, per-thread cycle breakdowns, transaction spans).
    /// `None` unless the run enabled
    /// [`crate::SystemBuilder::observe`].
    pub obs: Option<ObsReport>,
}

impl RunReport {
    /// Work units per thousand cycles over the measurement window — the
    /// throughput measure behind the paper's Figure 4 speedups (units of
    /// work per unit time).
    pub fn throughput_per_kcycle(&self) -> f64 {
        if self.measured_cycles == Cycle::ZERO {
            return 0.0;
        }
        self.tm.work_units as f64 * 1000.0 / self.measured_cycles.as_u64() as f64
    }

    /// Transactional victimizations (L1 + L2, exact) — the paper's Result 4.
    pub fn tx_victimizations(&self) -> u64 {
        self.mem.tx_victimizations_exact()
    }

    /// One-line summary for harness output.
    pub fn summary_line(&self) -> String {
        format!(
            "cycles={} units={} commits={} aborts={} stalls={} fp%={} victim={}",
            self.cycles.as_u64(),
            self.tm.work_units,
            self.tm.commits,
            self.tm.aborts,
            self.tm.stalls,
            self.tm
                .false_positive_pct()
                .map(|p| format!("{p:.1}"))
                .unwrap_or_else(|| "n/a".into()),
            self.tx_victimizations(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_zero_cycles() {
        let r = RunReport {
            cycles: Cycle::ZERO,
            measured_cycles: Cycle::ZERO,
            tm: TmStats::new(),
            mem: MemStats::new(),
            os: OsStats::default(),
            threads_completed: 0,
            events_dispatched: 0,
            obs: None,
        };
        assert_eq!(r.throughput_per_kcycle(), 0.0);
    }

    #[test]
    fn throughput_scales_with_units() {
        let mut tm = TmStats::new();
        tm.work_units = 50;
        let r = RunReport {
            cycles: Cycle(10_000),
            measured_cycles: Cycle(10_000),
            tm,
            mem: MemStats::new(),
            os: OsStats::default(),
            threads_completed: 1,
            events_dispatched: 0,
            obs: None,
        };
        assert!((r.throughput_per_kcycle() - 5.0).abs() < 1e-12);
        assert!(r.summary_line().contains("units=50"));
    }
}
