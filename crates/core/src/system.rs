//! The composed, runnable system: cores + memory system + TM units + OS.

use std::collections::{HashMap, VecDeque};

use ltse_mem::{
    AccessKind, AccessOutcome, Asid, BlockAddr, CtxId, MemorySystem, PageId,
    SerializabilityOracle, WordAddr, WORDS_PER_BLOCK,
};
use ltse_sim::config::SimLimits;
use ltse_sim::obs::{AbortCause, DetectPath, ObsCore, ObsReport, StallCause};
use ltse_sim::rng::Xoshiro256StarStar;
use ltse_sim::trace::{TraceBuffer, TraceTag};
use ltse_sim::{Cycle, EventChooser, EventQueue};
use ltse_tm::conflict::Resolution;
use ltse_tm::{NestKind, OsModel, PreAccessCheck, ThreadTmState, TmUnit};

use crate::builder::{PreemptionConfig, SystemBuilder};
use crate::program::{Op, ProgCtx, ThreadProgram};
use crate::report::RunReport;

/// Retries against a summary signature before an in-transaction requester
/// gives up and aborts itself (a descheduled conflicting transaction can
/// only be resolved by the OS running it; aborting frees our isolation in
/// the meantime).
const SUMMARY_STALL_ABORT_LIMIT: u32 = 64;

/// Why a run failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The cycle watchdog fired (likely livelock or an undersized budget).
    CycleLimit {
        /// Time at which the watchdog fired.
        at: Cycle,
        /// Threads not yet finished.
        unfinished: usize,
    },
    /// The event watchdog fired.
    EventLimit,
    /// `run()` was called with no threads.
    NoThreads,
    /// More threads than hardware contexts, but preemption is disabled so
    /// the surplus threads could never run.
    TooManyThreads {
        /// Threads requested.
        threads: usize,
        /// Hardware contexts available.
        ctxs: usize,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::CycleLimit { at, unfinished } => {
                write!(f, "cycle watchdog fired at {at} with {unfinished} threads unfinished")
            }
            RunError::EventLimit => write!(f, "event watchdog fired"),
            RunError::NoThreads => write!(f, "no threads to run"),
            RunError::TooManyThreads { threads, ctxs } => write!(
                f,
                "{threads} threads exceed {ctxs} contexts and preemption is disabled"
            ),
        }
    }
}

impl std::error::Error for RunError {}

/// Deterministic run errors (watchdogs included) are results, not flukes, so
/// sweeps that treat them as data can cache them alongside successes.
impl ltse_sim::cache::CacheValue for RunError {
    fn encode(&self, out: &mut Vec<u8>) {
        match *self {
            RunError::CycleLimit { at, unfinished } => {
                out.push(0);
                at.encode(out);
                unfinished.encode(out);
            }
            RunError::EventLimit => out.push(1),
            RunError::NoThreads => out.push(2),
            RunError::TooManyThreads { threads, ctxs } => {
                out.push(3);
                threads.encode(out);
                ctxs.encode(out);
            }
        }
    }

    fn decode(r: &mut ltse_sim::cache::ByteReader<'_>) -> Option<Self> {
        Some(match r.u8()? {
            0 => RunError::CycleLimit {
                at: Cycle::decode(r)?,
                unfinished: usize::decode(r)?,
            },
            1 => RunError::EventLimit,
            2 => RunError::NoThreads,
            3 => RunError::TooManyThreads {
                threads: usize::decode(r)?,
                ctxs: usize::decode(r)?,
            },
            _ => return None,
        })
    }
}

#[derive(Debug, Clone)]
enum Ev {
    Resume { thread: u32, seq: u64 },
    PreemptTick,
    RelocatePage { asid: Asid, vpage: u64 },
}

struct ThreadSlot {
    program: Box<dyn ThreadProgram>,
    asid: Asid,
    rng: Xoshiro256StarStar,
    ctx: Option<CtxId>,
    last_value: u64,
    pending_op: Option<Op>,
    pending_abort: bool,
    summary_stalls: u32,
    /// Consecutive partial aborts without an inner commit — bounded so the
    /// paper's "repeats this process" loop cannot livelock.
    partial_streak: u32,
    ready_while_parked: bool,
    done: bool,
    seq: u64,
}

/// A configured simulated machine with its threads. Create one with
/// [`SystemBuilder`], add [`ThreadProgram`]s, then [`System::run`].
pub struct System {
    pub(crate) mem: MemorySystem,
    pub(crate) tm: TmUnit,
    pub(crate) os: OsModel,
    limits: SimLimits,
    preemption: Option<PreemptionConfig>,
    threads: Vec<ThreadSlot>,
    queue: EventQueue<Ev>,
    run_queue: VecDeque<u32>,
    /// Per-process virtual→physical page maps (identity unless relocated).
    page_tables: HashMap<Asid, HashMap<u64, u64>>,
    next_free_ppage: u64,
    preempt_rr: usize,
    rng: Xoshiro256StarStar,
    finished: usize,
    events_dispatched: u64,
    /// Reusable buffer for abort undo-walks, so per-abort bookkeeping does
    /// not allocate on the hot path (taken with `mem::take`, put back after
    /// the restore loop).
    undo_scratch: Vec<(WordAddr, [u64; 8])>,
    trace: Option<TraceBuffer>,
    /// Structured observability ([`SystemBuilder::observe`]); `None` = off,
    /// costing a single null check per instrumented event.
    obs: Option<Box<ObsCore>>,
    /// Units of work left before the warm-up boundary (0 = measuring).
    warmup_remaining: u64,
    /// Cycle at which measurement began (warm-up boundary, or 0).
    measure_from: Cycle,
    /// Differential serializability checker
    /// ([`SystemBuilder::check_serializability`]); `None` = checking off.
    oracle: Option<SerializabilityOracle>,
}

/// Packs an address-space id and a *virtual* word address into an oracle
/// key. Virtual addresses are stable across page relocation, so the oracle
/// never sees physical placement.
fn oracle_key(asid: Asid, vaddr: WordAddr) -> u64 {
    ((asid.0 as u64) << 48) | vaddr.as_u64()
}

/// Inverse of [`oracle_key`].
fn oracle_key_parts(key: u64) -> (Asid, WordAddr) {
    (Asid((key >> 48) as u16), WordAddr(key & ((1 << 48) - 1)))
}

impl System {
    pub(crate) fn from_builder(b: &SystemBuilder) -> Self {
        let mem = MemorySystem::new(b.mem);
        let tm = TmUnit::empty_with_smt(b.tm, b.mem.n_ctxs(), b.mem.smt_per_core);
        let os = OsModel::new(b.tm.signature);
        System {
            mem,
            tm,
            os,
            limits: b.limits,
            preemption: b.preemption,
            threads: Vec::new(),
            // Size the calendar window from the context count: bigger
            // systems keep more events in flight over longer latency tails,
            // and a wider window keeps them off the heap fallback. 256-core
            // × 2-SMT lands at 4096 buckets (32 KB of occupancy+ring).
            queue: EventQueue::with_buckets(
                (b.mem.n_ctxs() as usize * 8)
                    .next_power_of_two()
                    .clamp(ltse_sim::DEFAULT_BUCKETS, 4096),
            ),
            run_queue: VecDeque::new(),
            page_tables: HashMap::new(),
            // Relocation targets live far above workload data but below the
            // log region.
            next_free_ppage: 1 << 32,
            preempt_rr: 0,
            rng: Xoshiro256StarStar::new(b.seed),
            finished: 0,
            events_dispatched: 0,
            undo_scratch: Vec::new(),
            trace: (b.trace_capacity > 0).then(|| TraceBuffer::new(b.trace_capacity)),
            obs: b.observe.then(|| Box::new(ObsCore::new(b.obs_span_capacity))),
            warmup_remaining: b.warmup_units,
            measure_from: Cycle::ZERO,
            oracle: b.check_serializability.then(SerializabilityOracle::new),
        }
    }

    #[inline]
    fn trace(&mut self, at: Cycle, tag: TraceTag, detail: impl FnOnce() -> String) {
        if let Some(t) = self.trace.as_mut() {
            t.push(at, tag, detail());
        }
    }

    /// Renders the retained event trace (empty unless
    /// [`SystemBuilder::trace`] enabled tracing).
    pub fn trace_dump(&self) -> String {
        self.trace.as_ref().map(TraceBuffer::dump).unwrap_or_default()
    }

    /// The retained event trace, if tracing is enabled.
    pub fn trace_buffer(&self) -> Option<&TraceBuffer> {
        self.trace.as_ref()
    }

    /// Snapshot of the observability layer's attribution data, if
    /// [`SystemBuilder::observe`] enabled it (also carried on
    /// [`RunReport::obs`]).
    pub fn obs_report(&self) -> Option<ObsReport> {
        self.obs.as_deref().map(ObsCore::report)
    }

    /// Adds a thread (ASID 0) running `program`. Returns its thread id.
    pub fn add_thread(&mut self, program: Box<dyn ThreadProgram>) -> u32 {
        self.add_thread_in_process(program, Asid(0))
    }

    /// Adds a thread in the given address space.
    pub fn add_thread_in_process(&mut self, program: Box<dyn ThreadProgram>, asid: Asid) -> u32 {
        let tid = self.threads.len() as u32;
        let state = ThreadTmState::new(
            tid,
            asid,
            self.tm.config(),
            TmUnit::log_base_for_thread(tid),
            self.rng.next_u64(),
        );
        let ctx = if tid < self.tm.n_ctxs() {
            self.tm.install_thread(tid, state);
            Some(tid)
        } else {
            self.os.park_thread(state);
            self.run_queue.push_back(tid);
            None
        };
        self.threads.push(ThreadSlot {
            program,
            asid,
            rng: self.rng.split(),
            ctx,
            last_value: 0,
            pending_op: None,
            pending_abort: false,
            summary_stalls: 0,
            partial_streak: 0,
            ready_while_parked: false,
            done: false,
            seq: 0,
        });
        tid
    }

    /// Schedules a physical relocation of the page backing virtual page
    /// `vpage` of `asid` at simulated time `at` (paper §4.2 paging).
    pub fn schedule_page_relocation(&mut self, at: Cycle, asid: Asid, vpage: u64) {
        self.queue.push(at, Ev::RelocatePage { asid, vpage });
    }

    /// Reads a word of (ASID-0) memory, honouring page relocations. For
    /// assertions in tests and examples.
    pub fn read_word(&self, addr: WordAddr) -> u64 {
        self.mem.read_word(self.translate(Asid(0), addr))
    }

    /// Reads a word in a specific address space.
    pub fn read_word_in(&self, asid: Asid, addr: WordAddr) -> u64 {
        self.mem.read_word(self.translate(asid, addr))
    }

    /// Pre-loads a word of memory before the run (workload initialization,
    /// no timing).
    pub fn poke_word(&mut self, addr: WordAddr, value: u64) {
        let phys = self.translate(Asid(0), addr);
        self.mem.write_word(phys, value);
        if let Some(o) = self.oracle.as_mut() {
            o.init_word(oracle_key(Asid(0), addr), value);
        }
    }

    /// Runs until every thread is done. Returns the collected report.
    ///
    /// # Errors
    ///
    /// Returns [`RunError`] on watchdog expiry or an unrunnable
    /// configuration (no threads; more threads than contexts without
    /// preemption).
    pub fn run(&mut self) -> Result<RunReport, RunError> {
        self.run_inner(None)
    }

    /// Runs under schedule-exploration control: whenever several events are
    /// nearly simultaneous (within `horizon` cycles of the earliest, up to
    /// `window` candidates), `chooser` picks which fires, via
    /// [`ltse_sim::EventQueue::pop_explored`]. A FIFO chooser reproduces
    /// [`System::run`] exactly; a [`ltse_sim::explore::ScheduleChooser`]
    /// systematically perturbs the interleaving so the explorer can search
    /// for serializability violations. Timing statistics are still collected
    /// but are *not* faithful under reordering — use this for correctness
    /// checking, not performance measurement.
    ///
    /// # Errors
    ///
    /// As for [`System::run`].
    pub fn run_explored(
        &mut self,
        chooser: &mut dyn EventChooser,
        window: usize,
        horizon: Cycle,
    ) -> Result<RunReport, RunError> {
        self.run_inner(Some((chooser, window, horizon)))
    }

    fn run_inner(
        &mut self,
        mut explored: Option<(&mut dyn EventChooser, usize, Cycle)>,
    ) -> Result<RunReport, RunError> {
        if self.threads.is_empty() {
            return Err(RunError::NoThreads);
        }
        if self.threads.len() > self.tm.n_ctxs() as usize && self.preemption.is_none() {
            return Err(RunError::TooManyThreads {
                threads: self.threads.len(),
                ctxs: self.tm.n_ctxs() as usize,
            });
        }

        // Seed each installed thread's first resume with a small random
        // perturbation (the paper's §6.1 methodology).
        for tid in 0..self.threads.len() as u32 {
            if self.threads[tid as usize].ctx.is_some() {
                let jitter = Cycle(self.threads[tid as usize].rng.gen_range(0, 32));
                self.schedule_resume(tid, jitter);
            }
        }
        if let Some(p) = self.preemption {
            self.queue.push(p.quantum, Ev::PreemptTick);
        }

        // Keep the dispatch counter and limits in locals: the per-event loop
        // is the hottest path in the simulator and `self.events_dispatched`
        // is only observable between runs, so batching the writeback (flushed
        // on every exit path) keeps the bookkeeping off the critical path.
        let max_cycles = self.limits.max_cycles;
        let max_events = self.limits.max_events;
        let mut dispatched = self.events_dispatched;
        loop {
            let next = match explored.as_mut() {
                Some((chooser, window, horizon)) => {
                    self.queue.pop_explored(&mut **chooser, *horizon, *window)
                }
                None => self.queue.pop(),
            };
            let Some((now, ev)) = next else { break };
            dispatched += 1;
            if now > max_cycles {
                self.events_dispatched = dispatched;
                return Err(RunError::CycleLimit {
                    at: now,
                    unfinished: self.threads.len() - self.finished,
                });
            }
            if dispatched > max_events {
                self.events_dispatched = dispatched;
                return Err(RunError::EventLimit);
            }
            match ev {
                Ev::Resume { thread, seq } => self.on_resume(now, thread, seq),
                Ev::PreemptTick => self.on_preempt_tick(now),
                Ev::RelocatePage { asid, vpage } => self.do_relocate_page(now, asid, vpage),
            }
            if self.finished == self.threads.len() {
                break;
            }
        }
        self.events_dispatched = dispatched;

        Ok(self.report())
    }

    /// Builds the report from the current state (also valid after `run`).
    pub fn report(&self) -> RunReport {
        RunReport {
            cycles: self.queue.now(),
            measured_cycles: self.queue.now().saturating_sub(self.measure_from),
            tm: self.tm.aggregate_stats(),
            mem: self.mem.stats().clone(),
            os: self.os.stats.clone(),
            threads_completed: self.finished,
            events_dispatched: self.events_dispatched,
            obs: self.obs.as_deref().map(ObsCore::report),
        }
    }

    /// The memory system (for inspection in tests/benches).
    pub fn mem(&self) -> &MemorySystem {
        &self.mem
    }

    /// The TM unit (for inspection in tests/benches).
    pub fn tm(&self) -> &TmUnit {
        &self.tm
    }

    /// The serializability oracle, if [`SystemBuilder::check_serializability`]
    /// enabled one (for inspecting replay counters in tests).
    pub fn oracle(&self) -> Option<&SerializabilityOracle> {
        self.oracle.as_ref()
    }

    /// Runs the end-of-run differential checks and drains every recorded
    /// violation: commit-order replay divergences collected during the run,
    /// leftover per-context transactional state, and a final-state sweep
    /// comparing real memory against the sequential reference over every
    /// touched word. Empty means the run was serializable and clean. Returns
    /// empty (checking nothing) unless the system was built with
    /// [`SystemBuilder::check_serializability`].
    pub fn finish_checks(&mut self) -> Vec<String> {
        let Some(mut oracle) = self.oracle.take() else {
            return Vec::new();
        };
        for ctx in 0..self.tm.n_ctxs() {
            for v in self.tm.post_tx_violations(ctx) {
                oracle.note(v);
            }
        }
        oracle.check_final(|key| {
            let (asid, vaddr) = oracle_key_parts(key);
            self.read_word_in(asid, vaddr)
        });
        let errors = oracle.take_errors();
        self.oracle = Some(oracle);
        errors
    }

    // ------------------------------------------------------------------
    fn translate(&self, asid: Asid, addr: WordAddr) -> WordAddr {
        const WORDS_PER_PAGE: u64 = 512; // 4 KB pages of 8-byte words
        if self.page_tables.is_empty() {
            // Most runs never relocate a page; skip the per-access hash
            // lookup entirely until the first relocation installs a table.
            return addr;
        }
        if TmUnit::is_log_block(addr.block()) {
            return addr; // log regions are identity-mapped
        }
        let Some(table) = self.page_tables.get(&asid) else {
            return addr;
        };
        let vpage = addr.as_u64() / WORDS_PER_PAGE;
        match table.get(&vpage) {
            Some(&ppage) => WordAddr(ppage * WORDS_PER_PAGE + addr.as_u64() % WORDS_PER_PAGE),
            None => addr,
        }
    }

    fn schedule_resume(&mut self, tid: u32, delay: Cycle) {
        let slot = &mut self.threads[tid as usize];
        slot.seq += 1;
        let seq = slot.seq;
        self.queue.push_after(delay, Ev::Resume { thread: tid, seq });
    }

    fn on_resume(&mut self, now: Cycle, tid: u32, seq: u64) {
        let slot = &self.threads[tid as usize];
        if slot.done || seq != slot.seq {
            return; // stale event
        }
        if slot.ctx.is_none() {
            self.threads[tid as usize].ready_while_parked = true;
            return;
        }
        if slot.pending_abort {
            self.threads[tid as usize].pending_abort = false;
            // Only the sticky-disabled overflow drain sets `pending_abort`,
            // so the cause attribution is unambiguous.
            self.do_abort(now, tid, AbortCause::StickyOverflow);
            return;
        }

        let op = match self.threads[tid as usize].pending_op.take() {
            Some(op) => op,
            None => self.next_op(now, tid),
        };
        self.exec_op(now, tid, op);
    }

    fn next_op(&mut self, now: Cycle, tid: u32) -> Op {
        let slot = &mut self.threads[tid as usize];
        let mut ctx = ProgCtx {
            thread_id: tid,
            last_value: slot.last_value,
            now,
            rng: &mut slot.rng,
        };
        slot.program.next_op(&mut ctx)
    }

    fn exec_op(&mut self, now: Cycle, tid: u32, op: Op) {
        let ctx = self.threads[tid as usize].ctx.expect("running thread has a ctx");
        match op {
            Op::Done => {
                self.threads[tid as usize].done = true;
                self.finished += 1;
                // Free the context for parked threads.
                if let Some(state) = self.tm.take_thread(ctx) {
                    self.tm.retire_thread(state);
                }
                self.threads[tid as usize].ctx = None;
                if let Some(next) = self.pop_runnable() {
                    self.wake_onto_ctx(now, next, ctx);
                }
            }
            Op::Work(cycles) => {
                self.schedule_resume(tid, Cycle(cycles.max(1)));
            }
            Op::WorkUnitDone => {
                if let Some(t) = self.tm.thread_mut(ctx) {
                    t.stats.work_units += 1;
                }
                if self.warmup_remaining > 0 {
                    self.warmup_remaining -= 1;
                    if self.warmup_remaining == 0 {
                        // Warm-up boundary: discard everything measured so
                        // far; caches, signatures, and logs stay warm.
                        self.tm.reset_stats();
                        self.mem.reset_stats();
                        if let Some(o) = self.obs.as_deref_mut() {
                            o.reset(now);
                        }
                        self.measure_from = now;
                        self.trace(now, TraceTag::Measure, || "warm-up complete".into());
                    }
                }
                self.schedule_resume(tid, Cycle(1));
            }
            Op::TxBegin | Op::TxBeginOpen => {
                let kind = if matches!(op, Op::TxBeginOpen) {
                    NestKind::Open
                } else {
                    NestKind::Closed
                };
                let was_nested = self.tm.in_tx(ctx);
                // Bounded-retry escalation (`TmConfig::escalate_after`):
                // once the abort streak reaches the threshold, the retry
                // must hold the global serialization token before it can
                // begin. If another thread holds it, poll — the holder is
                // exempt from conflict aborts, so it commits in bounded
                // time and the token frees.
                if !was_nested {
                    let cfg = *self.tm.config();
                    if let Some(limit) = cfg.escalate_after {
                        let streak = self.tm.thread(ctx).map_or(0, |t| t.abort_attempts());
                        if streak >= limit && !self.tm.try_acquire_serial(ctx) {
                            self.trace(now, TraceTag::Begin, || {
                                format!("tid={tid} ctx={ctx} waiting on serialization token")
                            });
                            self.threads[tid as usize].pending_op = Some(op);
                            self.schedule_resume(tid, cfg.stall_retry_cycles);
                            return;
                        }
                    }
                }
                self.trace(now, TraceTag::Begin, || {
                    format!("tid={tid} ctx={ctx} kind={kind:?} nested={was_nested}")
                });
                if !was_nested {
                    if let Some(o) = self.obs.as_deref_mut() {
                        o.on_tx_begin(tid, now);
                    }
                }
                if let Some(o) = self.oracle.as_mut() {
                    o.begin(tid, kind == NestKind::Open);
                }
                let header_addr = self.tm.begin_tx(ctx, kind, now);
                // The header write is a real store into the (private) log.
                let out = self.mem.access(ctx, AccessKind::Store, header_addr.block(), &self.tm);
                let cfg = self.tm.config();
                let mut cost = cfg.begin_cycles + out.latency();
                if was_nested {
                    cost += cfg.sig_save_cycles; // signature save to header
                }
                self.schedule_resume(tid, cost);
            }
            Op::TxCommit => {
                let outcome = self.tm.commit_tx(ctx, now);
                self.trace(now, TraceTag::Commit, || {
                    format!("tid={tid} ctx={ctx} outermost={}", outcome.outermost)
                });
                if outcome.outermost {
                    if let Some(o) = self.obs.as_deref_mut() {
                        o.on_commit(tid, now);
                    }
                }
                self.threads[tid as usize].partial_streak = 0; // progress
                let mut cost = outcome.cycles;
                if outcome.needs_summary_update {
                    let asid = self.threads[tid as usize].asid;
                    cost += self.os.on_outer_commit(&mut self.tm, asid, tid);
                }
                if let Some(o) = self.oracle.as_mut() {
                    o.commit(tid);
                    if outcome.outermost {
                        for v in self.tm.post_tx_violations(ctx) {
                            self.oracle.as_mut().expect("still set").note(v);
                        }
                    }
                }
                self.schedule_resume(tid, cost);
            }
            Op::EscapeBegin => {
                self.tm.escape_begin(ctx);
                self.schedule_resume(tid, Cycle(1));
            }
            Op::EscapeEnd => {
                self.tm.escape_end(ctx);
                self.schedule_resume(tid, Cycle(1));
            }
            Op::Read(addr) => self.exec_mem_op(now, tid, op, AccessKind::Load, addr),
            Op::Write(addr, _) | Op::Cas { addr, .. } | Op::FetchAdd(addr, _) => {
                self.exec_mem_op(now, tid, op, AccessKind::Store, addr)
            }
        }
    }

    fn exec_mem_op(&mut self, now: Cycle, tid: u32, op: Op, kind: AccessKind, vaddr: WordAddr) {
        let ctx = self.threads[tid as usize].ctx.expect("running thread has a ctx");
        let asid = self.threads[tid as usize].asid;
        let paddr = self.translate(asid, vaddr);
        let block = paddr.block();
        let cfg = *self.tm.config();

        // TM-layer checks: summary signature, then same-core siblings.
        match self.tm.pre_access(ctx, kind, block) {
            PreAccessCheck::SummaryConflict => {
                // The paper's §4.1: a summary hit "immediately traps to a
                // conflict handler, since stalling is not sufficient to
                // resolve a conflict with a descheduled thread". The
                // handler aborts the parked conflictor in software.
                let sig_op = match kind {
                    AccessKind::Load => ltse_sig::SigOp::Read,
                    AccessKind::Store => ltse_sig::SigOp::Write,
                };
                if let Some(victim) = self.os.parked_tx_conflictor(asid, sig_op, block.as_u64()) {
                    let cost = self.abort_parked_thread(now, ctx, asid, victim);
                    if let Some(t) = self.tm.thread_mut(ctx) {
                        t.stats.stalls += 1;
                    }
                    if let Some(o) = self.obs.as_deref_mut() {
                        // The trapping thread "stalls" for the handler's
                        // duration plus its own retry.
                        o.on_stall(tid, StallCause::SummaryConflict, cost + cfg.stall_retry_cycles);
                    }
                    let slot = &mut self.threads[tid as usize];
                    slot.summary_stalls = 0;
                    slot.pending_op = Some(op);
                    self.schedule_resume(tid, cost + cfg.stall_retry_cycles);
                    return;
                }
                // No parked conflictor: either the summary hit was a false
                // positive, or the conflicting thread has been rescheduled
                // (its contribution persists until commit). Stall; if that
                // drags on while we hold isolation, abort ourselves.
                let slot = &mut self.threads[tid as usize];
                slot.summary_stalls += 1;
                if self.tm.in_tx(ctx) && slot.summary_stalls > SUMMARY_STALL_ABORT_LIMIT {
                    slot.summary_stalls = 0;
                    self.do_abort(now, tid, AbortCause::SummaryStallLimit);
                } else {
                    slot.pending_op = Some(op);
                    if let Some(t) = self.tm.thread_mut(ctx) {
                        t.stats.stalls += 1;
                    }
                    if let Some(o) = self.obs.as_deref_mut() {
                        o.on_stall(tid, StallCause::SummaryConflict, cfg.stall_retry_cycles);
                    }
                    self.schedule_resume(tid, cfg.stall_retry_cycles);
                }
                return;
            }
            PreAccessCheck::SiblingConflict { nacker } => {
                if let Some(t) = self.tm.thread_mut(ctx) {
                    t.stats.sibling_stalls += 1;
                }
                let resolution = self.tm.on_nack(ctx, Some(nacker));
                if let Some(o) = self.obs.as_deref_mut() {
                    // `on_nack` bumps the TM stall counter for either
                    // resolution; mirror that so the totals reconcile. An
                    // abort costs no stall wait — its time lands in the
                    // aborted bucket instead.
                    let wait = match resolution {
                        Resolution::Stall => cfg.stall_retry_cycles,
                        Resolution::Abort => Cycle::ZERO,
                    };
                    o.on_stall(tid, StallCause::SiblingNack, wait);
                }
                match resolution {
                    Resolution::Stall => {
                        self.threads[tid as usize].pending_op = Some(op);
                        self.schedule_resume(tid, cfg.stall_retry_cycles);
                    }
                    Resolution::Abort => self.do_abort(now, tid, AbortCause::ConflictResolution),
                }
                return;
            }
            PreAccessCheck::Clear => {}
        }

        let outcome = self.mem.access(ctx, kind, block, &self.tm);
        self.drain_overflow_events();

        match outcome {
            AccessOutcome::Nacked { latency, nacker } => {
                // Classify the NACK *before* resolving it: a NACK changes no
                // cache or signature state, so a post-hoc peek is faithful.
                // In-cache means the nacker's L1 still holds the block (a
                // cache-resident HTM would also have seen this conflict);
                // sticky means detection relied on LogTM-SE's decoupled
                // state. The exact-set re-judgement separates true sharing
                // from signature aliasing.
                let (path, judged) = if self.obs.is_some() {
                    let in_cache = self.mem.l1_contains(self.tm.core_of(nacker), block);
                    let sig_op = match kind {
                        AccessKind::Load => ltse_sig::SigOp::Read,
                        AccessKind::Store => ltse_sig::SigOp::Write,
                    };
                    let judged = self
                        .tm
                        .thread(nacker)
                        .and_then(|t| t.judge_conflict(sig_op, block));
                    let path = if in_cache { DetectPath::InCache } else { DetectPath::Sticky };
                    (path, judged)
                } else {
                    (DetectPath::InCache, None)
                };
                let resolution = self.tm.on_nack(ctx, Some(nacker));
                self.trace(now, TraceTag::Nack, || {
                    format!("tid={tid} {kind} {block} by ctx{nacker} -> {resolution:?}")
                });
                if let Some(o) = self.obs.as_deref_mut() {
                    o.on_nack_pair(nacker, ctx, path, judged);
                    let wait = match resolution {
                        Resolution::Stall => latency + cfg.stall_retry_cycles,
                        Resolution::Abort => Cycle::ZERO,
                    };
                    o.on_stall(tid, StallCause::CoherenceNack, wait);
                }
                match resolution {
                    Resolution::Stall => {
                        self.threads[tid as usize].pending_op = Some(op);
                        self.schedule_resume(tid, latency + cfg.stall_retry_cycles);
                    }
                    Resolution::Abort => self.do_abort(now, tid, AbortCause::ConflictResolution),
                }
            }
            AccessOutcome::Done(done) => {
                self.tm.record_access(ctx, kind, block);
                let mut total = done.latency;

                // Eager version management: log the old value before the
                // first transactional overwrite of the block. The log
                // filter and undo records hold *virtual* addresses (paper
                // §2/§4.2 — "its virtual address and previous contents must
                // be written to the log"), so aborts restore the data
                // wherever the page lives by then.
                if kind == AccessKind::Store {
                    let mem = &self.mem;
                    let vblock = vaddr.block();
                    if let Some(log_write) = self.tm.log_store_if_needed(ctx, vblock, || {
                        read_block_words(mem, block)
                    }) {
                        // The log region is thread-private, but a hashed
                        // signature on another core can still alias its
                        // physical address and falsely NACK the log store;
                        // model that as one bounced round trip (the store
                        // retries and succeeds — no true conflict exists).
                        let log_out =
                            self.mem
                                .access(ctx, AccessKind::Store, log_write.addr.block(), &self.tm);
                        total += log_out.latency();
                        if !log_out.is_done() {
                            if let Some(o) = self.obs.as_deref_mut() {
                                o.bump("log_store_nack_bounces");
                            }
                            let retry =
                                self.mem
                                    .access(ctx, AccessKind::Store, log_write.addr.block(), &self.tm);
                            total += cfg.stall_retry_cycles + retry.latency();
                        }
                    }
                }

                // Apply the op's data semantics.
                let value = match op {
                    Op::Read(_) => self.mem.read_word(paddr),
                    Op::Write(_, v) => {
                        self.mem.write_word(paddr, v);
                        0
                    }
                    Op::Cas { expected, new, .. } => {
                        let old = self.mem.read_word(paddr);
                        if old == expected {
                            self.mem.write_word(paddr, new);
                        }
                        old
                    }
                    Op::FetchAdd(_, delta) => {
                        let (old, _) = self.mem.update_word(paddr, |v| v.wrapping_add(delta));
                        old
                    }
                    _ => unreachable!("non-memory op in exec_mem_op"),
                };
                if self.oracle.is_some() {
                    let key = oracle_key(asid, vaddr);
                    let in_escape = self.tm.thread(ctx).is_some_and(|t| t.in_escape());
                    let o = self.oracle.as_mut().expect("checked above");
                    match op {
                        // Escape-action loads may see the enclosing
                        // transaction's uncommitted stores; skip them.
                        Op::Read(_) if !in_escape => o.read(tid, key, value),
                        Op::Read(_) => {}
                        Op::Write(_, v) if in_escape => o.escape_write(tid, key, v),
                        Op::Write(_, v) => o.write(tid, key, v),
                        Op::Cas { expected, new, .. } => {
                            let store = (value == expected).then_some(new);
                            match (in_escape, store) {
                                (true, Some(v)) => o.escape_write(tid, key, v),
                                (true, None) => {}
                                (false, _) => o.rmw(tid, key, value, store),
                            }
                        }
                        Op::FetchAdd(_, delta) => {
                            let newv = value.wrapping_add(delta);
                            if in_escape {
                                o.escape_write(tid, key, newv);
                            } else {
                                o.rmw(tid, key, value, Some(newv));
                            }
                        }
                        _ => unreachable!("non-memory op in exec_mem_op"),
                    }
                }
                let slot = &mut self.threads[tid as usize];
                slot.last_value = value;
                slot.summary_stalls = 0;
                // Tiny per-op perturbation keeps multi-seed runs
                // statistically independent (§6.1).
                let jitter = Cycle(slot.rng.gen_range(0, 2));
                self.schedule_resume(tid, total + jitter);
            }
        }
    }

    /// Aborts `tid`'s transaction: unrolls the log (restoring memory and
    /// charging the restore traffic), rewinds the program, and schedules
    /// the retry after handler cost + randomized backoff.
    ///
    /// For a nested transaction the handler first tries a **partial abort**
    /// (paper §3.2): unroll only the innermost frame, restore the parent's
    /// signature, and retry the inner transaction — if the program supports
    /// resuming there and the streak of fruitless partial aborts is short.
    ///
    /// `cause` attributes the abort in the observability layer; it does not
    /// change the abort's mechanics.
    fn do_abort(&mut self, now: Cycle, tid: u32, cause: AbortCause) {
        let ctx = self.threads[tid as usize].ctx.expect("abort of a running thread");
        let asid = self.threads[tid as usize].asid;
        let depth = self.tm.thread(ctx).map(|t| t.depth()).unwrap_or(0);
        if depth > 1 && self.threads[tid as usize].partial_streak < 3 {
            let partials_before = self
                .tm
                .thread(ctx)
                .map_or(0, |t| t.stats.partial_aborts);
            let mut undo = std::mem::take(&mut self.undo_scratch);
            let handler = self.tm.abort_innermost(ctx, &mut |base, old| {
                undo.push((base, *old));
            });
            if let Some(o) = self.oracle.as_mut() {
                o.abort_innermost(tid);
            }
            let mut traffic = Cycle::ZERO;
            for (vbase, old) in undo.drain(..) {
                let pbase = self.translate(asid, vbase);
                let out = self.mem.access(ctx, AccessKind::Store, pbase.block(), &self.tm);
                traffic += out.latency();
                for (i, w) in old.iter().enumerate() {
                    self.mem.write_word(pbase.offset(i as u64), *w);
                }
            }
            self.undo_scratch = undo;
            self.drain_overflow_events();
            // Delta-counted against the TM stats so the obs metric equals
            // `TmStats::partial_aborts` by construction (this fires whether
            // or not the program can resume mid-nest — the frame is already
            // unrolled either way).
            let partials_after = self
                .tm
                .thread(ctx)
                .map_or(0, |t| t.stats.partial_aborts);
            if let Some(o) = self.obs.as_deref_mut() {
                o.on_partial_abort(
                    tid,
                    partials_after.saturating_sub(partials_before),
                    handler + traffic,
                );
            }
            let cfg = *self.tm.config();
            let slot = &mut self.threads[tid as usize];
            let mut prog_ctx = ProgCtx {
                thread_id: tid,
                last_value: slot.last_value,
                now,
                rng: &mut slot.rng,
            };
            if slot.program.on_partial_abort(&mut prog_ctx, depth - 1) {
                slot.partial_streak += 1;
                slot.pending_op = None;
                // The partial-abort retry waits under the same configured
                // backoff family as a full abort, scaled by the streak of
                // fruitless partials, so repeated inner-frame collisions
                // spread out instead of re-colliding inside a flat window.
                let backoff = ltse_tm::backoff_cycles(
                    cfg.backoff_kind,
                    &mut slot.rng,
                    cfg.backoff_base_cycles,
                    cfg.backoff_cap_shift,
                    slot.partial_streak - 1,
                );
                self.schedule_resume(tid, handler + traffic + backoff);
                return;
            }
            // Program can't resume mid-nest: fall through to a full abort
            // of the remaining frames (the inner one is already unrolled).
        }
        self.threads[tid as usize].partial_streak = 0;
        let (aborts_before, wasted_before) = self
            .tm
            .thread(ctx)
            .map_or((0, 0), |t| (t.stats.aborts, t.stats.wasted_cycles));
        let mut undo = std::mem::take(&mut self.undo_scratch);
        let costs = self.tm.abort_tx(ctx, now, &mut |base, old| {
            undo.push((base, *old));
        });
        self.trace(now, TraceTag::Abort, || {
            format!("tid={tid} restored={} backoff={}", undo.len(), costs.backoff)
        });
        // Apply the restores and charge their memory traffic. The whole
        // abort happens within this event, so isolation is not observable
        // by other threads mid-restore (the paper's handler holds isolation
        // until the walk completes).
        let asid = self.threads[tid as usize].asid;
        let mut traffic = Cycle::ZERO;
        for (vbase, old) in undo.drain(..) {
            // Undo records hold virtual addresses; translate at restore
            // time so a relocated page is restored at its new home (§4.2).
            let pbase = self.translate(asid, vbase);
            let out = self.mem.access(ctx, AccessKind::Store, pbase.block(), &self.tm);
            traffic += out.latency();
            for (i, w) in old.iter().enumerate() {
                self.mem.write_word(pbase.offset(i as u64), *w);
            }
        }
        self.undo_scratch = undo;
        self.drain_overflow_events();
        // Delta-counted so `ObsReport::abort_total` equals `TmStats::aborts`
        // by construction, whatever `abort_tx` decided to charge.
        let (aborts_after, wasted_after) = self
            .tm
            .thread(ctx)
            .map_or((0, 0), |t| (t.stats.aborts, t.stats.wasted_cycles));
        if let Some(o) = self.obs.as_deref_mut() {
            o.on_abort(
                tid,
                now,
                cause,
                aborts_after.saturating_sub(aborts_before),
                wasted_after.saturating_sub(wasted_before),
                costs.handler_cycles + traffic,
            );
        }
        let mut os_cost = Cycle::ZERO;
        if costs.needs_summary_update {
            let asid = self.threads[tid as usize].asid;
            os_cost = self.os.on_outer_abort(&mut self.tm, asid, tid);
        }
        if self.oracle.is_some() {
            self.oracle.as_mut().expect("checked above").abort_all(tid);
            for v in self.tm.post_tx_violations(ctx) {
                self.oracle.as_mut().expect("checked above").note(v);
            }
        }
        let slot = &mut self.threads[tid as usize];
        slot.pending_op = None;
        let mut prog_ctx = ProgCtx {
            thread_id: tid,
            last_value: slot.last_value,
            now,
            rng: &mut slot.rng,
        };
        slot.program.on_tx_abort(&mut prog_ctx);
        self.schedule_resume(tid, costs.handler_cycles + traffic + costs.backoff + os_cost);
    }

    /// Software abort of a *parked* thread's transaction (the summary-
    /// signature trap handler's escape valve, paper §4.1). The handler runs
    /// on the trapping thread's core, so the restore traffic is charged to
    /// `handler_ctx`.
    fn abort_parked_thread(
        &mut self,
        now: Cycle,
        handler_ctx: CtxId,
        asid: Asid,
        victim: u32,
    ) -> Cycle {
        let mut undo = std::mem::take(&mut self.undo_scratch);
        let mut cost = self
            .os
            .abort_parked(&mut self.tm, asid, victim, now, &mut |base, old| {
                undo.push((base, *old));
            });
        for (vbase, old) in undo.drain(..) {
            let pbase = self.translate(asid, vbase);
            let out = self
                .mem
                .access(handler_ctx, AccessKind::Store, pbase.block(), &self.tm);
            cost += out.latency();
            for (i, w) in old.iter().enumerate() {
                self.mem.write_word(pbase.offset(i as u64), *w);
            }
        }
        self.undo_scratch = undo;
        self.drain_overflow_events();
        if let Some(o) = self.obs.as_deref_mut() {
            // `OsLayer::abort_parked` asserts the victim is in a transaction
            // and unrolls it exactly once, so the count is 1 by contract.
            // The victim's wasted cycles live inside the OS-held state and
            // are not reachable here; the handler + restore time is charged
            // to its log-walk bucket instead.
            o.on_abort(victim, now, AbortCause::ParkedBySummaryHandler, 1, 0, cost);
        }
        if let Some(o) = self.oracle.as_mut() {
            o.abort_all(victim);
        }
        // Rewind the victim's program so it re-issues TxBegin when it is
        // next scheduled.
        let slot = &mut self.threads[victim as usize];
        slot.pending_op = None;
        slot.pending_abort = false;
        let mut prog_ctx = ProgCtx {
            thread_id: victim,
            last_value: slot.last_value,
            now,
            rng: &mut slot.rng,
        };
        slot.program.on_tx_abort(&mut prog_ctx);
        cost
    }

    /// With sticky states disabled (ablation A2), evictions of
    /// transactional blocks silently lose conflict coverage; the affected
    /// transactions must conservatively abort, like cache-resident HTMs on
    /// overflow.
    fn drain_overflow_events(&mut self) {
        for ev in self.mem.take_overflow_events() {
            for ctx in 0..self.tm.n_ctxs() {
                if self.tm.core_of(ctx) != ev.core {
                    continue;
                }
                let Some(t) = self.tm.thread(ctx) else { continue };
                if t.covers_hw(ev.block) {
                    let tid = t.thread_id;
                    if !self.threads[tid as usize].done {
                        if !self.threads[tid as usize].pending_abort {
                            if let Some(o) = self.obs.as_deref_mut() {
                                o.bump("overflow_coverage_losses");
                            }
                        }
                        self.threads[tid as usize].pending_abort = true;
                        // Force a prompt wake-up to process the abort.
                        self.schedule_resume(tid, Cycle(1));
                    }
                }
            }
        }
    }

    fn pop_runnable(&mut self) -> Option<u32> {
        while let Some(tid) = self.run_queue.pop_front() {
            if !self.threads[tid as usize].done {
                return Some(tid);
            }
        }
        None
    }

    fn wake_onto_ctx(&mut self, _now: Cycle, tid: u32, ctx: CtxId) {
        let asid = self.threads[tid as usize].asid;
        let cost = self.os.reschedule(&mut self.tm, asid, tid, ctx);
        let slot = &mut self.threads[tid as usize];
        slot.ctx = Some(ctx);
        // Whether a resume landed while parked or the thread never started,
        // it needs a kick; the reschedule cost delays it either way.
        slot.ready_while_parked = false;
        self.schedule_resume(tid, cost);
    }

    fn on_preempt_tick(&mut self, now: Cycle) {
        let Some(p) = self.preemption else { return };
        if self.finished < self.threads.len() {
            self.queue.push_after(p.quantum, Ev::PreemptTick);
        }

        // Only preempt when someone is waiting for a context.
        if self.run_queue.iter().all(|&t| self.threads[t as usize].done) {
            return;
        }
        let n_ctxs = self.tm.n_ctxs() as usize;
        for probe in 0..n_ctxs {
            let ctx = ((self.preempt_rr + probe) % n_ctxs) as CtxId;
            let Some(t) = self.tm.thread(ctx) else { continue };
            if p.defer_in_tx && t.in_tx() {
                continue; // preemption-deferral (paper §4.1, [29])
            }
            let victim_tid = t.thread_id;
            if self.threads[victim_tid as usize].done {
                continue;
            }
            self.preempt_rr = (ctx as usize + 1) % n_ctxs;
            // Deschedule the victim...
            self.trace(now, TraceTag::Preempt, || format!("tid={victim_tid} off ctx{ctx}"));
            if let Some(o) = self.obs.as_deref_mut() {
                o.bump("preemptions");
            }
            let _cost = self.os.deschedule(&mut self.tm, ctx);
            self.threads[victim_tid as usize].ctx = None;
            self.run_queue.push_back(victim_tid);
            // ...and give the context to the next waiter.
            if let Some(next) = self.pop_runnable() {
                self.wake_onto_ctx(now, next, ctx);
            }
            return;
        }
    }

    fn do_relocate_page(&mut self, now: Cycle, asid: Asid, vpage: u64) {
        self.trace(now, TraceTag::PageMove, || format!("{asid} vpage={vpage}"));
        if let Some(o) = self.obs.as_deref_mut() {
            o.bump("page_moves");
        }
        const WORDS_PER_PAGE: u64 = 512;
        let table = self.page_tables.entry(asid).or_default();
        let old_ppage = table.get(&vpage).copied().unwrap_or(vpage);
        let new_ppage = self.next_free_ppage;
        self.next_free_ppage += 1;
        table.insert(vpage, new_ppage);
        // Copy the data to its new physical home.
        for w in 0..WORDS_PER_PAGE {
            let v = self.mem.read_word(WordAddr(old_ppage * WORDS_PER_PAGE + w));
            self.mem.write_word(WordAddr(new_ppage * WORDS_PER_PAGE + w), v);
        }
        // Physical pages and signature pages are both 4 KB = 64 blocks.
        let old_first_block = old_ppage * WORDS_PER_PAGE / WORDS_PER_BLOCK;
        let new_first_block = new_ppage * WORDS_PER_PAGE / WORDS_PER_BLOCK;
        self.os.relocate_page(
            &mut self.tm,
            asid,
            PageId(old_first_block / ltse_mem::BLOCKS_PER_PAGE),
            PageId(new_first_block / ltse_mem::BLOCKS_PER_PAGE),
        );
        // OS cache shoot-down of the old frame, and conservative directory
        // invalidation of the new one: rehashed signatures may cover the
        // new physical blocks, so their first access must broadcast
        // signature checks instead of being granted silent exclusivity.
        for i in 0..ltse_mem::BLOCKS_PER_PAGE {
            let old_block = BlockAddr(old_first_block + i);
            self.mem.invalidate_block_everywhere(old_block);
            let new_block = BlockAddr(new_first_block + i);
            let covered = (0..self.mem.config().n_cores).any(|c| {
                use ltse_mem::ConflictOracle;
                self.tm.block_is_transactional_hw(c, new_block)
            });
            if covered {
                self.mem.mark_block_lost(new_block);
            }
        }
    }
}

fn read_block_words(mem: &MemorySystem, block: BlockAddr) -> [u64; 8] {
    let base = block.first_word();
    std::array::from_fn(|i| mem.read_word(base.offset(i as u64)))
}

// A configured System (threads included) must be able to cross OS threads:
// the parallel experiment runner builds and runs whole systems on pool
// workers. Compile-time check so a future non-Send field fails here, with
// context, rather than deep inside a sweep.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<System>();
    assert_send::<SystemBuilder>();
    assert_send::<RunError>();
    assert_send::<Box<dyn ThreadProgram>>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SystemBuilder;
    use crate::program::FnProgram;
    use ltse_sig::SignatureKind;

    /// A counter-increment program: `iters` transactions of
    /// read-modify-write on `addr`, marking a work unit per commit.
    struct Counter {
        addr: WordAddr,
        iters: u32,
        step: u8,
    }

    impl Counter {
        fn new(addr: WordAddr, iters: u32) -> Self {
            Counter {
                addr,
                iters,
                step: 0,
            }
        }
    }

    impl ThreadProgram for Counter {
        fn next_op(&mut self, t: &mut ProgCtx) -> Op {
            match self.step {
                0 => {
                    if self.iters == 0 {
                        return Op::Done;
                    }
                    self.step = 1;
                    Op::TxBegin
                }
                1 => {
                    self.step = 2;
                    Op::Read(self.addr)
                }
                2 => {
                    self.step = 3;
                    Op::Write(self.addr, t.last_value + 1)
                }
                3 => {
                    self.step = 4;
                    Op::TxCommit
                }
                _ => {
                    self.step = 0;
                    self.iters -= 1;
                    Op::WorkUnitDone
                }
            }
        }

        fn on_tx_abort(&mut self, _t: &mut ProgCtx) {
            self.step = 0;
        }
    }

    fn small(kind: SignatureKind, seed: u64) -> System {
        SystemBuilder::small_for_tests().signature(kind).seed(seed).build()
    }

    #[test]
    fn single_thread_counts_correctly() {
        let mut s = small(SignatureKind::Perfect, 1);
        s.add_thread(Box::new(Counter::new(WordAddr(0), 50)));
        let r = s.run().unwrap();
        assert_eq!(s.read_word(WordAddr(0)), 50);
        assert_eq!(r.tm.commits, 50);
        assert_eq!(r.tm.aborts, 0, "no contention, no aborts");
        assert_eq!(r.tm.work_units, 50);
        assert!(r.cycles > Cycle::ZERO);
    }

    #[test]
    fn contended_counter_is_atomic() {
        for kind in [
            SignatureKind::Perfect,
            SignatureKind::paper_bs_64(),
            SignatureKind::paper_dbs_2kb(),
        ] {
            let mut s = small(kind, 7);
            for _ in 0..4 {
                s.add_thread(Box::new(Counter::new(WordAddr(0), 25)));
            }
            let r = s.run().unwrap();
            assert_eq!(s.read_word(WordAddr(0)), 100, "{kind}: atomicity");
            assert_eq!(r.tm.commits, 100, "{kind}");
            assert!(r.tm.stalls > 0, "{kind}: contention must cause stalls");
        }
    }

    #[test]
    fn aborted_transactions_leave_no_trace() {
        // Heavy same-word contention: every abort must restore the old
        // value, so the final count equals the committed increments exactly.
        let mut s = small(SignatureKind::Perfect, 3);
        for _ in 0..4 {
            s.add_thread(Box::new(Counter::new(WordAddr(0), 10)));
        }
        let r = s.run().unwrap();
        assert_eq!(s.read_word(WordAddr(0)), 40);
        assert_eq!(r.tm.commits, 40);
    }

    #[test]
    fn obs_off_by_default_and_report_carries_none() {
        let mut s = small(SignatureKind::Perfect, 1);
        s.add_thread(Box::new(Counter::new(WordAddr(0), 5)));
        let r = s.run().unwrap();
        assert!(r.obs.is_none());
        assert!(s.obs_report().is_none());
    }

    /// The heart of the observability contract: every cause-attributed
    /// counter must sum to the corresponding aggregate TM statistic, under
    /// contention, for exact and aliasing signatures alike.
    #[test]
    fn obs_attribution_reconciles_with_tm_stats() {
        for kind in [
            SignatureKind::Perfect,
            SignatureKind::paper_bs_64(),
            SignatureKind::paper_dbs_2kb(),
        ] {
            let mut s = SystemBuilder::small_for_tests()
                .signature(kind)
                .seed(7)
                .observe(true)
                .build();
            for _ in 0..4 {
                s.add_thread(Box::new(Counter::new(WordAddr(0), 25)));
            }
            let r = s.run().unwrap();
            let o = r.obs.as_ref().expect("observe(true) fills the report");
            assert_eq!(o.stall_total(), r.tm.stalls, "{kind}: stall causes");
            assert_eq!(o.stalls_sibling, r.tm.sibling_stalls, "{kind}: sibling split");
            assert_eq!(o.abort_total(), r.tm.aborts, "{kind}: abort causes");
            assert_eq!(
                o.metrics.get("partial_aborts"),
                r.tm.partial_aborts,
                "{kind}: partial aborts"
            );
            assert_eq!(
                o.spans_committed, r.tm.commits,
                "{kind}: one committed span per commit"
            );
            // Every classified NACK carries exactly one detection path,
            // one judgement outcome, and one (nacker, requester) pair.
            let judged =
                o.nacks_judged_true + o.nacks_judged_false + o.metrics.get("nacks_unjudged");
            assert_eq!(o.nack_detect_total(), judged, "{kind}: judgement total");
            let paired: u64 = o.nack_pairs.iter().map(|&(_, _, n)| n).sum();
            assert_eq!(o.nack_detect_total(), paired, "{kind}: pair total");
            // Contention on one word through exact sets is all true sharing.
            if kind == SignatureKind::Perfect {
                assert_eq!(o.nacks_judged_false, 0, "perfect sets cannot alias");
            }
            assert!(r.tm.stalls > 0, "{kind}: the workload must contend");
        }
    }

    #[test]
    fn obs_reconciles_across_warmup_boundary() {
        let mut s = SystemBuilder::small_for_tests()
            .signature(SignatureKind::paper_bs_2kb())
            .seed(11)
            .observe(true)
            .warmup_units(20)
            .build();
        for _ in 0..4 {
            s.add_thread(Box::new(Counter::new(WordAddr(0), 25)));
        }
        let r = s.run().unwrap();
        let o = r.obs.as_ref().unwrap();
        // The warm-up reset zeroes both sides at the same instant, so the
        // post-warmup totals still reconcile — and the measured window saw
        // fewer commits than the whole run.
        assert_eq!(o.stall_total(), r.tm.stalls);
        assert_eq!(o.abort_total(), r.tm.aborts);
        assert_eq!(o.spans_committed, r.tm.commits);
        assert!(r.tm.commits < 100, "warm-up discarded some commits");
        assert_eq!(s.read_word(WordAddr(0)), 100, "warm-up is observational");
    }

    #[test]
    fn obs_cycle_breakdown_is_sane() {
        let mut s = SystemBuilder::small_for_tests()
            .signature(SignatureKind::Perfect)
            .seed(3)
            .observe(true)
            .build();
        for _ in 0..4 {
            s.add_thread(Box::new(Counter::new(WordAddr(0), 25)));
        }
        let r = s.run().unwrap();
        let o = r.obs.as_ref().unwrap();
        let total = o.cycles_total();
        assert!(total.useful > 0, "committed work accrues useful cycles");
        assert!(total.stalled > 0, "contention accrues stall waits");
        assert_eq!(o.per_thread.len(), 4);
        // Spans are per-transaction: committed ones outnumber everything
        // else here, and each stays within the run.
        assert_eq!(o.spans_committed + o.spans_aborted, o.spans.len() as u64 + o.spans_dropped);
        for sp in &o.spans {
            assert!(sp.end >= sp.begin);
            assert!(sp.end <= r.cycles);
        }
    }

    #[test]
    fn obs_identical_run_is_deterministic() {
        let run = |seed| {
            let mut s = SystemBuilder::small_for_tests()
                .signature(SignatureKind::paper_bs_64())
                .seed(seed)
                .observe(true)
                .build();
            for _ in 0..4 {
                s.add_thread(Box::new(Counter::new(WordAddr(0), 20)));
            }
            s.run().unwrap().obs.unwrap()
        };
        assert_eq!(run(42), run(42), "obs must not perturb determinism");
    }

    #[test]
    fn obs_is_purely_observational() {
        // Toggling the layer must not change the simulation itself.
        let run = |observe: bool| {
            let mut s = SystemBuilder::small_for_tests()
                .signature(SignatureKind::paper_bs_2kb())
                .seed(9)
                .observe(observe)
                .build();
            for _ in 0..4 {
                s.add_thread(Box::new(Counter::new(WordAddr(0), 20)));
            }
            let r = s.run().unwrap();
            (
                r.cycles,
                r.tm.commits,
                r.tm.aborts,
                r.tm.stalls,
                r.mem.messages.get(),
                r.mem.nacks.get(),
            )
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut s = small(SignatureKind::paper_bs_2kb(), seed);
            for _ in 0..4 {
                s.add_thread(Box::new(Counter::new(WordAddr(0), 20)));
            }
            let r = s.run().unwrap();
            (r.cycles, r.tm.commits, r.tm.aborts, r.tm.stalls)
        };
        assert_eq!(run(42), run(42));
        // Different seeds perturb the interleaving (almost surely different
        // cycle counts).
        assert_ne!(run(1).0, run(2).0);
    }

    #[test]
    fn no_threads_is_an_error() {
        let mut s = small(SignatureKind::Perfect, 1);
        assert!(matches!(s.run(), Err(RunError::NoThreads)));
    }

    #[test]
    fn too_many_threads_without_preemption_is_an_error() {
        let mut s = small(SignatureKind::Perfect, 1);
        for _ in 0..9 {
            // small_for_tests has 8 contexts
            s.add_thread(Box::new(Counter::new(WordAddr(0), 1)));
        }
        assert!(matches!(s.run(), Err(RunError::TooManyThreads { .. })));
    }

    #[test]
    fn work_op_advances_time_only() {
        let mut s = small(SignatureKind::Perfect, 1);
        let mut emitted = 0;
        s.add_thread(Box::new(FnProgram::new(move |_t, _| {
            emitted += 1;
            match emitted {
                1 => Op::Work(1000),
                _ => Op::Done,
            }
        })));
        let r = s.run().unwrap();
        assert!(r.cycles >= Cycle(1000));
        assert_eq!(r.mem.l1_hits.get() + r.mem.l1_misses.get(), 0);
    }

    #[test]
    fn escape_actions_do_not_isolate() {
        // Thread 0 writes block X inside an escape action within its tx;
        // thread 1 must be able to write it concurrently (no NACK), so the
        // run completes without thread 0 committing first.
        let mut s = small(SignatureKind::Perfect, 5);
        let mut step0 = 0;
        s.add_thread(Box::new(FnProgram::new(move |_t, aborted| {
            if aborted {
                step0 = 0;
            }
            step0 += 1;
            match step0 {
                1 => Op::TxBegin,
                2 => Op::EscapeBegin,
                3 => Op::Write(WordAddr(512), 1),
                4 => Op::EscapeEnd,
                5 => Op::Work(5000), // hold the tx open a long time
                6 => Op::TxCommit,
                _ => Op::Done,
            }
        })));
        let mut step1 = 0;
        s.add_thread(Box::new(FnProgram::new(move |_t, _| {
            step1 += 1;
            match step1 {
                1 => Op::Work(200), // let thread 0 get going
                2 => Op::Write(WordAddr(512), 2),
                _ => Op::Done,
            }
        })));
        let r = s.run().unwrap();
        assert_eq!(r.tm.escapes, 1);
        assert_eq!(r.tm.aborts, 0, "escape writes are not isolated");
    }

    #[test]
    fn preemption_round_robins_threads_over_contexts() {
        let mut s = SystemBuilder::small_for_tests()
            .seed(9)
            .preemption(Cycle(2_000), true)
            .build();
        // 12 threads over 8 contexts.
        for _ in 0..12 {
            s.add_thread(Box::new(Counter::new(WordAddr(0), 10)));
        }
        let r = s.run().unwrap();
        assert_eq!(s.read_word(WordAddr(0)), 120);
        assert_eq!(r.tm.commits, 120);
        assert!(r.os.deschedules > 0, "preemption happened");
        assert_eq!(r.threads_completed, 12);
    }

    #[test]
    fn preemption_mid_transaction_maintains_isolation() {
        // No deferral: threads get descheduled inside transactions, so
        // summary signatures must carry their isolation.
        let mut s = SystemBuilder::small_for_tests()
            .seed(11)
            .preemption(Cycle(300), false)
            .build();
        for _ in 0..10 {
            s.add_thread(Box::new(Counter::new(WordAddr(0), 8)));
        }
        let r = s.run().unwrap();
        assert_eq!(s.read_word(WordAddr(0)), 80, "atomicity across switches");
        assert_eq!(r.tm.commits, 80);
        assert!(r.os.tx_deschedules > 0, "some switch hit a transaction");
    }

    #[test]
    fn page_relocation_mid_run_preserves_isolation_and_data() {
        let mut s = small(SignatureKind::paper_bs_2kb(), 13);
        for _ in 0..4 {
            s.add_thread(Box::new(Counter::new(WordAddr(3), 30)));
        }
        // Relocate the page containing word 3 (vpage 0) mid-run, twice.
        s.schedule_page_relocation(Cycle(400), Asid(0), 0);
        s.schedule_page_relocation(Cycle(1_200), Asid(0), 0);
        let r = s.run().unwrap();
        assert_eq!(s.read_word(WordAddr(3)), 120, "data + atomicity survive");
        assert_eq!(r.tm.commits, 120);
        assert_eq!(r.os.pages_relocated, 2);
        assert!(r.cycles > Cycle(1_200), "run spanned both relocations");
    }

    /// Always picks the earliest event: must reproduce `run()` exactly.
    struct FifoChooser;
    impl EventChooser for FifoChooser {
        fn choose(&mut self, _n: usize) -> usize {
            0
        }
    }

    #[test]
    fn run_explored_with_fifo_chooser_matches_run() {
        let run = |explored: bool| {
            let mut s = small(SignatureKind::paper_bs_2kb(), 42);
            for _ in 0..4 {
                s.add_thread(Box::new(Counter::new(WordAddr(0), 10)));
            }
            let r = if explored {
                s.run_explored(&mut FifoChooser, 4, Cycle(4)).unwrap()
            } else {
                s.run().unwrap()
            };
            (r.cycles, r.tm.commits, r.tm.aborts, s.read_word(WordAddr(0)))
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn oracle_passes_a_clean_contended_run() {
        let mut s = SystemBuilder::small_for_tests()
            .seed(3)
            .check_serializability(true)
            .build();
        for _ in 0..4 {
            s.add_thread(Box::new(Counter::new(WordAddr(0), 10)));
        }
        let r = s.run().unwrap();
        assert!(r.tm.aborts > 0, "this seed is known to abort");
        let errs = s.finish_checks();
        assert!(errs.is_empty(), "{errs:?}");
        let o = s.oracle().expect("oracle attached");
        assert_eq!(o.committed_txs(), 40);
        assert!(o.checked_reads() >= 40);
    }

    /// Two-word transactions taken in opposite orders: conflicts form a
    /// cycle, so some transaction aborts *after* its first store was logged —
    /// exactly the state in which `fault_skip_one_undo` corrupts memory.
    fn opposite_order_workload(s: &mut System) {
        use crate::program::{ScriptOp, TxScript};
        let (a, b) = (WordAddr(0), WordAddr(8)); // distinct blocks
        for t in 0..4 {
            let ops = if t % 2 == 0 {
                vec![ScriptOp::AddTo(a, 1), ScriptOp::AddTo(b, 1)]
            } else {
                vec![ScriptOp::AddTo(b, 1), ScriptOp::AddTo(a, 1)]
            };
            s.add_thread(Box::new(TxScript::new(vec![ops; 10])));
        }
    }

    #[test]
    fn oracle_catches_the_injected_undo_fault() {
        // Same machine and workload, but the abort handler silently skips
        // one undo record: memory diverges from the serial replay and the
        // oracle must say so even though the run itself "succeeds".
        let mut s = SystemBuilder::small_for_tests()
            .seed(3)
            .check_serializability(true)
            .fault_skip_one_undo(true)
            .build();
        opposite_order_workload(&mut s);
        let _ = s.run();
        let errs = s.finish_checks();
        assert!(!errs.is_empty(), "the skipped undo record must be detected");
    }

    #[test]
    fn oracle_passes_the_opposite_order_workload_without_the_fault() {
        let mut s = SystemBuilder::small_for_tests()
            .seed(3)
            .check_serializability(true)
            .build();
        opposite_order_workload(&mut s);
        let r = s.run().unwrap();
        assert!(r.tm.aborts > 0, "the cycle must force aborts");
        let errs = s.finish_checks();
        assert!(errs.is_empty(), "{errs:?}");
    }

    #[test]
    fn oracle_ignores_escape_action_effects_correctly() {
        // The escape-action scenario from `escape_actions_do_not_isolate`,
        // with checking on: escape writes are immediate and survive, and the
        // oracle must not flag the run.
        let mut s = SystemBuilder::small_for_tests()
            .seed(5)
            .check_serializability(true)
            .build();
        let mut step0 = 0;
        s.add_thread(Box::new(FnProgram::new(move |_t, aborted| {
            if aborted {
                step0 = 0;
            }
            step0 += 1;
            match step0 {
                1 => Op::TxBegin,
                2 => Op::EscapeBegin,
                3 => Op::Write(WordAddr(512), 1),
                4 => Op::EscapeEnd,
                5 => Op::Work(5000),
                6 => Op::TxCommit,
                _ => Op::Done,
            }
        })));
        let mut step1 = 0;
        s.add_thread(Box::new(FnProgram::new(move |_t, _| {
            step1 += 1;
            match step1 {
                1 => Op::Work(200),
                2 => Op::Write(WordAddr(512), 2),
                _ => Op::Done,
            }
        })));
        s.run().unwrap();
        let errs = s.finish_checks();
        assert!(errs.is_empty(), "{errs:?}");
    }

    #[test]
    fn report_before_run_is_empty() {
        let s = small(SignatureKind::Perfect, 1);
        let r = s.report();
        assert_eq!(r.tm.commits, 0);
        assert_eq!(r.cycles, Cycle::ZERO);
    }
}
