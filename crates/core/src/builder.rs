//! Configuring a [`System`].

use ltse_mem::{CoherenceKind, MemConfig};
use ltse_sig::SignatureKind;
use ltse_sim::config::SimLimits;
use ltse_sim::Cycle;
use ltse_tm::conflict::ContentionPolicy;
use ltse_tm::{BackoffKind, TmConfig};

use crate::system::System;

/// Preemption-timer configuration for the context-switch experiments
/// (paper §4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PreemptionConfig {
    /// Scheduling quantum.
    pub quantum: Cycle,
    /// Defer preempting a thread that is inside a transaction (the paper's
    /// preemption-control mechanisms, citation \[29\]).
    pub defer_in_tx: bool,
}

/// Builder for a [`System`]. Defaults to the paper's Table 1 machine with
/// perfect signatures.
///
/// ```
/// use logtm_se::{SystemBuilder, SignatureKind};
///
/// let system = SystemBuilder::paper_default()
///     .signature(SignatureKind::paper_bs_2kb())
///     .seed(42)
///     .build();
/// assert_eq!(system.tm().n_ctxs(), 32); // 16 cores × 2-way SMT
/// ```
#[derive(Debug, Clone)]
pub struct SystemBuilder {
    pub(crate) mem: MemConfig,
    pub(crate) tm: TmConfig,
    pub(crate) limits: SimLimits,
    pub(crate) seed: u64,
    pub(crate) preemption: Option<PreemptionConfig>,
    pub(crate) trace_capacity: usize,
    pub(crate) warmup_units: u64,
    pub(crate) check_serializability: bool,
    pub(crate) observe: bool,
    pub(crate) obs_span_capacity: usize,
}

impl SystemBuilder {
    /// The paper's baseline CMP (Table 1) with perfect signatures.
    pub fn paper_default() -> Self {
        SystemBuilder {
            mem: MemConfig::paper_cmp(),
            tm: TmConfig::default_with(SignatureKind::Perfect),
            limits: SimLimits::default(),
            seed: 0,
            preemption: None,
            trace_capacity: 0,
            warmup_units: 0,
            check_serializability: false,
            observe: false,
            obs_span_capacity: 4096,
        }
    }

    /// A small, fast machine for unit tests (4 cores × 2 SMT, tiny caches,
    /// uniform low latencies, tight watchdogs).
    pub fn small_for_tests() -> Self {
        SystemBuilder {
            mem: MemConfig::small_for_tests(),
            tm: TmConfig::default_with(SignatureKind::Perfect),
            limits: SimLimits::for_tests(),
            seed: 0,
            preemption: None,
            trace_capacity: 0,
            warmup_units: 0,
            check_serializability: false,
            observe: false,
            obs_span_capacity: 4096,
        }
    }

    /// Sets the signature implementation for every thread context.
    pub fn signature(mut self, kind: SignatureKind) -> Self {
        self.tm.signature = kind;
        self
    }

    /// Sets the run's perturbation seed (the paper's §6.1 methodology runs
    /// each datapoint under several seeds).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the memory-system configuration.
    pub fn mem_config(mut self, mem: MemConfig) -> Self {
        self.mem = mem;
        self
    }

    /// Replaces the TM configuration.
    pub fn tm_config(mut self, tm: TmConfig) -> Self {
        let sig = self.tm.signature;
        self.tm = tm;
        // Keep a previously chosen signature unless the new config sets one
        // explicitly different from the default marker.
        let _ = sig;
        self
    }

    /// Enables or disables LogTM sticky states (ablation A2).
    pub fn sticky(mut self, enabled: bool) -> Self {
        self.mem.sticky_enabled = enabled;
        self
    }

    /// Selects the coherence substrate: the §5 directory (default) or the
    /// §7 broadcast-snooping variant.
    pub fn coherence(mut self, kind: CoherenceKind) -> Self {
        self.mem.coherence = kind;
        self
    }

    /// Selects the contention-management policy applied on NACKs (the
    /// paper's "trap to a contention manager" future work).
    pub fn contention(mut self, policy: ContentionPolicy) -> Self {
        self.tm.contention = policy;
        self
    }

    /// Selects the backoff family shaping post-abort (and partial-abort)
    /// waits. Default: randomized exponential.
    pub fn backoff_kind(mut self, kind: BackoffKind) -> Self {
        self.tm.backoff_kind = kind;
        self
    }

    /// Enables bounded-retry escalation: after `aborts` consecutive aborts
    /// of one transaction, its retry acquires the global serialization
    /// token and runs exempt from conflict-resolution aborts (the hardware
    /// analogue of the STM backend's serial fallback). `None` disables.
    pub fn escalate_after(mut self, aborts: Option<u32>) -> Self {
        self.tm.escalate_after = aborts;
        self
    }

    /// Pins [`ContentionPolicy::Adaptive`] to one static policy — for
    /// determinism tests that prove a pinned adaptive run is byte-identical
    /// to the static configuration. Ignored by static policies.
    pub fn adaptive_pin(mut self, pin: Option<ContentionPolicy>) -> Self {
        self.tm.adaptive_pin = pin;
        self
    }

    /// Partitions the machine over `n_chips` chips (§7 "Multiple CMPs"):
    /// inter-chip messages pay the configured crossing latency.
    ///
    /// # Panics
    ///
    /// The build panics later if `n_chips` does not divide the core and
    /// bank counts.
    pub fn chips(mut self, n_chips: u8) -> Self {
        self.mem.n_chips = n_chips;
        self
    }

    /// Sets the log-filter capacity (0 disables filtering; ablation A3).
    pub fn log_filter_entries(mut self, entries: usize) -> Self {
        self.tm.log_filter_entries = entries;
        self
    }

    /// Discards all statistics once `units` units of work have completed
    /// (caches and transactional state stay warm): the paper's
    /// "representative execution samples" methodology. The report then
    /// covers only the steady-state region; `RunReport::cycles` still spans
    /// the whole run, with `RunReport::measured_cycles` covering the
    /// measured window.
    pub fn warmup_units(mut self, units: u64) -> Self {
        self.warmup_units = units;
        self
    }

    /// Enables event tracing: the system keeps the most recent `capacity`
    /// transactional/protocol events (begins, commits, aborts, NACKs,
    /// context switches, page moves) retrievable via
    /// [`crate::System::trace_dump`]. Zero cost when unset.
    pub fn trace(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }

    /// Attaches the structured observability layer
    /// ([`ltse_sim::obs::ObsCore`]) to the run: every stall and abort is
    /// attributed to a cause, every coherence NACK is classified by
    /// detection path (in-cache vs. decoupled sticky/signature) and by
    /// true-sharing-vs-aliasing judgement, per-thread cycle breakdowns are
    /// kept in the paper's §6 style, and a bounded ring of per-transaction
    /// spans is retained. Retrieve results with
    /// [`crate::System::obs_report`] (also carried on
    /// [`crate::RunReport::obs`]). Off by default: the entire layer then
    /// costs one null-pointer check per instrumented event.
    pub fn observe(mut self, enabled: bool) -> Self {
        self.observe = enabled;
        self
    }

    /// Sets how many transaction spans the observability layer retains
    /// (default 4096; older spans are dropped with drop accounting).
    /// Implies nothing about [`Self::observe`] — that knob still gates the
    /// whole layer.
    pub fn observe_span_capacity(mut self, capacity: usize) -> Self {
        self.obs_span_capacity = capacity;
        self
    }

    /// Attaches a differential serializability oracle to the run: every
    /// committed transaction is replayed, in commit order, against a
    /// sequential reference memory, checking read values, final state, and
    /// post-transaction hardware invariants. Errors are collected and
    /// returned by [`crate::System::finish_checks`]. Meant for the schedule
    /// explorer (`ltse_sim::explore`) and correctness tests; adds per-access
    /// bookkeeping, so leave it off for performance experiments.
    pub fn check_serializability(mut self, enabled: bool) -> Self {
        self.check_serializability = enabled;
        self
    }

    /// **Test-only fault injection** (see
    /// [`ltse_tm::TmConfig::fault_skip_one_undo`]): makes the abort handler
    /// skip one undo record, so checker tests can prove the oracle catches a
    /// broken undo path.
    pub fn fault_skip_one_undo(mut self, enabled: bool) -> Self {
        self.tm.fault_skip_one_undo = enabled;
        self
    }

    /// Sets the watchdog limits.
    pub fn limits(mut self, limits: SimLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Enables the preemption timer: threads round-robin over contexts
    /// every `quantum` cycles; `defer_in_tx` skips victims that are inside
    /// a transaction.
    pub fn preemption(mut self, quantum: Cycle, defer_in_tx: bool) -> Self {
        self.preemption = Some(PreemptionConfig {
            quantum,
            defer_in_tx,
        });
        self
    }

    /// The memory configuration currently held by the builder.
    pub fn mem_config_view(&self) -> &MemConfig {
        &self.mem
    }

    /// The TM configuration currently held by the builder.
    pub fn tm_config_view(&self) -> &TmConfig {
        &self.tm
    }

    /// Builds the system (cold caches, no threads yet).
    pub fn build(&self) -> System {
        System::from_builder(self)
    }
}

impl Default for SystemBuilder {
    fn default() -> Self {
        SystemBuilder::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_table1() {
        let b = SystemBuilder::paper_default();
        assert_eq!(b.mem.n_cores, 16);
        assert_eq!(b.mem.smt_per_core, 2);
        assert_eq!(b.mem.l1.capacity_blocks(), 512); // 32 KB / 64 B
        assert_eq!(
            b.mem.l2_bank.capacity_blocks() * b.mem.n_banks as usize,
            131_072 // 8 MB / 64 B
        );
    }

    #[test]
    fn builder_knobs_apply() {
        let b = SystemBuilder::small_for_tests()
            .signature(SignatureKind::paper_bs_64())
            .coherence(CoherenceKind::SnoopingMesi)
            .sticky(false)
            .log_filter_entries(0)
            .seed(99)
            .check_serializability(true)
            .fault_skip_one_undo(true)
            .contention(ContentionPolicy::Adaptive)
            .backoff_kind(BackoffKind::Linear)
            .escalate_after(Some(4))
            .adaptive_pin(Some(ContentionPolicy::Karma))
            .observe(true)
            .observe_span_capacity(128)
            .preemption(Cycle(100), true);
        assert!(b.observe);
        assert_eq!(b.obs_span_capacity, 128);
        assert_eq!(b.tm.signature, SignatureKind::paper_bs_64());
        assert!(b.check_serializability);
        assert!(b.tm.fault_skip_one_undo);
        assert_eq!(b.mem.coherence, CoherenceKind::SnoopingMesi);
        assert!(!b.mem.sticky_enabled);
        assert_eq!(b.tm.log_filter_entries, 0);
        assert_eq!(b.tm.contention, ContentionPolicy::Adaptive);
        assert_eq!(b.tm.backoff_kind, BackoffKind::Linear);
        assert_eq!(b.tm.escalate_after, Some(4));
        assert_eq!(b.tm.adaptive_pin, Some(ContentionPolicy::Karma));
        assert_eq!(b.seed, 99);
        assert_eq!(
            b.preemption,
            Some(PreemptionConfig {
                quantum: Cycle(100),
                defer_in_tx: true
            })
        );
    }
}
