//! Whole-system property tests: randomly generated transactional programs
//! over shared counters must be exactly serializable — every committed
//! increment lands exactly once — under every signature kind, with and
//! without preemption, across seeds. Randomized deterministically through
//! `ltse_sim::check`.

use ltse_sim::check::{cases, pick, vec_of};
use ltse_sim::rng::Xoshiro256StarStar;

use logtm_se::{Asid, Cycle, Op, ProgCtx, SignatureKind, SystemBuilder, ThreadProgram, WordAddr};

/// One fuzzed transaction: fetch-add a fixed set of counters, with some
/// plain reads and compute mixed in.
#[derive(Debug, Clone)]
struct TxPlan {
    targets: Vec<u8>, // counter indices, deduplicated
    reads: Vec<u8>,
    work: u64,
}

/// A fuzzed thread: a list of transactions, executed in order, each retried
/// until it commits.
struct PlannedThread {
    plan: Vec<TxPlan>,
    tx_ix: usize,
    step: usize,
}

fn counter(i: u8) -> WordAddr {
    WordAddr(i as u64 * 8)
}

impl ThreadProgram for PlannedThread {
    fn next_op(&mut self, _t: &mut ProgCtx) -> Op {
        let Some(tx) = self.plan.get(self.tx_ix) else {
            return Op::Done;
        };
        // Step layout: 0 = begin; 1..=reads = reads; then targets; then
        // work; then commit.
        let n_reads = tx.reads.len();
        let n_targets = tx.targets.len();
        let s = self.step;
        self.step += 1;
        if s == 0 {
            Op::TxBegin
        } else if s <= n_reads {
            Op::Read(counter(tx.reads[s - 1]))
        } else if s <= n_reads + n_targets {
            Op::FetchAdd(counter(tx.targets[s - 1 - n_reads]), 1)
        } else if s == n_reads + n_targets + 1 {
            Op::Work(tx.work.max(1))
        } else {
            self.step = 0;
            self.tx_ix += 1;
            Op::TxCommit
        }
    }

    fn on_tx_abort(&mut self, _t: &mut ProgCtx) {
        self.step = 0;
    }
}

fn random_tx(rng: &mut Xoshiro256StarStar) -> TxPlan {
    // 1..4 distinct target counters out of 6.
    let n_targets = rng.gen_range(1, 4) as usize;
    let mut targets: Vec<u8> = Vec::new();
    while targets.len() < n_targets {
        let c = rng.gen_range(0, 6) as u8;
        if !targets.contains(&c) {
            targets.push(c);
        }
    }
    targets.sort_unstable();
    TxPlan {
        targets,
        reads: vec_of(rng, 0, 2, |r| r.gen_range(0, 6) as u8),
        work: rng.gen_range(0, 80),
    }
}

fn random_plans(rng: &mut Xoshiro256StarStar) -> Vec<Vec<TxPlan>> {
    vec_of(rng, 2, 5, |r| vec_of(r, 1, 5, random_tx))
}

#[test]
fn every_committed_increment_lands_exactly_once() {
    let kinds = [
        SignatureKind::Perfect,
        SignatureKind::paper_bs_2kb(),
        SignatureKind::paper_bs_64(),
        SignatureKind::paper_dbs_2kb(),
        SignatureKind::Bloom { bits: 256, k: 2 },
    ];
    cases(24, 0x5E21A1, |rng| {
        let plan = random_plans(rng);
        let kind = *pick(rng, &kinds);
        let seed = rng.gen_range(0, 1000);
        let preempt = rng.gen_bool(0.5);
        let relocations = vec_of(rng, 0, 2, |r| r.gen_range(100, 20_000));

        let mut expected = [0u64; 6];
        for thread in &plan {
            for tx in thread {
                for &t in &tx.targets {
                    expected[t as usize] += 1;
                }
            }
        }

        let mut builder = SystemBuilder::small_for_tests().signature(kind).seed(seed);
        if preempt {
            builder = builder.preemption(Cycle(700), false);
        }
        let mut system = builder.build();
        // Failure injection: relocate the physical page holding all the
        // counters (vpage 0) at arbitrary times mid-run.
        for &at in &relocations {
            system.schedule_page_relocation(Cycle(at), Asid(0), 0);
        }
        let n_threads = plan.len();
        for thread_plan in plan {
            system.add_thread(Box::new(PlannedThread {
                plan: thread_plan,
                tx_ix: 0,
                step: 0,
            }));
        }
        let report = system.run().expect("fuzzed run completes");
        assert_eq!(report.threads_completed, n_threads);
        for (i, &want) in expected.iter().enumerate() {
            assert_eq!(
                system.read_word(counter(i as u8)),
                want,
                "counter {} ({} threads, {}, preempt={}, {} relocations)",
                i,
                n_threads,
                kind,
                preempt,
                relocations.len()
            );
        }
    });
}
