//! [`TmBackend`] implementation: the STM as a drop-in engine behind the
//! simulator's driving surface.

use logtm_se::{BackendReport, ThreadProgram, TmBackend, WordAddr};

use crate::exec::StmSystem;

impl TmBackend for StmSystem {
    fn backend_name(&self) -> &'static str {
        "stm"
    }

    fn add_thread(&mut self, program: Box<dyn ThreadProgram>) -> u32 {
        StmSystem::add_thread(self, program)
    }

    fn poke_word(&mut self, addr: WordAddr, value: u64) {
        StmSystem::poke_word(self, addr, value);
    }

    fn read_word(&self, addr: WordAddr) -> u64 {
        StmSystem::read_word(self, addr)
    }

    fn run_backend(&mut self) -> Result<BackendReport, String> {
        let r = StmSystem::run(self).map_err(|e| e.to_string())?;
        Ok(BackendReport {
            wall: r.wall,
            sim_cycles: None,
            commits: r.commits,
            aborts: r.aborts,
            work_units: r.work_units,
            threads_completed: r.threads_completed,
        })
    }

    fn finish_checks(&mut self) -> Vec<String> {
        StmSystem::finish_checks(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StmBuilder;
    use logtm_se::TxScript;

    #[test]
    fn stm_drives_through_the_backend_trait() {
        let mut sys = StmBuilder::new().seed(2).check_serializability(true).build();
        let backend: &mut dyn TmBackend = &mut sys;
        assert_eq!(backend.backend_name(), "stm");
        backend.poke_word(WordAddr(0), 3);
        for _ in 0..2 {
            backend.add_thread(Box::new(TxScript::counter(WordAddr(0), 4)));
        }
        let r = backend.run_backend().expect("run completes");
        assert_eq!(r.commits, 8);
        assert_eq!(r.work_units, 8);
        assert_eq!(r.threads_completed, 2);
        assert_eq!(r.sim_cycles, None, "the STM has no simulated clock");
        assert_eq!(backend.read_word(WordAddr(0)), 11);
        assert!(backend.finish_checks().is_empty());
    }

    #[test]
    fn both_backends_agree_on_the_same_workload() {
        // The differential idea in one unit test: identical programs, both
        // engines, identical final state and work accounting.
        let drive = |backend: &mut dyn TmBackend| {
            backend.poke_word(WordAddr(0), 7);
            for _ in 0..3 {
                backend.add_thread(Box::new(TxScript::counter(WordAddr(0), 5)));
            }
            let r = backend.run_backend().expect("run completes");
            assert!(backend.finish_checks().is_empty(), "{}", backend.backend_name());
            (r.commits, r.work_units, backend.read_word(WordAddr(0)))
        };
        let mut stm = StmBuilder::new().seed(6).check_serializability(true).build();
        let stm_out = drive(&mut stm);
        let mut sim = logtm_se::SystemBuilder::small_for_tests()
            .seed(6)
            .check_serializability(true)
            .build();
        let sim_out = drive(&mut sim);
        assert_eq!(stm_out, sim_out, "(commits, units, final) must agree");
    }
}
