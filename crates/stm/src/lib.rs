//! # ltse-stm: a real-concurrency STM backend for the LogTM-SE workloads
//!
//! The simulator in `logtm-se` evaluates the paper's *hardware* TM design
//! cycle by cycle, deterministically, on one OS thread. This crate is its
//! software twin: a TL2-style software transactional memory (Dice, Shalev,
//! Shavit, DISC 2006) that executes the very same [`logtm_se::ThreadProgram`]
//! workloads on real OS threads —
//!
//! * a **global version clock** ([`Stm`]) advanced by every writer commit,
//! * **striped versioned write-locks** mapping words to lock stripes,
//! * **lazy write buffering** with commit-time **read-set validation**
//!   ([`Tx`]),
//! * **bounded retry with randomized backoff**, escalating to a serial
//!   fallback token that guarantees progress ([`StmConfig::max_retries`]).
//!
//! Running the same workloads through two independently implemented TMs —
//! one eager/hardware-modelled, one lazy/software/really-concurrent — and
//! replaying both histories through the same
//! [`ltse_mem::SerializabilityOracle`] makes each implementation a
//! differential test of the other: a bug in either surfaces as a read-value
//! or final-state divergence against the sequential replay.
//!
//! Entry points: [`StmBuilder`] → [`StmSystem`] (mirrors the simulator's
//! `SystemBuilder` → `System`), or the `TmBackend` trait in `logtm-se` for
//! code that must be generic over the two backends.
//!
//! ```
//! use ltse_stm::StmBuilder;
//! use logtm_se::{TxScript, WordAddr};
//!
//! let mut sys = StmBuilder::new().seed(1).check_serializability(true).build();
//! for _ in 0..2 {
//!     sys.add_thread(Box::new(TxScript::counter(WordAddr(0), 100)));
//! }
//! let report = sys.run().expect("run completes");
//! assert_eq!(sys.read_word(WordAddr(0)), 200, "atomicity held");
//! assert_eq!(report.commits, 200);
//! assert!(sys.finish_checks().is_empty(), "history serializes");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod core;
mod exec;
mod table;

pub use crate::core::{CommitInfo, Conflict, SerialToken, Stm, StmConfig, Tx};
pub use exec::{StmBuilder, StmError, StmReport, StmSystem};
pub use table::{Table, TableFull};
