//! A lock-free, insert-only word store shared by every STM thread.
//!
//! The simulator models memory as a dense paged array; the STM runs on real
//! threads and only ever touches the sparse set of words a workload names, so
//! an open-addressing hash table of `AtomicU64` cells is enough. Keys are
//! word numbers (the same unit as [`ltse_mem::WordAddr`]); a key that was
//! never inserted reads as 0, matching the simulator's zero-filled memory.
//!
//! The table never resizes and never deletes: slots are claimed once with a
//! compare-and-swap on the key array and live for the table's lifetime. That
//! keeps every operation a plain atomic access — no epochs, no hazard
//! pointers, no `unsafe`. Capacity is fixed at construction; running out is
//! surfaced as an explicit error by the caller rather than a reallocation.
//!
//! All accesses use `SeqCst`: the TL2 protocol's correctness argument leans
//! on the value load between the two stripe-version samples not being
//! reordered against them, and keeping every shared access in the single
//! sequentially-consistent order makes that argument airtight without
//! per-site fence reasoning. The STM measures *relative* throughput against
//! a cycle-level simulator, not peak memory bandwidth.

use std::sync::atomic::{AtomicU64, Ordering::SeqCst};

use ltse_sim::rng::mix64;

/// Sentinel meaning "slot unclaimed" in the key array. Stored keys are
/// `word + 1`, so word 0 is representable.
const EMPTY: u64 = 0;

/// Fixed-capacity concurrent word store. See the module docs for the design.
#[derive(Debug)]
pub struct Table {
    /// Claimed word numbers, offset by one (`EMPTY` = unclaimed).
    keys: Box<[AtomicU64]>,
    /// Word values, parallel to `keys`.
    vals: Box<[AtomicU64]>,
    /// `capacity - 1`; capacity is a power of two.
    mask: usize,
    /// Claimed-slot count (approximate during racing inserts, exact after).
    used: AtomicU64,
}

/// The table ran out of slots: a probe for a new key found every candidate
/// slot claimed by other keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableFull;

impl std::fmt::Display for TableFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("stm word table full: too many distinct addresses for the configured capacity")
    }
}

impl Table {
    /// A table with room for `slots` distinct words (rounded up to a power
    /// of two, minimum 8). The probe sequence degrades as the table fills;
    /// size generously — cells are two `u64`s each.
    pub fn new(slots: usize) -> Self {
        let cap = slots.max(8).next_power_of_two();
        Table {
            keys: (0..cap).map(|_| AtomicU64::new(EMPTY)).collect(),
            vals: (0..cap).map(|_| AtomicU64::new(0)).collect(),
            mask: cap - 1,
            used: AtomicU64::new(0),
        }
    }

    /// Number of slots (a power of two).
    pub fn capacity(&self) -> usize {
        self.keys.len()
    }

    /// Distinct words ever stored (reads of absent words do not claim slots).
    pub fn used(&self) -> usize {
        self.used.load(SeqCst) as usize
    }

    /// Finds the slot holding `word`, if any. Reads never insert.
    fn probe(&self, word: u64) -> Option<usize> {
        let tag = word.wrapping_add(1);
        let mut ix = mix64(word) as usize & self.mask;
        for _ in 0..=self.mask {
            match self.keys[ix].load(SeqCst) {
                EMPTY => return None,
                k if k == tag => return Some(ix),
                _ => ix = (ix + 1) & self.mask,
            }
        }
        None
    }

    /// Finds or claims the slot for `word`.
    fn probe_insert(&self, word: u64) -> Result<usize, TableFull> {
        let tag = word.wrapping_add(1);
        let mut ix = mix64(word) as usize & self.mask;
        for _ in 0..=self.mask {
            match self.keys[ix].compare_exchange(EMPTY, tag, SeqCst, SeqCst) {
                Ok(_) => {
                    self.used.fetch_add(1, SeqCst);
                    return Ok(ix);
                }
                Err(k) if k == tag => return Ok(ix),
                Err(_) => ix = (ix + 1) & self.mask,
            }
        }
        Err(TableFull)
    }

    /// Current value of `word` (0 if never written).
    pub fn load(&self, word: u64) -> u64 {
        match self.probe(word) {
            Some(ix) => self.vals[ix].load(SeqCst),
            None => 0,
        }
    }

    /// Ensures a slot exists for `word` without disturbing its value: a
    /// freshly claimed slot holds 0, exactly what an absent key reads as.
    /// Writers call this *before* taking a commit timestamp so a mid-commit
    /// capacity failure aborts cleanly instead of tearing a write-back.
    pub fn reserve(&self, word: u64) -> Result<(), TableFull> {
        self.probe_insert(word).map(|_| ())
    }

    /// Stores `value` into `word`, claiming a slot if needed.
    pub fn store(&self, word: u64, value: u64) -> Result<(), TableFull> {
        let ix = self.probe_insert(word)?;
        self.vals[ix].store(value, SeqCst);
        Ok(())
    }

    /// Every `(word, value)` pair ever stored, unordered. Post-run only:
    /// concurrent inserts may or may not appear.
    pub fn snapshot(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::with_capacity(self.used());
        for (k, v) in self.keys.iter().zip(self.vals.iter()) {
            let tag = k.load(SeqCst);
            if tag != EMPTY {
                out.push((tag.wrapping_sub(1), v.load(SeqCst)));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absent_words_read_zero() {
        let t = Table::new(16);
        assert_eq!(t.load(0), 0);
        assert_eq!(t.load(u64::MAX), 0);
        assert_eq!(t.used(), 0, "reads never claim slots");
    }

    #[test]
    fn word_zero_is_representable() {
        let t = Table::new(16);
        t.store(0, 99).unwrap();
        assert_eq!(t.load(0), 99);
        assert_eq!(t.used(), 1);
    }

    #[test]
    fn store_then_load_roundtrips_many_words() {
        let t = Table::new(256);
        for w in 0..200u64 {
            t.store(w * 8, w + 1).unwrap();
        }
        for w in 0..200u64 {
            assert_eq!(t.load(w * 8), w + 1);
        }
        assert_eq!(t.used(), 200);
    }

    #[test]
    fn reserve_keeps_value_zero_and_overwrite_wins() {
        let t = Table::new(16);
        t.reserve(40).unwrap();
        assert_eq!(t.load(40), 0);
        t.store(40, 7).unwrap();
        t.store(40, 8).unwrap();
        assert_eq!(t.load(40), 8);
        assert_eq!(t.used(), 1, "same word claims one slot");
    }

    #[test]
    fn capacity_exhaustion_is_an_error_not_a_panic() {
        let t = Table::new(8); // rounds to 8 slots
        for w in 0..8u64 {
            t.store(w, 1).unwrap();
        }
        assert_eq!(t.store(1000, 1), Err(TableFull));
        assert_eq!(t.reserve(1001), Err(TableFull));
        // Existing keys still work at full capacity.
        assert_eq!(t.load(3), 1);
        t.store(3, 5).unwrap();
        assert_eq!(t.load(3), 5);
    }

    #[test]
    fn snapshot_reports_every_stored_pair() {
        let t = Table::new(32);
        t.store(8, 1).unwrap();
        t.store(16, 2).unwrap();
        t.store(24, 3).unwrap();
        let mut snap = t.snapshot();
        snap.sort_unstable();
        assert_eq!(snap, vec![(8, 1), (16, 2), (24, 3)]);
    }

    #[test]
    fn concurrent_inserts_never_lose_slots() {
        let t = Table::new(1 << 10);
        std::thread::scope(|s| {
            for tid in 0..4u64 {
                let t = &t;
                s.spawn(move || {
                    for i in 0..128u64 {
                        // Half shared keys, half private: exercises both CAS
                        // races on the same slot and disjoint claims.
                        t.store(i, tid + 1).unwrap();
                        t.store(1_000_000 + tid * 1000 + i, i).unwrap();
                    }
                });
            }
        });
        assert_eq!(t.used(), 128 + 4 * 128);
        for i in 0..128u64 {
            let v = t.load(i);
            assert!((1..=4).contains(&v), "shared key holds a writer's value");
        }
    }
}
