//! The TL2 protocol core: a global version clock, striped versioned
//! write-locks, and transactions with lazy write buffering and commit-time
//! read validation.
//!
//! This is the classic Transactional Locking II algorithm (Dice, Shalev,
//! Shavit, DISC 2006), the canonical software counterpart to the paper's
//! hardware design:
//!
//! * every transaction samples the global clock at begin (`rv`);
//! * reads sample the address's stripe lock, load the value, and re-sample —
//!   a locked stripe or a version newer than `rv` aborts the read;
//! * writes buffer locally until commit;
//! * commit acquires the write-set's stripe locks in address order (one
//!   attempt each — contention aborts rather than deadlocks), takes a fresh
//!   clock value `wv`, re-validates every read stripe against `rv`, writes
//!   the buffer back, and releases the locks stamped with `wv`.
//!
//! Where LogTM-SE is *eager* (old values to a log, conflicts detected at
//! access time via signatures and NACKs), TL2 is *lazy* (new values to a
//! buffer, conflicts detected at commit time via versions). Both histories
//! must serialize in commit order, which is exactly what the shared
//! [`ltse_mem::SerializabilityOracle`] checks — making the two
//! implementations differential tests of each other.
//!
//! # Progress: the serial fallback
//!
//! TL2 alone can livelock under pathological contention. The executor layer
//! bounds retries: after [`StmConfig::max_retries`] consecutive aborts a
//! transaction re-runs under the global *serial token* — the write half of
//! an `RwLock` whose read half every ordinary writer commit briefly holds.
//! With the token held no other transaction can commit, so no stripe version
//! can advance and no stripe can be (or become) locked: the serial attempt
//! cannot fail, giving starvation freedom.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::SeqCst};
use std::sync::{RwLock, RwLockReadGuard, RwLockWriteGuard};

use logtm_se::{BackoffKind, ContentionPolicy};

use crate::table::{Table, TableFull};

/// Bit marking a stripe lock word as held by a committing writer. The low
/// 63 bits always carry the stripe's last committed version, locked or not,
/// so validation against `rv` works in either state.
const LOCKED: u64 = 1 << 63;

/// Tuning and test knobs for the STM runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StmConfig {
    /// Number of lock stripes (rounded up to a power of two). Word numbers
    /// map to stripes by low bits, so two words collide iff they are equal
    /// modulo the stripe count — tests shrink this to force aliasing.
    pub n_stripes: usize,
    /// Capacity of the shared word table (distinct addresses).
    pub mem_slots: usize,
    /// Consecutive aborts of one transaction before it escalates to the
    /// serial fallback. `0` makes every transaction serial.
    pub max_retries: u32,
    /// Base spin count for post-abort exponential backoff.
    pub backoff_base: u64,
    /// Cap on the backoff spin count.
    pub backoff_cap: u64,
    /// Contention policy, shared vocabulary with the simulator. TL2 has no
    /// NACK matrix, so each policy translates to the STM's two real levers:
    /// the backoff family a loser waits under and the serial-escalation
    /// threshold (see the executor's `policy_levers`).
    pub contention: ContentionPolicy,
    /// Backoff family used by policies that do not force one of their own
    /// ([`ContentionPolicy::RequesterStalls`] / `Karma`).
    pub backoff_kind: BackoffKind,
    /// Pins [`ContentionPolicy::Adaptive`] to one static policy's levers —
    /// for tests that prove pinned-adaptive ≡ static. Ignored otherwise.
    pub adaptive_pin: Option<ContentionPolicy>,
    /// Watchdog: a single thread issuing more ops than this fails the run
    /// with a clean error instead of hanging a wedged workload forever.
    pub max_ops_per_thread: u64,
    /// Test-only injected bug: the first writer commit in the run silently
    /// skips its final write-back entry (the lazy-versioning analogue of the
    /// simulator's `fault_skip_one_undo`). Exists to prove the oracle
    /// detects a broken STM; never enable outside tests.
    pub fault_skip_one_writeback: bool,
}

impl Default for StmConfig {
    fn default() -> Self {
        StmConfig {
            n_stripes: 1 << 14,
            mem_slots: 1 << 18,
            max_retries: 32,
            backoff_base: 32,
            backoff_cap: 1 << 14,
            contention: ContentionPolicy::RequesterStalls,
            backoff_kind: BackoffKind::RandExp,
            adaptive_pin: None,
            max_ops_per_thread: 50_000_000,
            fault_skip_one_writeback: false,
        }
    }
}

/// Why a transactional operation could not proceed. All variants except
/// [`Conflict::TableFull`] are transient: abort, back off, retry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Conflict {
    /// A stripe needed by a read or commit was locked by another committer.
    Locked {
        /// Stripe index.
        stripe: usize,
    },
    /// A stripe's version advanced past the transaction's read timestamp:
    /// some other transaction committed a write the snapshot missed.
    Stale {
        /// Stripe index.
        stripe: usize,
    },
    /// The shared word table is out of slots — permanent; retrying cannot
    /// help. Surfaced as a run error by the executor.
    TableFull,
}

impl From<TableFull> for Conflict {
    fn from(_: TableFull) -> Self {
        Conflict::TableFull
    }
}

impl std::fmt::Display for Conflict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Conflict::Locked { stripe } => write!(f, "stripe {stripe} locked by a committer"),
            Conflict::Stale { stripe } => write!(f, "stripe {stripe} newer than read timestamp"),
            Conflict::TableFull => f.write_str("word table full"),
        }
    }
}

/// What a successful commit looked like, for stats and oracle recording.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitInfo {
    /// The transaction's serialization timestamp: the new write version for
    /// writers, the read timestamp `rv` for read-only transactions.
    pub version: u64,
    /// Whether the transaction wrote anything.
    pub writer: bool,
    /// Whether it ran under the serial fallback token.
    pub serial: bool,
}

/// Exclusive commit permission used by the serial fallback. While any thread
/// holds one, no ordinary transaction can commit a write; transactions begun
/// with [`Stm::begin_serial`] therefore run free of conflicts.
pub struct SerialToken<'a>(#[allow(dead_code)] RwLockWriteGuard<'a, ()>);

impl std::fmt::Debug for SerialToken<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SerialToken")
    }
}

/// The shared STM state: clock, stripes, memory, and the serial-fallback
/// gate. One instance per [`crate::StmSystem`]; threads share it by
/// reference (it is `Sync` — every field is an atomic or a lock).
#[derive(Debug)]
pub struct Stm {
    cfg: StmConfig,
    /// The global version clock. Incremented by every writer commit; its
    /// value after increment is that commit's unique write version.
    clock: AtomicU64,
    /// Versioned write-locks, one per stripe (see [`LOCKED`]).
    stripes: Box<[AtomicU64]>,
    /// The shared word store.
    mem: Table,
    /// Serial-fallback gate: writer commits hold the read side across their
    /// write-back window; a starving transaction takes the write side and
    /// becomes the only thread able to commit.
    serial: RwLock<()>,
    /// One-shot trigger for [`StmConfig::fault_skip_one_writeback`].
    fault_armed: AtomicBool,
}

impl Stm {
    /// Builds the shared state for `cfg`.
    pub fn new(cfg: StmConfig) -> Self {
        let n = cfg.n_stripes.max(2).next_power_of_two();
        Stm {
            clock: AtomicU64::new(0),
            stripes: (0..n).map(|_| AtomicU64::new(0)).collect(),
            mem: Table::new(cfg.mem_slots),
            serial: RwLock::new(()),
            fault_armed: AtomicBool::new(cfg.fault_skip_one_writeback),
            cfg,
        }
    }

    /// The configuration this instance was built with.
    pub fn config(&self) -> &StmConfig {
        &self.cfg
    }

    /// Number of lock stripes (a power of two).
    pub fn n_stripes(&self) -> usize {
        self.stripes.len()
    }

    /// The stripe guarding `word`.
    pub fn stripe_of(&self, word: u64) -> usize {
        word as usize & (self.stripes.len() - 1)
    }

    /// Current clock value (the version the next writer commit will exceed).
    pub fn clock_now(&self) -> u64 {
        self.clock.load(SeqCst)
    }

    /// Reads a word directly, outside any transaction. Used for memory
    /// initialization, post-run inspection, and escape-action loads (which
    /// the oracle deliberately does not check).
    pub fn read_word_raw(&self, word: u64) -> u64 {
        self.mem.load(word)
    }

    /// Seeds a word before the run starts. Not thread-safe against running
    /// transactions — initialization only.
    pub fn poke_word_raw(&self, word: u64, value: u64) -> Result<(), TableFull> {
        self.mem.store(word, value)
    }

    /// Starts an ordinary (speculative) transaction.
    pub fn begin(&self) -> Tx<'_> {
        self.make_tx(false)
    }

    /// Acquires the serial-fallback token, blocking until every in-flight
    /// writer commit drains. See the module docs for the progress argument.
    pub fn serial_token(&self) -> SerialToken<'_> {
        SerialToken(self.serial.write().unwrap_or_else(|e| e.into_inner()))
    }

    /// Starts a transaction under the serial token. The token proves no
    /// other thread can commit, so this transaction's commit cannot fail
    /// with a transient conflict. Borrowing the token (rather than a flag)
    /// makes "serial tx without the token" unrepresentable.
    pub fn begin_serial<'a>(&'a self, _token: &SerialToken<'a>) -> Tx<'a> {
        self.make_tx(true)
    }

    fn make_tx(&self, serial: bool) -> Tx<'_> {
        // A serial transaction validates against u64::MAX — i.e. not at all.
        // Sound because the held token excludes every other committer: the
        // only versions that can advance during the transaction are those
        // its own thread publishes (escape-action minis under the same
        // token), and those the thread must be allowed to observe.
        let rv = if serial {
            u64::MAX
        } else {
            self.clock.load(SeqCst)
        };
        Tx {
            stm: self,
            rv,
            read_stripes: Vec::new(),
            writes: Vec::new(),
            serial,
        }
    }

    /// Samples stripe `s` and checks it against read timestamp `rv`.
    fn stripe_ok(&self, s: usize, rv: u64) -> Result<u64, Conflict> {
        let w = self.stripes[s].load(SeqCst);
        if w & LOCKED != 0 {
            return Err(Conflict::Locked { stripe: s });
        }
        if w > rv {
            return Err(Conflict::Stale { stripe: s });
        }
        Ok(w)
    }
}

/// An in-flight transaction. Dropping it without [`Tx::commit`] is an abort:
/// writes were only ever buffered, so there is nothing to undo.
#[derive(Debug)]
pub struct Tx<'a> {
    stm: &'a Stm,
    /// Read timestamp: the clock at begin.
    rv: u64,
    /// Stripes sampled by reads, in read order (duplicates kept — cheap to
    /// append, and commit-time validation tolerates re-checks).
    read_stripes: Vec<usize>,
    /// Write buffer in program order; later writes to the same word
    /// supersede earlier ones.
    writes: Vec<(u64, u64)>,
    /// Begun via [`Stm::begin_serial`].
    serial: bool,
}

impl<'a> Tx<'a> {
    /// The transaction's read timestamp.
    pub fn rv(&self) -> u64 {
        self.rv
    }

    /// Number of buffered writes (not deduplicated).
    pub fn write_count(&self) -> usize {
        self.writes.len()
    }

    /// Transactional load of `word`.
    pub fn read(&mut self, word: u64) -> Result<u64, Conflict> {
        // Read-own-writes: the buffer is the newest state for this tx.
        if let Some(&(_, v)) = self.writes.iter().rev().find(|&&(w, _)| w == word) {
            return Ok(v);
        }
        let s = self.stm.stripe_of(word);
        let before = self.stm.stripe_ok(s, self.rv)?;
        let value = self.stm.mem.load(word);
        // Re-sample: if the stripe moved (locked or re-versioned) while we
        // loaded, the value may be torn relative to the snapshot. All three
        // accesses are SeqCst, so they occur in program order.
        let after = self.stm.stripes[s].load(SeqCst);
        if after != before {
            return Err(if after & LOCKED != 0 {
                Conflict::Locked { stripe: s }
            } else {
                Conflict::Stale { stripe: s }
            });
        }
        self.read_stripes.push(s);
        Ok(value)
    }

    /// Transactional store: buffered until commit.
    pub fn write(&mut self, word: u64, value: u64) {
        self.writes.push((word, value));
    }

    /// The transaction's own buffered value for `word`, if it wrote one.
    /// Escape-action reads use this to mimic eager hardware, where an
    /// enclosing transaction's stores are visible in place.
    pub fn peek_buffered(&self, word: u64) -> Option<u64> {
        self.writes.iter().rev().find(|&&(w, _)| w == word).map(|&(_, v)| v)
    }

    /// Attempts to commit. On `Ok` all buffered writes are globally visible,
    /// stamped with the returned version. On `Err` nothing happened (lazy
    /// versioning: there is never anything to undo) — drop the `Tx` and
    /// retry or escalate.
    pub fn commit(self) -> Result<CommitInfo, Conflict> {
        let stm = self.stm;
        if self.writes.is_empty() {
            // Read-only: every read already validated against rv at read
            // time, so the snapshot at rv is consistent — serialize there.
            // A serial transaction's rv is the MAX sentinel; it serializes
            // at the current clock (nothing else committed since begin, so
            // that is exactly what its reads observed).
            let version = if self.serial {
                stm.clock_now()
            } else {
                self.rv
            };
            return Ok(CommitInfo {
                version,
                writer: false,
                serial: self.serial,
            });
        }

        // Writer commits exclude the serial fallback (never the reverse:
        // a serial transaction IS the write side of this lock).
        let _commit_permit: Option<RwLockReadGuard<'_, ()>> = if self.serial {
            None
        } else {
            Some(stm.serial.read().unwrap_or_else(|e| e.into_inner()))
        };

        // Lock the write-set's stripes in ascending order (deadlock-free
        // against all other committers), one CAS attempt each.
        let mut wstripes: Vec<usize> = self.writes.iter().map(|&(w, _)| stm.stripe_of(w)).collect();
        wstripes.sort_unstable();
        wstripes.dedup();
        let mut locked: Vec<(usize, u64)> = Vec::with_capacity(wstripes.len());
        for &s in &wstripes {
            let w = stm.stripes[s].load(SeqCst);
            let conflict = if w & LOCKED != 0 {
                Some(Conflict::Locked { stripe: s })
            } else if stm.stripes[s]
                .compare_exchange(w, w | LOCKED, SeqCst, SeqCst)
                .is_err()
            {
                Some(Conflict::Locked { stripe: s })
            } else {
                locked.push((s, w));
                None
            };
            if let Some(c) = conflict {
                Self::release(stm, &locked, None);
                return Err(c);
            }
        }

        // Reserve table slots *before* taking wv: a full table must abort
        // without publishing anything. A freshly reserved slot reads 0,
        // identical to the absent key it replaces, so readers are unaffected.
        for &(w, _) in &self.writes {
            if stm.mem.reserve(w).is_err() {
                Self::release(stm, &locked, None);
                return Err(Conflict::TableFull);
            }
        }

        // Fresh write version. fetch_add returns the old value; ours is +1.
        let wv = stm.clock.fetch_add(1, SeqCst) + 1;

        // Validate the read-set: every stripe we read must still be at a
        // version ≤ rv and unlocked — except by us, where the pre-lock
        // version (still visible in the low bits) stands in.
        for &s in &self.read_stripes {
            let w = stm.stripes[s].load(SeqCst);
            let effective = if w & LOCKED != 0 {
                match locked.iter().find(|&&(ls, _)| ls == s) {
                    Some(&(_, old)) => old,
                    None => {
                        Self::release(stm, &locked, None);
                        return Err(Conflict::Locked { stripe: s });
                    }
                }
            } else {
                w
            };
            if effective > self.rv {
                Self::release(stm, &locked, None);
                return Err(Conflict::Stale { stripe: s });
            }
        }

        // Write back. Slots were reserved above, so stores cannot fail.
        let mut writes = self.writes;
        if stm.cfg.fault_skip_one_writeback && stm.fault_armed.swap(false, SeqCst) {
            writes.pop();
        }
        for &(w, v) in &writes {
            stm.mem
                .store(w, v)
                .expect("slot reserved before write-back");
        }

        // Release every locked stripe stamped with the new version.
        Self::release(stm, &locked, Some(wv));
        Ok(CommitInfo {
            version: wv,
            writer: true,
            serial: self.serial,
        })
    }

    /// Unlocks `locked` stripes: restoring their pre-lock versions on abort
    /// (`None`) or stamping the new write version on success.
    fn release(stm: &Stm, locked: &[(usize, u64)], new_version: Option<u64>) {
        for &(s, old) in locked {
            stm.stripes[s].store(new_version.unwrap_or(old), SeqCst);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Stm {
        Stm::new(StmConfig {
            n_stripes: 16,
            mem_slots: 64,
            ..StmConfig::default()
        })
    }

    #[test]
    fn read_write_commit_roundtrip() {
        let stm = tiny();
        let mut tx = stm.begin();
        assert_eq!(tx.read(8).unwrap(), 0, "fresh memory reads zero");
        tx.write(8, 42);
        assert_eq!(tx.read(8).unwrap(), 42, "read-own-writes");
        let info = tx.commit().unwrap();
        assert!(info.writer);
        assert_eq!(info.version, 1, "first writer gets version 1");
        assert_eq!(stm.read_word_raw(8), 42);
    }

    #[test]
    fn read_only_commit_serializes_at_rv_without_advancing_the_clock() {
        let stm = tiny();
        let mut tx = stm.begin();
        let _ = tx.read(8).unwrap();
        let info = tx.commit().unwrap();
        assert!(!info.writer);
        assert_eq!(info.version, 0);
        assert_eq!(stm.clock_now(), 0);
    }

    #[test]
    fn dropped_transaction_leaves_no_trace() {
        let stm = tiny();
        let mut tx = stm.begin();
        tx.write(8, 99);
        drop(tx);
        assert_eq!(stm.read_word_raw(8), 0);
        assert_eq!(stm.clock_now(), 0);
        // Stripes all unlocked at version 0.
        let mut tx2 = stm.begin();
        assert_eq!(tx2.read(8).unwrap(), 0);
        tx2.commit().unwrap();
    }

    #[test]
    fn stale_read_set_aborts_the_writer_at_commit() {
        let stm = tiny();
        // T1 reads word 8, then T2 commits a write to it, then T1 tries to
        // commit a write elsewhere: T1's snapshot is stale and must die.
        let mut t1 = stm.begin();
        assert_eq!(t1.read(8).unwrap(), 0);
        let mut t2 = stm.begin();
        t2.write(8, 7);
        t2.commit().unwrap();
        t1.write(9, 1);
        let err = t1.commit().unwrap_err();
        assert!(matches!(err, Conflict::Stale { .. }), "got {err:?}");
        assert_eq!(stm.read_word_raw(9), 0, "failed commit published nothing");
    }

    #[test]
    fn read_after_newer_commit_aborts_immediately() {
        let stm = tiny();
        let mut t1 = stm.begin();
        let mut t2 = stm.begin();
        t2.write(8, 7);
        t2.commit().unwrap();
        assert!(matches!(t1.read(8), Err(Conflict::Stale { .. })));
    }

    #[test]
    fn blind_writers_to_the_same_word_both_commit() {
        let stm = tiny();
        let mut t1 = stm.begin();
        let mut t2 = stm.begin();
        t1.write(8, 1);
        t2.write(8, 2);
        t1.commit().unwrap();
        // No reads → nothing to validate; versions just advance.
        let info = t2.commit().unwrap();
        assert_eq!(info.version, 2);
        assert_eq!(stm.read_word_raw(8), 2);
    }

    #[test]
    fn serial_transaction_commits_and_releases_the_gate() {
        let stm = tiny();
        {
            let token = stm.serial_token();
            let mut tx = stm.begin_serial(&token);
            let v = tx.read(8).unwrap();
            tx.write(8, v + 5);
            let info = tx.commit().unwrap();
            assert!(info.serial && info.writer);
        }
        // Gate released: an ordinary writer can commit again.
        let mut tx = stm.begin();
        tx.write(16, 1);
        assert!(tx.commit().unwrap().writer);
    }

    #[test]
    fn table_full_at_commit_aborts_cleanly() {
        let stm = Stm::new(StmConfig {
            n_stripes: 4,
            mem_slots: 8, // exactly 8 slots
            ..StmConfig::default()
        });
        for w in 0..8u64 {
            stm.poke_word_raw(w, 1).unwrap();
        }
        let mut tx = stm.begin();
        tx.write(0, 2); // existing word: fine
        tx.write(100, 1); // new word: no slot left
        assert_eq!(tx.commit().unwrap_err(), Conflict::TableFull);
        assert_eq!(stm.read_word_raw(0), 1, "no partial write-back");
        // Stripes were released: a tx over existing words still commits.
        let mut tx = stm.begin();
        tx.write(0, 3);
        tx.commit().unwrap();
        assert_eq!(stm.read_word_raw(0), 3);
    }

    #[test]
    fn fault_flag_drops_exactly_one_writeback() {
        let stm = Stm::new(StmConfig {
            n_stripes: 16,
            mem_slots: 64,
            fault_skip_one_writeback: true,
            ..StmConfig::default()
        });
        let mut tx = stm.begin();
        tx.write(8, 1);
        tx.write(16, 2); // the last entry: this one is dropped
        tx.commit().unwrap();
        assert_eq!(stm.read_word_raw(8), 1);
        assert_eq!(stm.read_word_raw(16), 0, "injected fault ate the write");
        // One-shot: the next commit is honest.
        let mut tx = stm.begin();
        tx.write(16, 3);
        tx.commit().unwrap();
        assert_eq!(stm.read_word_raw(16), 3);
    }

    #[test]
    fn commit_conflict_on_locked_stripe_restores_old_version() {
        // Force both words onto one stripe so t2's commit finds it locked…
        // except we cannot hold a lock mid-commit from safe code here, so
        // instead check release-on-abort via the stale path: after a failed
        // commit the stripe version must be unchanged.
        let stm = tiny();
        let mut t1 = stm.begin();
        assert_eq!(t1.read(8).unwrap(), 0);
        let mut t2 = stm.begin();
        t2.write(8, 7);
        t2.commit().unwrap();
        let v_before = stm.clock_now();
        t1.write(24, 1);
        assert!(t1.commit().is_err());
        assert_eq!(stm.clock_now(), v_before + 1, "failed commit burned a tick");
        let mut t3 = stm.begin();
        assert_eq!(t3.read(24).unwrap(), 0, "stripe 24 released at old version");
        t3.commit().unwrap();
    }
}
