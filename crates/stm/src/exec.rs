//! Executing [`ThreadProgram`]s on real OS threads over the TL2 core, with
//! commit-order recording and differential replay through the
//! [`SerializabilityOracle`].
//!
//! [`StmSystem`] mirrors the simulator's `System` surface — `add_thread`,
//! `poke_word`, `run`, `read_word`, `finish_checks` — so workloads and tests
//! drive either backend through the same motions (and, via the `TmBackend`
//! trait in `logtm-se`, through the same trait object).
//!
//! # Op semantics on the STM backend
//!
//! * `TxBegin`/`TxCommit` bracket a TL2 transaction. Closed nesting is
//!   *flattened* (a depth counter; only the outermost commit publishes), the
//!   standard STM treatment. `TxBeginOpen` is flattened too — the STM has no
//!   open-nesting early release, so an "open" child simply joins its parent;
//!   this is a semantics *refinement* (more isolation, never less), so every
//!   history it admits is one the oracle accepts.
//! * Aborts always roll back the whole nest ([`ThreadProgram::on_tx_abort`];
//!   `on_partial_abort` is never invoked), then back off exponentially with
//!   jitter and retry. After [`StmConfig::max_retries`] consecutive aborts
//!   the retry runs under the serial token and cannot fail.
//! * Ops outside any transaction run as single-op TL2 transactions, giving
//!   them a commit timestamp so the replay can order them — the execution-
//!   order serialization the oracle assumes for bare accesses.
//! * Escape actions: reads bypass the STM entirely (forwarding from the
//!   enclosing write buffer, like eager hardware where transactional stores
//!   are in place); writes and RMWs run as their own mini transactions and
//!   are recorded separately so they survive an enclosing abort, matching
//!   `SerializabilityOracle::escape_write` semantics.
//!
//! # Replay ordering
//!
//! Every committed record carries a serialization version: a writer's unique
//! write version, or a read-only transaction's read timestamp. Records
//! replay sorted by `(version, writers-first, thread, per-thread seq)`:
//! writers sort before read-only records at the same version because a
//! read-only transaction at `rv` observed every write version `≤ rv`. Within
//! a thread this order provably preserves program order (versions never
//! decrease along a thread, and a later writer's version strictly exceeds
//! any earlier record's).
//!
//! The worker threads themselves are *scheduled by the OS* — unlike the
//! simulator there is no deterministic interleaving. Determinism lives one
//! level up: program streams are seeded, and whatever interleaving the OS
//! produces must replay cleanly, every run, or `finish_checks` reports it.

use std::time::{Duration, Instant};

use logtm_se::{BackoffKind, ContentionPolicy, Cycle, Op, ProgCtx, ThreadProgram, WordAddr};
use ltse_mem::SerializabilityOracle;
use ltse_sim::config::seed_sequence;
use ltse_sim::obs::ObsReport;
use ltse_sim::rng::Xoshiro256StarStar;

use crate::core::{CommitInfo, Conflict, SerialToken, Stm, StmConfig, Tx};

/// A fatal execution error. Transient conflicts never surface here — they
/// abort and retry inside the run; these are the ways a run can genuinely
/// fail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StmError {
    /// `run` was called with no threads added.
    NoThreads,
    /// `run` was called twice.
    AlreadyRan,
    /// A thread exceeded [`StmConfig::max_ops_per_thread`] — a wedged or
    /// divergent workload.
    OpLimit {
        /// The offending thread.
        thread: u32,
    },
    /// The shared word table ran out of slots.
    TableFull {
        /// The thread whose access overflowed it.
        thread: u32,
    },
    /// A program broke the op protocol (commit without begin, `Done` inside
    /// a transaction, escape-end without escape-begin, …).
    Protocol {
        /// The offending thread.
        thread: u32,
        /// What it did.
        msg: String,
    },
    /// A worker thread panicked.
    WorkerPanic {
        /// The thread that panicked.
        thread: u32,
        /// The panic payload, if it was a string.
        msg: String,
    },
}

impl std::fmt::Display for StmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StmError::NoThreads => f.write_str("no threads added"),
            StmError::AlreadyRan => f.write_str("run() called twice"),
            StmError::OpLimit { thread } => {
                write!(f, "thread {thread} exceeded the per-thread op watchdog")
            }
            StmError::TableFull { thread } => {
                write!(f, "thread {thread} overflowed the stm word table")
            }
            StmError::Protocol { thread, msg } => {
                write!(f, "thread {thread} broke the op protocol: {msg}")
            }
            StmError::WorkerPanic { thread, msg } => {
                write!(f, "worker thread {thread} panicked: {msg}")
            }
        }
    }
}

impl std::error::Error for StmError {}

/// One replayable operation of a committed record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RecOp {
    /// A committed load that observed `seen`.
    Read { word: u64, seen: u64 },
    /// A committed store.
    Write { word: u64, value: u64 },
}

/// One committed transaction (outermost, mini, or escape) as recorded for
/// replay.
#[derive(Debug, Clone)]
struct TxRecord {
    /// Serialization version (write version, or `rv` for read-only).
    version: u64,
    /// Did it publish any write?
    writer: bool,
    /// Executing thread.
    thread: u32,
    /// Per-thread record sequence number (sort tie-break).
    seq: u64,
    /// The record's data operations, in program order.
    ops: Vec<RecOp>,
}

/// Per-thread execution counters, merged into [`StmReport`].
#[derive(Debug, Clone, Copy, Default)]
struct WorkerStats {
    commits: u64,
    aborts: u64,
    aborts_locked: u64,
    aborts_stale: u64,
    serial_commits: u64,
    serial_fallbacks: u64,
    mini_commits: u64,
    mini_aborts: u64,
    work_units: u64,
    tx_reads: u64,
    tx_writes: u64,
    max_retry_streak: u32,
}

impl WorkerStats {
    fn merge(&mut self, o: &WorkerStats) {
        self.commits += o.commits;
        self.aborts += o.aborts;
        self.aborts_locked += o.aborts_locked;
        self.aborts_stale += o.aborts_stale;
        self.serial_commits += o.serial_commits;
        self.serial_fallbacks += o.serial_fallbacks;
        self.mini_commits += o.mini_commits;
        self.mini_aborts += o.mini_aborts;
        self.work_units += o.work_units;
        self.tx_reads += o.tx_reads;
        self.tx_writes += o.tx_writes;
        self.max_retry_streak = self.max_retry_streak.max(o.max_retry_streak);
    }
}

struct WorkerOut {
    stats: WorkerStats,
    log: Vec<TxRecord>,
}

/// What an STM run produced. The real-time analogue of the simulator's
/// `RunReport`: wall-clock time instead of cycles, commit/abort counters
/// instead of protocol statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StmReport {
    /// Wall-clock duration of the run (worker spawn to last join).
    pub wall: Duration,
    /// Outermost transactional commits.
    pub commits: u64,
    /// Transactional aborts (each followed by a retry).
    pub aborts: u64,
    /// Aborts caused by hitting a stripe locked by another writer
    /// (`Conflict::Locked`). `aborts_locked + aborts_stale == aborts`.
    pub aborts_locked: u64,
    /// Aborts caused by a stripe version newer than the read timestamp
    /// (`Conflict::Stale`).
    pub aborts_stale: u64,
    /// Commits that ran under the serial fallback token.
    pub serial_commits: u64,
    /// Times a transaction escalated to the serial token after exhausting
    /// [`StmConfig::max_retries`] consecutive aborts.
    pub serial_fallbacks: u64,
    /// Single-op transactions for accesses outside any transaction.
    pub mini_commits: u64,
    /// Retries of those single-op transactions.
    pub mini_aborts: u64,
    /// Work units completed (the paper's Table 2 throughput metric).
    pub work_units: u64,
    /// Transactional reads that reached commit recording.
    pub tx_reads: u64,
    /// Transactional writes that reached commit recording.
    pub tx_writes: u64,
    /// Worst consecutive-abort streak any transaction suffered.
    pub max_retry_streak: u32,
    /// Threads that ran to `Op::Done`.
    pub threads_completed: usize,
}

impl StmReport {
    /// Work units per wall-clock millisecond — the STM-side throughput
    /// number `BENCH_stm.json` compares against the simulator's
    /// units-per-kilocycle.
    pub fn units_per_ms(&self) -> f64 {
        let ms = self.wall.as_secs_f64() * 1e3;
        if ms <= 0.0 {
            0.0
        } else {
            self.work_units as f64 / ms
        }
    }
}

/// Configures and builds an [`StmSystem`] — the STM counterpart of the
/// simulator's `SystemBuilder`.
///
/// ```
/// use ltse_stm::StmBuilder;
/// use logtm_se::{TxScript, WordAddr};
///
/// let mut sys = StmBuilder::new().seed(7).check_serializability(true).build();
/// sys.poke_word(WordAddr(0), 5);
/// for _ in 0..4 {
///     sys.add_thread(Box::new(TxScript::counter(WordAddr(0), 25)));
/// }
/// let report = sys.run().expect("run completes");
/// assert_eq!(report.commits, 100);
/// assert_eq!(sys.read_word(WordAddr(0)), 105, "atomicity held");
/// assert!(sys.finish_checks().is_empty(), "history serializes");
/// ```
#[derive(Debug, Clone)]
pub struct StmBuilder {
    cfg: StmConfig,
    seed: u64,
    check: bool,
}

impl Default for StmBuilder {
    fn default() -> Self {
        StmBuilder::new()
    }
}

impl StmBuilder {
    /// Defaults: production-sized stripes/table, checking off.
    pub fn new() -> Self {
        StmBuilder {
            cfg: StmConfig::default(),
            seed: 1,
            check: false,
        }
    }

    /// Base seed for the per-thread program RNG streams.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Lock-stripe count (rounded up to a power of two; minimum 2). Small
    /// values force distinct words to share stripes — aliasing tests use 2.
    pub fn n_stripes(mut self, n: usize) -> Self {
        self.cfg.n_stripes = n;
        self
    }

    /// Word-table capacity (distinct addresses).
    pub fn mem_slots(mut self, n: usize) -> Self {
        self.cfg.mem_slots = n;
        self
    }

    /// Consecutive aborts before the serial fallback (0 = always serial).
    pub fn max_retries(mut self, n: u32) -> Self {
        self.cfg.max_retries = n;
        self
    }

    /// Post-abort backoff tuning: base and cap spin counts.
    pub fn backoff(mut self, base: u64, cap: u64) -> Self {
        self.cfg.backoff_base = base;
        self.cfg.backoff_cap = cap;
        self
    }

    /// Contention policy (vocabulary shared with the simulator); maps onto
    /// the STM's backoff family and serial-escalation threshold — see
    /// [`policy_levers`].
    pub fn contention(mut self, policy: ContentionPolicy) -> Self {
        self.cfg.contention = policy;
        self
    }

    /// Backoff family used by policies that do not force one of their own.
    pub fn backoff_kind(mut self, kind: BackoffKind) -> Self {
        self.cfg.backoff_kind = kind;
        self
    }

    /// Pins [`ContentionPolicy::Adaptive`] to one static policy's levers
    /// (determinism tests). Ignored by static policies.
    pub fn adaptive_pin(mut self, pin: Option<ContentionPolicy>) -> Self {
        self.cfg.adaptive_pin = pin;
        self
    }

    /// Per-thread op watchdog limit.
    pub fn max_ops_per_thread(mut self, n: u64) -> Self {
        self.cfg.max_ops_per_thread = n;
        self
    }

    /// Record commit order and read values, and replay them through the
    /// [`SerializabilityOracle`] in `finish_checks`.
    pub fn check_serializability(mut self, on: bool) -> Self {
        self.check = on;
        self
    }

    /// Test-only injected bug; see [`StmConfig::fault_skip_one_writeback`].
    pub fn fault_skip_one_writeback(mut self, on: bool) -> Self {
        self.cfg.fault_skip_one_writeback = on;
        self
    }

    /// Builds the system.
    pub fn build(self) -> StmSystem {
        StmSystem {
            stm: Stm::new(self.cfg),
            programs: Vec::new(),
            seed: self.seed,
            check: self.check,
            inits: Vec::new(),
            logs: Vec::new(),
            report: None,
            ran: false,
        }
    }
}

/// A configured multi-threaded STM run: programs in, report and (optionally)
/// an oracle-checked history out.
pub struct StmSystem {
    stm: Stm,
    programs: Vec<Box<dyn ThreadProgram>>,
    seed: u64,
    check: bool,
    inits: Vec<(u64, u64)>,
    logs: Vec<TxRecord>,
    report: Option<StmReport>,
    ran: bool,
}

impl std::fmt::Debug for StmSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StmSystem")
            .field("threads", &self.programs.len())
            .field("seed", &self.seed)
            .field("check", &self.check)
            .field("ran", &self.ran)
            .finish_non_exhaustive()
    }
}

impl StmSystem {
    /// Adds a program; returns its thread id.
    pub fn add_thread(&mut self, program: Box<dyn ThreadProgram>) -> u32 {
        self.programs.push(program);
        (self.programs.len() - 1) as u32
    }

    /// Seeds memory before the run (mirrors `System::poke_word`).
    ///
    /// # Panics
    ///
    /// Panics if the word table is already full — a configuration bug, not
    /// a runtime condition.
    pub fn poke_word(&mut self, addr: WordAddr, value: u64) {
        self.stm
            .poke_word_raw(addr.as_u64(), value)
            .expect("stm word table full during init: raise mem_slots");
        self.inits.push((addr.as_u64(), value));
    }

    /// Reads memory directly (post-run inspection).
    pub fn read_word(&self, addr: WordAddr) -> u64 {
        self.stm.read_word_raw(addr.as_u64())
    }

    /// The run's report, if `run` succeeded.
    pub fn report(&self) -> Option<&StmReport> {
        self.report.as_ref()
    }

    /// Runs every added program to completion on its own OS thread.
    pub fn run(&mut self) -> Result<StmReport, StmError> {
        if self.ran {
            return Err(StmError::AlreadyRan);
        }
        self.ran = true;
        let programs = std::mem::take(&mut self.programs);
        if programs.is_empty() {
            return Err(StmError::NoThreads);
        }
        let n = programs.len();
        let seeds = seed_sequence(self.seed, n);
        let stm = &self.stm;
        let check = self.check;

        let start = Instant::now();
        let results: Vec<Result<WorkerOut, StmError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = programs
                .into_iter()
                .zip(seeds)
                .enumerate()
                .map(|(tid, (program, seed))| {
                    scope.spawn(move || {
                        Worker::new(stm, tid as u32, seed, check).run(program)
                    })
                })
                .collect();
            handles
                .into_iter()
                .enumerate()
                .map(|(tid, h)| {
                    h.join().unwrap_or_else(|payload| {
                        let msg = payload
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "non-string panic payload".to_string());
                        Err(StmError::WorkerPanic {
                            thread: tid as u32,
                            msg,
                        })
                    })
                })
                .collect()
        });
        let wall = start.elapsed();

        let mut stats = WorkerStats::default();
        let mut completed = 0usize;
        for r in &results {
            match r {
                Ok(out) => {
                    stats.merge(&out.stats);
                    completed += 1;
                }
                Err(e) => return Err(e.clone()),
            }
        }
        for out in results.into_iter().flatten() {
            self.logs.extend(out.log);
        }

        let report = StmReport {
            wall,
            commits: stats.commits,
            aborts: stats.aborts,
            aborts_locked: stats.aborts_locked,
            aborts_stale: stats.aborts_stale,
            serial_commits: stats.serial_commits,
            serial_fallbacks: stats.serial_fallbacks,
            mini_commits: stats.mini_commits,
            mini_aborts: stats.mini_aborts,
            work_units: stats.work_units,
            tx_reads: stats.tx_reads,
            tx_writes: stats.tx_writes,
            max_retry_streak: stats.max_retry_streak,
            threads_completed: completed,
        };
        self.report = Some(report);
        Ok(report)
    }

    /// The run's counters re-expressed as the simulator's [`ObsReport`], so
    /// `--stats-json` rows reconcile for the STM backend the same way they
    /// do for the simulator. Retry aborts land in `aborts_conflict` (the
    /// conflict-resolution bucket — the only abort cause a TL2 STM has),
    /// with the finer cause split and the serial-fallback count exported
    /// through the metric registry. `None` before a successful `run`.
    pub fn obs_report(&self) -> Option<ObsReport> {
        let r = self.report?;
        let mut obs = ObsReport {
            aborts_conflict: r.aborts,
            spans_committed: r.commits,
            spans_aborted: r.aborts,
            ..ObsReport::default()
        };
        obs.metrics.add("stm_aborts_locked", r.aborts_locked);
        obs.metrics.add("stm_aborts_stale", r.aborts_stale);
        obs.metrics.add("stm_serial_fallbacks", r.serial_fallbacks);
        obs.metrics.add("stm_serial_commits", r.serial_commits);
        obs.metrics.add("stm_mini_commits", r.mini_commits);
        obs.metrics.add("stm_mini_aborts", r.mini_aborts);
        obs.metrics.add("stm_max_retry_streak", r.max_retry_streak as u64);
        Some(obs)
    }

    /// Replays the recorded history through a fresh [`SerializabilityOracle`]
    /// and sweeps the final memory state. Empty when the run serialized (or
    /// when checking was off). Callable repeatedly.
    pub fn finish_checks(&mut self) -> Vec<String> {
        if !self.check || self.report.is_none() {
            return Vec::new();
        }
        let mut oracle = SerializabilityOracle::new();
        for &(word, value) in &self.inits {
            oracle.init_word(word, value);
        }
        // Serialization order: version, then writers before read-only
        // transactions at the same version, then (thread, seq) — a total
        // order consistent with both the version order and every thread's
        // program order (see the module docs).
        self.logs
            .sort_by_key(|r| (r.version, !r.writer, r.thread, r.seq));
        for rec in &self.logs {
            oracle.begin(rec.thread, false);
            for op in &rec.ops {
                match *op {
                    RecOp::Read { word, seen } => oracle.read(rec.thread, word, seen),
                    RecOp::Write { word, value } => oracle.write(rec.thread, word, value),
                }
            }
            oracle.commit(rec.thread);
        }
        oracle.check_final(|word| self.stm.read_word_raw(word));
        oracle.take_errors()
    }

    /// The shared TL2 state, for tests that need raw protocol access.
    pub fn stm(&self) -> &Stm {
        &self.stm
    }
}

/// The STM's two real contention levers for one worker, derived from the
/// configured policy: which backoff family shapes a loser's wait, and the
/// consecutive-abort count at which the transaction escalates to the serial
/// token. TL2 resolves conflicts at commit time — there is no NACK matrix
/// to arbitrate — so the simulator's requester-centric policies translate
/// as:
///
/// * `RequesterStalls` — the configured family (default randomized
///   exponential): losers wait progressively longer, the stalling analogue.
/// * `RequesterAborts` — constant backoff: abort fast, retry fast.
/// * `SizeMatters` — linear backoff: waits grow with the streak but never
///   explode, approximating work-proportional politeness.
/// * `Karma` — the configured family with half the retry budget: chronic
///   losers serialize sooner, the age-priority analogue.
/// * `Adaptive` — family escalates with the streak (constant → linear →
///   randomized exponential); a pin reproduces a static policy's levers
///   exactly.
fn policy_levers(cfg: &StmConfig, streak: u32) -> (BackoffKind, u32) {
    let policy = match (cfg.contention, cfg.adaptive_pin) {
        (ContentionPolicy::Adaptive, Some(pin)) => pin,
        (p, _) => p,
    };
    match policy {
        ContentionPolicy::RequesterStalls => (cfg.backoff_kind, cfg.max_retries),
        ContentionPolicy::RequesterAborts => (BackoffKind::Constant, cfg.max_retries),
        ContentionPolicy::SizeMatters => (BackoffKind::Linear, cfg.max_retries),
        // `div_ceil` keeps the `0 = always serial` contract intact and
        // never rounds a nonzero budget down to always-serial.
        ContentionPolicy::Karma => (cfg.backoff_kind, cfg.max_retries.div_ceil(2)),
        ContentionPolicy::Adaptive => {
            let kind = if streak < 4 {
                BackoffKind::Constant
            } else if streak < 12 {
                BackoffKind::Linear
            } else {
                BackoffKind::RandExp
            };
            (kind, cfg.max_retries)
        }
    }
}

/// Post-abort backoff: yield the core (essential on single-CPU machines —
/// the conflicting thread cannot progress while we spin), then spin a
/// jittered count shaped by the backoff family.
fn backoff(rng: &mut Xoshiro256StarStar, attempt: u32, kind: BackoffKind, cfg: &StmConfig) {
    std::thread::yield_now();
    let spins = match kind {
        BackoffKind::RandExp => cfg.backoff_base.saturating_shl(attempt.min(16)),
        BackoffKind::Linear => cfg.backoff_base.saturating_mul(u64::from(attempt) + 1),
        BackoffKind::Constant => cfg.backoff_base,
    }
    .min(cfg.backoff_cap)
    .max(1);
    let jitter = rng.gen_range(spins / 2 + 1, spins + 2);
    for _ in 0..jitter {
        std::hint::spin_loop();
    }
}

/// Consecutive-abort bookkeeping for one worker. Extracted so the reset
/// rules — the streak clears only on a real commit, never on mere
/// serial-fallback entry — are unit-testable without staging real thread
/// interleavings.
#[derive(Debug, Default, Clone, Copy)]
struct RetryState {
    /// Consecutive aborts of the current transaction attempt.
    streak: u32,
    /// Lifetime high-water streak (exported as `max_retry_streak`).
    max_streak: u32,
}

impl RetryState {
    /// Records one more consecutive abort; returns the new streak (the
    /// backoff attempt number).
    fn on_abort(&mut self) -> u32 {
        self.streak += 1;
        self.max_streak = self.max_streak.max(self.streak);
        self.streak
    }

    /// A commit ends the streak, serial or not.
    fn on_commit(&mut self) {
        self.streak = 0;
    }

    /// Whether the next begin must run under the serial token.
    fn should_escalate(&self, max_retries: u32) -> bool {
        self.streak >= max_retries
    }
}

/// Busy-work for `Op::Work`, yielding periodically so spin-wait loops
/// (TATAS locks, barriers) cannot monopolize a core.
fn spin_work(cycles: u64) {
    let mut left = cycles;
    loop {
        let chunk = left.min(256);
        for _ in 0..chunk {
            std::hint::spin_loop();
        }
        left -= chunk;
        if left == 0 {
            break;
        }
        std::thread::yield_now();
    }
}

/// One OS thread's execution state.
struct Worker<'a> {
    stm: &'a Stm,
    cfg: StmConfig,
    tid: u32,
    rng: Xoshiro256StarStar,
    check: bool,
    last_value: u64,
    ops_done: u64,
    next_seq: u64,
    /// Closed-nesting depth (flattened: one physical tx at depth ≥ 1).
    depth: usize,
    /// Escape-action nesting depth.
    escape: usize,
    /// Consecutive-abort streak driving backoff and serial escalation.
    retry: RetryState,
    tx: Option<Tx<'a>>,
    token: Option<SerialToken<'a>>,
    stats: WorkerStats,
    log: Vec<TxRecord>,
    /// Data ops of the live transaction, discarded on abort.
    rec: Vec<RecOp>,
}

impl<'a> Worker<'a> {
    fn new(stm: &'a Stm, tid: u32, seed: u64, check: bool) -> Self {
        Worker {
            stm,
            cfg: *stm.config(),
            tid,
            rng: Xoshiro256StarStar::new(seed),
            check,
            last_value: 0,
            ops_done: 0,
            next_seq: 0,
            depth: 0,
            escape: 0,
            retry: RetryState::default(),
            tx: None,
            token: None,
            stats: WorkerStats::default(),
            log: Vec::new(),
            rec: Vec::new(),
        }
    }

    fn protocol(&self, msg: &str) -> StmError {
        StmError::Protocol {
            thread: self.tid,
            msg: msg.to_string(),
        }
    }

    fn push_record(&mut self, version: u64, writer: bool, ops: Vec<RecOp>) {
        if !self.check {
            return;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.log.push(TxRecord {
            version,
            writer,
            thread: self.tid,
            seq,
            ops,
        });
    }

    /// Aborts the live transaction: discard state, tell the program to
    /// rewind, back off. `cause` attributes the abort in the stats (and,
    /// via [`StmSystem::obs_report`], the observability layer).
    fn abort(&mut self, program: &mut dyn ThreadProgram, cause: Conflict) {
        debug_assert!(self.token.is_none(), "serial transactions cannot abort");
        self.tx = None;
        self.token = None;
        self.depth = 0;
        self.escape = 0;
        self.rec.clear();
        let attempt = self.retry.on_abort();
        self.stats.aborts += 1;
        match cause {
            Conflict::Locked { .. } => self.stats.aborts_locked += 1,
            Conflict::Stale { .. } => self.stats.aborts_stale += 1,
            // TableFull is fatal and handled before reaching here; count it
            // as locked-like if it ever slips through rather than panic.
            Conflict::TableFull => self.stats.aborts_locked += 1,
        }
        self.stats.max_retry_streak = self.stats.max_retry_streak.max(self.retry.max_streak);
        let mut ctx = ProgCtx {
            thread_id: self.tid,
            last_value: self.last_value,
            now: Cycle(self.ops_done),
            rng: &mut self.rng,
        };
        program.on_tx_abort(&mut ctx);
        let (kind, _) = policy_levers(&self.cfg, attempt);
        backoff(&mut self.rng, attempt, kind, &self.cfg);
    }

    /// Runs `body` + commit as a single-op transaction, retrying through
    /// transient conflicts (bounded, then serial). Used for every access
    /// outside a transaction, and for escape writes inside one.
    fn mini<R>(
        &mut self,
        mut body: impl FnMut(&mut Tx<'a>) -> Result<R, Conflict>,
    ) -> Result<(R, CommitInfo), StmError> {
        let mut attempt = 0u32;
        loop {
            // If this worker already holds the serial token (an escape
            // action inside a serial transaction), the mini MUST run under
            // it: taking the commit read-gate from the token-holding thread
            // would self-deadlock on the RwLock.
            let (kind, max_retries) = policy_levers(&self.cfg, attempt);
            let escalated = if self.token.is_none() && attempt > max_retries {
                Some(self.stm.serial_token())
            } else {
                None
            };
            let mut tx = match self.token.as_ref().or(escalated.as_ref()) {
                Some(tok) => self.stm.begin_serial(tok),
                None => self.stm.begin(),
            };
            match body(&mut tx).and_then(|r| tx.commit().map(|info| (r, info))) {
                Ok(out) => {
                    self.stats.mini_commits += 1;
                    return Ok(out);
                }
                Err(Conflict::TableFull) => {
                    return Err(StmError::TableFull { thread: self.tid })
                }
                Err(_) => {
                    drop(escalated);
                    self.stats.mini_aborts += 1;
                    attempt += 1;
                    backoff(&mut self.rng, attempt, kind, &self.cfg);
                }
            }
        }
    }

    fn run(mut self, mut program: Box<dyn ThreadProgram>) -> Result<WorkerOut, StmError> {
        loop {
            let op = {
                let mut ctx = ProgCtx {
                    thread_id: self.tid,
                    last_value: self.last_value,
                    now: Cycle(self.ops_done),
                    rng: &mut self.rng,
                };
                program.next_op(&mut ctx)
            };
            self.ops_done += 1;
            if self.ops_done > self.cfg.max_ops_per_thread {
                return Err(StmError::OpLimit { thread: self.tid });
            }
            match op {
                Op::Done => {
                    if self.depth > 0 {
                        return Err(self.protocol("Done inside a transaction"));
                    }
                    if self.escape > 0 {
                        return Err(self.protocol("Done inside an escape action"));
                    }
                    return Ok(WorkerOut {
                        stats: self.stats,
                        log: self.log,
                    });
                }
                Op::TxBegin => {
                    if self.escape > 0 {
                        return Err(self.protocol("TxBegin inside an escape action"));
                    }
                    if self.depth == 0 {
                        let (_, max_retries) = policy_levers(&self.cfg, self.retry.streak);
                        if self.retry.should_escalate(max_retries) {
                            self.token = Some(self.stm.serial_token());
                            self.stats.serial_fallbacks += 1;
                        }
                        self.tx = Some(match &self.token {
                            Some(tok) => self.stm.begin_serial(tok),
                            None => self.stm.begin(),
                        });
                        self.rec.clear();
                    }
                    self.depth += 1;
                }
                Op::TxBeginOpen => {
                    if self.depth == 0 {
                        return Err(self.protocol("open-nested begin outside a transaction"));
                    }
                    self.depth += 1; // flattened, like closed nesting
                }
                Op::TxCommit => match self.depth {
                    0 => return Err(self.protocol("TxCommit without TxBegin")),
                    d if d > 1 => self.depth -= 1,
                    _ => {
                        let tx = self.tx.take().expect("depth 1 implies a live tx");
                        match tx.commit() {
                            Ok(info) => {
                                self.depth = 0;
                                self.retry.on_commit();
                                self.token = None; // releases the serial gate
                                self.stats.commits += 1;
                                if info.serial {
                                    self.stats.serial_commits += 1;
                                }
                                let ops = std::mem::take(&mut self.rec);
                                self.push_record(info.version, info.writer, ops);
                            }
                            Err(Conflict::TableFull) => {
                                return Err(StmError::TableFull { thread: self.tid })
                            }
                            Err(c) => self.abort(program.as_mut(), c),
                        }
                    }
                },
                Op::EscapeBegin => self.escape += 1,
                Op::EscapeEnd => {
                    if self.escape == 0 {
                        return Err(self.protocol("EscapeEnd without EscapeBegin"));
                    }
                    self.escape -= 1;
                }
                Op::WorkUnitDone => self.stats.work_units += 1,
                Op::Work(c) => spin_work(c),
                Op::Read(a) => self.do_read(a, program.as_mut())?,
                Op::Write(a, v) => self.do_write(a, v)?,
                Op::Cas {
                    addr,
                    expected,
                    new,
                } => self.do_cas(addr, expected, new, program.as_mut())?,
                Op::FetchAdd(a, d) => self.do_fetch_add(a, d, program.as_mut())?,
            }
        }
    }

    fn do_read(&mut self, a: WordAddr, program: &mut dyn ThreadProgram) -> Result<(), StmError> {
        let word = a.as_u64();
        if self.escape > 0 {
            // Escape read: unchecked, sees the enclosing tx's buffered
            // stores (eager-hardware illusion) or raw memory.
            self.last_value = self
                .tx
                .as_ref()
                .and_then(|tx| tx.peek_buffered(word))
                .unwrap_or_else(|| self.stm.read_word_raw(word));
        } else if self.depth > 0 {
            let tx = self.tx.as_mut().expect("in-tx read implies a live tx");
            match tx.read(word) {
                Ok(v) => {
                    self.last_value = v;
                    self.stats.tx_reads += 1;
                    if self.check {
                        self.rec.push(RecOp::Read { word, seen: v });
                    }
                }
                Err(Conflict::TableFull) => {
                    return Err(StmError::TableFull { thread: self.tid })
                }
                Err(c) => self.abort(program, c),
            }
        } else {
            // Bare load: a read-only mini transaction (commit cannot fail),
            // serialized at its rv. Yield after — bare loads are how lock
            // and barrier spin-waits poll, and on one core the writer we
            // are waiting for needs the CPU.
            let (v, info) = self.mini(|tx| tx.read(word))?;
            self.last_value = v;
            self.push_record(info.version, false, vec![RecOp::Read { word, seen: v }]);
            std::thread::yield_now();
        }
        Ok(())
    }

    fn do_write(&mut self, a: WordAddr, v: u64) -> Result<(), StmError> {
        let word = a.as_u64();
        if self.escape == 0 && self.depth > 0 {
            let tx = self.tx.as_mut().expect("in-tx write implies a live tx");
            tx.write(word, v);
            self.stats.tx_writes += 1;
            if self.check {
                self.rec.push(RecOp::Write { word, value: v });
            }
        } else {
            // Bare or escape store: its own mini transaction. Recorded as an
            // independent writer record, so (for the escape case) it stays
            // in the history even if the enclosing transaction aborts —
            // escape stores are never rolled back.
            let ((), info) = self.mini(|tx| {
                tx.write(word, v);
                Ok(())
            })?;
            self.push_record(info.version, true, vec![RecOp::Write { word, value: v }]);
        }
        Ok(())
    }

    fn do_cas(
        &mut self,
        a: WordAddr,
        expected: u64,
        new: u64,
        program: &mut dyn ThreadProgram,
    ) -> Result<(), StmError> {
        let word = a.as_u64();
        if self.escape == 0 && self.depth > 0 {
            let tx = self.tx.as_mut().expect("in-tx cas implies a live tx");
            match tx.read(word) {
                Ok(v) => {
                    self.stats.tx_reads += 1;
                    if self.check {
                        self.rec.push(RecOp::Read { word, seen: v });
                    }
                    if v == expected {
                        tx.write(word, new);
                        self.stats.tx_writes += 1;
                        if self.check {
                            self.rec.push(RecOp::Write { word, value: new });
                        }
                    }
                    self.last_value = v;
                }
                Err(Conflict::TableFull) => {
                    return Err(StmError::TableFull { thread: self.tid })
                }
                Err(c) => self.abort(program, c),
            }
        } else {
            let (seen, info) = self.mini(|tx| {
                let v = tx.read(word)?;
                if v == expected {
                    tx.write(word, new);
                }
                Ok(v)
            })?;
            let swapped = seen == expected;
            let mut ops = Vec::with_capacity(2);
            if self.escape == 0 {
                ops.push(RecOp::Read { word, seen });
            }
            if swapped {
                ops.push(RecOp::Write { word, value: new });
            }
            if !ops.is_empty() {
                self.push_record(info.version, swapped, ops);
            }
            self.last_value = seen;
            if !swapped {
                // A failed bare CAS is a lock-acquisition spin iteration.
                std::thread::yield_now();
            }
        }
        Ok(())
    }

    fn do_fetch_add(
        &mut self,
        a: WordAddr,
        d: u64,
        program: &mut dyn ThreadProgram,
    ) -> Result<(), StmError> {
        let word = a.as_u64();
        if self.escape == 0 && self.depth > 0 {
            let tx = self.tx.as_mut().expect("in-tx rmw implies a live tx");
            match tx.read(word) {
                Ok(v) => {
                    let new = v.wrapping_add(d);
                    tx.write(word, new);
                    self.stats.tx_reads += 1;
                    self.stats.tx_writes += 1;
                    if self.check {
                        self.rec.push(RecOp::Read { word, seen: v });
                        self.rec.push(RecOp::Write { word, value: new });
                    }
                    self.last_value = v;
                }
                Err(Conflict::TableFull) => {
                    return Err(StmError::TableFull { thread: self.tid })
                }
                Err(c) => self.abort(program, c),
            }
        } else {
            let (seen, info) = self.mini(|tx| {
                let v = tx.read(word)?;
                tx.write(word, v.wrapping_add(d));
                Ok(v)
            })?;
            let new = seen.wrapping_add(d);
            let ops = if self.escape == 0 {
                vec![
                    RecOp::Read { word, seen },
                    RecOp::Write { word, value: new },
                ]
            } else {
                vec![RecOp::Write { word, value: new }]
            };
            self.push_record(info.version, true, ops);
            self.last_value = seen;
        }
        Ok(())
    }
}

/// `u64::checked_shl`-with-saturation helper used by [`backoff`]: shifting
/// past the width saturates instead of wrapping.
trait SaturatingShl {
    fn saturating_shl(self, rhs: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, rhs: u32) -> Self {
        self.checked_shl(rhs).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logtm_se::{FnProgram, ScriptOp, TxScript};

    fn checked(seed: u64) -> StmSystem {
        StmBuilder::new()
            .seed(seed)
            .n_stripes(64)
            .mem_slots(1 << 12)
            .check_serializability(true)
            .build()
    }

    #[test]
    fn retry_streak_resets_only_on_commit() {
        let mut r = RetryState::default();
        assert!(!r.should_escalate(2));
        assert_eq!(r.on_abort(), 1);
        assert_eq!(r.on_abort(), 2);
        assert!(r.should_escalate(2), "threshold reached");
        // Serial-fallback *entry* must not clear the streak: the escalation
        // decision is re-evaluated at every begin, and a streak silently
        // reset here would bounce a starving transaction back into the
        // optimistic path before it ever commits.
        assert!(r.should_escalate(2), "still escalated until a commit");
        r.on_commit();
        assert!(!r.should_escalate(2), "commit ends the streak");
        assert_eq!(r.max_streak, 2, "high-water survives the reset");
        assert_eq!(r.on_abort(), 1, "a new streak counts from one");
        assert_eq!(r.max_streak, 2);
    }

    #[test]
    fn policy_levers_map_each_policy() {
        let cfg = StmConfig::default();
        assert_eq!(policy_levers(&cfg, 0), (BackoffKind::RandExp, cfg.max_retries));
        let with = |p| StmConfig {
            contention: p,
            ..cfg
        };
        let m = cfg.max_retries;
        assert_eq!(
            policy_levers(&with(ContentionPolicy::RequesterAborts), 9),
            (BackoffKind::Constant, m)
        );
        assert_eq!(
            policy_levers(&with(ContentionPolicy::SizeMatters), 9),
            (BackoffKind::Linear, m)
        );
        assert_eq!(
            policy_levers(&with(ContentionPolicy::Karma), 9),
            (BackoffKind::RandExp, m.div_ceil(2)),
            "karma halves the retry budget"
        );
        let ad = with(ContentionPolicy::Adaptive);
        assert_eq!(policy_levers(&ad, 0).0, BackoffKind::Constant);
        assert_eq!(policy_levers(&ad, 5).0, BackoffKind::Linear);
        assert_eq!(policy_levers(&ad, 20).0, BackoffKind::RandExp);
        // Karma preserves the `0 = always serial` contract.
        let zero = StmConfig {
            contention: ContentionPolicy::Karma,
            max_retries: 0,
            ..cfg
        };
        assert_eq!(policy_levers(&zero, 0).1, 0);
    }

    #[test]
    fn pinned_adaptive_levers_match_the_static_policy() {
        for p in ContentionPolicy::ALL {
            if p == ContentionPolicy::Adaptive {
                continue;
            }
            let pinned = StmConfig {
                contention: ContentionPolicy::Adaptive,
                adaptive_pin: Some(p),
                ..StmConfig::default()
            };
            let fixed = StmConfig {
                contention: p,
                ..StmConfig::default()
            };
            for streak in [0, 3, 8, 40] {
                assert_eq!(
                    policy_levers(&pinned, streak),
                    policy_levers(&fixed, streak),
                    "{p:?} at streak {streak}"
                );
            }
        }
    }

    #[test]
    fn contended_counters_sum_exactly() {
        let mut sys = checked(7);
        sys.poke_word(WordAddr(0), 5);
        for _ in 0..4 {
            sys.add_thread(Box::new(TxScript::counter(WordAddr(0), 50)));
        }
        let r = sys.run().expect("run completes");
        assert_eq!(r.commits, 200);
        assert_eq!(r.work_units, 200);
        assert_eq!(r.threads_completed, 4);
        assert_eq!(sys.read_word(WordAddr(0)), 205);
        assert!(sys.finish_checks().is_empty());
    }

    #[test]
    fn mixed_script_ops_replay_clean() {
        let mut sys = checked(11);
        let (a, b) = (WordAddr(0), WordAddr(8));
        for t in 0..4u64 {
            let ops = if t % 2 == 0 {
                vec![ScriptOp::AddTo(a, 1), ScriptOp::FetchAdd(b, 2), ScriptOp::Work(20)]
            } else {
                vec![ScriptOp::FetchAdd(b, 2), ScriptOp::AddTo(a, 1)]
            };
            sys.add_thread(Box::new(TxScript::new(vec![ops; 25])));
        }
        sys.run().expect("run completes");
        assert_eq!(sys.read_word(WordAddr(0)), 100);
        assert_eq!(sys.read_word(WordAddr(8)), 200);
        assert!(sys.finish_checks().is_empty());
    }

    #[test]
    fn bare_ops_outside_transactions_serialize() {
        // A bare-CAS spinlock protecting a non-atomic counter: pure mini-tx
        // traffic, no TxBegin anywhere.
        let lock = WordAddr(100);
        let ctr = WordAddr(0);
        let mut sys = checked(3);
        for _ in 0..3 {
            let mut iters = 0u32;
            let mut step = 0u8;
            sys.add_thread(Box::new(FnProgram::new(move |t, _| {
                match step {
                    0 => {
                        if iters == 40 {
                            return Op::Done;
                        }
                        step = 1;
                        Op::Cas { addr: lock, expected: 0, new: 1 }
                    }
                    1 => {
                        if t.last_value != 0 {
                            step = 0; // lost the CAS; spin again
                            return Op::Work(10);
                        }
                        step = 2;
                        Op::Read(ctr)
                    }
                    2 => {
                        step = 3;
                        Op::Write(ctr, t.last_value + 1)
                    }
                    _ => {
                        step = 0;
                        iters += 1;
                        Op::Write(lock, 0)
                    }
                }
            })));
        }
        let r = sys.run().expect("run completes");
        assert_eq!(sys.read_word(ctr), 120, "spinlock held mutual exclusion");
        assert!(r.mini_commits > 0);
        assert_eq!(r.commits, 0);
        assert!(sys.finish_checks().is_empty());
    }

    #[test]
    fn closed_nesting_flattens() {
        let a = WordAddr(0);
        let mut sys = checked(5);
        let mut step = 0u8;
        sys.add_thread(Box::new(FnProgram::new(move |t, _| {
            step += 1;
            match step {
                1 => Op::TxBegin,
                2 => Op::TxBegin,     // closed child
                3 => Op::TxBeginOpen, // flattened too
                4 => Op::Read(a),
                5 => Op::Write(a, t.last_value + 9),
                6 | 7 => Op::TxCommit, // close the children…
                8 => Op::TxCommit,     // …then the real commit
                _ => Op::Done,
            }
        })));
        let r = sys.run().expect("run completes");
        assert_eq!(r.commits, 1, "one flattened physical transaction");
        assert_eq!(sys.read_word(a), 9);
        assert!(sys.finish_checks().is_empty());
    }

    #[test]
    fn escape_writes_survive_an_enclosing_abort() {
        let data = WordAddr(0);
        let marker = WordAddr(8);
        let mut sys = checked(9);
        let mut step = 0u8;
        let mut tries = 0u32;
        sys.add_thread(Box::new(FnProgram::new(move |t, aborted| {
            if aborted {
                step = 0;
            }
            step += 1;
            match step {
                1 => {
                    tries += 1;
                    Op::TxBegin
                }
                2 => Op::Read(data),
                3 => Op::EscapeBegin,
                // One escape store per attempt: visible even for the attempt
                // that aborts.
                4 => Op::Write(marker, tries as u64),
                5 => Op::EscapeEnd,
                6 => Op::Write(data, t.last_value + 1),
                7 => Op::TxCommit,
                _ => Op::Done,
            }
        })));
        // A second thread racing on `data` to provoke at least the chance of
        // aborts; the invariant below holds either way.
        sys.add_thread(Box::new(TxScript::counter(data, 30)));
        let r = sys.run().expect("run completes");
        assert_eq!(sys.read_word(data), 31);
        let marker_val = sys.read_word(marker);
        assert!(marker_val >= 1, "escape write applied at least once");
        assert_eq!(r.threads_completed, 2);
        assert!(sys.finish_checks().is_empty());
    }

    #[test]
    fn serial_fallback_only_still_sums() {
        let mut sys = StmBuilder::new()
            .seed(13)
            .max_retries(0) // every transaction takes the serial path
            .check_serializability(true)
            .build();
        for _ in 0..3 {
            sys.add_thread(Box::new(TxScript::counter(WordAddr(0), 20)));
        }
        let r = sys.run().expect("run completes");
        assert_eq!(r.commits, 60);
        assert_eq!(r.serial_commits, 60, "max_retries=0 serializes everything");
        assert_eq!(r.serial_fallbacks, 60, "every begin escalated");
        assert_eq!(r.aborts, 0, "serial transactions cannot abort");
        assert_eq!(sys.read_word(WordAddr(0)), 60);
        assert!(sys.finish_checks().is_empty());
    }

    #[test]
    fn abort_causes_partition_and_obs_report_reconciles() {
        // High contention on one word with few stripes provokes aborts;
        // whatever happens, the per-cause split must partition the total
        // and the ObsReport view must reconcile with the raw report.
        let mut sys = StmBuilder::new()
            .seed(17)
            .n_stripes(2)
            .mem_slots(1 << 10)
            .check_serializability(true)
            .build();
        sys.poke_word(WordAddr(0), 0);
        for _ in 0..4 {
            sys.add_thread(Box::new(TxScript::counter(WordAddr(0), 50)));
        }
        let r = sys.run().expect("run completes");
        assert_eq!(r.aborts_locked + r.aborts_stale, r.aborts);
        let obs = sys.obs_report().expect("obs view after a successful run");
        assert_eq!(obs.abort_total(), r.aborts);
        assert_eq!(obs.aborts_conflict, r.aborts);
        assert_eq!(obs.spans_committed, r.commits);
        assert_eq!(
            obs.metrics.get("stm_aborts_locked") + obs.metrics.get("stm_aborts_stale"),
            r.aborts
        );
        assert_eq!(obs.metrics.get("stm_serial_fallbacks"), r.serial_fallbacks);
        assert!(sys.finish_checks().is_empty());
    }

    #[test]
    fn injected_writeback_fault_is_caught_by_the_oracle() {
        let run = |fault: bool| {
            let mut sys = StmBuilder::new()
                .seed(21)
                .check_serializability(true)
                .fault_skip_one_writeback(fault)
                .build();
            for _ in 0..2 {
                sys.add_thread(Box::new(TxScript::counter(WordAddr(0), 10)));
            }
            sys.run().expect("run completes");
            sys.finish_checks()
        };
        assert!(run(false).is_empty(), "healthy STM replays clean");
        let errs = run(true);
        assert!(
            !errs.is_empty(),
            "oracle must catch the dropped write-back"
        );
        let all = errs.join("; ");
        assert!(
            all.contains("expects") || all.contains("diverges"),
            "expected a replay divergence, got: {all}"
        );
    }

    #[test]
    fn run_twice_and_empty_are_errors() {
        let mut sys = StmBuilder::new().build();
        assert_eq!(sys.run(), Err(StmError::NoThreads));
        let mut sys = StmBuilder::new().build();
        sys.add_thread(Box::new(TxScript::counter(WordAddr(0), 1)));
        sys.run().expect("first run");
        assert_eq!(sys.run(), Err(StmError::AlreadyRan));
    }

    #[test]
    fn op_watchdog_fails_wedged_programs() {
        let mut sys = StmBuilder::new().max_ops_per_thread(1000).build();
        sys.add_thread(Box::new(FnProgram::new(|_, _| Op::Work(1))));
        assert_eq!(sys.run(), Err(StmError::OpLimit { thread: 0 }));
    }

    #[test]
    fn protocol_violations_are_reported() {
        let mut sys = StmBuilder::new().build();
        sys.add_thread(Box::new(FnProgram::new(|_, _| Op::TxCommit)));
        assert!(matches!(
            sys.run(),
            Err(StmError::Protocol { thread: 0, .. })
        ));
    }

    #[test]
    fn table_full_surfaces_as_a_run_error() {
        let mut sys = StmBuilder::new().mem_slots(8).build();
        sys.add_thread(Box::new(TxScript::new(vec![(0..12u64)
            .map(|i| ScriptOp::Write(WordAddr(i * 8), 1))
            .collect()])));
        assert_eq!(sys.run(), Err(StmError::TableFull { thread: 0 }));
    }
}
