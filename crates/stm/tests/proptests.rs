//! Seeded property tests for the TL2 engine, via `ltse_sim::check`.
//!
//! Each test states one invariant the STM's correctness argument rests on
//! — clock monotonicity, unique writer timestamps, exact sums under lock
//! aliasing, commit-time rejection of stale snapshots, serial-fallback
//! soundness, clean table-capacity failure — and hammers it with hundreds
//! of randomized cases. A failing case prints its index and seed through
//! `check::cases`, so any counterexample is immediately re-runnable.

use std::sync::Mutex;

use logtm_se::{TxScript, WordAddr};
use ltse_sim::check::{cases, pick, vec_of};
use ltse_stm::{Conflict, Stm, StmBuilder, StmConfig};

fn small_stm(n_stripes: usize) -> Stm {
    Stm::new(StmConfig {
        n_stripes,
        ..StmConfig::default()
    })
}

/// The global clock only moves forward, every writer commit gets a fresh
/// timestamp, and timestamps issued by concurrently committing threads are
/// all distinct.
#[test]
fn clock_is_monotone_and_writer_versions_are_unique() {
    cases(60, 0x57A7_1C, |rng| {
        let stm = small_stm(*pick(rng, &[8, 1 << 10]));
        let threads = rng.gen_range(2, 5);
        let commits_per_thread = rng.gen_range(1, 20);
        let versions = Mutex::new(Vec::new());
        let (stm, versions) = (&stm, &versions);
        std::thread::scope(|s| {
            for t in 0..threads {
                s.spawn(move || {
                    let mut mine = Vec::new();
                    for i in 0..commits_per_thread {
                        // Per-thread words: no data conflicts. Stripe
                        // aliasing (8 stripes) can still surface transient
                        // Locked/Stale conflicts against a concurrent
                        // committer's lock — retry those, as the executor
                        // would; the uniqueness claim is about the clock,
                        // not about single-attempt commits.
                        let word = t * 1000 + i;
                        let info = loop {
                            let mut tx = stm.begin();
                            tx.write(word, i);
                            match tx.commit() {
                                Ok(info) => break info,
                                Err(Conflict::Locked { .. } | Conflict::Stale { .. }) => continue,
                                Err(e) => panic!("non-transient conflict: {e}"),
                            }
                        };
                        assert!(info.writer);
                        mine.push(info.version);
                    }
                    assert!(
                        mine.windows(2).all(|w| w[0] < w[1]),
                        "a thread's own commit timestamps must increase"
                    );
                    versions.lock().unwrap().extend(mine);
                });
            }
        });
        let mut versions = std::mem::take(&mut *versions.lock().unwrap());
        let n = versions.len();
        assert_eq!(n as u64, threads * commits_per_thread);
        versions.sort_unstable();
        versions.dedup();
        assert_eq!(versions.len(), n, "duplicate writer timestamp issued");
        let max = *versions.last().unwrap();
        assert!(stm.clock_now() >= max, "clock behind an issued timestamp");
    });
}

/// With absurdly few lock stripes, unrelated words share write-locks.
/// Aliasing may cost aborts — never increments. Transactional counters at
/// random (possibly colliding) addresses must sum exactly.
#[test]
fn stripe_aliasing_never_loses_writes() {
    cases(40, 0x57A7_2A, |rng| {
        let threads = rng.gen_range(2, 5) as u32;
        let mut sys = StmBuilder::new()
            .seed(rng.gen_range(0, u64::MAX))
            .n_stripes(*pick(rng, &[1usize, 2, 4]))
            .check_serializability(true)
            .build();
        // Few distinct counters over a huge address range: with 1-4
        // stripes every counter aliases with some other.
        let addrs = vec_of(rng, 1, 4, |rng| WordAddr(rng.gen_range(0, 1 << 30)));
        let iters = rng.gen_range(2, 10) as usize;
        let mut expected = std::collections::HashMap::new();
        for _ in 0..threads {
            for &a in &addrs {
                sys.add_thread(Box::new(TxScript::counter(a, iters)));
                *expected.entry(a.0).or_insert(0u64) += iters as u64;
            }
        }
        sys.run().expect("run completes");
        let errs = sys.finish_checks();
        assert!(errs.is_empty(), "oracle clean under aliasing: {errs:?}");
        for (&word, &total) in &expected {
            assert_eq!(sys.read_word(WordAddr(word)), total, "word {word}");
        }
    });
}

/// Commit-time validation must reject a writer whose read snapshot went
/// stale: if another transaction commits a write to a word after we read
/// it, our commit fails with `Stale` on exactly that word's stripe — and
/// with no interference, the same commit succeeds.
#[test]
fn read_set_validation_rejects_stale_snapshots() {
    cases(200, 0x57A7_3B, |rng| {
        let stm = small_stm(*pick(rng, &[8, 64, 1 << 12]));
        let word = rng.gen_range(0, 1 << 24);
        let interfere = rng.gen_range(0, 2) == 1;

        let mut victim = stm.begin();
        let seen = victim.read(word).expect("quiescent read");
        if interfere {
            let mut other = stm.begin();
            other.write(word, seen + 1);
            other.commit().expect("uncontended interferer commits");
        }
        // The victim must be a writer (read-only transactions serialize at
        // their read timestamp and need no commit-time validation). Write
        // to the *same* word so the stale stripe is unambiguous even when
        // the small stripe count aliases `out` onto it.
        victim.write(word, seen + 100);
        match (interfere, victim.commit()) {
            (true, Err(Conflict::Stale { stripe })) => {
                assert_eq!(stripe, stm.stripe_of(word), "stale stripe pinpointed")
            }
            (true, other) => panic!("stale snapshot must abort the commit, got {other:?}"),
            (false, Ok(info)) => assert!(info.writer),
            (false, Err(e)) => panic!("uncontended commit failed: {e}"),
        }
        if interfere {
            assert_eq!(stm.read_word_raw(word), seen + 1, "victim's abort left no trace");
        }
    });
}

/// A transaction always observes its own buffered writes, and an aborted
/// transaction's buffer never leaks into shared memory.
#[test]
fn write_buffer_forwards_and_aborts_leave_no_trace() {
    cases(200, 0x57A7_4C, |rng| {
        let stm = small_stm(64);
        let word = rng.gen_range(0, 1 << 16);
        let before = rng.gen_range(0, 100);
        stm.poke_word_raw(word, before).expect("seed table");
        let mut tx = stm.begin();
        let vals = vec_of(rng, 1, 6, |rng| rng.gen_range(0, 1 << 20));
        for &v in &vals {
            tx.write(word, v);
            assert_eq!(tx.peek_buffered(word), Some(v));
            assert_eq!(tx.read(word).expect("own write"), v);
        }
        // Dropping the transaction without committing is an abort: the
        // lazily buffered writes must never have touched shared memory.
        drop(tx);
        assert_eq!(stm.read_word_raw(word), before);
    });
}

/// The serial fallback is livelock-proof *and* correct: with a retry budget
/// of zero every writer escalates to the exclusive token, yet sums stay
/// exact and the oracle stays clean.
#[test]
fn serial_fallback_alone_is_still_serializable() {
    cases(30, 0x57A7_5D, |rng| {
        let threads = rng.gen_range(2, 5) as u32;
        let iters = rng.gen_range(2, 8) as usize;
        let addr = WordAddr(rng.gen_range(0, 64));
        let mut sys = StmBuilder::new()
            .seed(rng.gen_range(0, u64::MAX))
            .max_retries(0)
            .check_serializability(true)
            .build();
        for _ in 0..threads {
            sys.add_thread(Box::new(TxScript::counter(addr, iters)));
        }
        let report = sys.run().expect("run completes");
        assert!(sys.finish_checks().is_empty());
        assert_eq!(sys.read_word(addr), threads as u64 * iters as u64);
        assert_eq!(report.serial_commits, report.commits, "every commit escalated");
    });
}

/// Running out of word-table slots fails cleanly: the committing
/// transaction reports `TableFull` without publishing a torn prefix of its
/// write set, and earlier commits remain readable.
#[test]
fn table_exhaustion_is_clean_not_torn() {
    cases(100, 0x57A7_6E, |rng| {
        let stm = Stm::new(StmConfig {
            mem_slots: 8,
            n_stripes: 64,
            ..StmConfig::default()
        });
        // Capacity rounds to 8; leave room, then overflow in one commit.
        let keep = rng.gen_range(1, 4);
        for w in 0..keep {
            let mut tx = stm.begin();
            tx.write(w, w + 1);
            tx.commit().expect("within capacity");
        }
        let mut tx = stm.begin();
        for i in 0..16u64 {
            tx.write(1000 + i * 7919, i);
        }
        match tx.commit() {
            Err(Conflict::TableFull) => {}
            other => panic!("expected TableFull, got {other:?}"),
        }
        for w in 0..keep {
            assert_eq!(stm.read_word_raw(w), w + 1, "pre-existing value intact");
        }
        for i in 0..16u64 {
            assert_eq!(stm.read_word_raw(1000 + i * 7919), 0, "no torn write-back");
        }
    });
}
