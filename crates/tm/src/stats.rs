//! Per-thread and aggregate transactional statistics.
//!
//! These counters regenerate the paper's Table 2 (transactions, read/write
//! set sizes) and Table 3 (commits, stalls, aborts, false-positive
//! percentage). Some counters use `Cell` because they are bumped from inside
//! `ConflictOracle` checks, which the memory system invokes through a shared
//! reference.

use std::cell::Cell;

use ltse_sim::stats::{Histogram, Summary};

/// Read/write-set sizes of one committed transaction (exact, from the
/// shadow sets).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxSetSizes {
    /// Distinct blocks read.
    pub read_blocks: u64,
    /// Distinct blocks written.
    pub write_blocks: u64,
}

/// Statistics for one thread (or aggregated over threads).
#[derive(Debug, Clone, Default)]
pub struct TmStats {
    /// Committed outermost transactions.
    pub commits: u64,
    /// Aborted transactions (outermost aborts).
    pub aborts: u64,
    /// Partial (inner-frame) aborts that did not kill the outer transaction.
    pub partial_aborts: u64,
    /// Times a request by this thread was NACKed (the paper's "transaction
    /// stalls").
    pub stalls: u64,
    /// Stalls caused by the *other SMT context on the same core* (conflicts
    /// the coherence protocol never sees, §2).
    pub sibling_stalls: u64,
    /// Conflicts *this* thread's signature reported against others, judged
    /// real by the shadow sets.
    pub true_conflicts_signalled: Cell<u64>,
    /// Conflicts this thread's signature reported against others that were
    /// pure aliasing (Table 3 false positives).
    pub false_conflicts_signalled: Cell<u64>,
    /// Conflicts reported by the summary signature, real.
    pub summary_true_conflicts: Cell<u64>,
    /// Conflicts reported by the summary signature, false positives.
    pub summary_false_conflicts: Cell<u64>,
    /// Undo records written (log writes that actually happened).
    pub log_writes: u64,
    /// Redundant log writes suppressed by the log filter.
    pub log_writes_suppressed: u64,
    /// Cycles spent inside transactions that ultimately aborted.
    pub wasted_cycles: u64,
    /// Distribution of committed read-set sizes (Table 2 "Read Avg/Max").
    pub read_set: Summary,
    /// Distribution of committed write-set sizes (Table 2 "Write Avg/Max").
    pub write_set: Summary,
    /// Full histogram of committed read-set sizes (percentile analysis of
    /// the skewed tails the paper highlights in §6.3).
    pub read_set_hist: Histogram,
    /// Full histogram of committed write-set sizes.
    pub write_set_hist: Histogram,
    /// Peak undo-log footprint in 64-bit words over any single transaction
    /// (the paper's logs are unbounded virtual memory; this is how much was
    /// actually used).
    pub log_high_water_words: u64,
    /// Completed units of work (workload-defined; Table 2 "Units").
    pub work_units: u64,
    /// Escape actions entered (non-transactional windows, §6.2).
    pub escapes: u64,
    /// Times this thread's transaction escalated to the global
    /// serialization token after a bounded retry streak
    /// (`TmConfig::escalate_after`).
    pub serial_escalations: u64,
}

impl TmStats {
    /// Creates zeroed stats.
    pub fn new() -> Self {
        TmStats::default()
    }

    /// Total conflicts this thread's signatures signalled (true + false).
    pub fn conflicts_signalled(&self) -> u64 {
        self.true_conflicts_signalled.get() + self.false_conflicts_signalled.get()
    }

    /// The paper's Table 3 "False Positive %" for conflicts this thread
    /// signalled (`None` when it signalled none).
    pub fn false_positive_pct(&self) -> Option<f64> {
        let total = self.conflicts_signalled();
        (total > 0)
            .then(|| 100.0 * self.false_conflicts_signalled.get() as f64 / total as f64)
    }

    /// Merges another thread's stats into this aggregate.
    ///
    /// Counter additions saturate instead of wrapping/panicking: merging is
    /// a reporting path, and a pegged counter is a better failure mode than
    /// a crashed (or, in release, silently wrapped) aggregate.
    ///
    /// `other` is destructured exhaustively, so adding a field to `TmStats`
    /// without deciding how it merges is a compile error, not a silently
    /// dropped counter.
    pub fn merge(&mut self, other: &TmStats) {
        let TmStats {
            commits,
            aborts,
            partial_aborts,
            stalls,
            sibling_stalls,
            true_conflicts_signalled,
            false_conflicts_signalled,
            summary_true_conflicts,
            summary_false_conflicts,
            log_writes,
            log_writes_suppressed,
            wasted_cycles,
            read_set,
            write_set,
            read_set_hist,
            write_set_hist,
            log_high_water_words,
            work_units,
            escapes,
            serial_escalations,
        } = other;
        self.commits = self.commits.saturating_add(*commits);
        self.aborts = self.aborts.saturating_add(*aborts);
        self.partial_aborts = self.partial_aborts.saturating_add(*partial_aborts);
        self.stalls = self.stalls.saturating_add(*stalls);
        self.sibling_stalls = self.sibling_stalls.saturating_add(*sibling_stalls);
        self.true_conflicts_signalled
            .set(self.true_conflicts_signalled.get().saturating_add(true_conflicts_signalled.get()));
        self.false_conflicts_signalled.set(
            self.false_conflicts_signalled.get().saturating_add(false_conflicts_signalled.get()),
        );
        self.summary_true_conflicts
            .set(self.summary_true_conflicts.get().saturating_add(summary_true_conflicts.get()));
        self.summary_false_conflicts
            .set(self.summary_false_conflicts.get().saturating_add(summary_false_conflicts.get()));
        self.log_writes = self.log_writes.saturating_add(*log_writes);
        self.log_writes_suppressed =
            self.log_writes_suppressed.saturating_add(*log_writes_suppressed);
        self.wasted_cycles = self.wasted_cycles.saturating_add(*wasted_cycles);
        self.read_set.merge(read_set);
        self.write_set.merge(write_set);
        self.read_set_hist.merge(read_set_hist);
        self.write_set_hist.merge(write_set_hist);
        self.log_high_water_words = self.log_high_water_words.max(*log_high_water_words);
        self.work_units = self.work_units.saturating_add(*work_units);
        self.escapes = self.escapes.saturating_add(*escapes);
        self.serial_escalations = self.serial_escalations.saturating_add(*serial_escalations);
    }

    /// Records a committed transaction's exact set sizes.
    pub fn record_commit_sets(&mut self, sizes: TxSetSizes) {
        self.read_set.record(sizes.read_blocks);
        self.write_set.record(sizes.write_blocks);
        self.read_set_hist.record(sizes.read_blocks);
        self.write_set_hist.record(sizes.write_blocks);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn false_positive_pct() {
        let s = TmStats::new();
        assert_eq!(s.false_positive_pct(), None);
        s.true_conflicts_signalled.set(3);
        s.false_conflicts_signalled.set(1);
        assert!((s.false_positive_pct().unwrap() - 25.0).abs() < 1e-9);
    }

    /// Builds stats where every single field holds a distinct nonzero
    /// value derived from `k`, exhaustively (adding a `TmStats` field
    /// without extending this constructor is a compile error).
    fn all_fields_set(k: u64) -> TmStats {
        let s = TmStats {
            commits: k + 1,
            aborts: k + 2,
            partial_aborts: k + 3,
            stalls: k + 4,
            sibling_stalls: k + 5,
            true_conflicts_signalled: Cell::new(k + 6),
            false_conflicts_signalled: Cell::new(k + 7),
            summary_true_conflicts: Cell::new(k + 8),
            summary_false_conflicts: Cell::new(k + 9),
            log_writes: k + 10,
            log_writes_suppressed: k + 11,
            wasted_cycles: k + 12,
            read_set: Summary::new(),
            write_set: Summary::new(),
            read_set_hist: Histogram::new(),
            write_set_hist: Histogram::new(),
            log_high_water_words: k + 13,
            work_units: k + 14,
            escapes: k + 15,
            serial_escalations: k + 18,
        };
        let mut s = s;
        s.record_commit_sets(TxSetSizes {
            read_blocks: k + 16,
            write_blocks: k + 17,
        });
        s
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = all_fields_set(100);
        let b = all_fields_set(1000);
        a.merge(&b);
        // Destructure the merged aggregate exhaustively: a new counter that
        // is not asserted here fails to compile, so it cannot be silently
        // dropped from `merge` again.
        let TmStats {
            commits,
            aborts,
            partial_aborts,
            stalls,
            sibling_stalls,
            true_conflicts_signalled,
            false_conflicts_signalled,
            summary_true_conflicts,
            summary_false_conflicts,
            log_writes,
            log_writes_suppressed,
            wasted_cycles,
            read_set,
            write_set,
            read_set_hist,
            write_set_hist,
            log_high_water_words,
            work_units,
            escapes,
            serial_escalations,
        } = a;
        assert_eq!(commits, 101 + 1001);
        assert_eq!(aborts, 102 + 1002);
        assert_eq!(partial_aborts, 103 + 1003);
        assert_eq!(stalls, 104 + 1004);
        assert_eq!(sibling_stalls, 105 + 1005);
        assert_eq!(true_conflicts_signalled.get(), 106 + 1006);
        assert_eq!(false_conflicts_signalled.get(), 107 + 1007);
        assert_eq!(summary_true_conflicts.get(), 108 + 1008);
        assert_eq!(summary_false_conflicts.get(), 109 + 1009);
        assert_eq!(log_writes, 110 + 1010);
        assert_eq!(log_writes_suppressed, 111 + 1011);
        assert_eq!(wasted_cycles, 112 + 1012);
        assert_eq!(read_set.count(), 2);
        assert_eq!(read_set.min(), Some(116));
        assert_eq!(read_set.max(), Some(1016));
        assert_eq!(write_set.count(), 2);
        assert_eq!(write_set.min(), Some(117));
        assert_eq!(write_set.max(), Some(1017));
        assert_eq!(read_set_hist.total(), 2);
        assert_eq!(read_set_hist.percentile(100), Some(1016));
        assert_eq!(write_set_hist.total(), 2);
        assert_eq!(write_set_hist.percentile(100), Some(1017));
        assert_eq!(log_high_water_words, 1013, "high water merges via max");
        assert_eq!(work_units, 114 + 1014);
        assert_eq!(escapes, 115 + 1015);
        assert_eq!(serial_escalations, 118 + 1018);
    }

    #[test]
    fn merge_saturates_instead_of_wrapping() {
        let mut a = all_fields_set(0);
        a.commits = u64::MAX - 1;
        a.wasted_cycles = u64::MAX;
        a.true_conflicts_signalled.set(u64::MAX);
        let b = all_fields_set(0);
        a.merge(&b);
        assert_eq!(a.commits, u64::MAX, "saturates at the ceiling");
        assert_eq!(a.wasted_cycles, u64::MAX);
        assert_eq!(a.true_conflicts_signalled.get(), u64::MAX);
        // Untouched fields still merge normally.
        assert_eq!(a.aborts, 2 + 2);
    }
}
