//! Per-thread and aggregate transactional statistics.
//!
//! These counters regenerate the paper's Table 2 (transactions, read/write
//! set sizes) and Table 3 (commits, stalls, aborts, false-positive
//! percentage). Some counters use `Cell` because they are bumped from inside
//! `ConflictOracle` checks, which the memory system invokes through a shared
//! reference.

use std::cell::Cell;

use ltse_sim::stats::{Histogram, Summary};

/// Read/write-set sizes of one committed transaction (exact, from the
/// shadow sets).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxSetSizes {
    /// Distinct blocks read.
    pub read_blocks: u64,
    /// Distinct blocks written.
    pub write_blocks: u64,
}

/// Statistics for one thread (or aggregated over threads).
#[derive(Debug, Clone, Default)]
pub struct TmStats {
    /// Committed outermost transactions.
    pub commits: u64,
    /// Aborted transactions (outermost aborts).
    pub aborts: u64,
    /// Partial (inner-frame) aborts that did not kill the outer transaction.
    pub partial_aborts: u64,
    /// Times a request by this thread was NACKed (the paper's "transaction
    /// stalls").
    pub stalls: u64,
    /// Stalls caused by the *other SMT context on the same core* (conflicts
    /// the coherence protocol never sees, §2).
    pub sibling_stalls: u64,
    /// Conflicts *this* thread's signature reported against others, judged
    /// real by the shadow sets.
    pub true_conflicts_signalled: Cell<u64>,
    /// Conflicts this thread's signature reported against others that were
    /// pure aliasing (Table 3 false positives).
    pub false_conflicts_signalled: Cell<u64>,
    /// Conflicts reported by the summary signature, real.
    pub summary_true_conflicts: Cell<u64>,
    /// Conflicts reported by the summary signature, false positives.
    pub summary_false_conflicts: Cell<u64>,
    /// Undo records written (log writes that actually happened).
    pub log_writes: u64,
    /// Redundant log writes suppressed by the log filter.
    pub log_writes_suppressed: u64,
    /// Cycles spent inside transactions that ultimately aborted.
    pub wasted_cycles: u64,
    /// Distribution of committed read-set sizes (Table 2 "Read Avg/Max").
    pub read_set: Summary,
    /// Distribution of committed write-set sizes (Table 2 "Write Avg/Max").
    pub write_set: Summary,
    /// Full histogram of committed read-set sizes (percentile analysis of
    /// the skewed tails the paper highlights in §6.3).
    pub read_set_hist: Histogram,
    /// Full histogram of committed write-set sizes.
    pub write_set_hist: Histogram,
    /// Peak undo-log footprint in 64-bit words over any single transaction
    /// (the paper's logs are unbounded virtual memory; this is how much was
    /// actually used).
    pub log_high_water_words: u64,
    /// Completed units of work (workload-defined; Table 2 "Units").
    pub work_units: u64,
    /// Escape actions entered (non-transactional windows, §6.2).
    pub escapes: u64,
}

impl TmStats {
    /// Creates zeroed stats.
    pub fn new() -> Self {
        TmStats::default()
    }

    /// Total conflicts this thread's signatures signalled (true + false).
    pub fn conflicts_signalled(&self) -> u64 {
        self.true_conflicts_signalled.get() + self.false_conflicts_signalled.get()
    }

    /// The paper's Table 3 "False Positive %" for conflicts this thread
    /// signalled (`None` when it signalled none).
    pub fn false_positive_pct(&self) -> Option<f64> {
        let total = self.conflicts_signalled();
        (total > 0)
            .then(|| 100.0 * self.false_conflicts_signalled.get() as f64 / total as f64)
    }

    /// Merges another thread's stats into this aggregate.
    pub fn merge(&mut self, other: &TmStats) {
        self.commits += other.commits;
        self.aborts += other.aborts;
        self.partial_aborts += other.partial_aborts;
        self.stalls += other.stalls;
        self.sibling_stalls += other.sibling_stalls;
        self.true_conflicts_signalled
            .set(self.true_conflicts_signalled.get() + other.true_conflicts_signalled.get());
        self.false_conflicts_signalled
            .set(self.false_conflicts_signalled.get() + other.false_conflicts_signalled.get());
        self.summary_true_conflicts
            .set(self.summary_true_conflicts.get() + other.summary_true_conflicts.get());
        self.summary_false_conflicts
            .set(self.summary_false_conflicts.get() + other.summary_false_conflicts.get());
        self.log_writes += other.log_writes;
        self.log_writes_suppressed += other.log_writes_suppressed;
        self.wasted_cycles += other.wasted_cycles;
        self.read_set.merge(&other.read_set);
        self.write_set.merge(&other.write_set);
        self.read_set_hist.merge(&other.read_set_hist);
        self.write_set_hist.merge(&other.write_set_hist);
        self.log_high_water_words = self.log_high_water_words.max(other.log_high_water_words);
        self.work_units += other.work_units;
        self.escapes += other.escapes;
    }

    /// Records a committed transaction's exact set sizes.
    pub fn record_commit_sets(&mut self, sizes: TxSetSizes) {
        self.read_set.record(sizes.read_blocks);
        self.write_set.record(sizes.write_blocks);
        self.read_set_hist.record(sizes.read_blocks);
        self.write_set_hist.record(sizes.write_blocks);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn false_positive_pct() {
        let s = TmStats::new();
        assert_eq!(s.false_positive_pct(), None);
        s.true_conflicts_signalled.set(3);
        s.false_conflicts_signalled.set(1);
        assert!((s.false_positive_pct().unwrap() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = TmStats::new();
        a.commits = 1;
        a.record_commit_sets(TxSetSizes {
            read_blocks: 10,
            write_blocks: 5,
        });
        let mut b = TmStats::new();
        b.commits = 2;
        b.stalls = 7;
        b.false_conflicts_signalled.set(4);
        b.record_commit_sets(TxSetSizes {
            read_blocks: 30,
            write_blocks: 1,
        });
        a.merge(&b);
        assert_eq!(a.commits, 3);
        assert_eq!(a.stalls, 7);
        assert_eq!(a.false_conflicts_signalled.get(), 4);
        assert_eq!(a.read_set.max(), Some(30));
        assert_eq!(a.write_set.max(), Some(5));
        assert_eq!(a.read_set.count(), 2);
        assert_eq!(a.read_set_hist.total(), 2);
        assert_eq!(a.read_set_hist.percentile(100), Some(30));
    }
}
