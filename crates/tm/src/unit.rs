//! [`TmUnit`]: the TM state of every hardware thread context, and the
//! [`ConflictOracle`] implementation the coherence protocol calls into.

use ltse_mem::{AccessKind, Asid, BlockAddr, ConflictOracle, CtxId, WordAddr, WORDS_PER_BLOCK};
use ltse_sig::SigOp;
use ltse_sim::Cycle;

use crate::adapt::{manager_for, select_policy, NackContext};
use crate::config::TmConfig;
use crate::conflict::{ContentionPolicy, Resolution};
use crate::ctx::{AbortCosts, NestKind, ThreadTmState};
use crate::stats::TmStats;

/// Log regions: each thread's log lives at a disjoint thread-private base
/// far above any workload data (blocks below stay workload-addressable).
const LOG_REGION_BASE_BLOCK: u64 = 1 << 40;
/// Blocks reserved per thread log (1 GiB of log space each — "no structures
/// that explicitly limit transaction size"). The stride includes a prime
/// offset so different threads' log bases spread over L2 banks and sets;
/// a power-of-two stride would alias every log onto one L2 set and make
/// every log write an artificial L2 conflict miss.
const LOG_REGION_STRIDE_BLOCKS: u64 = (1 << 24) + 16411;

/// Result of the TM-layer checks that precede a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PreAccessCheck {
    /// No TM-level obstacle; issue the access to the memory system.
    Clear,
    /// The per-context **summary signature** matched: a descheduled
    /// transaction may hold this block. The access must trap (stall and
    /// retry; the OS will eventually run the descheduled thread to commit).
    SummaryConflict,
    /// Another thread context *on the same core* has a signature conflict
    /// (SMT sharing the L1 means coherence never sees these, §2).
    SiblingConflict {
        /// The conflicting same-core context.
        nacker: CtxId,
    },
}

/// A log append the system must charge memory timing for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogWrite {
    /// The log word the undo record starts at (charge a store to its
    /// block).
    pub addr: WordAddr,
}

/// Outcome of a commit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitOutcome {
    /// Whether this was the outermost commit (transaction fully done).
    pub outermost: bool,
    /// Local commit cost.
    pub cycles: Cycle,
    /// Whether the OS must recompute the process summary signature (the
    /// thread had been context-switched during this transaction, §4.1).
    pub needs_summary_update: bool,
}

/// The TM state of every hardware thread context in the machine.
///
/// A *slot* holds the installed thread's [`ThreadTmState`] (or `None` for an
/// idle context). The OS model moves states between slots — that mobility is
/// LogTM-SE's virtualization story.
#[derive(Debug)]
pub struct TmUnit {
    config: TmConfig,
    smt_per_core: u8,
    slots: Vec<Option<ThreadTmState>>,
    /// Stats of threads that were destroyed/descheduled-forever, so nothing
    /// is lost from aggregates.
    retired_stats: TmStats,
    /// Software thread id holding the global serialization token (bounded-
    /// retry escalation, [`TmConfig::escalate_after`]). Keyed by thread id,
    /// not context, so the token survives migration between contexts. The
    /// holder is exempt from conflict-resolution aborts; any transactional
    /// requester it NACKs aborts instead, which breaks every wait cycle
    /// through the holder.
    serial_holder: Option<u32>,
}

impl TmUnit {
    /// Creates a unit with `n_ctxs` single-threaded cores (context *i* is
    /// core *i*), each slot pre-populated with a thread of ASID 0.
    pub fn new(config: TmConfig, n_ctxs: u32) -> Self {
        Self::with_smt(config, n_ctxs, 1)
    }

    /// Creates a unit for `n_ctxs` contexts with `smt_per_core` contexts
    /// per core (matching the memory system's layout), each slot
    /// pre-populated with a thread of ASID 0.
    ///
    /// # Panics
    ///
    /// Panics if `smt_per_core == 0` or doesn't divide `n_ctxs`.
    pub fn with_smt(config: TmConfig, n_ctxs: u32, smt_per_core: u8) -> Self {
        let mut unit = Self::empty_with_smt(config, n_ctxs, smt_per_core);
        for i in 0..n_ctxs {
            unit.install_thread(
                i,
                ThreadTmState::new(
                    i,
                    Asid(0),
                    &config,
                    Self::log_base_for_thread(i),
                    0x5EED_0000 + i as u64,
                ),
            );
        }
        unit
    }

    /// Creates a unit with every context idle (no threads installed); the
    /// system layer installs [`ThreadTmState`]s as threads are created.
    ///
    /// # Panics
    ///
    /// Panics if `smt_per_core == 0` or doesn't divide `n_ctxs`.
    pub fn empty_with_smt(config: TmConfig, n_ctxs: u32, smt_per_core: u8) -> Self {
        assert!(smt_per_core > 0, "need at least one context per core");
        assert_eq!(
            n_ctxs % smt_per_core as u32,
            0,
            "contexts must fill whole cores"
        );
        TmUnit {
            config,
            smt_per_core,
            slots: (0..n_ctxs).map(|_| None).collect(),
            retired_stats: TmStats::new(),
            serial_holder: None,
        }
    }

    // ---- bounded-retry escalation ---------------------------------------

    /// The software thread currently holding the serialization token.
    pub fn serial_holder(&self) -> Option<u32> {
        self.serial_holder
    }

    /// Tries to acquire the serialization token for the thread on `ctx`
    /// (idempotent for the current holder). Returns whether the thread now
    /// holds it.
    pub fn try_acquire_serial(&mut self, ctx: CtxId) -> bool {
        let Some(tid) = self.thread(ctx).map(|t| t.thread_id) else {
            return false;
        };
        match self.serial_holder {
            None => {
                self.serial_holder = Some(tid);
                if let Some(t) = self.thread_mut(ctx) {
                    t.stats.serial_escalations += 1;
                }
                true
            }
            Some(h) => h == tid,
        }
    }

    /// Whether the thread on `ctx` holds the serialization token.
    pub fn holds_serial(&self, ctx: CtxId) -> bool {
        match (self.serial_holder, self.thread(ctx)) {
            (Some(h), Some(t)) => h == t.thread_id,
            _ => false,
        }
    }

    /// Releases the token if the thread on `ctx` holds it (outermost
    /// commit, or the rare liveness-abort of an escalated transaction).
    fn release_serial_if_held(&mut self, ctx: CtxId) {
        if self.holds_serial(ctx) {
            self.serial_holder = None;
        }
    }

    /// The thread-private log base for software thread `thread_id`.
    pub fn log_base_for_thread(thread_id: u32) -> WordAddr {
        BlockAddr(LOG_REGION_BASE_BLOCK + thread_id as u64 * LOG_REGION_STRIDE_BLOCKS).first_word()
    }

    /// Whether `block` is inside any thread's log region.
    pub fn is_log_block(block: BlockAddr) -> bool {
        block.0 >= LOG_REGION_BASE_BLOCK
    }

    /// The configuration.
    pub fn config(&self) -> &TmConfig {
        &self.config
    }

    /// Number of hardware contexts.
    pub fn n_ctxs(&self) -> u32 {
        self.slots.len() as u32
    }

    /// Immutable access to the thread installed on `ctx`.
    pub fn thread(&self, ctx: CtxId) -> Option<&ThreadTmState> {
        self.slots[ctx as usize].as_ref()
    }

    /// Mutable access to the thread installed on `ctx`.
    pub fn thread_mut(&mut self, ctx: CtxId) -> Option<&mut ThreadTmState> {
        self.slots[ctx as usize].as_mut()
    }

    /// Removes the thread state from `ctx` (OS deschedule). The log filter
    /// is cleared (it holds virtual addresses and is only an optimization).
    pub fn take_thread(&mut self, ctx: CtxId) -> Option<ThreadTmState> {
        let mut t = self.slots[ctx as usize].take()?;
        t.clear_filter();
        Some(t)
    }

    /// Installs a thread state on an idle context (OS schedule/migrate).
    ///
    /// # Panics
    ///
    /// Panics if the context already has a thread installed.
    pub fn install_thread(&mut self, ctx: CtxId, mut state: ThreadTmState) {
        assert!(
            self.slots[ctx as usize].is_none(),
            "context {ctx} already occupied"
        );
        state.apply_pending_remaps();
        self.slots[ctx as usize] = Some(state);
    }

    /// Permanently retires a thread state, folding its stats into the
    /// aggregate.
    pub fn retire_thread(&mut self, state: ThreadTmState) {
        self.retired_stats.merge(&state.stats);
    }

    /// Whether `ctx` is inside a transaction.
    pub fn in_tx(&self, ctx: CtxId) -> bool {
        self.thread(ctx).is_some_and(|t| t.in_tx())
    }

    /// Invariant probe for the correctness tooling: residual-state check
    /// for the thread on `ctx`, meaningful right after an outermost commit
    /// or a full abort. Empty when clean (or when no thread is installed).
    /// See [`ThreadTmState::post_outer_violations`].
    pub fn post_tx_violations(&self, ctx: CtxId) -> Vec<String> {
        self.thread(ctx)
            .map(|t| t.post_outer_violations())
            .unwrap_or_default()
    }

    /// The core hosting `ctx`.
    pub fn core_of(&self, ctx: CtxId) -> ltse_mem::CoreId {
        (ctx / self.smt_per_core as u32) as ltse_mem::CoreId
    }

    // ---- lifecycle pass-throughs (see [`ThreadTmState`]) -----------------

    /// Begins a transaction on `ctx`; returns the header's log address.
    ///
    /// # Panics
    ///
    /// Panics if no thread is installed on `ctx`.
    pub fn begin_tx(&mut self, ctx: CtxId, kind: NestKind, now: Cycle) -> WordAddr {
        self.slot_mut(ctx).begin(kind, now)
    }

    /// Records a completed access in `ctx`'s signatures.
    pub fn record_access(&mut self, ctx: CtxId, kind: AccessKind, block: BlockAddr) {
        self.slot_mut(ctx).record_access(sig_op(kind), block);
    }

    /// Log-filter-gated undo logging for a store; see
    /// [`ThreadTmState::log_store_if_needed`].
    pub fn log_store_if_needed(
        &mut self,
        ctx: CtxId,
        block: BlockAddr,
        read_old: impl FnOnce() -> [u64; WORDS_PER_BLOCK as usize],
    ) -> Option<LogWrite> {
        self.slot_mut(ctx)
            .log_store_if_needed(block, read_old)
            .map(|addr| LogWrite { addr })
    }

    /// Commits the innermost transaction on `ctx`.
    pub fn commit_tx(&mut self, ctx: CtxId, now: Cycle) -> CommitOutcome {
        let config = self.config;
        let t = self.slot_mut(ctx);
        let was_in_summary = t.in_summary;
        let (outermost, cycles) = t.commit(&config, now);
        if outermost {
            t.in_summary = false;
        }
        if outermost {
            self.release_serial_if_held(ctx);
        }
        CommitOutcome {
            outermost,
            cycles,
            needs_summary_update: outermost && was_in_summary,
        }
    }

    /// Fully aborts the transaction on `ctx`, restoring memory via
    /// `restore`.
    pub fn abort_tx(
        &mut self,
        ctx: CtxId,
        now: Cycle,
        restore: &mut dyn FnMut(WordAddr, &[u64; 8]),
    ) -> AbortCosts {
        let config = self.config;
        self.release_serial_if_held(ctx);
        self.slot_mut(ctx).abort_all(&config, now, restore)
    }

    /// Partially aborts the innermost nested frame on `ctx`.
    pub fn abort_innermost(
        &mut self,
        ctx: CtxId,
        restore: &mut dyn FnMut(WordAddr, &[u64; 8]),
    ) -> Cycle {
        let config = self.config;
        self.slot_mut(ctx).abort_innermost(&config, restore)
    }

    /// Enters an escape action on `ctx`.
    pub fn escape_begin(&mut self, ctx: CtxId) {
        self.slot_mut(ctx).escape_begin();
    }

    /// Leaves an escape action on `ctx`.
    pub fn escape_end(&mut self, ctx: CtxId) {
        self.slot_mut(ctx).escape_end();
    }

    // ---- pre-access checks ----------------------------------------------

    /// TM-layer checks before a memory access is issued: the summary
    /// signature (every reference, §4.1) and same-core sibling signatures
    /// (SMT conflicts never reach the coherence protocol, §2).
    pub fn pre_access(&self, ctx: CtxId, kind: AccessKind, block: BlockAddr) -> PreAccessCheck {
        let Some(me) = self.thread(ctx) else {
            return PreAccessCheck::Clear;
        };
        let op = sig_op(kind);
        if me.check_summary(op, block) {
            return PreAccessCheck::SummaryConflict;
        }
        let my_core = self.core_of(ctx);
        for sib in self.ctxs_on_core(my_core) {
            if sib == ctx {
                continue;
            }
            if let Some(other) = self.thread(sib) {
                if other.asid == me.asid && other.check_conflict(op, block) {
                    return PreAccessCheck::SiblingConflict { nacker: sib };
                }
            }
        }
        PreAccessCheck::Clear
    }

    /// Applies LogTM conflict resolution after a NACK: selects the
    /// effective contention policy (per-conflict for `Adaptive`), runs its
    /// [`crate::adapt::ContentionManager`], applies the serialization-token
    /// overrides, updates the nacker's `possible_cycle` flag and both sides'
    /// conflict histories, bumps the requester's stall count, and returns
    /// what the requester must do.
    pub fn on_nack(&mut self, requester: CtxId, nacker: Option<CtxId>) -> Resolution {
        let req_stamp = self.thread(requester).and_then(|t| t.stamp());
        let req_flag = self
            .thread(requester)
            .map(|t| t.possible_cycle())
            .unwrap_or(false);
        let nk_stamp = nacker.and_then(|n| self.thread(n).and_then(|t| t.stamp()));
        let req_work = self
            .thread(requester)
            .map(|t| t.log().total_undo_records())
            .unwrap_or(0);
        let nk_work = nacker
            .and_then(|n| self.thread(n))
            .map(|t| t.log().total_undo_records())
            .unwrap_or(0);
        let history = self
            .thread(requester)
            .map(|t| t.history)
            .unwrap_or_default();
        // The history consulted is the one *before* this NACK, so a pinned
        // adaptive run observes exactly the state a static run would.
        let effective = select_policy(
            self.config.contention,
            self.config.adaptive_pin,
            &history,
            req_work,
        );
        let (mut resolution, nacker_flags) = manager_for(effective, None).resolve(&NackContext {
            requester: req_stamp,
            requester_possible_cycle: req_flag,
            nacker: nk_stamp,
            requester_work: req_work,
            nacker_work: nk_work,
            history,
        });
        // A size-aware manager's sparing rule can deadlock when the bigger
        // transaction is also the younger one (the only abort that could
        // break the cycle is the one being spared). Escalate after a
        // bounded number of spared deadlock-possible stalls.
        if effective == ContentionPolicy::SizeMatters && resolution == Resolution::Stall {
            if let (Some(req), Some(nk)) = (req_stamp, nk_stamp) {
                if nk.older_than(req) && req_flag {
                    if let Some(t) = self.thread_mut(requester) {
                        t.spared_stalls += 1;
                        if t.spared_stalls > 100 {
                            t.spared_stalls = 0;
                            resolution = Resolution::Abort;
                        }
                    }
                }
            }
        }
        // Serialization-token overrides (these outrank every policy): the
        // holder never aborts on a conflict, and any transactional requester
        // the holder NACKs aborts immediately. Every wait cycle through the
        // single holder has an edge *into* the holder, so that edge's
        // requester aborting keeps escalation deadlock-free even under
        // stall-happy policies.
        if self.holds_serial(requester) {
            resolution = Resolution::Stall;
        } else if nacker.is_some_and(|n| self.holds_serial(n)) && req_stamp.is_some() {
            resolution = Resolution::Abort;
        }
        if nacker_flags {
            if let Some(n) = nacker {
                if let Some(t) = self.thread_mut(n) {
                    t.set_possible_cycle();
                }
            }
        }
        if let Some(n) = nacker {
            if let Some(t) = self.thread_mut(n) {
                t.history.on_nack_caused();
            }
        }
        if let Some(t) = self.thread_mut(requester) {
            t.stats.stalls += 1;
            // Recorded for every NACK; an abort resolution resets the stall
            // streak again in `abort_all`.
            t.history.on_stall();
        }
        resolution
    }

    /// Zeroes every installed thread's statistics (and the retired-thread
    /// aggregate) — the warm-up boundary for steady-state measurement.
    pub fn reset_stats(&mut self) {
        self.retired_stats = TmStats::new();
        for slot in self.slots.iter_mut().flatten() {
            slot.reset_stats();
        }
    }

    /// Aggregated statistics over all installed threads plus retired ones.
    pub fn aggregate_stats(&self) -> TmStats {
        let mut agg = self.retired_stats.clone();
        for slot in self.slots.iter().flatten() {
            agg.merge(&slot.stats);
        }
        agg
    }

    fn ctxs_on_core(&self, core: ltse_mem::CoreId) -> std::ops::Range<CtxId> {
        let base = core as u32 * self.smt_per_core as u32;
        base..base + self.smt_per_core as u32
    }

    fn slot_mut(&mut self, ctx: CtxId) -> &mut ThreadTmState {
        self.slots[ctx as usize]
            .as_mut()
            .unwrap_or_else(|| panic!("no thread installed on context {ctx}"))
    }
}

fn sig_op(kind: AccessKind) -> SigOp {
    match kind {
        AccessKind::Load => SigOp::Read,
        AccessKind::Store => SigOp::Write,
    }
}

impl ConflictOracle for TmUnit {
    fn check_core(
        &self,
        core: ltse_mem::CoreId,
        kind: AccessKind,
        block: BlockAddr,
        requester_ctx: u32,
    ) -> Option<u32> {
        // The ASID travels with the request (paper §2): resolve it from the
        // requester's installed thread. A context with no thread (or no
        // transaction) can still request; conflicts are judged against the
        // target's signatures only.
        let req_asid = self.thread(requester_ctx).map(|t| t.asid)?;
        let op = sig_op(kind);
        for ctx in self.ctxs_on_core(core) {
            if ctx == requester_ctx {
                continue;
            }
            let Some(t) = self.thread(ctx) else { continue };
            if t.asid != req_asid {
                continue; // cross-process aliasing never NACKs (§2)
            }
            if t.check_conflict(op, block) {
                return Some(ctx);
            }
        }
        None
    }

    fn block_is_transactional_hw(&self, core: ltse_mem::CoreId, block: BlockAddr) -> bool {
        self.ctxs_on_core(core)
            .filter_map(|c| self.thread(c))
            .any(|t| t.covers_hw(block))
    }

    fn block_is_transactional_exact(&self, core: ltse_mem::CoreId, block: BlockAddr) -> bool {
        self.ctxs_on_core(core)
            .filter_map(|c| self.thread(c))
            .any(|t| t.covers_exact(block))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltse_sig::SignatureKind;

    fn unit() -> TmUnit {
        TmUnit::with_smt(TmConfig::default_with(SignatureKind::Perfect), 8, 2)
    }

    #[test]
    fn oracle_detects_remote_conflict() {
        let mut tm = unit();
        tm.begin_tx(2, NestKind::Closed, Cycle(0)); // core 1, slot 0
        tm.record_access(2, AccessKind::Store, BlockAddr(5));
        // A store from ctx 0 (core 0) to block 5: core 1 must NACK.
        assert_eq!(
            tm.check_core(1, AccessKind::Store, BlockAddr(5), 0),
            Some(2)
        );
        // Reads also conflict with the write-set.
        assert_eq!(tm.check_core(1, AccessKind::Load, BlockAddr(5), 0), Some(2));
        // Unrelated block: no conflict.
        assert_eq!(tm.check_core(1, AccessKind::Store, BlockAddr(6), 0), None);
    }

    #[test]
    fn oracle_ignores_own_context() {
        let mut tm = unit();
        tm.begin_tx(0, NestKind::Closed, Cycle(0));
        tm.record_access(0, AccessKind::Store, BlockAddr(5));
        // Request by ctx 0 checked against its own core must not self-NACK.
        assert_eq!(tm.check_core(0, AccessKind::Store, BlockAddr(5), 0), None);
    }

    #[test]
    fn sibling_conflict_detected_on_same_core() {
        let mut tm = unit();
        tm.begin_tx(1, NestKind::Closed, Cycle(0)); // core 0 slot 1
        tm.record_access(1, AccessKind::Store, BlockAddr(9));
        match tm.pre_access(0, AccessKind::Load, BlockAddr(9)) {
            PreAccessCheck::SiblingConflict { nacker } => assert_eq!(nacker, 1),
            other => panic!("expected sibling conflict, got {other:?}"),
        }
        // Read-read sharing on the same core is fine.
        let mut tm2 = unit();
        tm2.begin_tx(1, NestKind::Closed, Cycle(0));
        tm2.record_access(1, AccessKind::Load, BlockAddr(9));
        assert_eq!(
            tm2.pre_access(0, AccessKind::Load, BlockAddr(9)),
            PreAccessCheck::Clear
        );
    }

    #[test]
    fn asid_mismatch_never_conflicts() {
        let mut tm = unit();
        // Put ctx 2's thread in a different address space.
        tm.thread_mut(2).unwrap().asid = Asid(7);
        tm.begin_tx(2, NestKind::Closed, Cycle(0));
        tm.record_access(2, AccessKind::Store, BlockAddr(5));
        assert_eq!(
            tm.check_core(1, AccessKind::Store, BlockAddr(5), 0),
            None,
            "cross-process signature hits are filtered by ASID"
        );
    }

    #[test]
    fn deadlock_cycle_aborts_younger() {
        let mut tm = unit();
        // ctx 0 (old, ts 10) and ctx 2 (young, ts 20) — different cores.
        tm.begin_tx(0, NestKind::Closed, Cycle(10));
        tm.begin_tx(2, NestKind::Closed, Cycle(20));
        // Old requests; young NACKs → young sets possible_cycle.
        assert_eq!(tm.on_nack(0, Some(2)), Resolution::Stall);
        assert!(tm.thread(2).unwrap().possible_cycle());
        // Young requests; old NACKs → young aborts.
        assert_eq!(tm.on_nack(2, Some(0)), Resolution::Abort);
        // Old never aborts in this exchange.
        assert_eq!(tm.on_nack(0, Some(2)), Resolution::Stall);
        assert_eq!(tm.thread(0).unwrap().stats.stalls, 2);
    }

    #[test]
    fn take_install_moves_state_between_contexts() {
        let mut tm = unit();
        tm.begin_tx(0, NestKind::Closed, Cycle(0));
        tm.record_access(0, AccessKind::Store, BlockAddr(77));
        let state = tm.take_thread(0).unwrap();
        assert!(tm.thread(0).is_none());
        // Migrate to context 5 (different core).
        tm.slots[5] = None; // make room (retire the default thread)
        tm.install_thread(5, state);
        assert!(tm.in_tx(5));
        // Conflicts now detected at the new core (2 = ctx 5's core); the
        // requester is ctx 1, which still has a live thread in the same
        // address space.
        assert_eq!(
            tm.check_core(2, AccessKind::Store, BlockAddr(77), 1),
            Some(5)
        );
    }

    #[test]
    fn transactional_blocks_visible_to_eviction_logic() {
        let mut tm = unit();
        tm.begin_tx(4, NestKind::Closed, Cycle(0)); // core 2
        tm.record_access(4, AccessKind::Load, BlockAddr(31));
        assert!(tm.block_is_transactional_hw(2, BlockAddr(31)));
        assert!(tm.block_is_transactional_exact(2, BlockAddr(31)));
        assert!(!tm.block_is_transactional_hw(0, BlockAddr(31)));
        // After commit, nothing is transactional.
        tm.commit_tx(4, Cycle(5));
        assert!(!tm.block_is_transactional_hw(2, BlockAddr(31)));
    }

    #[test]
    fn aggregate_stats_include_retired_threads() {
        let mut tm = unit();
        tm.begin_tx(0, NestKind::Closed, Cycle(0));
        tm.commit_tx(0, Cycle(1));
        let t = tm.take_thread(0).unwrap();
        tm.retire_thread(t);
        assert_eq!(tm.aggregate_stats().commits, 1);
    }

    #[test]
    fn commit_signals_summary_update_only_after_switch() {
        let mut tm = unit();
        tm.begin_tx(0, NestKind::Closed, Cycle(0));
        let out = tm.commit_tx(0, Cycle(1));
        assert!(!out.needs_summary_update);

        tm.begin_tx(0, NestKind::Closed, Cycle(2));
        tm.thread_mut(0).unwrap().in_summary = true; // OS marked it
        let out = tm.commit_tx(0, Cycle(3));
        assert!(out.outermost);
        assert!(out.needs_summary_update);
        assert!(!tm.thread(0).unwrap().in_summary);
    }

    #[test]
    fn log_bases_are_disjoint() {
        let a = TmUnit::log_base_for_thread(0);
        let b = TmUnit::log_base_for_thread(1);
        assert!(b.0 - a.0 >= LOG_REGION_STRIDE_BLOCKS * WORDS_PER_BLOCK);
        assert!(TmUnit::is_log_block(a.block()));
        assert!(!TmUnit::is_log_block(BlockAddr(12345)));
    }

    #[test]
    #[should_panic(expected = "already occupied")]
    fn double_install_panics() {
        let mut tm = unit();
        let t = tm.take_thread(0).unwrap();
        tm.install_thread(1, t); // ctx 1 still has its default thread
    }
}
