//! The LogTM-SE transactional core — the paper's primary contribution.
//!
//! LogTM-SE stores all principal transactional state in two software-visible
//! structure types:
//!
//! * **Signatures** (from `ltse-sig`) conservatively track read/write-sets
//!   and detect conflicts eagerly on coherence requests.
//! * A **per-thread undo log** ([`TxLog`]) in thread-private virtual memory
//!   holds old values; new values go in place (eager version management).
//!
//! This crate implements everything Figure 1 of the paper adds to a thread
//! context, and the runtime/OS mechanisms of §§2–4:
//!
//! * [`ThreadTmState`] — per-thread context TM unit: shadowed read/write
//!   signatures, summary signature, log pointer/frames, nesting depth, log
//!   filter, transaction timestamp, `possible_cycle` flag, escape depth.
//! * [`TxLog`] / [`LogFrame`] — the Nested-LogTM log layout: a stack of
//!   frames, each a fixed header (register checkpoint + signature-save area)
//!   plus a variable body of undo records.
//! * [`LogFilter`] — the small TLB-like array of recently logged blocks that
//!   suppresses redundant logging (§2, "Eager Version Management"); always
//!   safe to clear because it is a pure optimization.
//! * [`TmUnit`] — the collection of all thread contexts; implements
//!   `ltse-mem`'s `ConflictOracle` so the coherence protocol can delegate
//!   signature checks without owning TM state.
//! * [`conflict`] — LogTM's distributed timestamp/`possible_cycle` conflict
//!   resolution: stall on NACK, abort on a possible deadlock cycle.
//! * [`OsModel`] — thread deschedule/migrate with per-process **summary
//!   signatures** maintained through a counting signature (§4.1), and
//!   transactional **paging** (§4.2).
//! * [`virt_compare`] — the encoded event/action matrix behind the paper's
//!   Table 4.
//!
//! # Example: a minimal transaction lifecycle
//!
//! ```
//! use ltse_mem::{AccessKind, BlockAddr, WordAddr};
//! use ltse_sig::SignatureKind;
//! use ltse_tm::{NestKind, TmConfig, TmUnit};
//! use ltse_sim::Cycle;
//!
//! let mut tm = TmUnit::new(TmConfig::default_with(SignatureKind::Perfect), 4);
//! tm.begin_tx(0, NestKind::Closed, Cycle(100));
//!
//! // A transactional store: record the access, then log the old value
//! // (the closure reads the block's old contents from memory).
//! let block = BlockAddr(7);
//! tm.record_access(0, AccessKind::Store, block);
//! let log_action = tm.log_store_if_needed(0, block, || [0; 8]);
//! assert!(log_action.is_some(), "first store to a block must log");
//! assert!(tm.log_store_if_needed(0, block, || [0; 8]).is_none(), "filter suppresses");
//!
//! // Commit is local: clear signature, reset log pointer.
//! let commit = tm.commit_tx(0, Cycle(200));
//! assert!(commit.outermost);
//! assert!(!tm.in_tx(0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adapt;
pub mod conflict;
pub mod virt_compare;

mod config;
mod ctx;
mod filter;
mod log;
mod os;
mod stats;
mod unit;

pub use adapt::{backoff_cycles, BackoffKind, ConflictHistory, ContentionManager};
pub use config::TmConfig;
pub use ctx::{NestKind, ThreadTmState, TxPhase};
pub use filter::LogFilter;
pub use log::{saved_sig_conflicts, unroll_frame, FrameHeader, LogFrame, TxLog, UndoRecord};
pub use os::{OsModel, OsStats};
pub use stats::{TmStats, TxSetSizes};
pub use unit::{CommitOutcome, LogWrite, PreAccessCheck, TmUnit};
