//! Online contention management (the "trap to a contention manager" the
//! paper leaves open).
//!
//! LogTM-SE resolves conflicts with a fixed requester-stalls policy plus
//! randomized-exponential backoff. This module decouples three levers so
//! they can be configured — or driven adaptively — per run:
//!
//! * **Backoff families** ([`BackoffKind`]): randomized-exponential (the
//!   paper's default), linear, and capped-constant windows, all drawing
//!   exactly one value from the caller's deterministic per-thread RNG.
//! * **Conflict history** ([`ConflictHistory`]): a light, always-on
//!   per-thread record of NACKs suffered/caused, abort streaks, and wasted
//!   cycles. It is maintained identically under *every* policy (so pinning
//!   the adaptive manager to a static policy is byte-identical to running
//!   that policy), and it works with the observability layer off.
//! * **Contention managers** ([`ContentionManager`]): the per-NACK decision
//!   procedure behind [`resolve_nack_with`](crate::conflict::resolve_nack_with),
//!   one implementation per [`ContentionPolicy`] variant, including the
//!   age-based `Karma` manager and the history-driven `Adaptive` selector
//!   ([`select_policy`]).
//!
//! Adaptive selection is a pure function of the requester's history and
//! invested work — it consumes **no** RNG draws, so explore-mode schedules
//! and the run cache see identical randomness under every policy.

use ltse_sim::cache::{ByteReader, CacheValue, FpHash, FpHasher};
use ltse_sim::rng::Xoshiro256StarStar;
use ltse_sim::Cycle;

use crate::conflict::{ContentionPolicy, Resolution, TxStamp};

/// The shape of the post-abort (and partial-abort, and stall-escalation)
/// backoff window. Every family draws one uniform value from the window it
/// computes, so switching families never changes how many RNG values a
/// thread consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BackoffKind {
    /// The paper's default: the k-th consecutive abort waits
    /// `U(0, base << min(k, cap_shift))`.
    #[default]
    RandExp,
    /// Linear growth: `U(0, base * (k + 1))`, capped at the same
    /// `base << cap_shift` ceiling as `RandExp`.
    Linear,
    /// Capped-constant: `U(0, base)` regardless of the streak — minimal
    /// added latency, no protection against repeated collisions.
    Constant,
}

impl BackoffKind {
    /// Every variant, for exhaustive sweeps and reflection tests.
    pub const ALL: [BackoffKind; 3] = [
        BackoffKind::RandExp,
        BackoffKind::Linear,
        BackoffKind::Constant,
    ];

    /// The CLI/JSON name.
    pub fn name(&self) -> &'static str {
        match self {
            BackoffKind::RandExp => "randexp",
            BackoffKind::Linear => "linear",
            BackoffKind::Constant => "constant",
        }
    }
}

impl FpHash for BackoffKind {
    fn fp_feed(&self, h: &mut FpHasher) {
        h.write_u64(match self {
            BackoffKind::RandExp => 0,
            BackoffKind::Linear => 1,
            BackoffKind::Constant => 2,
        });
    }
}

impl CacheValue for BackoffKind {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            BackoffKind::RandExp => 0,
            BackoffKind::Linear => 1,
            BackoffKind::Constant => 2,
        });
    }

    fn decode(r: &mut ByteReader<'_>) -> Option<Self> {
        match r.u8()? {
            0 => Some(BackoffKind::RandExp),
            1 => Some(BackoffKind::Linear),
            2 => Some(BackoffKind::Constant),
            _ => None,
        }
    }
}

/// Backoff delay for the `attempt`-th consecutive retry (0-based) under the
/// chosen family. Draws exactly one value from `rng` whenever the window is
/// nonzero; a zero `base` yields `Cycle::ZERO` without touching the RNG.
pub fn backoff_cycles(
    kind: BackoffKind,
    rng: &mut Xoshiro256StarStar,
    base: Cycle,
    cap_shift: u32,
    attempt: u32,
) -> Cycle {
    let cap = base.as_u64() << cap_shift.min(63);
    let window = match kind {
        BackoffKind::RandExp => base.as_u64() << attempt.min(cap_shift),
        BackoffKind::Linear => base
            .as_u64()
            .saturating_mul(attempt as u64 + 1)
            .min(cap.max(base.as_u64())),
        BackoffKind::Constant => base.as_u64(),
    };
    if window == 0 {
        return Cycle::ZERO;
    }
    Cycle(rng.gen_range(0, window))
}

/// A light per-thread record of how contention has been treating this
/// thread. Maintained unconditionally (it is a handful of integer bumps on
/// paths that already trap to software), under every policy, with the
/// observability layer on or off — so the adaptive manager always has its
/// input, and enabling it changes no other thread-visible state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConflictHistory {
    /// NACKs this thread's requests suffered (lifetime).
    pub nacks: u64,
    /// NACKs this thread issued against others (lifetime).
    pub nacks_caused: u64,
    /// Aborts suffered (lifetime).
    pub aborts: u64,
    /// Outermost commits (lifetime).
    pub commits: u64,
    /// Consecutive outermost aborts since the last commit.
    pub abort_streak: u32,
    /// Consecutive stalls since the last commit or abort.
    pub stall_streak: u32,
    /// Cycles thrown away in aborted transactions (lifetime).
    pub wasted_cycles: u64,
}

impl ConflictHistory {
    /// This thread's request was NACKed and it will stall.
    pub fn on_stall(&mut self) {
        self.nacks = self.nacks.saturating_add(1);
        self.stall_streak = self.stall_streak.saturating_add(1);
    }

    /// This thread NACKed someone else's request.
    pub fn on_nack_caused(&mut self) {
        self.nacks_caused = self.nacks_caused.saturating_add(1);
    }

    /// This thread's outermost transaction aborted, wasting `wasted` cycles.
    pub fn on_abort(&mut self, wasted: u64) {
        self.aborts = self.aborts.saturating_add(1);
        self.abort_streak = self.abort_streak.saturating_add(1);
        self.stall_streak = 0;
        self.wasted_cycles = self.wasted_cycles.saturating_add(wasted);
    }

    /// This thread committed an outermost transaction.
    pub fn on_commit(&mut self) {
        self.commits = self.commits.saturating_add(1);
        self.abort_streak = 0;
        self.stall_streak = 0;
    }
}

/// Everything a [`ContentionManager`] may consult for one NACK decision.
#[derive(Debug, Clone, Copy)]
pub struct NackContext {
    /// The NACKed context's stamp (`None`: not in a transaction).
    pub requester: Option<TxStamp>,
    /// The requester's `possible_cycle` flag.
    pub requester_possible_cycle: bool,
    /// The conflicting context's stamp (`None`: summary-signature conflict).
    pub nacker: Option<TxStamp>,
    /// Requester's invested work (undo records).
    pub requester_work: usize,
    /// Nacker's invested work (undo records).
    pub nacker_work: usize,
    /// The requester's conflict history.
    pub history: ConflictHistory,
}

/// A per-NACK decision procedure: given the conflict context, decide what
/// the requester does and whether the nacker sets `possible_cycle`.
pub trait ContentionManager {
    /// The policy this manager implements.
    fn policy(&self) -> ContentionPolicy;

    /// Decides `(requester resolution, nacker sets possible_cycle)`.
    fn resolve(&self, cx: &NackContext) -> (Resolution, bool);
}

/// Shared prelude: the stall-only cases every manager agrees on, plus the
/// nacker-flag rule. Returns `Ok` with the forced resolution, or `Err` with
/// `(req, nk, nacker_flags, deadlock_possible)` for the manager to decide.
fn common_cases(cx: &NackContext) -> Result<(Resolution, bool), (TxStamp, TxStamp, bool, bool)> {
    match (cx.requester, cx.nacker) {
        (Some(req), Some(nk)) => {
            let nacker_flags = req.older_than(nk);
            let deadlock_possible = nk.older_than(req) && cx.requester_possible_cycle;
            Err((req, nk, nacker_flags, deadlock_possible))
        }
        // Non-transactional requesters hold no isolation anyone could wait
        // on: always retry. Summary conflicts (no live nacker context) are
        // broken by the OS rescheduling the parked thread.
        (None, _) | (Some(_), None) => Ok((Resolution::Stall, false)),
    }
}

/// The paper's baseline: stall, abort only on a possible deadlock cycle.
pub struct RequesterStallsCm;

impl ContentionManager for RequesterStallsCm {
    fn policy(&self) -> ContentionPolicy {
        ContentionPolicy::RequesterStalls
    }

    fn resolve(&self, cx: &NackContext) -> (Resolution, bool) {
        match common_cases(cx) {
            Ok(r) => r,
            Err((_, _, flags, deadlock)) => {
                let r = if deadlock {
                    Resolution::Abort
                } else {
                    Resolution::Stall
                };
                (r, flags)
            }
        }
    }
}

/// Early-HTM behaviour: a transactional requester aborts on any NACK.
pub struct RequesterAbortsCm;

impl ContentionManager for RequesterAbortsCm {
    fn policy(&self) -> ContentionPolicy {
        ContentionPolicy::RequesterAborts
    }

    fn resolve(&self, cx: &NackContext) -> (Resolution, bool) {
        match common_cases(cx) {
            Ok(r) => r,
            Err((_, _, flags, _)) => (Resolution::Abort, flags),
        }
    }
}

/// Work-weighted: on a possible deadlock, abort only the side that has
/// invested less (fewer undo records).
pub struct SizeMattersCm;

impl ContentionManager for SizeMattersCm {
    fn policy(&self) -> ContentionPolicy {
        ContentionPolicy::SizeMatters
    }

    fn resolve(&self, cx: &NackContext) -> (Resolution, bool) {
        match common_cases(cx) {
            Ok(r) => r,
            Err((_, _, flags, deadlock)) => {
                let r = if deadlock && cx.requester_work <= cx.nacker_work {
                    Resolution::Abort
                } else {
                    Resolution::Stall
                };
                (r, flags)
            }
        }
    }
}

/// Age-based (Greedy/Timestamp-style): the strictly younger side of every
/// conflict aborts immediately; the older side stalls. Deadlock-free by
/// construction — a stall edge always points from an older requester to a
/// younger nacker, so ages strictly decrease around any would-be cycle.
/// Preserved begin stamps across retries guarantee eventual victory.
pub struct KarmaCm;

impl ContentionManager for KarmaCm {
    fn policy(&self) -> ContentionPolicy {
        ContentionPolicy::Karma
    }

    fn resolve(&self, cx: &NackContext) -> (Resolution, bool) {
        match common_cases(cx) {
            Ok(r) => r,
            Err((req, nk, flags, _)) => {
                let r = if nk.older_than(req) {
                    Resolution::Abort
                } else {
                    Resolution::Stall
                };
                (r, flags)
            }
        }
    }
}

/// History-driven dynamic selection: delegates each NACK to the static
/// policy [`select_policy`] picks from the requester's [`ConflictHistory`].
pub struct AdaptiveCm {
    /// Test/diagnosis pin: always select this static policy.
    pub pin: Option<ContentionPolicy>,
}

impl ContentionManager for AdaptiveCm {
    fn policy(&self) -> ContentionPolicy {
        ContentionPolicy::Adaptive
    }

    fn resolve(&self, cx: &NackContext) -> (Resolution, bool) {
        let chosen = select_policy(
            ContentionPolicy::Adaptive,
            self.pin,
            &cx.history,
            cx.requester_work,
        );
        manager_for(chosen, None).resolve(cx)
    }
}

/// The manager implementing `policy`. `pin` is consulted only by
/// [`ContentionPolicy::Adaptive`].
pub fn manager_for(
    policy: ContentionPolicy,
    pin: Option<ContentionPolicy>,
) -> Box<dyn ContentionManager> {
    match policy {
        ContentionPolicy::RequesterStalls => Box::new(RequesterStallsCm),
        ContentionPolicy::RequesterAborts => Box::new(RequesterAbortsCm),
        ContentionPolicy::SizeMatters => Box::new(SizeMattersCm),
        ContentionPolicy::Karma => Box::new(KarmaCm),
        ContentionPolicy::Adaptive => Box::new(AdaptiveCm { pin }),
    }
}

/// Maps a configured policy to the concrete static policy applied to the
/// next conflict. Static policies map to themselves; `Adaptive` consults
/// the requester's history:
///
/// * a thread on an abort streak has been losing conflicts — switch to the
///   age-based [`Karma`](ContentionPolicy::Karma) arbitration, which
///   guarantees the oldest transaction progresses and empirically wins on
///   hot-key workloads;
/// * a thread stalling repeatedly with (almost) nothing invested is paying
///   convoy latency to protect nothing — restart it cheaply via
///   [`RequesterAborts`](ContentionPolicy::RequesterAborts) and let backoff
///   de-synchronize the colliders;
/// * otherwise the paper's baseline stall policy is the right default.
///
/// Pure function of its arguments: **no RNG draws**, so an `Adaptive` run
/// pinned to a static policy is byte-identical to that policy. A pin of
/// `Adaptive` itself is ignored (falls through to the heuristic).
pub fn select_policy(
    policy: ContentionPolicy,
    pin: Option<ContentionPolicy>,
    history: &ConflictHistory,
    requester_work: usize,
) -> ContentionPolicy {
    if policy != ContentionPolicy::Adaptive {
        return policy;
    }
    if let Some(p) = pin {
        if p != ContentionPolicy::Adaptive {
            return p;
        }
    }
    if history.abort_streak >= 2 {
        // Repeated aborts mean the stall-first default is losing work to
        // conflict cycles: switch to age-based arbitration, which always
        // makes forward progress on the oldest transaction and empirically
        // dominates on hot-key workloads.
        ContentionPolicy::Karma
    } else if requester_work <= 1 && history.stall_streak >= 4 {
        // A requester that has invested almost nothing but keeps running
        // into busy lines is cheapest to restart outright.
        ContentionPolicy::RequesterAborts
    } else {
        ContentionPolicy::RequesterStalls
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn st(t: u64, ctx: u32) -> TxStamp {
        TxStamp::new(Cycle(t), ctx)
    }

    fn cx(req: Option<TxStamp>, flag: bool, nk: Option<TxStamp>) -> NackContext {
        NackContext {
            requester: req,
            requester_possible_cycle: flag,
            nacker: nk,
            requester_work: 0,
            nacker_work: 0,
            history: ConflictHistory::default(),
        }
    }

    #[test]
    fn backoff_families_shape_their_windows() {
        let mut rng = Xoshiro256StarStar::new(1);
        let base = Cycle(60);
        for attempt in 0..20 {
            let e = backoff_cycles(BackoffKind::RandExp, &mut rng, base, 6, attempt);
            assert!(e.as_u64() < 60 << attempt.min(6));
            let l = backoff_cycles(BackoffKind::Linear, &mut rng, base, 6, attempt);
            assert!(l.as_u64() < (60 * (attempt as u64 + 1)).min(60 << 6));
            let c = backoff_cycles(BackoffKind::Constant, &mut rng, base, 6, attempt);
            assert!(c.as_u64() < 60);
        }
    }

    #[test]
    fn backoff_zero_base_skips_the_rng() {
        let mut a = Xoshiro256StarStar::new(9);
        let mut b = Xoshiro256StarStar::new(9);
        for kind in BackoffKind::ALL {
            assert_eq!(backoff_cycles(kind, &mut a, Cycle(0), 6, 3), Cycle::ZERO);
        }
        // `a` drew nothing: it must still agree with the untouched `b`.
        assert_eq!(a.gen_range(0, 1 << 30), b.gen_range(0, 1 << 30));
    }

    #[test]
    fn randexp_matches_the_legacy_abort_backoff() {
        // The default family must reproduce the pre-existing backoff draw
        // exactly, so default-config runs are unchanged.
        for seed in [1u64, 7, 99] {
            for attempt in 0..10 {
                let mut a = Xoshiro256StarStar::new(seed);
                let mut b = Xoshiro256StarStar::new(seed);
                assert_eq!(
                    backoff_cycles(BackoffKind::RandExp, &mut a, Cycle(60), 6, attempt),
                    crate::conflict::abort_backoff(&mut b, Cycle(60), 6, attempt),
                );
            }
        }
    }

    #[test]
    fn history_streaks_reset_correctly() {
        let mut h = ConflictHistory::default();
        h.on_stall();
        h.on_stall();
        assert_eq!(h.stall_streak, 2);
        h.on_abort(100);
        assert_eq!((h.aborts, h.abort_streak, h.stall_streak), (1, 1, 0));
        h.on_abort(50);
        assert_eq!((h.abort_streak, h.wasted_cycles), (2, 150));
        h.on_commit();
        assert_eq!((h.commits, h.abort_streak), (1, 0));
        assert_eq!(h.aborts, 2, "lifetime counters survive the reset");
    }

    #[test]
    fn karma_youngest_always_loses() {
        let km = KarmaCm;
        // Younger requester NACKed by older: abort, flag unset.
        let (r, f) = km.resolve(&cx(Some(st(100, 1)), false, Some(st(10, 0))));
        assert_eq!(r, Resolution::Abort);
        assert!(!f);
        // Older requester NACKed by younger: stall, nacker flags.
        let (r, f) = km.resolve(&cx(Some(st(10, 0)), false, Some(st(100, 1))));
        assert_eq!(r, Resolution::Stall);
        assert!(f);
        // Non-transactional and summary conflicts stall as everywhere else.
        assert_eq!(km.resolve(&cx(None, false, Some(st(1, 0)))).0, Resolution::Stall);
        assert_eq!(km.resolve(&cx(Some(st(1, 0)), true, None)).0, Resolution::Stall);
    }

    #[test]
    fn adaptive_selection_is_pure_and_pinnable() {
        let calm = ConflictHistory::default();
        let mut losing = ConflictHistory::default();
        losing.on_abort(10);
        losing.on_abort(10);
        let mut convoy = ConflictHistory::default();
        for _ in 0..5 {
            convoy.on_stall();
        }
        assert_eq!(
            select_policy(ContentionPolicy::Adaptive, None, &calm, 0),
            ContentionPolicy::RequesterStalls
        );
        assert_eq!(
            select_policy(ContentionPolicy::Adaptive, None, &losing, 5),
            ContentionPolicy::Karma
        );
        assert_eq!(
            select_policy(ContentionPolicy::Adaptive, None, &convoy, 0),
            ContentionPolicy::RequesterAborts
        );
        // Work invested suppresses the cheap-restart path.
        assert_eq!(
            select_policy(ContentionPolicy::Adaptive, None, &convoy, 8),
            ContentionPolicy::RequesterStalls
        );
        // Static policies ignore history entirely.
        for p in ContentionPolicy::ALL {
            if p != ContentionPolicy::Adaptive {
                assert_eq!(select_policy(p, None, &losing, 0), p);
            }
        }
        // A pin overrides the heuristic; pinning Adaptive falls through.
        assert_eq!(
            select_policy(
                ContentionPolicy::Adaptive,
                Some(ContentionPolicy::Karma),
                &losing,
                0
            ),
            ContentionPolicy::Karma
        );
        assert_eq!(
            select_policy(
                ContentionPolicy::Adaptive,
                Some(ContentionPolicy::Adaptive),
                &losing,
                0
            ),
            ContentionPolicy::Karma
        );
    }

    #[test]
    fn managers_agree_with_their_policies() {
        for p in ContentionPolicy::ALL {
            assert_eq!(manager_for(p, None).policy(), p);
        }
        // Pinned adaptive resolves exactly like the pinned static manager
        // across a grid of conflict contexts.
        for pin in [
            ContentionPolicy::RequesterStalls,
            ContentionPolicy::RequesterAborts,
            ContentionPolicy::SizeMatters,
            ContentionPolicy::Karma,
        ] {
            let pinned = manager_for(ContentionPolicy::Adaptive, Some(pin));
            let staticm = manager_for(pin, None);
            for (req, nk) in [
                (Some(st(5, 0)), Some(st(9, 1))),
                (Some(st(9, 1)), Some(st(5, 0))),
                (None, Some(st(5, 0))),
                (Some(st(5, 0)), None),
            ] {
                for flag in [false, true] {
                    let c = cx(req, flag, nk);
                    assert_eq!(pinned.resolve(&c), staticm.resolve(&c), "{pin:?}");
                }
            }
        }
    }
}
