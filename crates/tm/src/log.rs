//! The per-thread undo log, segmented into nested frames.
//!
//! Following Nested LogTM (paper §3.2), a thread's log is "a stack of
//! frames, each consisting of a fixed-sized header (e.g., register
//! checkpoint) and a variable-sized body of undo records"; LogTM-SE
//! "augments the header with a fixed-sized signature-save area".
//!
//! The log lives in thread-private virtual memory: this module also tracks
//! the log's *address footprint* so the simulator can issue real stores for
//! log appends (they occupy cache space and generate coherence traffic, as
//! in the paper's design).

use ltse_mem::{WordAddr, WORDS_PER_BLOCK};
use ltse_sig::{SigOp, ShadowedRwSignature};

use crate::ctx::NestKind;

/// One undo record: the old contents of one block, captured before the
/// transaction's first store to it. We record per-block (as the paper does)
/// with the block's word values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UndoRecord {
    /// First word of the logged block.
    pub base: WordAddr,
    /// The block's eight 64-bit words at logging time.
    pub old: [u64; WORDS_PER_BLOCK as usize],
}

impl UndoRecord {
    /// Log-space footprint of one record in words (address word + data).
    pub const WORDS: u64 = 1 + WORDS_PER_BLOCK;
}

/// The fixed-size frame header: register checkpoint plus signature-save
/// area.
#[derive(Debug, Clone)]
pub struct FrameHeader {
    /// Open or closed nesting for the transaction this frame belongs to.
    pub kind: NestKind,
    /// An opaque register-checkpoint token. The simulator's "registers" are
    /// the workload program's control state; programs checkpoint themselves
    /// and this token lets tests assert the plumbing.
    pub checkpoint: u64,
    /// The parent's signatures, saved at nested begin (`None` for the
    /// outermost frame, whose parent has no transaction).
    pub saved_parent_sig: Option<ltse_sig::ShadowedSave>,
}

/// Header footprint in log words (checkpoint + signature-save area,
/// rounded to blocks for address accounting).
pub const HEADER_WORDS: u64 = 16;

/// One log frame: header + undo-record body.
#[derive(Debug, Clone)]
pub struct LogFrame {
    /// The fixed-size header.
    pub header: FrameHeader,
    /// LIFO body of undo records.
    pub undo: Vec<UndoRecord>,
}

/// The per-thread log: a stack of frames plus address-space accounting.
///
/// ```
/// use ltse_mem::WordAddr;
/// use ltse_tm::{NestKind, TxLog};
///
/// let mut log = TxLog::new(WordAddr(1 << 40));
/// log.push_frame(NestKind::Closed, 1, None);
/// log.append_undo(WordAddr(64), [1, 2, 3, 4, 5, 6, 7, 8]);
/// assert_eq!(log.depth(), 1);
/// assert_eq!(log.total_undo_records(), 1);
/// let frame = log.pop_frame().unwrap();
/// assert_eq!(frame.undo.len(), 1);
/// assert_eq!(log.depth(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct TxLog {
    base: WordAddr,
    frames: Vec<LogFrame>,
    /// Next free word offset from `base` (the hardware log pointer).
    ptr_words: u64,
    /// High-water mark of `ptr_words` (peak log size, for reporting).
    high_water_words: u64,
}

impl TxLog {
    /// Creates an empty log based at `base` (a thread-private virtual
    /// address).
    pub fn new(base: WordAddr) -> Self {
        TxLog {
            base,
            frames: Vec::new(),
            ptr_words: 0,
            high_water_words: 0,
        }
    }

    /// The log's base address.
    pub fn base(&self) -> WordAddr {
        self.base
    }

    /// Current nesting depth (number of live frames).
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// The hardware log pointer: address of the next free log word.
    pub fn log_ptr(&self) -> WordAddr {
        self.base.offset(self.ptr_words)
    }

    /// Peak log footprint in words over the log's lifetime.
    pub fn high_water_words(&self) -> u64 {
        self.high_water_words
    }

    /// Pushes a new frame (a `begin`), recording the header in log space.
    /// Returns the address range the header write touches.
    pub fn push_frame(
        &mut self,
        kind: NestKind,
        checkpoint: u64,
        saved_parent_sig: Option<ltse_sig::ShadowedSave>,
    ) -> WordAddr {
        let header_addr = self.log_ptr();
        self.frames.push(LogFrame {
            header: FrameHeader {
                kind,
                checkpoint,
                saved_parent_sig,
            },
            undo: Vec::new(),
        });
        self.advance(HEADER_WORDS);
        header_addr
    }

    /// Appends an undo record to the innermost frame, returning the log
    /// address the record is written at.
    ///
    /// # Panics
    ///
    /// Panics if no frame is live (logging outside a transaction).
    pub fn append_undo(
        &mut self,
        block_base: WordAddr,
        old: [u64; WORDS_PER_BLOCK as usize],
    ) -> WordAddr {
        let addr = self.log_ptr();
        let frame = self
            .frames
            .last_mut()
            .expect("undo append outside any transaction frame");
        frame.undo.push(UndoRecord {
            base: block_base,
            old,
        });
        self.advance(UndoRecord::WORDS);
        addr
    }

    /// Pops the innermost frame (abort unroll or open-commit discard),
    /// resetting the log pointer to the frame's start.
    pub fn pop_frame(&mut self) -> Option<LogFrame> {
        let frame = self.frames.pop()?;
        let words = HEADER_WORDS + frame.undo.len() as u64 * UndoRecord::WORDS;
        self.ptr_words = self.ptr_words.saturating_sub(words);
        Some(frame)
    }

    /// Closed-nested commit: merges the innermost frame into its parent.
    /// The child's undo records are appended to the parent's body (they
    /// must survive until the outer transaction commits); the child's
    /// header is discarded. The log pointer is *not* reset — the records
    /// still occupy log space. Returns the parent's saved signature slot
    /// state for the caller to discard.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two frames are live.
    pub fn merge_into_parent(&mut self) -> FrameHeader {
        assert!(self.frames.len() >= 2, "merge requires a nested frame");
        let child = self.frames.pop().expect("child frame");
        let parent = self.frames.last_mut().expect("parent frame");
        parent.undo.extend(child.undo);
        child.header
    }

    /// Outermost commit: drops all frames and resets the log pointer (the
    /// paper's "resetting the log pointer" — commit leaves old values dead
    /// in place).
    ///
    /// # Panics
    ///
    /// Panics if more than one frame is live (inner frames must be merged
    /// or popped first) or if no frame is live.
    pub fn commit_outer(&mut self) {
        assert_eq!(self.frames.len(), 1, "outer commit with live inner frames");
        self.frames.clear();
        self.ptr_words = 0;
    }

    /// Read-only view of the innermost frame.
    pub fn innermost(&self) -> Option<&LogFrame> {
        self.frames.last()
    }

    /// Total undo records across all live frames.
    pub fn total_undo_records(&self) -> usize {
        self.frames.iter().map(|f| f.undo.len()).sum()
    }

    /// Whether the log is completely empty (no live transaction).
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Whether the hardware log pointer sits back at the log base — the
    /// required post-state after an outermost commit or a full abort
    /// (invariant probe for the correctness tooling).
    pub fn ptr_is_reset(&self) -> bool {
        self.ptr_words == 0
    }

    fn advance(&mut self, words: u64) {
        self.ptr_words += words;
        self.high_water_words = self.high_water_words.max(self.ptr_words);
    }
}

/// Replays a frame's undo records in LIFO order, calling `restore` for each
/// `(block base, old words)` pair — the software abort handler's log walk.
/// Records for the same block may appear once per *transaction level*; LIFO
/// order guarantees the oldest value lands last.
pub fn unroll_frame(frame: &LogFrame, mut restore: impl FnMut(WordAddr, &[u64; 8])) {
    for rec in frame.undo.iter().rev() {
        restore(rec.base, &rec.old);
    }
}

/// Convenience used by nested partial abort: does the given saved parent
/// signature still conflict with `(op, block)`? (The handler "repeats this
/// process until the conflict disappears or it aborts the outer-most
/// transaction", §3.2.)
pub fn saved_sig_conflicts(
    saved: &ltse_sig::ShadowedSave,
    probe_kind: &ltse_sig::SignatureKind,
    op: SigOp,
    block: u64,
) -> bool {
    let mut tmp = ShadowedRwSignature::new(probe_kind);
    tmp.restore(saved);
    tmp.conflicts_with(op, block)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn old(v: u64) -> [u64; 8] {
        [v; 8]
    }

    #[test]
    fn push_append_pop_resets_pointer() {
        let mut log = TxLog::new(WordAddr(1000));
        assert!(log.is_empty());
        log.push_frame(NestKind::Closed, 7, None);
        let p0 = log.log_ptr();
        log.append_undo(WordAddr(64), old(1));
        log.append_undo(WordAddr(128), old(2));
        assert!(log.log_ptr() > p0);
        let f = log.pop_frame().unwrap();
        assert_eq!(f.undo.len(), 2);
        assert_eq!(f.header.checkpoint, 7);
        assert_eq!(log.log_ptr(), WordAddr(1000));
        assert!(log.is_empty());
    }

    #[test]
    fn lifo_unroll_order() {
        let mut log = TxLog::new(WordAddr(0));
        log.push_frame(NestKind::Closed, 0, None);
        log.append_undo(WordAddr(64), old(1));
        log.append_undo(WordAddr(128), old(2));
        log.append_undo(WordAddr(64), old(3)); // same block re-logged later
        let f = log.pop_frame().unwrap();
        let mut seq = Vec::new();
        unroll_frame(&f, |base, o| seq.push((base.0, o[0])));
        assert_eq!(seq, vec![(64, 3), (128, 2), (64, 1)]);
        // LIFO means the oldest value (1) is restored last — correct undo.
    }

    #[test]
    fn merge_into_parent_keeps_undo() {
        let mut log = TxLog::new(WordAddr(0));
        log.push_frame(NestKind::Closed, 1, None);
        log.append_undo(WordAddr(64), old(1));
        log.push_frame(NestKind::Closed, 2, None);
        log.append_undo(WordAddr(128), old(2));
        let child_header = log.merge_into_parent();
        assert_eq!(child_header.checkpoint, 2);
        assert_eq!(log.depth(), 1);
        assert_eq!(log.innermost().unwrap().undo.len(), 2);
        // Log pointer unchanged by the merge (records still occupy space).
        assert!(log.log_ptr().0 > HEADER_WORDS);
    }

    #[test]
    fn commit_outer_resets_everything() {
        let mut log = TxLog::new(WordAddr(500));
        log.push_frame(NestKind::Closed, 0, None);
        log.append_undo(WordAddr(64), old(9));
        assert!(!log.ptr_is_reset());
        log.commit_outer();
        assert!(log.is_empty());
        assert!(log.ptr_is_reset());
        assert_eq!(log.log_ptr(), WordAddr(500));
        assert!(log.high_water_words() > 0, "high water survives commit");
    }

    #[test]
    #[should_panic(expected = "outside any transaction")]
    fn undo_outside_tx_panics() {
        let mut log = TxLog::new(WordAddr(0));
        log.append_undo(WordAddr(64), old(0));
    }

    #[test]
    #[should_panic(expected = "live inner frames")]
    fn outer_commit_with_nested_frames_panics() {
        let mut log = TxLog::new(WordAddr(0));
        log.push_frame(NestKind::Closed, 0, None);
        log.push_frame(NestKind::Closed, 1, None);
        log.commit_outer();
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut log = TxLog::new(WordAddr(0));
        log.push_frame(NestKind::Closed, 0, None);
        for i in 0..10 {
            log.append_undo(WordAddr(64 * (i + 1)), old(i));
        }
        let peak = log.high_water_words();
        assert_eq!(peak, HEADER_WORDS + 10 * UndoRecord::WORDS);
        log.commit_outer();
        log.push_frame(NestKind::Closed, 0, None);
        log.append_undo(WordAddr(64), old(0));
        assert_eq!(log.high_water_words(), peak, "peak is a lifetime max");
    }

    #[test]
    fn saved_sig_conflict_probe() {
        use ltse_sig::{ShadowedRwSignature, SignatureKind};
        let kind = SignatureKind::paper_bs_2kb();
        let mut sig = ShadowedRwSignature::new(&kind);
        sig.insert(SigOp::Write, 77);
        let saved = sig.save();
        assert!(saved_sig_conflicts(&saved, &kind, SigOp::Read, 77));
        assert!(!saved_sig_conflicts(&saved, &kind, SigOp::Read, 78));
    }
}
