//! Configuration of the transactional hardware and runtime.

use ltse_sig::SignatureKind;
use ltse_sim::Cycle;

use crate::adapt::BackoffKind;
use crate::conflict::ContentionPolicy;

/// Configuration for the LogTM-SE hardware additions and software handlers.
///
/// Cost parameters model the paper's qualitative claims: commit is a fast
/// local operation (clear signature + reset log pointer); abort traps to a
/// software handler and takes time proportional to the number of logged
/// blocks; nested begins save the signature to the log frame header.
///
/// ```
/// use ltse_sig::SignatureKind;
/// use ltse_tm::TmConfig;
///
/// let cfg = TmConfig::default_with(SignatureKind::paper_bs_2kb());
/// assert_eq!(cfg.signature, SignatureKind::paper_bs_2kb());
/// assert!(cfg.abort_per_block_cycles > cfg.commit_cycles);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TmConfig {
    /// Signature implementation for every thread context.
    pub signature: SignatureKind,
    /// Log-filter geometry: number of entries (fully associative). 0
    /// disables the filter (every transactional store logs — correct but
    /// wasteful, exactly as the paper notes).
    pub log_filter_entries: usize,
    /// Cycles for a commit (signature clear + log pointer reset; local).
    pub commit_cycles: Cycle,
    /// Fixed cycles to trap into the software abort handler.
    pub abort_trap_cycles: Cycle,
    /// Cycles per logged block restored by the abort handler's LIFO walk
    /// (in addition to the memory traffic of the restoring stores).
    pub abort_per_block_cycles: Cycle,
    /// Cycles to save/restore a signature to/from a log frame header
    /// (nested begin / open commit / partial abort).
    pub sig_save_cycles: Cycle,
    /// How long a NACKed requester waits before retrying its coherence
    /// request.
    pub stall_retry_cycles: Cycle,
    /// Base for randomized-exponential backoff after an abort; the k-th
    /// consecutive abort waits `U(0, base << min(k, cap_shift))`.
    pub backoff_base_cycles: Cycle,
    /// Maximum left-shift applied to the backoff base.
    pub backoff_cap_shift: u32,
    /// Cycles to begin a transaction (register checkpoint).
    pub begin_cycles: Cycle,
    /// Contention-management policy on NACKs.
    pub contention: ContentionPolicy,
    /// Which backoff family shapes post-abort (and partial-abort) waits.
    pub backoff_kind: BackoffKind,
    /// Bounded-retry escalation: after this many consecutive aborts of one
    /// transaction, its retry acquires the global serialization token and
    /// runs exempt from conflict-resolution aborts (mirroring the STM
    /// backend's serial fallback). `None` disables escalation.
    pub escalate_after: Option<u32>,
    /// Test/diagnosis pin for [`ContentionPolicy::Adaptive`]: when set, the
    /// adaptive manager always selects this static policy, making the run
    /// byte-identical to the static configuration. Ignored by static
    /// policies.
    pub adaptive_pin: Option<ContentionPolicy>,
    /// **Test-only fault injection**: when set, the abort handler silently
    /// skips restoring the most recently logged undo record of the
    /// outermost frame, leaving one block un-rolled-back. Exists solely so
    /// the schedule-exploration checker (`ltse_sim::explore` + the
    /// serializability oracle) can prove it detects a broken undo path;
    /// must never be set outside tests.
    pub fault_skip_one_undo: bool,
}

impl TmConfig {
    /// Defaults with a chosen signature kind: 16-entry log filter and cost
    /// parameters reflecting the paper's fast-commit / software-abort
    /// asymmetry.
    pub fn default_with(signature: SignatureKind) -> Self {
        TmConfig {
            signature,
            log_filter_entries: 16,
            commit_cycles: Cycle(2),
            abort_trap_cycles: Cycle(80),
            abort_per_block_cycles: Cycle(10),
            sig_save_cycles: Cycle(8),
            stall_retry_cycles: Cycle(20),
            backoff_base_cycles: Cycle(60),
            backoff_cap_shift: 6,
            begin_cycles: Cycle(4),
            contention: ContentionPolicy::RequesterStalls,
            backoff_kind: BackoffKind::RandExp,
            escalate_after: None,
            adaptive_pin: None,
            fault_skip_one_undo: false,
        }
    }
}

impl Default for TmConfig {
    fn default() -> Self {
        TmConfig::default_with(SignatureKind::Perfect)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_uses_perfect() {
        assert_eq!(TmConfig::default().signature, SignatureKind::Perfect);
    }

    #[test]
    fn commit_is_cheap_abort_is_dear() {
        let c = TmConfig::default();
        assert!(c.commit_cycles < c.abort_trap_cycles);
    }
}
