//! LogTM's distributed conflict resolution, adopted by LogTM-SE (§2):
//! "the core stalls, retries its coherence operation, and aborts on a
//! possible deadlock cycle."
//!
//! The mechanism (from the LogTM paper): each transaction carries a
//! timestamp from its begin. A context sets its `possible_cycle` flag when
//! it NACKs a request from an **older** transaction. A requester whose
//! request is NACKed by an **older** transaction while its own
//! `possible_cycle` flag is set conservatively assumes a deadlock cycle and
//! aborts. Everyone else stalls and retries.

use ltse_sim::Cycle;

/// A transaction's position in the age order: begin time plus a context-id
/// tie-break so the order is total.
///
/// ```
/// use ltse_sim::Cycle;
/// use ltse_tm::conflict::TxStamp;
///
/// let a = TxStamp::new(Cycle(10), 0);
/// let b = TxStamp::new(Cycle(10), 1);
/// let c = TxStamp::new(Cycle(99), 0);
/// assert!(a.older_than(b));
/// assert!(b.older_than(c));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxStamp {
    /// Cycle at (outermost) transaction begin.
    pub begin: Cycle,
    /// Owning thread context id (tie-break).
    pub ctx: u32,
}

impl TxStamp {
    /// Creates a stamp.
    pub fn new(begin: Cycle, ctx: u32) -> Self {
        TxStamp { begin, ctx }
    }

    /// Strictly older (wins conflicts) than `other`.
    pub fn older_than(&self, other: TxStamp) -> bool {
        self < &other
    }
}

/// What a NACKed requester should do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resolution {
    /// Stall, then retry the coherence request after the configured
    /// interval.
    Stall,
    /// Possible deadlock cycle: abort the transaction.
    Abort,
}

/// The contention-management policy applied when a request is NACKed.
///
/// The paper's baseline "stalls, retries its coherence operation, and
/// aborts on a possible deadlock cycle", and notes that "more sophisticated
/// future versions could trap to a contention manager" — these are three
/// such managers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ContentionPolicy {
    /// LogTM's default: requester stalls; abort only when the timestamp /
    /// `possible_cycle` rule detects a potential deadlock.
    #[default]
    RequesterStalls,
    /// The simplest manager: a transactional requester aborts itself on
    /// any NACK (early-HTM behaviour; maximal wasted work, zero deadlock
    /// machinery).
    RequesterAborts,
    /// A work-weighted manager: on a possible deadlock cycle the requester
    /// aborts only if it has invested *less* work (fewer undo records) than
    /// the conflicting transaction; otherwise it keeps stalling and lets
    /// the deadlock rule fire on the other side.
    SizeMatters,
    /// Age-based (Greedy/Timestamp-style): the strictly younger side of a
    /// conflict aborts immediately, the older side stalls. Deadlock-free
    /// without `possible_cycle` tracking; preserved begin stamps across
    /// retries make the oldest transaction win eventually.
    Karma,
    /// Online adaptive selection: every NACK is resolved by the static
    /// policy [`crate::adapt::select_policy`] picks from the requester's
    /// [`crate::adapt::ConflictHistory`] (abort streaks → `Karma`,
    /// convoys with nothing invested → `RequesterAborts`, otherwise the
    /// baseline `RequesterStalls`).
    Adaptive,
}

impl ContentionPolicy {
    /// Every variant, for exhaustive sweeps and reflection tests.
    pub const ALL: [ContentionPolicy; 5] = [
        ContentionPolicy::RequesterStalls,
        ContentionPolicy::RequesterAborts,
        ContentionPolicy::SizeMatters,
        ContentionPolicy::Karma,
        ContentionPolicy::Adaptive,
    ];

    /// The static (non-adaptive) variants — the candidates an
    /// [`Adaptive`](ContentionPolicy::Adaptive) manager may be pinned to.
    pub const STATIC: [ContentionPolicy; 4] = [
        ContentionPolicy::RequesterStalls,
        ContentionPolicy::RequesterAborts,
        ContentionPolicy::SizeMatters,
        ContentionPolicy::Karma,
    ];

    /// The CLI/JSON name.
    pub fn name(&self) -> &'static str {
        match self {
            ContentionPolicy::RequesterStalls => "requester_stalls",
            ContentionPolicy::RequesterAborts => "requester_aborts",
            ContentionPolicy::SizeMatters => "size_matters",
            ContentionPolicy::Karma => "karma",
            ContentionPolicy::Adaptive => "adaptive",
        }
    }

    /// The stable wire/fingerprint discriminant. One definition backs both
    /// `FpHash` and `CacheValue`, so the two encodings cannot drift apart.
    fn discriminant(&self) -> u8 {
        match self {
            ContentionPolicy::RequesterStalls => 0,
            ContentionPolicy::RequesterAborts => 1,
            ContentionPolicy::SizeMatters => 2,
            ContentionPolicy::Karma => 3,
            ContentionPolicy::Adaptive => 4,
        }
    }
}

impl std::str::FromStr for ContentionPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ContentionPolicy::ALL
            .into_iter()
            .find(|p| p.name() == s)
            .ok_or_else(|| format!("unknown contention policy '{s}'"))
    }
}

impl ltse_sim::cache::FpHash for ContentionPolicy {
    fn fp_feed(&self, h: &mut ltse_sim::cache::FpHasher) {
        h.write_u64(self.discriminant() as u64);
    }
}

impl ltse_sim::cache::CacheValue for ContentionPolicy {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(self.discriminant());
    }

    fn decode(r: &mut ltse_sim::cache::ByteReader<'_>) -> Option<Self> {
        let d = r.u8()?;
        ContentionPolicy::ALL.into_iter().find(|p| p.discriminant() == d)
    }
}

/// Decides the requester's action and whether the *nacker* must set its
/// `possible_cycle` flag.
///
/// * `requester`: the NACKed context's stamp, or `None` if it is not in a
///   transaction (plain or escape-action access — always stalls).
/// * `requester_possible_cycle`: the requester's current flag.
/// * `nacker`: the conflicting context's stamp, or `None` if the conflict
///   came from a *descheduled* transaction's summary signature (no live
///   context to compare against — the caller handles that case separately).
///
/// Returns `(resolution, nacker_sets_possible_cycle)`.
pub fn resolve_nack(
    requester: Option<TxStamp>,
    requester_possible_cycle: bool,
    nacker: Option<TxStamp>,
) -> (Resolution, bool) {
    resolve_nack_with(
        ContentionPolicy::RequesterStalls,
        requester,
        requester_possible_cycle,
        nacker,
        0,
        0,
    )
}

/// [`resolve_nack`] under an explicit [`ContentionPolicy`].
/// `requester_work`/`nacker_work` are invested-work estimates (undo
/// records) consulted by [`ContentionPolicy::SizeMatters`].
///
/// This is the history-free entry point: it dispatches through the
/// [`crate::adapt::ContentionManager`] for `policy` with an empty
/// [`crate::adapt::ConflictHistory`], so [`ContentionPolicy::Adaptive`]
/// here behaves as its default selection. Callers holding real per-thread
/// history (the [`crate::TmUnit`] NACK path) resolve through
/// [`crate::adapt::select_policy`] + the managers directly.
pub fn resolve_nack_with(
    policy: ContentionPolicy,
    requester: Option<TxStamp>,
    requester_possible_cycle: bool,
    nacker: Option<TxStamp>,
    requester_work: usize,
    nacker_work: usize,
) -> (Resolution, bool) {
    let cx = crate::adapt::NackContext {
        requester,
        requester_possible_cycle,
        nacker,
        requester_work,
        nacker_work,
        history: crate::adapt::ConflictHistory::default(),
    };
    crate::adapt::manager_for(policy, None).resolve(&cx)
}

/// Randomized-exponential backoff after the `attempt`-th consecutive abort:
/// a uniform draw from `[0, base << min(attempt, cap_shift))`.
pub fn abort_backoff(
    rng: &mut ltse_sim::rng::Xoshiro256StarStar,
    base: Cycle,
    cap_shift: u32,
    attempt: u32,
) -> Cycle {
    let window = base.as_u64() << attempt.min(cap_shift);
    if window == 0 {
        return Cycle::ZERO;
    }
    Cycle(rng.gen_range(0, window))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn st(t: u64, ctx: u32) -> TxStamp {
        TxStamp::new(Cycle(t), ctx)
    }

    #[test]
    fn age_order_total() {
        assert!(st(1, 0).older_than(st(2, 0)));
        assert!(st(1, 0).older_than(st(1, 1)));
        assert!(!st(1, 1).older_than(st(1, 1)));
    }

    #[test]
    fn young_requester_stalls() {
        // Older nacker, requester never blocked anyone older → stall.
        let (r, flag) = resolve_nack(Some(st(100, 1)), false, Some(st(10, 0)));
        assert_eq!(r, Resolution::Stall);
        assert!(!flag, "nacker is older; no cycle possible through it");
    }

    #[test]
    fn possible_cycle_aborts() {
        // Requester already NACKed someone older (flag set) and is now
        // blocked by an older transaction → deadlock possible → abort.
        let (r, _) = resolve_nack(Some(st(100, 1)), true, Some(st(10, 0)));
        assert_eq!(r, Resolution::Abort);
    }

    #[test]
    fn older_requester_makes_nacker_flag() {
        // Requester older than nacker → nacker sets possible_cycle;
        // requester (older) just stalls.
        let (r, flag) = resolve_nack(Some(st(10, 0)), false, Some(st(100, 1)));
        assert_eq!(r, Resolution::Stall);
        assert!(flag);
    }

    #[test]
    fn classic_deadlock_resolves_one_abort() {
        // T_old (ts 10) and T_young (ts 20) each hold what the other wants.
        // Step 1: T_old requests; T_young NACKs an older tx → young sets flag.
        let (r1, young_flags) = resolve_nack(Some(st(10, 0)), false, Some(st(20, 1)));
        assert_eq!(r1, Resolution::Stall);
        assert!(young_flags);
        // Step 2: T_young requests; T_old NACKs. Young's flag is set and the
        // nacker is older → young aborts; old survives.
        let (r2, old_flags) = resolve_nack(Some(st(20, 1)), young_flags, Some(st(10, 0)));
        assert_eq!(r2, Resolution::Abort);
        assert!(!old_flags);
    }

    #[test]
    fn non_transactional_requester_stalls() {
        let (r, flag) = resolve_nack(None, false, Some(st(5, 0)));
        assert_eq!(r, Resolution::Stall);
        assert!(!flag);
    }

    #[test]
    fn summary_conflict_stalls() {
        let (r, flag) = resolve_nack(Some(st(5, 0)), true, None);
        assert_eq!(r, Resolution::Stall);
        assert!(!flag);
    }

    #[test]
    fn backoff_grows_and_caps() {
        let mut rng = ltse_sim::rng::Xoshiro256StarStar::new(1);
        let base = Cycle(64);
        for attempt in 0..20 {
            let b = abort_backoff(&mut rng, base, 4, attempt);
            let window = 64u64 << attempt.min(4);
            assert!(b.as_u64() < window, "draw within window");
            assert!(b.as_u64() < 64u64 << 4, "capped window");
        }
    }

    #[test]
    fn requester_aborts_policy_always_aborts_transactions() {
        let (r, _) = resolve_nack_with(
            ContentionPolicy::RequesterAborts,
            Some(st(5, 0)),
            false,
            Some(st(99, 1)),
            0,
            0,
        );
        assert_eq!(r, Resolution::Abort);
        // …but non-transactional requesters still just retry.
        let (r, _) = resolve_nack_with(
            ContentionPolicy::RequesterAborts,
            None,
            false,
            Some(st(5, 0)),
            0,
            0,
        );
        assert_eq!(r, Resolution::Stall);
    }

    #[test]
    fn size_matters_spares_the_bigger_transaction() {
        // Deadlock-possible situation; requester has MORE invested work →
        // it stalls (the other side's rule will fire instead).
        let (r, _) = resolve_nack_with(
            ContentionPolicy::SizeMatters,
            Some(st(100, 1)),
            true,
            Some(st(10, 0)),
            50,
            3,
        );
        assert_eq!(r, Resolution::Stall);
        // Less invested work → abort as usual.
        let (r, _) = resolve_nack_with(
            ContentionPolicy::SizeMatters,
            Some(st(100, 1)),
            true,
            Some(st(10, 0)),
            1,
            3,
        );
        assert_eq!(r, Resolution::Abort);
    }

    #[test]
    fn backoff_zero_base() {
        let mut rng = ltse_sim::rng::Xoshiro256StarStar::new(1);
        assert_eq!(abort_backoff(&mut rng, Cycle(0), 4, 3), Cycle::ZERO);
    }

    #[test]
    fn karma_policy_aborts_the_younger_side() {
        let (r, _) = resolve_nack_with(
            ContentionPolicy::Karma,
            Some(st(100, 1)),
            false,
            Some(st(10, 0)),
            0,
            0,
        );
        assert_eq!(r, Resolution::Abort, "younger requester loses");
        let (r, flag) = resolve_nack_with(
            ContentionPolicy::Karma,
            Some(st(10, 0)),
            false,
            Some(st(100, 1)),
            0,
            0,
        );
        assert_eq!(r, Resolution::Stall, "older requester waits");
        assert!(flag, "nacker of an older tx still flags possible_cycle");
    }

    /// Counts `ContentionPolicy` variants through an exhaustive match —
    /// adding a variant without extending `ALL` (and therefore the
    /// fingerprint/codec round-trip below) is a compile error here, the
    /// same reflection trick `TmStats::merge`'s test uses.
    #[test]
    fn policy_all_is_exhaustive() {
        fn ordinal(p: ContentionPolicy) -> usize {
            match p {
                ContentionPolicy::RequesterStalls => 0,
                ContentionPolicy::RequesterAborts => 1,
                ContentionPolicy::SizeMatters => 2,
                ContentionPolicy::Karma => 3,
                ContentionPolicy::Adaptive => 4,
            }
        }
        assert_eq!(ContentionPolicy::ALL.len(), 5);
        for (i, p) in ContentionPolicy::ALL.into_iter().enumerate() {
            assert_eq!(ordinal(p), i, "ALL must list every variant once, in order");
        }
    }

    #[test]
    fn policy_fingerprints_never_alias() {
        use ltse_sim::cache::{FpHash, FpHasher};
        let mut fps = Vec::new();
        for p in ContentionPolicy::ALL {
            let mut h = FpHasher::new("policy-alias-test");
            p.fp_feed(&mut h);
            fps.push(h.finish());
        }
        for i in 0..fps.len() {
            for j in 0..i {
                assert_ne!(
                    fps[i], fps[j],
                    "{:?} and {:?} alias the same cache fingerprint",
                    ContentionPolicy::ALL[i],
                    ContentionPolicy::ALL[j]
                );
            }
        }
    }

    #[test]
    fn policy_codec_round_trips_every_variant() {
        use ltse_sim::cache::{ByteReader, CacheValue};
        for p in ContentionPolicy::ALL {
            let mut buf = Vec::new();
            p.encode(&mut buf);
            let mut r = ByteReader::new(&buf);
            assert_eq!(ContentionPolicy::decode(&mut r), Some(p));
            assert_eq!(p.name().parse::<ContentionPolicy>(), Ok(p));
        }
        // Unknown discriminants must decode to None, not a wrong variant.
        let mut r = ByteReader::new(&[200u8]);
        assert_eq!(ContentionPolicy::decode(&mut r), None);
        assert!("bogus".parse::<ContentionPolicy>().is_err());
    }
}
