//! The paper's Table 4, as data: how each HTM virtualization proposal
//! handles cache misses, commits, aborts, cache evictions, paging, and
//! thread switches, before and after its virtualization mode engages.
//!
//! This is a *qualitative* model (exactly as in the paper) — the repro
//! harness prints it and tests assert the paper's headline comparison:
//! LogTM-SE handles the frequent post-virtualization events (cache misses
//! and commits) with plain hardware, and cache victimization does not even
//! count as a virtualization event.

use std::fmt;

/// How a system handles one event (Table 4's legend).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Action {
    /// "-": handled in simple hardware.
    SimpleHw,
    /// "H": complex hardware.
    ComplexHw,
    /// "S": handled in software.
    Software,
    /// "A": abort transaction.
    Abort,
    /// "C": copy values (possibly combined with software/hardware).
    Copy,
    /// "W": walk cache.
    WalkCache,
    /// "V": validate read set.
    ValidateReadSet,
    /// "B": block other transactions.
    BlockOthers,
}

impl Action {
    /// The single-letter legend code from Table 4.
    pub fn code(self) -> char {
        match self {
            Action::SimpleHw => '-',
            Action::ComplexHw => 'H',
            Action::Software => 'S',
            Action::Abort => 'A',
            Action::Copy => 'C',
            Action::WalkCache => 'W',
            Action::ValidateReadSet => 'V',
            Action::BlockOthers => 'B',
        }
    }

    /// Whether this action is "cheap" in the paper's sense (plain
    /// hardware).
    pub fn is_simple_hw(self) -> bool {
        matches!(self, Action::SimpleHw)
    }
}

/// The events of Table 4's columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Event {
    /// Cache miss before virtualization engages.
    CacheMissBefore,
    /// Commit before virtualization.
    CommitBefore,
    /// Abort before virtualization.
    AbortBefore,
    /// Cache eviction of transactional data (the virtualization trigger for
    /// most systems; shaded in the paper).
    CacheEviction,
    /// Cache miss after virtualization.
    CacheMissAfter,
    /// Commit after virtualization.
    CommitAfter,
    /// Abort after virtualization.
    AbortAfter,
    /// Cache eviction after virtualization.
    CacheEvictionAfter,
    /// Paging (always a virtualization event; shaded).
    Paging,
    /// Thread switch (always a virtualization event; shaded).
    ThreadSwitch,
}

impl Event {
    /// All events, in Table 4 column order.
    pub fn all() -> [Event; 10] {
        [
            Event::CacheMissBefore,
            Event::CommitBefore,
            Event::AbortBefore,
            Event::CacheEviction,
            Event::CacheMissAfter,
            Event::CommitAfter,
            Event::AbortAfter,
            Event::CacheEvictionAfter,
            Event::Paging,
            Event::ThreadSwitch,
        ]
    }

    /// Short column header.
    pub fn header(self) -> &'static str {
        match self {
            Event::CacheMissBefore => "$Miss",
            Event::CommitBefore => "Commit",
            Event::AbortBefore => "Abort",
            Event::CacheEviction => "$Evict",
            Event::CacheMissAfter => "$Miss*",
            Event::CommitAfter => "Commit*",
            Event::AbortAfter => "Abort*",
            Event::CacheEvictionAfter => "$Evict*",
            Event::Paging => "Paging",
            Event::ThreadSwitch => "ThrSw",
        }
    }

    /// Whether the paper shades this column as a virtualization event.
    pub fn is_virtualization_event(self) -> bool {
        !matches!(
            self,
            Event::CacheMissBefore | Event::CommitBefore | Event::AbortBefore
        )
    }
}

/// One row of Table 4.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemRow {
    /// System name as printed in the paper.
    pub name: &'static str,
    actions: [&'static [Action]; 10],
}

impl SystemRow {
    /// Actions for `event`.
    pub fn actions(&self, event: Event) -> &'static [Action] {
        let idx = Event::all().iter().position(|e| *e == event).expect("known");
        self.actions[idx]
    }

    /// The action string (legend codes) for `event`, e.g. `"SC"`.
    pub fn action_codes(&self, event: Event) -> String {
        self.actions(event).iter().map(|a| a.code()).collect()
    }
}

impl fmt::Display for SystemRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:<18}", self.name)?;
        for e in Event::all() {
            write!(f, " {:>7}", self.action_codes(e))?;
        }
        Ok(())
    }
}

use Action::*;

const S_: &[Action] = &[SimpleHw];
const H_: &[Action] = &[ComplexHw];
const SW: &[Action] = &[Software];
const HC: &[Action] = &[ComplexHw, Copy];
const SC: &[Action] = &[Software, Copy];
const AB: &[Action] = &[Abort];
const BL: &[Action] = &[BlockOthers];
const AS: &[Action] = &[Abort, Software];
const ASC: &[Action] = &[Abort, Software, Copy];
const SCV: &[Action] = &[Software, Copy, ValidateReadSet];
const SWV: &[Action] = &[Software, WalkCache, ValidateReadSet];
const SC2: &[Action] = &[Software, Copy];

/// The full Table 4, row order as printed in the paper.
pub fn table4() -> Vec<SystemRow> {
    vec![
        SystemRow {
            name: "UTM [3]",
            actions: [S_, S_, S_, H_, H_, H_, HC, H_, H_, H_],
        },
        SystemRow {
            name: "VTM [25]",
            actions: [S_, S_, S_, SW, SW, SC, SW, SW, SW, SWV],
        },
        SystemRow {
            name: "UnrestrictedTM[6]",
            actions: [S_, S_, S_, AB, BL, BL, BL, BL, AS, AS],
        },
        SystemRow {
            name: "XTM [9]",
            actions: [S_, S_, S_, ASC, S_, SCV, SW, SC, SC, AS],
        },
        SystemRow {
            name: "XTM-g [9]",
            actions: [S_, S_, S_, SC2, S_, SCV, SW, SC, SC, AS],
        },
        SystemRow {
            name: "PTM-Copy [8]",
            actions: [S_, S_, S_, SC, SW, SW, SC, SC, SW, SW],
        },
        SystemRow {
            name: "PTM-Select [8]",
            actions: [S_, S_, S_, SW, H_, SW, SW, SW, SW, SW],
        },
        SystemRow {
            name: "LogTM-SE",
            actions: [S_, S_, SC, S_, S_, S_, SC, S_, SW, SW],
        },
    ]
}

/// The LogTM-SE row.
pub fn logtm_se_row() -> SystemRow {
    table4().pop().expect("table has rows")
}

/// Renders the full table as aligned text (the repro binary's `table4`
/// subcommand).
pub fn render_table4() -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<18}", "System"));
    for e in Event::all() {
        out.push_str(&format!(" {:>7}", e.header()));
    }
    out.push('\n');
    for row in table4() {
        out.push_str(&row.to_string());
        out.push('\n');
    }
    out.push_str("\nLegend: - simple hw | H complex hw | S software | A abort | C copy\n");
    out.push_str("        W walk cache | V validate read set | B block others\n");
    out.push_str("Columns marked * are after virtualization engages.\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_systems_ten_columns() {
        let t = table4();
        assert_eq!(t.len(), 8);
        for row in &t {
            for e in Event::all() {
                assert!(!row.actions(e).is_empty(), "{} {}", row.name, e.header());
            }
        }
    }

    #[test]
    fn logtm_se_handles_frequent_events_in_hw_after_virtualization() {
        // The paper's claim: LogTM-SE requires the least effort for cache
        // misses and commits — the most frequent events — after
        // virtualization.
        let row = logtm_se_row();
        assert_eq!(row.name, "LogTM-SE");
        assert!(row.actions(Event::CacheMissAfter)[0].is_simple_hw());
        assert!(row.actions(Event::CommitAfter)[0].is_simple_hw());
        // And victimization itself is NOT a virtualization event.
        assert!(row.actions(Event::CacheEviction)[0].is_simple_hw());
        assert!(row.actions(Event::CacheEvictionAfter)[0].is_simple_hw());
    }

    #[test]
    fn no_other_system_matches_logtm_se_on_the_frequent_events() {
        for row in table4() {
            if row.name == "LogTM-SE" {
                continue;
            }
            let all_simple = row.actions(Event::CacheEviction)[0].is_simple_hw()
                && row.actions(Event::CacheMissAfter)[0].is_simple_hw()
                && row.actions(Event::CommitAfter)[0].is_simple_hw();
            assert!(!all_simple, "{} should not match LogTM-SE", row.name);
        }
    }

    #[test]
    fn virtualization_event_shading() {
        assert!(!Event::CacheMissBefore.is_virtualization_event());
        assert!(Event::Paging.is_virtualization_event());
        assert!(Event::ThreadSwitch.is_virtualization_event());
        assert!(Event::CacheEviction.is_virtualization_event());
    }

    #[test]
    fn render_contains_all_rows_and_legend() {
        let s = render_table4();
        for row in table4() {
            assert!(s.contains(row.name));
        }
        assert!(s.contains("Legend"));
    }

    #[test]
    fn action_codes_roundtrip() {
        let row = logtm_se_row();
        assert_eq!(row.action_codes(Event::AbortBefore), "SC");
        assert_eq!(row.action_codes(Event::CacheMissBefore), "-");
    }
}
