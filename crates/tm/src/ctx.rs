//! Per-thread-context transactional state (the circled additions of the
//! paper's Figure 1).

use ltse_mem::{Asid, BlockAddr, PageId, WordAddr, WORDS_PER_BLOCK};
use ltse_sig::{ConflictVerdict, ShadowedRwSignature, SigOp, SignatureKind};
use ltse_sim::rng::Xoshiro256StarStar;
use ltse_sim::Cycle;

use crate::adapt::{backoff_cycles, ConflictHistory};
use crate::config::TmConfig;
use crate::conflict::TxStamp;
use crate::filter::LogFilter;
use crate::log::{unroll_frame, TxLog};
use crate::stats::{TmStats, TxSetSizes};

/// Closed or open nesting (paper §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NestKind {
    /// Child merges into the parent at commit; a conflict can partially
    /// abort just the child.
    Closed,
    /// Child commits its changes and releases isolation before the parent
    /// commits.
    Open,
}

/// Coarse transaction phase of a thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxPhase {
    /// Not inside any transaction.
    Idle,
    /// Inside a transaction (any nesting depth).
    Active,
}

/// Everything LogTM-SE adds to one thread context, plus the software-visible
/// log: read/write signatures (with exact shadows for accounting), summary
/// signature, log + log pointer, log filter, nesting depth, timestamp and
/// `possible_cycle` flag, escape-action depth.
///
/// The state is self-contained and movable between hardware contexts — that
/// mobility *is* the paper's virtualization story (§4.1).
#[derive(Debug, Clone)]
pub struct ThreadTmState {
    /// Software thread id (stable across migrations).
    pub thread_id: u32,
    /// Owning process's address-space id.
    pub asid: Asid,
    sig: ShadowedRwSignature,
    summary: Option<ShadowedRwSignature>,
    log: TxLog,
    filter: LogFilter,
    stamp: Option<TxStamp>,
    /// Timestamp preserved across abort→retry so old transactions
    /// eventually win (LogTM's starvation avoidance).
    preserved_stamp: Option<TxStamp>,
    possible_cycle: bool,
    escape_depth: u32,
    abort_attempts: u32,
    /// Consecutive deadlock-possible NACKs a size-aware contention manager
    /// has spared this transaction; escalates to an abort when it grows
    /// (the sparing rule alone can deadlock when the bigger transaction is
    /// the younger one).
    pub(crate) spared_stalls: u32,
    checkpoint_counter: u64,
    /// Whether this thread's signatures are currently folded into its
    /// process summary signature (set while descheduled mid-transaction,
    /// cleared at commit).
    pub in_summary: bool,
    /// Page remaps queued while descheduled (applied before resuming, §4.2).
    pending_remaps: Vec<(PageId, PageId)>,
    rng: Xoshiro256StarStar,
    /// Per-thread statistics.
    pub stats: TmStats,
    /// Always-on conflict history feeding the adaptive contention manager.
    /// Maintained identically under every policy so enabling `Adaptive`
    /// (or pinning it) changes no other thread-visible state.
    pub history: ConflictHistory,
}

/// Result of an outermost abort: handler costs and backoff for the caller
/// to schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AbortCosts {
    /// Trap + per-block handler cycles (memory traffic of the restoring
    /// stores is charged separately by the system).
    pub handler_cycles: Cycle,
    /// Blocks restored from the log.
    pub restored_blocks: u64,
    /// Randomized-exponential backoff before retrying.
    pub backoff: Cycle,
    /// The thread had been context-switched during this transaction; the
    /// OS must remove its contribution from the process summary signature
    /// (an aborted transaction releases isolation just like a committed
    /// one).
    pub needs_summary_update: bool,
}

impl ThreadTmState {
    /// Creates idle TM state for a thread. `log_base` must be a
    /// thread-private address (each thread gets a disjoint log region).
    pub fn new(thread_id: u32, asid: Asid, config: &TmConfig, log_base: WordAddr, seed: u64) -> Self {
        ThreadTmState {
            thread_id,
            asid,
            sig: ShadowedRwSignature::new(&config.signature),
            summary: None,
            log: TxLog::new(log_base),
            filter: LogFilter::new(config.log_filter_entries),
            stamp: None,
            preserved_stamp: None,
            possible_cycle: false,
            escape_depth: 0,
            abort_attempts: 0,
            spared_stalls: 0,
            checkpoint_counter: 0,
            in_summary: false,
            pending_remaps: Vec::new(),
            rng: Xoshiro256StarStar::new(seed),
            stats: TmStats::new(),
            history: ConflictHistory::default(),
        }
    }

    /// Consecutive aborts of the current transaction attempt (reset at
    /// commit). The escalation rule compares this against
    /// [`TmConfig::escalate_after`].
    pub fn abort_attempts(&self) -> u32 {
        self.abort_attempts
    }

    /// Whether the thread is inside a transaction.
    pub fn in_tx(&self) -> bool {
        !self.log.is_empty()
    }

    /// Current phase.
    pub fn phase(&self) -> TxPhase {
        if self.in_tx() {
            TxPhase::Active
        } else {
            TxPhase::Idle
        }
    }

    /// Current nesting depth.
    pub fn depth(&self) -> usize {
        self.log.depth()
    }

    /// The transaction timestamp, if active.
    pub fn stamp(&self) -> Option<TxStamp> {
        self.stamp
    }

    /// The `possible_cycle` deadlock-avoidance flag.
    pub fn possible_cycle(&self) -> bool {
        self.possible_cycle
    }

    /// Sets the `possible_cycle` flag (this context NACKed an older
    /// transaction).
    pub fn set_possible_cycle(&mut self) {
        self.possible_cycle = true;
    }

    /// Whether the thread is inside an escape action.
    pub fn in_escape(&self) -> bool {
        self.escape_depth > 0
    }

    /// Enters an escape action (non-transactional window inside a
    /// transaction, used for system calls/IO/allocation — §6.2). Nestable.
    pub fn escape_begin(&mut self) {
        self.escape_depth += 1;
        self.stats.escapes += 1;
    }

    /// Leaves an escape action.
    ///
    /// # Panics
    ///
    /// Panics if not inside an escape action.
    pub fn escape_end(&mut self) {
        assert!(self.escape_depth > 0, "escape_end without escape_begin");
        self.escape_depth -= 1;
    }

    /// The hardware + shadow signature pair.
    pub fn sig(&self) -> &ShadowedRwSignature {
        &self.sig
    }

    /// The installed summary signature, if any.
    pub fn summary(&self) -> Option<&ShadowedRwSignature> {
        self.summary.as_ref()
    }

    /// Installs (or replaces) the summary signature checked on every memory
    /// reference.
    pub fn install_summary(&mut self, summary: Option<ShadowedRwSignature>) {
        self.summary = summary;
    }

    /// The undo log.
    pub fn log(&self) -> &TxLog {
        &self.log
    }

    /// Per-thread RNG (backoff jitter); exposed for the system's
    /// perturbation draws.
    pub fn rng_mut(&mut self) -> &mut Xoshiro256StarStar {
        &mut self.rng
    }

    // ---- transaction lifecycle ------------------------------------------

    /// Begins a transaction (outermost or nested). Returns the log address
    /// the new frame header is written at (a real store the system should
    /// charge).
    ///
    /// An outermost begin after an abort reuses the aborted attempt's
    /// timestamp so old transactions eventually win (LogTM policy).
    pub fn begin(&mut self, kind: NestKind, now: Cycle) -> WordAddr {
        self.checkpoint_counter += 1;
        let saved = if self.in_tx() {
            // Nested begin: save the parent's signature into the new frame
            // header and clear the log filter so the child re-logs
            // everything it writes (§3.2).
            self.filter.clear();
            Some(self.sig.save())
        } else {
            self.stamp = Some(match self.preserved_stamp.take() {
                Some(s) => s,
                None => TxStamp::new(now, self.thread_id),
            });
            None
        };
        self.log.push_frame(kind, self.checkpoint_counter, saved)
    }

    /// Records a committed memory access in the signatures. No-op inside
    /// escape actions or outside transactions.
    pub fn record_access(&mut self, op: SigOp, block: BlockAddr) {
        self.spared_stalls = 0; // a completed access is progress
        if self.in_tx() && !self.in_escape() {
            self.sig.insert(op, block.as_u64());
        }
    }

    /// Decides whether a transactional store to `block` must write an undo
    /// record. On a log-filter miss, reads the old contents through
    /// `read_old` and appends the record, returning the log address to
    /// charge a store to. Inside escape actions (or outside transactions)
    /// nothing is logged.
    pub fn log_store_if_needed(
        &mut self,
        block: BlockAddr,
        read_old: impl FnOnce() -> [u64; WORDS_PER_BLOCK as usize],
    ) -> Option<WordAddr> {
        if !self.in_tx() || self.in_escape() {
            return None;
        }
        if self.filter.note_logged(block) {
            self.stats.log_writes += 1;
            Some(self.log.append_undo(block.first_word(), read_old()))
        } else {
            self.stats.log_writes_suppressed += 1;
            None
        }
    }

    /// Commits the innermost transaction. Returns `(outermost, cycles)`.
    ///
    /// * Closed inner commit merges the frame into the parent (discarding
    ///   the header).
    /// * Open inner commit restores the parent's signature from the header,
    ///   releasing isolation on blocks only the child accessed, and discards
    ///   the child's undo records (its writes are permanent).
    /// * Outermost commit clears the signature and resets the log pointer —
    ///   the paper's fast local commit.
    ///
    /// # Panics
    ///
    /// Panics if no transaction is active.
    pub fn commit(&mut self, config: &TmConfig, _now: Cycle) -> (bool, Cycle) {
        assert!(self.in_tx(), "commit outside a transaction");
        if self.depth() > 1 {
            let kind = self.log.innermost().expect("active frame").header.kind;
            match kind {
                NestKind::Closed => {
                    let _header = self.log.merge_into_parent();
                    self.filter.clear();
                    (false, config.commit_cycles)
                }
                NestKind::Open => {
                    let frame = self.log.pop_frame().expect("active frame");
                    let saved = frame
                        .header
                        .saved_parent_sig
                        .expect("nested frame has saved parent signature");
                    self.sig.restore(&saved);
                    self.filter.clear();
                    (false, config.commit_cycles + config.sig_save_cycles)
                }
            }
        } else {
            let sizes = TxSetSizes {
                read_blocks: self.sig.exact_read_set_size() as u64,
                write_blocks: self.sig.exact_write_set_size() as u64,
            };
            self.stats.record_commit_sets(sizes);
            self.stats.log_high_water_words = self
                .stats
                .log_high_water_words
                .max(self.log.high_water_words());
            self.stats.commits += 1;
            self.history.on_commit();
            self.log.commit_outer();
            self.sig.clear();
            self.filter.clear();
            self.stamp = None;
            self.preserved_stamp = None;
            self.possible_cycle = false;
            self.abort_attempts = 0;
            (true, config.commit_cycles)
        }
    }

    /// Partially aborts just the innermost (nested) frame: unrolls its undo
    /// records through `restore` and reinstates the parent's signature.
    /// Returns the handler cycles.
    ///
    /// # Panics
    ///
    /// Panics unless nesting depth is at least 2 (use [`Self::abort_all`]
    /// for the outermost transaction).
    pub fn abort_innermost(
        &mut self,
        config: &TmConfig,
        restore: &mut dyn FnMut(WordAddr, &[u64; 8]),
    ) -> Cycle {
        assert!(self.depth() >= 2, "partial abort requires a nested frame");
        let frame = self.log.pop_frame().expect("nested frame");
        unroll_frame(&frame, |base, old| restore(base, old));
        let saved = frame
            .header
            .saved_parent_sig
            .expect("nested frame has saved parent signature");
        self.sig.restore(&saved);
        self.filter.clear();
        self.stats.partial_aborts += 1;
        config.abort_trap_cycles
            + Cycle(frame.undo.len() as u64 * config.abort_per_block_cycles.as_u64())
            + config.sig_save_cycles
    }

    /// Aborts the whole transaction: walks every live frame's undo records
    /// LIFO (innermost first), restores memory through `restore`, clears
    /// the signature, and computes the backoff for the retry.
    ///
    /// # Panics
    ///
    /// Panics if no transaction is active.
    pub fn abort_all(
        &mut self,
        config: &TmConfig,
        now: Cycle,
        restore: &mut dyn FnMut(WordAddr, &[u64; 8]),
    ) -> AbortCosts {
        assert!(self.in_tx(), "abort outside a transaction");
        let mut restored = 0u64;
        // Test-only fault injection (see `TmConfig::fault_skip_one_undo`):
        // drop the restore of the most recent undo record on the floor.
        let mut fault_pending = config.fault_skip_one_undo;
        while let Some(frame) = self.log.pop_frame() {
            unroll_frame(&frame, |base, old| {
                if std::mem::take(&mut fault_pending) {
                    return;
                }
                restored += 1;
                restore(base, old);
            });
        }
        let stamp = self.stamp.take().expect("active tx has a stamp");
        self.preserved_stamp = Some(stamp);
        self.sig.clear();
        self.filter.clear();
        self.possible_cycle = false;
        self.stats.aborts += 1;
        let wasted = now.saturating_sub(stamp.begin).as_u64();
        self.stats.wasted_cycles += wasted;
        self.history.on_abort(wasted);
        self.abort_attempts += 1;
        let needs_summary_update = std::mem::take(&mut self.in_summary);
        let backoff = backoff_cycles(
            config.backoff_kind,
            &mut self.rng,
            config.backoff_base_cycles,
            config.backoff_cap_shift,
            self.abort_attempts - 1,
        );
        AbortCosts {
            handler_cycles: config.abort_trap_cycles
                + Cycle(restored * config.abort_per_block_cycles.as_u64()),
            restored_blocks: restored,
            backoff,
            needs_summary_update,
        }
    }

    // ---- virtualization hooks (used by the OS model) ---------------------

    /// Clears the log filter (always safe; done at context switch, §2).
    pub fn clear_filter(&mut self) {
        self.filter.clear();
    }

    /// Queues a page remap to apply before this (descheduled) thread
    /// resumes (§4.2).
    pub fn queue_page_remap(&mut self, old: PageId, new: PageId) {
        self.pending_remaps.push((old, new));
    }

    /// Applies queued page remaps to the signatures; called at reschedule.
    pub fn apply_pending_remaps(&mut self) {
        let remaps = std::mem::take(&mut self.pending_remaps);
        for (old, new) in remaps {
            self.remap_page_now(old, new);
        }
    }

    /// Immediately rewrites the signatures for a page relocation (active
    /// threads are interrupted and updated in place, §4.2).
    pub fn remap_page_now(&mut self, old: PageId, new: PageId) {
        self.sig.rehash_page(
            old.first_block().as_u64(),
            new.first_block().as_u64(),
            ltse_mem::BLOCKS_PER_PAGE,
        );
    }

    /// Whether `block` may be in this thread's read- or write-set per the
    /// *hardware* signatures (sticky/broadcast decisions).
    pub fn covers_hw(&self, block: BlockAddr) -> bool {
        self.in_tx() && self.sig.in_either_set(block.as_u64())
    }

    /// Whether `block` is exactly in this thread's sets (Result 4 stats).
    pub fn covers_exact(&self, block: BlockAddr) -> bool {
        self.in_tx() && self.sig.conflicts_exactly(SigOp::Write, block.as_u64())
    }

    /// Side-effect-free re-judgement of a conflict this thread signalled:
    /// `Some(true)` for true sharing (the exact shadow sets agree),
    /// `Some(false)` for pure signature aliasing, `None` when the
    /// signatures report no conflict at all. Unlike [`Self::check_conflict`]
    /// this never bumps the statistics cells, so the observability layer
    /// can classify individual NACK events after the fact without
    /// double-counting the Table 3 accounting.
    pub fn judge_conflict(&self, op: SigOp, block: BlockAddr) -> Option<bool> {
        if !self.in_tx() {
            return None;
        }
        match self.sig.classify(op, block.as_u64()) {
            ConflictVerdict::None => None,
            ConflictVerdict::True => Some(true),
            ConflictVerdict::FalsePositive => Some(false),
        }
    }

    /// CONFLICT(op, block) against this thread's signatures, classifying
    /// the answer for false-positive accounting. Returns the hardware
    /// decision.
    pub fn check_conflict(&self, op: SigOp, block: BlockAddr) -> bool {
        if !self.in_tx() {
            return false;
        }
        let verdict = self.sig.classify(op, block.as_u64());
        match verdict {
            ConflictVerdict::None => false,
            ConflictVerdict::True => {
                self.stats
                    .true_conflicts_signalled
                    .set(self.stats.true_conflicts_signalled.get() + 1);
                true
            }
            ConflictVerdict::FalsePositive => {
                self.stats
                    .false_conflicts_signalled
                    .set(self.stats.false_conflicts_signalled.get() + 1);
                true
            }
        }
    }

    /// CONFLICT(op, block) against the installed summary signature (checked
    /// on *every* memory reference, §4.1). Returns whether a trap is
    /// required.
    pub fn check_summary(&self, op: SigOp, block: BlockAddr) -> bool {
        let Some(summary) = &self.summary else {
            return false;
        };
        match summary.classify(op, block.as_u64()) {
            ConflictVerdict::None => false,
            ConflictVerdict::True => {
                self.stats
                    .summary_true_conflicts
                    .set(self.stats.summary_true_conflicts.get() + 1);
                true
            }
            ConflictVerdict::FalsePositive => {
                self.stats
                    .summary_false_conflicts
                    .set(self.stats.summary_false_conflicts.get() + 1);
                true
            }
        }
    }

    /// The signature kind this thread was configured with.
    pub fn signature_kind(&self) -> SignatureKind {
        self.sig.kind()
    }

    /// Invariant probe for the correctness tooling: after an outermost
    /// commit or a full abort this thread must hold no residual
    /// transactional state — undo log fully unwound with the log pointer
    /// back at base, signatures clear, timestamp released, no deadlock
    /// flag, and its read/write sets withdrawn from any summary signature.
    /// Returns a description of every violated invariant (empty = clean).
    pub fn post_outer_violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        let t = self.thread_id;
        if !self.log.is_empty() {
            v.push(format!(
                "thread {t}: undo log still holds {} frame(s) after outermost commit/abort",
                self.log.depth()
            ));
        }
        if !self.log.ptr_is_reset() {
            v.push(format!(
                "thread {t}: log pointer not reset to base (still at {})",
                self.log.log_ptr().as_u64()
            ));
        }
        if !self.sig.is_empty() {
            v.push(format!(
                "thread {t}: read/write signature not cleared after outermost commit/abort"
            ));
        }
        if self.stamp.is_some() {
            v.push(format!("thread {t}: transaction timestamp still installed"));
        }
        if self.possible_cycle {
            v.push(format!("thread {t}: possible_cycle flag survived the transaction"));
        }
        if self.in_summary {
            v.push(format!(
                "thread {t}: still folded into the process summary signature"
            ));
        }
        v
    }

    /// Zeroes the statistics while leaving all transactional and cache-
    /// relevant state untouched — the warm-up boundary of a steady-state
    /// measurement (the paper measures "representative execution samples",
    /// not cold start).
    pub fn reset_stats(&mut self) {
        self.stats = TmStats::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TmConfig {
        TmConfig::default_with(SignatureKind::paper_bs_2kb())
    }

    fn state(cfg: &TmConfig) -> ThreadTmState {
        ThreadTmState::new(0, Asid(0), cfg, WordAddr(1 << 40), 42)
    }

    #[test]
    fn begin_commit_lifecycle() {
        let c = cfg();
        let mut t = state(&c);
        assert_eq!(t.phase(), TxPhase::Idle);
        t.begin(NestKind::Closed, Cycle(10));
        assert_eq!(t.phase(), TxPhase::Active);
        assert_eq!(t.stamp().unwrap().begin, Cycle(10));
        t.record_access(SigOp::Write, BlockAddr(5));
        let logged = t.log_store_if_needed(BlockAddr(5), || [1; 8]);
        assert!(logged.is_some());
        let (outer, _) = t.commit(&c, Cycle(20));
        assert!(outer);
        assert!(!t.in_tx());
        assert_eq!(t.stats.commits, 1);
        assert_eq!(t.stats.read_set.count(), 1);
        assert_eq!(t.stats.write_set.max(), Some(1));
    }

    #[test]
    fn filter_suppresses_second_log() {
        let c = cfg();
        let mut t = state(&c);
        t.begin(NestKind::Closed, Cycle(0));
        assert!(t.log_store_if_needed(BlockAddr(7), || [0; 8]).is_some());
        assert!(t.log_store_if_needed(BlockAddr(7), || [0; 8]).is_none());
        assert_eq!(t.stats.log_writes, 1);
        assert_eq!(t.stats.log_writes_suppressed, 1);
    }

    #[test]
    fn escape_actions_bypass_tm() {
        let c = cfg();
        let mut t = state(&c);
        t.begin(NestKind::Closed, Cycle(0));
        t.escape_begin();
        t.record_access(SigOp::Write, BlockAddr(9));
        assert!(t.log_store_if_needed(BlockAddr(9), || [0; 8]).is_none());
        assert!(!t.check_conflict(SigOp::Read, BlockAddr(9)));
        t.escape_end();
        t.record_access(SigOp::Write, BlockAddr(9));
        assert!(t.check_conflict(SigOp::Read, BlockAddr(9)));
    }

    #[test]
    fn abort_restores_lifo_and_backs_off() {
        let c = cfg();
        let mut t = state(&c);
        t.begin(NestKind::Closed, Cycle(5));
        t.record_access(SigOp::Write, BlockAddr(1));
        t.log_store_if_needed(BlockAddr(1), || [11; 8]);
        t.record_access(SigOp::Write, BlockAddr(2));
        t.log_store_if_needed(BlockAddr(2), || [22; 8]);
        let mut restored = Vec::new();
        let costs = t.abort_all(&c, Cycle(100), &mut |base, old| {
            restored.push((base.0, old[0]));
        });
        assert_eq!(restored, vec![(16, 22), (8, 11)], "LIFO");
        assert_eq!(costs.restored_blocks, 2);
        assert!(costs.handler_cycles >= c.abort_trap_cycles);
        assert!(!t.in_tx());
        assert_eq!(t.stats.aborts, 1);
        assert!(t.stats.wasted_cycles >= 95);
        // Signature released.
        assert!(!t.check_conflict(SigOp::Read, BlockAddr(1)));
    }

    #[test]
    fn retry_preserves_timestamp() {
        let c = cfg();
        let mut t = state(&c);
        t.begin(NestKind::Closed, Cycle(5));
        t.abort_all(&c, Cycle(50), &mut |_, _| {});
        t.begin(NestKind::Closed, Cycle(200));
        assert_eq!(
            t.stamp().unwrap().begin,
            Cycle(5),
            "retry keeps the original timestamp so old transactions win"
        );
        t.commit(&c, Cycle(300));
        t.begin(NestKind::Closed, Cycle(400));
        assert_eq!(t.stamp().unwrap().begin, Cycle(400), "fresh after commit");
    }

    #[test]
    fn closed_nesting_merges_on_commit() {
        let c = cfg();
        let mut t = state(&c);
        t.begin(NestKind::Closed, Cycle(0));
        t.log_store_if_needed(BlockAddr(1), || [1; 8]);
        t.begin(NestKind::Closed, Cycle(1));
        assert_eq!(t.depth(), 2);
        t.log_store_if_needed(BlockAddr(2), || [2; 8]);
        let (outer, _) = t.commit(&c, Cycle(2));
        assert!(!outer);
        assert_eq!(t.depth(), 1);
        assert_eq!(t.log().total_undo_records(), 2, "child undo kept");
        // Abort of the parent must now undo BOTH blocks.
        let mut restored = Vec::new();
        t.abort_all(&c, Cycle(3), &mut |b, _| restored.push(b.0 / 8));
        assert_eq!(restored, vec![2, 1]);
    }

    #[test]
    fn open_commit_releases_child_isolation() {
        let c = cfg();
        let mut t = state(&c);
        t.begin(NestKind::Closed, Cycle(0));
        t.record_access(SigOp::Write, BlockAddr(10));
        t.begin(NestKind::Open, Cycle(1));
        t.record_access(SigOp::Write, BlockAddr(20));
        assert!(t.check_conflict(SigOp::Read, BlockAddr(20)));
        let (outer, _) = t.commit(&c, Cycle(2));
        assert!(!outer);
        // Child-only block released; parent's retained.
        assert!(!t.check_conflict(SigOp::Read, BlockAddr(20)));
        assert!(t.check_conflict(SigOp::Read, BlockAddr(10)));
        // Open-committed writes are permanent: parent abort restores only
        // the parent's own footprint.
        let mut restored = Vec::new();
        t.abort_all(&c, Cycle(3), &mut |b, _| restored.push(b.0 / 8));
        assert!(restored.is_empty(), "open child's undo was discarded");
    }

    #[test]
    fn partial_abort_unrolls_child_only() {
        let c = cfg();
        let mut t = state(&c);
        t.begin(NestKind::Closed, Cycle(0));
        t.record_access(SigOp::Write, BlockAddr(1));
        t.log_store_if_needed(BlockAddr(1), || [1; 8]);
        t.begin(NestKind::Closed, Cycle(1));
        t.record_access(SigOp::Write, BlockAddr(2));
        t.log_store_if_needed(BlockAddr(2), || [2; 8]);

        let mut restored = Vec::new();
        t.abort_innermost(&c, &mut |b, _| restored.push(b.0 / 8));
        assert_eq!(restored, vec![2], "only the child frame unrolled");
        assert_eq!(t.depth(), 1);
        assert_eq!(t.stats.partial_aborts, 1);
        // Parent signature restored: block 2 no longer isolated, block 1 is.
        assert!(!t.check_conflict(SigOp::Read, BlockAddr(2)));
        assert!(t.check_conflict(SigOp::Read, BlockAddr(1)));
        assert!(t.in_tx());
    }

    #[test]
    fn nested_begin_clears_filter() {
        let c = cfg();
        let mut t = state(&c);
        t.begin(NestKind::Closed, Cycle(0));
        t.log_store_if_needed(BlockAddr(3), || [0; 8]);
        t.begin(NestKind::Closed, Cycle(1));
        // Child must re-log block 3 (its own frame needs the undo record).
        assert!(t.log_store_if_needed(BlockAddr(3), || [0; 8]).is_some());
    }

    #[test]
    fn summary_checked_and_classified() {
        let c = cfg();
        let mut t = state(&c);
        // Build a summary containing block 7's write.
        let mut summary = ShadowedRwSignature::new(&c.signature);
        summary.insert(SigOp::Write, 7);
        t.install_summary(Some(summary));
        assert!(t.check_summary(SigOp::Read, BlockAddr(7)));
        assert_eq!(t.stats.summary_true_conflicts.get(), 1);
        assert!(!t.check_summary(SigOp::Read, BlockAddr(8)));
        t.install_summary(None);
        assert!(!t.check_summary(SigOp::Read, BlockAddr(7)));
    }

    #[test]
    fn conflict_classification_counts_false_positives() {
        let c = TmConfig::default_with(SignatureKind::paper_bs_64());
        let mut t = state(&c);
        t.begin(NestKind::Closed, Cycle(0));
        t.record_access(SigOp::Write, BlockAddr(5));
        assert!(t.check_conflict(SigOp::Read, BlockAddr(5)));
        assert!(t.check_conflict(SigOp::Read, BlockAddr(5 + 64)), "alias");
        assert_eq!(t.stats.true_conflicts_signalled.get(), 1);
        assert_eq!(t.stats.false_conflicts_signalled.get(), 1);
        assert_eq!(t.stats.false_positive_pct(), Some(50.0));
    }

    #[test]
    fn page_remap_immediate_and_queued() {
        let c = cfg();
        let mut t = state(&c);
        t.begin(NestKind::Closed, Cycle(0));
        let old = PageId(2);
        let new = PageId(9);
        let block_in_old = old.block(5);
        t.record_access(SigOp::Write, block_in_old);
        t.remap_page_now(old, new);
        assert!(t.check_conflict(SigOp::Read, new.block(5)), "new covered");

        // Queued variant applies at reschedule time.
        let old2 = PageId(30);
        let new2 = PageId(31);
        t.record_access(SigOp::Write, old2.block(1));
        t.queue_page_remap(old2, new2);
        assert!(!t.check_conflict(SigOp::Write, new2.block(1)));
        t.apply_pending_remaps();
        assert!(t.check_conflict(SigOp::Write, new2.block(1)));
    }

    #[test]
    fn covers_hw_vs_exact() {
        let c = TmConfig::default_with(SignatureKind::paper_bs_64());
        let mut t = state(&c);
        t.begin(NestKind::Closed, Cycle(0));
        t.record_access(SigOp::Read, BlockAddr(3));
        assert!(t.covers_hw(BlockAddr(3)));
        assert!(t.covers_hw(BlockAddr(3 + 64)), "hashed view aliases");
        assert!(t.covers_exact(BlockAddr(3)));
        assert!(!t.covers_exact(BlockAddr(3 + 64)), "exact view does not");
    }

    #[test]
    fn fault_injection_skips_most_recent_undo_only() {
        let mut c = cfg();
        c.fault_skip_one_undo = true;
        let mut t = state(&c);
        t.begin(NestKind::Closed, Cycle(0));
        t.log_store_if_needed(BlockAddr(1), || [11; 8]);
        t.log_store_if_needed(BlockAddr(2), || [22; 8]);
        let mut restored = Vec::new();
        let costs = t.abort_all(&c, Cycle(50), &mut |base, old| {
            restored.push((base.0, old[0]));
        });
        // The most recent record (block 2) was silently dropped; block 1
        // still restores. This is the seeded bug the schedule explorer's
        // differential oracle must catch via memory divergence — note the
        // local invariant probe sees nothing wrong (the log *was* popped).
        assert_eq!(restored, vec![(8, 11)]);
        assert_eq!(costs.restored_blocks, 1);
        assert!(t.post_outer_violations().is_empty());
    }

    #[test]
    fn post_outer_probe_is_clean_after_commit_and_abort() {
        let c = cfg();
        let mut t = state(&c);
        t.begin(NestKind::Closed, Cycle(0));
        t.record_access(SigOp::Write, BlockAddr(4));
        t.log_store_if_needed(BlockAddr(4), || [7; 8]);
        assert!(
            !t.post_outer_violations().is_empty(),
            "mid-transaction state is (correctly) flagged as residual"
        );
        t.commit(&c, Cycle(10));
        assert_eq!(t.post_outer_violations(), Vec::<String>::new());

        t.begin(NestKind::Closed, Cycle(20));
        t.record_access(SigOp::Write, BlockAddr(5));
        t.log_store_if_needed(BlockAddr(5), || [9; 8]);
        t.abort_all(&c, Cycle(30), &mut |_, _| {});
        assert_eq!(t.post_outer_violations(), Vec::<String>::new());
    }

    #[test]
    #[should_panic(expected = "commit outside a transaction")]
    fn commit_idle_panics() {
        let c = cfg();
        let mut t = state(&c);
        t.commit(&c, Cycle(0));
    }
}
