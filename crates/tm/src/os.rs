//! The operating-system model: thread suspension/migration with summary
//! signatures (paper §4.1) and transactional paging (§4.2).
//!
//! The OS maintains, per process, the contribution of every
//! descheduled-mid-transaction thread to the process **summary signature**,
//! using counting signatures (the paper's footnote 1, after VTM's XF) so
//! removing one thread's contribution never clobbers bits owed to another.
//! On every deschedule/commit it pushes refreshed summaries to all thread
//! contexts running that process; each context's summary excludes its own
//! thread's contribution ("to prevent conflicts with its own read- and
//! write-sets").

use std::collections::HashMap;

use ltse_mem::{Asid, CtxId, PageId};
use ltse_sig::{
    CountingSignature, PerfectSignature, ReadWriteSignature, SavedSignature, ShadowedRwSignature,
    Signature, SignatureKind,
};
use ltse_sim::Cycle;

use crate::ctx::ThreadTmState;
use crate::unit::TmUnit;

/// Fixed OS-operation costs (cycles), chosen to make context switches
/// "relatively high" cost as the paper says, so preemption-deferral has
/// something to save.
const DESCHEDULE_CYCLES: u64 = 400;
const RESCHEDULE_CYCLES: u64 = 400;
const SUMMARY_INSTALL_CYCLES_PER_CTX: u64 = 150;
const PAGE_SIGWALK_CYCLES: u64 = 250;

/// One descheduled thread's saved signature contribution.
#[derive(Debug, Clone)]
struct Contribution {
    read_save: SavedSignature,
    write_save: SavedSignature,
    exact_read: Vec<u64>,
    exact_write: Vec<u64>,
}

/// Per-process OS bookkeeping.
#[derive(Debug)]
struct Process {
    /// Counting filters for hashed signature kinds (`None` for `Perfect`).
    counting_read: Option<CountingSignature>,
    counting_write: Option<CountingSignature>,
    /// Contributions of threads descheduled mid-transaction; persist until
    /// the thread's transaction commits (even after reschedule, §4.1).
    contributions: HashMap<u32, Contribution>,
    /// Parked thread states, by thread id.
    parked: HashMap<u32, ThreadTmState>,
}

impl Process {
    fn new(kind: &SignatureKind) -> Self {
        let counting = |k: &SignatureKind| match k {
            SignatureKind::Perfect => None,
            _ => Some(CountingSignature::new(kind.build().storage_bits().max(1))),
        };
        Process {
            counting_read: counting(kind),
            counting_write: counting(kind),
            contributions: HashMap::new(),
            parked: HashMap::new(),
        }
    }
}

/// OS statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OsStats {
    /// Threads descheduled (context switched out).
    pub deschedules: u64,
    /// Threads descheduled while inside a transaction.
    pub tx_deschedules: u64,
    /// Threads (re)scheduled onto a context.
    pub reschedules: u64,
    /// Summary signatures pushed to hardware contexts.
    pub summary_installs: u64,
    /// Summary recomputations triggered by transaction commits.
    pub commit_recomputes: u64,
    /// Pages relocated while transactional state referenced them.
    pub pages_relocated: u64,
}

/// The OS model. One instance manages all processes of a run.
#[derive(Debug)]
pub struct OsModel {
    kind: SignatureKind,
    processes: HashMap<Asid, Process>,
    /// Statistics.
    pub stats: OsStats,
}

impl OsModel {
    /// Creates an OS model for systems configured with `kind` signatures.
    pub fn new(kind: SignatureKind) -> Self {
        OsModel {
            kind,
            processes: HashMap::new(),
            stats: OsStats::default(),
        }
    }

    fn process(&mut self, asid: Asid) -> &mut Process {
        let kind = self.kind;
        self.processes
            .entry(asid)
            .or_insert_with(|| Process::new(&kind))
    }

    /// Parks a fresh (idle) thread state without it ever having run — used
    /// when more threads are created than hardware contexts exist.
    ///
    /// # Panics
    ///
    /// Panics if the thread is mid-transaction (use
    /// [`OsModel::deschedule`] for that).
    pub fn park_thread(&mut self, state: ThreadTmState) {
        assert!(
            !state.in_tx(),
            "park_thread is for idle threads; deschedule running ones"
        );
        let asid = state.asid;
        let id = state.thread_id;
        self.process(asid).parked.insert(id, state);
    }

    /// Thread ids currently parked (descheduled) for `asid`.
    pub fn parked_threads(&self, asid: Asid) -> Vec<u32> {
        self.processes
            .get(&asid)
            .map(|p| {
                let mut v: Vec<u32> = p.parked.keys().copied().collect();
                v.sort_unstable();
                v
            })
            .unwrap_or_default()
    }

    /// Descheduls the thread on `ctx`: saves its signatures (into the
    /// conceptual log frame), merges them into the process summary, parks
    /// the state, and pushes refreshed summaries to every context still
    /// running the process. Returns the cycle cost to charge.
    ///
    /// # Panics
    ///
    /// Panics if no thread is installed on `ctx`.
    pub fn deschedule(&mut self, tm: &mut TmUnit, ctx: CtxId) -> Cycle {
        let mut state = tm
            .take_thread(ctx)
            .unwrap_or_else(|| panic!("no thread on ctx {ctx} to deschedule"));
        self.stats.deschedules += 1;
        let asid = state.asid;
        let thread_id = state.thread_id;
        let mut cost = Cycle(DESCHEDULE_CYCLES);

        if state.in_tx() {
            self.stats.tx_deschedules += 1;
            state.in_summary = true;
            let (read_save, write_save) = state.sig().hw().save();
            let contribution = Contribution {
                exact_read: state.sig().exact_read_blocks(),
                exact_write: state.sig().exact_write_blocks(),
                read_save,
                write_save,
            };
            let proc = self.process(asid);
            if let (Some(cr), Some(cw)) = (&mut proc.counting_read, &mut proc.counting_write) {
                cr.add(&contribution.read_save);
                cw.add(&contribution.write_save);
            }
            proc.contributions.insert(thread_id, contribution);
            self.process(asid).parked.insert(thread_id, state);
            cost += self.refresh_summaries(tm, asid);
        } else {
            self.process(asid).parked.insert(thread_id, state);
        }
        cost
    }

    /// Schedules parked `thread_id` onto idle context `ctx` (same or a
    /// different core — migration is the same operation). The thread's own
    /// contribution stays in the process summary until it commits; the
    /// summary installed on `ctx` excludes it.
    ///
    /// # Panics
    ///
    /// Panics if the thread is not parked or `ctx` is occupied.
    pub fn reschedule(&mut self, tm: &mut TmUnit, asid: Asid, thread_id: u32, ctx: CtxId) -> Cycle {
        let state = self
            .process(asid)
            .parked
            .remove(&thread_id)
            .unwrap_or_else(|| panic!("thread {thread_id} is not parked"));
        self.stats.reschedules += 1;
        tm.install_thread(ctx, state);
        let summary = self.summary_for(asid, Some(thread_id));
        if let Some(t) = tm.thread_mut(ctx) {
            t.install_summary(summary);
        }
        self.stats.summary_installs += 1;
        Cycle(RESCHEDULE_CYCLES + SUMMARY_INSTALL_CYCLES_PER_CTX)
    }

    /// Called when a thread's outermost transaction aborts and it had been
    /// context-switched during the transaction: the aborted transaction's
    /// isolation is released, so its summary contribution must go too.
    pub fn on_outer_abort(&mut self, tm: &mut TmUnit, asid: Asid, thread_id: u32) -> Cycle {
        self.on_outer_commit(tm, asid, thread_id)
    }

    /// Finds a *parked* thread whose exact saved read/write-sets conflict
    /// with an access of kind `op` to `block` — the thread a summary-
    /// signature trap handler would have to deal with.
    pub fn parked_tx_conflictor(
        &self,
        asid: Asid,
        op: ltse_sig::SigOp,
        block: u64,
    ) -> Option<u32> {
        let proc = self.processes.get(&asid)?;
        proc.contributions
            .iter()
            .filter(|(id, _)| proc.parked.contains_key(id))
            .find(|(_, c)| match op {
                ltse_sig::SigOp::Read => c.exact_write.contains(&block),
                ltse_sig::SigOp::Write => {
                    c.exact_read.contains(&block) || c.exact_write.contains(&block)
                }
            })
            .map(|(id, _)| *id)
    }

    /// Aborts a *descheduled* transaction in software — the escape valve of
    /// the paper's §4.1 conflict handler ("stalling is not sufficient to
    /// resolve a conflict with a descheduled thread"). The handler (running
    /// on the trapping thread's core) walks the parked thread's log; the
    /// caller applies the undo records to memory via `restore`. The parked
    /// thread's contribution leaves the process summary and refreshed
    /// summaries are pushed.
    ///
    /// Returns the OS cycle cost.
    ///
    /// # Panics
    ///
    /// Panics if the thread is not parked mid-transaction.
    pub fn abort_parked(
        &mut self,
        tm: &mut TmUnit,
        asid: Asid,
        thread_id: u32,
        now: Cycle,
        restore: &mut dyn FnMut(ltse_mem::WordAddr, &[u64; 8]),
    ) -> Cycle {
        let config = *tm.config();
        let proc = self.process(asid);
        let state = proc
            .parked
            .get_mut(&thread_id)
            .unwrap_or_else(|| panic!("thread {thread_id} is not parked"));
        assert!(state.in_tx(), "parked thread {thread_id} has no transaction");
        let costs = state.abort_all(&config, now, restore);
        let mut cost = costs.handler_cycles;
        if costs.needs_summary_update {
            cost += self.on_outer_abort(tm, asid, thread_id);
        }
        cost
    }

    /// Called when a thread's outermost transaction commits and it had been
    /// context-switched during the transaction: removes its contribution
    /// and pushes updated summaries (paper: "On transaction commit,
    /// LogTM-SE traps to the OS, which pushes an updated summary signature
    /// to active threads").
    pub fn on_outer_commit(&mut self, tm: &mut TmUnit, asid: Asid, thread_id: u32) -> Cycle {
        let proc = self.process(asid);
        if let Some(contribution) = proc.contributions.remove(&thread_id) {
            if let (Some(cr), Some(cw)) = (&mut proc.counting_read, &mut proc.counting_write) {
                cr.remove(&contribution.read_save);
                cw.remove(&contribution.write_save);
            }
            self.stats.commit_recomputes += 1;
            return self.refresh_summaries(tm, asid);
        }
        Cycle::ZERO
    }

    /// Relocates physical page `old` to `new` for process `asid` while
    /// transactions may reference it (paper §4.2): interrupts every running
    /// thread of the process and rewrites its signatures; queues the remap
    /// for parked threads (applied before they resume); rebuilds the
    /// summary structures so saved contributions cover the new address too.
    pub fn relocate_page(
        &mut self,
        tm: &mut TmUnit,
        asid: Asid,
        old: PageId,
        new: PageId,
    ) -> Cycle {
        self.stats.pages_relocated += 1;
        let mut cost = Cycle(0);

        // Running threads: interrupt, walk, and update in place.
        for ctx in 0..tm.n_ctxs() {
            let Some(t) = tm.thread_mut(ctx) else { continue };
            if t.asid != asid {
                continue;
            }
            t.remap_page_now(old, new);
            cost += Cycle(PAGE_SIGWALK_CYCLES);
        }

        // Parked threads: queue a signal (applied at reschedule).
        let kind = self.kind;
        let proc = self.process(asid);
        for t in proc.parked.values_mut() {
            t.queue_page_remap(old, new);
        }

        // Rebuild contributions conservatively: each saved signature gets
        // the new page's blocks inserted wherever the old page's may be.
        let mut rebuilt = false;
        for contribution in proc.contributions.values_mut() {
            let mut tmp = ReadWriteSignature::from_parts(&kind, kind.build(), kind.build());
            tmp.restore(&(contribution.read_save.clone(), contribution.write_save.clone()));
            tmp.rehash_page(
                old.first_block().as_u64(),
                new.first_block().as_u64(),
                ltse_mem::BLOCKS_PER_PAGE,
            );
            let (r, w) = tmp.save();
            contribution.read_save = r;
            contribution.write_save = w;
            let remap_exact = |v: &mut Vec<u64>| {
                let old_base = old.first_block().as_u64();
                let new_base = new.first_block().as_u64();
                let extra: Vec<u64> = v
                    .iter()
                    .filter(|&&b| b >= old_base && b < old_base + ltse_mem::BLOCKS_PER_PAGE)
                    .map(|&b| new_base + (b - old_base))
                    .collect();
                v.extend(extra);
            };
            remap_exact(&mut contribution.exact_read);
            remap_exact(&mut contribution.exact_write);
            rebuilt = true;
        }
        if rebuilt {
            // Counting filters no longer match the rewritten saves; rebuild
            // them from scratch.
            if proc.counting_read.is_some() {
                let bits = kind.build().storage_bits().max(1);
                let mut cr = CountingSignature::new(bits);
                let mut cw = CountingSignature::new(bits);
                for c in proc.contributions.values() {
                    cr.add(&c.read_save);
                    cw.add(&c.write_save);
                }
                proc.counting_read = Some(cr);
                proc.counting_write = Some(cw);
            }
            cost += self.refresh_summaries(tm, asid);
        }
        cost
    }

    /// Builds the summary signature for a context running `exclude_thread`
    /// of process `asid` — the union of all *other* contributions — or
    /// `None` when no contribution remains.
    fn summary_for(&mut self, asid: Asid, exclude_thread: Option<u32>) -> Option<ShadowedRwSignature> {
        let kind = self.kind;
        let proc = self.process(asid);
        let relevant: Vec<&Contribution> = proc
            .contributions
            .iter()
            .filter(|(id, _)| Some(**id) != exclude_thread)
            .map(|(_, c)| c)
            .collect();
        if relevant.is_empty() {
            return None;
        }

        let (read_hw, write_hw): (Box<dyn Signature>, Box<dyn Signature>) =
            match (&proc.counting_read, &proc.counting_write) {
                (Some(cr), Some(cw)) => {
                    // Counting structures cover ALL contributions; clone and
                    // subtract the excluded thread's.
                    let mut cr = cr.clone();
                    let mut cw = cw.clone();
                    if let Some(ex) = exclude_thread {
                        if let Some(c) = proc.contributions.get(&ex) {
                            cr.remove(&c.read_save);
                            cw.remove(&c.write_save);
                        }
                    }
                    (cr.materialize(&kind), cw.materialize(&kind))
                }
                _ => {
                    // Perfect signatures: exact union of the relevant sets.
                    let mut r = PerfectSignature::new();
                    let mut w = PerfectSignature::new();
                    for c in &relevant {
                        for &b in &c.exact_read {
                            r.insert(b);
                        }
                        for &b in &c.exact_write {
                            w.insert(b);
                        }
                    }
                    (Box::new(r), Box::new(w))
                }
            };

        let mut exact_read = PerfectSignature::new();
        let mut exact_write = PerfectSignature::new();
        for c in &relevant {
            for &b in &c.exact_read {
                exact_read.insert(b);
            }
            for &b in &c.exact_write {
                exact_write.insert(b);
            }
        }
        Some(ShadowedRwSignature::from_raw(
            ReadWriteSignature::from_parts(&kind, read_hw, write_hw),
            exact_read,
            exact_write,
        ))
    }

    /// Pushes refreshed summaries to every context running `asid`.
    fn refresh_summaries(&mut self, tm: &mut TmUnit, asid: Asid) -> Cycle {
        let mut installs = 0u64;
        for ctx in 0..tm.n_ctxs() {
            let Some(t) = tm.thread(ctx) else { continue };
            if t.asid != asid {
                continue;
            }
            let thread_id = t.thread_id;
            let summary = self.summary_for(asid, Some(thread_id));
            if let Some(t) = tm.thread_mut(ctx) {
                t.install_summary(summary);
                installs += 1;
            }
        }
        self.stats.summary_installs += installs;
        Cycle(installs * SUMMARY_INSTALL_CYCLES_PER_CTX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TmConfig;
    use crate::ctx::NestKind;
    use ltse_mem::{AccessKind, BlockAddr};
    use ltse_sig::SigOp;

    fn setup(kind: SignatureKind) -> (TmUnit, OsModel) {
        let tm = TmUnit::with_smt(TmConfig::default_with(kind), 8, 2);
        let os = OsModel::new(kind);
        (tm, os)
    }

    #[test]
    fn deschedule_installs_summary_on_running_contexts() {
        for kind in [SignatureKind::Perfect, SignatureKind::paper_bs_2kb()] {
            let (mut tm, mut os) = setup(kind);
            tm.begin_tx(0, NestKind::Closed, Cycle(0));
            tm.record_access(0, AccessKind::Store, BlockAddr(42));
            let cost = os.deschedule(&mut tm, 0);
            assert!(cost > Cycle(DESCHEDULE_CYCLES - 1));
            assert!(tm.thread(0).is_none());
            // Every other context of the process sees the summary.
            let t1 = tm.thread(1).unwrap();
            assert!(t1.check_summary(SigOp::Write, BlockAddr(42)), "{kind}");
            assert!(t1.check_summary(SigOp::Read, BlockAddr(42)), "{kind}");
            assert!(!t1.check_summary(SigOp::Read, BlockAddr(43)) || kind != SignatureKind::Perfect);
        }
    }

    #[test]
    fn deschedule_idle_thread_adds_no_summary() {
        let (mut tm, mut os) = setup(SignatureKind::Perfect);
        os.deschedule(&mut tm, 3);
        assert!(tm.thread(1).unwrap().summary().is_none());
        assert_eq!(os.stats.tx_deschedules, 0);
        assert_eq!(os.parked_threads(Asid(0)), vec![3]);
    }

    #[test]
    fn reschedule_excludes_own_contribution() {
        let (mut tm, mut os) = setup(SignatureKind::paper_bs_2kb());
        tm.begin_tx(0, NestKind::Closed, Cycle(0));
        tm.record_access(0, AccessKind::Store, BlockAddr(42));
        os.deschedule(&mut tm, 0);
        // Migrate to context 6 (different core).
        os.deschedule(&mut tm, 6); // park the idle default thread first
        os.reschedule(&mut tm, Asid(0), 0, 6);
        let t = tm.thread(6).unwrap();
        assert_eq!(t.thread_id, 0);
        assert!(t.in_tx(), "transaction survived the migration");
        assert!(
            !t.check_summary(SigOp::Write, BlockAddr(42)),
            "own sets excluded from own summary"
        );
        // Another context still sees the (uncommitted) contribution.
        assert!(tm.thread(1).unwrap().check_summary(SigOp::Write, BlockAddr(42)));
    }

    #[test]
    fn commit_clears_summaries_everywhere() {
        let (mut tm, mut os) = setup(SignatureKind::paper_bs_2kb());
        tm.begin_tx(0, NestKind::Closed, Cycle(0));
        tm.record_access(0, AccessKind::Store, BlockAddr(42));
        os.deschedule(&mut tm, 0);
        os.deschedule(&mut tm, 6);
        os.reschedule(&mut tm, Asid(0), 0, 6);
        let out = tm.commit_tx(6, Cycle(100));
        assert!(out.needs_summary_update);
        os.on_outer_commit(&mut tm, Asid(0), 0);
        for ctx in [1u32, 2, 3, 4, 5, 7] {
            assert!(
                !tm.thread(ctx).unwrap().check_summary(SigOp::Write, BlockAddr(42)),
                "ctx {ctx} summary cleared"
            );
        }
        assert_eq!(os.stats.commit_recomputes, 1);
    }

    #[test]
    fn two_descheduled_threads_remove_one_keeps_other() {
        let (mut tm, mut os) = setup(SignatureKind::paper_bs_2kb());
        tm.begin_tx(0, NestKind::Closed, Cycle(0));
        tm.record_access(0, AccessKind::Store, BlockAddr(100));
        tm.begin_tx(2, NestKind::Closed, Cycle(1));
        tm.record_access(2, AccessKind::Store, BlockAddr(200));
        os.deschedule(&mut tm, 0);
        os.deschedule(&mut tm, 2);
        // Commit thread 0's tx vicariously: reschedule it, commit, notify.
        os.reschedule(&mut tm, Asid(0), 0, 0);
        tm.commit_tx(0, Cycle(50));
        os.on_outer_commit(&mut tm, Asid(0), 0);
        let t1 = tm.thread(1).unwrap();
        assert!(!t1.check_summary(SigOp::Write, BlockAddr(100)), "0 gone");
        assert!(t1.check_summary(SigOp::Write, BlockAddr(200)), "2 remains");
    }

    #[test]
    fn summary_conflict_blocks_other_process_never() {
        let (mut tm, mut os) = setup(SignatureKind::paper_bs_2kb());
        // Thread on ctx 4 belongs to a different process.
        tm.thread_mut(4).unwrap().asid = Asid(9);
        tm.begin_tx(0, NestKind::Closed, Cycle(0));
        tm.record_access(0, AccessKind::Store, BlockAddr(42));
        os.deschedule(&mut tm, 0);
        assert!(
            tm.thread(4).unwrap().summary().is_none(),
            "other process gets no summary"
        );
    }

    #[test]
    fn page_relocation_updates_running_parked_and_summary() {
        let (mut tm, mut os) = setup(SignatureKind::paper_bs_2kb());
        let old = PageId(5);
        let new = PageId(77);
        // Running thread with the page in its write-set.
        tm.begin_tx(1, NestKind::Closed, Cycle(0));
        tm.record_access(1, AccessKind::Store, old.block(3));
        // Parked thread with the page in its read-set.
        tm.begin_tx(2, NestKind::Closed, Cycle(1));
        tm.record_access(2, AccessKind::Load, old.block(7));
        os.deschedule(&mut tm, 2);

        os.relocate_page(&mut tm, Asid(0), old, new);

        // Running thread's signature covers the new physical address.
        assert!(tm.thread(1).unwrap().check_conflict(SigOp::Read, new.block(3)));
        // Summaries (built from the parked thread's save) cover it too.
        assert!(tm
            .thread(3)
            .unwrap()
            .check_summary(SigOp::Write, new.block(7)));
        // Parked thread applies the remap when rescheduled.
        os.deschedule(&mut tm, 7);
        os.reschedule(&mut tm, Asid(0), 2, 7);
        assert!(tm
            .thread(7)
            .unwrap()
            .check_conflict(SigOp::Write, new.block(7)));
        assert_eq!(os.stats.pages_relocated, 1);
    }

    #[test]
    fn parked_conflictor_found_by_exact_sets() {
        let (mut tm, mut os) = setup(SignatureKind::paper_bs_64());
        tm.begin_tx(0, NestKind::Closed, Cycle(0));
        tm.record_access(0, AccessKind::Load, BlockAddr(42));
        os.deschedule(&mut tm, 0);
        // A write to 42 conflicts with the parked read-set…
        assert_eq!(
            os.parked_tx_conflictor(Asid(0), SigOp::Write, 42),
            Some(0)
        );
        // …a read does not (read-read), and aliases (42+64 under BS_64)
        // never match because the lookup uses the exact shadow sets.
        assert_eq!(os.parked_tx_conflictor(Asid(0), SigOp::Read, 42), None);
        assert_eq!(os.parked_tx_conflictor(Asid(0), SigOp::Write, 42 + 64), None);
        // Other processes never match.
        assert_eq!(os.parked_tx_conflictor(Asid(9), SigOp::Write, 42), None);
    }

    #[test]
    fn abort_parked_releases_summary_and_returns_undo() {
        let (mut tm, mut os) = setup(SignatureKind::paper_bs_2kb());
        tm.begin_tx(0, NestKind::Closed, Cycle(0));
        tm.record_access(0, AccessKind::Store, BlockAddr(7));
        tm.log_store_if_needed(0, BlockAddr(7), || [99; 8]);
        os.deschedule(&mut tm, 0);
        assert!(tm.thread(1).unwrap().check_summary(SigOp::Write, BlockAddr(7)));

        let mut restored = Vec::new();
        let cost = os.abort_parked(&mut tm, Asid(0), 0, Cycle(50), &mut |base, old| {
            restored.push((base, old[0]));
        });
        assert!(cost > Cycle(0));
        assert_eq!(restored.len(), 1);
        assert_eq!(restored[0].1, 99, "old contents handed to the caller");
        // Isolation released everywhere.
        assert!(!tm.thread(1).unwrap().check_summary(SigOp::Write, BlockAddr(7)));
        assert_eq!(os.parked_tx_conflictor(Asid(0), SigOp::Write, 7), None);
        // The thread stays parked, idle, and can be rescheduled normally.
        os.deschedule(&mut tm, 3);
        os.reschedule(&mut tm, Asid(0), 0, 3);
        assert!(!tm.thread(3).unwrap().in_tx());
    }

    #[test]
    #[should_panic(expected = "not parked")]
    fn reschedule_unknown_thread_panics() {
        let (mut tm, mut os) = setup(SignatureKind::Perfect);
        os.reschedule(&mut tm, Asid(0), 99, 0);
    }
}
