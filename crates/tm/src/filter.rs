//! The log filter: a small array of recently logged blocks.
//!
//! Paper §2, "Eager Version Management": LogTM reused the in-cache W bit to
//! suppress redundant logging, but that doesn't work with signatures (a
//! false positive in the write signature would skip a *required* log write,
//! making undo impossible). LogTM-SE instead keeps "an array of recently
//! logged blocks for each thread context … Much like a TLB, the array can
//! be fully associative, set associative, or direct mapped … Because the
//! filter contains virtual addresses and is a performance optimization not
//! required for correctness, it is always safe to clear."

use ltse_mem::BlockAddr;

/// A fully-associative LRU array of recently logged block addresses.
///
/// `contains → skip logging` is only sound because membership is exact:
/// a block is in the filter only if it truly was logged this transaction
/// (entries are only added on log writes and the filter is cleared at
/// begin/commit/abort/nested-begin/context-switch).
///
/// ```
/// use ltse_mem::BlockAddr;
/// use ltse_tm::LogFilter;
///
/// let mut f = LogFilter::new(2);
/// assert!(f.note_logged(BlockAddr(1)), "first store must log");
/// assert!(!f.note_logged(BlockAddr(1)), "second store suppressed");
/// f.note_logged(BlockAddr(2));
/// f.note_logged(BlockAddr(3)); // evicts 1 (capacity 2)
/// assert!(f.note_logged(BlockAddr(1)), "evicted ⇒ re-log (safe, wasteful)");
/// ```
#[derive(Debug, Clone)]
pub struct LogFilter {
    entries: Vec<(BlockAddr, u64)>,
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl LogFilter {
    /// Creates a filter with `capacity` entries; a capacity of 0 disables
    /// filtering (every store logs).
    pub fn new(capacity: usize) -> Self {
        LogFilter {
            entries: Vec::with_capacity(capacity),
            capacity,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Called on every transactional store to `block`. Returns `true` if
    /// the block must be logged (filter miss), recording it for next time;
    /// `false` if logging can be suppressed (filter hit).
    pub fn note_logged(&mut self, block: BlockAddr) -> bool {
        self.tick += 1;
        if self.capacity == 0 {
            self.misses += 1;
            return true;
        }
        if let Some(e) = self.entries.iter_mut().find(|(b, _)| *b == block) {
            e.1 = self.tick;
            self.hits += 1;
            return false;
        }
        self.misses += 1;
        if self.entries.len() == self.capacity {
            let (idx, _) = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, lru))| *lru)
                .expect("capacity > 0");
            self.entries.swap_remove(idx);
        }
        self.entries.push((block, self.tick));
        true
    }

    /// Clears the filter (context switch, transaction boundary, nested
    /// begin). Always safe.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// `(hits, misses)` — a hit is a suppressed (redundant) log write.
    pub fn hit_miss(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the filter is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suppresses_repeat_stores() {
        let mut f = LogFilter::new(8);
        assert!(f.note_logged(BlockAddr(5)));
        for _ in 0..10 {
            assert!(!f.note_logged(BlockAddr(5)));
        }
        assert_eq!(f.hit_miss(), (10, 1));
    }

    #[test]
    fn zero_capacity_always_logs() {
        let mut f = LogFilter::new(0);
        assert!(f.note_logged(BlockAddr(1)));
        assert!(f.note_logged(BlockAddr(1)));
        assert_eq!(f.hit_miss(), (0, 2));
    }

    #[test]
    fn lru_eviction() {
        let mut f = LogFilter::new(2);
        f.note_logged(BlockAddr(1));
        f.note_logged(BlockAddr(2));
        f.note_logged(BlockAddr(1)); // touch 1; 2 becomes LRU
        f.note_logged(BlockAddr(3)); // evicts 2
        assert!(!f.note_logged(BlockAddr(1)), "1 retained");
        assert!(f.note_logged(BlockAddr(2)), "2 evicted ⇒ re-log");
    }

    #[test]
    fn clear_forces_relogging() {
        let mut f = LogFilter::new(4);
        f.note_logged(BlockAddr(9));
        f.clear();
        assert!(f.is_empty());
        assert!(f.note_logged(BlockAddr(9)), "cleared ⇒ must log again");
    }

    #[test]
    fn capacity_respected() {
        let mut f = LogFilter::new(3);
        for i in 0..10 {
            f.note_logged(BlockAddr(i));
        }
        assert_eq!(f.len(), 3);
    }
}
