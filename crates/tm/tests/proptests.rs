//! Model-based property tests for eager version management: arbitrary
//! sequences of nested begins, transactional stores, commits, and aborts
//! must leave memory exactly as a snapshot-stack model predicts.
//! Randomized deterministically through `ltse_sim::check`.

use std::collections::HashMap;

use ltse_sim::check::{cases, pick_weighted, vec_of};
use ltse_sim::rng::Xoshiro256StarStar;

use ltse_mem::{Asid, BlockAddr, WordAddr, WORDS_PER_BLOCK};
use ltse_sig::{SigOp, SignatureKind};
use ltse_sim::Cycle;
use ltse_tm::{NestKind, ThreadTmState, TmConfig};

/// The operations a fuzzed transaction script can perform.
#[derive(Debug, Clone)]
enum Step {
    Begin(bool), // open?
    Store { block: u64, value: u64 },
    Commit,
    AbortInner,
    AbortAll,
}

fn steps(rng: &mut Xoshiro256StarStar) -> Vec<Step> {
    vec_of(rng, 1, 60, |r| match pick_weighted(r, &[2, 5, 3, 1, 1]) {
        0 => Step::Begin(r.gen_bool(0.5)),
        1 => Step::Store {
            block: r.gen_range(0, 12),
            value: r.gen_range(1, 1_000_000),
        },
        2 => Step::Commit,
        3 => Step::AbortInner,
        _ => Step::AbortAll,
    })
}

/// A reference model: flat memory plus a stack of (kind, snapshot) frames.
/// A closed commit merges (parent keeps the child's snapshot baseline); an
/// open commit publishes; aborts restore the frame's snapshot.
struct Model {
    memory: HashMap<u64, u64>,
    /// For each live frame: (open?, memory snapshot at its begin).
    frames: Vec<(bool, HashMap<u64, u64>)>,
}

impl Model {
    fn new() -> Self {
        Model {
            memory: HashMap::new(),
            frames: Vec::new(),
        }
    }
}

fn read_block(memory: &HashMap<u64, u64>, block: u64) -> [u64; WORDS_PER_BLOCK as usize] {
    let base = BlockAddr(block).first_word().as_u64();
    std::array::from_fn(|i| memory.get(&(base + i as u64)).copied().unwrap_or(0))
}

#[test]
fn log_matches_snapshot_model() {
    cases(128, 0x10906, |rng| {
        let script = steps(rng);
        let kind_sel = rng.gen_index(3);
        let kind = [
            SignatureKind::Perfect,
            SignatureKind::paper_bs_2kb(),
            SignatureKind::paper_bs_64(),
        ][kind_sel];
        let config = TmConfig::default_with(kind);
        let mut tm = ThreadTmState::new(0, Asid(0), &config, WordAddr(1 << 44), 7);
        let mut model = Model::new();
        let mut now = 0u64;

        for step in script {
            now += 10;
            match step {
                Step::Begin(open) => {
                    let kind = if open && !model.frames.is_empty() {
                        NestKind::Open
                    } else {
                        NestKind::Closed
                    };
                    tm.begin(kind, Cycle(now));
                    model.frames.push((kind == NestKind::Open, model.memory.clone()));
                }
                Step::Store { block, value } => {
                    if model.frames.is_empty() {
                        continue; // scripts only store transactionally
                    }
                    // Open-nesting contract: an open transaction publishes
                    // its writes permanently, so it must not touch data any
                    // frame *outside its own open lineage* holds undo
                    // records for (such an abort would clobber the
                    // published values — true of the real hardware too,
                    // which is why open nesting requires disjoint data).
                    // The fuzzer honours the contract by giving each
                    // open-nesting level its own block range.
                    let open_depth = model.frames.iter().filter(|(open, _)| *open).count() as u64;
                    let block = block + 64 * open_depth;
                    tm.record_access(SigOp::Write, BlockAddr(block));
                    let memory = &model.memory;
                    tm.log_store_if_needed(BlockAddr(block), || read_block(memory, block));
                    let base = BlockAddr(block).first_word().as_u64();
                    model.memory.insert(base, value); // write word 0 in place
                }
                Step::Commit => {
                    if model.frames.is_empty() {
                        continue;
                    }
                    tm.commit(&config, Cycle(now));
                    let (open, snapshot) = model.frames.pop().expect("frame");
                    if open {
                        // An open commit publishes the child's writes: no
                        // ancestor abort may undo them, so fold the child's
                        // diff into every surviving rollback point.
                        let mut diff: Vec<(u64, Option<u64>)> = Vec::new();
                        for (addr, v) in &model.memory {
                            if snapshot.get(addr) != Some(v) {
                                diff.push((*addr, Some(*v)));
                            }
                        }
                        for addr in snapshot.keys() {
                            if !model.memory.contains_key(addr) {
                                diff.push((*addr, None));
                            }
                        }
                        for (_, frame_snapshot) in model.frames.iter_mut() {
                            for (addr, v) in &diff {
                                match v {
                                    Some(v) => {
                                        frame_snapshot.insert(*addr, *v);
                                    }
                                    None => {
                                        frame_snapshot.remove(addr);
                                    }
                                }
                            }
                        }
                    }
                }
                Step::AbortInner => {
                    if model.frames.len() < 2 {
                        continue;
                    }
                    let mut restores = Vec::new();
                    tm.abort_innermost(&config, &mut |base, old| restores.push((base, *old)));
                    let (_, snapshot) = model.frames.pop().expect("frame");
                    apply_restores(&mut model.memory, &restores);
                    assert_eq!(
                        &model.memory, &snapshot,
                        "partial abort must restore the inner begin's snapshot"
                    );
                }
                Step::AbortAll => {
                    if model.frames.is_empty() {
                        continue;
                    }
                    let mut restores = Vec::new();
                    tm.abort_all(&config, Cycle(now), &mut |base, old| restores.push((base, *old)));
                    // The correct post-state: the OUTERMOST frame's begin
                    // snapshot, except that open-committed children along the
                    // way are permanent. Open commits pop their frames at
                    // commit time, so any still-live frames are uncommitted:
                    // full abort restores the oldest live snapshot.
                    let (_, oldest) = model.frames.first().cloned().expect("frame");
                    model.frames.clear();
                    apply_restores(&mut model.memory, &restores);
                    assert_eq!(
                        &model.memory, &oldest,
                        "full abort must restore the outermost begin's snapshot"
                    );
                }
            }

            // Invariants that must hold continuously.
            assert_eq!(tm.depth(), model.frames.len());
            assert_eq!(tm.in_tx(), !model.frames.is_empty());
        }
    });
}

fn apply_restores(memory: &mut HashMap<u64, u64>, restores: &[(WordAddr, [u64; 8])]) {
    for (base, old) in restores {
        for (i, w) in old.iter().enumerate() {
            let addr = base.as_u64() + i as u64;
            if *w == 0 {
                memory.remove(&addr);
            } else {
                memory.insert(addr, *w);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Explorer-backed whole-system regressions: the fuzzed model above checks the
// TM core in isolation; these drive the *composed* machine (via the cyclic
// dev-dependency on `logtm-se`) through systematically perturbed event
// schedules and differentially check every interleaving against the
// serializability oracle.

mod explored {
    use logtm_se::{
        explore, Cycle, ExploreConfig, ScheduleChooser, SignatureKind, SystemBuilder, TxScript,
        WordAddr,
    };

    /// Explores `n_threads` threads × `iters` counter increments under the
    /// given signature kind, checking serializability and the exact final
    /// count on every schedule.
    fn counters_serialize(kind: SignatureKind, n_threads: usize, iters: usize, budget: usize) {
        let expected = (n_threads * iters) as u64;
        let cfg = ExploreConfig {
            seed: 0x7E57_0001,
            ..ExploreConfig::with_budget(budget)
        };
        let report = explore(&cfg, |chooser: &mut ScheduleChooser| {
            let mut s = SystemBuilder::small_for_tests()
                .signature(kind)
                .seed(13)
                .check_serializability(true)
                .build();
            for _ in 0..n_threads {
                s.add_thread(Box::new(TxScript::counter(WordAddr(0), iters)));
            }
            s.run_explored(chooser, 4, Cycle(8))
                .map_err(|e| format!("run error: {e}"))?;
            let errs = s.finish_checks();
            if !errs.is_empty() {
                return Err(errs.join("; "));
            }
            let got = s.read_word(WordAddr(0));
            if got != expected {
                return Err(format!("final count {got}, expected {expected}"));
            }
            Ok(())
        });
        report.assert_clean(&format!("{kind} counters"));
        assert!(report.distinct_schedules > 1, "exploration actually varied");
    }

    #[test]
    fn counters_serialize_with_perfect_signatures() {
        counters_serialize(SignatureKind::Perfect, 4, 3, 80);
    }

    #[test]
    fn counters_serialize_with_a_tiny_aliasing_bloom() {
        // 64 bits, one hash: nearly everything aliases, so false-positive
        // NACKs are rampant — stalls and aborts may differ wildly per
        // schedule, but atomicity must not.
        counters_serialize(SignatureKind::Bloom { bits: 64, k: 1 }, 4, 3, 80);
    }

    #[test]
    fn counters_serialize_with_the_paper_bs_64() {
        counters_serialize(SignatureKind::paper_bs_64(), 3, 3, 60);
    }
}
