//! Latency parameters (the paper's Table 1).

use ltse_sim::Cycle;

/// Uncontended latencies of the paper's system model (Table 1) plus the
/// small fixed costs our protocol path model needs.
///
/// ```
/// use ltse_sim::Cycle;
/// use ltse_mem::LatencyConfig;
///
/// let lat = LatencyConfig::paper_table1();
/// assert_eq!(lat.l1_hit, Cycle(1));
/// assert_eq!(lat.l2_access, Cycle(34));
/// assert_eq!(lat.dram, Cycle(500));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyConfig {
    /// L1 hit: "1 cycle uncontended latency".
    pub l1_hit: Cycle,
    /// L2 data access: "34-cycle uncontended latency".
    pub l2_access: Cycle,
    /// Directory lookup: "6-cycle latency".
    pub directory: Cycle,
    /// Off-chip DRAM: "500-cycle latency".
    pub dram: Cycle,
    /// One interconnect link: "3-cycle link latency".
    pub link: Cycle,
    /// Probing a remote L1's tags / signature on a forwarded request.
    pub remote_probe: Cycle,
}

impl LatencyConfig {
    /// The paper's Table 1 values.
    pub fn paper_table1() -> Self {
        LatencyConfig {
            l1_hit: Cycle(1),
            l2_access: Cycle(34),
            directory: Cycle(6),
            dram: Cycle(500),
            link: Cycle(3),
            remote_probe: Cycle(1),
        }
    }

    /// A uniformly cheap configuration for fast unit tests where absolute
    /// numbers don't matter.
    pub fn uniform_for_tests() -> Self {
        LatencyConfig {
            l1_hit: Cycle(1),
            l2_access: Cycle(4),
            directory: Cycle(1),
            dram: Cycle(20),
            link: Cycle(1),
            remote_probe: Cycle(1),
        }
    }
}

impl Default for LatencyConfig {
    fn default() -> Self {
        LatencyConfig::paper_table1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper() {
        assert_eq!(LatencyConfig::default(), LatencyConfig::paper_table1());
    }

    #[test]
    fn paper_values_match_table1() {
        let l = LatencyConfig::paper_table1();
        assert_eq!(l.l1_hit, Cycle(1));
        assert_eq!(l.l2_access, Cycle(34));
        assert_eq!(l.directory, Cycle(6));
        assert_eq!(l.dram, Cycle(500));
        assert_eq!(l.link, Cycle(3));
    }
}
