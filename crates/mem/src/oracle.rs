//! The decoupling boundary: conflict checks delegated out of the memory
//! system.
//!
//! LogTM-SE's thesis is that transactional state lives *outside* the cache
//! arrays. This crate honours that architecturally: the coherence protocol
//! never sees a signature. Instead, wherever the real hardware would probe a
//! core's signatures (forwarded GETS/GETM, invalidations, directory-rebuild
//! broadcasts, eviction decisions), the protocol calls a [`ConflictOracle`]
//! that the TM layer implements.

use crate::addr::BlockAddr;

/// Whether a memory access reads or writes (maps to the paper's GETS/GETM
/// coherence requests and to `SigOp` in `ltse-sig`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load; misses issue GETS.
    Load,
    /// A store (or atomic RMW); misses/upgrades issue GETM.
    Store,
}

impl std::fmt::Display for AccessKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            AccessKind::Load => "load",
            AccessKind::Store => "store",
        })
    }
}

/// Signature checks the protocol delegates to the TM layer.
///
/// `requester_ctx` is a *global thread context id* (see
/// [`crate::MemConfig::ctx`]). The paper attaches an address-space id to
/// every coherence request so aliasing cannot create cross-process false
/// conflicts (§2); implementations know every context's [`crate::Asid`], including
/// the requester's, and must NACK only when the signature hits **and** the
/// ASIDs match.
pub trait ConflictOracle {
    /// Would any thread context on `core` NACK an incoming request of `kind`
    /// for `block` from `requester_ctx`? Returns the nacking context id, or
    /// `None` if the request may proceed. The requester's own context must
    /// not be reported.
    fn check_core(
        &self,
        core: u8,
        kind: AccessKind,
        block: BlockAddr,
        requester_ctx: u32,
    ) -> Option<u32>;

    /// Does `core`'s *hardware* view (its signatures, false positives
    /// included) consider `block` transactional? Controls the sticky-state
    /// decision on L1 eviction and the broadcast-needed decision on L2
    /// eviction.
    fn block_is_transactional_hw(&self, core: u8, block: BlockAddr) -> bool;

    /// Does any active transaction on `core` *exactly* (shadow sets, no
    /// false positives) hold `block` in its read- or write-set? Used only
    /// for the paper's Result 4 victimization statistics, never for
    /// protocol decisions.
    fn block_is_transactional_exact(&self, core: u8, block: BlockAddr) -> bool;
}

/// An oracle with no transactions anywhere: nothing conflicts, nothing is
/// transactional. Lets the memory system be unit-tested (and the lock-based
/// baseline run) in isolation.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullOracle;

impl ConflictOracle for NullOracle {
    fn check_core(
        &self,
        _core: u8,
        _kind: AccessKind,
        _block: BlockAddr,
        _requester_ctx: u32,
    ) -> Option<u32> {
        None
    }

    fn block_is_transactional_hw(&self, _core: u8, _block: BlockAddr) -> bool {
        false
    }

    fn block_is_transactional_exact(&self, _core: u8, _block: BlockAddr) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_oracle_never_conflicts() {
        let o = NullOracle;
        assert_eq!(o.check_core(0, AccessKind::Store, BlockAddr(1), 99), None);
        assert!(!o.block_is_transactional_hw(0, BlockAddr(1)));
        assert!(!o.block_is_transactional_exact(0, BlockAddr(1)));
    }

    #[test]
    fn access_kind_display() {
        assert_eq!(AccessKind::Load.to_string(), "load");
        assert_eq!(AccessKind::Store.to_string(), "store");
    }
}
