//! The decoupling boundary: conflict checks delegated out of the memory
//! system.
//!
//! LogTM-SE's thesis is that transactional state lives *outside* the cache
//! arrays. This crate honours that architecturally: the coherence protocol
//! never sees a signature. Instead, wherever the real hardware would probe a
//! core's signatures (forwarded GETS/GETM, invalidations, directory-rebuild
//! broadcasts, eviction decisions), the protocol calls a [`ConflictOracle`]
//! that the TM layer implements.

use std::collections::{BTreeMap, BTreeSet};

use crate::addr::BlockAddr;

/// Whether a memory access reads or writes (maps to the paper's GETS/GETM
/// coherence requests and to `SigOp` in `ltse-sig`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load; misses issue GETS.
    Load,
    /// A store (or atomic RMW); misses/upgrades issue GETM.
    Store,
}

impl std::fmt::Display for AccessKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            AccessKind::Load => "load",
            AccessKind::Store => "store",
        })
    }
}

/// Signature checks the protocol delegates to the TM layer.
///
/// `requester_ctx` is a *global thread context id* (see
/// [`crate::MemConfig::ctx`]). The paper attaches an address-space id to
/// every coherence request so aliasing cannot create cross-process false
/// conflicts (§2); implementations know every context's [`crate::Asid`], including
/// the requester's, and must NACK only when the signature hits **and** the
/// ASIDs match.
pub trait ConflictOracle {
    /// Would any thread context on `core` NACK an incoming request of `kind`
    /// for `block` from `requester_ctx`? Returns the nacking context id, or
    /// `None` if the request may proceed. The requester's own context must
    /// not be reported.
    fn check_core(
        &self,
        core: crate::dir::CoreId,
        kind: AccessKind,
        block: BlockAddr,
        requester_ctx: u32,
    ) -> Option<u32>;

    /// Does `core`'s *hardware* view (its signatures, false positives
    /// included) consider `block` transactional? Controls the sticky-state
    /// decision on L1 eviction and the broadcast-needed decision on L2
    /// eviction.
    fn block_is_transactional_hw(&self, core: crate::dir::CoreId, block: BlockAddr) -> bool;

    /// Does any active transaction on `core` *exactly* (shadow sets, no
    /// false positives) hold `block` in its read- or write-set? Used only
    /// for the paper's Result 4 victimization statistics, never for
    /// protocol decisions.
    fn block_is_transactional_exact(&self, core: crate::dir::CoreId, block: BlockAddr) -> bool;
}

/// An oracle with no transactions anywhere: nothing conflicts, nothing is
/// transactional. Lets the memory system be unit-tested (and the lock-based
/// baseline run) in isolation.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullOracle;

impl ConflictOracle for NullOracle {
    fn check_core(
        &self,
        _core: crate::dir::CoreId,
        _kind: AccessKind,
        _block: BlockAddr,
        _requester_ctx: u32,
    ) -> Option<u32> {
        None
    }

    fn block_is_transactional_hw(&self, _core: crate::dir::CoreId, _block: BlockAddr) -> bool {
        false
    }

    fn block_is_transactional_exact(&self, _core: crate::dir::CoreId, _block: BlockAddr) -> bool {
        false
    }
}

/// One data operation recorded inside a transaction frame, in program order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DataOp {
    /// A load that observed `seen`.
    Read { key: u64, seen: u64 },
    /// A store of `value`.
    Write { key: u64, value: u64 },
}

/// Cap on recorded mismatch messages: a genuinely broken run can mismatch on
/// every access, and the first few errors carry all the signal.
const MAX_ERRORS: usize = 32;

/// A differential serializability checker: replays *committed* transactions,
/// in commit order, against a plain sequential [`BTreeMap`] memory, and
/// asserts that every committed read observed exactly the value the serial
/// replay produces and that the final memory states agree.
///
/// This is the ground truth LogTM-SE's machinery (signatures, NACKs, undo
/// logs, sticky states, summary signatures) is supposed to implement: eager
/// conflict detection holds writers and readers apart until commit, so the
/// committed history must be serializable *in commit order*. A signature
/// false negative, a skipped undo-log record, or a missed sticky-state check
/// surfaces here as a read-value or final-state divergence.
///
/// Keys are opaque `u64`s chosen by the caller; the system-level harness
/// packs `(asid, virtual word address)` so page relocation (which changes
/// physical placement, not meaning) is invisible to the oracle. Aborted
/// frames are discarded without touching the reference memory — "aborted
/// transactions leave no trace" falls out of the final-state comparison.
///
/// Operations performed outside any transaction (plain accesses, escape
/// actions) apply to the reference immediately, as single-op transactions
/// serialized at execution time: eager conflict detection NACKs them until
/// no live transaction holds the block, so execution order *is* their
/// serialization order.
#[derive(Debug, Default)]
pub struct SerializabilityOracle {
    /// The sequential reference memory (missing key = 0).
    reference: BTreeMap<u64, u64>,
    /// Every key any access or init ever touched (for the final sweep).
    touched: BTreeSet<u64>,
    /// Per-thread stack of open transaction frames; `.1` is `true` for an
    /// open-nested frame.
    frames: BTreeMap<u32, Vec<(bool, Vec<DataOp>)>>,
    errors: Vec<String>,
    committed_txs: u64,
    checked_reads: u64,
}

impl SerializabilityOracle {
    /// A fresh oracle over an all-zero reference memory.
    pub fn new() -> Self {
        SerializabilityOracle::default()
    }

    fn push_error(&mut self, msg: String) {
        if self.errors.len() < MAX_ERRORS {
            self.errors.push(msg);
        }
    }

    /// Seeds an initial value (memory initialized before the run starts).
    pub fn init_word(&mut self, key: u64, value: u64) {
        self.touched.insert(key);
        if value == 0 {
            self.reference.remove(&key);
        } else {
            self.reference.insert(key, value);
        }
    }

    /// Replays `ops` against the reference, checking reads.
    fn apply(&mut self, thread: u32, ops: &[DataOp]) {
        for op in ops {
            match *op {
                DataOp::Read { key, seen } => {
                    self.checked_reads += 1;
                    self.touched.insert(key);
                    let want = self.reference.get(&key).copied().unwrap_or(0);
                    if want != seen {
                        self.push_error(format!(
                            "thread {thread}: committed read of {key:#x} observed {seen} \
                             but serial replay expects {want}"
                        ));
                    }
                }
                DataOp::Write { key, value } => {
                    self.touched.insert(key);
                    self.reference.insert(key, value);
                }
            }
        }
    }

    fn record(&mut self, thread: u32, op: DataOp) {
        match self.frames.get_mut(&thread).and_then(|s| s.last_mut()) {
            Some((_, frame)) => frame.push(op),
            // Outside any transaction: a single-op transaction serialized
            // right now (see type-level docs).
            None => self.apply(thread, &[op]),
        }
    }

    /// A transaction (or nested child) began. `open` marks open nesting.
    pub fn begin(&mut self, thread: u32, open: bool) {
        self.frames
            .entry(thread)
            .or_default()
            .push((open, Vec::new()));
    }

    /// The thread's innermost transaction committed.
    ///
    /// Closed children merge into the parent frame (their effects replay at
    /// the ancestors' commit); open children and outermost transactions
    /// replay against the reference immediately — this call site *is* their
    /// commit-order position.
    pub fn commit(&mut self, thread: u32) {
        let stack = self.frames.entry(thread).or_default();
        let Some((open, ops)) = stack.pop() else {
            self.push_error(format!("thread {thread}: commit without a live frame"));
            return;
        };
        if open || stack.is_empty() {
            self.committed_txs += 1;
            self.apply(thread, &ops);
        } else {
            let (_, parent) = stack.last_mut().expect("non-empty checked above");
            parent.extend(ops);
        }
    }

    /// The thread's innermost frame aborted (partial abort): its recorded
    /// operations are discarded.
    pub fn abort_innermost(&mut self, thread: u32) {
        if self.frames.entry(thread).or_default().pop().is_none() {
            self.push_error(format!("thread {thread}: partial abort without a live frame"));
        }
    }

    /// The thread's whole nest aborted: everything is discarded.
    pub fn abort_all(&mut self, thread: u32) {
        self.frames.entry(thread).or_default().clear();
    }

    /// Whether `thread` has a live (uncommitted) frame.
    pub fn in_tx(&self, thread: u32) -> bool {
        self.frames.get(&thread).is_some_and(|s| !s.is_empty())
    }

    /// A committed load of `key` observed `seen`.
    pub fn read(&mut self, thread: u32, key: u64, seen: u64) {
        self.record(thread, DataOp::Read { key, seen });
    }

    /// A store of `value` to `key`.
    pub fn write(&mut self, thread: u32, key: u64, value: u64) {
        self.record(thread, DataOp::Write { key, value });
    }

    /// An atomic read-modify-write: observed `seen`, then stored `new` (pass
    /// `None` for a failed compare-and-swap, which writes nothing).
    pub fn rmw(&mut self, thread: u32, key: u64, seen: u64, new: Option<u64>) {
        // Recorded as read-then-write in one frame; outside a transaction the
        // pair must serialize atomically, so apply it as one unit.
        let mut ops = [DataOp::Read { key, seen }, DataOp::Read { key, seen }];
        let mut n = 1;
        if let Some(value) = new {
            ops[1] = DataOp::Write { key, value };
            n = 2;
        }
        match self.frames.get_mut(&thread).and_then(|s| s.last_mut()) {
            Some((_, frame)) => frame.extend_from_slice(&ops[..n]),
            None => self.apply(thread, &ops[..n]),
        }
    }

    /// A store performed inside an *escape action* while the thread has live
    /// frames: it takes effect immediately (escape stores are never logged,
    /// so an enclosing abort cannot undo them) rather than joining the
    /// innermost frame. Escape *reads* are deliberately not checked at all —
    /// under eager version management they may legitimately observe the
    /// enclosing transaction's uncommitted stores, which the serial replay
    /// cannot predict.
    pub fn escape_write(&mut self, thread: u32, key: u64, value: u64) {
        self.apply(thread, &[DataOp::Write { key, value }]);
    }

    /// Records an externally detected invariant violation (post-abort probe
    /// failures, leftover transactional state, …) so one error channel
    /// carries everything.
    pub fn note(&mut self, msg: String) {
        self.push_error(msg);
    }

    /// Compares the reference against the actual memory over every touched
    /// key; `actual` resolves a key to the real memory's current value.
    /// Threads still holding live frames at this point are reported too —
    /// a finished run must have no transaction in flight.
    pub fn check_final(&mut self, mut actual: impl FnMut(u64) -> u64) {
        let live: Vec<u32> = self
            .frames
            .iter()
            .filter(|(_, s)| !s.is_empty())
            .map(|(t, _)| *t)
            .collect();
        for thread in live {
            self.push_error(format!(
                "thread {thread}: transaction still live at end of run"
            ));
        }
        let keys: Vec<u64> = self.touched.iter().copied().collect();
        for key in keys {
            let want = self.reference.get(&key).copied().unwrap_or(0);
            let got = actual(key);
            if want != got {
                self.push_error(format!(
                    "final state diverges at {key:#x}: memory holds {got}, \
                     serial replay expects {want}"
                ));
            }
        }
    }

    /// All recorded divergences and violations, in detection order (capped).
    pub fn errors(&self) -> &[String] {
        &self.errors
    }

    /// Whether any check has failed so far.
    pub fn has_errors(&self) -> bool {
        !self.errors.is_empty()
    }

    /// Drains the recorded errors.
    pub fn take_errors(&mut self) -> Vec<String> {
        std::mem::take(&mut self.errors)
    }

    /// Number of transactions replayed (outermost commits + open-nested
    /// publishes).
    pub fn committed_txs(&self) -> u64 {
        self.committed_txs
    }

    /// Number of read-value equivalence checks performed.
    pub fn checked_reads(&self) -> u64 {
        self.checked_reads
    }

    /// Every key any access touched, for external sweeps.
    pub fn touched_keys(&self) -> impl Iterator<Item = u64> + '_ {
        self.touched.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_oracle_never_conflicts() {
        let o = NullOracle;
        assert_eq!(o.check_core(0, AccessKind::Store, BlockAddr(1), 99), None);
        assert!(!o.block_is_transactional_hw(0, BlockAddr(1)));
        assert!(!o.block_is_transactional_exact(0, BlockAddr(1)));
    }

    #[test]
    fn access_kind_display() {
        assert_eq!(AccessKind::Load.to_string(), "load");
        assert_eq!(AccessKind::Store.to_string(), "store");
    }

    #[test]
    fn serial_increments_replay_clean() {
        let mut o = SerializabilityOracle::new();
        let mut mem = 0u64;
        for t in 0..3u32 {
            o.begin(t, false);
            o.read(t, 0x10, mem);
            mem += 1;
            o.write(t, 0x10, mem);
            o.commit(t);
        }
        assert_eq!(o.committed_txs(), 3);
        assert_eq!(o.checked_reads(), 3);
        o.check_final(|_| mem);
        assert!(o.errors().is_empty(), "{:?}", o.errors());
    }

    #[test]
    fn lost_update_is_detected() {
        let mut o = SerializabilityOracle::new();
        // Two transactions both read 0, both write 1 (the classic lost
        // update a working TM must prevent).
        o.begin(0, false);
        o.read(0, 0x10, 0);
        o.write(0, 0x10, 1);
        o.begin(1, false);
        o.read(1, 0x10, 0); // recorded before t0 commits: fine so far
        o.write(1, 0x10, 1);
        o.commit(0);
        o.commit(1); // replay expects t1's read to see 1, it saw 0
        assert!(o.has_errors());
        assert!(o.errors()[0].contains("observed 0"), "{:?}", o.errors());
    }

    #[test]
    fn final_state_divergence_is_detected() {
        let mut o = SerializabilityOracle::new();
        o.begin(0, false);
        o.write(0, 0x20, 7);
        o.commit(0);
        o.check_final(|_| 99); // actual memory disagrees
        assert!(o.errors().iter().any(|e| e.contains("final state diverges")));
    }

    #[test]
    fn aborted_transactions_leave_no_trace() {
        let mut o = SerializabilityOracle::new();
        o.init_word(0x30, 5);
        o.begin(0, false);
        o.read(0, 0x30, 5);
        o.write(0, 0x30, 100);
        o.abort_all(0);
        assert!(!o.in_tx(0));
        // A later reader must see the pre-transaction value.
        o.read(1, 0x30, 5);
        o.check_final(|_| 5);
        assert!(o.errors().is_empty(), "{:?}", o.errors());
        assert_eq!(o.committed_txs(), 0);
    }

    #[test]
    fn closed_nesting_merges_into_parent() {
        let mut o = SerializabilityOracle::new();
        o.begin(0, false);
        o.write(0, 0x40, 1);
        o.begin(0, false); // closed child
        o.write(0, 0x41, 2);
        o.commit(0); // merges, nothing published yet
        assert_eq!(o.committed_txs(), 0);
        // A concurrent non-transactional read still sees old memory.
        o.read(1, 0x41, 0);
        o.commit(0); // outermost: both writes publish, in program order
        assert_eq!(o.committed_txs(), 1);
        o.check_final(|k| match k {
            0x40 => 1,
            0x41 => 2,
            _ => 0,
        });
        assert!(o.errors().is_empty(), "{:?}", o.errors());
    }

    #[test]
    fn partial_abort_discards_only_the_inner_frame() {
        let mut o = SerializabilityOracle::new();
        o.begin(0, false);
        o.write(0, 0x50, 1);
        o.begin(0, false);
        o.write(0, 0x51, 9); // inner write, then partial abort
        o.abort_innermost(0);
        assert!(o.in_tx(0));
        o.commit(0);
        o.check_final(|k| if k == 0x50 { 1 } else { 0 });
        assert!(o.errors().is_empty(), "{:?}", o.errors());
    }

    #[test]
    fn open_nested_commit_publishes_immediately() {
        let mut o = SerializabilityOracle::new();
        o.begin(0, false);
        o.begin(0, true); // open child
        o.write(0, 0x60, 42);
        o.commit(0); // publishes now
        assert_eq!(o.committed_txs(), 1);
        o.read(1, 0x60, 42); // visible to others before the parent commits
        o.abort_all(0); // parent aborts; open child's publish survives
        o.check_final(|k| if k == 0x60 { 42 } else { 0 });
        assert!(o.errors().is_empty(), "{:?}", o.errors());
    }

    #[test]
    fn rmw_checks_the_observed_value() {
        let mut o = SerializabilityOracle::new();
        o.rmw(0, 0x70, 0, Some(1)); // fetch-add outside any tx
        o.rmw(1, 0x70, 1, Some(2));
        o.rmw(2, 0x70, 7, Some(8)); // stale observation: must be flagged
        assert_eq!(o.errors().len(), 1, "{:?}", o.errors());
        // Failed CAS writes nothing.
        let mut o2 = SerializabilityOracle::new();
        o2.rmw(0, 0x70, 0, None);
        o2.check_final(|_| 0);
        assert!(o2.errors().is_empty());
    }

    #[test]
    fn escape_write_bypasses_the_frame_stack() {
        let mut o = SerializabilityOracle::new();
        o.begin(0, false);
        o.escape_write(0, 0x85, 7); // visible immediately, survives the abort
        o.read(1, 0x85, 7);
        o.abort_all(0);
        o.check_final(|k| if k == 0x85 { 7 } else { 0 });
        assert!(o.errors().is_empty(), "{:?}", o.errors());
    }

    #[test]
    fn live_frame_at_end_of_run_is_reported() {
        let mut o = SerializabilityOracle::new();
        o.begin(0, false);
        o.write(0, 0x80, 1);
        o.check_final(|_| 0);
        assert!(o.errors().iter().any(|e| e.contains("still live")), "{:?}", o.errors());
    }

    #[test]
    fn commit_without_begin_is_reported() {
        let mut o = SerializabilityOracle::new();
        o.commit(3);
        assert!(o.errors()[0].contains("commit without"), "{:?}", o.errors());
    }

    #[test]
    fn error_cap_bounds_memory() {
        let mut o = SerializabilityOracle::new();
        for i in 0..1000 {
            o.read(0, 0x90, i + 1); // always wrong (reference holds 0)
        }
        assert_eq!(o.errors().len(), MAX_ERRORS);
    }
}
