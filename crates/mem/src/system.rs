//! The composed memory system: L1s, banked L2 + directory, interconnect,
//! DRAM — with the paper's coherence-protocol changes (NACKs, sticky states,
//! directory-loss broadcasts).

use std::collections::HashSet;

use ltse_sim::Cycle;

use crate::addr::{BlockAddr, WordAddr};
use crate::cache::{CacheConfig, SetAssocCache};
use crate::dir::DirEntry;
use crate::latency::LatencyConfig;
use crate::network::Grid;
use crate::oracle::{AccessKind, ConflictOracle};
use crate::stats::MemStats;
use crate::store::MemStore;

pub use crate::dir::{CoreId, MAX_CORES};

/// A global thread-context id (`core * smt_per_core + slot`).
pub type CtxId = u32;

/// L1 MESI state (Invalid ⇒ absent from the array).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum L1State {
    Shared,
    Exclusive,
    Modified,
}

/// One L2 line: data residency plus the embedded directory entry.
#[derive(Debug, Clone)]
struct L2Line {
    dir: DirEntry,
}

/// Where a completed access's data came from — determines (and explains) its
/// latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataSource {
    /// L1 hit.
    L1,
    /// Satisfied by the shared L2.
    L2,
    /// Went off-chip.
    Dram,
    /// Cache-to-cache transfer from a remote L1.
    RemoteL1,
}

/// A successfully completed access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessDone {
    /// Total cycles from issue to completion.
    pub latency: Cycle,
    /// Whether the L1 satisfied the access directly.
    pub l1_hit: bool,
    /// Which level supplied the data.
    pub source: DataSource,
}

/// Outcome of one memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The access completed and all protocol state was updated.
    Done(AccessDone),
    /// The access was NACKed by a conflicting transaction and changed no
    /// cache or directory state. The requester should stall and retry
    /// (LogTM conflict resolution); `nacker` identifies the conflicting
    /// thread context for timestamp comparison.
    Nacked {
        /// Cycles burned on the failed round trip.
        latency: Cycle,
        /// The thread context whose signature caused the NACK.
        nacker: CtxId,
    },
}

impl AccessOutcome {
    /// The latency regardless of outcome.
    pub fn latency(&self) -> Cycle {
        match *self {
            AccessOutcome::Done(d) => d.latency,
            AccessOutcome::Nacked { latency, .. } => latency,
        }
    }

    /// Whether the access completed.
    pub fn is_done(&self) -> bool {
        matches!(self, AccessOutcome::Done(_))
    }
}

/// An eviction that, with sticky states disabled (ablation A2), silently
/// dropped conflict-detection coverage for a transactional block. The TM
/// layer must conservatively abort the affected transactions, which is
/// exactly what cache-resident HTMs do on overflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverflowEvent {
    /// The core whose transactional block lost coverage.
    pub core: CoreId,
    /// The victim block.
    pub block: BlockAddr,
}

/// Which coherence substrate the CMP uses (paper §5 vs. §7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoherenceKind {
    /// The paper's §5 baseline: a MESI directory embedded in the inclusive
    /// L2, extended with NACKs, sticky states, and directory-loss
    /// broadcasts.
    DirectoryMesi,
    /// The paper's §7 "A Snooping CMP": every miss broadcasts to all L1s,
    /// which answer over wired-OR owner/shared/**nack** signals. No sticky
    /// states or directory-loss machinery are needed — victimization never
    /// affects conflict detection because every request reaches every
    /// signature anyway — at the cost of broadcast bandwidth on every miss.
    SnoopingMesi,
}

impl std::fmt::Display for CoherenceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CoherenceKind::DirectoryMesi => "directory",
            CoherenceKind::SnoopingMesi => "snooping",
        })
    }
}

impl ltse_sim::cache::FpHash for CoherenceKind {
    fn fp_feed(&self, h: &mut ltse_sim::cache::FpHasher) {
        h.write_u64(match self {
            CoherenceKind::DirectoryMesi => 0,
            CoherenceKind::SnoopingMesi => 1,
        });
    }
}

impl ltse_sim::cache::CacheValue for CoherenceKind {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            CoherenceKind::DirectoryMesi => 0,
            CoherenceKind::SnoopingMesi => 1,
        });
    }

    fn decode(r: &mut ltse_sim::cache::ByteReader<'_>) -> Option<Self> {
        match r.u8()? {
            0 => Some(CoherenceKind::DirectoryMesi),
            1 => Some(CoherenceKind::SnoopingMesi),
            _ => None,
        }
    }
}

/// Memory-system configuration (the paper's Table 1 by default).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemConfig {
    /// Number of cores (≤ [`MAX_CORES`]; the paper uses 16, the scale
    /// sweeps go to 256).
    pub n_cores: u16,
    /// Hardware thread contexts per core (the paper uses 2-way SMT).
    pub smt_per_core: u8,
    /// Private L1 data cache geometry (paper: 32 KB 4-way ⇒ 128 sets × 4).
    pub l1: CacheConfig,
    /// Per-bank L2 geometry (paper: 8 MB 8-way over 16 banks ⇒ 1024 sets × 8
    /// per bank).
    pub l2_bank: CacheConfig,
    /// Number of address-interleaved L2 banks (paper: 16; scaled configs
    /// use one bank per core).
    pub n_banks: u16,
    /// Interconnect mesh width (paper: 4×4 nodes hosting cores + banks).
    pub grid_width: usize,
    /// Interconnect mesh height.
    pub grid_height: usize,
    /// Latency parameters.
    pub latency: LatencyConfig,
    /// Whether LogTM sticky states are enabled (ablation A2 turns them off;
    /// irrelevant under snooping coherence).
    pub sticky_enabled: bool,
    /// Coherence substrate (paper §5 directory vs. §7 snooping).
    pub coherence: CoherenceKind,
    /// Number of chips the cores and L2 banks are partitioned over
    /// (paper §7 "Multiple CMPs"; 1 = the single-CMP baseline).
    pub n_chips: u8,
    /// Extra latency for each message that crosses a chip boundary.
    pub interchip_link: Cycle,
}

impl MemConfig {
    /// The paper's baseline CMP (Table 1): 16 cores × 2 SMT, 32 KB 4-way
    /// L1s, 8 MB 8-way L2 in 16 banks, 4×4 grid.
    pub fn paper_cmp() -> Self {
        MemConfig {
            n_cores: 16,
            smt_per_core: 2,
            l1: CacheConfig::new(128, 4),
            l2_bank: CacheConfig::new(1024, 8),
            n_banks: 16,
            grid_width: 4,
            grid_height: 4,
            latency: LatencyConfig::paper_table1(),
            sticky_enabled: true,
            coherence: CoherenceKind::DirectoryMesi,
            n_chips: 1,
            interchip_link: Cycle(50),
        }
    }

    /// The §7 "Multiple CMPs" system, scaled to fit the 32-context design:
    /// 4 chips × 8 cores (the paper sketches 4 × 16), point-to-point
    /// inter-chip links, intra-chip coherence as in §5, inter-chip requests
    /// paying the crossing latency.
    pub fn paper_multi_cmp() -> Self {
        MemConfig {
            n_chips: 4,
            ..Self::paper_cmp()
        }
    }

    /// The §7 snooping variant of the paper CMP: same cores and caches,
    /// broadcast coherence instead of the directory.
    pub fn paper_snooping_cmp() -> Self {
        MemConfig {
            coherence: CoherenceKind::SnoopingMesi,
            ..Self::paper_cmp()
        }
    }

    /// A scaled-out CMP for the 64–256-core sweeps: `n_cores` cores with
    /// one L2 bank per core, paper Table 1 cache geometry per core/bank
    /// (so aggregate L2 capacity grows with core count), and the smallest
    /// square mesh that hosts every core and bank (8×8 at 64 cores,
    /// 12×12 at 128, 16×16 at 256).
    ///
    /// # Panics
    ///
    /// Panics if `n_cores` is 0 or exceeds [`MAX_CORES`], or if
    /// `smt_per_core` is 0.
    pub fn scaled_cmp(n_cores: u16, smt_per_core: u8) -> Self {
        assert!(
            n_cores > 0 && (n_cores as usize) <= MAX_CORES,
            "scaled_cmp needs 1..={MAX_CORES} cores"
        );
        assert!(smt_per_core > 0, "scaled_cmp needs at least 1 SMT slot");
        let side = (1..).find(|s| s * s >= n_cores as usize).unwrap();
        MemConfig {
            n_cores,
            smt_per_core,
            n_banks: n_cores,
            grid_width: side,
            grid_height: side,
            ..Self::paper_cmp()
        }
    }

    /// A tiny configuration for unit tests: 4 cores × 2 SMT, 4-set 2-way
    /// L1s (8 blocks!) so eviction paths are easy to trigger.
    pub fn small_for_tests() -> Self {
        MemConfig {
            n_cores: 4,
            smt_per_core: 2,
            l1: CacheConfig::new(4, 2),
            l2_bank: CacheConfig::new(16, 2),
            n_banks: 2,
            grid_width: 2,
            grid_height: 2,
            latency: LatencyConfig::uniform_for_tests(),
            sticky_enabled: true,
            coherence: CoherenceKind::DirectoryMesi,
            n_chips: 1,
            interchip_link: Cycle(20),
        }
    }

    /// Total hardware thread contexts.
    pub fn n_ctxs(&self) -> u32 {
        self.n_cores as u32 * self.smt_per_core as u32
    }

    /// The global context id of `slot` on `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core` or `slot` is out of range.
    pub fn ctx(&self, core: CoreId, slot: u8) -> CtxId {
        assert!(core < self.n_cores, "core {core} out of range");
        assert!(slot < self.smt_per_core, "SMT slot {slot} out of range");
        core as u32 * self.smt_per_core as u32 + slot as u32
    }

    /// The core hosting a global context id.
    pub fn core_of(&self, ctx: CtxId) -> CoreId {
        (ctx / self.smt_per_core as u32) as CoreId
    }

    /// All context ids on `core`.
    pub fn ctxs_on_core(&self, core: CoreId) -> impl Iterator<Item = CtxId> + '_ {
        let base = core as u32 * self.smt_per_core as u32;
        base..base + self.smt_per_core as u32
    }

    fn validate(&self) {
        assert!(
            self.n_cores > 0 && (self.n_cores as usize) <= MAX_CORES,
            "1..={MAX_CORES} cores"
        );
        assert!(self.smt_per_core > 0, "need at least one context per core");
        assert!(self.n_banks > 0, "need at least one L2 bank");
        assert!(self.n_chips > 0, "need at least one chip");
        assert_eq!(
            self.n_cores % self.n_chips as u16,
            0,
            "chips must hold equal core counts"
        );
        assert_eq!(
            self.n_banks % self.n_chips as u16,
            0,
            "chips must hold equal bank counts"
        );
        assert!(
            self.grid_width * self.grid_height >= self.n_cores.max(self.n_banks) as usize,
            "grid too small for cores/banks"
        );
    }
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig::paper_cmp()
    }
}

/// The simulated memory system. See the crate docs for the model.
#[derive(Debug)]
pub struct MemorySystem {
    config: MemConfig,
    grid: Grid,
    l1s: Vec<SetAssocCache<L1State>>,
    l2_banks: Vec<SetAssocCache<L2Line>>,
    /// Blocks whose directory state was lost to an L2 eviction while
    /// transactional; accesses must broadcast until one succeeds.
    lost: HashSet<BlockAddr>,
    /// Blocks that have ever been fetched (cold-miss classification).
    touched: HashSet<BlockAddr>,
    store: MemStore,
    stats: MemStats,
    overflow_events: Vec<OverflowEvent>,
}

impl MemorySystem {
    /// Builds an empty (cold-cache) memory system.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent configuration (zero cores, grid smaller than
    /// the core/bank count, …).
    pub fn new(config: MemConfig) -> Self {
        config.validate();
        let grid = Grid::new(config.grid_width, config.grid_height, config.latency.link);
        MemorySystem {
            config,
            grid,
            l1s: (0..config.n_cores)
                .map(|_| SetAssocCache::new(config.l1))
                .collect(),
            l2_banks: (0..config.n_banks)
                .map(|_| SetAssocCache::new(config.l2_bank))
                .collect(),
            lost: HashSet::new(),
            touched: HashSet::new(),
            store: MemStore::new(),
            stats: MemStats::new(),
            overflow_events: Vec::new(),
        }
    }

    /// The configuration this system was built with.
    pub fn config(&self) -> &MemConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// Zeroes the statistics while keeping all cache/directory state warm
    /// (steady-state measurement boundary).
    pub fn reset_stats(&mut self) {
        self.stats = MemStats::new();
    }

    /// Reads a word from the flat data store (no timing; timing comes from
    /// [`MemorySystem::access`] on the containing block).
    pub fn read_word(&self, addr: WordAddr) -> u64 {
        self.store.read(addr)
    }

    /// Writes a word in place (eager version management's "new value").
    pub fn write_word(&mut self, addr: WordAddr, value: u64) {
        self.store.write(addr, value);
    }

    /// Atomic read-modify-write on a word, returning `(old, new)`.
    pub fn update_word(&mut self, addr: WordAddr, f: impl FnOnce(u64) -> u64) -> (u64, u64) {
        self.store.update(addr, f)
    }

    /// Drains overflow events produced while sticky states are disabled.
    pub fn take_overflow_events(&mut self) -> Vec<OverflowEvent> {
        std::mem::take(&mut self.overflow_events)
    }

    /// The L1 MESI state of `block` on `core` as a short string (tests and
    /// debugging): `"I"`, `"S"`, `"E"`, or `"M"`.
    pub fn l1_state_str(&self, core: CoreId, block: BlockAddr) -> &'static str {
        match self.l1s[core as usize].peek(&block) {
            None => "I",
            Some(L1State::Shared) => "S",
            Some(L1State::Exclusive) => "E",
            Some(L1State::Modified) => "M",
        }
    }

    /// Whether `core`'s L1 holds `block` in any valid state (side-effect
    /// free — no LRU touch). The observability layer uses this to classify
    /// a NACK as an *in-cache* conflict (the nacker's L1 still holds the
    /// block, so a cache-resident HTM would have caught it too) versus a
    /// *decoupled* conflict carried only by signatures and sticky states.
    pub fn l1_contains(&self, core: CoreId, block: BlockAddr) -> bool {
        self.l1s[core as usize].peek(&block).is_some()
    }

    /// The directory entry for `block`, if its L2 line is resident.
    pub fn dir_entry(&self, block: BlockAddr) -> Option<DirEntry> {
        let bank = self.bank_of(block);
        self.l2_banks[bank as usize].peek(&block).map(|l| l.dir.clone())
    }

    /// Whether the directory information for `block` was lost to an L2
    /// eviction of transactional data (broadcast required).
    pub fn dir_is_lost(&self, block: BlockAddr) -> bool {
        self.lost.contains(&block)
    }

    #[inline]
    fn bank_of(&self, block: BlockAddr) -> u16 {
        (block.0 % self.config.n_banks as u64) as u16
    }

    /// Grid node hosting a core. Cores and banks are laid out round-robin
    /// over the mesh.
    #[inline]
    fn core_node(&self, core: CoreId) -> usize {
        core as usize % self.grid.nodes()
    }

    #[inline]
    fn bank_node(&self, bank: u16) -> usize {
        bank as usize % self.grid.nodes()
    }

    fn net(&self, a: usize, b: usize) -> Cycle {
        self.grid.latency(a, b)
    }

    /// The chip hosting a core (cores are partitioned contiguously).
    #[inline]
    fn chip_of_core(&self, core: CoreId) -> u8 {
        (core / (self.config.n_cores / self.config.n_chips as u16)) as u8
    }

    /// The chip hosting an L2 bank.
    #[inline]
    fn chip_of_bank(&self, bank: u16) -> u8 {
        (bank / (self.config.n_banks / self.config.n_chips as u16)) as u8
    }

    /// Inter-chip crossing penalty between a core and a bank, with message
    /// accounting (paper §7 "Multiple CMPs": a point-to-point network
    /// connects the chips).
    fn interchip_core_bank(&mut self, core: CoreId, bank: u16) -> Cycle {
        if self.chip_of_core(core) != self.chip_of_bank(bank) {
            self.stats.interchip_messages.inc();
            self.config.interchip_link
        } else {
            Cycle::ZERO
        }
    }

    /// Inter-chip crossing penalty between two cores.
    fn interchip_core_core(&mut self, a: CoreId, b: CoreId) -> Cycle {
        if self.chip_of_core(a) != self.chip_of_core(b) {
            self.stats.interchip_messages.inc();
            self.config.interchip_link
        } else {
            Cycle::ZERO
        }
    }

    /// Worst-case crossing penalty for a broadcast originating at `core`
    /// (zero on a single chip; one crossing otherwise — fan-out crossings
    /// happen in parallel but each costs a message).
    fn interchip_broadcast(&mut self, core: CoreId) -> Cycle {
        if self.config.n_chips > 1 {
            self.stats
                .interchip_messages
                .add(self.config.n_chips as u64 - 1);
            let _ = core;
            self.config.interchip_link
        } else {
            Cycle::ZERO
        }
    }

    /// One memory access by thread context `requester` to `block`.
    ///
    /// Resolves the full coherence transaction atomically (see crate docs)
    /// and returns either completion (with total latency) or a NACK (no
    /// state changed). Signature checks are delegated to `oracle`.
    ///
    /// # Panics
    ///
    /// Panics if `requester` is out of range for the configuration.
    pub fn access(
        &mut self,
        requester: CtxId,
        kind: AccessKind,
        block: BlockAddr,
        oracle: &dyn ConflictOracle,
    ) -> AccessOutcome {
        assert!(requester < self.config.n_ctxs(), "ctx out of range");
        let core = self.config.core_of(requester);
        let lat = self.config.latency;

        // ---- L1 lookup -------------------------------------------------
        let l1_state = self.l1s[core as usize].peek(&block).copied();
        let l1_would_hit = matches!(
            (kind, l1_state),
            (AccessKind::Load, Some(_))
                | (AccessKind::Store, Some(L1State::Modified | L1State::Exclusive))
        );
        // An L1 hit issues no coherence request, but LogTM-SE checks
        // signatures on *every* reference, not just misses: a same-core SMT
        // sibling's transaction must still isolate the line. Without this
        // check the hit path would bypass conflict detection entirely
        // whenever two contexts share an L1.
        if l1_would_hit {
            if let Some(nacker) = oracle.check_core(core, kind, block, requester) {
                self.stats.nacks.inc();
                return AccessOutcome::Nacked {
                    latency: lat.l1_hit,
                    nacker,
                };
            }
        }
        match (kind, l1_state) {
            (AccessKind::Load, Some(_)) => {
                self.l1s[core as usize].get(&block); // LRU touch
                self.stats.l1_hits.inc();
                return AccessOutcome::Done(AccessDone {
                    latency: lat.l1_hit,
                    l1_hit: true,
                    source: DataSource::L1,
                });
            }
            (AccessKind::Store, Some(L1State::Modified)) => {
                self.l1s[core as usize].get(&block);
                self.stats.l1_hits.inc();
                return AccessOutcome::Done(AccessDone {
                    latency: lat.l1_hit,
                    l1_hit: true,
                    source: DataSource::L1,
                });
            }
            (AccessKind::Store, Some(L1State::Exclusive)) => {
                // Silent E→M upgrade.
                *self.l1s[core as usize].get_mut(&block).unwrap() = L1State::Modified;
                self.stats.l1_hits.inc();
                return AccessOutcome::Done(AccessDone {
                    latency: lat.l1_hit,
                    l1_hit: true,
                    source: DataSource::L1,
                });
            }
            // Store to S is an upgrade miss; anything absent is a miss.
            _ => {}
        }

        self.stats.l1_misses.inc();
        if self.config.coherence == CoherenceKind::SnoopingMesi {
            return self.access_snooping(requester, core, kind, block, oracle);
        }
        self.stats.messages.inc(); // the request itself
        let bank = self.bank_of(block);
        let crossing = self.interchip_core_bank(core, bank);
        let req_path = lat.l1_hit + self.net(self.core_node(core), self.bank_node(bank)) + crossing;
        let base = req_path + lat.directory;

        // ---- Lost directory: broadcast signature checks -----------------
        if self.lost.contains(&block) {
            return self.access_lost_block(requester, core, kind, block, bank, base, oracle);
        }

        // ---- Normal directory path --------------------------------------
        let entry = self.l2_banks[bank as usize].peek(&block).map(|l| l.dir.clone());
        match entry {
            None => self.access_l2_miss(requester, core, kind, block, bank, base, oracle),
            Some(dir) => match kind {
                AccessKind::Load => {
                    self.access_gets(requester, core, block, bank, base, dir, oracle)
                }
                AccessKind::Store => {
                    self.access_getm(requester, core, block, bank, base, dir, oracle)
                }
            },
        }
    }

    /// A miss under §7 snooping coherence: broadcast the request, gather
    /// the wired-OR owner/shared/nack responses, and resolve. Conflict
    /// detection needs no sticky states: every broadcast reaches every
    /// signature.
    #[allow(clippy::too_many_arguments)] // mirrors the request message fields
    fn access_snooping(
        &mut self,
        requester: CtxId,
        core: CoreId,
        kind: AccessKind,
        block: BlockAddr,
        oracle: &dyn ConflictOracle,
    ) -> AccessOutcome {
        let lat = self.config.latency;
        self.stats.messages.add(self.config.n_cores as u64); // bus fan-out
        let me = self.core_node(core);
        let crossing = self.interchip_broadcast(core);
        let bcast = self.grid.broadcast_latency(me) + crossing;
        let base = lat.l1_hit + bcast + lat.remote_probe;

        // Wired-OR nack signal: any conflicting signature vetoes.
        if let Some(nacker) = self.check_cores_except(core, kind, block, requester, oracle) {
            self.stats.nacks.inc();
            return AccessOutcome::Nacked {
                latency: base + bcast,
                nacker,
            };
        }

        // Owner signal: some other L1 holds the block M or E.
        let owner = (0..self.config.n_cores)
            .filter(|&c| c != core)
            .find(|&c| {
                matches!(
                    self.l1s[c as usize].peek(&block),
                    Some(L1State::Modified) | Some(L1State::Exclusive)
                )
            });
        let shared = (0..self.config.n_cores)
            .filter(|&c| c != core)
            .any(|c| self.l1s[c as usize].contains(&block));

        match kind {
            AccessKind::Load => {
                if let Some(o) = owner {
                    // Cache-to-cache transfer; owner downgrades to S.
                    self.stats.forwards.inc();
                    self.stats.messages.inc();
                    *self.l1s[o as usize].get_mut(&block).unwrap() = L1State::Shared;
                    self.l1_install(core, block, L1State::Shared, oracle);
                    return AccessOutcome::Done(AccessDone {
                        latency: base + self.net(self.core_node(o), me),
                        l1_hit: false,
                        source: DataSource::RemoteL1,
                    });
                }
                let grant = if shared {
                    L1State::Shared
                } else {
                    L1State::Exclusive
                };
                let (latency, source) = self.snoop_fill(block, base, oracle);
                self.l1_install(core, block, grant, oracle);
                AccessOutcome::Done(AccessDone {
                    latency,
                    l1_hit: false,
                    source,
                })
            }
            AccessKind::Store => {
                // Invalidate every remote copy (no conflicts were vetoed).
                let had_owner_copy = owner.is_some();
                for c in 0..self.config.n_cores {
                    if c != core && self.l1s[c as usize].remove(&block).is_some() {
                        self.stats.invalidations.inc();
                    }
                }
                let was_upgrade = self.l1s[core as usize].contains(&block);
                if was_upgrade {
                    *self.l1s[core as usize].get_mut(&block).unwrap() = L1State::Modified;
                } else {
                    self.l1_install(core, block, L1State::Modified, oracle);
                }
                if had_owner_copy {
                    let o = owner.expect("owner checked");
                    self.stats.forwards.inc();
                    return AccessOutcome::Done(AccessDone {
                        latency: base + self.net(self.core_node(o), me),
                        l1_hit: false,
                        source: DataSource::RemoteL1,
                    });
                }
                if was_upgrade {
                    return AccessOutcome::Done(AccessDone {
                        latency: base,
                        l1_hit: false,
                        source: DataSource::L1,
                    });
                }
                let (latency, source) = self.snoop_fill(block, base, oracle);
                AccessOutcome::Done(AccessDone {
                    latency,
                    l1_hit: false,
                    source,
                })
            }
        }
    }

    /// Data fill for a snooping miss with no L1 owner: from the shared L2
    /// if resident, else DRAM (allocating the L2 line).
    fn snoop_fill(
        &mut self,
        block: BlockAddr,
        base: Cycle,
        oracle: &dyn ConflictOracle,
    ) -> (Cycle, DataSource) {
        let lat = self.config.latency;
        let bank = self.bank_of(block);
        if self.l2_banks[bank as usize].get(&block).is_some() {
            self.stats.l2_hits.inc();
            (base + lat.l2_access, DataSource::L2)
        } else {
            self.count_dram(block);
            self.l2_install(block, DirEntry::new(), oracle);
            (base + lat.l2_access + lat.dram, DataSource::Dram)
        }
    }

    /// GETS/GETM to a block whose directory state was lost: broadcast to all
    /// L1s for signature checks, rebuild on success (paper §5).
    #[allow(clippy::too_many_arguments)] // mirrors the request message fields
    fn access_lost_block(
        &mut self,
        requester: CtxId,
        core: CoreId,
        kind: AccessKind,
        block: BlockAddr,
        bank: u16,
        base: Cycle,
        oracle: &dyn ConflictOracle,
    ) -> AccessOutcome {
        let lat = self.config.latency;
        self.stats.lost_dir_broadcasts.inc();
        let crossing = self.interchip_broadcast(core);
        let bcast = self.grid.broadcast_latency(self.bank_node(bank)) + crossing;
        self.stats.messages.add(self.config.n_cores as u64); // fan-out
        // Check every other core's signatures (the requester's own core is
        // covered by the TM layer's same-core checks).
        if let Some(nacker) = self.check_cores_except(core, kind, block, requester, oracle) {
            self.stats.nacks.inc();
            let nack_core = self.config.core_of(nacker);
            let latency = base
                + bcast
                + lat.remote_probe
                + self.net(self.core_node(nack_core), self.core_node(core));
            return AccessOutcome::Nacked { latency, nacker };
        }
        // Success: refetch from DRAM and rebuild the directory from the
        // broadcast responses (paper §5: "the L2 rebuilds the directory
        // state by recording the L1s' responses"). Cores whose signatures
        // still cover the block — e.g. read-set entries that do not
        // conflict with a GETS — are recorded as *sticky sharers* so future
        // requests keep forwarding signature checks to them; granting the
        // requester E here would let a silent E→M upgrade skip those
        // checks and break isolation.
        self.lost.remove(&block);
        self.count_dram(block);
        let mut dir = DirEntry::new();
        let mut covered_any = false;
        for c in 0..self.config.n_cores {
            if c != core && oracle.block_is_transactional_hw(c, block) {
                dir.add_sharer(c);
                dir.sticky = true;
                covered_any = true;
            }
        }
        let l1_state = match kind {
            AccessKind::Load if covered_any => {
                dir.add_sharer(core);
                L1State::Shared
            }
            AccessKind::Load => {
                dir.owner = Some(core);
                L1State::Exclusive
            }
            AccessKind::Store => {
                // A store that passed the checks may still see cross-ASID
                // aliasing coverage; keep those cores as sticky sharers so
                // later requests re-check them.
                dir.owner = Some(core);
                L1State::Modified
            }
        };
        self.l2_install(block, dir, oracle);
        self.l1_install(core, block, l1_state, oracle);
        let latency = base
            + bcast + bcast // out and back, worst case
            + lat.remote_probe
            + lat.l2_access
            + lat.dram
            + self.net(self.bank_node(bank), self.core_node(core));
        AccessOutcome::Done(AccessDone {
            latency,
            l1_hit: false,
            source: DataSource::Dram,
        })
    }

    /// Plain L2 miss (no directory entry, nothing lost): fetch from DRAM.
    #[allow(clippy::too_many_arguments)] // mirrors the request message fields
    fn access_l2_miss(
        &mut self,
        _requester: CtxId,
        core: CoreId,
        kind: AccessKind,
        block: BlockAddr,
        bank: u16,
        base: Cycle,
        oracle: &dyn ConflictOracle,
    ) -> AccessOutcome {
        let lat = self.config.latency;
        self.count_dram(block);
        let dir = DirEntry::owned_by(core);
        self.l2_install(block, dir, oracle);
        let l1_state = match kind {
            AccessKind::Load => L1State::Exclusive,
            AccessKind::Store => L1State::Modified,
        };
        self.l1_install(core, block, l1_state, oracle);
        let latency =
            base + lat.l2_access + lat.dram + self.net(self.bank_node(bank), self.core_node(core));
        AccessOutcome::Done(AccessDone {
            latency,
            l1_hit: false,
            source: DataSource::Dram,
        })
    }

    /// GETS with a live directory entry.
    #[allow(clippy::too_many_arguments)] // mirrors the request message fields
    fn access_gets(
        &mut self,
        requester: CtxId,
        core: CoreId,
        block: BlockAddr,
        bank: u16,
        base: Cycle,
        dir: DirEntry,
        oracle: &dyn ConflictOracle,
    ) -> AccessOutcome {
        let lat = self.config.latency;

        // Directory rebuilt after an earlier NACK: keep checking everyone
        // until a request succeeds.
        if dir.check_all {
            if let Some(nacker) = self.check_cores_except(core, AccessKind::Load, block, requester, oracle)
            {
                return self.nack(core, bank, base, nacker);
            }
        }

        match dir.owner {
            Some(owner) if owner != core => {
                // Forward to the exclusive owner for a write-signature check.
                self.stats.forwards.inc();
                self.stats.messages.add(2); // fwd + response
                if let Some(nacker) =
                    oracle.check_core(owner, AccessKind::Load, block, requester)
                {
                    return self.nack_via(core, bank, owner, base, nacker);
                }
                let owner_has_it = self.l1s[owner as usize].contains(&block);
                let mut new_dir = dir;
                new_dir.owner = None;
                new_dir.add_sharer(core);
                new_dir.check_all = false;
                let (latency, source) = if owner_has_it {
                    // Downgrade M/E → S with an implicit writeback.
                    *self.l1s[owner as usize].get_mut(&block).unwrap() = L1State::Shared;
                    new_dir.add_sharer(owner);
                    (
                        base + self.fwd_path(core, bank, owner) ,
                        DataSource::RemoteL1,
                    )
                } else {
                    // Sticky owner: no data there; it stays a (sticky)
                    // sharer so future GETMs still check its signature.
                    new_dir.add_sharer(owner);
                    (
                        base + self.fwd_path(core, bank, owner)
                            + lat.l2_access,
                        DataSource::L2,
                    )
                };
                self.set_dir(block, new_dir);
                self.l1_install(core, block, L1State::Shared, oracle);
                AccessOutcome::Done(AccessDone {
                    latency,
                    l1_hit: false,
                    source,
                })
            }
            Some(_owner_is_self) if dir.owner == Some(core) => {
                // We own it but evicted it (possibly sticky): refill from L2.
                let mut new_dir = dir;
                new_dir.sticky = false;
                new_dir.check_all = false;
                self.set_dir(block, new_dir);
                self.l1_install(core, block, L1State::Exclusive, oracle);
                self.stats.l2_hits.inc();
                let latency = base
                    + lat.l2_access
                    + self.net(self.bank_node(bank), self.core_node(core));
                AccessOutcome::Done(AccessDone {
                    latency,
                    l1_hit: false,
                    source: DataSource::L2,
                })
            }
            _ => {
                // Shared or uncached: data from L2.
                let mut new_dir = dir;
                new_dir.check_all = false;
                if new_dir.is_uncached() {
                    new_dir.owner = Some(core); // sole copy ⇒ E
                } else {
                    new_dir.add_sharer(core);
                }
                let grant = if new_dir.owner == Some(core) {
                    L1State::Exclusive
                } else {
                    L1State::Shared
                };
                self.set_dir(block, new_dir);
                self.l1_install(core, block, grant, oracle);
                self.stats.l2_hits.inc();
                let latency = base
                    + lat.l2_access
                    + self.net(self.bank_node(bank), self.core_node(core));
                AccessOutcome::Done(AccessDone {
                    latency,
                    l1_hit: false,
                    source: DataSource::L2,
                })
            }
        }
    }

    /// GETM with a live directory entry.
    #[allow(clippy::too_many_arguments)] // mirrors the request message fields
    fn access_getm(
        &mut self,
        requester: CtxId,
        core: CoreId,
        block: BlockAddr,
        bank: u16,
        base: Cycle,
        dir: DirEntry,
        oracle: &dyn ConflictOracle,
    ) -> AccessOutcome {
        let lat = self.config.latency;

        if dir.check_all {
            if let Some(nacker) =
                self.check_cores_except(core, AccessKind::Store, block, requester, oracle)
            {
                return self.nack(core, bank, base, nacker);
            }
        }

        // Every core the directory names (owner + sharers, possibly sticky)
        // gets a signature check before any invalidation happens.
        let targets = dir.forward_targets(core);
        for t in targets {
            self.stats.messages.inc();
            if let Some(nacker) = oracle.check_core(t, AccessKind::Store, block, requester) {
                self.stats.forwards.inc();
                return self.nack_via(core, bank, t, base, nacker);
            }
        }

        // No conflicts: invalidate every remote copy and take ownership.
        let mut had_remote_owner_copy = false;
        for t in targets {
            if self.l1s[t as usize].remove(&block).is_some() {
                self.stats.invalidations.inc();
                if dir.owner == Some(t) {
                    had_remote_owner_copy = true;
                }
            }
        }
        let was_upgrade = self.l1s[core as usize].contains(&block);
        let mut new_dir = DirEntry::owned_by(core);
        new_dir.check_all = false;
        self.set_dir(block, new_dir);
        if was_upgrade {
            *self.l1s[core as usize].get_mut(&block).unwrap() = L1State::Modified;
        } else {
            self.l1_install(core, block, L1State::Modified, oracle);
        }

        let worst_target = targets
            .map(|t| self.fwd_path(core, bank, t))
            .max()
            .unwrap_or(Cycle::ZERO);
        let (latency, source) = if had_remote_owner_copy {
            (base + worst_target, DataSource::RemoteL1)
        } else if was_upgrade && targets.is_empty() {
            (base + self.net(self.bank_node(bank), self.core_node(core)), DataSource::L1)
        } else {
            self.stats.l2_hits.inc();
            (
                base + worst_target.max(
                    lat.l2_access + self.net(self.bank_node(bank), self.core_node(core)),
                ),
                DataSource::L2,
            )
        };
        AccessOutcome::Done(AccessDone {
            latency,
            l1_hit: false,
            source,
        })
    }

    /// Records a DRAM access, classifying it as cold (first touch ever) or
    /// a capacity/conflict refetch.
    fn count_dram(&mut self, block: BlockAddr) {
        self.stats.dram_accesses.inc();
        if self.touched.insert(block) {
            self.stats.cold_misses.inc();
        }
    }

    /// Latency of bank → target probe → requester, including inter-chip
    /// crossings.
    fn fwd_path(&mut self, core: CoreId, bank: u16, target: CoreId) -> Cycle {
        let to_target = self.interchip_core_bank(target, bank);
        let back = self.interchip_core_core(target, core);
        self.net(self.bank_node(bank), self.core_node(target))
            + self.config.latency.remote_probe
            + self.net(self.core_node(target), self.core_node(core))
            + to_target
            + back
    }

    fn nack(&mut self, core: CoreId, bank: u16, base: Cycle, nacker: CtxId) -> AccessOutcome {
        let nack_core = self.config.core_of(nacker);
        self.nack_via(core, bank, nack_core, base, nacker)
    }

    fn nack_via(
        &mut self,
        core: CoreId,
        bank: u16,
        via: CoreId,
        base: Cycle,
        nacker: CtxId,
    ) -> AccessOutcome {
        self.stats.nacks.inc();
        self.stats.messages.inc();
        let latency = base + self.fwd_path(core, bank, via);
        AccessOutcome::Nacked { latency, nacker }
    }

    fn check_cores_except(
        &self,
        except_core: CoreId,
        kind: AccessKind,
        block: BlockAddr,
        requester: CtxId,
        oracle: &dyn ConflictOracle,
    ) -> Option<CtxId> {
        (0..self.config.n_cores)
            .filter(|&c| c != except_core)
            .find_map(|c| oracle.check_core(c, kind, block, requester))
    }

    fn set_dir(&mut self, block: BlockAddr, dir: DirEntry) {
        let bank = self.bank_of(block);
        if let Some(line) = self.l2_banks[bank as usize].get_mut(&block) {
            line.dir = dir;
        } else {
            // Entry must exist when called from the hit paths; for rebuilds
            // l2_install is used instead.
            unreachable!("set_dir on a non-resident block");
        }
    }

    /// Installs a block in an L1, handling the eviction side effects
    /// (sticky directory, victimization stats, overflow events).
    fn l1_install(
        &mut self,
        core: CoreId,
        block: BlockAddr,
        state: L1State,
        oracle: &dyn ConflictOracle,
    ) {
        if let Some((victim, victim_state)) = self.l1s[core as usize].insert(block, state) {
            self.handle_l1_eviction(core, victim, victim_state, oracle);
        }
    }

    fn handle_l1_eviction(
        &mut self,
        core: CoreId,
        victim: BlockAddr,
        victim_state: L1State,
        oracle: &dyn ConflictOracle,
    ) {
        self.stats.l1_evictions.inc();
        let tx_hw = oracle.block_is_transactional_hw(core, victim);
        let tx_exact = oracle.block_is_transactional_exact(core, victim);
        if tx_exact {
            self.stats.l1_tx_evictions_exact.inc();
        }
        if tx_hw {
            self.stats.l1_tx_evictions_hw.inc();
        }

        if self.config.coherence == CoherenceKind::SnoopingMesi {
            // Victimization has no effect on conflict detection (every
            // request is broadcast anyway, §7); just write dirty data home.
            if matches!(victim_state, L1State::Modified) {
                let bank = self.bank_of(victim);
                self.l2_banks[bank as usize].insert(victim, L2Line { dir: DirEntry::new() });
                self.stats.messages.inc();
            }
            return;
        }

        if tx_hw && self.config.sticky_enabled {
            // Sticky: leave the directory unchanged so requests keep
            // forwarding here for signature checks (paper §3.1/§5).
            let bank = self.bank_of(victim);
            if let Some(line) = self.l2_banks[bank as usize].get_mut(&victim) {
                line.dir.sticky = true;
            }
            return;
        }

        if tx_hw && !self.config.sticky_enabled {
            // Ablation A2: coverage lost; the TM layer must abort.
            self.overflow_events.push(OverflowEvent {
                core,
                block: victim,
            });
        }

        // Clean (non-sticky) eviction: M writes back, E sends the pointer
        // update control message, S is silent (paper §5).
        let bank = self.bank_of(victim);
        if let Some(line) = self.l2_banks[bank as usize].get_mut(&victim) {
            match victim_state {
                L1State::Modified | L1State::Exclusive => {
                    if line.dir.owner == Some(core) {
                        line.dir.owner = None;
                    }
                    self.stats.messages.inc(); // writeback / pointer update
                }
                L1State::Shared => { /* silent */ }
            }
        }
    }

    /// Installs an L2 line (with directory entry), handling L2 eviction:
    /// inclusion invalidations, lost-directory marking, victimization stats.
    fn l2_install(&mut self, block: BlockAddr, dir: DirEntry, oracle: &dyn ConflictOracle) {
        let bank = self.bank_of(block);
        if let Some((victim, _line)) = self.l2_banks[bank as usize].insert(block, L2Line { dir }) {
            self.handle_l2_eviction(victim, oracle);
        }
    }

    fn handle_l2_eviction(&mut self, victim: BlockAddr, oracle: &dyn ConflictOracle) {
        self.stats.l2_evictions.inc();
        if self.config.coherence == CoherenceKind::SnoopingMesi {
            // Non-inclusive under snooping: L1 copies stay valid (the bus,
            // not the L2, is the point of coherence), and no directory
            // state exists to lose.
            return;
        }
        // Inclusion: invalidate all L1 copies.
        for c in 0..self.config.n_cores {
            self.l1s[c as usize].remove(&victim);
        }
        let mut tx_hw_any = false;
        let mut tx_exact_any = false;
        for c in 0..self.config.n_cores {
            if oracle.block_is_transactional_hw(c, victim) {
                tx_hw_any = true;
                if !self.config.sticky_enabled {
                    self.overflow_events.push(OverflowEvent {
                        core: c,
                        block: victim,
                    });
                }
            }
            if oracle.block_is_transactional_exact(c, victim) {
                tx_exact_any = true;
            }
        }
        if tx_exact_any {
            self.stats.l2_tx_evictions_exact.inc();
        }
        if tx_hw_any {
            self.stats.l2_tx_evictions_hw.inc();
            if self.config.sticky_enabled {
                // Directory info lost; subsequent misses must broadcast.
                self.lost.insert(victim);
            }
        }
    }

    /// Marks `block` as having unknown directory coverage: the next access
    /// broadcasts signature checks to all L1s and rebuilds the directory.
    /// Used by the OS after relocating a page whose new physical blocks are
    /// covered by rehashed signatures (paper §4.2) — without this, a cold
    /// miss would grant exclusive ownership without consulting anyone.
    pub fn mark_block_lost(&mut self, block: BlockAddr) {
        self.lost.insert(block);
    }

    /// Invalidates every cached copy (L1s and L2) of `block` without
    /// writeback side effects — the OS's cache shoot-down when a physical
    /// page is repurposed.
    pub fn invalidate_block_everywhere(&mut self, block: BlockAddr) {
        for c in 0..self.config.n_cores {
            self.l1s[c as usize].remove(&block);
        }
        let bank = self.bank_of(block);
        self.l2_banks[bank as usize].remove(&block);
    }

    /// Marks the directory entry for `block` as requiring signature checks
    /// on all subsequent requests (used after a rebuilt-directory request is
    /// NACKed, paper §5). No-op if the block is not L2-resident.
    pub fn set_check_all(&mut self, block: BlockAddr) {
        let bank = self.bank_of(block);
        if let Some(line) = self.l2_banks[bank as usize].get_mut(&block) {
            line.dir.check_all = true;
        }
    }

    /// Total L1-resident blocks across all cores (diagnostics).
    pub fn l1_resident_blocks(&self) -> usize {
        self.l1s.iter().map(|c| c.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::NullOracle;
    use std::cell::RefCell;

    /// A programmable oracle for protocol tests.
    #[derive(Default)]
    struct FakeOracle {
        /// (core, block) pairs whose signature NACKs stores.
        write_conflicts: Vec<(u16, u64, u32)>, // core, block, nacking ctx
        /// (core, block) pairs whose signature NACKs loads (write-set hits).
        read_conflicts: Vec<(u16, u64, u32)>,
        /// Blocks considered hw-transactional per core.
        tx_blocks: Vec<(u16, u64)>,
        checks: RefCell<u64>,
    }

    impl ConflictOracle for FakeOracle {
        fn check_core(
            &self,
            core: u16,
            kind: AccessKind,
            block: BlockAddr,
            requester_ctx: u32,
        ) -> Option<u32> {
            *self.checks.borrow_mut() += 1;
            let list = match kind {
                AccessKind::Load => &self.read_conflicts,
                AccessKind::Store => &self.write_conflicts,
            };
            list.iter()
                .find(|&&(c, b, n)| c == core && b == block.0 && n != requester_ctx)
                .map(|&(_, _, n)| n)
        }

        fn block_is_transactional_hw(&self, core: u16, block: BlockAddr) -> bool {
            self.tx_blocks.iter().any(|&(c, b)| c == core && b == block.0)
        }

        fn block_is_transactional_exact(&self, core: u16, block: BlockAddr) -> bool {
            self.block_is_transactional_hw(core, block)
        }
    }

    fn sys() -> MemorySystem {
        MemorySystem::new(MemConfig::small_for_tests())
    }

    #[test]
    fn miss_classification_separates_cold_from_refetch() {
        let mut m = sys();
        let o = NullOracle;
        let c0 = m.config().ctx(0, 0);
        // First touch: cold. Evict it from the tiny L2 (bank 0, set 0 via
        // blocks 0/32/64), then refetch: DRAM again but NOT cold.
        m.access(c0, AccessKind::Load, BlockAddr(0), &o);
        m.access(c0, AccessKind::Load, BlockAddr(32), &o);
        m.access(c0, AccessKind::Load, BlockAddr(64), &o);
        m.access(c0, AccessKind::Load, BlockAddr(0), &o); // refetch
        assert_eq!(m.stats().cold_misses.get(), 3);
        assert!(m.stats().dram_accesses.get() >= 4);
        assert!(m.stats().warm_dram_refetches() >= 1);
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut m = sys();
        let ctx = m.config().ctx(0, 0);
        let o = NullOracle;
        let a = m.access(ctx, AccessKind::Load, BlockAddr(5), &o);
        let b = m.access(ctx, AccessKind::Load, BlockAddr(5), &o);
        match (a, b) {
            (AccessOutcome::Done(a), AccessOutcome::Done(b)) => {
                assert!(!a.l1_hit);
                assert_eq!(a.source, DataSource::Dram);
                assert!(b.l1_hit);
                assert_eq!(b.latency, Cycle(1));
            }
            _ => panic!("unexpected NACK"),
        }
        assert_eq!(m.stats().dram_accesses.get(), 1);
        assert_eq!(m.stats().l1_hits.get(), 1);
    }

    #[test]
    fn load_grants_exclusive_then_silent_store_upgrade() {
        let mut m = sys();
        let ctx = m.config().ctx(0, 0);
        let o = NullOracle;
        m.access(ctx, AccessKind::Load, BlockAddr(7), &o);
        assert_eq!(m.l1_state_str(0, BlockAddr(7)), "E");
        let s = m.access(ctx, AccessKind::Store, BlockAddr(7), &o);
        assert!(s.is_done());
        assert_eq!(s.latency(), Cycle(1), "E→M upgrade is an L1 hit");
        assert_eq!(m.l1_state_str(0, BlockAddr(7)), "M");
    }

    #[test]
    fn two_readers_share() {
        let mut m = sys();
        let o = NullOracle;
        let c0 = m.config().ctx(0, 0);
        let c1 = m.config().ctx(1, 0);
        m.access(c0, AccessKind::Load, BlockAddr(9), &o);
        m.access(c1, AccessKind::Load, BlockAddr(9), &o);
        assert_eq!(m.l1_state_str(0, BlockAddr(9)), "S");
        assert_eq!(m.l1_state_str(1, BlockAddr(9)), "S");
        let d = m.dir_entry(BlockAddr(9)).unwrap();
        assert!(d.is_sharer(0) && d.is_sharer(1));
        assert_eq!(d.owner, None);
    }

    #[test]
    fn writer_invalidates_sharers() {
        let mut m = sys();
        let o = NullOracle;
        let c0 = m.config().ctx(0, 0);
        let c1 = m.config().ctx(1, 0);
        let c2 = m.config().ctx(2, 0);
        m.access(c0, AccessKind::Load, BlockAddr(9), &o);
        m.access(c1, AccessKind::Load, BlockAddr(9), &o);
        let w = m.access(c2, AccessKind::Store, BlockAddr(9), &o);
        assert!(w.is_done());
        assert_eq!(m.l1_state_str(0, BlockAddr(9)), "I");
        assert_eq!(m.l1_state_str(1, BlockAddr(9)), "I");
        assert_eq!(m.l1_state_str(2, BlockAddr(9)), "M");
        let d = m.dir_entry(BlockAddr(9)).unwrap();
        assert_eq!(d.owner, Some(2));
        assert_eq!(d.sharer_count(), 0);
        assert!(m.stats().invalidations.get() >= 2);
    }

    #[test]
    fn reader_downgrades_modified_owner() {
        let mut m = sys();
        let o = NullOracle;
        let c0 = m.config().ctx(0, 0);
        let c1 = m.config().ctx(1, 0);
        m.access(c0, AccessKind::Store, BlockAddr(3), &o);
        assert_eq!(m.l1_state_str(0, BlockAddr(3)), "M");
        let r = m.access(c1, AccessKind::Load, BlockAddr(3), &o);
        match r {
            AccessOutcome::Done(d) => assert_eq!(d.source, DataSource::RemoteL1),
            _ => panic!("NACK without transactions"),
        }
        assert_eq!(m.l1_state_str(0, BlockAddr(3)), "S");
        assert_eq!(m.l1_state_str(1, BlockAddr(3)), "S");
    }

    #[test]
    fn store_conflict_nacks_and_preserves_state() {
        let mut m = sys();
        let nacker_ctx = m.config().ctx(0, 0);
        let mut o = FakeOracle::default();
        // Core 0's signature covers block 3 for incoming stores.
        o.write_conflicts.push((0, 3, nacker_ctx));
        let c0 = m.config().ctx(0, 0);
        let c1 = m.config().ctx(1, 0);
        m.access(c0, AccessKind::Load, BlockAddr(3), &o); // core 0 caches it (E)
        let before = m.l1_state_str(0, BlockAddr(3));
        let w = m.access(c1, AccessKind::Store, BlockAddr(3), &o);
        match w {
            AccessOutcome::Nacked { nacker, latency } => {
                assert_eq!(nacker, nacker_ctx);
                assert!(latency > Cycle::ZERO);
            }
            _ => panic!("expected NACK"),
        }
        // No state changed by the NACKed request.
        assert_eq!(m.l1_state_str(0, BlockAddr(3)), before);
        assert_eq!(m.l1_state_str(1, BlockAddr(3)), "I");
        assert_eq!(m.stats().nacks.get(), 1);
    }

    #[test]
    fn l1_hit_consults_oracle_for_smt_sibling_conflicts() {
        let mut m = sys();
        let c00 = m.config().ctx(0, 0);
        let sibling = m.config().ctx(0, 1);
        let mut o = FakeOracle::default();
        m.access(c00, AccessKind::Load, BlockAddr(3), &o);
        assert_eq!(m.l1_state_str(0, BlockAddr(3)), "E");
        // The sibling context's transaction now covers block 3 for both
        // loads and stores. An L1 hit issues no coherence traffic, so this
        // is the only place the conflict can be caught.
        o.read_conflicts.push((0, 3, sibling));
        o.write_conflicts.push((0, 3, sibling));
        let hits_before = m.stats().l1_hits.get();
        let r = m.access(c00, AccessKind::Load, BlockAddr(3), &o);
        assert!(
            matches!(r, AccessOutcome::Nacked { nacker, latency }
                if nacker == sibling && latency == Cycle(1)),
            "L1 load hit must be screened: {r:?}"
        );
        // The NACKed hit recorded no hit and changed no state.
        assert_eq!(m.stats().l1_hits.get(), hits_before);
        assert_eq!(m.l1_state_str(0, BlockAddr(3)), "E");
        // The conflicting context itself may keep accessing its own data
        // (the oracle filters the requester).
        assert!(m.access(sibling, AccessKind::Load, BlockAddr(3), &o).is_done());
        // The silent E→M store upgrade is screened too.
        let w = m.access(c00, AccessKind::Store, BlockAddr(3), &o);
        assert!(matches!(w, AccessOutcome::Nacked { .. }));
        assert_eq!(m.l1_state_str(0, BlockAddr(3)), "E", "upgrade suppressed");
    }

    #[test]
    fn load_conflict_with_remote_write_set_nacks() {
        let mut m = sys();
        let nacker_ctx = m.config().ctx(0, 1);
        let mut o = FakeOracle::default();
        o.read_conflicts.push((0, 3, nacker_ctx));
        let c0 = m.config().ctx(0, 0);
        let c1 = m.config().ctx(1, 0);
        // Core 0 owns the block in M (wrote it transactionally).
        m.access(c0, AccessKind::Store, BlockAddr(3), &o);
        let r = m.access(c1, AccessKind::Load, BlockAddr(3), &o);
        assert!(matches!(r, AccessOutcome::Nacked { nacker, .. } if nacker == nacker_ctx));
    }

    #[test]
    fn sticky_eviction_keeps_directory_and_still_nacks() {
        let mut m = sys();
        let nacker_ctx = m.config().ctx(0, 0);
        let mut o = FakeOracle::default();
        // Core 0's tx wrote block 0; signature NACKs stores AND loads.
        o.write_conflicts.push((0, 0, nacker_ctx));
        o.read_conflicts.push((0, 0, nacker_ctx));
        o.tx_blocks.push((0, 0));
        let c0 = m.config().ctx(0, 0);
        let c1 = m.config().ctx(1, 0);
        m.access(c0, AccessKind::Store, BlockAddr(0), &o);
        assert_eq!(m.dir_entry(BlockAddr(0)).unwrap().owner, Some(0));

        // Force eviction of block 0 from core 0's tiny L1 (4 sets × 2 ways):
        // fill set 0 with two more blocks mapping to it (multiples of 4).
        m.access(c0, AccessKind::Load, BlockAddr(4), &o);
        m.access(c0, AccessKind::Load, BlockAddr(8), &o);
        assert_eq!(m.l1_state_str(0, BlockAddr(0)), "I", "victimized");
        // Sticky: the directory still names core 0 as owner.
        let d = m.dir_entry(BlockAddr(0)).unwrap();
        assert_eq!(d.owner, Some(0));
        assert!(d.sticky);
        assert_eq!(m.stats().l1_tx_evictions_hw.get(), 1);
        assert_eq!(m.stats().l1_tx_evictions_exact.get(), 1);

        // A remote load is still forwarded to core 0 and NACKed by its
        // signature even though the data is gone.
        let r = m.access(c1, AccessKind::Load, BlockAddr(0), &o);
        assert!(matches!(r, AccessOutcome::Nacked { nacker, .. } if nacker == nacker_ctx));
    }

    #[test]
    fn sticky_owner_serves_clean_block_from_l2() {
        let mut m = sys();
        let mut o = FakeOracle::default();
        // Block is transactional (gets sticky treatment on eviction) but the
        // signature does NOT conflict with loads (only in read-set, say).
        o.tx_blocks.push((0, 0));
        let c0 = m.config().ctx(0, 0);
        let c1 = m.config().ctx(1, 0);
        m.access(c0, AccessKind::Store, BlockAddr(0), &o);
        m.access(c0, AccessKind::Load, BlockAddr(4), &o);
        m.access(c0, AccessKind::Load, BlockAddr(8), &o);
        assert!(m.dir_entry(BlockAddr(0)).unwrap().sticky);

        // Remote load: forwarded, no conflict, data supplied by L2, and the
        // sticky owner remains a sharer so future GETMs still check it.
        let r = m.access(c1, AccessKind::Load, BlockAddr(0), &o);
        match r {
            AccessOutcome::Done(d) => assert_eq!(d.source, DataSource::L2),
            _ => panic!("expected clean completion"),
        }
        let d = m.dir_entry(BlockAddr(0)).unwrap();
        assert_eq!(d.owner, None);
        assert!(d.is_sharer(0), "sticky evictor still checked");
        assert!(d.is_sharer(1));
    }

    #[test]
    fn non_transactional_eviction_cleans_directory() {
        let mut m = sys();
        let o = NullOracle;
        let c0 = m.config().ctx(0, 0);
        m.access(c0, AccessKind::Store, BlockAddr(0), &o);
        m.access(c0, AccessKind::Load, BlockAddr(4), &o);
        m.access(c0, AccessKind::Load, BlockAddr(8), &o);
        assert_eq!(m.l1_state_str(0, BlockAddr(0)), "I");
        let d = m.dir_entry(BlockAddr(0)).unwrap();
        assert_eq!(d.owner, None, "M eviction writes back and clears owner");
        assert!(!d.sticky);
    }

    #[test]
    fn l2_eviction_of_transactional_block_forces_broadcast() {
        let mut m = sys();
        let mut o = FakeOracle::default();
        o.tx_blocks.push((0, 0));
        let c0 = m.config().ctx(0, 0);
        m.access(c0, AccessKind::Store, BlockAddr(0), &o);
        // The tiny L2 bank (16 sets × 2 ways, 2 banks) maps block b to bank
        // b%2, set (b/?)… fill bank 0's set for block 0: blocks ≡ 0 (mod 2)
        // hit bank 0; within the bank, set = block & 15. Blocks 32, 64 share
        // set 0 of bank 0 with block 0.
        m.access(c0, AccessKind::Load, BlockAddr(32), &o);
        m.access(c0, AccessKind::Load, BlockAddr(64), &o);
        assert!(m.dir_is_lost(BlockAddr(0)), "directory info lost");
        assert_eq!(m.stats().l2_tx_evictions_hw.get(), 1);

        // Next access must broadcast; no conflicts → rebuilt.
        let c1 = m.config().ctx(1, 0);
        let r = m.access(c1, AccessKind::Load, BlockAddr(0), &o);
        assert!(r.is_done());
        assert!(!m.dir_is_lost(BlockAddr(0)));
        assert!(m.stats().lost_dir_broadcasts.get() >= 1);
    }

    #[test]
    fn lost_block_broadcast_nack_keeps_lost() {
        let mut m = sys();
        let nacker_ctx = m.config().ctx(0, 0);
        let mut o = FakeOracle::default();
        o.tx_blocks.push((0, 0));
        o.write_conflicts.push((0, 0, nacker_ctx));
        o.read_conflicts.push((0, 0, nacker_ctx));
        let c0 = m.config().ctx(0, 0);
        m.access(c0, AccessKind::Store, BlockAddr(0), &o);
        m.access(c0, AccessKind::Load, BlockAddr(32), &o);
        m.access(c0, AccessKind::Load, BlockAddr(64), &o);
        assert!(m.dir_is_lost(BlockAddr(0)));

        let c1 = m.config().ctx(1, 0);
        let r = m.access(c1, AccessKind::Load, BlockAddr(0), &o);
        assert!(matches!(r, AccessOutcome::Nacked { .. }));
        assert!(m.dir_is_lost(BlockAddr(0)), "stays lost until success");
    }

    #[test]
    fn sticky_disabled_reports_overflow() {
        let mut cfg = MemConfig::small_for_tests();
        cfg.sticky_enabled = false;
        let mut m = MemorySystem::new(cfg);
        let mut o = FakeOracle::default();
        o.tx_blocks.push((0, 0));
        let c0 = m.config().ctx(0, 0);
        m.access(c0, AccessKind::Store, BlockAddr(0), &o);
        m.access(c0, AccessKind::Load, BlockAddr(4), &o);
        m.access(c0, AccessKind::Load, BlockAddr(8), &o);
        let events = m.take_overflow_events();
        assert_eq!(events, vec![OverflowEvent { core: 0, block: BlockAddr(0) }]);
        // Directory cleaned as if non-transactional.
        let d = m.dir_entry(BlockAddr(0)).unwrap();
        assert!(!d.sticky);
        assert_eq!(d.owner, None);
    }

    #[test]
    fn upgrade_from_shared() {
        let mut m = sys();
        let o = NullOracle;
        let c0 = m.config().ctx(0, 0);
        let c1 = m.config().ctx(1, 0);
        m.access(c0, AccessKind::Load, BlockAddr(6), &o);
        m.access(c1, AccessKind::Load, BlockAddr(6), &o);
        assert_eq!(m.l1_state_str(0, BlockAddr(6)), "S");
        let w = m.access(c0, AccessKind::Store, BlockAddr(6), &o);
        assert!(w.is_done());
        assert_eq!(m.l1_state_str(0, BlockAddr(6)), "M");
        assert_eq!(m.l1_state_str(1, BlockAddr(6)), "I");
    }

    #[test]
    fn smt_contexts_share_l1() {
        let mut m = sys();
        let o = NullOracle;
        let t0 = m.config().ctx(0, 0);
        let t1 = m.config().ctx(0, 1);
        m.access(t0, AccessKind::Load, BlockAddr(11), &o);
        let r = m.access(t1, AccessKind::Load, BlockAddr(11), &o);
        match r {
            AccessOutcome::Done(d) => assert!(d.l1_hit, "same-core contexts share the L1"),
            _ => panic!(),
        }
    }

    #[test]
    fn word_store_roundtrip() {
        let mut m = sys();
        m.write_word(WordAddr(100), 77);
        assert_eq!(m.read_word(WordAddr(100)), 77);
        let (old, new) = m.update_word(WordAddr(100), |v| v + 1);
        assert_eq!((old, new), (77, 78));
    }

    #[test]
    fn latencies_reflect_topology() {
        // With paper latencies, a DRAM miss must cost ≥ 500 cycles and an L2
        // hit between 34 and 500.
        let mut cfg = MemConfig::paper_cmp();
        cfg.l1 = CacheConfig::new(4, 2); // shrink for the test
        let mut m = MemorySystem::new(cfg);
        let o = NullOracle;
        let c0 = m.config().ctx(0, 0);
        let c1 = m.config().ctx(1, 0);
        let miss = m.access(c0, AccessKind::Load, BlockAddr(40), &o);
        assert!(miss.latency() >= Cycle(500));
        // Second core reads the same block: remote-L1/L2 path — dearer than
        // an L1 hit (directory + network), well under DRAM.
        let l2 = m.access(c1, AccessKind::Load, BlockAddr(40), &o);
        assert!(l2.latency() >= Cycle(7), "directory + at least one hop");
        assert!(l2.latency() < Cycle(500));
    }

    #[test]
    fn check_all_after_rebuild_nack() {
        let mut m = sys();
        let o = NullOracle;
        let c0 = m.config().ctx(0, 0);
        m.access(c0, AccessKind::Load, BlockAddr(2), &o);
        m.set_check_all(BlockAddr(2));
        assert!(m.dir_entry(BlockAddr(2)).unwrap().check_all);
        // A successful access clears it.
        let c1 = m.config().ctx(1, 0);
        m.access(c1, AccessKind::Load, BlockAddr(2), &o);
        assert!(!m.dir_entry(BlockAddr(2)).unwrap().check_all);
    }

    #[test]
    fn multi_cmp_charges_interchip_crossings() {
        let mut cfg = MemConfig::small_for_tests();
        cfg.n_chips = 2; // cores 0-1 on chip 0, cores 2-3 on chip 1
        let mut single = MemorySystem::new(MemConfig::small_for_tests());
        let mut multi = MemorySystem::new(cfg);
        let o = NullOracle;
        // Core 0 loads a block homed in a bank on the other chip, then core
        // 3 (remote chip) fetches it from core 0's L1.
        let c0 = single.config().ctx(0, 0);
        let c3 = single.config().ctx(3, 0);
        let block = BlockAddr(1); // bank 1 → chip 1 in the 2-chip split
        let s1 = single.access(c0, AccessKind::Store, block, &o).latency();
        let m1 = multi.access(c0, AccessKind::Store, block, &o).latency();
        assert!(m1 > s1, "cross-chip home must cost more ({m1} vs {s1})");
        let s2 = single.access(c3, AccessKind::Load, block, &o).latency();
        let m2 = multi.access(c3, AccessKind::Load, block, &o).latency();
        assert!(m2 > s2, "cross-chip forward must cost more ({m2} vs {s2})");
        assert!(multi.stats().interchip_messages.get() >= 2);
        assert_eq!(single.stats().interchip_messages.get(), 0);
    }

    #[test]
    fn multi_cmp_same_chip_costs_match_single_chip() {
        let mut cfg = MemConfig::small_for_tests();
        cfg.n_chips = 2;
        let mut single = MemorySystem::new(MemConfig::small_for_tests());
        let mut multi = MemorySystem::new(cfg);
        let o = NullOracle;
        let c0 = single.config().ctx(0, 0);
        // Block 0 → bank 0 → chip 0, same as core 0: no crossings.
        let s = single.access(c0, AccessKind::Load, BlockAddr(0), &o).latency();
        let m = multi.access(c0, AccessKind::Load, BlockAddr(0), &o).latency();
        assert_eq!(s, m);
        assert_eq!(multi.stats().interchip_messages.get(), 0);
    }

    #[test]
    fn snooping_basic_coherence() {
        let mut cfg = MemConfig::small_for_tests();
        cfg.coherence = CoherenceKind::SnoopingMesi;
        let mut m = MemorySystem::new(cfg);
        let o = NullOracle;
        let c0 = m.config().ctx(0, 0);
        let c1 = m.config().ctx(1, 0);
        // Cold load grants E; a second reader downgrades to S both sides.
        m.access(c0, AccessKind::Load, BlockAddr(5), &o);
        assert_eq!(m.l1_state_str(0, BlockAddr(5)), "E");
        let r = m.access(c1, AccessKind::Load, BlockAddr(5), &o);
        assert!(matches!(r, AccessOutcome::Done(d) if d.source == DataSource::RemoteL1));
        assert_eq!(m.l1_state_str(0, BlockAddr(5)), "S");
        assert_eq!(m.l1_state_str(1, BlockAddr(5)), "S");
        // A writer invalidates all sharers.
        let c2 = m.config().ctx(2, 0);
        m.access(c2, AccessKind::Store, BlockAddr(5), &o);
        assert_eq!(m.l1_state_str(0, BlockAddr(5)), "I");
        assert_eq!(m.l1_state_str(1, BlockAddr(5)), "I");
        assert_eq!(m.l1_state_str(2, BlockAddr(5)), "M");
    }

    #[test]
    fn snooping_nacks_on_signature_conflict() {
        let mut cfg = MemConfig::small_for_tests();
        cfg.coherence = CoherenceKind::SnoopingMesi;
        let mut m = MemorySystem::new(cfg);
        let nacker_ctx = m.config().ctx(0, 0);
        let mut o = FakeOracle::default();
        o.write_conflicts.push((0, 9, nacker_ctx));
        let c1 = m.config().ctx(1, 0);
        let w = m.access(c1, AccessKind::Store, BlockAddr(9), &o);
        assert!(matches!(w, AccessOutcome::Nacked { nacker, .. } if nacker == nacker_ctx));
        assert_eq!(m.l1_state_str(1, BlockAddr(9)), "I", "NACK changes nothing");
    }

    #[test]
    fn snooping_victimization_keeps_isolation_without_sticky() {
        // Core 0's tx block gets evicted; the next conflicting store is
        // still NACKed because snooping broadcasts reach every signature —
        // no sticky machinery involved.
        let mut cfg = MemConfig::small_for_tests();
        cfg.coherence = CoherenceKind::SnoopingMesi;
        cfg.sticky_enabled = false; // irrelevant under snooping
        let mut m = MemorySystem::new(cfg);
        let nacker_ctx = m.config().ctx(0, 0);
        let mut o = FakeOracle::default();
        o.write_conflicts.push((0, 0, nacker_ctx));
        o.tx_blocks.push((0, 0));
        let c0 = m.config().ctx(0, 0);
        let c1 = m.config().ctx(1, 0);
        m.access(c0, AccessKind::Store, BlockAddr(0), &o);
        m.access(c0, AccessKind::Load, BlockAddr(4), &o);
        m.access(c0, AccessKind::Load, BlockAddr(8), &o);
        assert_eq!(m.l1_state_str(0, BlockAddr(0)), "I", "victimized");
        assert!(m.take_overflow_events().is_empty(), "no overflow aborts");
        let w = m.access(c1, AccessKind::Store, BlockAddr(0), &o);
        assert!(matches!(w, AccessOutcome::Nacked { nacker, .. } if nacker == nacker_ctx));
    }

    #[test]
    fn snooping_costs_broadcast_messages() {
        let run = |coherence| {
            let mut cfg = MemConfig::small_for_tests();
            cfg.coherence = coherence;
            let mut m = MemorySystem::new(cfg);
            let o = NullOracle;
            for i in 0..64u64 {
                let ctx = m.config().ctx((i % 4) as u16, 0);
                m.access(ctx, AccessKind::Load, BlockAddr(i * 3 % 32), &o);
            }
            m.stats().messages.get()
        };
        let dir = run(CoherenceKind::DirectoryMesi);
        let snoop = run(CoherenceKind::SnoopingMesi);
        assert!(
            snoop > dir,
            "snooping must burn more interconnect messages ({snoop} vs {dir})"
        );
    }

    #[test]
    fn ctx_id_mapping() {
        let cfg = MemConfig::paper_cmp();
        assert_eq!(cfg.n_ctxs(), 32);
        assert_eq!(cfg.ctx(0, 0), 0);
        assert_eq!(cfg.ctx(0, 1), 1);
        assert_eq!(cfg.ctx(15, 1), 31);
        assert_eq!(cfg.core_of(31), 15);
        assert_eq!(cfg.ctxs_on_core(3).collect::<Vec<_>>(), vec![6, 7]);
    }
}
