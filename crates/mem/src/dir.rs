//! Per-block directory state embedded in the L2 tags.

use std::fmt;

/// Directory state for one block, stored alongside the block's L2 line
/// (the paper's inclusive L2 holds "a bit-vector of the L1 sharers and a
/// pointer to the exclusive copy").
///
/// **Sticky states are represented implicitly**: when an L1 evicts a block
/// in a transaction's read/write-set, the directory entry is simply *not
/// updated* (paper §5: "the L2 cache does not update the exclusive pointer
/// or sharer's list"), so `owner`/`sharers` keep naming the evicting core
/// and later requests are still forwarded there for signature checks. The
/// [`DirEntry::sticky`] flag records that this happened, for statistics and
/// for the sticky-ablation experiment.
///
/// Sharer enumeration and forward-target computation are allocation-free
/// iterators over the bitmask — these run on every snooped coherence request,
/// so no `Vec` is built on the hot path.
///
/// ```
/// use ltse_mem::DirEntry;
///
/// let mut e = DirEntry::new();
/// e.add_sharer(3);
/// e.add_sharer(5);
/// assert_eq!(e.sharer_iter().collect::<Vec<_>>(), vec![3, 5]);
/// e.remove_sharer(3);
/// assert!(!e.is_sharer(3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DirEntry {
    /// Core holding the block exclusively (E or M), if any.
    pub owner: Option<u8>,
    /// Bit-vector of cores holding the block shared (bit *i* ⇒ core *i*).
    pub sharers: u64,
    /// Whether this entry survived an L1 eviction of transactional data and
    /// therefore names at least one core that no longer caches the block.
    pub sticky: bool,
    /// Set after an L1 NACKed a rebuilt-directory request; all subsequent
    /// requests must keep checking L1 signatures until one succeeds (paper
    /// §5: "the L2 directory goes to a new state that requires L1 signature
    /// checks for all subsequent requests").
    pub check_all: bool,
}

impl DirEntry {
    /// A fresh entry: uncached, no owner, no sharers.
    pub fn new() -> Self {
        DirEntry::default()
    }

    /// An entry owned exclusively by `core`.
    pub fn owned_by(core: u8) -> Self {
        DirEntry {
            owner: Some(core),
            ..DirEntry::default()
        }
    }

    /// Whether core `c` is marked as a sharer.
    #[inline]
    pub fn is_sharer(&self, c: u8) -> bool {
        self.sharers & (1 << c) != 0
    }

    /// Marks core `c` as a sharer.
    #[inline]
    pub fn add_sharer(&mut self, c: u8) {
        debug_assert!(c < 64);
        self.sharers |= 1 << c;
    }

    /// Clears core `c`'s sharer bit.
    #[inline]
    pub fn remove_sharer(&mut self, c: u8) {
        self.sharers &= !(1 << c);
    }

    /// Iterates sharer core ids in ascending order, without allocating.
    #[inline]
    pub fn sharer_iter(&self) -> SharerIter {
        SharerIter { rest: self.sharers }
    }

    /// Number of sharers.
    #[inline]
    pub fn sharer_count(&self) -> u32 {
        self.sharers.count_ones()
    }

    /// Whether no core is recorded as caching the block.
    #[inline]
    pub fn is_uncached(&self) -> bool {
        self.owner.is_none() && self.sharers == 0
    }

    /// Every core this entry would forward a request to (owner first, then
    /// sharers in ascending order), excluding `except` and never naming the
    /// owner twice. Allocation-free; the iterator is `Copy`, so callers that
    /// need multiple passes just reuse it.
    #[inline]
    pub fn forward_targets(&self, except: u8) -> ForwardTargets {
        let owner = self.owner.filter(|&o| o != except);
        let mut rest = self.sharers & !(1u64 << except);
        if let Some(o) = self.owner {
            rest &= !(1u64 << o);
        }
        ForwardTargets { owner, rest }
    }
}

/// Allocation-free iterator over a [`DirEntry`]'s sharer bitmask, ascending.
#[derive(Debug, Clone, Copy)]
pub struct SharerIter {
    rest: u64,
}

impl Iterator for SharerIter {
    type Item = u8;

    #[inline]
    fn next(&mut self) -> Option<u8> {
        if self.rest == 0 {
            return None;
        }
        let c = self.rest.trailing_zeros() as u8;
        self.rest &= self.rest - 1;
        Some(c)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.rest.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for SharerIter {}

/// Allocation-free iterator over a [`DirEntry`]'s forward targets: the owner
/// (if any and not excluded) first, then the remaining sharers ascending.
#[derive(Debug, Clone, Copy)]
pub struct ForwardTargets {
    owner: Option<u8>,
    rest: u64,
}

impl ForwardTargets {
    /// Whether there are no targets at all.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.owner.is_none() && self.rest == 0
    }
}

impl Iterator for ForwardTargets {
    type Item = u8;

    #[inline]
    fn next(&mut self) -> Option<u8> {
        if let Some(o) = self.owner.take() {
            return Some(o);
        }
        if self.rest == 0 {
            return None;
        }
        let c = self.rest.trailing_zeros() as u8;
        self.rest &= self.rest - 1;
        Some(c)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.owner.is_some() as usize + self.rest.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for ForwardTargets {}

impl fmt::Display for DirEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dir{{owner:{:?}, sharers:{:#b}{}{}}}",
            self.owner,
            self.sharers,
            if self.sticky { ", sticky" } else { "" },
            if self.check_all { ", check-all" } else { "" },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharer_bit_ops() {
        let mut e = DirEntry::new();
        assert!(e.is_uncached());
        e.add_sharer(0);
        e.add_sharer(31);
        assert!(e.is_sharer(0) && e.is_sharer(31));
        assert_eq!(e.sharer_count(), 2);
        e.remove_sharer(0);
        assert!(!e.is_sharer(0));
        assert_eq!(e.sharer_iter().collect::<Vec<_>>(), vec![31]);
    }

    #[test]
    fn sharer_bits_above_32_work() {
        let mut e = DirEntry::new();
        e.add_sharer(33);
        e.add_sharer(63);
        assert!(e.is_sharer(33) && e.is_sharer(63));
        assert_eq!(e.sharer_iter().collect::<Vec<_>>(), vec![33, 63]);
        assert_eq!(e.sharer_count(), 2);
    }

    #[test]
    fn owned_by_sets_owner() {
        let e = DirEntry::owned_by(7);
        assert_eq!(e.owner, Some(7));
        assert!(!e.is_uncached());
    }

    #[test]
    fn forward_targets_excludes_requester_and_dedups_owner() {
        let mut e = DirEntry::owned_by(2);
        e.add_sharer(2); // stale self-share; must not duplicate
        e.add_sharer(4);
        e.add_sharer(9);
        assert_eq!(e.forward_targets(4).collect::<Vec<_>>(), vec![2, 9]);
        assert_eq!(e.forward_targets(2).collect::<Vec<_>>(), vec![4, 9]);
    }

    #[test]
    fn forward_targets_is_empty_and_reusable() {
        let mut e = DirEntry::new();
        assert!(e.forward_targets(0).is_empty());
        e.add_sharer(5);
        let t = e.forward_targets(0);
        assert!(!t.is_empty());
        assert_eq!(t.len(), 1);
        // `Copy` iterator: two passes over the same value.
        assert_eq!(t.collect::<Vec<_>>(), vec![5]);
        assert_eq!(t.collect::<Vec<_>>(), vec![5]);
    }

    #[test]
    fn display_mentions_flags() {
        let mut e = DirEntry::new();
        e.sticky = true;
        e.check_all = true;
        let s = e.to_string();
        assert!(s.contains("sticky") && s.contains("check-all"));
    }
}
