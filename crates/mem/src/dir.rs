//! Per-block directory state embedded in the L2 tags.

use std::fmt;

/// Directory state for one block, stored alongside the block's L2 line
/// (the paper's inclusive L2 holds "a bit-vector of the L1 sharers and a
/// pointer to the exclusive copy").
///
/// **Sticky states are represented implicitly**: when an L1 evicts a block
/// in a transaction's read/write-set, the directory entry is simply *not
/// updated* (paper §5: "the L2 cache does not update the exclusive pointer
/// or sharer's list"), so `owner`/`sharers` keep naming the evicting core
/// and later requests are still forwarded there for signature checks. The
/// [`DirEntry::sticky`] flag records that this happened, for statistics and
/// for the sticky-ablation experiment.
///
/// ```
/// use ltse_mem::DirEntry;
///
/// let mut e = DirEntry::new();
/// e.add_sharer(3);
/// e.add_sharer(5);
/// assert_eq!(e.sharer_list(), vec![3, 5]);
/// e.remove_sharer(3);
/// assert!(!e.is_sharer(3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DirEntry {
    /// Core holding the block exclusively (E or M), if any.
    pub owner: Option<u8>,
    /// Bit-vector of cores holding the block shared (bit *i* ⇒ core *i*).
    pub sharers: u32,
    /// Whether this entry survived an L1 eviction of transactional data and
    /// therefore names at least one core that no longer caches the block.
    pub sticky: bool,
    /// Set after an L1 NACKed a rebuilt-directory request; all subsequent
    /// requests must keep checking L1 signatures until one succeeds (paper
    /// §5: "the L2 directory goes to a new state that requires L1 signature
    /// checks for all subsequent requests").
    pub check_all: bool,
}

impl DirEntry {
    /// A fresh entry: uncached, no owner, no sharers.
    pub fn new() -> Self {
        DirEntry::default()
    }

    /// An entry owned exclusively by `core`.
    pub fn owned_by(core: u8) -> Self {
        DirEntry {
            owner: Some(core),
            ..DirEntry::default()
        }
    }

    /// Whether core `c` is marked as a sharer.
    #[inline]
    pub fn is_sharer(&self, c: u8) -> bool {
        self.sharers & (1 << c) != 0
    }

    /// Marks core `c` as a sharer.
    #[inline]
    pub fn add_sharer(&mut self, c: u8) {
        debug_assert!(c < 32);
        self.sharers |= 1 << c;
    }

    /// Clears core `c`'s sharer bit.
    #[inline]
    pub fn remove_sharer(&mut self, c: u8) {
        self.sharers &= !(1 << c);
    }

    /// All sharer core ids in ascending order.
    pub fn sharer_list(&self) -> Vec<u8> {
        (0..32).filter(|&c| self.is_sharer(c)).collect()
    }

    /// Number of sharers.
    pub fn sharer_count(&self) -> u32 {
        self.sharers.count_ones()
    }

    /// Whether no core is recorded as caching the block.
    pub fn is_uncached(&self) -> bool {
        self.owner.is_none() && self.sharers == 0
    }

    /// Every core this entry would forward a request to (owner plus
    /// sharers), excluding `except`.
    pub fn forward_targets(&self, except: u8) -> Vec<u8> {
        let mut v = Vec::new();
        if let Some(o) = self.owner {
            if o != except {
                v.push(o);
            }
        }
        for c in self.sharer_list() {
            if c != except && self.owner != Some(c) {
                v.push(c);
            }
        }
        v
    }
}

impl fmt::Display for DirEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dir{{owner:{:?}, sharers:{:#b}{}{}}}",
            self.owner,
            self.sharers,
            if self.sticky { ", sticky" } else { "" },
            if self.check_all { ", check-all" } else { "" },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharer_bit_ops() {
        let mut e = DirEntry::new();
        assert!(e.is_uncached());
        e.add_sharer(0);
        e.add_sharer(31);
        assert!(e.is_sharer(0) && e.is_sharer(31));
        assert_eq!(e.sharer_count(), 2);
        e.remove_sharer(0);
        assert!(!e.is_sharer(0));
        assert_eq!(e.sharer_list(), vec![31]);
    }

    #[test]
    fn owned_by_sets_owner() {
        let e = DirEntry::owned_by(7);
        assert_eq!(e.owner, Some(7));
        assert!(!e.is_uncached());
    }

    #[test]
    fn forward_targets_excludes_requester_and_dedups_owner() {
        let mut e = DirEntry::owned_by(2);
        e.add_sharer(2); // stale self-share; must not duplicate
        e.add_sharer(4);
        e.add_sharer(9);
        assert_eq!(e.forward_targets(4), vec![2, 9]);
        assert_eq!(e.forward_targets(2), vec![4, 9]);
    }

    #[test]
    fn display_mentions_flags() {
        let mut e = DirEntry::new();
        e.sticky = true;
        e.check_all = true;
        let s = e.to_string();
        assert!(s.contains("sticky") && s.contains("check-all"));
    }
}
