//! Per-block directory state embedded in the L2 tags.

use std::fmt;

/// A core identifier. `u16` so configurations up to [`MAX_CORES`] simulated
/// cores fit; the paper's CMP is 16–32, the scale sweeps go to 256.
pub type CoreId = u16;

/// Hard ceiling on simulated cores, set by the widest [`SharerSet`]
/// representation (1 inline word + [`EXT_WORDS`] spilled words of 64 bits).
pub const MAX_CORES: usize = 64 * (1 + EXT_WORDS);

/// Spill words a [`SharerSet`] grows when a core id ≥ 64 appears.
const EXT_WORDS: usize = 3;

/// A set of sharer cores, optimized for the common case.
///
/// Directory sharer lists were a plain `u64` bitmask, which capped the
/// simulator at 64 contexts. `SharerSet` keeps that exact representation —
/// one inline word, no allocation, single-instruction membership ops — for
/// core ids below 64, and transparently spills to a boxed `[u64; 3]` the
/// first time a wider id is inserted, lifting the ceiling to [`MAX_CORES`]
/// while leaving the ≤64-core fast path untouched (narrow configurations
/// never allocate, even on 256-core-capable builds).
///
/// Equality ignores whether the spill exists: a set whose spill words are
/// all zero equals the never-spilled set with the same inline word.
#[derive(Debug, Clone, Default)]
pub struct SharerSet {
    /// Cores 0..64 (bit *i* ⇒ core *i*).
    word0: u64,
    /// Cores 64..[`MAX_CORES`], allocated lazily on first wide insert.
    ext: Option<Box<[u64; EXT_WORDS]>>,
}

impl SharerSet {
    /// The empty set.
    pub fn new() -> Self {
        SharerSet::default()
    }

    /// The set containing exactly `c`.
    pub fn single(c: CoreId) -> Self {
        let mut s = SharerSet::new();
        s.insert(c);
        s
    }

    #[inline]
    fn ext_word(&self, i: usize) -> u64 {
        self.ext.as_ref().map_or(0, |e| e[i])
    }

    /// Whether core `c` is in the set.
    #[inline]
    pub fn contains(&self, c: CoreId) -> bool {
        if c < 64 {
            self.word0 & (1u64 << c) != 0
        } else {
            debug_assert!((c as usize) < MAX_CORES);
            self.ext_word((c as usize - 64) / 64) & (1u64 << (c % 64)) != 0
        }
    }

    /// Inserts core `c`.
    #[inline]
    pub fn insert(&mut self, c: CoreId) {
        if c < 64 {
            self.word0 |= 1u64 << c;
        } else {
            assert!((c as usize) < MAX_CORES, "core {c} exceeds MAX_CORES={MAX_CORES}");
            let ext = self.ext.get_or_insert_with(|| Box::new([0; EXT_WORDS]));
            ext[(c as usize - 64) / 64] |= 1u64 << (c % 64);
        }
    }

    /// Removes core `c` (a no-op if absent).
    #[inline]
    pub fn remove(&mut self, c: CoreId) {
        if c < 64 {
            self.word0 &= !(1u64 << c);
        } else if let Some(ext) = self.ext.as_mut() {
            if (c as usize) < MAX_CORES {
                ext[(c as usize - 64) / 64] &= !(1u64 << (c % 64));
            }
        }
    }

    /// Removes every core *except* `c` (which is kept iff it was present):
    /// the "invalidate all other sharers" directory transition.
    pub fn retain_except(&mut self, c: CoreId) {
        let had = self.contains(c);
        self.word0 = 0;
        if let Some(ext) = self.ext.as_mut() {
            *ext.as_mut() = [0; EXT_WORDS];
        }
        if had {
            self.insert(c);
        }
    }

    /// Number of cores in the set.
    #[inline]
    pub fn count(&self) -> u32 {
        self.word0.count_ones()
            + self
                .ext
                .as_ref()
                .map_or(0, |e| e.iter().map(|w| w.count_ones()).sum())
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.word0 == 0 && self.ext.as_ref().is_none_or(|e| e.iter().all(|&w| w == 0))
    }

    /// Iterates core ids in ascending order, without allocating. The
    /// iterator is `Copy`, so multi-pass callers just reuse it.
    #[inline]
    pub fn iter(&self) -> SharerIter<'_> {
        SharerIter {
            cur: self.word0,
            base: 0,
            ext: self.ext.as_ref().map_or(&[], |e| &e[..]),
        }
    }
}

impl PartialEq for SharerSet {
    fn eq(&self, other: &Self) -> bool {
        self.word0 == other.word0
            && (0..EXT_WORDS).all(|i| self.ext_word(i) == other.ext_word(i))
    }
}

impl Eq for SharerSet {}

impl FromIterator<CoreId> for SharerSet {
    fn from_iter<I: IntoIterator<Item = CoreId>>(iter: I) -> Self {
        let mut s = SharerSet::new();
        for c in iter {
            s.insert(c);
        }
        s
    }
}

impl fmt::Display for SharerSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{")?;
        for (i, c) in self.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{c}")?;
        }
        f.write_str("}")
    }
}

/// Directory state for one block, stored alongside the block's L2 line
/// (the paper's inclusive L2 holds "a bit-vector of the L1 sharers and a
/// pointer to the exclusive copy").
///
/// **Sticky states are represented implicitly**: when an L1 evicts a block
/// in a transaction's read/write-set, the directory entry is simply *not
/// updated* (paper §5: "the L2 cache does not update the exclusive pointer
/// or sharer's list"), so `owner`/`sharers` keep naming the evicting core
/// and later requests are still forwarded there for signature checks. The
/// [`DirEntry::sticky`] flag records that this happened, for statistics and
/// for the sticky-ablation experiment.
///
/// Sharer enumeration and forward-target computation are allocation-free
/// iterators over the bitmask — these run on every snooped coherence request,
/// so no `Vec` is built on the hot path.
///
/// ```
/// use ltse_mem::DirEntry;
///
/// let mut e = DirEntry::new();
/// e.add_sharer(3);
/// e.add_sharer(5);
/// assert_eq!(e.sharer_iter().collect::<Vec<_>>(), vec![3, 5]);
/// e.remove_sharer(3);
/// assert!(!e.is_sharer(3));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DirEntry {
    /// Core holding the block exclusively (E or M), if any.
    pub owner: Option<CoreId>,
    /// The cores holding the block shared.
    pub sharers: SharerSet,
    /// Whether this entry survived an L1 eviction of transactional data and
    /// therefore names at least one core that no longer caches the block.
    pub sticky: bool,
    /// Set after an L1 NACKed a rebuilt-directory request; all subsequent
    /// requests must keep checking L1 signatures until one succeeds (paper
    /// §5: "the L2 directory goes to a new state that requires L1 signature
    /// checks for all subsequent requests").
    pub check_all: bool,
}

impl DirEntry {
    /// A fresh entry: uncached, no owner, no sharers.
    pub fn new() -> Self {
        DirEntry::default()
    }

    /// An entry owned exclusively by `core`.
    pub fn owned_by(core: CoreId) -> Self {
        DirEntry {
            owner: Some(core),
            ..DirEntry::default()
        }
    }

    /// Whether core `c` is marked as a sharer.
    #[inline]
    pub fn is_sharer(&self, c: CoreId) -> bool {
        self.sharers.contains(c)
    }

    /// Marks core `c` as a sharer.
    #[inline]
    pub fn add_sharer(&mut self, c: CoreId) {
        self.sharers.insert(c);
    }

    /// Clears core `c`'s sharer bit.
    #[inline]
    pub fn remove_sharer(&mut self, c: CoreId) {
        self.sharers.remove(c);
    }

    /// Iterates sharer core ids in ascending order, without allocating.
    #[inline]
    pub fn sharer_iter(&self) -> SharerIter<'_> {
        self.sharers.iter()
    }

    /// Number of sharers.
    #[inline]
    pub fn sharer_count(&self) -> u32 {
        self.sharers.count()
    }

    /// Whether no core is recorded as caching the block.
    #[inline]
    pub fn is_uncached(&self) -> bool {
        self.owner.is_none() && self.sharers.is_empty()
    }

    /// Every core this entry would forward a request to (owner first, then
    /// sharers in ascending order), excluding `except` and never naming the
    /// owner twice. Allocation-free; the iterator is `Copy`, so callers that
    /// need multiple passes just reuse it.
    #[inline]
    pub fn forward_targets(&self, except: CoreId) -> ForwardTargets<'_> {
        let owner = self.owner.filter(|&o| o != except);
        let skip_owner = self.owner;
        let mut remaining = owner.is_some() as usize;
        remaining += self
            .sharers
            .iter()
            .filter(|&c| c != except && Some(c) != skip_owner)
            .count();
        ForwardTargets {
            owner,
            sharers: self.sharers.iter(),
            except,
            skip_owner,
            remaining,
        }
    }
}

/// Allocation-free iterator over a [`SharerSet`], ascending. Borrows the
/// set's spill words (if any) but is `Copy`, so callers can run multiple
/// passes from one value.
#[derive(Debug, Clone, Copy)]
pub struct SharerIter<'a> {
    /// Remaining bits of the word currently being drained.
    cur: u64,
    /// Core id of bit 0 of `cur`.
    base: u16,
    /// Spill words not yet started (empty slice on the ≤64 fast path).
    ext: &'a [u64],
}

impl Iterator for SharerIter<'_> {
    type Item = CoreId;

    #[inline]
    fn next(&mut self) -> Option<CoreId> {
        while self.cur == 0 {
            let (&w, rest) = self.ext.split_first()?;
            self.cur = w;
            self.base += 64;
            self.ext = rest;
        }
        let c = self.base + self.cur.trailing_zeros() as u16;
        self.cur &= self.cur - 1;
        Some(c)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.cur.count_ones() as usize
            + self.ext.iter().map(|w| w.count_ones() as usize).sum::<usize>();
        (n, Some(n))
    }
}

impl ExactSizeIterator for SharerIter<'_> {}

/// Allocation-free iterator over a [`DirEntry`]'s forward targets: the owner
/// (if any and not excluded) first, then the remaining sharers ascending
/// (minus the excluded requester and the owner).
#[derive(Debug, Clone, Copy)]
pub struct ForwardTargets<'a> {
    owner: Option<CoreId>,
    sharers: SharerIter<'a>,
    except: CoreId,
    skip_owner: Option<CoreId>,
    remaining: usize,
}

impl ForwardTargets<'_> {
    /// Whether there are no targets at all.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.remaining == 0
    }
}

impl Iterator for ForwardTargets<'_> {
    type Item = CoreId;

    #[inline]
    fn next(&mut self) -> Option<CoreId> {
        if let Some(o) = self.owner.take() {
            self.remaining -= 1;
            return Some(o);
        }
        for c in self.sharers.by_ref() {
            if c != self.except && Some(c) != self.skip_owner {
                self.remaining -= 1;
                return Some(c);
            }
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for ForwardTargets<'_> {}

impl fmt::Display for DirEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dir{{owner:{:?}, sharers:{}{}{}}}",
            self.owner,
            self.sharers,
            if self.sticky { ", sticky" } else { "" },
            if self.check_all { ", check-all" } else { "" },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn sharer_bit_ops() {
        let mut e = DirEntry::new();
        assert!(e.is_uncached());
        e.add_sharer(0);
        e.add_sharer(31);
        assert!(e.is_sharer(0) && e.is_sharer(31));
        assert_eq!(e.sharer_count(), 2);
        e.remove_sharer(0);
        assert!(!e.is_sharer(0));
        assert_eq!(e.sharer_iter().collect::<Vec<_>>(), vec![31]);
    }

    #[test]
    fn sharer_bits_above_32_work() {
        let mut e = DirEntry::new();
        e.add_sharer(33);
        e.add_sharer(63);
        assert!(e.is_sharer(33) && e.is_sharer(63));
        assert_eq!(e.sharer_iter().collect::<Vec<_>>(), vec![33, 63]);
        assert_eq!(e.sharer_count(), 2);
    }

    #[test]
    fn owned_by_sets_owner() {
        let e = DirEntry::owned_by(7);
        assert_eq!(e.owner, Some(7));
        assert!(!e.is_uncached());
    }

    #[test]
    fn forward_targets_excludes_requester_and_dedups_owner() {
        let mut e = DirEntry::owned_by(2);
        e.add_sharer(2); // stale self-share; must not duplicate
        e.add_sharer(4);
        e.add_sharer(9);
        assert_eq!(e.forward_targets(4).collect::<Vec<_>>(), vec![2, 9]);
        assert_eq!(e.forward_targets(2).collect::<Vec<_>>(), vec![4, 9]);
    }

    #[test]
    fn forward_targets_is_empty_and_reusable() {
        let mut e = DirEntry::new();
        assert!(e.forward_targets(0).is_empty());
        e.add_sharer(5);
        let t = e.forward_targets(0);
        assert!(!t.is_empty());
        assert_eq!(t.len(), 1);
        // `Copy` iterator: two passes over the same value.
        assert_eq!(t.collect::<Vec<_>>(), vec![5]);
        assert_eq!(t.collect::<Vec<_>>(), vec![5]);
    }

    #[test]
    fn display_mentions_flags() {
        let mut e = DirEntry::new();
        e.sticky = true;
        e.check_all = true;
        let s = e.to_string();
        assert!(s.contains("sticky") && s.contains("check-all"));
    }

    // --------------------------------------------------------------------
    // SharerSet at and beyond the 64-core boundary: exhaustive differential
    // tests against a BTreeSet reference model (the semantics the old u64
    // fast path had, extended to MAX_CORES).
    // --------------------------------------------------------------------

    /// Deterministic hash-ish stream, so the differential tests need no RNG
    /// dependency and always replay the same way.
    fn scramble(x: u64) -> u64 {
        let mut v = x.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        v ^= v >> 29;
        v = v.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        v ^ (v >> 32)
    }

    const WIDTHS: [u16; 5] = [63, 64, 65, 128, 256];

    #[test]
    fn sharerset_differential_insert_remove_contains() {
        for &width in &WIDTHS {
            let mut set = SharerSet::new();
            let mut reference: BTreeSet<CoreId> = BTreeSet::new();
            for step in 0..2_000u64 {
                let r = scramble(width as u64 * 1_000_003 + step);
                let c = (r % width as u64) as CoreId;
                match (r >> 32) % 3 {
                    0 => {
                        set.insert(c);
                        reference.insert(c);
                    }
                    1 => {
                        set.remove(c);
                        reference.remove(&c);
                    }
                    _ => assert_eq!(set.contains(c), reference.contains(&c), "width={width} step={step}"),
                }
                assert_eq!(set.count() as usize, reference.len(), "width={width} step={step}");
                assert_eq!(set.is_empty(), reference.is_empty());
            }
            // Iterator order is ascending and complete.
            let got: Vec<CoreId> = set.iter().collect();
            let want: Vec<CoreId> = reference.iter().copied().collect();
            assert_eq!(got, want, "width={width}");
            assert_eq!(set.iter().len(), want.len(), "exact size, width={width}");
        }
    }

    #[test]
    fn sharerset_boundary_bits_exact() {
        // Every core id in a window across the u64 boundary, individually.
        for c in 60..70u16 {
            let s = SharerSet::single(c);
            assert!(s.contains(c), "core {c}");
            assert_eq!(s.count(), 1);
            assert_eq!(s.iter().collect::<Vec<_>>(), vec![c]);
            for other in 0..(MAX_CORES as u16) {
                assert_eq!(s.contains(other), other == c, "core {c} vs {other}");
            }
        }
        // The last representable core.
        let last = (MAX_CORES - 1) as u16;
        let mut s = SharerSet::single(last);
        assert!(s.contains(last));
        s.remove(last);
        assert!(s.is_empty());
    }

    #[test]
    fn sharerset_equality_ignores_spill_allocation() {
        // A set that grew a spill and then lost its wide members must equal
        // the never-spilled set (directory entries get compared in tests and
        // differential checks; allocation history is not state).
        let mut wide = SharerSet::single(5);
        wide.insert(200);
        wide.remove(200);
        let narrow = SharerSet::single(5);
        assert_eq!(wide, narrow);
        assert_eq!(narrow, wide);
        assert_ne!(SharerSet::single(70), SharerSet::single(6));
    }

    #[test]
    fn sharerset_retain_except_edges() {
        for &width in &WIDTHS {
            // Build {0, 1, boundary-straddling ids, width-1}.
            let members: Vec<CoreId> =
                [0, 1, 63, 64, 65, width - 1].iter().copied().filter(|&c| c < width).collect();
            for &keep in &members {
                let mut s: SharerSet = members.iter().copied().collect();
                s.retain_except(keep);
                assert_eq!(s.iter().collect::<Vec<_>>(), vec![keep], "width={width} keep={keep}");
            }
            // Retaining an absent core empties the set.
            let mut s: SharerSet = members.iter().copied().collect();
            s.retain_except(2); // 2 is never a member
            assert!(s.is_empty(), "width={width}");
        }
    }

    #[test]
    fn wide_forward_targets_and_iteration_order() {
        for &width in &WIDTHS {
            let mut e = DirEntry::owned_by(width - 1);
            let members: Vec<CoreId> = (0..width).filter(|c| c % 7 == 3).collect();
            for &c in &members {
                e.add_sharer(c);
            }
            e.add_sharer(width - 1); // stale self-share: must dedup vs owner
            // Owner first, then ascending sharers minus owner and requester.
            let except = members.first().copied().unwrap_or(0);
            let got: Vec<CoreId> = e.forward_targets(except).collect();
            let mut want = vec![width - 1];
            want.extend(members.iter().copied().filter(|&c| c != except && c != width - 1));
            assert_eq!(got, want, "width={width}");
            let t = e.forward_targets(except);
            assert_eq!(t.len(), want.len(), "exact size, width={width}");
            assert!(!t.is_empty());
            // Two passes over the Copy iterator agree.
            assert_eq!(t.collect::<Vec<_>>(), t.collect::<Vec<_>>(), "width={width}");
        }
    }

    #[test]
    fn narrow_sets_never_allocate_spill() {
        let mut s = SharerSet::new();
        for c in 0..64u16 {
            s.insert(c);
        }
        assert!(s.ext.is_none(), "≤64-core path must stay allocation-free");
        assert_eq!(s.count(), 64);
        s.remove(63);
        assert!(s.ext.is_none());
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_CORES")]
    fn insert_beyond_max_cores_panics() {
        SharerSet::new().insert(MAX_CORES as u16);
    }
}
