//! CMP memory-system substrate for the LogTM-SE reproduction.
//!
//! This crate models the baseline chip multiprocessor of the paper's §5
//! (Figure 2 / Table 1): 16 out-of-order cores with 2-way SMT (32 thread
//! contexts), private 32 KB L1 data caches, a 16-bank 8 MB shared inclusive
//! L2 that embeds a full directory in its tags, a packet-switched grid
//! interconnect, and off-chip DRAM — plus the paper's coherence-protocol
//! changes:
//!
//! * **NACKs on signature conflicts** — GETS/GETM requests consult the
//!   target's read/write signatures (via the [`ConflictOracle`] trait; this
//!   crate deliberately owns *no* transactional state, which is the paper's
//!   decoupling thesis) and are NACKed on a possible conflict.
//! * **Sticky states** — when an L1 evicts a block in a transaction's
//!   read/write-set, the directory is *not* updated, so later requests still
//!   forward to the evicting core for a signature check (paper §3.1, §5).
//! * **Directory-loss broadcast** — when the L2 evicts transactional data the
//!   directory information is lost; subsequent misses broadcast to all L1s
//!   for signature checks and rebuild the directory (paper §5).
//!
//! # Timing model
//!
//! Coherence actions resolve *atomically at issue* with path-accurate latency
//! (L1 1 cycle, directory 6, L2 34, DRAM 500, 3-cycle grid links — Table 1).
//! There are no transient protocol states: concurrent same-block requests
//! serialize in event order. DESIGN.md documents why this preserves the
//! paper's comparative results.
//!
//! # Example
//!
//! ```
//! use ltse_mem::{AccessKind, MemConfig, MemorySystem, NullOracle, AccessOutcome, BlockAddr};
//!
//! let mut mem = MemorySystem::new(MemConfig::small_for_tests());
//! let oracle = NullOracle; // no transactions anywhere
//! let ctx = mem.config().ctx(0, 0);
//!
//! // Cold miss goes to DRAM…
//! let first = mem.access(ctx, AccessKind::Load, BlockAddr(100), &oracle);
//! // …then the L1 hits.
//! let second = mem.access(ctx, AccessKind::Load, BlockAddr(100), &oracle);
//! match (first, second) {
//!     (AccessOutcome::Done(a), AccessOutcome::Done(b)) => assert!(b.latency < a.latency),
//!     _ => unreachable!("no conflicts are possible with NullOracle"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod cache;
mod dir;
mod latency;
mod network;
mod oracle;
mod stats;
mod store;
mod system;

pub use addr::{Asid, BlockAddr, PageId, WordAddr, BLOCKS_PER_PAGE, BLOCK_BYTES, WORDS_PER_BLOCK};
pub use cache::{CacheConfig, SetAssocCache};
pub use dir::{CoreId, DirEntry, ForwardTargets, SharerIter, SharerSet, MAX_CORES};
pub use latency::LatencyConfig;
pub use network::Grid;
pub use oracle::{AccessKind, ConflictOracle, NullOracle, SerializabilityOracle};
pub use stats::MemStats;
pub use store::MemStore;
pub use system::{
    AccessDone, AccessOutcome, CoherenceKind, CtxId, DataSource, MemConfig, MemorySystem,
};
