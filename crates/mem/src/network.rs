//! The on-chip grid interconnect.
//!
//! The paper connects cores and L2 banks with "a packet-switched interconnect
//! … in a grid topology using 64-byte links and adaptive routing". We model
//! the latency side: each node hosts one core and one L2 bank, nodes form a
//! `width × height` mesh, and a message costs `hops × link_latency` with
//! dimension-ordered (Manhattan) hop counting. Contention is not modelled
//! (DESIGN.md, timing model).

use ltse_sim::Cycle;

/// A mesh of nodes, each hosting one core and the same-numbered L2 bank.
///
/// ```
/// use ltse_mem::Grid;
/// use ltse_sim::Cycle;
///
/// let g = Grid::new(4, 4, Cycle(3)); // the paper's 16-node grid
/// assert_eq!(g.hops(0, 0), 0);
/// assert_eq!(g.hops(0, 15), 6);      // (0,0) → (3,3)
/// assert_eq!(g.latency(0, 15), Cycle(18));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grid {
    width: usize,
    height: usize,
    link: Cycle,
}

impl Grid {
    /// Creates a `width × height` mesh with the given per-link latency.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize, link: Cycle) -> Self {
        assert!(width > 0 && height > 0, "grid must be nonempty");
        Grid {
            width,
            height,
            link,
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.width * self.height
    }

    /// Manhattan hop count between two nodes.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if either node id is out of range.
    pub fn hops(&self, a: usize, b: usize) -> u64 {
        debug_assert!(a < self.nodes() && b < self.nodes());
        let (ax, ay) = (a % self.width, a / self.width);
        let (bx, by) = (b % self.width, b / self.width);
        (ax.abs_diff(bx) + ay.abs_diff(by)) as u64
    }

    /// Latency of one message from node `a` to node `b`.
    pub fn latency(&self, a: usize, b: usize) -> Cycle {
        Cycle(self.hops(a, b) * self.link.as_u64())
    }

    /// Latency of a broadcast from `from` to every other node, modelled as
    /// the worst single destination (fan-out happens in parallel). The
    /// farthest node is always a corner, so this is O(1) — it used to scan
    /// every node, which showed up hot on 256-core directory-loss paths.
    pub fn broadcast_latency(&self, from: usize) -> Cycle {
        debug_assert!(from < self.nodes());
        let (fx, fy) = (from % self.width, from / self.width);
        let hops = fx.max(self.width - 1 - fx) + fy.max(self.height - 1 - fy);
        Cycle(hops as u64 * self.link.as_u64())
    }

    /// The farthest round trip on the mesh, a useful upper bound in tests.
    pub fn diameter_latency(&self) -> Cycle {
        Cycle(((self.width - 1) + (self.height - 1)) as u64 * self.link.as_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hops_are_manhattan() {
        let g = Grid::new(4, 4, Cycle(3));
        assert_eq!(g.hops(0, 3), 3); // across the top row
        assert_eq!(g.hops(0, 12), 3); // down the left column
        assert_eq!(g.hops(5, 10), 2); // (1,1) → (2,2)
        assert_eq!(g.hops(7, 7), 0);
    }

    #[test]
    fn hops_symmetric() {
        let g = Grid::new(4, 4, Cycle(3));
        for a in 0..16 {
            for b in 0..16 {
                assert_eq!(g.hops(a, b), g.hops(b, a));
            }
        }
    }

    #[test]
    fn broadcast_is_worst_case() {
        let g = Grid::new(4, 4, Cycle(3));
        assert_eq!(g.broadcast_latency(0), Cycle(18)); // to node 15
        assert_eq!(g.broadcast_latency(5), Cycle(12)); // center-ish node
    }

    #[test]
    fn broadcast_matches_full_scan() {
        for (w, h) in [(4, 4), (8, 8), (12, 12), (16, 16), (5, 3), (1, 7)] {
            let g = Grid::new(w, h, Cycle(3));
            for from in 0..g.nodes() {
                let scanned = (0..g.nodes())
                    .map(|n| g.latency(from, n))
                    .max()
                    .unwrap();
                assert_eq!(g.broadcast_latency(from), scanned, "{w}x{h} from {from}");
            }
        }
    }

    #[test]
    fn diameter() {
        let g = Grid::new(4, 4, Cycle(3));
        assert_eq!(g.diameter_latency(), Cycle(18));
        let line = Grid::new(8, 1, Cycle(2));
        assert_eq!(line.diameter_latency(), Cycle(14));
    }

    #[test]
    fn single_node_grid() {
        let g = Grid::new(1, 1, Cycle(3));
        assert_eq!(g.latency(0, 0), Cycle::ZERO);
        assert_eq!(g.broadcast_latency(0), Cycle::ZERO);
    }
}
