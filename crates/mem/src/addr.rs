//! Address types: words, 64-byte blocks, 4 KB pages, address-space ids.

use std::fmt;

/// Bytes per cache block (the paper's Table 1: 64-byte blocks everywhere).
pub const BLOCK_BYTES: u64 = 64;

/// 64-bit words per cache block.
pub const WORDS_PER_BLOCK: u64 = BLOCK_BYTES / 8;

/// Cache blocks per 4 KB virtual-memory page.
pub const BLOCKS_PER_PAGE: u64 = 4096 / BLOCK_BYTES;

/// A block-aligned physical address, expressed as a *block number* (byte
/// address / 64). Signatures, caches and the directory all operate at this
/// granularity, exactly as in the paper.
///
/// ```
/// use ltse_mem::{BlockAddr, WordAddr};
///
/// let w = WordAddr(8); // the 9th 64-bit word of memory
/// assert_eq!(w.block(), BlockAddr(1));
/// assert_eq!(BlockAddr(1).first_word(), WordAddr(8));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockAddr(pub u64);

impl BlockAddr {
    /// The page containing this block.
    #[inline]
    pub fn page(self) -> PageId {
        PageId(self.0 / BLOCKS_PER_PAGE)
    }

    /// Block offset within its page (`0..BLOCKS_PER_PAGE`).
    #[inline]
    pub fn page_offset(self) -> u64 {
        self.0 % BLOCKS_PER_PAGE
    }

    /// First word of this block.
    #[inline]
    pub fn first_word(self) -> WordAddr {
        WordAddr(self.0 * WORDS_PER_BLOCK)
    }

    /// The raw block number, e.g. for signature insertion.
    #[inline]
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blk:{:#x}", self.0)
    }
}

/// A 64-bit-word-aligned address, expressed as a word number (byte
/// address / 8). Simulated loads and stores move one word; the memory system
/// operates on the containing block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct WordAddr(pub u64);

impl WordAddr {
    /// The block containing this word.
    #[inline]
    pub fn block(self) -> BlockAddr {
        BlockAddr(self.0 / WORDS_PER_BLOCK)
    }

    /// Word offset within its block (`0..WORDS_PER_BLOCK`).
    #[inline]
    pub fn block_offset(self) -> u64 {
        self.0 % WORDS_PER_BLOCK
    }

    /// The raw word number.
    #[inline]
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// The word `n` words after this one.
    #[inline]
    pub fn offset(self, n: u64) -> WordAddr {
        WordAddr(self.0 + n)
    }
}

impl fmt::Display for WordAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w:{:#x}", self.0)
    }
}

/// A 4 KB physical page number. Paging (paper §4.2) relocates a page: all
/// blocks of page P move to page P'.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PageId(pub u64);

impl PageId {
    /// First block of this page.
    #[inline]
    pub fn first_block(self) -> BlockAddr {
        BlockAddr(self.0 * BLOCKS_PER_PAGE)
    }

    /// The `i`-th block of this page.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `i >= BLOCKS_PER_PAGE`.
    #[inline]
    pub fn block(self, i: u64) -> BlockAddr {
        debug_assert!(i < BLOCKS_PER_PAGE);
        BlockAddr(self.0 * BLOCKS_PER_PAGE + i)
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pg:{:#x}", self.0)
    }
}

/// An address-space identifier. The paper adds an ASID to all coherence
/// requests so that signature aliasing cannot create false conflicts
/// *between processes* (§2): a request is NACKed only if the signature hits
/// **and** the ASIDs match.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Asid(pub u16);

impl fmt::Display for Asid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "asid:{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_block_roundtrip() {
        for w in [0u64, 7, 8, 63, 64, 1000] {
            let wa = WordAddr(w);
            let b = wa.block();
            assert!(b.first_word().as_u64() <= w);
            assert!(w < b.first_word().as_u64() + WORDS_PER_BLOCK);
            assert_eq!(b.first_word().as_u64() + wa.block_offset(), w);
        }
    }

    #[test]
    fn block_page_roundtrip() {
        let b = BlockAddr(BLOCKS_PER_PAGE * 3 + 5);
        assert_eq!(b.page(), PageId(3));
        assert_eq!(b.page_offset(), 5);
        assert_eq!(b.page().block(b.page_offset()), b);
    }

    #[test]
    fn page_first_block() {
        assert_eq!(PageId(0).first_block(), BlockAddr(0));
        assert_eq!(PageId(2).first_block(), BlockAddr(2 * BLOCKS_PER_PAGE));
    }

    #[test]
    fn constants_consistent() {
        assert_eq!(BLOCK_BYTES, 64);
        assert_eq!(WORDS_PER_BLOCK, 8);
        assert_eq!(BLOCKS_PER_PAGE, 64);
    }

    #[test]
    fn display_forms() {
        assert_eq!(BlockAddr(16).to_string(), "blk:0x10");
        assert_eq!(WordAddr(8).to_string(), "w:0x8");
        assert_eq!(PageId(1).to_string(), "pg:0x1");
        assert_eq!(Asid(3).to_string(), "asid:3");
    }

    #[test]
    fn word_offset() {
        assert_eq!(WordAddr(10).offset(5), WordAddr(15));
    }
}
