//! The flat simulated memory contents.
//!
//! Because the memory system resolves coherence atomically (DESIGN.md), data
//! values are always globally consistent and can live in one flat store.
//! Caches model tags/state for timing and protocol behaviour only. Eager
//! version management still works exactly as in the paper: new values go *in
//! place* (straight into this store) and old values are saved in the
//! transaction's log (by the TM crate) before the first transactional
//! overwrite.

use std::collections::HashMap;

use crate::addr::WordAddr;

/// Word-addressable simulated memory. Unwritten words read as zero.
///
/// ```
/// use ltse_mem::{MemStore, WordAddr};
///
/// let mut m = MemStore::new();
/// assert_eq!(m.read(WordAddr(64)), 0);
/// m.write(WordAddr(64), 7);
/// assert_eq!(m.read(WordAddr(64)), 7);
/// ```
#[derive(Clone, Default)]
pub struct MemStore {
    words: HashMap<u64, u64>,
}

/// Renders the nonzero words in **address order**. The backing map is a
/// `HashMap` whose iteration order is seeded per process, so a derived
/// `Debug` would differ run to run and anything quoting it in a report or
/// failure message would break byte-identical repro output.
impl std::fmt::Debug for MemStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map().entries(self.iter_sorted()).finish()
    }
}

impl MemStore {
    /// Creates an all-zero memory.
    pub fn new() -> Self {
        MemStore::default()
    }

    /// Reads one word (zero if never written).
    pub fn read(&self, addr: WordAddr) -> u64 {
        self.words.get(&addr.0).copied().unwrap_or(0)
    }

    /// Writes one word in place.
    pub fn write(&mut self, addr: WordAddr, value: u64) {
        if value == 0 {
            self.words.remove(&addr.0);
        } else {
            self.words.insert(addr.0, value);
        }
    }

    /// Atomically applies `f` to a word and returns `(old, new)` — the
    /// building block for the simulated CAS/fetch-and-add the lock baseline
    /// uses.
    pub fn update(&mut self, addr: WordAddr, f: impl FnOnce(u64) -> u64) -> (u64, u64) {
        let old = self.read(addr);
        let new = f(old);
        self.write(addr, new);
        (old, new)
    }

    /// Number of nonzero words (diagnostics only).
    pub fn nonzero_words(&self) -> usize {
        self.words.len()
    }

    /// The nonzero words in **ascending address order** — the only iteration
    /// this type exposes. Dumps, fingerprints, and divergence reports must
    /// come through here: the backing `HashMap`'s own order is seeded per
    /// process and would leak nondeterminism into any output built from it.
    pub fn iter_sorted(&self) -> impl Iterator<Item = (WordAddr, u64)> + '_ {
        let mut entries: Vec<(u64, u64)> = self.words.iter().map(|(&a, &v)| (a, v)).collect();
        entries.sort_unstable_by_key(|&(a, _)| a);
        entries.into_iter().map(|(a, v)| (WordAddr(a), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_default() {
        let m = MemStore::new();
        assert_eq!(m.read(WordAddr(12345)), 0);
    }

    #[test]
    fn write_read_roundtrip() {
        let mut m = MemStore::new();
        m.write(WordAddr(1), 42);
        m.write(WordAddr(2), 43);
        assert_eq!(m.read(WordAddr(1)), 42);
        assert_eq!(m.read(WordAddr(2)), 43);
    }

    #[test]
    fn writing_zero_reclaims() {
        let mut m = MemStore::new();
        m.write(WordAddr(1), 42);
        m.write(WordAddr(1), 0);
        assert_eq!(m.nonzero_words(), 0);
        assert_eq!(m.read(WordAddr(1)), 0);
    }

    #[test]
    fn debug_and_iteration_are_sorted_regardless_of_insert_order() {
        // Two stores with the same contents inserted in opposite orders
        // (enough keys that HashMap bucket layout would differ) must render
        // identically and iterate in ascending address order.
        let addrs: Vec<u64> = (0..64).map(|i| (i * 0x9E37) % 4096).collect();
        let mut a = MemStore::new();
        let mut b = MemStore::new();
        for &x in &addrs {
            a.write(WordAddr(x), x + 1);
        }
        for &x in addrs.iter().rev() {
            b.write(WordAddr(x), x + 1);
        }
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        let seq: Vec<u64> = a.iter_sorted().map(|(addr, _)| addr.0).collect();
        let mut sorted = seq.clone();
        sorted.sort_unstable();
        assert_eq!(seq, sorted, "iter_sorted must ascend");
        assert_eq!(seq.len(), a.nonzero_words());
    }

    #[test]
    fn update_returns_old_and_new() {
        let mut m = MemStore::new();
        m.write(WordAddr(9), 10);
        let (old, new) = m.update(WordAddr(9), |v| v + 5);
        assert_eq!((old, new), (10, 15));
        assert_eq!(m.read(WordAddr(9)), 15);
    }
}
