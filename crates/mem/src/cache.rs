//! A generic set-associative cache array with LRU replacement.

use crate::addr::BlockAddr;

/// Geometry of a cache array.
///
/// ```
/// use ltse_mem::CacheConfig;
///
/// // The paper's 32 KB 4-way L1 with 64-byte blocks:
/// let l1 = CacheConfig::new(128, 4);
/// assert_eq!(l1.capacity_blocks(), 512);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of sets (power of two).
    pub sets: usize,
    /// Associativity (ways per set).
    pub ways: usize,
}

impl CacheConfig {
    /// Creates a geometry.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or either dimension is zero.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets.is_power_of_two(), "sets must be a power of two");
        assert!(ways > 0, "need at least one way");
        CacheConfig { sets, ways }
    }

    /// Total blocks the array can hold.
    pub fn capacity_blocks(&self) -> usize {
        self.sets * self.ways
    }
}

#[derive(Debug, Clone)]
struct Line<V> {
    block: BlockAddr,
    value: V,
    lru: u64,
}

/// A set-associative array mapping block addresses to per-line state, with
/// true-LRU replacement. Used for the L1 tag/state arrays, the L2 banks, and
/// the TM crate's log filter (which the paper notes is "much like a TLB").
///
/// ```
/// use ltse_mem::{BlockAddr, CacheConfig, SetAssocCache};
///
/// let mut c: SetAssocCache<char> = SetAssocCache::new(CacheConfig::new(2, 2));
/// assert_eq!(c.insert(BlockAddr(0), 'a'), None);
/// assert_eq!(c.insert(BlockAddr(2), 'b'), None); // same set as 0 (2 sets)
/// assert_eq!(c.get(&BlockAddr(0)), Some(&'a'));  // touch 0 → 2 becomes LRU
/// let evicted = c.insert(BlockAddr(4), 'c');     // set 0 full → evict 2
/// assert_eq!(evicted, Some((BlockAddr(2), 'b')));
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache<V> {
    config: CacheConfig,
    sets: Vec<Vec<Line<V>>>,
    /// Per-set MRU way hint. May be stale (ways move on `swap_remove`), so
    /// every use verifies the tag before trusting it; a wrong hint only
    /// costs the linear scan we would have done anyway.
    hints: Vec<u32>,
    tick: u64,
    set_mask: u64,
}

impl<V> SetAssocCache<V> {
    /// Creates an empty array with the given geometry.
    pub fn new(config: CacheConfig) -> Self {
        SetAssocCache {
            config,
            sets: (0..config.sets).map(|_| Vec::new()).collect(),
            hints: vec![0; config.sets],
            tick: 0,
            set_mask: config.sets as u64 - 1,
        }
    }

    /// The array's geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    #[inline]
    fn set_index(&self, block: BlockAddr) -> usize {
        (block.0 & self.set_mask) as usize
    }

    fn bump(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Finds `block`'s way within `set`, trying the (tag-verified) MRU hint
    /// before falling back to a linear scan.
    #[inline]
    fn find_way(set: &[Line<V>], hint: u32, block: BlockAddr) -> Option<usize> {
        if let Some(l) = set.get(hint as usize) {
            if l.block == block {
                return Some(hint as usize);
            }
        }
        set.iter().position(|l| l.block == block)
    }

    /// Looks up a block without touching LRU state.
    pub fn peek(&self, block: &BlockAddr) -> Option<&V> {
        let idx = self.set_index(*block);
        let set = &self.sets[idx];
        Self::find_way(set, self.hints[idx], *block).map(|w| &set[w].value)
    }

    /// Looks up a block, promoting it to most-recently-used.
    pub fn get(&mut self, block: &BlockAddr) -> Option<&V> {
        let tick = self.bump();
        let idx = self.set_index(*block);
        let way = Self::find_way(&self.sets[idx], self.hints[idx], *block)?;
        self.hints[idx] = way as u32;
        let line = &mut self.sets[idx][way];
        line.lru = tick;
        Some(&line.value)
    }

    /// Mutable lookup, promoting to most-recently-used.
    pub fn get_mut(&mut self, block: &BlockAddr) -> Option<&mut V> {
        let tick = self.bump();
        let idx = self.set_index(*block);
        let way = Self::find_way(&self.sets[idx], self.hints[idx], *block)?;
        self.hints[idx] = way as u32;
        let line = &mut self.sets[idx][way];
        line.lru = tick;
        Some(&mut line.value)
    }

    /// Whether the block is present (no LRU side effect).
    pub fn contains(&self, block: &BlockAddr) -> bool {
        self.peek(block).is_some()
    }

    /// Inserts (or replaces) a block, returning the LRU line evicted to make
    /// room, if any. Replacing an existing block never evicts.
    pub fn insert(&mut self, block: BlockAddr, value: V) -> Option<(BlockAddr, V)> {
        let tick = self.bump();
        let ways = self.config.ways;
        let idx = self.set_index(block);

        if let Some(way) = Self::find_way(&self.sets[idx], self.hints[idx], block) {
            self.hints[idx] = way as u32;
            let line = &mut self.sets[idx][way];
            line.value = value;
            line.lru = tick;
            return None;
        }
        let set = &mut self.sets[idx];

        let evicted = if set.len() == ways {
            let (victim_idx, _) = set
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.lru)
                .expect("full set is nonempty");
            let victim = set.swap_remove(victim_idx);
            Some((victim.block, victim.value))
        } else {
            None
        };

        set.push(Line {
            block,
            value,
            lru: tick,
        });
        self.hints[idx] = (self.sets[idx].len() - 1) as u32;
        evicted
    }

    /// Removes a block, returning its state if present.
    pub fn remove(&mut self, block: &BlockAddr) -> Option<V> {
        let idx = self.set_index(*block);
        let set = &mut self.sets[idx];
        let pos = set.iter().position(|l| l.block == *block)?;
        Some(set.swap_remove(pos).value)
    }

    /// Number of resident blocks.
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.sets.iter().all(Vec::is_empty)
    }

    /// Drops every line.
    pub fn clear(&mut self) {
        self.sets.iter_mut().for_each(Vec::clear);
    }

    /// Iterates over `(block, state)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (BlockAddr, &V)> {
        self.sets
            .iter()
            .flat_map(|s| s.iter().map(|l| (l.block, &l.value)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(n: u64) -> BlockAddr {
        BlockAddr(n)
    }

    #[test]
    fn insert_get_remove() {
        let mut c = SetAssocCache::new(CacheConfig::new(4, 2));
        assert!(c.insert(addr(1), 10).is_none());
        assert_eq!(c.get(&addr(1)), Some(&10));
        assert_eq!(c.remove(&addr(1)), Some(10));
        assert!(c.is_empty());
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = SetAssocCache::new(CacheConfig::new(1, 3));
        c.insert(addr(1), ());
        c.insert(addr(2), ());
        c.insert(addr(3), ());
        c.get(&addr(1)); // 2 is now LRU
        let ev = c.insert(addr(4), ());
        assert_eq!(ev, Some((addr(2), ())));
    }

    #[test]
    fn replace_existing_does_not_evict() {
        let mut c = SetAssocCache::new(CacheConfig::new(1, 2));
        c.insert(addr(1), 'a');
        c.insert(addr(2), 'b');
        assert!(c.insert(addr(1), 'z').is_none());
        assert_eq!(c.peek(&addr(1)), Some(&'z'));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn sets_are_independent() {
        let mut c = SetAssocCache::new(CacheConfig::new(2, 1));
        c.insert(addr(0), 'e'); // set 0
        c.insert(addr(1), 'o'); // set 1
        assert_eq!(c.len(), 2);
        // Same set as 0 → evicts only 0.
        let ev = c.insert(addr(2), 'x');
        assert_eq!(ev, Some((addr(0), 'e')));
        assert_eq!(c.peek(&addr(1)), Some(&'o'));
    }

    #[test]
    fn peek_does_not_touch_lru() {
        let mut c = SetAssocCache::new(CacheConfig::new(1, 2));
        c.insert(addr(1), ());
        c.insert(addr(2), ());
        c.peek(&addr(1)); // must NOT protect 1
        let ev = c.insert(addr(3), ());
        assert_eq!(ev, Some((addr(1), ())));
    }

    #[test]
    fn get_mut_updates_value() {
        let mut c = SetAssocCache::new(CacheConfig::new(2, 2));
        c.insert(addr(5), 1);
        *c.get_mut(&addr(5)).unwrap() += 10;
        assert_eq!(c.peek(&addr(5)), Some(&11));
    }

    #[test]
    fn capacity_and_fill() {
        let cfg = CacheConfig::new(8, 4);
        let mut c = SetAssocCache::new(cfg);
        for i in 0..cfg.capacity_blocks() as u64 {
            assert!(c.insert(addr(i), ()).is_none(), "no eviction while cold");
        }
        assert_eq!(c.len(), cfg.capacity_blocks());
        assert!(c.insert(addr(1000), ()).is_some());
    }

    #[test]
    fn iter_visits_everything() {
        let mut c = SetAssocCache::new(CacheConfig::new(4, 2));
        for i in 0..6u64 {
            c.insert(addr(i), i);
        }
        let mut blocks: Vec<u64> = c.iter().map(|(b, _)| b.0).collect();
        blocks.sort_unstable();
        assert_eq!(blocks, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn clear_resets() {
        let mut c = SetAssocCache::new(CacheConfig::new(2, 2));
        c.insert(addr(1), ());
        c.clear();
        assert!(c.is_empty());
        assert!(!c.contains(&addr(1)));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_rejected() {
        CacheConfig::new(3, 1);
    }

    #[test]
    fn stale_mru_hint_is_harmless() {
        // swap_remove reorders ways, leaving the MRU hint pointing at a
        // different (or out-of-range) line; every lookup must still resolve
        // correctly through the tag check + fallback scan.
        let mut c = SetAssocCache::new(CacheConfig::new(1, 4));
        for i in 0..4u64 {
            c.insert(addr(i), i);
        }
        c.get(&addr(3)); // hint → way of 3
        c.remove(&addr(3)); // swap_remove: hint now stale
        for i in 0..3u64 {
            assert_eq!(c.get(&addr(i)), Some(&i));
            assert_eq!(c.peek(&addr(i)), Some(&i));
        }
        assert_eq!(c.get(&addr(3)), None);
        c.remove(&addr(0));
        c.remove(&addr(1));
        c.remove(&addr(2));
        assert!(c.is_empty());
        assert_eq!(c.peek(&addr(0)), None, "empty set with nonzero hint");
    }

    #[test]
    fn repeated_hits_use_hint_and_keep_lru_exact() {
        let mut c = SetAssocCache::new(CacheConfig::new(1, 3));
        c.insert(addr(1), ());
        c.insert(addr(2), ());
        c.insert(addr(3), ());
        // Repeated hits on 1 (hinted) must still record LRU promotions.
        for _ in 0..5 {
            assert!(c.get(&addr(1)).is_some());
        }
        c.get(&addr(3));
        let ev = c.insert(addr(4), ());
        assert_eq!(ev, Some((addr(2), ())), "2 is the true LRU victim");
    }
}
