//! Memory-system statistics, including the victimization counts of the
//! paper's Result 4.

use ltse_sim::stats::Counter;

/// Counters the memory system maintains per run.
///
/// The transactional-victimization counters regenerate the paper's Result 4
/// ("Raytrace victimized transactional L1 or L2 blocks 481 times in 48K
/// transactions, while other benchmarks victimized transactional blocks less
/// than 20 times").
#[derive(Debug, Clone, Default)]
pub struct MemStats {
    /// L1 hits (sufficient permission, no coherence traffic).
    pub l1_hits: Counter,
    /// L1 misses (including upgrades).
    pub l1_misses: Counter,
    /// Requests satisfied by the L2 without DRAM.
    pub l2_hits: Counter,
    /// Requests that went to DRAM.
    pub dram_accesses: Counter,
    /// DRAM accesses caused by a block's first-ever touch (cold misses);
    /// the remainder are capacity/conflict refetches.
    pub cold_misses: Counter,
    /// Requests forwarded to a remote owner/sharers for probe or signature
    /// check.
    pub forwards: Counter,
    /// Requests NACKed due to a signature conflict.
    pub nacks: Counter,
    /// Invalidations sent to sharers on GETM.
    pub invalidations: Counter,
    /// L1 evictions of any block.
    pub l1_evictions: Counter,
    /// L1 evictions of a block that was transactional *per the hardware
    /// signatures* (these leave the directory sticky).
    pub l1_tx_evictions_hw: Counter,
    /// L1 evictions of a block exactly in some active transaction's set
    /// (Result 4 numerator, L1 part).
    pub l1_tx_evictions_exact: Counter,
    /// L2 evictions of any block.
    pub l2_evictions: Counter,
    /// L2 evictions that lost directory state for a transactional block and
    /// therefore force later broadcasts (hardware view).
    pub l2_tx_evictions_hw: Counter,
    /// L2 evictions of a block exactly in some active transaction's set
    /// (Result 4 numerator, L2 part).
    pub l2_tx_evictions_exact: Counter,
    /// Broadcast signature checks after directory loss.
    pub lost_dir_broadcasts: Counter,
    /// Total protocol messages (requests + forwards + responses + invs),
    /// an interconnect-load proxy.
    pub messages: Counter,
    /// Messages that crossed a chip boundary (§7 multiple-CMP systems).
    pub interchip_messages: Counter,
}

impl MemStats {
    /// Creates zeroed stats.
    pub fn new() -> Self {
        MemStats::default()
    }

    /// Result 4's headline number: exact transactional victimizations from
    /// L1 or L2.
    pub fn tx_victimizations_exact(&self) -> u64 {
        self.l1_tx_evictions_exact.get() + self.l2_tx_evictions_exact.get()
    }

    /// DRAM accesses that were *not* cold (capacity/conflict refetches).
    pub fn warm_dram_refetches(&self) -> u64 {
        self.dram_accesses.get().saturating_sub(self.cold_misses.get())
    }

    /// L1 miss ratio over all L1 accesses (0 when idle).
    pub fn l1_miss_ratio(&self) -> f64 {
        let total = self.l1_hits.get() + self.l1_misses.get();
        if total == 0 {
            0.0
        } else {
            self.l1_misses.get() as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn victimization_sums_l1_and_l2() {
        let mut s = MemStats::new();
        s.l1_tx_evictions_exact.add(3);
        s.l2_tx_evictions_exact.add(2);
        assert_eq!(s.tx_victimizations_exact(), 5);
    }

    #[test]
    fn miss_ratio() {
        let mut s = MemStats::new();
        assert_eq!(s.l1_miss_ratio(), 0.0);
        s.l1_hits.add(3);
        s.l1_misses.add(1);
        assert!((s.l1_miss_ratio() - 0.25).abs() < 1e-12);
    }
}
