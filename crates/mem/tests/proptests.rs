//! Property-based protocol tests: arbitrary access interleavings must
//! uphold the MESI single-writer/multi-reader invariant under both
//! coherence substrates, with and without transactional (sticky) blocks.
//! Randomized deterministically through `ltse_sim::check`.

use ltse_sim::check::{cases, vec_of};
use ltse_sim::rng::Xoshiro256StarStar;

use ltse_mem::{
    AccessKind, AccessOutcome, BlockAddr, CoherenceKind, ConflictOracle, MemConfig, MemorySystem,
    NullOracle,
};

#[derive(Debug, Clone)]
struct Access {
    ctx: u32,
    store: bool,
    block: u64,
}

fn accesses(rng: &mut Xoshiro256StarStar, n_ctxs: u32, blocks: u64) -> Vec<Access> {
    vec_of(rng, 1, 200, |r| Access {
        ctx: r.gen_range(0, n_ctxs as u64) as u32,
        store: r.gen_bool(0.5),
        block: r.gen_range(0, blocks),
    })
}

/// MESI's fundamental safety property over the simulated L1s.
fn assert_mesi_invariant(m: &MemorySystem, blocks: u64) {
    for b in 0..blocks {
        let block = BlockAddr(b);
        let mut exclusive_holders = 0;
        let mut shared_holders = 0;
        for c in 0..m.config().n_cores {
            match m.l1_state_str(c, block) {
                "M" | "E" => exclusive_holders += 1,
                "S" => shared_holders += 1,
                _ => {}
            }
        }
        assert!(
            exclusive_holders <= 1,
            "block {b}: {exclusive_holders} exclusive holders"
        );
        assert!(
            exclusive_holders == 0 || shared_holders == 0,
            "block {b}: M/E coexists with S copies"
        );
    }
}

#[test]
fn mesi_invariant_holds_under_directory() {
    cases(48, 0xD12EC7, |rng| {
        let seq = accesses(rng, 8, 24);
        let mut m = MemorySystem::new(MemConfig::small_for_tests());
        for a in &seq {
            let out = m.access(
                a.ctx,
                if a.store { AccessKind::Store } else { AccessKind::Load },
                BlockAddr(a.block),
                &NullOracle,
            );
            assert!(out.is_done(), "no transactions ⇒ no NACKs");
            assert_mesi_invariant(&m, 24);
        }
    });
}

#[test]
fn mesi_invariant_holds_under_snooping() {
    cases(48, 0x5700D, |rng| {
        let seq = accesses(rng, 8, 24);
        let mut cfg = MemConfig::small_for_tests();
        cfg.coherence = CoherenceKind::SnoopingMesi;
        let mut m = MemorySystem::new(cfg);
        for a in &seq {
            let out = m.access(
                a.ctx,
                if a.store { AccessKind::Store } else { AccessKind::Load },
                BlockAddr(a.block),
                &NullOracle,
            );
            assert!(out.is_done());
            assert_mesi_invariant(&m, 24);
        }
    });
}

#[test]
fn nacks_never_mutate_protocol_state() {
    // An oracle that NACKs every access to the guarded blocks from
    // anyone but context 0, and treats them as transactional.
    #[derive(Debug)]
    struct Guard(Vec<u64>);
    impl ConflictOracle for Guard {
        fn check_core(&self, core: u16, _k: AccessKind, b: BlockAddr, req: u32) -> Option<u32> {
            (core == 0 && req != 0 && self.0.contains(&b.0)).then_some(0)
        }
        fn block_is_transactional_hw(&self, core: u16, b: BlockAddr) -> bool {
            core == 0 && self.0.contains(&b.0)
        }
        fn block_is_transactional_exact(&self, core: u16, b: BlockAddr) -> bool {
            self.block_is_transactional_hw(core, b)
        }
    }

    cases(48, 0x4ACC5, |rng| {
        let seq = accesses(rng, 8, 16);
        let guarded = vec_of(rng, 1, 3, |r| r.gen_range(0, 16));
        let oracle = Guard(guarded.clone());
        let mut m = MemorySystem::new(MemConfig::small_for_tests());
        // Context 0 (core 0) touches every guarded block first, so the
        // directory routes later requests through core 0's signature.
        for &g in &guarded {
            let out = m.access(0, AccessKind::Store, BlockAddr(g), &oracle);
            assert!(out.is_done(), "owner's own access can't be NACKed");
        }
        for a in &seq {
            let kind = if a.store { AccessKind::Store } else { AccessKind::Load };
            let before_states: Vec<String> = (0..m.config().n_cores)
                .map(|c| m.l1_state_str(c, BlockAddr(a.block)).to_string())
                .collect();
            let before_dir = m.dir_entry(BlockAddr(a.block));
            let out = m.access(a.ctx, kind, BlockAddr(a.block), &oracle);
            if let AccessOutcome::Nacked { nacker, .. } = out {
                assert_eq!(nacker, 0);
                // NACK must not have changed any state for this block.
                let after_states: Vec<String> = (0..m.config().n_cores)
                    .map(|c| m.l1_state_str(c, BlockAddr(a.block)).to_string())
                    .collect();
                assert_eq!(&before_states, &after_states);
                assert_eq!(before_dir, m.dir_entry(BlockAddr(a.block)));
            }
            assert_mesi_invariant(&m, 16);
        }
    });
}

#[test]
fn word_values_match_a_flat_model() {
    use ltse_mem::WordAddr;
    cases(48, 0xF1A7, |rng| {
        let writes = vec_of(rng, 1, 80, |r| (r.gen_range(0, 64), r.gen_range(1, 1000)));
        let mut m = MemorySystem::new(MemConfig::small_for_tests());
        let mut model = std::collections::HashMap::new();
        for (addr, val) in &writes {
            m.access(0, AccessKind::Store, WordAddr(*addr).block(), &NullOracle);
            m.write_word(WordAddr(*addr), *val);
            model.insert(*addr, *val);
        }
        for (addr, val) in &model {
            assert_eq!(m.read_word(WordAddr(*addr)), *val);
        }
    });
}
