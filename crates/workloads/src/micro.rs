//! Microbenchmark section sources for tests and ablation studies.

use logtm_se::WordAddr;
use ltse_sim::rng::Xoshiro256StarStar;

use crate::driver::{BodyOp, Section, SectionSource};

/// The classic contended shared counter: every section reads and writes one
/// hot block. Maximal conflict probability; the simplest smoke test.
#[derive(Debug, Clone)]
pub struct SharedCounter {
    counter: WordAddr,
    lock: WordAddr,
    remaining: u64,
    think: u64,
}

impl SharedCounter {
    /// `remaining` increments against the counter at `counter`, guarded by
    /// the lock word at `lock` in lock mode, with `think` cycles between
    /// sections.
    pub fn new(counter: WordAddr, lock: WordAddr, remaining: u64, think: u64) -> Self {
        SharedCounter {
            counter,
            lock,
            remaining,
            think,
        }
    }
}

impl SectionSource for SharedCounter {
    fn next_section(&mut self, _rng: &mut Xoshiro256StarStar) -> Option<Section> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        Some(Section {
            think: self.think,
            lock: self.lock,
            body: vec![BodyOp::Read(self.counter), BodyOp::Write(self.counter)],
            unit_done: true,
            barrier_after: None,
        })
    }
}

/// Touches one hot block (atomic RMW) plus a stride of cold blocks each
/// section — designed to blow out an L1 and exercise victimization/sticky
/// paths.
#[derive(Debug, Clone)]
pub struct HotColdArray {
    hot: WordAddr,
    cold_base: WordAddr,
    cold_blocks: u64,
    reads_per_section: u64,
    lock: WordAddr,
    remaining: u64,
    cursor: u64,
}

impl HotColdArray {
    /// `remaining` sections, each reading `reads_per_section` sequential
    /// cold blocks starting at `cold_base` (wrapping after `cold_blocks`)
    /// plus a read-modify-write of `hot`.
    pub fn new(
        hot: WordAddr,
        cold_base: WordAddr,
        cold_blocks: u64,
        reads_per_section: u64,
        lock: WordAddr,
        remaining: u64,
    ) -> Self {
        HotColdArray {
            hot,
            cold_base,
            cold_blocks,
            reads_per_section,
            lock,
            remaining,
            cursor: 0,
        }
    }
}

impl SectionSource for HotColdArray {
    fn next_section(&mut self, _rng: &mut Xoshiro256StarStar) -> Option<Section> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let mut body = vec![BodyOp::Update(self.hot)];
        for _ in 0..self.reads_per_section {
            let block_off = self.cursor % self.cold_blocks;
            self.cursor += 1;
            body.push(BodyOp::Read(WordAddr(
                self.cold_base.as_u64() + block_off * 8,
            )));
        }
        Some(Section {
            think: 50,
            lock: self.lock,
            body,
            unit_done: true,
            barrier_after: None,
        })
    }
}

/// Writes the same few blocks many times per section — the redundant-store
/// pattern the log filter exists to suppress (paper §2, "it is correct, but
/// wasteful, to write the same block to the log more than once").
#[derive(Debug, Clone)]
pub struct RepeatedWriter {
    base: WordAddr,
    blocks: u64,
    writes_per_section: u64,
    lock: WordAddr,
    remaining: u64,
}

impl RepeatedWriter {
    /// `remaining` sections, each performing `writes_per_section` stores
    /// cycling over `blocks` consecutive blocks at `base`.
    pub fn new(
        base: WordAddr,
        blocks: u64,
        writes_per_section: u64,
        lock: WordAddr,
        remaining: u64,
    ) -> Self {
        RepeatedWriter {
            base,
            blocks,
            writes_per_section,
            lock,
            remaining,
        }
    }
}

impl SectionSource for RepeatedWriter {
    fn next_section(&mut self, _rng: &mut Xoshiro256StarStar) -> Option<Section> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let body = (0..self.writes_per_section)
            .map(|i| BodyOp::Write(WordAddr(self.base.as_u64() + (i % self.blocks) * 8)))
            .collect();
        Some(Section {
            think: 100,
            lock: self.lock,
            body,
            unit_done: true,
            barrier_after: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{CsProgram, SyncMode};
    use logtm_se::{SignatureKind, SystemBuilder};

    #[test]
    fn repeated_writer_exercises_log_filter() {
        // 24 writes over 4 blocks: with a big filter only 4 undo records
        // per transaction; with no filter all 24 are logged.
        let run = |entries: usize| {
            let mut sys = SystemBuilder::small_for_tests()
                .signature(SignatureKind::Perfect)
                .log_filter_entries(entries)
                .seed(6)
                .build();
            sys.add_thread(Box::new(CsProgram::new(
                RepeatedWriter::new(WordAddr(0), 4, 24, WordAddr(1 << 12), 5),
                SyncMode::Tm,
                1,
            )));
            sys.run().unwrap()
        };
        let with = run(16);
        let without = run(0);
        assert_eq!(with.tm.log_writes, 5 * 4);
        assert_eq!(with.tm.log_writes_suppressed, 5 * 20);
        assert_eq!(without.tm.log_writes, 5 * 24);
        assert_eq!(without.tm.log_writes_suppressed, 0);
    }

    #[test]
    fn shared_counter_source_terminates() {
        let mut rng = Xoshiro256StarStar::new(1);
        let mut src = SharedCounter::new(WordAddr(0), WordAddr(64), 3, 10);
        assert!(src.next_section(&mut rng).is_some());
        assert!(src.next_section(&mut rng).is_some());
        assert!(src.next_section(&mut rng).is_some());
        assert!(src.next_section(&mut rng).is_none());
    }

    #[test]
    fn hot_cold_reads_grow_read_set() {
        let mut sys = SystemBuilder::small_for_tests()
            .signature(SignatureKind::Perfect)
            .seed(1)
            .build();
        sys.add_thread(Box::new(CsProgram::new(
            HotColdArray::new(WordAddr(0), WordAddr(1 << 16), 64, 12, WordAddr(64), 5),
            SyncMode::Tm,
            1,
        )));
        let r = sys.run().unwrap();
        assert_eq!(r.tm.commits, 5);
        assert_eq!(r.tm.read_set.max(), Some(12), "12 cold blocks");
        assert_eq!(r.tm.write_set.max(), Some(1), "the hot RMW block");
        // 12 distinct cold blocks + hot won't fit the 8-block test L1:
        // victimization must occur and stay harmless.
        assert!(r.mem.l1_tx_evictions_exact.get() > 0);
    }

    #[test]
    fn hot_cold_wraps_cursor() {
        let mut rng = Xoshiro256StarStar::new(2);
        let mut src = HotColdArray::new(WordAddr(0), WordAddr(800), 4, 6, WordAddr(64), 1);
        let s = src.next_section(&mut rng).unwrap();
        // 6 reads over 4 cold blocks wrap: addresses repeat mod 4 blocks.
        // (body[0] is the hot-block RMW; reads follow.)
        let addrs: Vec<u64> = s
            .body
            .iter()
            .filter_map(|b| match b {
                BodyOp::Read(a) if a.as_u64() >= 800 => Some(a.as_u64()),
                _ => None,
            })
            .collect();
        assert_eq!(addrs.len(), 6);
        assert_eq!(addrs[0], addrs[4]);
    }
}
