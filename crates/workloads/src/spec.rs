//! Benchmark registry and the one-call runner the harness uses.

use logtm_se::{CoherenceKind, RunError, RunReport, SignatureKind, SystemBuilder, ThreadProgram};

use crate::berkeleydb::BerkeleyDb;
use crate::cholesky::Cholesky;
use crate::driver::{CsProgram, SyncMode};
use crate::mp3d::Mp3d;
use crate::radiosity::Radiosity;
use crate::raytrace::Raytrace;

/// The paper's five benchmarks (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// BerkeleyDB lock-subsystem stress (1000-word database driver).
    BerkeleyDb,
    /// SPLASH Cholesky, input tk14.O.
    Cholesky,
    /// SPLASH Radiosity, batch input.
    Radiosity,
    /// SPLASH Raytrace, teapot input.
    Raytrace,
    /// SPLASH Mp3d, 128 molecules.
    Mp3d,
}

impl Benchmark {
    /// All benchmarks in the paper's Table 2 row order.
    pub fn all() -> [Benchmark; 5] {
        [
            Benchmark::BerkeleyDb,
            Benchmark::Cholesky,
            Benchmark::Radiosity,
            Benchmark::Raytrace,
            Benchmark::Mp3d,
        ]
    }

    /// The paper's name for the benchmark.
    pub fn name(&self) -> &'static str {
        match self {
            Benchmark::BerkeleyDb => "BerkeleyDB",
            Benchmark::Cholesky => "Cholesky",
            Benchmark::Radiosity => "Radiosity",
            Benchmark::Raytrace => "Raytrace",
            Benchmark::Mp3d => "Mp3d",
        }
    }

    /// Table 2 "Input" column.
    pub fn input_label(&self) -> &'static str {
        match self {
            Benchmark::BerkeleyDb => "1000 words",
            Benchmark::Cholesky => "tk14.O",
            Benchmark::Radiosity => "batch",
            Benchmark::Raytrace => "small image (teapot)",
            Benchmark::Mp3d => "128 molecules",
        }
    }

    /// Table 2 "Unit of Work" column.
    pub fn unit_label(&self) -> &'static str {
        match self {
            Benchmark::BerkeleyDb => "1 database read",
            Benchmark::Cholesky => "task (paper: factorization)",
            Benchmark::Radiosity => "1 task",
            Benchmark::Raytrace => "1 ray (paper: parallel phase)",
            Benchmark::Mp3d => "1 step",
        }
    }

    /// Builds the per-thread programs for this benchmark.
    pub fn programs(
        &self,
        mode: SyncMode,
        threads: u32,
        units_per_thread: u64,
    ) -> Vec<Box<dyn ThreadProgram>> {
        (0..threads as u64)
            .map(|t| -> Box<dyn ThreadProgram> {
                let token = (t + 1) << 40;
                match self {
                    Benchmark::BerkeleyDb => Box::new(CsProgram::new(
                        BerkeleyDb::new(units_per_thread),
                        mode,
                        token,
                    )),
                    Benchmark::Cholesky => {
                        Box::new(CsProgram::new(Cholesky::new(units_per_thread), mode, token))
                    }
                    Benchmark::Radiosity => Box::new(CsProgram::new(
                        Radiosity::new(t, threads as u64, units_per_thread),
                        mode,
                        token,
                    )),
                    Benchmark::Raytrace => Box::new(CsProgram::new(
                        Raytrace::new(t, units_per_thread),
                        mode,
                        token,
                    )),
                    Benchmark::Mp3d => Box::new(CsProgram::new(
                        Mp3d::new(t, threads as u64, units_per_thread),
                        mode,
                        token,
                    )),
                }
            })
            .collect()
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl Benchmark {
    fn tag(&self) -> u8 {
        match self {
            Benchmark::BerkeleyDb => 0,
            Benchmark::Cholesky => 1,
            Benchmark::Radiosity => 2,
            Benchmark::Raytrace => 3,
            Benchmark::Mp3d => 4,
        }
    }

    fn from_tag(tag: u8) -> Option<Self> {
        Some(match tag {
            0 => Benchmark::BerkeleyDb,
            1 => Benchmark::Cholesky,
            2 => Benchmark::Radiosity,
            3 => Benchmark::Raytrace,
            4 => Benchmark::Mp3d,
            _ => return None,
        })
    }
}

impl ltse_sim::cache::FpHash for Benchmark {
    fn fp_feed(&self, h: &mut ltse_sim::cache::FpHasher) {
        h.write_u64(self.tag() as u64);
    }
}

impl ltse_sim::cache::CacheValue for Benchmark {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(self.tag());
    }

    fn decode(r: &mut ltse_sim::cache::ByteReader<'_>) -> Option<Self> {
        Benchmark::from_tag(r.u8()?)
    }
}

impl ltse_sim::cache::FpHash for SyncMode {
    fn fp_feed(&self, h: &mut ltse_sim::cache::FpHasher) {
        h.write_u64(match self {
            SyncMode::Tm => 0,
            SyncMode::Lock => 1,
            SyncMode::TicketLock => 2,
        });
    }
}

impl ltse_sim::cache::CacheValue for SyncMode {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            SyncMode::Tm => 0,
            SyncMode::Lock => 1,
            SyncMode::TicketLock => 2,
        });
    }

    fn decode(r: &mut ltse_sim::cache::ByteReader<'_>) -> Option<Self> {
        match r.u8()? {
            0 => Some(SyncMode::Tm),
            1 => Some(SyncMode::Lock),
            2 => Some(SyncMode::TicketLock),
            _ => None,
        }
    }
}

/// Every field participates: a run's result is a pure function of its
/// [`RunParams`], so any change to any field must change the fingerprint
/// and force a recompute.
impl ltse_sim::cache::FpHash for RunParams {
    fn fp_feed(&self, h: &mut ltse_sim::cache::FpHasher) {
        self.benchmark.fp_feed(h);
        self.mode.fp_feed(h);
        self.signature.fp_feed(h);
        h.write_u64(self.threads as u64);
        h.write_u64(self.units_per_thread);
        h.write_u64(self.seed);
        h.write_u64(self.small_machine as u64);
        h.write_u64(self.sticky as u64);
        h.write_u64(self.log_filter_entries as u64);
        self.coherence.fp_feed(h);
        h.write_u64(self.warmup_units);
    }
}

/// Parameters for one benchmark run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunParams {
    /// Which benchmark.
    pub benchmark: Benchmark,
    /// Transactions or the lock baseline.
    pub mode: SyncMode,
    /// Signature configuration (ignored by the lock baseline except that
    /// the TM hardware still exists idle).
    pub signature: SignatureKind,
    /// Worker threads (the paper uses up to 32 contexts).
    pub threads: u32,
    /// Units of work per thread.
    pub units_per_thread: u64,
    /// Perturbation seed (§6.1 methodology).
    pub seed: u64,
    /// Use the small test machine instead of the paper's Table 1 CMP.
    pub small_machine: bool,
    /// LogTM sticky states enabled (ablation A2 sets false).
    pub sticky: bool,
    /// Log-filter entries (ablation A3 varies; 16 is the default).
    pub log_filter_entries: usize,
    /// Coherence substrate (§5 directory by default; §7 snooping).
    pub coherence: CoherenceKind,
    /// Units of work to complete before statistics start (steady-state
    /// measurement; 0 measures from cold start).
    pub warmup_units: u64,
}

impl RunParams {
    /// Paper-machine defaults for a benchmark/mode/signature triple.
    pub fn paper(benchmark: Benchmark, mode: SyncMode, signature: SignatureKind) -> Self {
        RunParams {
            benchmark,
            mode,
            signature,
            threads: 32,
            units_per_thread: 16,
            seed: 0,
            small_machine: false,
            sticky: true,
            log_filter_entries: 16,
            coherence: CoherenceKind::DirectoryMesi,
            warmup_units: 0,
        }
    }
}

/// Runs one benchmark configuration to completion.
///
/// # Errors
///
/// Propagates [`RunError`] from the system (watchdogs, misconfiguration).
pub fn run_benchmark(params: &RunParams) -> Result<RunReport, RunError> {
    let builder = if params.small_machine {
        SystemBuilder::small_for_tests()
    } else {
        SystemBuilder::paper_default()
    };
    let mut system = builder
        .signature(params.signature)
        .sticky(params.sticky)
        .coherence(params.coherence)
        .log_filter_entries(params.log_filter_entries)
        .warmup_units(params.warmup_units)
        .seed(params.seed)
        .build();
    for program in params
        .benchmark
        .programs(params.mode, params.threads, params.units_per_thread)
    {
        system.add_thread(program);
    }
    system.run()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_benchmark_runs_in_both_modes() {
        for benchmark in Benchmark::all() {
            for mode in [SyncMode::Tm, SyncMode::Lock] {
                let r = run_benchmark(&RunParams {
                    benchmark,
                    mode,
                    signature: SignatureKind::Perfect,
                    threads: 4,
                    units_per_thread: 3,
                    seed: 9,
                    small_machine: false,
                    sticky: true,
                    log_filter_entries: 16,
                    coherence: CoherenceKind::DirectoryMesi,
                    warmup_units: 0,
                })
                .unwrap_or_else(|e| panic!("{benchmark} {mode}: {e}"));
                assert_eq!(r.tm.work_units, 12, "{benchmark} {mode}");
                match mode {
                    SyncMode::Tm => assert!(r.tm.commits > 0, "{benchmark}"),
                    SyncMode::Lock | SyncMode::TicketLock => {
                        assert_eq!(r.tm.commits, 0, "{benchmark}")
                    }
                }
            }
        }
    }

    #[test]
    fn registry_metadata_complete() {
        for b in Benchmark::all() {
            assert!(!b.name().is_empty());
            assert!(!b.input_label().is_empty());
            assert!(!b.unit_label().is_empty());
            assert_eq!(b.to_string(), b.name());
        }
    }

    #[test]
    fn programs_match_thread_count() {
        let ps = Benchmark::Mp3d.programs(SyncMode::Tm, 7, 2);
        assert_eq!(ps.len(), 7);
    }
}
