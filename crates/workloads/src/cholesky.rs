//! The Cholesky workload model (SPLASH, input tk14.O).
//!
//! Sparse Cholesky factorization parallelizes over a task queue of
//! supernodes. The paper's Table 2 shows remarkably regular transactions:
//! read set exactly 4 blocks average *and* maximum, write set exactly 2 —
//! the task-queue pop is the only critical section that matters. One unit
//! of work in the paper is the whole factorization; we count each completed
//! task as a unit (both sync modes use the same definition, so Figure 4's
//! within-benchmark normalization is unaffected; EXPERIMENTS.md records the
//! deviation).

use logtm_se::WordAddr;
use ltse_sim::rng::Xoshiro256StarStar;

use crate::dist::uniform_incl;
use crate::driver::{BodyOp, Section, SectionSource};

mod layout {
    /// The task-queue head block (hot: every pop reads and writes it).
    pub const QUEUE_HEAD: u64 = 0x30_0000;
    /// Supernode descriptor blocks.
    pub const SUPER_BASE: u64 = 0x30_1000;
    pub const SUPER_BLOCKS: u64 = 256;
    /// Column data blocks.
    pub const COL_BASE: u64 = 0x31_0000;
    pub const COL_BLOCKS: u64 = 256;
    /// The task-queue mutex (lock mode).
    pub const QUEUE_MUTEX: u64 = 0x32_0000;
}

fn block(base: u64, idx: u64) -> WordAddr {
    WordAddr(base + idx * 8)
}

/// Section source for one Cholesky worker.
#[derive(Debug, Clone)]
pub struct Cholesky {
    tasks_remaining: u64,
    cursor: u64,
}

impl Cholesky {
    /// A worker that pops and processes `tasks` supernode tasks.
    pub fn new(tasks: u64) -> Self {
        Cholesky {
            tasks_remaining: tasks,
            cursor: 0,
        }
    }
}

impl SectionSource for Cholesky {
    fn next_section(&mut self, rng: &mut Xoshiro256StarStar) -> Option<Section> {
        if self.tasks_remaining == 0 {
            return None;
        }
        self.tasks_remaining -= 1;
        self.cursor += 1;
        // Task-queue pop: read head + supernode descriptor + two column
        // blocks; write head (dequeue) + the claimed descriptor.
        // Exactly 4 reads / 2 writes, matching Table 2's 4.0/4 and 2.0/2.
        let sup = rng.gen_index(layout::SUPER_BLOCKS as usize) as u64;
        let col = (self.cursor * 13) % layout::COL_BLOCKS;
        // The pop is an atomic head decrement (one owned-line RMW), then
        // the claimed supernode and its columns are read and the descriptor
        // updated. Sets: reads {sup, col, col+1, col+2} = 4, writes
        // {head, sup} = 2 — Table 2's exact regularity.
        let body = vec![
            BodyOp::Update(WordAddr(layout::QUEUE_HEAD)),
            BodyOp::Read(block(layout::SUPER_BASE, sup)),
            BodyOp::Read(block(layout::COL_BASE, col)),
            BodyOp::Read(block(layout::COL_BASE, (col + 1) % layout::COL_BLOCKS)),
            BodyOp::Read(block(layout::COL_BASE, (col + 2) % layout::COL_BLOCKS)),
            BodyOp::Write(block(layout::SUPER_BASE, sup)),
        ];
        Some(Section {
            // The factorization itself happens outside the critical
            // section: substantial per-task numeric work.
            think: uniform_incl(rng, 4_000, 12_000),
            lock: WordAddr(layout::QUEUE_MUTEX),
            body,
            unit_done: true,
            barrier_after: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{CsProgram, SyncMode};
    use logtm_se::{SignatureKind, SystemBuilder};

    #[test]
    fn footprint_is_exactly_4r_2w() {
        let mut sys = SystemBuilder::paper_default()
            .signature(SignatureKind::Perfect)
            .seed(21)
            .build();
        for t in 0..8u64 {
            sys.add_thread(Box::new(CsProgram::new(
                Cholesky::new(10),
                SyncMode::Tm,
                t << 32,
            )));
        }
        let r = sys.run().unwrap();
        // Distinct-block counting can only reduce the size (col == col+1
        // never happens; queue head never collides with others), so the
        // sets are exactly 4 and 2 — Table 2's striking regularity.
        assert_eq!(r.tm.read_set.max(), Some(4));
        assert_eq!(r.tm.write_set.max(), Some(2));
        assert!(r.tm.read_set.mean().unwrap() > 3.9);
        assert!(r.tm.write_set.mean().unwrap() > 1.9);
        assert_eq!(r.tm.work_units, 80);
    }

    #[test]
    fn queue_head_serializes_pops() {
        let mut sys = SystemBuilder::paper_default()
            .signature(SignatureKind::Perfect)
            .seed(22)
            .build();
        for t in 0..16u64 {
            sys.add_thread(Box::new(CsProgram::new(
                Cholesky::new(6),
                SyncMode::Tm,
                t << 32,
            )));
        }
        let r = sys.run().unwrap();
        assert_eq!(r.tm.commits, 96);
        assert!(
            r.tm.stalls > 0 || r.tm.aborts > 0,
            "queue-head write-write conflicts must appear"
        );
    }
}
