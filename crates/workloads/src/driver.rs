//! The critical-section driver shared by every workload.
//!
//! Each workload is a [`SectionSource`]: a deterministic stream of
//! [`Section`]s (think time, a guard lock, a body of block accesses, a
//! unit-of-work marker). [`CsProgram`] executes that stream under either
//! synchronization mode — the paper's conversion "from lock-protected
//! critical sections to transactions" is literally a one-knob switch here,
//! which is what makes the Figure 4 comparison fair.

use logtm_se::{Op, ProgCtx, ThreadProgram, WordAddr};
use ltse_sim::rng::Xoshiro256StarStar;

use crate::locks::{BarrierDriver, LockDriver, LockOutcome, TicketLockDriver};

/// Which synchronization the workload uses (the paper's Lock baseline vs.
/// LogTM-SE transactions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyncMode {
    /// Critical sections become transactions.
    Tm,
    /// Critical sections are guarded by simulated TATAS spinlocks.
    Lock,
    /// Critical sections are guarded by FIFO ticket locks (a fairness
    /// variant of the lock baseline).
    TicketLock,
}

impl std::fmt::Display for SyncMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SyncMode::Tm => "tm",
            SyncMode::Lock => "lock",
            SyncMode::TicketLock => "ticket",
        })
    }
}

/// One operation inside a critical-section body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BodyOp {
    /// Load a word.
    Read(WordAddr),
    /// Store a token to a word.
    Write(WordAddr),
    /// Atomic read-modify-write of a word (e.g. `head--` on an owned cache
    /// line): one coherence action, one memory event. Using this for hot
    /// RMW blocks matches real code, where the load and store are adjacent
    /// instructions on the same resident line — modelling them as two
    /// separate long-latency events would manufacture reader-upgrade
    /// deadlocks the original workloads don't exhibit.
    Update(WordAddr),
    /// Compute.
    Work(u64),
    /// A non-transactional window (system call / allocation): in TM mode
    /// wrapped in an escape action (paper §6.2, BerkeleyDB); in lock mode
    /// plain work.
    EscapedWork(u64),
}

/// One critical section plus its surrounding think time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Section {
    /// Non-critical compute before entering.
    pub think: u64,
    /// The lock word guarding this section in `Lock` mode.
    pub lock: WordAddr,
    /// The body, executed under the lock / inside the transaction.
    pub body: Vec<BodyOp>,
    /// Whether completing this section finishes one unit of work
    /// (Table 2's throughput metric).
    pub unit_done: bool,
    /// A barrier to cross *after* the section (SPLASH programs keep their
    /// barriers when critical sections become transactions): the two-word
    /// barrier base and the participant count.
    pub barrier_after: Option<(WordAddr, u64)>,
}

/// A deterministic stream of sections — the essence of one workload thread.
///
/// Sources must be [`Send`] so whole configured systems (and thus the
/// [`CsProgram`]s wrapping these sources) can cross OS threads when sweeps
/// fan out over the parallel experiment runner.
pub trait SectionSource: Send {
    /// The next section, or `None` when the thread's work is exhausted.
    fn next_section(&mut self, rng: &mut Xoshiro256StarStar) -> Option<Section>;
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    FetchSection,
    Think,
    EnterTx,
    Acquire,
    Body,
    EscapeWork,
    EscapeClose,
    Exit,
    Barrier,
    Unit,
    Done,
}

/// Executes a [`SectionSource`] under the chosen [`SyncMode`].
///
/// In TM mode an aborted transaction replays its body from the first body
/// op (the section itself is retained — deterministic retry, as a register
/// checkpoint restore would give).
pub struct CsProgram<S> {
    source: S,
    mode: SyncMode,
    token: u64,
    phase: Phase,
    section: Option<Section>,
    body_ix: usize,
    lock: LockDriver,
    ticket: TicketLockDriver,
    barrier: Option<BarrierDriver>,
}

impl<S: SectionSource> CsProgram<S> {
    /// Wraps a section source. `token` seeds the values this thread writes
    /// (distinct per thread so tests can detect torn state).
    pub fn new(source: S, mode: SyncMode, token: u64) -> Self {
        CsProgram {
            source,
            mode,
            token,
            phase: Phase::FetchSection,
            section: None,
            body_ix: 0,
            lock: LockDriver::new(WordAddr(0)),
            ticket: TicketLockDriver::new(WordAddr(0)),
            barrier: None,
        }
    }

    fn body_op(&mut self) -> Option<Op> {
        let section = self.section.as_ref().expect("active section");
        let op = *section.body.get(self.body_ix)?;
        self.body_ix += 1;
        self.token = self.token.wrapping_add(1);
        Some(match op {
            BodyOp::Read(a) => Op::Read(a),
            BodyOp::Write(a) => Op::Write(a, self.token | 1),
            BodyOp::Update(a) => Op::FetchAdd(a, 1),
            BodyOp::Work(c) => Op::Work(c),
            BodyOp::EscapedWork(c) => {
                // Expand into escape-begin; the Work and escape-end follow
                // through dedicated phases.
                self.body_ix -= 1; // revisit to fetch the work amount
                match self.mode {
                    SyncMode::Tm => {
                        self.phase = Phase::EscapeWork;
                        return Some(Op::EscapeBegin);
                    }
                    SyncMode::Lock | SyncMode::TicketLock => {
                        self.body_ix += 1;
                        Op::Work(c)
                    }
                }
            }
        })
    }
}

impl<S: SectionSource> ThreadProgram for CsProgram<S> {
    fn next_op(&mut self, t: &mut ProgCtx) -> Op {
        loop {
            match self.phase {
                Phase::FetchSection => match self.source.next_section(t.rng) {
                    None => {
                        self.phase = Phase::Done;
                    }
                    Some(s) => {
                        self.section = Some(s);
                        self.body_ix = 0;
                        self.phase = Phase::Think;
                    }
                },
                Phase::Think => {
                    let think = self.section.as_ref().expect("section").think;
                    self.phase = match self.mode {
                        SyncMode::Tm => Phase::EnterTx,
                        SyncMode::Lock => {
                            let lock = self.section.as_ref().expect("section").lock;
                            self.lock.start(lock);
                            Phase::Acquire
                        }
                        SyncMode::TicketLock => {
                            let lock = self.section.as_ref().expect("section").lock;
                            self.ticket.start(lock);
                            Phase::Acquire
                        }
                    };
                    if think > 0 {
                        return Op::Work(think);
                    }
                }
                Phase::EnterTx => {
                    self.phase = Phase::Body;
                    return Op::TxBegin;
                }
                Phase::Acquire => {
                    let outcome = match self.mode {
                        SyncMode::TicketLock => self.ticket.step(t.last_value, t.rng),
                        _ => self.lock.step(t.last_value, t.rng),
                    };
                    match outcome {
                        LockOutcome::Issue(op) => return op,
                        LockOutcome::Acquired => {
                            self.phase = Phase::Body;
                        }
                    }
                }
                Phase::Body => match self.body_op() {
                    Some(op) => return op,
                    None => {
                        self.phase = Phase::Exit;
                    }
                },
                Phase::EscapeWork => {
                    let section = self.section.as_ref().expect("section");
                    let BodyOp::EscapedWork(c) = section.body[self.body_ix] else {
                        unreachable!("escape phase without escaped op");
                    };
                    self.body_ix += 1;
                    self.phase = Phase::EscapeClose;
                    return Op::Work(c);
                }
                Phase::EscapeClose => {
                    self.phase = Phase::Body;
                    return Op::EscapeEnd;
                }
                Phase::Exit => {
                    let section = self.section.as_ref().expect("section");
                    self.phase = if section.barrier_after.is_some() {
                        Phase::Barrier
                    } else if section.unit_done {
                        Phase::Unit
                    } else {
                        Phase::FetchSection
                    };
                    return match self.mode {
                        SyncMode::Tm => Op::TxCommit,
                        SyncMode::Lock => self.lock.release(),
                        SyncMode::TicketLock => self.ticket.release(),
                    };
                }
                Phase::Barrier => {
                    let section = self.section.as_ref().expect("section");
                    let (base, participants) =
                        section.barrier_after.expect("barrier phase has a spec");
                    // The driver's sense state must persist across
                    // crossings of the *same* barrier, so it is created
                    // once and reused.
                    let barrier = self
                        .barrier
                        .get_or_insert_with(|| BarrierDriver::new(base, participants));
                    match barrier.step(t.last_value, t.rng) {
                        LockOutcome::Issue(op) => return op,
                        LockOutcome::Acquired => {
                            self.phase = if section.unit_done {
                                Phase::Unit
                            } else {
                                Phase::FetchSection
                            };
                        }
                    }
                }
                Phase::Unit => {
                    self.phase = Phase::FetchSection;
                    return Op::WorkUnitDone;
                }
                Phase::Done => return Op::Done,
            }
        }
    }

    fn on_tx_abort(&mut self, _t: &mut ProgCtx) {
        debug_assert_eq!(self.mode, SyncMode::Tm, "locks cannot abort");
        // Replay the section body inside a fresh transaction.
        self.body_ix = 0;
        self.phase = Phase::EnterTx;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logtm_se::{SignatureKind, SystemBuilder};

    /// A source producing `n` identical sections.
    struct Fixed {
        n: u32,
        section: Section,
    }

    impl SectionSource for Fixed {
        fn next_section(&mut self, _rng: &mut Xoshiro256StarStar) -> Option<Section> {
            if self.n == 0 {
                return None;
            }
            self.n -= 1;
            Some(self.section.clone())
        }
    }

    fn counter_section(counter: WordAddr, lock: WordAddr) -> Section {
        Section {
            think: 20,
            lock,
            body: vec![BodyOp::Read(counter), BodyOp::Write(counter)],
            unit_done: true,
            barrier_after: None,
        }
    }

    #[test]
    fn tm_mode_sections_run_as_transactions() {
        let mut sys = SystemBuilder::small_for_tests()
            .signature(SignatureKind::Perfect)
            .seed(1)
            .build();
        for t in 0..4u64 {
            sys.add_thread(Box::new(CsProgram::new(
                Fixed {
                    n: 10,
                    section: counter_section(WordAddr(0), WordAddr(64)),
                },
                SyncMode::Tm,
                t << 32,
            )));
        }
        let r = sys.run().unwrap();
        assert_eq!(r.tm.commits, 40);
        assert_eq!(r.tm.work_units, 40);
        // The final value is SOME thread's token — just not zero.
        assert_ne!(sys.read_word(WordAddr(0)), 0);
    }

    #[test]
    fn lock_mode_serializes_sections_without_transactions() {
        let mut sys = SystemBuilder::small_for_tests().seed(2).build();
        for t in 0..4u64 {
            sys.add_thread(Box::new(CsProgram::new(
                Fixed {
                    n: 10,
                    section: counter_section(WordAddr(0), WordAddr(64)),
                },
                SyncMode::Lock,
                t << 32,
            )));
        }
        let r = sys.run().unwrap();
        assert_eq!(r.tm.commits, 0, "no transactions in lock mode");
        assert_eq!(r.tm.work_units, 40);
        assert_eq!(sys.read_word(WordAddr(64)), 0, "lock released at the end");
    }

    /// Lock mode must actually provide mutual exclusion: model a
    /// read-modify-write counter through the section body by writing
    /// token = last+1. We verify exclusion indirectly: with a single lock
    /// word, the number of lock acquires equals sections, and the lock
    /// word ends free.
    #[test]
    fn lock_mutual_exclusion_invariants() {
        let mut sys = SystemBuilder::small_for_tests().seed(3).build();
        for t in 0..8u64 {
            sys.add_thread(Box::new(CsProgram::new(
                Fixed {
                    n: 5,
                    section: Section {
                        think: 5,
                        lock: WordAddr(64),
                        body: vec![
                            BodyOp::Read(WordAddr(0)),
                            BodyOp::Work(50),
                            BodyOp::Write(WordAddr(0)),
                        ],
                        unit_done: true,
                        barrier_after: None,
                    },
                },
                SyncMode::Lock,
                (t + 1) << 40,
            )));
        }
        let r = sys.run().unwrap();
        assert_eq!(r.tm.work_units, 40);
        assert_eq!(sys.read_word(WordAddr(64)), 0);
    }

    #[test]
    fn escaped_work_uses_escape_actions_in_tm_mode() {
        let section = Section {
            think: 0,
            lock: WordAddr(64),
            body: vec![
                BodyOp::Write(WordAddr(0)),
                BodyOp::EscapedWork(100),
                BodyOp::Read(WordAddr(0)),
            ],
            unit_done: true,
            barrier_after: None,
        };
        let mut sys = SystemBuilder::small_for_tests().seed(4).build();
        sys.add_thread(Box::new(CsProgram::new(
            Fixed {
                n: 3,
                section: section.clone(),
            },
            SyncMode::Tm,
            1,
        )));
        let r = sys.run().unwrap();
        assert_eq!(r.tm.escapes, 3);
        assert_eq!(r.tm.commits, 3);

        // Lock mode: same stream, no escapes.
        let mut sys = SystemBuilder::small_for_tests().seed(4).build();
        sys.add_thread(Box::new(CsProgram::new(
            Fixed { n: 3, section },
            SyncMode::Lock,
            1,
        )));
        let r = sys.run().unwrap();
        assert_eq!(r.tm.escapes, 0);
    }

    #[test]
    fn ticket_mode_runs_sections_fifo_correct() {
        let mut sys = SystemBuilder::small_for_tests().seed(6).build();
        for t in 0..6u64 {
            sys.add_thread(Box::new(CsProgram::new(
                Fixed {
                    n: 8,
                    section: counter_section(WordAddr(0), WordAddr(64)),
                },
                SyncMode::TicketLock,
                (t + 1) << 40,
            )));
        }
        let r = sys.run().unwrap();
        assert_eq!(r.tm.work_units, 48);
        assert_eq!(r.tm.commits, 0);
        // Both ticket words end consistent: next == serving == acquires.
        assert_eq!(sys.read_word(WordAddr(64)), 48, "next-ticket counter");
        assert_eq!(sys.read_word(WordAddr(65)), 48, "now-serving counter");
    }

    #[test]
    fn barrier_sections_run_in_lockstep() {
        // Each thread marks a per-round word; with a barrier after every
        // section, no thread can be a full round ahead of another.
        struct Rounds {
            n: u32,
            me: u64,
            participants: u64,
        }
        impl SectionSource for Rounds {
            fn next_section(&mut self, _rng: &mut Xoshiro256StarStar) -> Option<Section> {
                if self.n == 0 {
                    return None;
                }
                self.n -= 1;
                Some(Section {
                    think: 20 + self.me * 15, // deliberately uneven paces
                    lock: WordAddr(1 << 13),
                    body: vec![BodyOp::Update(WordAddr(512 + self.me * 8))],
                    unit_done: true,
                    barrier_after: Some((WordAddr(1 << 14), self.participants)),
                })
            }
        }
        let mut sys = SystemBuilder::small_for_tests()
            .signature(logtm_se::SignatureKind::Perfect)
            .seed(7)
            .build();
        let n = 5u64;
        for t in 0..n {
            sys.add_thread(Box::new(CsProgram::new(
                Rounds {
                    n: 6,
                    me: t,
                    participants: n,
                },
                SyncMode::Tm,
                (t + 1) << 40,
            )));
        }
        let r = sys.run().unwrap();
        assert_eq!(r.tm.work_units, 30);
        for t in 0..n {
            assert_eq!(sys.read_word(WordAddr(512 + t * 8)), 6, "thread {t}");
        }
        // Barrier words consistent: counter reset to 0 after the last round.
        assert_eq!(sys.read_word(WordAddr(1 << 14)), 0);
    }

    #[test]
    fn aborts_replay_the_same_body() {
        // Two threads hammer the same two blocks in opposite order: plenty
        // of aborts, but the section stream must not be consumed twice.
        let mk = |a, b| Section {
            think: 0,
            lock: WordAddr(64),
            body: vec![BodyOp::Read(a), BodyOp::Write(b), BodyOp::Write(a)],
            unit_done: true,
            barrier_after: None,
        };
        let mut sys = SystemBuilder::small_for_tests()
            .signature(SignatureKind::Perfect)
            .seed(5)
            .build();
        sys.add_thread(Box::new(CsProgram::new(
            Fixed {
                n: 20,
                section: mk(WordAddr(0), WordAddr(8)),
            },
            SyncMode::Tm,
            1 << 40,
        )));
        sys.add_thread(Box::new(CsProgram::new(
            Fixed {
                n: 20,
                section: mk(WordAddr(8), WordAddr(0)),
            },
            SyncMode::Tm,
            2 << 40,
        )));
        let r = sys.run().unwrap();
        assert_eq!(r.tm.work_units, 40, "every section eventually committed");
        assert_eq!(r.tm.commits, 40);
        assert!(r.tm.aborts > 0, "opposite-order access must deadlock-abort");
    }
}
