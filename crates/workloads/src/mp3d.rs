//! The Mp3d workload model (SPLASH, 128 molecules).
//!
//! Mp3d simulates rarefied hypersonic flow: each step moves molecules
//! through space cells, updating per-cell state when a molecule enters or
//! leaves, with occasional multi-molecule collisions. The paper's Table 2:
//! read avg 2.2 / max 18, write avg 1.7 / max 10; one unit of work = one
//! step (512 units, 17 733 transactions).
//!
//! Model: per-molecule move sections (read molecule + cell, write both),
//! with a small probability of a collision section touching several cells
//! and molecules at once (the tails). Cells are shared; molecules are
//! mostly thread-private — conflicts arise when molecules land in the same
//! cell, which is the workload's natural (moderate) contention.

use logtm_se::WordAddr;
use ltse_sim::rng::Xoshiro256StarStar;

use crate::dist::uniform_incl;
use crate::driver::{BodyOp, Section, SectionSource};

mod layout {
    /// Molecule state blocks (128 molecules, one block each).
    pub const MOLECULE_BASE: u64 = 0x60_0000;
    pub const MOLECULES: u64 = 128;
    /// Space-cell blocks.
    pub const CELL_BASE: u64 = 0x60_8000;
    pub const CELLS: u64 = 512;
    /// Per-cell mutexes (lock mode).
    pub const CELL_MUTEX_BASE: u64 = 0x61_0000;
    /// The per-step barrier (counter + sense words).
    pub const STEP_BARRIER: u64 = 0x61_8000;
}

fn molecule(idx: u64) -> WordAddr {
    WordAddr(layout::MOLECULE_BASE + (idx % layout::MOLECULES) * 8)
}

fn cell(idx: u64) -> WordAddr {
    WordAddr(layout::CELL_BASE + (idx % layout::CELLS) * 8)
}

fn cell_mutex(idx: u64) -> WordAddr {
    WordAddr(layout::CELL_MUTEX_BASE + (idx % layout::CELLS) * 8)
}

/// Section source for one Mp3d worker.
#[derive(Debug, Clone)]
pub struct Mp3d {
    thread_id: u64,
    n_threads: u64,
    steps_remaining: u64,
    moves_left_in_step: u64,
    moves_per_step: u64,
    cursor: u64,
}

impl Mp3d {
    /// A worker running `steps` simulation steps, each moving its share of
    /// the 128 molecules.
    pub fn new(thread_id: u64, n_threads: u64, steps: u64) -> Self {
        let moves_per_step = (layout::MOLECULES / n_threads.max(1)).max(1);
        Mp3d {
            thread_id,
            n_threads,
            steps_remaining: steps,
            moves_left_in_step: moves_per_step,
            moves_per_step,
            cursor: thread_id * 57,
        }
    }
}

impl SectionSource for Mp3d {
    fn next_section(&mut self, rng: &mut Xoshiro256StarStar) -> Option<Section> {
        if self.steps_remaining == 0 {
            return None;
        }
        self.cursor += 1;

        // My molecule for this move, and the (shared) cell it lands in.
        let mol = self.thread_id + self.n_threads * (self.cursor % self.moves_per_step.max(1));
        let target_cell = rng.gen_range(0, layout::CELLS);

        let unit_done = self.moves_left_in_step == 1;
        if unit_done {
            self.steps_remaining -= 1;
            self.moves_left_in_step = self.moves_per_step;
        } else {
            self.moves_left_in_step -= 1;
        }

        let body = if rng.gen_bool(0.06) {
            // Collision: several molecules and neighbouring cells at once —
            // the Table 2 tails (reads ≤18, writes ≤10).
            let extra = uniform_incl(rng, 3, 8);
            let mut body = vec![BodyOp::Read(molecule(mol)), BodyOp::Update(cell(target_cell))];
            for i in 0..extra {
                body.push(BodyOp::Read(molecule(mol + i * 7 + 1)));
                body.push(BodyOp::Read(cell(target_cell + i + 1)));
            }
            for i in 0..(extra / 2 + 1) {
                body.push(BodyOp::Update(cell(target_cell + i + 1)));
                body.push(BodyOp::Write(molecule(mol + i * 7 + 1)));
            }
            body
        } else {
            // Plain move: 2 reads, ~1.7 writes on average.
            let mut body = vec![
                BodyOp::Read(molecule(mol)),
                BodyOp::Update(cell(target_cell)),
            ];
            if rng.gen_bool(0.4) {
                body.push(BodyOp::Read(cell(target_cell + 1)));
            }
            if rng.gen_bool(0.6) {
                body.push(BodyOp::Write(molecule(mol)));
            }
            body
        };

        Some(Section {
            think: uniform_incl(rng, 1_500, 4_500),
            lock: cell_mutex(target_cell),
            body,
            unit_done,
            // The real Mp3d separates steps with a barrier; we keep it
            // (paper §6.2: "retaining barriers and other synchronization
            // mechanisms").
            barrier_after: unit_done
                .then_some((WordAddr(layout::STEP_BARRIER), self.n_threads)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{CsProgram, SyncMode};
    use logtm_se::{SignatureKind, SystemBuilder};

    fn run_tm(seed: u64, steps: u64, threads: u64) -> logtm_se::RunReport {
        let mut sys = SystemBuilder::paper_default()
            .signature(SignatureKind::Perfect)
            .seed(seed)
            .build();
        for t in 0..threads {
            sys.add_thread(Box::new(CsProgram::new(
                Mp3d::new(t, threads, steps),
                SyncMode::Tm,
                t << 32,
            )));
        }
        sys.run().unwrap()
    }

    #[test]
    fn footprint_matches_table2_band() {
        let r = run_tm(51, 6, 8);
        let read_avg = r.tm.read_set.mean().unwrap();
        let write_avg = r.tm.write_set.mean().unwrap();
        assert!((1.8..=4.0).contains(&read_avg), "read avg {read_avg}");
        assert!((1.2..=3.5).contains(&write_avg), "write avg {write_avg}");
        assert!(r.tm.read_set.max().unwrap() <= 20);
        assert!(r.tm.write_set.max().unwrap() <= 12);
        assert_eq!(r.tm.work_units, 48);
    }

    #[test]
    fn units_count_steps_not_moves() {
        let r = run_tm(52, 3, 4);
        assert_eq!(r.tm.work_units, 12);
        // Each step moves ~128/4 = 32 molecules ⇒ many more txns than units.
        assert!(r.tm.commits >= 12 * 16);
    }
}
