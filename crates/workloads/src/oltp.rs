//! Streaming open-loop OLTP/KV workload generator.
//!
//! Models the request-shaped traffic of a key-value/OLTP service front-end:
//! each thread is a worker draining an open-loop arrival process of short
//! multi-key transactions over a Zipfian-skewed key space. Unlike the
//! Table-2 workloads (which materialize a fixed section stream up front),
//! every transaction here is synthesized *lazily* from a per-transaction
//! PRNG seed, so a single run can commit millions of transactions in
//! bounded memory — per-thread state is a fixed-size op array plus a
//! quantized latency histogram, independent of transaction count.
//!
//! # Determinism and cross-backend equivalence
//!
//! The op stream of transaction `i` on thread `t` is a pure function of
//! `(seed, t, i)`: aborts replay the exact same reads and writes, and the
//! simulator and the STM backend execute identical per-thread streams. All
//! writes are commutative [`Op::FetchAdd`]s, so the final KV state is
//! independent of commit interleaving — the two backends must agree on
//! every key's final value ([`OltpOutcome::kv_fingerprint`]), which the
//! differential tests assert alongside the `SerializabilityOracle`.
//!
//! # Pacing and latency
//!
//! On the simulator, arrivals are *absolute simulated cycles*: a worker
//! whose next transaction is not yet due issues [`Op::Work`] until the
//! arrival time, and commit latency is `commit_cycle - arrival_cycle`,
//! which includes open-loop queueing delay when the system falls behind.
//! The STM backend runs on real threads where [`ltse_sim::Cycle`] is just
//! an op counter, so there the same gap parameter becomes think-time
//! `Op::Work` units and latency is wall-clock nanoseconds from first
//! `TxBegin` (spanning retries) to commit.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use logtm_se::{
    BackendReport, BackoffKind, ContentionPolicy, MemConfig, Op, ProgCtx, SystemBuilder,
    ThreadProgram, TmBackend, WordAddr, MAX_CORES,
};
use ltse_sim::config::seed_sequence;
use ltse_sim::rng::{mix64, Xoshiro256StarStar};
use ltse_sim::stats::Histogram;
use ltse_stm::StmBuilder;

use crate::backend::BackendKind;

/// Words per key: one cache block, so distinct keys never share a block
/// and conflicts reflect key-level contention only.
const WORDS_PER_KEY: u64 = 8;

/// Hard cap on ops per transaction (the per-thread op buffer is this big).
pub const MAX_TX_OPS: usize = 16;

/// Latency values keep this many significant bits before being recorded,
/// bounding histogram size (≤ ~2100 distinct buckets over the full u64
/// range) at ≲3% relative error.
const LATENCY_SIG_BITS: u32 = 6;

/// Domain-separation tag mixed into the base seed before deriving
/// per-thread streams ("OLTP" in ASCII).
const SEED_TAG: u64 = 0x4f4c_5450;

/// Configuration for one open-loop OLTP run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OltpConfig {
    /// Worker threads (one open-loop client each).
    pub threads: u32,
    /// Transactions each thread must commit.
    pub txs_per_thread: u64,
    /// Key-space size; key `k` lives at word `8k`.
    pub keys: u64,
    /// Zipfian skew in `[0, 1)`; `0.0` is uniform, `0.99` is YCSB-hot.
    pub theta: f64,
    /// Percentage of ops that are reads (the rest are fetch-adds).
    pub read_pct: u8,
    /// Minimum ops per transaction (≥ 1).
    pub ops_min: u8,
    /// Maximum ops per transaction (≤ [`MAX_TX_OPS`]).
    pub ops_max: u8,
    /// Mean inter-arrival gap: simulated cycles on `sim`, think-time work
    /// units on `stm`. `0` degenerates to a closed loop.
    pub mean_gap: u64,
    /// Base seed; every thread and transaction derives from it.
    pub seed: u64,
}

impl Default for OltpConfig {
    fn default() -> Self {
        OltpConfig {
            threads: 8,
            txs_per_thread: 100,
            keys: 1024,
            theta: 0.8,
            read_pct: 80,
            ops_min: 2,
            ops_max: 8,
            mean_gap: 200,
            seed: 42,
        }
    }
}

impl OltpConfig {
    /// Total transactions the run must commit.
    pub fn total_txs(&self) -> u64 {
        self.threads as u64 * self.txs_per_thread
    }

    /// Checks parameter ranges, returning a description of the first
    /// violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.threads == 0 {
            return Err("threads must be >= 1".into());
        }
        if self.threads as usize > MAX_CORES {
            return Err(format!("threads must be <= {MAX_CORES}"));
        }
        if self.txs_per_thread == 0 {
            return Err("txs_per_thread must be >= 1".into());
        }
        if self.keys == 0 {
            return Err("keys must be >= 1".into());
        }
        if !(0.0..1.0).contains(&self.theta) {
            return Err(format!("theta must be in [0, 1), got {}", self.theta));
        }
        if self.read_pct > 100 {
            return Err("read_pct must be <= 100".into());
        }
        if self.ops_min == 0 {
            return Err("ops_min must be >= 1".into());
        }
        if self.ops_min > self.ops_max {
            return Err("ops_min must be <= ops_max".into());
        }
        if self.ops_max as usize > MAX_TX_OPS {
            return Err(format!("ops_max must be <= {MAX_TX_OPS}"));
        }
        Ok(())
    }
}

/// YCSB-style Zipfian sampler over `[0, n)`, rank 0 hottest.
///
/// Uses the Gray et al. rejection-free inversion (the YCSB
/// `ZipfianGenerator` without item scrambling, so rank order is stable and
/// testable). Constants are precomputed once — `new` is `O(n)`, `sample`
/// is `O(1)`.
#[derive(Debug, Clone, Copy)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2: f64,
}

impl Zipfian {
    /// Builds a sampler for `n` items with skew `theta` in `[0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is outside `[0, 1)`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n >= 1, "Zipfian needs n >= 1");
        assert!((0.0..1.0).contains(&theta), "theta must be in [0, 1)");
        if theta == 0.0 {
            return Zipfian {
                n,
                theta,
                alpha: 0.0,
                zetan: 0.0,
                eta: 0.0,
                zeta2: 0.0,
            };
        }
        let zetan: f64 = (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum();
        let zeta2 = 1.0 + 0.5f64.powf(theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = if n == 1 {
            0.0
        } else {
            (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan)
        };
        Zipfian {
            n,
            theta,
            alpha,
            zetan,
            eta,
            zeta2,
        }
    }

    /// The probability of rank 0 (the hottest item).
    pub fn hot_mass(&self) -> f64 {
        if self.theta == 0.0 {
            1.0 / self.n as f64
        } else {
            1.0 / self.zetan
        }
    }

    /// Draws one rank in `[0, n)`.
    pub fn sample(&self, rng: &mut Xoshiro256StarStar) -> u64 {
        if self.theta == 0.0 {
            return rng.gen_range(0, self.n);
        }
        let u = rng.gen_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if self.n >= 2 && uz < self.zeta2 {
            return 1;
        }
        let r = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        r.min(self.n - 1)
    }
}

/// Drops all but the top [`LATENCY_SIG_BITS`] significant bits of `v`, so
/// histograms over arbitrary latency ranges stay small.
fn quantize_latency(v: u64) -> u64 {
    let bits = 64 - v.leading_zeros();
    if bits <= LATENCY_SIG_BITS {
        v
    } else {
        let shift = bits - LATENCY_SIG_BITS;
        (v >> shift) << shift
    }
}

/// Which clock paces arrivals and measures latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PaceClock {
    /// Simulated cycles (`ProgCtx::now`): absolute open-loop arrivals.
    Cycles,
    /// Wall clock: think-time pacing, `Instant`-based latency in ns.
    Wall,
}

/// Results funnelled out of the worker programs.
#[derive(Default)]
struct Collector {
    committed: u64,
    latency: Histogram,
}

/// One synthesized transactional op.
#[derive(Debug, Clone, Copy)]
enum TxOp {
    Read(WordAddr),
    Add(WordAddr, u64),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Waiting for the next arrival (or done).
    Arrive,
    /// Issue `TxBegin`.
    Begin,
    /// Issue body ops, then `TxCommit`.
    Ops,
    /// The commit succeeded: record latency, advance.
    Record,
    /// All transactions committed; merged into the collector.
    Finished,
}

/// An open-loop OLTP worker: a [`ThreadProgram`] state machine that
/// synthesizes each transaction on demand from a per-transaction seed.
struct OltpProgram {
    // Immutable parameters.
    zipf: Zipfian,
    clock: PaceClock,
    thread_seed: u64,
    txs_per_thread: u64,
    read_pct: u8,
    ops_min: u8,
    ops_max: u8,
    mean_gap: u64,
    // Arrival process (advanced exactly once per transaction, never on
    // abort, so retries don't perturb the schedule).
    arrival_rng: Xoshiro256StarStar,
    arrival: u64,
    think: u64,
    // Current transaction.
    tx_ix: u64,
    ops: [TxOp; MAX_TX_OPS],
    n_ops: u8,
    op_ix: u8,
    phase: Phase,
    start_instant: Option<Instant>,
    // Results.
    hist: Histogram,
    committed: u64,
    collector: Arc<Mutex<Collector>>,
}

impl OltpProgram {
    fn new(
        cfg: &OltpConfig,
        zipf: Zipfian,
        clock: PaceClock,
        thread_seed: u64,
        collector: Arc<Mutex<Collector>>,
    ) -> Self {
        let mut p = OltpProgram {
            zipf,
            clock,
            thread_seed,
            txs_per_thread: cfg.txs_per_thread,
            read_pct: cfg.read_pct,
            ops_min: cfg.ops_min,
            ops_max: cfg.ops_max,
            mean_gap: cfg.mean_gap,
            arrival_rng: Xoshiro256StarStar::new(mix64(thread_seed ^ SEED_TAG)),
            arrival: 0,
            think: 0,
            tx_ix: 0,
            ops: [TxOp::Read(WordAddr(0)); MAX_TX_OPS],
            n_ops: 0,
            op_ix: 0,
            phase: Phase::Arrive,
            start_instant: None,
            hist: Histogram::new(),
            committed: 0,
            collector,
        };
        let gap = p.sample_gap();
        p.arrival = gap;
        p.think = gap;
        p.gen_tx();
        p
    }

    fn sample_gap(&mut self) -> u64 {
        if self.mean_gap == 0 {
            0
        } else {
            self.arrival_rng.gen_range(0, 2 * self.mean_gap + 1)
        }
    }

    /// Regenerates the op array for `tx_ix` from its derived seed. Called
    /// once per transaction — an abort keeps the array and replays it.
    fn gen_tx(&mut self) {
        let tx_tag = mix64(self.tx_ix.wrapping_add(1));
        let mut rng = Xoshiro256StarStar::new(mix64(self.thread_seed ^ tx_tag));
        let span = (self.ops_max - self.ops_min) as u64 + 1;
        self.n_ops = self.ops_min + rng.gen_range(0, span) as u8;
        for i in 0..self.n_ops as usize {
            let key = self.zipf.sample(&mut rng);
            let addr = WordAddr(key * WORDS_PER_KEY);
            self.ops[i] = if rng.gen_range(0, 100) < self.read_pct as u64 {
                TxOp::Read(addr)
            } else {
                TxOp::Add(addr, 1 + rng.gen_range(0, 8))
            };
        }
    }

    /// Moves to the next transaction after a commit.
    fn advance(&mut self) {
        self.tx_ix += 1;
        self.start_instant = None;
        if self.tx_ix < self.txs_per_thread {
            let gap = self.sample_gap();
            self.arrival = self.arrival.saturating_add(gap);
            self.think = gap;
            self.gen_tx();
        }
    }
}

impl ThreadProgram for OltpProgram {
    fn next_op(&mut self, t: &mut ProgCtx) -> Op {
        loop {
            match self.phase {
                Phase::Arrive => {
                    if self.tx_ix >= self.txs_per_thread {
                        if let Ok(mut c) = self.collector.lock() {
                            c.committed += self.committed;
                            c.latency.merge(&self.hist);
                        }
                        self.phase = Phase::Finished;
                        return Op::Done;
                    }
                    self.phase = Phase::Begin;
                    match self.clock {
                        PaceClock::Cycles => {
                            let now = t.now.as_u64();
                            if now < self.arrival {
                                return Op::Work(self.arrival - now);
                            }
                        }
                        PaceClock::Wall => {
                            if self.think > 0 {
                                return Op::Work(self.think);
                            }
                        }
                    }
                }
                Phase::Begin => {
                    if self.clock == PaceClock::Wall && self.start_instant.is_none() {
                        self.start_instant = Some(Instant::now());
                    }
                    self.op_ix = 0;
                    self.phase = Phase::Ops;
                    return Op::TxBegin;
                }
                Phase::Ops => {
                    if self.op_ix < self.n_ops {
                        let op = self.ops[self.op_ix as usize];
                        self.op_ix += 1;
                        return match op {
                            TxOp::Read(a) => Op::Read(a),
                            TxOp::Add(a, d) => Op::FetchAdd(a, d),
                        };
                    }
                    self.phase = Phase::Record;
                    return Op::TxCommit;
                }
                Phase::Record => {
                    let latency = match self.clock {
                        PaceClock::Cycles => t.now.as_u64().saturating_sub(self.arrival),
                        PaceClock::Wall => self
                            .start_instant
                            .map(|s| s.elapsed().as_nanos() as u64)
                            .unwrap_or(0),
                    };
                    self.hist.record(quantize_latency(latency));
                    self.committed += 1;
                    self.advance();
                    self.phase = Phase::Arrive;
                    return Op::WorkUnitDone;
                }
                Phase::Finished => return Op::Done,
            }
        }
    }

    fn on_tx_abort(&mut self, _t: &mut ProgCtx) {
        // Replay the same transaction: keep the op array, the arrival time,
        // and (on the wall clock) the start instant, so latency spans
        // retries and the schedule is abort-independent.
        debug_assert!(matches!(self.phase, Phase::Ops | Phase::Record));
        self.phase = Phase::Begin;
    }
}

/// The result of one [`run_oltp`] call.
#[derive(Debug, Clone)]
pub struct OltpOutcome {
    /// Which engine ran the workload.
    pub backend: BackendKind,
    /// The backend's own report (wall time, commits, aborts, …).
    pub report: BackendReport,
    /// Transactions committed as counted by the workers (one per
    /// `WorkUnitDone`); equals [`OltpConfig::total_txs`] on success.
    pub committed_txs: u64,
    /// Commit-latency histogram, quantized to ~3% relative error.
    /// Simulated cycles on `sim`, wall-clock nanoseconds on `stm`.
    pub latency: Histogram,
    /// Order-independent digest of the final KV state: XOR over
    /// `mix64(mix64(key + 1) ^ value)` for every nonzero key. Identical
    /// across backends for the same config because all writes commute.
    pub kv_fingerprint: u64,
}

impl OltpOutcome {
    /// Commit-latency percentile in permille (`500` = p50, `999` = p999).
    pub fn latency_permille(&self, p: u32) -> Option<u64> {
        self.latency.percentile_permille(p)
    }

    /// Committed transactions per wall-clock second.
    pub fn goodput_tx_per_sec(&self) -> f64 {
        let secs = self.report.wall.as_secs_f64();
        if secs > 0.0 {
            self.committed_txs as f64 / secs
        } else {
            0.0
        }
    }
}

/// Smallest core count whose `scaled_cmp` hosts `threads` contexts.
fn sim_cores_for(threads: u32) -> u16 {
    threads.max(4).min(MAX_CORES as u32) as u16
}

/// Contention-management overrides threaded into both backends by
/// [`run_oltp_with`]. `None` fields keep each backend's defaults, so
/// `PolicyTune::default()` reproduces [`run_oltp`] exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PolicyTune {
    /// Contention policy (shared vocabulary across both backends).
    pub contention: Option<ContentionPolicy>,
    /// Backoff family shaping post-abort waits.
    pub backoff_kind: Option<BackoffKind>,
    /// Consecutive-abort threshold for serial escalation: the simulator's
    /// `TmConfig::escalate_after` and the STM's `max_retries` — one knob,
    /// both serial fallbacks.
    pub escalate_after: Option<u32>,
    /// Pin for [`ContentionPolicy::Adaptive`] (determinism tests).
    pub adaptive_pin: Option<ContentionPolicy>,
}

/// Runs one open-loop OLTP configuration on the chosen backend.
///
/// `check` enables the serializability oracle (its replay log grows with
/// commit count, so leave it off for throughput measurement). Returns an
/// error if the config is invalid, the run fails, or the oracle objects.
pub fn run_oltp(kind: BackendKind, cfg: &OltpConfig, check: bool) -> Result<OltpOutcome, String> {
    run_oltp_with(kind, cfg, check, &PolicyTune::default())
}

/// [`run_oltp`] with contention-management overrides applied to whichever
/// backend runs (the policy-sweep experiment's entry point).
pub fn run_oltp_with(
    kind: BackendKind,
    cfg: &OltpConfig,
    check: bool,
    tune: &PolicyTune,
) -> Result<OltpOutcome, String> {
    cfg.validate()?;
    let zipf = Zipfian::new(cfg.keys, cfg.theta);
    let collector = Arc::new(Mutex::new(Collector::default()));
    let clock = match kind {
        BackendKind::Sim => PaceClock::Cycles,
        BackendKind::Stm => PaceClock::Wall,
    };
    let mut backend: Box<dyn TmBackend> = match kind {
        BackendKind::Sim => {
            let mut b = SystemBuilder::paper_default()
                .mem_config(MemConfig::scaled_cmp(sim_cores_for(cfg.threads), 1))
                .seed(cfg.seed)
                .check_serializability(check)
                .escalate_after(tune.escalate_after)
                .adaptive_pin(tune.adaptive_pin);
            if let Some(p) = tune.contention {
                b = b.contention(p);
            }
            if let Some(k) = tune.backoff_kind {
                b = b.backoff_kind(k);
            }
            Box::new(b.build())
        }
        BackendKind::Stm => {
            // One word per key is touched; size the word table well past the
            // key count so it never fills.
            let slots = cfg.keys.saturating_mul(2).next_power_of_two().max(1 << 18) as usize;
            let mut b = StmBuilder::new()
                .seed(cfg.seed)
                .mem_slots(slots)
                .check_serializability(check)
                .adaptive_pin(tune.adaptive_pin);
            if let Some(p) = tune.contention {
                b = b.contention(p);
            }
            if let Some(k) = tune.backoff_kind {
                b = b.backoff_kind(k);
            }
            if let Some(n) = tune.escalate_after {
                b = b.max_retries(n);
            }
            Box::new(b.build())
        }
    };
    for &thread_seed in &seed_sequence(cfg.seed ^ SEED_TAG, cfg.threads as usize) {
        backend.add_thread(Box::new(OltpProgram::new(
            cfg,
            zipf,
            clock,
            thread_seed,
            Arc::clone(&collector),
        )));
    }
    let report = backend.run_backend()?;
    if check {
        let errs = backend.finish_checks();
        if !errs.is_empty() {
            return Err(format!("oracle violations: {}", errs.join("; ")));
        }
    }
    let mut kv_fingerprint = 0u64;
    for k in 0..cfg.keys {
        let v = backend.read_word(WordAddr(k * WORDS_PER_KEY));
        if v != 0 {
            kv_fingerprint ^= mix64(mix64(k + 1) ^ v);
        }
    }
    let c = collector
        .lock()
        .map_err(|_| "oltp collector poisoned".to_string())?;
    Ok(OltpOutcome {
        backend: kind,
        report,
        committed_txs: c.committed,
        latency: c.latency.clone(),
        kv_fingerprint,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> OltpConfig {
        OltpConfig {
            threads: 4,
            txs_per_thread: 50,
            keys: 128,
            theta: 0.6,
            read_pct: 50,
            ops_min: 2,
            ops_max: 6,
            mean_gap: 50,
            seed: 7,
        }
    }

    #[test]
    fn config_validation_rejects_bad_parameters() {
        assert!(OltpConfig::default().validate().is_ok());
        for bad in [
            OltpConfig {
                threads: 0,
                ..small()
            },
            OltpConfig {
                txs_per_thread: 0,
                ..small()
            },
            OltpConfig { keys: 0, ..small() },
            OltpConfig {
                theta: 1.0,
                ..small()
            },
            OltpConfig {
                read_pct: 101,
                ..small()
            },
            OltpConfig {
                ops_min: 0,
                ..small()
            },
            OltpConfig {
                ops_min: 9,
                ops_max: 8,
                ..small()
            },
            OltpConfig {
                ops_max: MAX_TX_OPS as u8 + 1,
                ..small()
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn zipfian_theta_zero_is_uniform() {
        let z = Zipfian::new(100, 0.0);
        let mut rng = Xoshiro256StarStar::new(3);
        let mut counts = [0u64; 100];
        let draws = 100_000;
        for _ in 0..draws {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        let expected = draws as f64 / 100.0;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.25, "rank {i}: {c} vs expected {expected}");
        }
    }

    #[test]
    fn zipfian_skew_concentrates_mass_on_hot_keys() {
        let n = 1000;
        let z = Zipfian::new(n, 0.99);
        let mut rng = Xoshiro256StarStar::new(11);
        let draws = 200_000u64;
        let mut hot = 0u64;
        let mut top10 = 0u64;
        for _ in 0..draws {
            let r = z.sample(&mut rng);
            if r == 0 {
                hot += 1;
            }
            if r < 10 {
                top10 += 1;
            }
        }
        // Empirical hot-key mass must sit near the analytic 1/zeta(n, θ)
        // and far above the uniform 1/n.
        let hot_frac = hot as f64 / draws as f64;
        let expect = z.hot_mass();
        assert!(
            (hot_frac - expect).abs() < 0.02,
            "hot mass {hot_frac:.4} vs analytic {expect:.4}"
        );
        assert!(hot_frac > 20.0 / n as f64, "skew missing: {hot_frac:.4}");
        assert!(
            top10 as f64 / draws as f64 > 0.35,
            "top-10 mass too small: {}",
            top10 as f64 / draws as f64
        );
    }

    #[test]
    fn quantize_keeps_small_values_exact_and_bounds_error() {
        for v in 0..64 {
            assert_eq!(quantize_latency(v), v);
        }
        for v in [1000u64, 123_456, 1 << 40, u64::MAX] {
            let q = quantize_latency(v);
            assert!(q <= v);
            assert!((v - q) as f64 / (v as f64) < 0.04, "{v} -> {q}");
        }
    }

    #[test]
    fn sim_run_is_deterministic_across_concurrent_runs() {
        // Two runs of the same config on different OS threads (as the
        // parallel sweep runner would launch them) must agree exactly.
        let cfg = small();
        let h1 = std::thread::spawn(move || run_oltp(BackendKind::Sim, &cfg, false).unwrap());
        let h2 = std::thread::spawn(move || run_oltp(BackendKind::Sim, &cfg, false).unwrap());
        let a = h1.join().unwrap();
        let b = h2.join().unwrap();
        assert_eq!(a.committed_txs, cfg.total_txs());
        assert_eq!(a.committed_txs, b.committed_txs);
        assert_eq!(a.latency, b.latency, "latency histograms must match");
        assert_eq!(a.kv_fingerprint, b.kv_fingerprint);
        assert_eq!(a.report.sim_cycles, b.report.sim_cycles);
        assert_eq!(a.report.commits, b.report.commits);
        assert_eq!(a.report.aborts, b.report.aborts);
    }

    #[test]
    fn both_backends_reach_identical_final_kv_state_under_oracle() {
        let cfg = small();
        let sim = run_oltp(BackendKind::Sim, &cfg, true).expect("sim run");
        let stm = run_oltp(BackendKind::Stm, &cfg, true).expect("stm run");
        assert_eq!(sim.committed_txs, cfg.total_txs());
        assert_eq!(stm.committed_txs, cfg.total_txs());
        assert_eq!(
            sim.kv_fingerprint, stm.kv_fingerprint,
            "commutative writes must converge to one KV state"
        );
        assert!(sim.report.sim_cycles.is_some());
        assert!(stm.report.sim_cycles.is_none());
        assert!(sim.latency_permille(500).is_some());
        assert!(stm.latency_permille(999).is_some());
    }

    #[test]
    fn streaming_keeps_histogram_bounded_at_high_tx_counts() {
        // 20k transactions on two threads: the latency histogram must stay
        // within the quantization bound (≤ ~2100 distinct values over the
        // full u64 range) rather than growing with transaction count, and
        // per-program state is a fixed array — nothing is materialized up
        // front.
        let cfg = OltpConfig {
            threads: 2,
            txs_per_thread: 10_000,
            keys: 512,
            theta: 0.5,
            read_pct: 90,
            ops_min: 1,
            ops_max: 3,
            mean_gap: 10,
            seed: 19,
        };
        let out = run_oltp(BackendKind::Sim, &cfg, false).expect("sim run");
        assert_eq!(out.committed_txs, 20_000);
        let distinct = out.latency.iter().count();
        let bound = (1 << (LATENCY_SIG_BITS - 1)) * 64 + 64;
        assert!(
            distinct <= bound,
            "{distinct} histogram entries exceeds quantization bound {bound}"
        );
        let p50 = out.latency_permille(500).unwrap();
        let p999 = out.latency_permille(999).unwrap();
        assert!(p50 <= p999);
    }

    #[test]
    fn open_loop_latency_includes_queueing_delay() {
        // A saturated open loop (tiny gap) must show commit latencies well
        // above the per-transaction service time as the backlog builds.
        let base = OltpConfig {
            threads: 4,
            txs_per_thread: 200,
            keys: 64,
            theta: 0.9,
            read_pct: 20,
            ops_min: 4,
            ops_max: 8,
            mean_gap: 1,
            seed: 23,
        };
        let relaxed = OltpConfig {
            mean_gap: 20_000,
            ..base
        };
        let hot = run_oltp(BackendKind::Sim, &base, false).unwrap();
        let cold = run_oltp(BackendKind::Sim, &relaxed, false).unwrap();
        let hot_p50 = hot.latency_permille(500).unwrap();
        let cold_p50 = cold.latency_permille(500).unwrap();
        assert!(
            hot_p50 > cold_p50,
            "saturated p50 {hot_p50} should exceed relaxed p50 {cold_p50}"
        );
    }
}
