//! Small distribution helpers for footprint calibration.

use ltse_sim::rng::Xoshiro256StarStar;

/// A clamped geometric draw with approximately the given mean: values start
/// at 1, have a long tail, and are clamped to `max`. This matches the
/// paper's observation that read/write-set distributions are "highly
/// skewed" (§6.3): small averages with rare large outliers.
pub(crate) fn clamped_geo(rng: &mut Xoshiro256StarStar, mean: f64, max: u64) -> u64 {
    debug_assert!(mean >= 1.0);
    let p = 1.0 / mean;
    let mut v = 1u64;
    while v < max && !rng.gen_bool(p) {
        v += 1;
    }
    v
}

/// Uniform draw in `[lo, hi]` inclusive.
pub(crate) fn uniform_incl(rng: &mut Xoshiro256StarStar, lo: u64, hi: u64) -> u64 {
    rng.gen_range(lo, hi + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geo_mean_approximately_right() {
        let mut rng = Xoshiro256StarStar::new(3);
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| clamped_geo(&mut rng, 8.0, 1_000)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 8.0).abs() < 0.5, "mean {mean}");
    }

    #[test]
    fn geo_respects_clamp() {
        let mut rng = Xoshiro256StarStar::new(4);
        for _ in 0..10_000 {
            assert!(clamped_geo(&mut rng, 8.0, 30) <= 30);
        }
    }

    #[test]
    fn uniform_incl_covers_endpoints() {
        let mut rng = Xoshiro256StarStar::new(5);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..1_000 {
            match uniform_incl(&mut rng, 2, 4) {
                2 => lo_seen = true,
                4 => hi_seen = true,
                3 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(lo_seen && hi_seen);
    }
}
