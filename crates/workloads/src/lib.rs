//! Workload models for the LogTM-SE evaluation.
//!
//! The paper (§6.2) converts lock-based multi-threaded programs — BerkeleyDB
//! and four SPLASH benchmarks (Cholesky, Radiosity, Raytrace, Mp3d) — to use
//! transactions in place of lock-protected critical sections, and measures
//! throughput in units of work (Table 2). The original programs are SPARC
//! binaries driven by Simics; what the evaluation actually depends on is
//! each program's *critical-section footprint*: how many blocks transactions
//! read and write (average and tail), how skewed the contention is, and how
//! much non-critical work separates sections.
//!
//! This crate models exactly that, calibrated to the paper's Table 2:
//!
//! | Benchmark  | txns/unit profile | read avg/max | write avg/max |
//! |------------|-------------------|--------------|---------------|
//! | BerkeleyDB | hot lock-subsystem metadata | 8.1 / 30 | 6.8 / 28 |
//! | Cholesky   | regular task pops           | 4.0 / 4  | 2.0 / 2  |
//! | Radiosity  | task queues + stealing      | 2.0 / 25 | 1.5 / 45 |
//! | Raytrace   | hot ray-id counter + rare huge read-set | 5.8 / **550** | 2.0 / 3 |
//! | Mp3d       | particle/cell updates       | 2.2 / 18 | 1.7 / 10 |
//!
//! Every workload runs in two [`SyncMode`]s over the *same* section stream:
//! `Tm` brackets each section with `TxBegin`/`TxCommit`; `Lock` guards it
//! with a test-and-test-and-set spinlock simulated through the same memory
//! system (so Figure 4's "speedup over locks" is apples-to-apples).
//!
//! # Example
//!
//! ```
//! use ltse_workloads::{Benchmark, RunParams, SyncMode};
//! use logtm_se::{CoherenceKind, SignatureKind};
//!
//! let report = ltse_workloads::run_benchmark(&RunParams {
//!     benchmark: Benchmark::Mp3d,
//!     mode: SyncMode::Tm,
//!     signature: SignatureKind::Perfect,
//!     threads: 8,
//!     units_per_thread: 4,
//!     seed: 1,
//!     small_machine: true,
//!     sticky: true,
//!     log_filter_entries: 16,
//!     coherence: CoherenceKind::DirectoryMesi,
//!     warmup_units: 0,
//! })
//! .expect("runs to completion");
//! assert_eq!(report.tm.work_units, 32);
//! assert!(report.tm.commits > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod berkeleydb;
mod cholesky;
mod dist;
mod driver;
mod locks;
mod micro;
mod mp3d;
mod oltp;
mod radiosity;
mod raytrace;
mod spec;

pub use backend::{build_backend, run_on_backend, BackendKind};
pub use driver::{BodyOp, CsProgram, Section, SectionSource, SyncMode};
pub use locks::{BarrierDriver, LockDriver, LockOutcome, TicketLockDriver};
pub use micro::{HotColdArray, RepeatedWriter, SharedCounter};
pub use oltp::{run_oltp, run_oltp_with, OltpConfig, OltpOutcome, PolicyTune, Zipfian, MAX_TX_OPS};
pub use spec::{run_benchmark, Benchmark, RunParams};

pub use berkeleydb::BerkeleyDb;
pub use cholesky::Cholesky;
pub use mp3d::Mp3d;
pub use radiosity::Radiosity;
pub use raytrace::Raytrace;
