//! Spinlocks simulated through the memory system.
//!
//! The lock baseline of Figure 4 must pay real coherence costs: a contended
//! test-and-test-and-set lock ping-pongs its cache block between cores
//! exactly as the original pthread-mutex programs did. [`LockDriver`] is a
//! small resumable state machine a [`crate::CsProgram`] delegates ops to.

use logtm_se::{Op, WordAddr};
use ltse_sim::rng::Xoshiro256StarStar;

/// What the lock driver wants next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockOutcome {
    /// Issue this op and feed the result back via [`LockDriver::step`].
    Issue(Op),
    /// The lock is held by this thread; proceed into the critical section.
    Acquired,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Read-spin until the lock word looks free.
    SpinRead,
    /// Saw it free; attempt the CAS.
    TryCas,
    /// Post-CAS: check whether we won.
    CheckCas,
    /// Backoff work issued after a lost CAS.
    Backoff,
}

/// A test-and-test-and-set (TATAS) spinlock acquire/release driver.
///
/// Acquire protocol: spin with plain loads while the word is nonzero (cheap
/// shared-state spinning), CAS 0→1 when it looks free, brief randomized
/// backoff on a lost race.
///
/// ```
/// use logtm_se::{Op, WordAddr};
/// use ltse_workloads::{LockDriver, LockOutcome};
/// use ltse_sim::rng::Xoshiro256StarStar;
///
/// let mut rng = Xoshiro256StarStar::new(1);
/// let mut lock = LockDriver::new(WordAddr(100));
/// // First step wants to read the lock word:
/// let LockOutcome::Issue(Op::Read(a)) = lock.step(0, &mut rng) else { panic!() };
/// assert_eq!(a, WordAddr(100));
/// // The word is free (0) → CAS attempt:
/// let LockOutcome::Issue(Op::Cas { .. }) = lock.step(0, &mut rng) else { panic!() };
/// // CAS returned old value 0 → we won:
/// assert_eq!(lock.step(0, &mut rng), LockOutcome::Acquired);
/// assert_eq!(lock.release(), Op::Write(WordAddr(100), 0));
/// ```
#[derive(Debug, Clone)]
pub struct LockDriver {
    addr: WordAddr,
    phase: Phase,
    acquires: u64,
    spins: u64,
    /// Consecutive lost CAS races; drives exponential backoff so a
    /// thundering herd cannot convoy forever.
    losses: u32,
}

impl LockDriver {
    /// Creates a driver for the lock word at `addr`.
    pub fn new(addr: WordAddr) -> Self {
        LockDriver {
            addr,
            phase: Phase::SpinRead,
            acquires: 0,
            spins: 0,
            losses: 0,
        }
    }

    /// Resets the driver for a fresh acquire of (possibly) another lock.
    pub fn start(&mut self, addr: WordAddr) {
        self.addr = addr;
        self.phase = Phase::SpinRead;
    }

    /// Advances the acquire state machine. `last_value` is the result of
    /// the previously issued op (the loaded word or the CAS's old value);
    /// pass anything on the first call.
    pub fn step(&mut self, last_value: u64, rng: &mut Xoshiro256StarStar) -> LockOutcome {
        match self.phase {
            Phase::SpinRead => {
                self.phase = Phase::TryCas;
                LockOutcome::Issue(Op::Read(self.addr))
            }
            Phase::TryCas => {
                if last_value == 0 {
                    self.phase = Phase::CheckCas;
                    LockOutcome::Issue(Op::Cas {
                        addr: self.addr,
                        expected: 0,
                        new: 1,
                    })
                } else {
                    // Still held: keep read-spinning (with a tiny pause so
                    // the spin loop costs cycles like a real one).
                    self.spins += 1;
                    self.phase = Phase::TryCas;
                    LockOutcome::Issue(Op::Read(self.addr))
                }
            }
            Phase::CheckCas => {
                if last_value == 0 {
                    self.acquires += 1;
                    self.losses = 0;
                    self.phase = Phase::SpinRead; // armed for the next use
                    LockOutcome::Acquired
                } else {
                    // Lost the race; exponential randomized backoff, then
                    // spin again.
                    self.spins += 1;
                    self.losses += 1;
                    self.phase = Phase::Backoff;
                    let window = 40u64 << self.losses.min(5);
                    LockOutcome::Issue(Op::Work(rng.gen_range(10, window)))
                }
            }
            Phase::Backoff => {
                self.phase = Phase::TryCas;
                LockOutcome::Issue(Op::Read(self.addr))
            }
        }
    }

    /// The release store.
    pub fn release(&self) -> Op {
        Op::Write(self.addr, 0)
    }

    /// `(successful acquires, spin iterations)` for contention diagnostics.
    pub fn stats(&self) -> (u64, u64) {
        (self.acquires, self.spins)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TicketPhase {
    TakeTicket,
    SpinServing,
    CheckServing,
}

/// A ticket (FIFO) spinlock driver: `fetch-add` the ticket counter, then
/// spin on the now-serving word. Fair by construction — heavily contended
/// TATAS locks can starve unlucky threads; tickets cannot.
///
/// Layout: the lock occupies two words of one block — `addr` holds the
/// next-ticket counter, `addr + 1` the now-serving counter.
///
/// ```
/// use logtm_se::{Op, WordAddr};
/// use ltse_workloads::{TicketLockDriver, LockOutcome};
/// use ltse_sim::rng::Xoshiro256StarStar;
///
/// let mut rng = Xoshiro256StarStar::new(1);
/// let mut lock = TicketLockDriver::new(WordAddr(64));
/// // Take a ticket:
/// let LockOutcome::Issue(Op::FetchAdd(a, 1)) = lock.step(0, &mut rng) else { panic!() };
/// assert_eq!(a, WordAddr(64));
/// // FetchAdd returned old=0 → our ticket is 0; read now-serving:
/// let LockOutcome::Issue(Op::Read(s)) = lock.step(0, &mut rng) else { panic!() };
/// assert_eq!(s, WordAddr(65));
/// // Now-serving reads 0 == our ticket → acquired:
/// assert_eq!(lock.step(0, &mut rng), LockOutcome::Acquired);
/// // Release bumps now-serving:
/// assert_eq!(lock.release(), Op::Write(WordAddr(65), 1));
/// ```
#[derive(Debug, Clone)]
pub struct TicketLockDriver {
    next: WordAddr,
    serving: WordAddr,
    phase: TicketPhase,
    my_ticket: u64,
    acquires: u64,
    spins: u64,
}

impl TicketLockDriver {
    /// Creates a driver for the two-word ticket lock at `addr`.
    pub fn new(addr: WordAddr) -> Self {
        TicketLockDriver {
            next: addr,
            serving: WordAddr(addr.as_u64() + 1),
            phase: TicketPhase::TakeTicket,
            my_ticket: 0,
            acquires: 0,
            spins: 0,
        }
    }

    /// Re-arms the driver for a fresh acquire of (possibly) another lock.
    pub fn start(&mut self, addr: WordAddr) {
        self.next = addr;
        self.serving = WordAddr(addr.as_u64() + 1);
        self.phase = TicketPhase::TakeTicket;
    }

    /// Advances the acquire machine; same contract as [`LockDriver::step`].
    pub fn step(&mut self, last_value: u64, rng: &mut Xoshiro256StarStar) -> LockOutcome {
        match self.phase {
            TicketPhase::TakeTicket => {
                self.phase = TicketPhase::SpinServing;
                LockOutcome::Issue(Op::FetchAdd(self.next, 1))
            }
            TicketPhase::SpinServing => {
                self.my_ticket = last_value; // the fetch-add's old value
                self.phase = TicketPhase::CheckServing;
                LockOutcome::Issue(Op::Read(self.serving))
            }
            TicketPhase::CheckServing => {
                if last_value == self.my_ticket {
                    self.acquires += 1;
                    self.phase = TicketPhase::TakeTicket;
                    LockOutcome::Acquired
                } else {
                    self.spins += 1;
                    // Proportional backoff: the further our ticket, the
                    // longer we can safely wait before re-reading.
                    let ahead = self.my_ticket.saturating_sub(last_value).max(1);
                    self.phase = TicketPhase::CheckServing;
                    let wait = rng.gen_range(1, ahead * 30 + 2);
                    // Re-read after the wait; modelled as one Work then the
                    // Read on the next step.
                    LockOutcome::Issue(if wait > 4 {
                        Op::Work(wait)
                    } else {
                        Op::Read(self.serving)
                    })
                }
            }
        }
    }

    /// The release store: bump now-serving to hand off FIFO.
    pub fn release(&self) -> Op {
        Op::Write(self.serving, self.my_ticket + 1)
    }

    /// `(successful acquires, spin iterations)`.
    pub fn stats(&self) -> (u64, u64) {
        (self.acquires, self.spins)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BarrierPhase {
    Arrive,
    CheckArrival,
    SpinSense,
    CheckSense,
}

/// A sense-reversing centralized barrier driven through the simulated
/// memory system (SPLASH programs separate their phases with exactly this
/// structure; the paper "retain[s] barriers and other synchronization
/// mechanisms" when transactifying them).
///
/// Layout: `addr` holds the arrival counter, `addr + 1` the global sense.
/// The last arriver resets the counter and flips the sense; everyone else
/// spins on the sense word (which is cache-resident while they wait).
///
/// ```
/// use logtm_se::{Op, WordAddr};
/// use ltse_workloads::{BarrierDriver, LockOutcome};
/// use ltse_sim::rng::Xoshiro256StarStar;
///
/// let mut rng = Xoshiro256StarStar::new(1);
/// let mut b = BarrierDriver::new(WordAddr(32), 2);
/// // Arrive:
/// let LockOutcome::Issue(Op::FetchAdd(a, 1)) = b.step(0, &mut rng) else { panic!() };
/// assert_eq!(a, WordAddr(32));
/// // Old count 1 == participants-1 ⇒ we are last: reset counter…
/// let LockOutcome::Issue(Op::Write(c, 0)) = b.step(1, &mut rng) else { panic!() };
/// assert_eq!(c, WordAddr(32));
/// // …flip the sense, and pass.
/// let LockOutcome::Issue(Op::Write(s, 1)) = b.step(0, &mut rng) else { panic!() };
/// assert_eq!(s, WordAddr(33));
/// assert_eq!(b.step(0, &mut rng), LockOutcome::Acquired);
/// ```
#[derive(Debug, Clone)]
pub struct BarrierDriver {
    counter: WordAddr,
    sense: WordAddr,
    participants: u64,
    my_sense: u64,
    phase: BarrierPhase,
    last_arriver_step: u8,
    crossings: u64,
}

impl BarrierDriver {
    /// Creates a barrier driver over the two words at `addr` for
    /// `participants` threads.
    ///
    /// # Panics
    ///
    /// Panics if `participants == 0`.
    pub fn new(addr: WordAddr, participants: u64) -> Self {
        assert!(participants > 0, "a barrier needs participants");
        BarrierDriver {
            counter: addr,
            sense: WordAddr(addr.as_u64() + 1),
            participants,
            my_sense: 1,
            phase: BarrierPhase::Arrive,
            last_arriver_step: 0,
            crossings: 0,
        }
    }

    /// Advances the barrier machine; same contract as [`LockDriver::step`].
    /// `LockOutcome::Acquired` here means "passed the barrier".
    pub fn step(&mut self, last_value: u64, rng: &mut Xoshiro256StarStar) -> LockOutcome {
        match self.phase {
            BarrierPhase::Arrive => {
                self.phase = BarrierPhase::CheckArrival;
                self.last_arriver_step = 0;
                LockOutcome::Issue(Op::FetchAdd(self.counter, 1))
            }
            BarrierPhase::CheckArrival => {
                // `last_value` is the fetch-add's old count on the first
                // visit; once the last-arriver sub-machine has started,
                // later results are from its own writes.
                if self.last_arriver_step > 0 || last_value + 1 == self.participants {
                    // Last arriver: reset the counter, then release by
                    // flipping the sense.
                    match self.last_arriver_step {
                        0 => {
                            self.last_arriver_step = 1;
                            LockOutcome::Issue(Op::Write(self.counter, 0))
                        }
                        1 => {
                            self.last_arriver_step = 2;
                            LockOutcome::Issue(Op::Write(self.sense, self.my_sense))
                        }
                        _ => {
                            self.pass();
                            LockOutcome::Acquired
                        }
                    }
                } else {
                    self.phase = BarrierPhase::SpinSense;
                    LockOutcome::Issue(Op::Read(self.sense))
                }
            }
            BarrierPhase::SpinSense => {
                // The read result arrives in the next step.
                self.phase = BarrierPhase::CheckSense;
                LockOutcome::Issue(Op::Read(self.sense))
            }
            BarrierPhase::CheckSense => {
                if last_value == self.my_sense {
                    self.pass();
                    LockOutcome::Acquired
                } else {
                    self.phase = BarrierPhase::CheckSense;
                    // Brief pause between spin reads.
                    LockOutcome::Issue(if rng.gen_bool(0.5) {
                        Op::Work(rng.gen_range(5, 40))
                    } else {
                        Op::Read(self.sense)
                    })
                }
            }
        }
    }

    fn pass(&mut self) {
        self.crossings += 1;
        self.my_sense = 1 - self.my_sense; // sense reversal
        self.phase = BarrierPhase::Arrive;
    }

    /// How many times this thread has crossed the barrier.
    pub fn crossings(&self) -> u64 {
        self.crossings
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Xoshiro256StarStar {
        Xoshiro256StarStar::new(7)
    }

    #[test]
    fn fast_path_three_steps() {
        let mut r = rng();
        let mut l = LockDriver::new(WordAddr(5));
        assert!(matches!(l.step(0, &mut r), LockOutcome::Issue(Op::Read(_))));
        assert!(matches!(
            l.step(0, &mut r),
            LockOutcome::Issue(Op::Cas { expected: 0, new: 1, .. })
        ));
        assert_eq!(l.step(0, &mut r), LockOutcome::Acquired);
        assert_eq!(l.stats().0, 1);
    }

    #[test]
    fn spins_while_held() {
        let mut r = rng();
        let mut l = LockDriver::new(WordAddr(5));
        l.step(0, &mut r); // issue read
        // Lock reads as held (1) repeatedly → keeps issuing reads.
        for _ in 0..10 {
            assert!(matches!(l.step(1, &mut r), LockOutcome::Issue(Op::Read(_))));
        }
        assert!(l.stats().1 >= 10);
        // Finally free → CAS.
        assert!(matches!(l.step(0, &mut r), LockOutcome::Issue(Op::Cas { .. })));
    }

    #[test]
    fn lost_cas_backs_off_then_respins() {
        let mut r = rng();
        let mut l = LockDriver::new(WordAddr(5));
        l.step(0, &mut r); // read issued
        l.step(0, &mut r); // free → CAS issued
        // CAS old value = 1: someone beat us.
        let out = l.step(1, &mut r);
        assert!(matches!(out, LockOutcome::Issue(Op::Work(_))));
        // After backoff: read again.
        assert!(matches!(l.step(0, &mut r), LockOutcome::Issue(Op::Read(_))));
    }

    #[test]
    fn release_writes_zero() {
        let l = LockDriver::new(WordAddr(9));
        assert_eq!(l.release(), Op::Write(WordAddr(9), 0));
    }

    #[test]
    fn ticket_fast_path() {
        let mut r = rng();
        let mut l = TicketLockDriver::new(WordAddr(8));
        assert!(matches!(l.step(0, &mut r), LockOutcome::Issue(Op::FetchAdd(_, 1))));
        assert!(matches!(l.step(3, &mut r), LockOutcome::Issue(Op::Read(_))));
        // Now serving 3 == my ticket 3 → acquired.
        assert_eq!(l.step(3, &mut r), LockOutcome::Acquired);
        assert_eq!(l.release(), Op::Write(WordAddr(9), 4));
    }

    #[test]
    fn ticket_spins_until_served() {
        let mut r = rng();
        let mut l = TicketLockDriver::new(WordAddr(8));
        l.step(0, &mut r); // fetch-add issued
        l.step(5, &mut r); // my ticket = 5; read serving issued
        // Serving 2: keep waiting (work or re-read) until serving == 5.
        for _ in 0..20 {
            match l.step(2, &mut r) {
                LockOutcome::Issue(Op::Work(_)) | LockOutcome::Issue(Op::Read(_)) => {}
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(l.step(5, &mut r), LockOutcome::Acquired);
    }

    #[test]
    fn barrier_last_arriver_releases() {
        let mut r = rng();
        let mut b = BarrierDriver::new(WordAddr(0), 3);
        b.step(0, &mut r); // fetch-add issued
        // Old count 2 → we are the 3rd of 3: reset, flip, pass.
        assert!(matches!(b.step(2, &mut r), LockOutcome::Issue(Op::Write(_, 0))));
        assert!(matches!(b.step(0, &mut r), LockOutcome::Issue(Op::Write(_, 1))));
        assert_eq!(b.step(0, &mut r), LockOutcome::Acquired);
        assert_eq!(b.crossings(), 1);
    }

    #[test]
    fn barrier_waiter_spins_until_sense_flips() {
        let mut r = rng();
        let mut b = BarrierDriver::new(WordAddr(0), 3);
        b.step(0, &mut r); // fetch-add
        // Old count 0 → waiter; spins on the sense word.
        assert!(matches!(b.step(0, &mut r), LockOutcome::Issue(Op::Read(_))));
        b.step(0, &mut r); // first read result pending
        for _ in 0..10 {
            match b.step(0, &mut r) {
                LockOutcome::Issue(Op::Read(_)) | LockOutcome::Issue(Op::Work(_)) => {}
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(b.step(1, &mut r), LockOutcome::Acquired, "sense flipped");
    }

    #[test]
    fn barrier_sense_reverses_each_crossing() {
        let mut r = rng();
        let mut b = BarrierDriver::new(WordAddr(0), 1); // solo barrier
        // Sole participant: every arrival is the last arrival.
        for expected_sense in [1u64, 0, 1] {
            b.step(0, &mut r); // fetch-add
            assert!(matches!(b.step(0, &mut r), LockOutcome::Issue(Op::Write(_, 0))));
            match b.step(0, &mut r) {
                LockOutcome::Issue(Op::Write(_, s)) => assert_eq!(s, expected_sense),
                other => panic!("{other:?}"),
            }
            assert_eq!(b.step(0, &mut r), LockOutcome::Acquired);
        }
        assert_eq!(b.crossings(), 3);
    }

    #[test]
    fn restart_targets_new_address() {
        let mut r = rng();
        let mut l = LockDriver::new(WordAddr(1));
        l.start(WordAddr(2));
        match l.step(0, &mut r) {
            LockOutcome::Issue(Op::Read(a)) => assert_eq!(a, WordAddr(2)),
            other => panic!("{other:?}"),
        }
    }
}
