//! The Radiosity workload model (SPLASH, batch input).
//!
//! Radiosity's parallel phase is task-queue driven with work stealing: the
//! common critical section is a cheap pop from the worker's own queue, but
//! occasionally a worker rebalances — grabbing a batch of tasks from a
//! victim's queue — producing the skew the paper's Table 2 reports: read
//! avg 2.0 but max 25, write avg 1.5 but max **45**.
//!
//! One unit of work = one task processed (paper: "1 task", 512 units,
//! 11 172 measured transactions — ≈22 transactions per unit; our sections
//! are coarser but the footprint distribution matches).

use logtm_se::WordAddr;
use ltse_sim::rng::Xoshiro256StarStar;

use crate::dist::uniform_incl;
use crate::driver::{BodyOp, Section, SectionSource};

mod layout {
    /// Per-thread task-queue header blocks (one block per queue).
    pub const QUEUE_BASE: u64 = 0x40_0000;
    /// Task descriptor pools, one region per owning queue so a steal
    /// touches exactly the victim's descriptors (guarded by the victim's
    /// mutex in lock mode — the same data the locks protect).
    pub const TASK_BASE: u64 = 0x40_8000;
    pub const TASK_BLOCKS_PER_QUEUE: u64 = 64;
    /// Per-queue mutexes (lock mode).
    pub const QUEUE_MUTEX_BASE: u64 = 0x41_0000;
}

fn queue_head(owner: u64) -> WordAddr {
    WordAddr(layout::QUEUE_BASE + owner * 8)
}

fn queue_mutex(owner: u64) -> WordAddr {
    WordAddr(layout::QUEUE_MUTEX_BASE + owner * 8)
}

fn task_block(owner: u64, idx: u64) -> WordAddr {
    WordAddr(
        layout::TASK_BASE
            + (owner * layout::TASK_BLOCKS_PER_QUEUE + idx % layout::TASK_BLOCKS_PER_QUEUE) * 8,
    )
}

/// Section source for one Radiosity worker.
#[derive(Debug, Clone)]
pub struct Radiosity {
    thread_id: u64,
    n_threads: u64,
    tasks_remaining: u64,
    cursor: u64,
    /// Probability of a steal/rebalance section instead of a local pop.
    steal_prob: f64,
}

impl Radiosity {
    /// A worker processing `tasks` tasks; `thread_id`/`n_threads` locate
    /// its own queue and its steal victims.
    pub fn new(thread_id: u64, n_threads: u64, tasks: u64) -> Self {
        Radiosity {
            thread_id,
            n_threads,
            tasks_remaining: tasks,
            cursor: thread_id * 131,
            steal_prob: 0.02,
        }
    }
}

impl SectionSource for Radiosity {
    fn next_section(&mut self, rng: &mut Xoshiro256StarStar) -> Option<Section> {
        if self.tasks_remaining == 0 {
            return None;
        }
        self.tasks_remaining -= 1;
        self.cursor += 1;

        let section = if rng.gen_bool(self.steal_prob) && self.n_threads > 1 {
            // Rebalance: scan the victim queue (long read set) and move a
            // batch of task descriptors (long write set) — the Table 2
            // tail (reads ≤25, writes ≤45).
            let victim = (self.thread_id + 1 + rng.gen_range(0, self.n_threads - 1))
                % self.n_threads;
            let scan = uniform_incl(rng, 6, 23);
            let moved = uniform_incl(rng, 8, 43);
            let mut body = vec![
                BodyOp::Update(queue_head(victim)),
                BodyOp::Update(queue_head(self.thread_id)),
            ];
            // Steals take descriptors from the tail half of the victim's
            // region; the victim's pops work the head half, so the only
            // common block is the queue header itself (as in the real
            // deques).
            for i in 0..scan {
                body.push(BodyOp::Read(task_block(victim, 32 + (self.cursor * 17 + i) % 32)));
            }
            for i in 0..moved {
                body.push(BodyOp::Write(task_block(victim, 32 + (self.cursor * 17 + i) % 32)));
            }
            Section {
                think: uniform_incl(rng, 800, 2_000),
                lock: queue_mutex(victim),
                body,
                unit_done: true,
                barrier_after: None,
            }
        } else {
            // The common case: pop a task from our own queue — tiny
            // footprint (reads avg ≈2, writes ≈1.5).
            let mut body = vec![
                BodyOp::Update(queue_head(self.thread_id)),
                BodyOp::Read(task_block(self.thread_id, (self.cursor * 31) % 32)),
            ];
            if rng.gen_bool(0.5) {
                body.push(BodyOp::Read(task_block(self.thread_id, (self.cursor * 31 + 1) % 32)));
            }
            if rng.gen_bool(0.5) {
                body.push(BodyOp::Write(task_block(self.thread_id, (self.cursor * 31) % 32)));
            }
            Section {
                think: uniform_incl(rng, 2_000, 6_000),
                lock: queue_mutex(self.thread_id),
                body,
                unit_done: true,
                barrier_after: None,
            }
        };
        Some(section)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{CsProgram, SyncMode};
    use logtm_se::{SignatureKind, SystemBuilder};

    fn run_tm(seed: u64, tasks: u64) -> logtm_se::RunReport {
        let mut sys = SystemBuilder::paper_default()
            .signature(SignatureKind::Perfect)
            .seed(seed)
            .build();
        for t in 0..8u64 {
            sys.add_thread(Box::new(CsProgram::new(
                Radiosity::new(t, 8, tasks),
                SyncMode::Tm,
                t << 32,
            )));
        }
        sys.run().unwrap()
    }

    #[test]
    fn footprint_is_small_but_skewed() {
        let r = run_tm(31, 120);
        let read_avg = r.tm.read_set.mean().unwrap();
        let write_avg = r.tm.write_set.mean().unwrap();
        assert!((1.5..=4.5).contains(&read_avg), "read avg {read_avg}");
        assert!((1.0..=4.5).contains(&write_avg), "write avg {write_avg}");
        assert!(
            r.tm.read_set.max().unwrap() >= 10,
            "steal sections make a long read tail"
        );
        assert!(
            r.tm.write_set.max().unwrap() >= 20,
            "steal sections make a long write tail"
        );
        assert!(r.tm.write_set.max().unwrap() <= 45);
    }

    #[test]
    fn local_pops_rarely_conflict() {
        let r = run_tm(32, 40);
        assert_eq!(r.tm.work_units, 320);
        // Own-queue pops are private; only steals contend.
        assert!(r.tm.aborts < r.tm.commits / 5);
    }
}
