//! Running the Table-2 workloads on either TM backend.
//!
//! [`BackendKind`] names the two engines behind [`logtm_se::TmBackend`]: the
//! cycle-level simulator (`sim`, the default everywhere) and the
//! real-concurrency TL2 STM in `ltse-stm` (`stm`). [`build_backend`] turns a
//! [`RunParams`] into a ready-to-run boxed backend; [`run_on_backend`] is
//! the one-call counterpart of [`crate::run_benchmark`].
//!
//! The STM interprets [`RunParams`] narrowly: it honours `benchmark`,
//! `mode`, `threads`, `units_per_thread`, and `seed`. The remaining fields
//! describe *simulated hardware* — signature geometry, stickiness, cache
//! size, coherence protocol, warm-up accounting — which a software TM on
//! real silicon has no analogue for; they are accepted and ignored so one
//! `RunParams` can drive an apples-to-apples sim-vs-stm pair.

use logtm_se::TmBackend;
use ltse_stm::StmBuilder;

use crate::spec::RunParams;

/// Which TM engine executes a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BackendKind {
    /// The LogTM-SE cycle-level simulator (deterministic, single OS
    /// thread, simulated time).
    #[default]
    Sim,
    /// The TL2-style software TM (real OS threads, wall-clock time).
    Stm,
}

impl BackendKind {
    /// The CLI/JSON name (`"sim"` / `"stm"`).
    pub fn name(&self) -> &'static str {
        match self {
            BackendKind::Sim => "sim",
            BackendKind::Stm => "stm",
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for BackendKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "sim" => Ok(BackendKind::Sim),
            "stm" => Ok(BackendKind::Stm),
            other => Err(format!("unknown backend '{other}' (expected sim|stm)")),
        }
    }
}

/// Builds a backend of the given kind, configured for `params`, with the
/// benchmark's per-thread programs already added. Pass `check` to enable
/// serializability recording (differential tests on; benches off).
pub fn build_backend(kind: BackendKind, params: &RunParams, check: bool) -> Box<dyn TmBackend> {
    let mut backend: Box<dyn TmBackend> = match kind {
        BackendKind::Sim => {
            let builder = if params.small_machine {
                logtm_se::SystemBuilder::small_for_tests()
            } else {
                logtm_se::SystemBuilder::paper_default()
            };
            Box::new(
                builder
                    .signature(params.signature)
                    .sticky(params.sticky)
                    .coherence(params.coherence)
                    .log_filter_entries(params.log_filter_entries)
                    .warmup_units(params.warmup_units)
                    .seed(params.seed)
                    .check_serializability(check)
                    .build(),
            )
        }
        BackendKind::Stm => Box::new(
            StmBuilder::new()
                .seed(params.seed)
                .check_serializability(check)
                .build(),
        ),
    };
    for program in params
        .benchmark
        .programs(params.mode, params.threads, params.units_per_thread)
    {
        backend.add_thread(program);
    }
    backend
}

/// Runs one benchmark configuration on the chosen backend. Like
/// [`crate::run_benchmark`], but backend-generic and reporting the common
/// [`logtm_se::BackendReport`]; checking is off (measurement mode).
pub fn run_on_backend(
    kind: BackendKind,
    params: &RunParams,
) -> Result<logtm_se::BackendReport, String> {
    build_backend(kind, params, false).run_backend()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::SyncMode;
    use crate::spec::Benchmark;
    use logtm_se::{CoherenceKind, SignatureKind};

    fn small(benchmark: Benchmark) -> RunParams {
        RunParams {
            benchmark,
            mode: SyncMode::Tm,
            signature: SignatureKind::Perfect,
            threads: 4,
            units_per_thread: 3,
            seed: 9,
            small_machine: true,
            sticky: true,
            log_filter_entries: 16,
            coherence: CoherenceKind::DirectoryMesi,
            warmup_units: 0,
        }
    }

    #[test]
    fn kind_parses_and_prints() {
        assert_eq!("sim".parse::<BackendKind>().unwrap(), BackendKind::Sim);
        assert_eq!("stm".parse::<BackendKind>().unwrap(), BackendKind::Stm);
        assert!("hw".parse::<BackendKind>().is_err());
        assert_eq!(BackendKind::Stm.to_string(), "stm");
        assert_eq!(BackendKind::default(), BackendKind::Sim);
    }

    #[test]
    fn both_backends_complete_the_same_work() {
        for benchmark in [Benchmark::BerkeleyDb, Benchmark::Mp3d] {
            let params = small(benchmark);
            let sim = run_on_backend(BackendKind::Sim, &params)
                .unwrap_or_else(|e| panic!("sim {benchmark}: {e}"));
            let stm = run_on_backend(BackendKind::Stm, &params)
                .unwrap_or_else(|e| panic!("stm {benchmark}: {e}"));
            assert_eq!(sim.work_units, 12, "{benchmark}");
            assert_eq!(stm.work_units, 12, "{benchmark}");
            assert_eq!(stm.threads_completed, 4, "{benchmark}");
            assert!(sim.sim_cycles.is_some() && stm.sim_cycles.is_none());
            assert!(stm.commits > 0, "{benchmark}: Tm mode must commit");
        }
    }

    #[test]
    fn stm_backend_serializes_a_full_workload_under_check() {
        let mut backend = build_backend(BackendKind::Stm, &small(Benchmark::Radiosity), true);
        backend.run_backend().expect("run completes");
        let errs = backend.finish_checks();
        assert!(errs.is_empty(), "oracle clean, got: {errs:?}");
    }
}
