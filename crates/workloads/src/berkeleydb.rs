//! The BerkeleyDB workload model.
//!
//! Paper §6.2: "a database storage manager library … We converted the
//! mutex-based critical sections in BerkeleyDB to transactions. The
//! resulting transactions contain non-transactional pieces of code such as
//! system calls, I/O operations, and memory allocation, which are handled
//! using non-transactional escape actions. A simple multithreaded driver
//! program initializes a database with 1000 words and then creates a group
//! of worker threads that randomly read from the database. This driver
//! stresses the BerkeleyDB lock subsystem due to repeated requests for
//! locks on database objects."
//!
//! Model: one unit of work = one database read = three critical sections —
//! acquire a database-object lock in the (hot, skewed) lock subsystem,
//! fetch the record through the buffer pool, release the lock. The lock
//! subsystem's metadata blocks are the contention point; in `Lock` mode a
//! single lock-region mutex guards them (as BerkeleyDB's region locks do),
//! which is exactly the conservatism transactions win against in Figure 4.
//!
//! Footprint calibration (Table 2): read avg 8.1 / max 30, write avg
//! 6.8 / max 28 per transaction.

use logtm_se::WordAddr;
use ltse_sim::rng::Xoshiro256StarStar;

use crate::dist::{clamped_geo, uniform_incl};
use crate::driver::{BodyOp, Section, SectionSource};

/// Word-address layout of the simulated BerkeleyDB process image.
mod layout {
    /// The lock-subsystem region: hot metadata (lock table buckets,
    /// lockers, the region header).
    pub const LOCK_REGION_BASE: u64 = 0x20_0000;
    /// Lock-table bucket blocks. A handful of header blocks at the start
    /// of the region are hotter than the rest (skewed contention), but two
    /// concurrent database reads usually lock *different* objects — the
    /// paper's TM win exists precisely because the region mutex serializes
    /// conservatively while true data conflicts are much rarer.
    pub const LOCK_REGION_BLOCKS: u64 = 128;
    /// The hot header prefix of the lock region.
    pub const LOCK_HOT_BLOCKS: u64 = 8;
    /// The database pages ("1000 words" in the paper's driver; modelled as
    /// 128 pages/blocks so record fetches touch several).
    pub const DB_BASE: u64 = 0x21_0000;
    pub const DB_BLOCKS: u64 = 128;
    /// Buffer-pool bookkeeping blocks.
    pub const BUF_BASE: u64 = 0x22_0000;
    pub const BUF_BLOCKS: u64 = 32;
    /// Lock-region mutexes (lock mode): the region is guarded by a small
    /// number of hashed mutexes, as BerkeleyDB's region locks are.
    pub const REGION_MUTEX_BASE: u64 = 0x23_0000;
    pub const REGION_MUTEXES: u64 = 1;
    /// Per-page mutexes (lock mode), one per DB page.
    pub const PAGE_MUTEX_BASE: u64 = 0x23_1000;
}

fn block(base: u64, idx: u64) -> WordAddr {
    WordAddr(base + idx * 8)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Step {
    AcquireLocks,
    Fetch,
    ReleaseLocks,
}

/// Section source for one BerkeleyDB worker thread.
#[derive(Debug, Clone)]
pub struct BerkeleyDb {
    units_remaining: u64,
    step: Step,
}

impl BerkeleyDb {
    /// A worker performing `units` database reads.
    pub fn new(units: u64) -> Self {
        BerkeleyDb {
            units_remaining: units,
            step: Step::AcquireLocks,
        }
    }

    /// Picks a hot lock-subsystem starting bucket: geometrically skewed so
    /// a few buckets dominate (the "repeated requests for locks on database
    /// objects" of the paper's driver). Sections then walk a run of
    /// consecutive bucket-chain blocks from there, so footprints are made
    /// of distinct blocks.
    fn hot_start(rng: &mut Xoshiro256StarStar) -> u64 {
        if rng.gen_bool(0.45) {
            rng.gen_skewed_index(layout::LOCK_HOT_BLOCKS as usize) as u64
        } else {
            rng.gen_range(0, layout::LOCK_REGION_BLOCKS)
        }
    }

    fn hot_block(start: u64, i: u64) -> WordAddr {
        block(layout::LOCK_REGION_BASE, (start + i) % layout::LOCK_REGION_BLOCKS)
    }

    /// The region mutex guarding the bucket run starting at `start`.
    /// BerkeleyDB guards the whole lock region with a single region mutex
    /// (`REGION_MUTEXES == 1`); the hashing stays so the partitioned
    /// variant is a one-constant change.
    #[allow(clippy::modulo_one)] // REGION_MUTEXES is a tunable constant
    fn region_mutex(start: u64) -> WordAddr {
        block(layout::REGION_MUTEX_BASE, start % layout::REGION_MUTEXES)
    }
}

impl SectionSource for BerkeleyDb {
    fn next_section(&mut self, rng: &mut Xoshiro256StarStar) -> Option<Section> {
        if self.units_remaining == 0 {
            return None;
        }
        let section = match self.step {
            Step::AcquireLocks => {
                // Walk lock-table buckets, allocate a locker, link it in.
                self.step = Step::Fetch;
                let start = Self::hot_start(rng);
                let writes = clamped_geo(rng, 7.0, 20);
                let reads = clamped_geo(rng, 6.0, 20);
                let mut body = Vec::new();
                for i in 0..writes {
                    body.push(BodyOp::Update(Self::hot_block(start, i)));
                }
                for i in 0..reads {
                    body.push(BodyOp::Read(Self::hot_block(start, writes + i)));
                }
                body.push(BodyOp::Work(uniform_incl(rng, 20, 60)));
                Section {
                    think: uniform_incl(rng, 250, 700),
                    lock: Self::region_mutex(start),
                    body,
                    unit_done: false,
                    barrier_after: None,
                }
            }
            Step::Fetch => {
                // Read the record through the buffer pool; touch a few
                // bufferpool headers; occasionally call into the allocator
                // (escape action in TM mode).
                self.step = Step::ReleaseLocks;
                let page = rng.gen_index(layout::DB_BLOCKS as usize) as u64;
                let reads = clamped_geo(rng, 9.0, 30);
                let writes = clamped_geo(rng, 3.0, 8);
                let mut body = Vec::new();
                for i in 0..reads {
                    let b = (page + i * 7) % layout::DB_BLOCKS;
                    body.push(BodyOp::Read(block(layout::DB_BASE, b)));
                }
                for _ in 0..writes {
                    let b = rng.gen_index(layout::BUF_BLOCKS as usize) as u64;
                    body.push(BodyOp::Write(block(layout::BUF_BASE, b)));
                }
                if rng.gen_bool(0.1) {
                    body.push(BodyOp::EscapedWork(uniform_incl(rng, 100, 300)));
                }
                Section {
                    think: uniform_incl(rng, 30, 90),
                    lock: block(layout::PAGE_MUTEX_BASE, page),
                    body,
                    unit_done: false,
                    barrier_after: None,
                }
            }
            Step::ReleaseLocks => {
                // Unlink the locker, update bucket chains.
                self.step = Step::AcquireLocks;
                self.units_remaining -= 1;
                let start = Self::hot_start(rng);
                let writes = clamped_geo(rng, 7.0, 20);
                let reads = clamped_geo(rng, 4.0, 16);
                let mut body = Vec::new();
                for i in 0..writes {
                    body.push(BodyOp::Update(Self::hot_block(start, i)));
                }
                for i in 0..reads {
                    body.push(BodyOp::Read(Self::hot_block(start, writes + i)));
                }
                Section {
                    think: uniform_incl(rng, 250, 700),
                    lock: Self::region_mutex(start),
                    body,
                    unit_done: true,
                    barrier_after: None,
                }
            }
        };
        Some(section)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{CsProgram, SyncMode};
    use logtm_se::{SignatureKind, SystemBuilder};

    #[test]
    fn three_sections_per_unit() {
        let mut rng = Xoshiro256StarStar::new(1);
        let mut w = BerkeleyDb::new(2);
        let mut sections = 0;
        let mut units = 0;
        while let Some(s) = w.next_section(&mut rng) {
            sections += 1;
            if s.unit_done {
                units += 1;
            }
        }
        assert_eq!(sections, 6);
        assert_eq!(units, 2);
    }

    #[test]
    fn footprint_lands_near_table2() {
        // Run on the paper machine shape (shrunk thread count) and check
        // the committed set sizes sit in the Table 2 neighbourhood:
        // read avg 8.1/max 30, write avg 6.8/max 28.
        let mut sys = SystemBuilder::paper_default()
            .signature(SignatureKind::Perfect)
            .seed(11)
            .build();
        for t in 0..8u64 {
            sys.add_thread(Box::new(CsProgram::new(
                BerkeleyDb::new(12),
                SyncMode::Tm,
                t << 32,
            )));
        }
        let r = sys.run().unwrap();
        let read_avg = r.tm.read_set.mean().unwrap();
        let write_avg = r.tm.write_set.mean().unwrap();
        assert!(
            (4.0..=13.0).contains(&read_avg),
            "read avg {read_avg} out of band"
        );
        assert!(
            (3.5..=11.0).contains(&write_avg),
            "write avg {write_avg} out of band"
        );
        assert!(r.tm.read_set.max().unwrap() <= 32);
        assert!(r.tm.write_set.max().unwrap() <= 30);
        assert_eq!(r.tm.work_units, 96);
        assert!(r.tm.escapes > 0, "escape actions exercised");
    }

    #[test]
    fn lock_mode_contends_on_the_region_mutex() {
        let mut sys = SystemBuilder::paper_default().seed(12).build();
        for t in 0..8u64 {
            sys.add_thread(Box::new(CsProgram::new(
                BerkeleyDb::new(8),
                SyncMode::Lock,
                t << 32,
            )));
        }
        let r = sys.run().unwrap();
        assert_eq!(r.tm.work_units, 64);
        assert_eq!(r.tm.commits, 0);
    }
}
