//! The Raytrace workload model (SPLASH, teapot input).
//!
//! Raytrace's critical sections are tiny but *hot*: every ray grabs an id
//! from a global counter, and the memory allocator's free lists are shared.
//! The paper's Table 2 shows the outlier that defines this benchmark: read
//! set average 5.8 but **maximum 550 blocks** — rare huge transactions that
//! overflow a 512-block L1 and make Raytrace the only benchmark with
//! significant victimization (Result 4: 481 victimized blocks in 48 K
//! transactions) and the one hurt most by small bit-select signatures
//! (Figure 4 / Table 3).
//!
//! Model: three section flavours — the global ray-id counter bump (common,
//! maximal contention), a free-list allocation (moderate footprint), and a
//! rare grid-traversal section reading hundreds of scene blocks.

use logtm_se::WordAddr;
use ltse_sim::rng::Xoshiro256StarStar;

use crate::dist::{clamped_geo, uniform_incl};
use crate::driver::{BodyOp, Section, SectionSource};

mod layout {
    /// The global ray-id counter block.
    pub const RAY_COUNTER: u64 = 0x50_0000;
    /// Read-mostly global job bookkeeping block.
    pub const JOB_BOARD: u64 = 0x50_0040;
    /// Memory-allocator free-list blocks.
    pub const FREELIST_BASE: u64 = 0x50_1000;
    pub const FREELIST_BLOCKS: u64 = 16;
    /// Scene (grid/BSP) blocks traversed by the rare huge sections.
    pub const SCENE_BASE: u64 = 0x51_0000;
    pub const SCENE_BLOCKS: u64 = 640;
    /// Mutexes (lock mode): counter lock, allocator lock, scene lock.
    pub const COUNTER_MUTEX: u64 = 0x52_0000;
    pub const ALLOC_MUTEX: u64 = 0x52_0008;
    pub const SCENE_MUTEX: u64 = 0x52_0010;
}

fn block(base: u64, idx: u64) -> WordAddr {
    WordAddr(base + idx * 8)
}

/// Section source for one Raytrace worker.
#[derive(Debug, Clone)]
pub struct Raytrace {
    rays_remaining: u64,
    cursor: u64,
    /// Probability a ray needs an allocation section.
    alloc_prob: f64,
    /// Probability a ray triggers the huge traversal section.
    huge_prob: f64,
}

impl Raytrace {
    /// A worker tracing `rays` rays (each ray = one unit of work).
    pub fn new(thread_id: u64, rays: u64) -> Self {
        Raytrace {
            rays_remaining: rays,
            cursor: thread_id * 977,
            alloc_prob: 0.45,
            huge_prob: 1.0 / 400.0,
        }
    }
}

impl SectionSource for Raytrace {
    fn next_section(&mut self, rng: &mut Xoshiro256StarStar) -> Option<Section> {
        if self.rays_remaining == 0 {
            return None;
        }
        self.cursor += 1;

        let huge_now = self.cursor % (1.0_f64 / self.huge_prob) as u64 == 137;
        if huge_now {
            // Rare: rebuild/traverse a big chunk of the scene structure
            // under one critical section — the 550-block read-set tail.
            let reads = uniform_incl(rng, 220, 550);
            let start = rng.gen_range(0, layout::SCENE_BLOCKS);
            let mut body = Vec::with_capacity(reads as usize + 2);
            for i in 0..reads {
                body.push(BodyOp::Read(block(
                    layout::SCENE_BASE,
                    (start + i) % layout::SCENE_BLOCKS,
                )));
            }
            body.push(BodyOp::Write(block(layout::SCENE_BASE, start)));
            body.push(BodyOp::Write(block(
                layout::SCENE_BASE,
                (start + reads / 2) % layout::SCENE_BLOCKS,
            )));
            return Some(Section {
                think: uniform_incl(rng, 400, 900),
                lock: WordAddr(layout::SCENE_MUTEX),
                body,
                unit_done: false,
                barrier_after: None,
            });
        }

        if rng.gen_bool(self.alloc_prob) {
            // Allocator: walk a free list, unlink a node.
            let head = rng.gen_skewed_index(layout::FREELIST_BLOCKS as usize) as u64;
            let walk = clamped_geo(rng, 5.0, 12);
            // Unlink from the head first (one owned-line RMW), then walk
            // the rest of the list read-only.
            let mut body = vec![BodyOp::Update(block(layout::FREELIST_BASE, head))];
            if rng.gen_bool(0.5) {
                body.push(BodyOp::Update(block(
                    layout::FREELIST_BASE,
                    (head + 1) % layout::FREELIST_BLOCKS,
                )));
            }
            for i in 1..walk {
                body.push(BodyOp::Read(block(
                    layout::FREELIST_BASE,
                    (head + i + 1) % layout::FREELIST_BLOCKS,
                )));
            }
            return Some(Section {
                think: uniform_incl(rng, 900, 2_400),
                lock: WordAddr(layout::ALLOC_MUTEX),
                body,
                unit_done: false,
                barrier_after: None,
            });
        }

        // The common case: bump the global ray-id counter, then trace the
        // ray outside the critical section.
        self.rays_remaining -= 1;
        Some(Section {
            think: uniform_incl(rng, 2_500, 7_000),
            lock: WordAddr(layout::COUNTER_MUTEX),
            body: vec![
                BodyOp::Update(WordAddr(layout::RAY_COUNTER)),
                BodyOp::Read(WordAddr(layout::JOB_BOARD)),
            ],
            unit_done: true,
            barrier_after: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{CsProgram, SyncMode};
    use logtm_se::{SignatureKind, SystemBuilder};

    fn run_tm(seed: u64, rays: u64, threads: u64) -> logtm_se::RunReport {
        let mut sys = SystemBuilder::paper_default()
            .signature(SignatureKind::Perfect)
            .seed(seed)
            .build();
        for t in 0..threads {
            sys.add_thread(Box::new(CsProgram::new(
                Raytrace::new(t, rays),
                SyncMode::Tm,
                t << 32,
            )));
        }
        sys.run().unwrap()
    }

    #[test]
    fn counter_sections_dominate_and_contend() {
        let r = run_tm(41, 60, 16);
        assert_eq!(r.tm.work_units, 960);
        assert!(
            r.tm.stalls > 100,
            "global counter must create heavy stalling, got {}",
            r.tm.stalls
        );
        let read_avg = r.tm.read_set.mean().unwrap();
        assert!((1.0..=8.0).contains(&read_avg), "read avg {read_avg}");
        assert!(r.tm.write_set.max().unwrap() <= 3);
    }

    #[test]
    fn huge_sections_produce_the_550_tail_and_victimize() {
        // Enough rays that the 1/400 huge section fires several times.
        let r = run_tm(42, 260, 8);
        let max_read = r.tm.read_set.max().unwrap();
        assert!(
            (220..=550).contains(&max_read),
            "huge traversal tail missing: {max_read}"
        );
        // A >512-block read set cannot fit the 512-block L1: Result 4's
        // victimization shows up here (and only here among the workloads).
        assert!(
            r.mem.tx_victimizations_exact() > 0,
            "raytrace must victimize transactional blocks"
        );
    }
}
