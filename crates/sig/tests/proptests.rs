//! Property-based tests for the signature invariants the paper's correctness
//! argument rests on: no false negatives, clear releases everything, union is
//! an over-approximation of set union, and save/restore is lossless.

use proptest::prelude::*;

use ltse_sig::{
    ConflictVerdict, CountingSignature, ReadWriteSignature, ShadowedRwSignature, SigOp,
    SignatureKind,
};

fn kind_strategy() -> impl Strategy<Value = SignatureKind> {
    prop_oneof![
        Just(SignatureKind::Perfect),
        (4usize..=12).prop_map(|n| SignatureKind::BitSelect { bits: 1 << n }),
        (4usize..=12).prop_map(|n| SignatureKind::DoubleBitSelect { bits: 1 << n }),
        (4usize..=12).prop_map(|n| SignatureKind::CoarseBitSelect {
            bits: 1 << n,
            blocks_per_macroblock: 16,
        }),
        ((6usize..=12), (1u32..=6)).prop_map(|(n, k)| SignatureKind::Bloom { bits: 1 << n, k }),
    ]
}

proptest! {
    #[test]
    fn no_false_negatives(kind in kind_strategy(), addrs in prop::collection::vec(0u64..1 << 32, 1..200)) {
        let mut sig = kind.build();
        for &a in &addrs {
            sig.insert(a);
        }
        for &a in &addrs {
            prop_assert!(sig.maybe_contains(a), "{kind} lost {a:#x}");
        }
    }

    #[test]
    fn clear_releases_everything_inserted(kind in kind_strategy(), addrs in prop::collection::vec(0u64..1 << 32, 1..100)) {
        let mut sig = kind.build();
        for &a in &addrs {
            sig.insert(a);
        }
        sig.clear();
        prop_assert!(sig.is_empty());
        // Perfect signatures must drop every address; hashed ones must too
        // because all bits are zero.
        for &a in &addrs {
            prop_assert!(!sig.maybe_contains(a));
        }
    }

    #[test]
    fn union_superset_of_both(kind in kind_strategy(),
                              a_addrs in prop::collection::vec(0u64..1 << 24, 0..60),
                              b_addrs in prop::collection::vec(0u64..1 << 24, 0..60)) {
        let mut a = kind.build();
        let mut b = kind.build();
        for &x in &a_addrs { a.insert(x); }
        for &x in &b_addrs { b.insert(x); }
        a.union_with(b.as_ref());
        for &x in a_addrs.iter().chain(&b_addrs) {
            prop_assert!(a.maybe_contains(x));
        }
    }

    #[test]
    fn save_restore_is_lossless(kind in kind_strategy(), addrs in prop::collection::vec(0u64..1 << 32, 0..100)) {
        let mut sig = kind.build();
        for &a in &addrs { sig.insert(a); }
        let saved = sig.save();
        let mut fresh = kind.build();
        fresh.restore(&saved);
        for &a in &addrs {
            prop_assert!(fresh.maybe_contains(a));
        }
        prop_assert_eq!(fresh.saturation(), sig.saturation());
    }

    #[test]
    fn shadow_never_sees_false_negative(kind in kind_strategy(),
                                        writes in prop::collection::vec(0u64..1 << 20, 0..50),
                                        probes in prop::collection::vec(0u64..1 << 20, 0..50)) {
        let mut rw = ShadowedRwSignature::new(&kind);
        for &w in &writes {
            rw.insert(SigOp::Write, w);
        }
        // classify() asserts internally that (sig=false, exact=true) never
        // happens; exercise it over arbitrary probes.
        for &p in &probes {
            let v = rw.classify(SigOp::Write, p);
            if writes.contains(&p) {
                prop_assert_eq!(v, ConflictVerdict::True);
            }
        }
    }

    #[test]
    fn rw_conflict_semantics(kind in kind_strategy(), addr in 0u64..1 << 20) {
        // Write-write and read-write always conflict on the same address;
        // read-read never conflicts (checked exactly only for Perfect).
        let mut w = ReadWriteSignature::new(&kind);
        w.insert(SigOp::Write, addr);
        prop_assert!(w.conflicts_with(SigOp::Read, addr));
        prop_assert!(w.conflicts_with(SigOp::Write, addr));

        let mut r = ReadWriteSignature::new(&kind);
        r.insert(SigOp::Read, addr);
        prop_assert!(r.conflicts_with(SigOp::Write, addr));
        if kind == SignatureKind::Perfect {
            prop_assert!(!r.conflicts_with(SigOp::Read, addr));
        }
    }

    #[test]
    fn counting_signature_matches_naive_union(
        n_threads in 1usize..6,
        per_thread in prop::collection::vec(prop::collection::vec(0u64..1 << 16, 0..30), 1..6),
    ) {
        let _ = n_threads;
        let kind = SignatureKind::BitSelect { bits: 512 };
        let mut counting = CountingSignature::new(512);
        let saves: Vec<_> = per_thread.iter().map(|addrs| {
            let mut s = kind.build();
            for &a in addrs { s.insert(a); }
            s.save()
        }).collect();
        for s in &saves { counting.add(s); }
        // Remove the first thread; the remainder must still cover threads 1..
        if saves.len() > 1 {
            counting.remove(&saves[0]);
            let m = counting.materialize(&kind);
            for addrs in per_thread.iter().skip(1) {
                for &a in addrs {
                    prop_assert!(m.maybe_contains(a));
                }
            }
        }
        // Removing everything empties the structure.
        for s in saves.iter().skip(1) { counting.remove(s); }
        if saves.len() > 1 {
            prop_assert!(!counting.any_set());
        }
    }

    #[test]
    fn rehash_page_covers_new_locations(kind in kind_strategy(),
                                        offsets in prop::collection::vec(0u64..64, 1..20)) {
        let old_base = 1024u64;
        let new_base = 8192u64;
        let mut sig = kind.build();
        for &o in &offsets {
            sig.insert(old_base + o);
        }
        sig.rehash_page(old_base, new_base, 64);
        for &o in &offsets {
            prop_assert!(sig.maybe_contains(old_base + o), "old retained");
            prop_assert!(sig.maybe_contains(new_base + o), "new covered");
        }
    }
}
