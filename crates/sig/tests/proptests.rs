//! Property-based tests for the signature invariants the paper's correctness
//! argument rests on: no false negatives, clear releases everything, union is
//! an over-approximation of set union, and save/restore is lossless.
//! Randomized deterministically through `ltse_sim::check`.

use ltse_sim::check::{cases, vec_of};
use ltse_sim::rng::Xoshiro256StarStar;

use ltse_sig::{
    ConflictVerdict, CountingSignature, ReadWriteSignature, ShadowedRwSignature, SigOp,
    SignatureKind,
};

fn random_kind(rng: &mut Xoshiro256StarStar) -> SignatureKind {
    match rng.gen_index(5) {
        0 => SignatureKind::Perfect,
        1 => SignatureKind::BitSelect {
            bits: 1 << rng.gen_range(4, 13),
        },
        2 => SignatureKind::DoubleBitSelect {
            bits: 1 << rng.gen_range(4, 13),
        },
        3 => SignatureKind::CoarseBitSelect {
            bits: 1 << rng.gen_range(4, 13),
            blocks_per_macroblock: 16,
        },
        _ => SignatureKind::Bloom {
            bits: 1 << rng.gen_range(6, 13),
            k: rng.gen_range(1, 7) as u32,
        },
    }
}

#[test]
fn no_false_negatives() {
    cases(64, 0xF0151, |rng| {
        let kind = random_kind(rng);
        let addrs = vec_of(rng, 1, 200, |r| r.gen_range(0, 1 << 32));
        let mut sig = kind.build();
        for &a in &addrs {
            sig.insert(a);
        }
        for &a in &addrs {
            assert!(sig.maybe_contains(a), "{kind} lost {a:#x}");
        }
    });
}

#[test]
fn clear_releases_everything_inserted() {
    cases(64, 0xC1EA2, |rng| {
        let kind = random_kind(rng);
        let addrs = vec_of(rng, 1, 100, |r| r.gen_range(0, 1 << 32));
        let mut sig = kind.build();
        for &a in &addrs {
            sig.insert(a);
        }
        sig.clear();
        assert!(sig.is_empty());
        // Perfect signatures must drop every address; hashed ones must too
        // because all bits are zero.
        for &a in &addrs {
            assert!(!sig.maybe_contains(a));
        }
    });
}

#[test]
fn union_superset_of_both() {
    cases(64, 0x04107, |rng| {
        let kind = random_kind(rng);
        let a_addrs = vec_of(rng, 0, 60, |r| r.gen_range(0, 1 << 24));
        let b_addrs = vec_of(rng, 0, 60, |r| r.gen_range(0, 1 << 24));
        let mut a = kind.build();
        let mut b = kind.build();
        for &x in &a_addrs {
            a.insert(x);
        }
        for &x in &b_addrs {
            b.insert(x);
        }
        a.union_with(b.as_ref());
        for &x in a_addrs.iter().chain(&b_addrs) {
            assert!(a.maybe_contains(x));
        }
    });
}

#[test]
fn save_restore_is_lossless() {
    cases(64, 0x5A7E, |rng| {
        let kind = random_kind(rng);
        let addrs = vec_of(rng, 0, 100, |r| r.gen_range(0, 1 << 32));
        let mut sig = kind.build();
        for &a in &addrs {
            sig.insert(a);
        }
        let saved = sig.save();
        let mut fresh = kind.build();
        fresh.restore(&saved);
        for &a in &addrs {
            assert!(fresh.maybe_contains(a));
        }
        assert_eq!(fresh.saturation(), sig.saturation());
    });
}

#[test]
fn shadow_never_sees_false_negative() {
    cases(64, 0x5AD0, |rng| {
        let kind = random_kind(rng);
        let writes = vec_of(rng, 0, 50, |r| r.gen_range(0, 1 << 20));
        let probes = vec_of(rng, 0, 50, |r| r.gen_range(0, 1 << 20));
        let mut rw = ShadowedRwSignature::new(&kind);
        for &w in &writes {
            rw.insert(SigOp::Write, w);
        }
        // classify() asserts internally that (sig=false, exact=true) never
        // happens; exercise it over arbitrary probes.
        for &p in &probes {
            let v = rw.classify(SigOp::Write, p);
            if writes.contains(&p) {
                assert_eq!(v, ConflictVerdict::True);
            }
        }
    });
}

#[test]
fn rw_conflict_semantics() {
    cases(64, 0x2BC0, |rng| {
        let kind = random_kind(rng);
        let addr = rng.gen_range(0, 1 << 20);
        // Write-write and read-write always conflict on the same address;
        // read-read never conflicts (checked exactly only for Perfect).
        let mut w = ReadWriteSignature::new(&kind);
        w.insert(SigOp::Write, addr);
        assert!(w.conflicts_with(SigOp::Read, addr));
        assert!(w.conflicts_with(SigOp::Write, addr));

        let mut r = ReadWriteSignature::new(&kind);
        r.insert(SigOp::Read, addr);
        assert!(r.conflicts_with(SigOp::Write, addr));
        if kind == SignatureKind::Perfect {
            assert!(!r.conflicts_with(SigOp::Read, addr));
        }
    });
}

#[test]
fn counting_signature_matches_naive_union() {
    cases(64, 0xC0047, |rng| {
        let per_thread: Vec<Vec<u64>> =
            vec_of(rng, 1, 5, |r| vec_of(r, 0, 30, |r2| r2.gen_range(0, 1 << 16)));
        let kind = SignatureKind::BitSelect { bits: 512 };
        let mut counting = CountingSignature::new(512);
        let saves: Vec<_> = per_thread
            .iter()
            .map(|addrs| {
                let mut s = kind.build();
                for &a in addrs {
                    s.insert(a);
                }
                s.save()
            })
            .collect();
        for s in &saves {
            counting.add(s);
        }
        // Remove the first thread; the remainder must still cover threads 1..
        if saves.len() > 1 {
            counting.remove(&saves[0]);
            let m = counting.materialize(&kind);
            for addrs in per_thread.iter().skip(1) {
                for &a in addrs {
                    assert!(m.maybe_contains(a));
                }
            }
        }
        // Removing everything empties the structure.
        for s in saves.iter().skip(1) {
            counting.remove(s);
        }
        if saves.len() > 1 {
            assert!(!counting.any_set());
        }
    });
}

#[test]
fn rehash_page_covers_new_locations() {
    cases(64, 0x2E4A54, |rng| {
        let kind = random_kind(rng);
        let offsets = vec_of(rng, 1, 20, |r| r.gen_range(0, 64));
        let old_base = 1024u64;
        let new_base = 8192u64;
        let mut sig = kind.build();
        for &o in &offsets {
            sig.insert(old_base + o);
        }
        sig.rehash_page(old_base, new_base, 64);
        for &o in &offsets {
            assert!(sig.maybe_contains(old_base + o), "old retained");
            assert!(sig.maybe_contains(new_base + o), "new covered");
        }
    });
}
