//! The idealized perfect signature (the paper's "P" configuration).

use std::collections::BTreeSet;

use crate::traits::{SavedSignature, Signature};

/// An exact read- or write-set: no false positives, unbounded size.
///
/// The paper uses perfect signatures as an unimplementable upper bound
/// ("idealized signatures that record exact read- and write-sets, regardless
/// of their size", §6.3 Result 1). [`Signature::storage_bits`] reports 0 to
/// reflect that no fixed hardware budget corresponds to it.
///
/// A `BTreeSet` keeps iteration deterministic, which keeps whole-run
/// determinism intact.
///
/// ```
/// use ltse_sig::{PerfectSignature, Signature};
///
/// let mut s = PerfectSignature::new();
/// s.insert(10);
/// assert!(s.maybe_contains(10));
/// assert!(!s.maybe_contains(11)); // never a false positive
/// assert_eq!(s.len(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PerfectSignature {
    set: BTreeSet<u64>,
}

impl PerfectSignature {
    /// Creates an empty perfect signature.
    pub fn new() -> Self {
        PerfectSignature::default()
    }

    /// Number of distinct addresses recorded (the exact set size reported in
    /// the paper's Table 2 read/write-set statistics).
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Whether no addresses are recorded.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Iterates the exact address set in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.set.iter().copied()
    }
}

impl Signature for PerfectSignature {
    fn insert(&mut self, a: u64) {
        self.set.insert(a);
    }

    fn maybe_contains(&self, a: u64) -> bool {
        self.set.contains(&a)
    }

    fn clear(&mut self) {
        self.set.clear();
    }

    fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    fn union_with(&mut self, other: &dyn Signature) {
        match other.save() {
            SavedSignature::Exact(es) => self.set.extend(es),
            SavedSignature::Bits(_) => {
                panic!("cannot union a hashed signature into a perfect signature")
            }
        }
    }

    fn save(&self) -> SavedSignature {
        SavedSignature::Exact(self.set.iter().copied().collect())
    }

    fn restore(&mut self, saved: &SavedSignature) {
        match saved {
            SavedSignature::Exact(es) => {
                self.set = es.iter().copied().collect();
            }
            SavedSignature::Bits(_) => panic!("saved state shape mismatch"),
        }
    }

    fn saturation(&self) -> f64 {
        // A perfect signature never saturates; report a proxy that grows with
        // set size so dashboards can still plot it.
        1.0 - 1.0 / (1.0 + self.set.len() as f64)
    }

    fn storage_bits(&self) -> usize {
        0
    }

    fn clone_box(&self) -> Box<dyn Signature> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactness() {
        let mut s = PerfectSignature::new();
        for a in (0..1000u64).step_by(3) {
            s.insert(a);
        }
        for a in 0..1000u64 {
            assert_eq!(s.maybe_contains(a), a % 3 == 0);
        }
    }

    #[test]
    fn no_aliasing_ever() {
        let mut s = PerfectSignature::new();
        s.insert(5);
        assert!(!s.maybe_contains(5 + 64));
        assert!(!s.maybe_contains(5 + (1 << 40)));
    }

    #[test]
    fn save_restore_roundtrip() {
        let mut s = PerfectSignature::new();
        s.insert(1);
        s.insert(1 << 50);
        let saved = s.save();
        let mut t = PerfectSignature::new();
        t.restore(&saved);
        assert_eq!(s, t);
    }

    #[test]
    fn union_is_set_union() {
        let mut a = PerfectSignature::new();
        let mut b = PerfectSignature::new();
        a.insert(1);
        b.insert(2);
        b.insert(1);
        a.union_with(&b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn clear_empties() {
        let mut s = PerfectSignature::new();
        s.insert(9);
        s.clear();
        assert!(Signature::is_empty(&s));
        assert!(!s.maybe_contains(9));
    }

    #[test]
    fn saturation_grows_but_below_one() {
        let mut s = PerfectSignature::new();
        let s0 = s.saturation();
        s.insert(1);
        let s1 = s.saturation();
        s.insert(2);
        let s2 = s.saturation();
        assert!(s0 < s1 && s1 < s2 && s2 < 1.0);
    }

    #[test]
    fn rehash_page_exact() {
        let mut s = PerfectSignature::new();
        s.insert(100);
        s.rehash_page(64, 1024, 64);
        assert!(s.maybe_contains(100));
        assert!(s.maybe_contains(1024 + 36));
        assert_eq!(s.len(), 2);
    }
}
